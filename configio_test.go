package chipletnet

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = NDMeshTopology(4, 4, 4)
	cfg.Pattern = "bit-reverse"
	cfg.InjectionRate = 0.42
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pattern != "bit-reverse" || got.InjectionRate != 0.42 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.Topology.Kind != "ndmesh" || len(got.Topology.Dims) != 3 {
		t.Errorf("topology lost: %+v", got.Topology)
	}
}

func TestLoadConfigDefaultsAbsentFields(t *testing.T) {
	got, err := LoadConfig(strings.NewReader(`{"InjectionRate": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if got.InjectionRate != 0.5 {
		t.Errorf("explicit field lost")
	}
	if got.PacketFlits != def.PacketFlits || got.VCs != def.VCs {
		t.Errorf("defaults not applied: %+v", got)
	}
}

func TestLoadConfigRejects(t *testing.T) {
	if _, err := LoadConfig(strings.NewReader(`{"NoSuchKnob": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`{"InjectionRate": -3}`)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`{bad json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestSingleChipletSystem: a one-chiplet "system" (dims [1]) reduces to a
// plain on-chip 2D-mesh NoC with MFR/NFR routing — the booksim-style
// degenerate case must work.
func TestSingleChipletSystem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = NDMeshTopology(1)
	cfg.ChipletW, cfg.ChipletH = 6, 6
	cfg.InjectionRate = 0.3
	cfg.WarmupCycles = 300
	cfg.MeasureCycles = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.MeasuredPackets == 0 {
		t.Fatalf("single-chiplet run failed: %+v", res.Summary)
	}
	if res.AvgOffChipHops != 0 {
		t.Errorf("single chiplet reported %f off-chip hops", res.AvgOffChipHops)
	}
}
