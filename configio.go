package chipletnet

import (
	"encoding/json"
	"fmt"
	"io"
)

// LoadConfig reads a JSON-encoded Config, applying DefaultConfig values
// for absent fields, and validates the result. This is the file format
// cmd/chipletsim accepts via -config.
func LoadConfig(r io.Reader) (Config, error) {
	cfg := DefaultConfig()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("chipletnet: parsing config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// WriteJSON emits the configuration as indented JSON (the same format
// LoadConfig reads).
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
