package chipletnet

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"chipletnet/internal/trace"
)

// aiWorkloadSpec is the QoS-rich workload of the equivalence gates: a
// bounded collective phase train over bulk and latency background, so
// recorded traces carry all three classes and real dependencies.
const aiWorkloadSpec = "aiscaleout:allreduce-ring,data=64,compute=50,memrate=0.05,reqrate=0.02"

// recordTrace runs cfg under the reference engine with trace recording
// and returns the recording run's Result.
func recordTrace(t *testing.T, cfg Config, path string) Result {
	t.Helper()
	var res Result
	withEngine(engineSetup{"reference", EngineReference, 0}, func() {
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res, err = sys.SimulateControlled(RunControl{TracePath: path}); err != nil {
			t.Fatal(err)
		}
	})
	return res
}

// TestWorkloadReplayEngineEquivalence is the end-to-end acceptance gate
// for the workload subsystem: a trace recorded from a hypercube run
// replays to a bit-identical Result — per-class QoS statistics included —
// under every cycle engine (reference, active, parallel islands at K=4),
// and across a mid-replay checkpoint/restore.
func TestWorkloadReplayEngineEquivalence(t *testing.T) {
	cfg := equivConfig(HypercubeTopology(3))
	cfg.Workload = aiWorkloadSpec
	tracePath := filepath.Join(t.TempDir(), "hypercube.trace")

	recRes := recordTrace(t, cfg, tracePath)
	if len(recRes.Classes) == 0 {
		t.Fatal("recording run produced no per-class statistics")
	}

	replay := cfg
	replay.Workload = "replay:" + tracePath
	ref := engineSetup{"reference", EngineReference, 0}
	refRes, err := runEngine(ref, replay)
	if err != nil {
		t.Fatal(err)
	}
	if len(refRes.Classes) == 0 {
		t.Fatal("replayed run lost the per-class statistics")
	}
	if refRes.OfferedRate != 0 {
		t.Errorf("replayed run reports offered rate %g, want 0 (no configured load)", refRes.OfferedRate)
	}
	want := gobHash(t, refRes)
	for _, eng := range []engineSetup{
		{"active", EngineActive, 0},
		{"islands-k4", EngineIslands, 4},
	} {
		res, err := runEngine(eng, replay)
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if gobHash(t, res) != want {
			t.Errorf("replay under %s differs from the reference engine\nreference: %s\n%9s: %s",
				eng.name, resultJSON(t, refRes), eng.name, resultJSON(t, res))
		}
	}

	// Run-to-run determinism: the same replay twice is hash-identical.
	again, err := runEngine(ref, replay)
	if err != nil {
		t.Fatal(err)
	}
	if gobHash(t, again) != want {
		t.Error("two replays of the same trace differ")
	}

	// Mid-replay checkpoint under one engine, resume under another: the
	// finished Result must equal the uninterrupted replay's bit for bit.
	for _, cross := range []struct {
		name              string
		interrupt, resume engineSetup
	}{
		{"islands-to-active", engineSetup{"islands-k4", EngineIslands, 4}, engineSetup{"active", EngineActive, 0}},
		{"active-to-reference", engineSetup{"active", EngineActive, 0}, ref},
	} {
		t.Run(cross.name, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "replay.ckpt")
			withEngine(cross.interrupt, func() {
				sys, err := Build(replay)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sys.SimulateControlled(RunControl{CheckpointPath: ckpt, InterruptAtCycle: 150}); !errors.Is(err, ErrInterrupted) {
					t.Fatalf("got %v, want ErrInterrupted", err)
				}
			})
			withEngine(cross.resume, func() {
				res, err := ResumeRun(ckpt, RunControl{})
				if err != nil {
					t.Fatal(err)
				}
				if gobHash(t, res) != want {
					t.Errorf("checkpointed replay differs from uninterrupted\n got: %s\nwant: %s",
						resultJSON(t, res), resultJSON(t, refRes))
				}
			})
		})
	}
}

// TestWorkloadReplayReproducesRecording pins the strongest determinism
// property: a dependency-free trace recorded from a synthetic run and
// replayed under the recording configuration reproduces the original
// run's Summary exactly — same injection cycles, same deliveries, same
// latency distribution.
func TestWorkloadReplayReproducesRecording(t *testing.T) {
	cfg := equivConfig(HypercubeTopology(3))
	tracePath := filepath.Join(t.TempDir(), "synthetic.trace")
	recRes := recordTrace(t, cfg, tracePath)

	replay := cfg
	replay.Workload = "replay:" + tracePath
	res, err := runEngine(engineSetup{"active", EngineActive, 0}, replay)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recRes.Summary, res.Summary) {
		t.Errorf("replay does not reproduce the recorded run\nrecorded: %s\n replay: %s",
			resultJSON(t, recRes), resultJSON(t, res))
	}
	if recRes.OfferedPackets != res.OfferedPackets {
		t.Errorf("offered packets %d recorded, %d replayed", recRes.OfferedPackets, res.OfferedPackets)
	}
}

// TestWorkloadAIScaleOutEngineEquivalence runs the generator itself (not
// a trace) under all three engines: the dependency-driven phase machine
// must be engine-invariant too, since deliveries gate injections.
func TestWorkloadAIScaleOutEngineEquivalence(t *testing.T) {
	cfg := equivConfig(HypercubeTopology(3))
	cfg.Workload = aiWorkloadSpec
	refRes, err := runEngine(engineSetup{"reference", EngineReference, 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := gobHash(t, refRes)
	for _, eng := range []engineSetup{
		{"active", EngineActive, 0},
		{"islands-k4", EngineIslands, 4},
	} {
		res, err := runEngine(eng, cfg)
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if gobHash(t, res) != want {
			t.Errorf("aiscaleout under %s differs from the reference engine", eng.name)
		}
	}
}

// TestWorkloadRecordControlRejections covers the recording guard rails:
// no recording on resume, and no recording under another tracer.
func TestWorkloadRecordControlRejections(t *testing.T) {
	cfg := equivConfig(HypercubeTopology(3))
	if _, err := ResumeRun(filepath.Join(t.TempDir(), "none.ckpt"), RunControl{TracePath: "x.trace"}); err == nil {
		t.Error("recording on resume accepted")
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Topo.Fabric.Tracer = &trace.Recorder{}
	if _, err := sys.SimulateControlled(RunControl{TracePath: filepath.Join(t.TempDir(), "t.trace")}); err == nil {
		t.Error("recording under another tracer accepted")
	}
}

// TestWorkloadConfigValidation covers the Config-level workload checks.
func TestWorkloadConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = HypercubeTopology(3)
	cfg.Workload = "nonsense"
	if err := cfg.Validate(); err == nil {
		t.Error("bad workload spec accepted")
	}
	cfg.Workload = "aiscaleout:no-such-collective"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown collective kind accepted")
	}
	cfg.Workload = aiWorkloadSpec
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
	big := cfg
	big.Workload = "aiscaleout:allreduce-ring,reqflits=100000"
	if err := big.Validate(); err == nil {
		t.Error("request packets larger than the buffers accepted")
	}
}
