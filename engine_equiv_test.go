package chipletnet

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"chipletnet/internal/rng"
)

// gobHash canonically serializes v and returns its digest. gob rather
// than JSON because Result can legitimately carry NaN (AvgLatency of an
// empty measurement window), which JSON cannot encode.
func gobHash(t *testing.T, v any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
}

// runEngine runs cfg under the selected cycle engine (true = naive
// reference stepper, false = active-set engine) and restores the
// package knob afterwards.
func runEngine(useRef bool, cfg Config) (Result, error) {
	prev := UseReferenceEngine
	UseReferenceEngine = useRef
	defer func() { UseReferenceEngine = prev }()
	return Run(cfg)
}

// equivConfig is the shared small-but-complete workload shape for the
// equivalence matrix: long enough for credit backpressure, short enough
// that the full matrix stays fast.
func equivConfig(topo Topology) Config {
	cfg := DefaultConfig()
	cfg.Topology = topo
	cfg.InjectionRate = 0.2
	cfg.WarmupCycles = 50
	cfg.MeasureCycles = 250
	cfg.DrainCycles = 30000
	return cfg
}

// TestEngineEquivalence is the differential gate for the hot-path
// overhaul: across every topology kind, both routing modes, every
// interleave granularity, and fault schedules up to permanent kills, the
// active-set engine must produce a Result — statistics, energy, fault
// log, deadlock report — hash-identical to the retained reference
// stepper's. Any divergence is an engine bug by definition.
func TestEngineEquivalence(t *testing.T) {
	topos := []struct {
		name    string
		topo    Topology
		modes   []RoutingMode
		grouped bool // interface-group redundancy: kill events legal
	}{
		{"mesh", MeshTopology(2, 2), []RoutingMode{RoutingDuato}, false},
		{"hypercube", HypercubeTopology(3), []RoutingMode{RoutingDuato, RoutingSafeUnsafe}, true},
		{"ndtorus", NDTorusTopology(4, 4), []RoutingMode{RoutingDuato}, true},
		{"dragonfly", DragonflyTopology(4), []RoutingMode{RoutingDuato, RoutingSafeUnsafe}, true},
		{"tree", TreeTopology(5, 2), []RoutingMode{RoutingDuato}, true},
		{"custom", CustomTopology(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}}),
			[]RoutingMode{RoutingSafeUnsafe}, true},
	}
	for _, tc := range topos {
		t.Run(tc.name, func(t *testing.T) {
			for _, mode := range tc.modes {
				for _, il := range []string{"none", "message", "packet"} {
					base := equivConfig(tc.topo)
					base.Routing = mode
					base.Interleave = il

					// Fault schedule: BER everywhere plus a mid-run derating,
					// and on grouped topologies a permanent kill — so the
					// engines are also compared across retransmission, replay
					// and structural degradation.
					faulty := base
					faulty.Fault.BER = 5e-4
					if sys, err := Build(base); err == nil {
						if pairs := sys.Topo.CrossPairs(); len(pairs) > 0 {
							faulty.Fault.Degrade = []FaultDegrade{
								{Cycle: 120, A: pairs[0].A, B: pairs[0].B, BandwidthDiv: 2, LatencyMult: 2},
							}
							if tc.grouped {
								p := pairs[len(pairs)-1]
								faulty.Fault.Kill = []FaultKill{{Cycle: 150, A: p.A, B: p.B}}
							}
						}
					}

					for _, cc := range []struct {
						name string
						cfg  Config
					}{{"no-faults", base}, {"faults", faulty}} {
						name := fmt.Sprintf("%s/%s/%s", mode, il, cc.name)
						t.Run(name, func(t *testing.T) {
							refRes, refErr := runEngine(true, cc.cfg)
							actRes, actErr := runEngine(false, cc.cfg)
							if errText(refErr) != errText(actErr) {
								t.Fatalf("errors differ: reference %q, active %q", errText(refErr), errText(actErr))
							}
							if refErr != nil {
								return
							}
							if gobHash(t, refRes) != gobHash(t, actRes) {
								t.Errorf("Results differ between engines\nreference: %s\n   active: %s",
									resultJSON(t, refRes), resultJSON(t, actRes))
							}
						})
					}
				}
			}
		})
	}
}

// TestEngineCheckpointInterchangeable proves snapshots are
// engine-independent: a run interrupted under the reference engine must
// write a checkpoint byte-identical to one written under the active
// engine, and resuming a reference-engine checkpoint on the active
// engine (and vice versa) must finish bit-identical to an uninterrupted
// run.
func TestEngineCheckpointInterchangeable(t *testing.T) {
	cfg := equivConfig(HypercubeTopology(3))
	cfg.Fault.BER = 5e-4

	snapshot := func(useRef bool) []byte {
		prev := UseReferenceEngine
		UseReferenceEngine = useRef
		defer func() { UseReferenceEngine = prev }()
		path := filepath.Join(t.TempDir(), "run.ckpt")
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.SimulateControlled(RunControl{CheckpointPath: path, InterruptAtCycle: 150}); !errors.Is(err, ErrInterrupted) {
			t.Fatalf("got %v, want ErrInterrupted", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	refCkpt := snapshot(true)
	actCkpt := snapshot(false)
	if !bytes.Equal(refCkpt, actCkpt) {
		t.Fatal("checkpoint files differ between engines; the engine choice leaked into the snapshot format")
	}

	refRes, err := runEngine(true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, refRes)
	for _, cross := range []struct {
		name   string
		ckpt   []byte
		resume bool // engine for the resumed half
	}{
		{"reference-to-active", refCkpt, false},
		{"active-to-reference", actCkpt, true},
	} {
		t.Run(cross.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cross.ckpt")
			if err := os.WriteFile(path, cross.ckpt, 0o644); err != nil {
				t.Fatal(err)
			}
			prev := UseReferenceEngine
			UseReferenceEngine = cross.resume
			defer func() { UseReferenceEngine = prev }()
			res, err := ResumeRun(path, RunControl{})
			if err != nil {
				t.Fatal(err)
			}
			if got := resultJSON(t, res); got != want {
				t.Errorf("cross-engine resume differs\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestResetBitIdentical is the warm-reuse gate for SaturationRate: a
// Simulate on a Reset system must be bit-identical to a Simulate on a
// fresh Build — including at a different injection rate, the way the
// bisection uses it.
func TestResetBitIdentical(t *testing.T) {
	cfg := equivConfig(DragonflyTopology(4))
	cfg.Fault.BER = 5e-4 // BER is rate-only, legal to reuse across Reset

	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmFirst, err := sys.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	cfg2 := cfg
	cfg2.InjectionRate = 0.35
	sys.Cfg = cfg2
	warmSecond, err := sys.Simulate()
	if err != nil {
		t.Fatal(err)
	}

	freshFirst, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	freshSecond, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultJSON(t, warmFirst), resultJSON(t, freshFirst); got != want {
		t.Errorf("first warm run differs from fresh build\n got: %s\nwant: %s", got, want)
	}
	if got, want := resultJSON(t, warmSecond), resultJSON(t, freshSecond); got != want {
		t.Errorf("post-Reset run differs from fresh build\n got: %s\nwant: %s", got, want)
	}
}

// FuzzEngineEquivalence extends the differential gate across the random
// configuration space: for any buildable configuration, both engines
// must agree bit-for-bit — Result and error alike.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(20260806))
	f.Add(uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, seed uint64) {
		cfg := randomConfig(rng.New(seed))
		cfg.WarmupCycles = 60
		cfg.MeasureCycles = 240
		cfg.DrainCycles = 20000
		if seed%3 == 0 {
			cfg.Fault.BER = 5e-4
		}
		if _, err := Build(cfg); err != nil {
			t.Skip() // invalid combinations may be rejected, not crash
		}
		refRes, refErr := runEngine(true, cfg)
		actRes, actErr := runEngine(false, cfg)
		if errText(refErr) != errText(actErr) {
			t.Fatalf("seed %d: errors differ: reference %q, active %q", seed, errText(refErr), errText(actErr))
		}
		if refErr != nil {
			return
		}
		if gobHash(t, refRes) != gobHash(t, actRes) {
			t.Errorf("seed %d (%+v): Results differ between engines\nreference: %s\n   active: %s",
				seed, cfg.Topology, resultJSON(t, refRes), resultJSON(t, actRes))
		}
	})
}
