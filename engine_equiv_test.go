package chipletnet

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"chipletnet/internal/rng"
)

// gobHash canonically serializes v and returns its digest. gob rather
// than JSON because Result can legitimately carry NaN (AvgLatency of an
// empty measurement window), which JSON cannot encode.
func gobHash(t *testing.T, v any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
}

// engineSetup is one cell of the engine axis: a cycle engine plus, for
// the islands engine, its island count.
type engineSetup struct {
	name string
	eng  Engine
	k    int
}

// equivEngines is the engine axis of the three-way differential matrix:
// the reference oracle, the active-set engine, and the parallel-islands
// engine at K ∈ {1, 2, 4, NumCPU} (deduplicated — K is clamped to the
// chiplet count at Build, so every cell is meaningful on any topology).
func equivEngines() []engineSetup {
	setups := []engineSetup{
		{"reference", EngineReference, 0},
		{"active", EngineActive, 0},
	}
	seen := map[int]bool{}
	for _, k := range []int{1, 2, 4, runtime.NumCPU()} {
		if k < 1 || seen[k] {
			continue
		}
		seen[k] = true
		setups = append(setups, engineSetup{fmt.Sprintf("islands-k%d", k), EngineIslands, k})
	}
	return setups
}

// withEngine installs s as the process-wide engine selection, runs fn,
// and restores the previous selection.
func withEngine(s engineSetup, fn func()) {
	prevE, prevK := UseEngine, IslandCount
	UseEngine, IslandCount = s.eng, s.k
	defer func() { UseEngine, IslandCount = prevE, prevK }()
	fn()
}

// runEngine runs cfg under the given cycle engine and restores the
// package knobs afterwards.
func runEngine(s engineSetup, cfg Config) (res Result, err error) {
	withEngine(s, func() { res, err = Run(cfg) })
	return res, err
}

// equivConfig is the shared small-but-complete workload shape for the
// equivalence matrix: long enough for credit backpressure, short enough
// that the full matrix stays fast.
func equivConfig(topo Topology) Config {
	cfg := DefaultConfig()
	cfg.Topology = topo
	cfg.InjectionRate = 0.2
	cfg.WarmupCycles = 50
	cfg.MeasureCycles = 250
	cfg.DrainCycles = 30000
	return cfg
}

// TestEngineEquivalence is the differential gate for the hot-path
// overhauls: across every topology kind, both routing modes interpreted
// AND compiled, every interleave granularity, and fault schedules up to
// permanent kills, the active-set engine and the parallel-islands
// engine (at every K of the engine axis) must produce a Result —
// statistics, energy, fault log, deadlock report — hash-identical to
// the retained reference stepper's. Any divergence is an engine bug by
// definition. Combinations compiled routing rejects at Build (no
// certified tables) must be rejected identically by every engine.
func TestEngineEquivalence(t *testing.T) {
	engines := equivEngines()
	topos := []struct {
		name    string
		topo    Topology
		modes   []RoutingMode
		grouped bool // interface-group redundancy: kill events legal
	}{
		{"mesh", MeshTopology(2, 2), []RoutingMode{RoutingDuato}, false},
		{"hypercube", HypercubeTopology(3), []RoutingMode{RoutingDuato, RoutingSafeUnsafe}, true},
		{"ndtorus", NDTorusTopology(4, 4), []RoutingMode{RoutingDuato}, true},
		{"dragonfly", DragonflyTopology(4), []RoutingMode{RoutingDuato, RoutingSafeUnsafe}, true},
		{"tree", TreeTopology(5, 2), []RoutingMode{RoutingDuato}, true},
		{"custom", CustomTopology(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}}),
			[]RoutingMode{RoutingSafeUnsafe}, true},
	}
	for _, tc := range topos {
		t.Run(tc.name, func(t *testing.T) {
			for _, mode := range tc.modes {
				for _, compiled := range []bool{false, true} {
					for _, il := range []string{"none", "message", "packet"} {
						base := equivConfig(tc.topo)
						base.Routing = mode
						base.CompiledRouting = compiled
						base.Interleave = il

						// Fault schedule: BER everywhere plus a mid-run derating,
						// and on grouped topologies a permanent kill — so the
						// engines are also compared across retransmission, replay
						// and structural degradation.
						faulty := base
						faulty.Fault.BER = 5e-4
						if sys, err := Build(base); err == nil {
							if pairs := sys.Topo.CrossPairs(); len(pairs) > 0 {
								faulty.Fault.Degrade = []FaultDegrade{
									{Cycle: 120, A: pairs[0].A, B: pairs[0].B, BandwidthDiv: 2, LatencyMult: 2},
								}
								if tc.grouped {
									p := pairs[len(pairs)-1]
									faulty.Fault.Kill = []FaultKill{{Cycle: 150, A: p.A, B: p.B}}
								}
							}
						}

						for _, cc := range []struct {
							name string
							cfg  Config
						}{{"no-faults", base}, {"faults", faulty}} {
							routing := string(mode)
							if compiled {
								routing += "-compiled"
							}
							name := fmt.Sprintf("%s/%s/%s", routing, il, cc.name)
							t.Run(name, func(t *testing.T) {
								refRes, refErr := runEngine(engines[0], cc.cfg)
								var want string
								if refErr == nil {
									want = gobHash(t, refRes)
								}
								for _, eng := range engines[1:] {
									res, err := runEngine(eng, cc.cfg)
									if errText(refErr) != errText(err) {
										t.Fatalf("errors differ: reference %q, %s %q",
											errText(refErr), eng.name, errText(err))
									}
									if refErr != nil {
										continue
									}
									if gobHash(t, res) != want {
										t.Errorf("Results differ between engines\nreference: %s\n%9s: %s",
											resultJSON(t, refRes), eng.name, resultJSON(t, res))
									}
								}
							})
						}
					}
				}
			}
		})
	}
}

// TestEngineCheckpointInterchangeable proves snapshots are
// engine-independent: a run interrupted under any engine — reference,
// active, or parallel islands — must write a byte-identical checkpoint,
// and a checkpoint taken under one engine must resume under any other
// (islands to active, active to islands, and both to/from the
// reference) bit-identical to an uninterrupted run.
func TestEngineCheckpointInterchangeable(t *testing.T) {
	cfg := equivConfig(HypercubeTopology(3))
	cfg.Fault.BER = 5e-4

	ref := engineSetup{"reference", EngineReference, 0}
	act := engineSetup{"active", EngineActive, 0}
	isl := engineSetup{"islands-k3", EngineIslands, 3}

	snapshot := func(s engineSetup) []byte {
		var data []byte
		withEngine(s, func() {
			path := filepath.Join(t.TempDir(), "run.ckpt")
			sys, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.SimulateControlled(RunControl{CheckpointPath: path, InterruptAtCycle: 150}); !errors.Is(err, ErrInterrupted) {
				t.Fatalf("got %v, want ErrInterrupted", err)
			}
			if data, err = os.ReadFile(path); err != nil {
				t.Fatal(err)
			}
		})
		return data
	}
	refCkpt := snapshot(ref)
	actCkpt := snapshot(act)
	islCkpt := snapshot(isl)
	if !bytes.Equal(refCkpt, actCkpt) || !bytes.Equal(actCkpt, islCkpt) {
		t.Fatal("checkpoint files differ between engines; the engine choice leaked into the snapshot format")
	}

	refRes, err := runEngine(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, refRes)
	for _, cross := range []struct {
		name   string
		ckpt   []byte
		resume engineSetup
	}{
		{"reference-to-active", refCkpt, act},
		{"active-to-reference", actCkpt, ref},
		{"islands-to-active", islCkpt, act},
		{"active-to-islands", actCkpt, isl},
		{"islands-to-reference", islCkpt, ref},
		{"reference-to-islands", refCkpt, isl},
	} {
		t.Run(cross.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cross.ckpt")
			if err := os.WriteFile(path, cross.ckpt, 0o644); err != nil {
				t.Fatal(err)
			}
			withEngine(cross.resume, func() {
				res, err := ResumeRun(path, RunControl{})
				if err != nil {
					t.Fatal(err)
				}
				if got := resultJSON(t, res); got != want {
					t.Errorf("cross-engine resume differs\n got: %s\nwant: %s", got, want)
				}
			})
		})
	}
}

// TestResetBitIdentical is the warm-reuse gate for SaturationRate: a
// Simulate on a Reset system must be bit-identical to a Simulate on a
// fresh Build — including at a different injection rate, the way the
// bisection uses it. The islands engine reclassifies its partition
// lazily after Reset, so it runs the same gate.
func TestResetBitIdentical(t *testing.T) {
	for _, eng := range []engineSetup{
		{"active", EngineActive, 0},
		{"islands-k2", EngineIslands, 2},
	} {
		t.Run(eng.name, func(t *testing.T) {
			withEngine(eng, func() {
				cfg := equivConfig(DragonflyTopology(4))
				cfg.Fault.BER = 5e-4 // BER is rate-only, legal to reuse across Reset

				sys, err := Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				warmFirst, err := sys.Simulate()
				if err != nil {
					t.Fatal(err)
				}
				sys.Reset()
				cfg2 := cfg
				cfg2.InjectionRate = 0.35
				sys.Cfg = cfg2
				warmSecond, err := sys.Simulate()
				if err != nil {
					t.Fatal(err)
				}

				freshFirst, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				freshSecond, err := Run(cfg2)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := resultJSON(t, warmFirst), resultJSON(t, freshFirst); got != want {
					t.Errorf("first warm run differs from fresh build\n got: %s\nwant: %s", got, want)
				}
				if got, want := resultJSON(t, warmSecond), resultJSON(t, freshSecond); got != want {
					t.Errorf("post-Reset run differs from fresh build\n got: %s\nwant: %s", got, want)
				}
			})
		})
	}
}

// FuzzEngineEquivalence extends the differential gate across the random
// configuration space: for any buildable configuration, all three
// engines must agree bit-for-bit — Result and error alike. The islands
// engine runs at a seed-derived K so the corpus explores partition
// sizes, plus K=2 always (the smallest partition with a real cut).
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(20260806))
	f.Add(uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, seed uint64) {
		cfg := randomConfig(rng.New(seed))
		cfg.WarmupCycles = 60
		cfg.MeasureCycles = 240
		cfg.DrainCycles = 20000
		if seed%3 == 0 {
			cfg.Fault.BER = 5e-4
		}
		if _, err := Build(cfg); err != nil {
			t.Skip() // invalid combinations may be rejected, not crash
		}
		refRes, refErr := runEngine(engineSetup{"reference", EngineReference, 0}, cfg)
		var want string
		if refErr == nil {
			want = gobHash(t, refRes)
		}
		for _, eng := range []engineSetup{
			{"active", EngineActive, 0},
			{"islands-k2", EngineIslands, 2},
			{fmt.Sprintf("islands-k%d", 1+seed%7), EngineIslands, int(1 + seed%7)},
		} {
			res, err := runEngine(eng, cfg)
			if errText(refErr) != errText(err) {
				t.Fatalf("seed %d: errors differ: reference %q, %s %q",
					seed, errText(refErr), eng.name, errText(err))
			}
			if refErr != nil {
				continue
			}
			if gobHash(t, res) != want {
				t.Errorf("seed %d (%+v): Results differ between engines\nreference: %s\n%9s: %s",
					seed, cfg.Topology, resultJSON(t, refRes), eng.name, resultJSON(t, res))
			}
		}
	})
}
