package chipletnet

import (
	"fmt"

	"chipletnet/internal/collective"
	"chipletnet/internal/interleave"
)

// Collective describes a collective-communication operation to run on a
// built system (participants are all core nodes).
type Collective struct {
	// Kind is one of "allreduce-ring", "allreduce-recursive-doubling",
	// "allgather-ring", "alltoall".
	Kind string
	// DataFlits is the per-node payload: the vector size for all-reduce,
	// the per-node block for all-gather, the per-destination block for
	// all-to-all.
	DataFlits int
}

// CollectiveResult reports the timing of one collective execution.
type CollectiveResult struct {
	Algorithm string
	// CompletionCycles is the cycle of the final delivery.
	CompletionCycles int64
	// Messages / TotalFlits describe the schedule volume.
	Messages   int
	TotalFlits int64
	// BusBandwidth is total flits moved per cycle per participant.
	BusBandwidth float64
}

// RunCollective builds cfg's system and executes the collective on it,
// returning its completion time. Traffic-related configuration fields
// (Pattern, InjectionRate, cycles) are ignored; packets use cfg.PacketFlits
// and cfg.Interleave.
func RunCollective(cfg Config, coll Collective) (CollectiveResult, error) {
	alg, err := collectiveAlgorithm(coll.Kind, coll.DataFlits)
	if err != nil {
		return CollectiveResult{}, err
	}
	sys, err := Build(cfg)
	if err != nil {
		return CollectiveResult{}, err
	}
	gran, err := interleave.ParseGranularity(cfg.Interleave)
	if err != nil {
		return CollectiveResult{}, err
	}
	res, err := collective.Run(sys.Topo, alg, cfg.PacketFlits, interleave.Policy{G: gran})
	if err != nil {
		return CollectiveResult{}, err
	}
	return CollectiveResult{
		Algorithm:        res.Algorithm,
		CompletionCycles: res.CompletionCycles,
		Messages:         res.Messages,
		TotalFlits:       res.TotalFlits,
		BusBandwidth:     res.BusBandwidth,
	}, nil
}

// collectiveAlgorithm maps a collective kind name to its schedule
// implementation — the one registry, shared by RunCollective and the
// AI-scale-out workload.
func collectiveAlgorithm(kind string, dataFlits int) (collective.Algorithm, error) {
	switch kind {
	case "allreduce-ring":
		return collective.RingAllReduce{VectorFlits: dataFlits}, nil
	case "allreduce-recursive-doubling":
		return collective.RecursiveDoublingAllReduce{VectorFlits: dataFlits}, nil
	case "allgather-ring":
		return collective.AllGatherRing{BlockFlits: dataFlits}, nil
	case "alltoall":
		return collective.AllToAll{BlockFlits: dataFlits}, nil
	}
	return nil, fmt.Errorf("chipletnet: unknown collective %q", kind)
}

// CollectiveKinds lists the supported collective operations.
func CollectiveKinds() []string {
	return []string{"allreduce-ring", "allreduce-recursive-doubling", "allgather-ring", "alltoall"}
}
