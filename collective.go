package chipletnet

import (
	"fmt"

	"chipletnet/internal/collective"
	"chipletnet/internal/interleave"
)

// Collective describes a collective-communication operation to run on a
// built system (participants are all core nodes).
type Collective struct {
	// Kind is one of "allreduce-ring", "allreduce-recursive-doubling",
	// "allgather-ring", "alltoall".
	Kind string
	// DataFlits is the per-node payload: the vector size for all-reduce,
	// the per-node block for all-gather, the per-destination block for
	// all-to-all.
	DataFlits int
}

// CollectiveResult reports the timing of one collective execution.
type CollectiveResult struct {
	Algorithm string
	// CompletionCycles is the cycle of the final delivery.
	CompletionCycles int64
	// Messages / TotalFlits describe the schedule volume.
	Messages   int
	TotalFlits int64
	// BusBandwidth is total flits moved per cycle per participant.
	BusBandwidth float64
}

// RunCollective builds cfg's system and executes the collective on it,
// returning its completion time. Traffic-related configuration fields
// (Pattern, InjectionRate, cycles) are ignored; packets use cfg.PacketFlits
// and cfg.Interleave.
func RunCollective(cfg Config, coll Collective) (CollectiveResult, error) {
	var alg collective.Algorithm
	switch coll.Kind {
	case "allreduce-ring":
		alg = collective.RingAllReduce{VectorFlits: coll.DataFlits}
	case "allreduce-recursive-doubling":
		alg = collective.RecursiveDoublingAllReduce{VectorFlits: coll.DataFlits}
	case "allgather-ring":
		alg = collective.AllGatherRing{BlockFlits: coll.DataFlits}
	case "alltoall":
		alg = collective.AllToAll{BlockFlits: coll.DataFlits}
	default:
		return CollectiveResult{}, fmt.Errorf("chipletnet: unknown collective %q", coll.Kind)
	}
	sys, err := Build(cfg)
	if err != nil {
		return CollectiveResult{}, err
	}
	gran, err := interleave.ParseGranularity(cfg.Interleave)
	if err != nil {
		return CollectiveResult{}, err
	}
	res, err := collective.Run(sys.Topo, alg, cfg.PacketFlits, interleave.Policy{G: gran})
	if err != nil {
		return CollectiveResult{}, err
	}
	return CollectiveResult{
		Algorithm:        res.Algorithm,
		CompletionCycles: res.CompletionCycles,
		Messages:         res.Messages,
		TotalFlits:       res.TotalFlits,
		BusBandwidth:     res.BusBandwidth,
	}, nil
}

// CollectiveKinds lists the supported collective operations.
func CollectiveKinds() []string {
	return []string{"allreduce-ring", "allreduce-recursive-doubling", "allgather-ring", "alltoall"}
}
