package chipletnet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
)

// TestDeterminismAcrossGOMAXPROCS is the cross-scheduler golden test: the
// JSON-serialized Results of a topology-and-fault matrix, swept in
// parallel through Sweep, must hash identically under GOMAXPROCS=1 and
// GOMAXPROCS=N. Sweep is the only concurrency in the stack, so any
// divergence means shared mutable state leaked between simulations.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	var configs []Config
	for _, topo := range []Topology{
		MeshTopology(2, 2),
		HypercubeTopology(3),
		DragonflyTopology(4),
		TreeTopology(5, 2),
	} {
		for _, faults := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Topology = topo
			cfg.WarmupCycles = 50
			cfg.MeasureCycles = 200
			cfg.DrainCycles = 20000
			if faults {
				cfg.Fault.BER = 5e-4
			}
			configs = append(configs, cfg)
		}
	}
	// High enough that every topology delivers measured traffic at the
	// short window (an empty measurement window makes AvgLatency NaN,
	// which JSON cannot encode).
	rates := []float64{0.15, 0.3}

	digest := func() string {
		h := sha256.New()
		for i, cfg := range configs {
			results, err := Sweep(cfg, rates)
			if err != nil {
				t.Fatalf("config %d (%+v): %v", i, cfg.Topology, err)
			}
			b, err := json.Marshal(results)
			if err != nil {
				t.Fatal(err)
			}
			h.Write(b)
		}
		return fmt.Sprintf("%x", h.Sum(nil))
	}

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	serial := digest()

	n := runtime.NumCPU()
	if n < 4 {
		n = 4
	}
	runtime.GOMAXPROCS(n)
	parallel := digest()

	if serial != parallel {
		t.Errorf("results depend on scheduling: GOMAXPROCS=1 digest %s, GOMAXPROCS=%d digest %s", serial, n, parallel)
	}
}

// TestIslandsDeterminismAcrossGOMAXPROCS is the same golden test for
// the parallel-islands engine, which adds intra-run concurrency on top
// of Sweep's campaign-level concurrency: the per-cycle worker schedule
// must be unobservable, so the digest must be identical whether the K=4
// islands time-slice one processor (GOMAXPROCS=1) or run truly in
// parallel (GOMAXPROCS>=4) — and identical to the serial engines'
// digest, which the three-way equivalence matrix pins separately.
func TestIslandsDeterminismAcrossGOMAXPROCS(t *testing.T) {
	var configs []Config
	for _, topo := range []Topology{
		HypercubeTopology(3),
		NDTorusTopology(4, 4),
		TreeTopology(5, 2),
	} {
		for _, faults := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Topology = topo
			cfg.WarmupCycles = 50
			cfg.MeasureCycles = 200
			cfg.DrainCycles = 20000
			if faults {
				cfg.Fault.BER = 5e-4
			}
			configs = append(configs, cfg)
		}
	}
	rates := []float64{0.15, 0.3}

	digest := func() string {
		h := sha256.New()
		for i, cfg := range configs {
			results, err := Sweep(cfg, rates)
			if err != nil {
				t.Fatalf("config %d (%+v): %v", i, cfg.Topology, err)
			}
			b, err := json.Marshal(results)
			if err != nil {
				t.Fatal(err)
			}
			h.Write(b)
		}
		return fmt.Sprintf("%x", h.Sum(nil))
	}

	withEngine(engineSetup{"islands-k4", EngineIslands, 4}, func() {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		serial := digest()

		n := runtime.NumCPU()
		if n < 4 {
			n = 4
		}
		runtime.GOMAXPROCS(n)
		parallel := digest()

		if serial != parallel {
			t.Errorf("islands results depend on scheduling: GOMAXPROCS=1 digest %s, GOMAXPROCS=%d digest %s", serial, n, parallel)
		}
	})
}
