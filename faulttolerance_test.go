package chipletnet

import (
	"errors"
	"reflect"
	"testing"

	"chipletnet/internal/fault"
	"chipletnet/internal/rng"
	"chipletnet/internal/verify"
)

// faultTestConfig returns a small fast configuration for fault tests.
func faultTestConfig(topo Topology) Config {
	cfg := DefaultConfig()
	cfg.Topology = topo
	cfg.InjectionRate = 0.1
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 600
	cfg.DrainCycles = 30000
	cfg.CheckCredits = true
	return cfg
}

// TestKilledCrossLinkPerTopology kills one inter-chiplet channel mid-run in
// every built topology and requires one of exactly two outcomes: the run
// reroutes and drains completely with bounded latency inflation, or it ends
// with the typed ErrPartitioned — it must never hang the watchdog or lose a
// packet.
func TestKilledCrossLinkPerTopology(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
	}{
		{"hypercube", HypercubeTopology(3)},
		{"ndmesh", NDMeshTopology(2, 2)},
		{"dragonfly", DragonflyTopology(4)},
		{"tree", TreeTopology(5, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := faultTestConfig(tc.topo)
			baseline, err := Run(base)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if baseline.Deadlocked {
				t.Fatal("baseline deadlocked")
			}

			sys, err := Build(base)
			if err != nil {
				t.Fatal(err)
			}
			pairs := sys.Topo.CrossPairs()
			if len(pairs) == 0 {
				t.Fatal("no cross links")
			}
			cfg := base
			cfg.Fault.Kill = []FaultKill{{Cycle: 300, A: pairs[0].A, B: pairs[0].B}}
			res, err := Run(cfg)
			if err != nil {
				if !errors.Is(err, fault.ErrPartitioned) {
					t.Fatalf("untyped failure: %v", err)
				}
				return // a refused kill is a legal outcome
			}
			if res.Deadlocked {
				t.Fatalf("deadlocked after kill: %v", res.DeadlockReport)
			}
			if !res.Drained || res.InFlightAtEnd != 0 {
				t.Fatalf("did not drain: drained=%v inflight=%d", res.Drained, res.InFlightAtEnd)
			}
			st := res.FaultStats
			if st == nil {
				t.Fatal("no fault stats")
			}
			if st.LostPackets != 0 || st.DuplicatePackets != 0 {
				t.Fatalf("lost=%d dup=%d, want 0/0", st.LostPackets, st.DuplicatePackets)
			}
			if st.LinksKilled != 1 {
				t.Fatalf("links killed = %d, want 1", st.LinksKilled)
			}
			// Bounded latency inflation: the degraded network stays in the
			// same regime as the baseline (generous bound to keep the test
			// robust across schedule noise at low load).
			if baseline.AvgLatency > 0 && res.AvgLatency > 5*baseline.AvgLatency {
				t.Errorf("latency inflated %.1f -> %.1f (>5x)", baseline.AvgLatency, res.AvgLatency)
			}
		})
	}
}

// TestFaultAcceptanceHypercube is the PR's acceptance scenario: a
// saturating uniform-random run on the 4-dimensional hypercube with
// BER 1e-4 on the D2D links and one permanent interface failure in every
// group of chiplet 0. It must complete with zero lost or duplicated
// packets, report retransmissions and rerouted packets, and the degraded
// topology must still pass static verification.
func TestFaultAcceptanceHypercube(t *testing.T) {
	cfg := faultTestConfig(HypercubeTopology(4))
	cfg.InjectionRate = 0.5 // beyond saturation for this setup
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 1500
	cfg.DrainCycles = 60000
	cfg.Fault.BER = 1e-4

	// One interface failure per group of chiplet 0, staggered mid-run.
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip0 := sys.Topo.Chiplets[0]
	for g, members := range chip0.Groups {
		// Kill the last member so minus-only rides toward it exercise the
		// condemned-fallback path.
		a := members[len(members)-1]
		pa := sys.Topo.CrossPort(a)
		if pa < 0 {
			t.Fatalf("group %d member %d has no cross port", g, a)
		}
		b := sys.Topo.Nodes[a].Ports[pa].To
		cfg.Fault.Kill = append(cfg.Fault.Kill, FaultKill{Cycle: int64(400 + 100*g), A: a, B: b})
	}

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Deadlocked {
		t.Fatalf("deadlocked: %v", res.DeadlockReport)
	}
	if !res.Drained || res.InFlightAtEnd != 0 {
		t.Fatalf("did not drain: drained=%v inflight=%d", res.Drained, res.InFlightAtEnd)
	}
	st := res.FaultStats
	if st == nil {
		t.Fatal("no fault stats")
	}
	if st.LostPackets != 0 || st.DuplicatePackets != 0 {
		t.Fatalf("lost=%d dup=%d, want 0/0", st.LostPackets, st.DuplicatePackets)
	}
	if st.Retransmissions == 0 || st.CorruptedBundles == 0 {
		t.Errorf("BER 1e-4 produced no retransmissions: %+v", *st)
	}
	if st.ReroutedPackets == 0 {
		t.Error("interface failures rerouted no packets")
	}
	if st.LinksKilled != len(chip0.Groups) {
		t.Errorf("links killed = %d, want %d", st.LinksKilled, len(chip0.Groups))
	}
	if len(res.FaultEvents) == 0 {
		t.Error("empty fault event log")
	}

	// The degraded topology must pass the static verifier, full strength.
	degraded, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range cfg.Fault.Kill {
		if err := degraded.Topo.FailCrossLink(k.A, k.B); err != nil {
			t.Fatalf("replaying kill %d-%d: %v", k.A, k.B, err)
		}
	}
	if rep := degraded.VerifyRouting(verify.Options{}); rep.Err() != nil {
		t.Errorf("degraded topology fails verification: %v", rep.Err())
	}
}

// TestFaultsDisabledDeterminism: the fault machinery must be invisible when
// disabled — two fault-free runs of the same seed produce identical
// results, and no fault state leaks into the Result.
func TestFaultsDisabledDeterminism(t *testing.T) {
	cfg := faultTestConfig(HypercubeTopology(3))
	cfg.CheckCredits = false
	cfg.DrainCycles = 0
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultStats != nil || len(a.FaultEvents) != 0 {
		t.Error("fault state in a fault-free Result")
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Errorf("fault-free runs diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
	// And the same seed with the audit enabled must not change results
	// either (the audit only observes).
	cfg.CheckCredits = true
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Summary, c.Summary) {
		t.Errorf("credit audit changed results:\n%+v\n%+v", a.Summary, c.Summary)
	}
}

// TestFaultSchedulePartitionTyped: killing both channels of a two-member
// group must end with ErrPartitioned, not a hang.
func TestFaultSchedulePartitionTyped(t *testing.T) {
	cfg := faultTestConfig(HypercubeTopology(3))
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Kill every channel of group 0 of chiplet 0, one per cycle: at some
	// point the group would disconnect and the engine must refuse.
	for i, a := range sys.Topo.Chiplets[0].Groups[0] {
		pa := sys.Topo.CrossPort(a)
		b := sys.Topo.Nodes[a].Ports[pa].To
		cfg.Fault.Kill = append(cfg.Fault.Kill, FaultKill{Cycle: int64(200 + i), A: a, B: b})
	}
	_, err = Run(cfg)
	if err == nil {
		t.Fatal("killing a whole group did not error")
	}
	if !errors.Is(err, fault.ErrPartitioned) {
		t.Fatalf("got %v, want ErrPartitioned", err)
	}
}

// FuzzFaultSchedule drives random seeded fault schedules (BER plus up to
// three kills and one derating at random cycles) on a small hypercube.
// Every schedule must end in a clean drain with zero lost or duplicated
// packets, or a typed error — never a hang and never an untyped failure.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Add(uint64(20260806))
	f.Add(uint64(0xfa17))
	f.Fuzz(func(t *testing.T, seed uint64) {
		r := rng.New(seed)
		cfg := faultTestConfig(HypercubeTopology(3))
		cfg.Seed = seed
		cfg.WarmupCycles = 50
		cfg.MeasureCycles = 400
		cfg.DrainCycles = 40000
		cfg.InjectionRate = 0.05 + 0.4*r.Float64()
		if r.Bernoulli(0.5) {
			cfg.Routing = RoutingSafeUnsafe
		}
		// BER up to 2e-3 off-chip, occasionally on-chip too.
		cfg.Fault.BER = r.Float64() * 2e-3
		if r.Bernoulli(0.3) {
			cfg.Fault.OnChipBER = r.Float64() * 1e-4
		}
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pairs := sys.Topo.CrossPairs()
		for i, n := 0, r.Intn(4); i < n; i++ {
			p := pairs[r.Intn(len(pairs))]
			cfg.Fault.Kill = append(cfg.Fault.Kill,
				FaultKill{Cycle: int64(60 + r.Intn(400)), A: p.A, B: p.B})
		}
		if r.Bernoulli(0.5) {
			p := pairs[r.Intn(len(pairs))]
			cfg.Fault.Degrade = append(cfg.Fault.Degrade, FaultDegrade{
				Cycle: int64(60 + r.Intn(400)), A: p.A, B: p.B,
				BandwidthDiv: 1 + r.Intn(3), LatencyMult: 1 + r.Intn(3),
			})
		}

		res, err := Run(cfg)
		if err != nil {
			if errors.Is(err, fault.ErrPartitioned) ||
				errors.Is(err, fault.ErrDegradedUnsafe) ||
				errors.Is(err, fault.ErrBadSchedule) {
				return // typed refusal is a legal outcome
			}
			t.Fatalf("untyped failure: %v", err)
		}
		if res.Deadlocked {
			t.Fatalf("deadlocked: %v (schedule %+v)", res.DeadlockReport, cfg.Fault)
		}
		if !res.Drained || res.InFlightAtEnd != 0 {
			t.Fatalf("did not drain: inflight=%d (schedule %+v)", res.InFlightAtEnd, cfg.Fault)
		}
		if st := res.FaultStats; st != nil && (st.LostPackets != 0 || st.DuplicatePackets != 0) {
			t.Fatalf("lost=%d dup=%d (schedule %+v)", st.LostPackets, st.DuplicatePackets, cfg.Fault)
		}
	})
}
