package chipletnet

import (
	"fmt"
	"testing"

	"chipletnet/internal/verify"
)

// saturate runs cfg briefly at a deadlock-hunting operating point: high
// load, a tight watchdog, and enough cycles for the watchdog to speak.
func saturate(t *testing.T, cfg Config, pattern string) Result {
	t.Helper()
	cfg.Pattern = pattern
	cfg.InjectionRate = 0.9
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 1800
	cfg.DeadlockThreshold = 500
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%v / %s: %v", cfg.Topology, pattern, err)
	}
	return res
}

// TestVerifierMatchesWatchdogOnSafeConfigs cross-validates the static
// verifier against the runtime deadlock watchdog: every configuration the
// verifier passes must survive a short saturating simulation without
// tripping the watchdog.
func TestVerifierMatchesWatchdogOnSafeConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("saturating cross-validation is not short")
	}
	cases := []struct {
		topo Topology
		mode RoutingMode
	}{
		{MeshTopology(3, 3), RoutingDuato},
		{HypercubeTopology(4), RoutingDuato},
		{HypercubeTopology(4), RoutingSafeUnsafe},
		{NDMeshTopology(4, 2, 2), RoutingDuato},
		{NDMeshTopology(4, 2, 2), RoutingSafeUnsafe},
		{NDTorusTopology(4, 3), RoutingDuato},
		{DragonflyTopology(6), RoutingDuato},
		{TreeTopology(7, 2), RoutingSafeUnsafe},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%v-%s", tc.topo, tc.mode), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Topology = tc.topo
			cfg.Routing = tc.mode
			rep, err := VerifyConfig(cfg, verify.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				t.Fatalf("verifier rejected a known-good config:\n%s", rep)
			}
			for _, pattern := range []string{"uniform", "bit-reverse"} {
				res := saturate(t, cfg, pattern)
				if res.Deadlocked {
					t.Errorf("verified-safe config tripped the watchdog under %s:\n%v",
						pattern, res.Cfg.Topology)
				}
			}
		})
	}
}

// TestVerifierFlagsKnownBadConfig: the other direction of the
// cross-validation — the configuration Theorem 1 proves deadlock-prone
// (equal-channel nD-mesh under Duato's protocol) must be rejected before
// simulation, with a concrete channel-dependency-cycle witness.
func TestVerifierFlagsKnownBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = NDMeshTopology(4, 2, 2)
	cfg.DisableNDMeshVCSeparation = true
	cfg.AllowUnsafeRouting = true
	rep, err := VerifyConfig(cfg, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() == nil {
		t.Fatalf("equal-channel mode passed verification:\n%s", rep)
	}
	if len(rep.Cycle) == 0 {
		t.Fatalf("no dependency-cycle witness:\n%s", rep)
	}
	for i, e := range rep.Cycle {
		if next := rep.Cycle[(i+1)%len(rep.Cycle)]; e.To != next.From {
			t.Errorf("witness not closed at edge %d: %v then %v", i, e, next)
		}
	}
}
