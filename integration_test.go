package chipletnet

import (
	"math"
	"testing"
)

// Timing audit (parallel-islands PR): every assertion in this file is a
// cycle-count or deterministic-metric bound — no wall-clock waits,
// sleeps or timeouts — so a slower run (e.g. -race with the islands
// engine's per-cycle barriers) cannot flake it. Keep it that way: new
// assertions must be phrased in simulated cycles, never real time.

// fastCfg returns a configuration sized for quick integration tests.
func fastCfg(topo Topology) Config {
	cfg := DefaultConfig()
	cfg.Topology = topo
	cfg.WarmupCycles = 300
	cfg.MeasureCycles = 2700
	cfg.InjectionRate = 0.1
	return cfg
}

func smallTopologies() []Topology {
	return []Topology{
		MeshTopology(2, 2),
		MeshTopology(4, 4),
		HypercubeTopology(2),
		HypercubeTopology(4),
		NDMeshTopology(2, 2),
		NDMeshTopology(4, 2, 2),
		NDTorusTopology(4, 3),
		DragonflyTopology(4),
		DragonflyTopology(6),
		TreeTopology(7, 2),
	}
}

// TestAllTopologiesDeliver runs light load on every topology and checks
// that traffic flows, nothing deadlocks, and accepted throughput tracks
// the offered load.
func TestAllTopologiesDeliver(t *testing.T) {
	for _, topo := range smallTopologies() {
		cfg := fastCfg(topo)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if res.Deadlocked {
			t.Errorf("%v: deadlocked at light load", topo)
		}
		if res.MeasuredPackets == 0 {
			t.Errorf("%v: no measured packets", topo)
		}
		// Compare against the traffic actually offered (small systems see
		// few messages, so the configured rate itself is noisy); allow
		// slack for messages still in flight at the window end.
		offeredRate := float64(res.OfferedPackets*cfg.PacketFlits) /
			float64(cfg.MeasureCycles) / float64(res.Endpoints)
		if res.AcceptedFlitsPerNodeCycle < 0.7*offeredRate {
			t.Errorf("%v: accepted %.3f of actually-offered %.3f at light load",
				topo, res.AcceptedFlitsPerNodeCycle, offeredRate)
		}
		if math.IsNaN(res.AvgLatency) || res.AvgLatency <= 0 {
			t.Errorf("%v: bad latency %v", topo, res.AvgLatency)
		}
		if res.EnergyPJPerBit <= 0 {
			t.Errorf("%v: bad energy %v", topo, res.EnergyPJPerBit)
		}
	}
}

// TestSaturationLoadNoDeadlock floods every topology in both routing
// modes; the watchdog must stay quiet (deadlock freedom under stress).
func TestSaturationLoadNoDeadlock(t *testing.T) {
	cycles := int64(3000)
	if testing.Short() {
		cycles = 1200
	}
	for _, mode := range []RoutingMode{RoutingDuato, RoutingSafeUnsafe} {
		for _, topo := range smallTopologies() {
			cfg := fastCfg(topo)
			cfg.Routing = mode
			cfg.InjectionRate = 1.0
			cfg.MeasureCycles = cycles
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", topo, mode, err)
			}
			if res.Deadlocked {
				t.Errorf("%v/%v: deadlock at saturation load", topo, mode)
			}
			if res.MeasuredPackets == 0 {
				t.Errorf("%v/%v: network fully stalled", topo, mode)
			}
		}
	}
}

// TestSafeUnsafeOversaturated drives safe/unsafe routing far past
// saturation on the paper-scale systems. This regression-guards the
// multi-packet-buffer generalization of Algorithm 5: phase-blind safety or
// head-blind safe counting both deadlock here.
func TestSafeUnsafeOversaturated(t *testing.T) {
	if testing.Short() {
		t.Skip("64-chiplet oversaturation skipped in -short mode")
	}
	for _, topo := range []Topology{HypercubeTopology(6), MeshTopology(8, 8), NDMeshTopology(4, 4, 4)} {
		cfg := DefaultConfig()
		cfg.Topology = topo
		cfg.Routing = RoutingSafeUnsafe
		cfg.InjectionRate = 1.2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Errorf("%v: safe/unsafe deadlocked at 1.2 flits/node/cycle", topo)
		}
		if res.MeasuredPackets == 0 {
			t.Errorf("%v: network stalled", topo)
		}
	}
}

// TestDeterminism: identical configurations produce identical results.
func TestDeterminism(t *testing.T) {
	cfg := fastCfg(HypercubeTopology(4))
	cfg.InjectionRate = 0.4
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLatency != b.AvgLatency || a.DeliveredPackets != b.DeliveredPackets ||
		a.AcceptedFlitsPerNodeCycle != b.AcceptedFlitsPerNodeCycle {
		t.Errorf("same seed diverged: %+v vs %+v", a.Summary, b.Summary)
	}
	cfg.Seed = 999
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.DeliveredPackets == a.DeliveredPackets && c.AvgLatency == a.AvgLatency {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

// TestHypercubeBeatsBaseline is the paper's headline claim at the paper's
// scale (64 4x4 chiplets, Fig. 11/12): at moderate load the hypercube must
// show lower latency, fewer off-chip hops and lower transport energy than
// the flat 8x8 chiplet mesh.
func TestHypercubeBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("64-chiplet comparison skipped in -short mode")
	}
	mesh := fastCfg(MeshTopology(8, 8))
	cube := fastCfg(HypercubeTopology(6))
	mesh.InjectionRate, cube.InjectionRate = 0.3, 0.3
	rm, err := Run(mesh)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(cube)
	if err != nil {
		t.Fatal(err)
	}
	if rc.AvgLatency >= rm.AvgLatency {
		t.Errorf("hypercube latency %.1f not below mesh %.1f", rc.AvgLatency, rm.AvgLatency)
	}
	if rc.AvgOffChipHops >= rm.AvgOffChipHops {
		t.Errorf("hypercube off-chip hops %.2f not below mesh %.2f", rc.AvgOffChipHops, rm.AvgOffChipHops)
	}
	if rc.EnergyPJPerBit >= rm.EnergyPJPerBit {
		t.Errorf("hypercube energy %.2f not below mesh %.2f", rc.EnergyPJPerBit, rm.EnergyPJPerBit)
	}
}

// TestInterleavingImproves reproduces the §VII-C effect in miniature:
// enabling interleaving must not hurt, and at high load must help
// throughput on a bandwidth-constrained hypercube.
func TestInterleavingImproves(t *testing.T) {
	base := fastCfg(HypercubeTopology(4))
	base.InjectionRate = 0.8
	base.MeasureCycles = 3000

	run := func(il string) Result {
		c := base
		c.Interleave = il
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	none := run("none")
	msg := run("message")
	pkt := run("packet")
	if msg.AcceptedFlitsPerNodeCycle < none.AcceptedFlitsPerNodeCycle*0.98 {
		t.Errorf("message interleaving hurt throughput: %.3f vs %.3f",
			msg.AcceptedFlitsPerNodeCycle, none.AcceptedFlitsPerNodeCycle)
	}
	if pkt.AcceptedFlitsPerNodeCycle < none.AcceptedFlitsPerNodeCycle {
		t.Errorf("packet interleaving hurt throughput: %.3f vs %.3f",
			pkt.AcceptedFlitsPerNodeCycle, none.AcceptedFlitsPerNodeCycle)
	}
}

// TestAllPatternsRun exercises the six §VI-B traffic patterns end to end.
func TestAllPatternsRun(t *testing.T) {
	for _, pat := range []string{"uniform", "hotspot", "bit-complement", "bit-reverse", "bit-shuffle", "bit-transpose"} {
		cfg := fastCfg(HypercubeTopology(4))
		cfg.Pattern = pat
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		if res.Deadlocked || res.MeasuredPackets == 0 {
			t.Errorf("%s: deadlock=%v measured=%d", pat, res.Deadlocked, res.MeasuredPackets)
		}
	}
}

// TestSweepOrdersResults checks the parallel sweep machinery.
func TestSweepOrdersResults(t *testing.T) {
	cfg := fastCfg(HypercubeTopology(2))
	rates := []float64{0.05, 0.2, 0.6}
	results, err := Sweep(cfg, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.OfferedRate != rates[i] {
			t.Errorf("result %d has rate %g, want %g", i, r.OfferedRate, rates[i])
		}
	}
	// Latency must not decrease with load.
	if results[2].AvgLatency < results[0].AvgLatency {
		t.Errorf("latency fell with load: %.1f @%.2f vs %.1f @%.2f",
			results[0].AvgLatency, rates[0], results[2].AvgLatency, rates[2])
	}
}

// TestThroughputTracksOffered: at a clearly stable operating point on a
// 64-core system with a long window, accepted throughput must track the
// offered load within 10%.
func TestThroughputTracksOffered(t *testing.T) {
	cfg := fastCfg(HypercubeTopology(4))
	cfg.InjectionRate = 0.3
	cfg.MeasureCycles = 6000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptedFlitsPerNodeCycle < 0.9*cfg.InjectionRate {
		t.Errorf("accepted %.3f of offered %.3f", res.AcceptedFlitsPerNodeCycle, cfg.InjectionRate)
	}
}

// TestSaturationRateSearch sanity-checks the binary search.
func TestSaturationRateSearch(t *testing.T) {
	cfg := fastCfg(HypercubeTopology(4))
	cfg.MeasureCycles = 2500
	sat, err := SaturationRate(cfg, 0.1, 2.0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if sat < 0.1 {
		t.Errorf("saturation rate %.2f implausibly low", sat)
	}
	// The found rate must indeed be stable.
	cfg.InjectionRate = sat
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated() {
		t.Errorf("reported saturation rate %.2f is itself saturated", sat)
	}
}

// TestMeasurementWindowMatters: doubling measurement time should not
// change the latency estimate wildly at stable load (stationarity check).
func TestMeasurementWindowMatters(t *testing.T) {
	cfg := fastCfg(HypercubeTopology(4))
	cfg.InjectionRate = 0.2
	short, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MeasureCycles *= 3
	long, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := long.AvgLatency / short.AvgLatency; ratio > 1.5 || ratio < 0.67 {
		t.Errorf("latency unstable across windows: %.1f vs %.1f", short.AvgLatency, long.AvgLatency)
	}
}

// TestNDMeshSeparationAblation: the config knob must build and run; with
// separation disabled the system is Theorem-1-unsafe but must still run at
// light load.
func TestNDMeshSeparationAblation(t *testing.T) {
	cfg := fastCfg(NDMeshTopology(2, 2))
	cfg.DisableNDMeshVCSeparation = true
	cfg.InjectionRate = 0.05
	if _, err := Run(cfg); err == nil {
		t.Fatal("equal-channel mode accepted without AllowUnsafeRouting")
	}
	cfg.AllowUnsafeRouting = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredPackets == 0 {
		t.Error("no traffic with separation disabled")
	}
}

// TestCustomIrregularTopology runs an irregular chiplet graph (the Fig. 6
// capability) under safe/unsafe routing, from light load to saturation.
func TestCustomIrregularTopology(t *testing.T) {
	topo := CustomTopology(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 5}, {2, 5}})
	cfg := fastCfg(topo)
	cfg.Routing = RoutingSafeUnsafe
	for _, rate := range []float64{0.1, 1.0} {
		cfg.InjectionRate = rate
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Errorf("rate %.1f: deadlock on irregular graph", rate)
		}
		if res.MeasuredPackets == 0 {
			t.Errorf("rate %.1f: no traffic", rate)
		}
	}
	// Irregular graphs have no MFR label structure; Duato mode must be
	// rejected with a helpful error.
	cfg.Routing = RoutingDuato
	if _, err := Run(cfg); err == nil {
		t.Error("custom topology accepted without safe/unsafe routing")
	}
}

// TestTorusWrapChannelsHelp: the adaptive-only wrap channels must reduce
// average chiplet-to-chiplet hops and not hurt latency under load,
// compared to the same-size mesh.
func TestTorusWrapChannelsHelp(t *testing.T) {
	mesh := fastCfg(NDMeshTopology(4, 4))
	torus := fastCfg(NDTorusTopology(4, 4))
	mesh.InjectionRate, torus.InjectionRate = 0.4, 0.4
	rm, err := Run(mesh)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(torus)
	if err != nil {
		t.Fatal(err)
	}
	if rt.AvgOffChipHops >= rm.AvgOffChipHops {
		t.Errorf("torus off-chip hops %.2f not below mesh %.2f", rt.AvgOffChipHops, rm.AvgOffChipHops)
	}
	if rt.AvgLatency > rm.AvgLatency*1.05 {
		t.Errorf("torus latency %.1f worse than mesh %.1f", rt.AvgLatency, rm.AvgLatency)
	}
}

// TestFaultToleranceGracefulDegradation: with 15% of cross links failed,
// the hypercube must keep routing (no deadlock) at a modest latency cost.
func TestFaultToleranceGracefulDegradation(t *testing.T) {
	base := fastCfg(HypercubeTopology(4))
	base.InjectionRate = 0.2
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.CrossLinkFaultFraction = 0.15
	degraded, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Deadlocked {
		t.Fatal("deadlock under link faults")
	}
	if degraded.MeasuredPackets == 0 {
		t.Fatal("no traffic under link faults")
	}
	if degraded.AvgLatency > 3*healthy.AvgLatency {
		t.Errorf("degradation not graceful: %.1f -> %.1f cycles", healthy.AvgLatency, degraded.AvgLatency)
	}
	// Faults on the baseline are rejected (no redundancy to exploit).
	bad := fastCfg(MeshTopology(4, 4))
	bad.CrossLinkFaultFraction = 0.1
	if _, err := Run(bad); err == nil {
		t.Error("flat-mesh faults accepted")
	}
}

// TestSystemInspection exercises the Build-without-Run path.
func TestSystemInspection(t *testing.T) {
	sys, err := Build(fastCfg(HypercubeTopology(3)))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Topo.NumChiplets() != 8 {
		t.Errorf("chiplets = %d", sys.Topo.NumChiplets())
	}
	if d := sys.Topo.ChipletDiameter(); d != 3 {
		t.Errorf("chiplet diameter = %d, want 3", d)
	}
	if n := len(sys.Topo.Cores); n != 8*4 {
		t.Errorf("cores = %d", n)
	}
}
