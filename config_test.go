package chipletnet

import (
	"strings"
	"testing"
)

// TestDefaultConfigMatchesTableII pins the defaults to the paper's Table II.
func TestDefaultConfigMatchesTableII(t *testing.T) {
	c := DefaultConfig()
	if c.FlitBits != 32 {
		t.Errorf("flit width %d, want 32 bits", c.FlitBits)
	}
	if c.PacketFlits != 32 {
		t.Errorf("packet length %d, want 32 flits", c.PacketFlits)
	}
	if c.InternalBufFlits*c.FlitBits != 1024 {
		t.Errorf("internal buffer %d bits, want 1024", c.InternalBufFlits*c.FlitBits)
	}
	if c.InterfaceBufFlits*c.FlitBits != 2048 {
		t.Errorf("interface buffer %d bits, want 2048", c.InterfaceBufFlits*c.FlitBits)
	}
	if c.VCs != 2 {
		t.Errorf("VCs %d, want 2 channels/port", c.VCs)
	}
	if c.OnChipBW*c.FlitBits != 128 {
		t.Errorf("on-chip bandwidth %d bits/cycle, want 128", c.OnChipBW*c.FlitBits)
	}
	if c.OffChipBW*c.FlitBits != 64 {
		t.Errorf("off-chip bandwidth %d bits/cycle, want 64", c.OffChipBW*c.FlitBits)
	}
	if c.OffChipLatency != 5 {
		t.Errorf("chiplet-to-chiplet link delay %d, want 5 cycles", c.OffChipLatency)
	}
	if c.WarmupCycles+c.MeasureCycles != 6000 || c.WarmupCycles != 1000 {
		t.Errorf("simulation time %d (%d warm-up), want 6000 (1000)", c.WarmupCycles+c.MeasureCycles, c.WarmupCycles)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestTopologyNumChiplets(t *testing.T) {
	cases := []struct {
		topo Topology
		want int
	}{
		{MeshTopology(8, 8), 64},
		{NDMeshTopology(4, 4, 4), 64},
		{HypercubeTopology(6), 64},
		{DragonflyTopology(8), 8},
		{TreeTopology(15, 2), 15},
	}
	for _, c := range cases {
		got, err := c.topo.NumChiplets()
		if err != nil || got != c.want {
			t.Errorf("%v: NumChiplets = %d, %v (want %d)", c.topo, got, err, c.want)
		}
	}
	bad := []Topology{
		{Kind: "mesh", Dims: []int{3}},
		{Kind: "hypercube", Dims: nil},
		{Kind: "warp", Dims: []int{1}},
		{Kind: "ndmesh", Dims: nil},
		{Kind: "tree", Dims: []int{4}},
	}
	for _, topo := range bad {
		if _, err := topo.NumChiplets(); err == nil {
			t.Errorf("%+v accepted", topo)
		}
	}
}

func TestTopologyString(t *testing.T) {
	if s := HypercubeTopology(6).String(); !strings.Contains(s, "hypercube") {
		t.Errorf("String = %q", s)
	}
	if s := NDMeshTopology(4, 4).String(); !strings.Contains(s, "2D-mesh") {
		t.Errorf("String = %q", s)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := map[string]func(*Config){
		"tiny chiplet":       func(c *Config) { c.ChipletW = 2 },
		"buffer under pkt":   func(c *Config) { c.InternalBufFlits = 8 },
		"negative rate":      func(c *Config) { c.InjectionRate = -0.1 },
		"zero measure":       func(c *Config) { c.MeasureCycles = 0 },
		"bad routing":        func(c *Config) { c.Routing = "magic" },
		"bad interleave":     func(c *Config) { c.Interleave = "shredded" },
		"bad topology":       func(c *Config) { c.Topology = Topology{Kind: "warp"} },
		"zero packet length": func(c *Config) { c.PacketFlits = 0 },
	}
	for name, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	c := DefaultConfig()
	c.ChipletW = 1
	if _, err := Build(c); err == nil {
		t.Error("Build accepted an invalid config")
	}
}
