// Command chipletdse explores the chiplet-interconnect design space:
// it enumerates every candidate design meeting the declared constraints
// (chiplet budget, NoC sizes, topology families, routing modes,
// interleaving grains, port/pin budgets), statically rejects
// deadlock-prone routing with the internal/verify pre-flight, evaluates
// the survivors in parallel on the cycle engine, and reports the exact
// Pareto frontier over (saturation rate, zero-load latency, transport
// energy).
//
// Evaluations are content-addressed: -cache FILE persists every
// measured candidate keyed by the hash of its fully-resolved
// configuration, so overlapping sweeps and re-runs skip simulation
// entirely (a repeated run is 100% cache hits and reproduces the
// reports byte for byte), and a killed exploration resumes where it
// stopped. A -cache ending in / (or naming an existing directory) is a
// 16-way sharded cache keyed by hash prefix; shard directories populated
// on different machines merge losslessly with -merge, and the merged
// cache reproduces the single-machine reports byte for byte.
//
// Examples:
//
//	chipletdse -chiplets 16 -cache dse.jsonl -out results/dse
//	chipletdse -chiplets 16 -pin-budget 1024 -min-group-width 2 -json
//	chipletdse -chiplets 64 -topologies hypercube,ndmesh -rates 0.05,0.2,0.4
//	chipletdse -cache merged/ -merge hostA-cache/,hostB-cache/
//
// Exit status: 0 on success, 1 on usage or evaluation errors, 2 when a
// verified candidate deadlocked at runtime (a cross-validation failure
// of the static pre-flight; the diagnostic snapshot is printed, like
// chipletsim -json).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"chipletnet"
	"chipletnet/internal/dse"
)

func main() {
	chiplets := flag.Int("chiplets", 16, "chiplet budget (every candidate uses exactly this many)")
	nocs := flag.String("noc", "4x4", "candidate on-chiplet NoC sizes, comma separated (e.g. 4x4,8x8)")
	topologies := flag.String("topologies", "", "topology families to search, comma separated (default all: "+strings.Join(dse.TopologyKinds(), ",")+")")
	routing := flag.String("routing", "", "routing modes to search, comma separated (default all: "+strings.Join(dse.RoutingModes(), ",")+")")
	interleave := flag.String("interleave", "", "interleaving grains to search, comma separated (default none,message,packet)")
	offBW := flag.String("offchip-bw", "", "chiplet-to-chiplet bandwidths in flits/cycle, comma separated (default 2)")
	fanouts := flag.String("tree-fanouts", "", "tree fan-outs to search, comma separated (default 2,3,4)")
	maxPorts := flag.Int("max-ports", 0, "per-chiplet interface port cap (0 = unconstrained)")
	pinBudget := flag.Int("pin-budget", 0, "per-chiplet off-chip pin budget in bits/cycle per direction (0 = unconstrained)")
	minGroupWidth := flag.Int("min-group-width", 0, "minimum interface nodes per group (link redundancy; 0 = unconstrained)")
	pattern := flag.String("pattern", "uniform", "traffic pattern candidates are evaluated under")
	workloads := flag.String("workloads", "", "workload axis: specs separated by ';' (replay:<path> | aiscaleout:<spec>; empty entry = synthetic traffic; default synthetic only)")
	rates := flag.String("rates", "", "injection-rate ladder, comma separated (default 0.05,0.15,0.3,0.5,0.8)")
	zeroLoad := flag.Float64("zero-load-rate", 0, "light-load probe rate for latency/energy (default 0.02)")
	warmup := flag.Int64("warmup", 0, "warm-up cycles per run (default 300)")
	measure := flag.Int64("measure", 0, "measured cycles per run (default 1500)")
	seed := flag.Uint64("seed", 1, "random seed (part of the evaluation cache key)")
	cachePath := flag.String("cache", "", "content-addressed evaluation cache: a JSONL file, or a directory for the 16-way sharded cache (trailing / or an existing directory; shards merge across machines with -merge)")
	mergeSrcs := flag.String("merge", "", "comma-separated caches (files or shard directories) to merge into -cache, then exit")
	outDir := flag.String("out", "", "directory for the report set (candidates.csv, frontier.csv, frontier.json, topoviz script, per-design configs)")
	asJSON := flag.Bool("json", false, "emit the full report as JSON on stdout")
	engine := flag.String("engine", "active", "cycle engine: active | reference | islands[:K] (bit-identical results; reference is the slow oracle)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent candidate evaluations")
	verbose := flag.Bool("v", false, "list pruned and rejected candidates on stderr")
	flag.Parse()

	if err := chipletnet.SetEngine(*engine); err != nil {
		fatalf("%v", err)
	}
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %v", flag.Args())
	}

	space := dse.Space{
		Chiplets:      *chiplets,
		Topologies:    splitList(*topologies),
		Routings:      splitList(*routing),
		Interleavings: splitList(*interleave),
		MaxPorts:      *maxPorts,
		PinBudgetBits: *pinBudget,
		MinGroupWidth: *minGroupWidth,
		Pattern:       *pattern,
	}
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ";") {
			space.Workloads = append(space.Workloads, strings.TrimSpace(w))
		}
	}
	var err error
	if space.NoCs, err = parseNoCs(*nocs); err != nil {
		fatalf("bad -noc: %v", err)
	}
	if space.OffChipBWs, err = parseInts(*offBW); err != nil {
		fatalf("bad -offchip-bw: %v", err)
	}
	if space.TreeFanouts, err = parseInts(*fanouts); err != nil {
		fatalf("bad -tree-fanouts: %v", err)
	}

	params := dse.DefaultParams()
	params.Seed = *seed
	if *warmup > 0 {
		params.WarmupCycles = *warmup
	}
	if *measure > 0 {
		params.MeasureCycles = *measure
	}
	if *zeroLoad > 0 {
		params.ZeroLoadRate = *zeroLoad
	}
	if params.Rates, err = parseFloats(*rates); err != nil {
		fatalf("bad -rates: %v", err)
	}

	cache, err := dse.OpenStore(*cachePath)
	if err != nil {
		fatalf("%v", err)
	}
	defer cache.Close()
	if q := cache.Quarantined(); q > 0 {
		logf("warning: quarantined %d corrupt cache lines to .rej sidecars (kept %d records)", q, cache.Len())
	}

	if *mergeSrcs != "" {
		if *cachePath == "" {
			fatalf("-merge needs -cache to merge into")
		}
		total := 0
		for _, src := range splitList(*mergeSrcs) {
			from, err := dse.OpenStore(src)
			if err != nil {
				fatalf("opening merge source %s: %v", src, err)
			}
			if q := from.Quarantined(); q > 0 {
				logf("warning: merge source %s: quarantined %d corrupt lines", src, q)
			}
			added, err := dse.Merge(cache, from)
			from.Close()
			if err != nil {
				fatalf("merging %s: %v", src, err)
			}
			logf("merged %s: %d new records (%d already present)", src, added, from.Len()-added)
			total += added
		}
		logf("cache now holds %d records (+%d)", cache.Len(), total)
		return
	}

	plan, err := dse.NewPlan(space, params, cache)
	if err != nil {
		fatalf("%v", err)
	}
	logf("%d candidates enumerated: %d statically pruned, %d rejected by verify pre-flight, %d verified",
		len(plan.Candidates)+len(plan.Rejected), len(plan.Pruned), len(plan.Rejected), len(plan.Candidates))
	logf("%d cache hits, %d to simulate (workers=%d)", len(plan.Hits), len(plan.Pending), *workers)
	if *verbose {
		for _, p := range plan.Pruned {
			logf("  pruned   %s: %s", p.Name, p.Reason)
		}
		for _, r := range plan.Rejected {
			logf("  rejected %s: %s", r.Name, r.Reason)
		}
	}

	recs, err := evaluate(plan, cache, *workers)
	if err != nil {
		fatalf("%v", err)
	}
	outcome, err := dse.Collect(plan, recs)
	if err != nil {
		fatalf("%v", err)
	}

	if *outDir != "" {
		written, err := dse.WriteFiles(*outDir, outcome)
		if err != nil {
			fatalf("%v", err)
		}
		for _, w := range written {
			logf("wrote %s", w)
		}
	}

	if *asJSON {
		if err := dse.WriteReportJSON(os.Stdout, outcome); err != nil {
			fatalf("%v", err)
		}
	} else {
		printFrontier(outcome)
	}

	// A deadlock on a candidate the static pre-flight certified is a
	// cross-validation failure: surface the watchdog's diagnostic and
	// exit 2, the chipletsim -json convention.
	exit := 0
	for _, r := range outcome.Records {
		if r.Deadlocked {
			fmt.Fprintf(os.Stderr, "chipletdse: DEADLOCK on verified candidate %s\n%s\n", r.Name, r.Diag)
			exit = 2
		}
	}
	os.Exit(exit)
}

// evaluate runs the plan's pending candidates on a worker pool, caching
// each record as it completes (so a killed exploration resumes from the
// cache). Results are positional: recs[i] pairs with the i-th verified
// candidate regardless of scheduling.
func evaluate(plan *dse.Plan, cache dse.Store, workers int) ([]dse.Record, error) {
	if workers < 1 {
		workers = 1
	}
	recs := append([]dse.Record(nil), plan.Hits...)
	fresh := make([]dse.Record, len(plan.Pending))
	errs := make([]error, len(plan.Pending))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				rec, err := plan.Pending[i].Run()
				if err == nil {
					err = cache.Put(rec)
				}
				fresh[i], errs[i] = rec, err
			}
		}()
	}
	for i := range plan.Pending {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", plan.Pending[i].Candidate.Name, err)
		}
	}
	return append(recs, fresh...), nil
}

// printFrontier writes the human-readable ranking: the Pareto frontier
// first, then the dominated candidates. Only deterministic content goes
// to stdout so repeated runs are comparable byte for byte.
func printFrontier(o *dse.Outcome) {
	fmt.Printf("design space: %d chiplets, %d verified candidates, %d on the Pareto frontier\n",
		o.Plan.Space.Chiplets, len(o.Records), len(o.Frontier))
	fmt.Println("\nPareto frontier (saturation max, zero-load latency min, energy min):")
	for i, r := range o.Frontier {
		fmt.Printf("  %2d. %-46s sat %.2f  zero-load %6.1f cyc  %6.2f pJ/bit\n",
			i+1, r.Name, r.SatRate, r.ZeroLoadLatency, r.EnergyPJPerBit)
	}
	rows := dse.Rows(o.Records)
	dominated := 0
	for _, row := range rows {
		if !row.Frontier {
			dominated++
		}
	}
	fmt.Printf("\n%d dominated candidates (full ranking in candidates.csv with -out)\n", dominated)
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chipletdse: "+format+"\n", args...)
}

// splitList splits a comma-separated flag, returning nil (the default
// axis) for an empty value.
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseNoCs parses "4x4,8x8" into NoC dimension pairs.
func parseNoCs(s string) ([][2]int, error) {
	var out [][2]int
	for _, part := range splitList(s) {
		wh := strings.Split(strings.ToLower(part), "x")
		if len(wh) != 2 {
			return nil, fmt.Errorf("want WxH, got %q", part)
		}
		w, err := strconv.Atoi(wh[0])
		if err != nil {
			return nil, err
		}
		h, err := strconv.Atoi(wh[1])
		if err != nil {
			return nil, err
		}
		out = append(out, [2]int{w, h})
	}
	return out, nil
}

// parseInts parses a comma-separated int list; empty means nil (default).
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list; empty means nil
// (default).
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chipletdse: "+format+"\n", args...)
	os.Exit(1)
}
