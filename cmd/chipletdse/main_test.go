package main

import (
	"reflect"
	"testing"
)

func TestParseNoCs(t *testing.T) {
	got, err := parseNoCs("4x4, 8X6")
	if err != nil {
		t.Fatal(err)
	}
	if want := [][2]int{{4, 4}, {8, 6}}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseNoCs = %v, want %v", got, want)
	}
	for _, bad := range []string{"4", "4x", "axb", "4x4x4"} {
		if _, err := parseNoCs(bad); err == nil {
			t.Errorf("parseNoCs(%q) accepted", bad)
		}
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(" a, b ,,c "); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("splitList = %v", got)
	}
	if got := splitList("  "); got != nil {
		t.Errorf("splitList on blank = %v, want nil (default axis)", got)
	}
}

func TestParseIntsFloats(t *testing.T) {
	ints, err := parseInts("2,4")
	if err != nil || !reflect.DeepEqual(ints, []int{2, 4}) {
		t.Errorf("parseInts = %v, %v", ints, err)
	}
	if _, err := parseInts("2,x"); err == nil {
		t.Error("parseInts accepted a non-integer")
	}
	floats, err := parseFloats("0.05,0.8")
	if err != nil || !reflect.DeepEqual(floats, []float64{0.05, 0.8}) {
		t.Errorf("parseFloats = %v, %v", floats, err)
	}
	if _, err := parseFloats("0.05,?"); err == nil {
		t.Error("parseFloats accepted a non-float")
	}
	if out, err := parseFloats(""); err != nil || out != nil {
		t.Errorf("parseFloats(\"\") = %v, %v; want nil (default ladder)", out, err)
	}
}
