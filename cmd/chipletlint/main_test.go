package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"chipletnet/internal/analysis"
)

// lintSource runs every registered analyzer over one source file placed in
// the given package directory and returns the findings.
func lintSource(t *testing.T, dir, name, src string) []analysis.Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, name, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var out []analysis.Finding
	for _, a := range []*analysis.Analyzer{rngsourceAnalyzer, wallclockAnalyzer, goroutineAnalyzer, mapiterAnalyzer, retrysleepAnalyzer} {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    []*ast.File{file},
			Dir:      dir,
		}
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, analysis.Finding{Pos: fset.Position(d.Pos), Analyzer: pass.Analyzer.Name, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func assertFinding(t *testing.T, fs []analysis.Finding, substr string) {
	t.Helper()
	for _, f := range fs {
		if strings.Contains(f.Message, substr) {
			return
		}
	}
	t.Errorf("no finding containing %q in %v", substr, fs)
}

func TestMathRandForbiddenOutsideRNG(t *testing.T) {
	src := `package x
import "math/rand"
var _ = rand.Int`
	assertFinding(t, lintSource(t, "internal/traffic", "gen.go", src), "math/rand")
	// The rule covers test files too: a test seeding its own rand.Rand
	// would not reproduce across Go releases.
	assertFinding(t, lintSource(t, "internal/traffic", "gen_test.go", src), "math/rand")
	if fs := lintSource(t, "internal/rng", "rng.go", src); len(fs) != 0 {
		t.Errorf("internal/rng flagged: %v", fs)
	}
}

func TestWallClockForbiddenInSimulator(t *testing.T) {
	src := `package x
import "time"
func f() time.Time { return time.Now() }`
	assertFinding(t, lintSource(t, "internal/router", "r.go", src), "wall-clock")
	if fs := lintSource(t, "cmd/chipletfig", "main.go", src); len(fs) != 0 {
		t.Errorf("command package flagged: %v", fs)
	}
	if fs := lintSource(t, "internal/router", "r_test.go", src); len(fs) != 0 {
		t.Errorf("test file flagged: %v", fs)
	}
}

func TestTimerConstructionForbiddenInSimulator(t *testing.T) {
	src := `package x
import "time"
func f() <-chan time.Time { return time.After(time.Second) }`
	assertFinding(t, lintSource(t, "internal/router", "r.go", src), "timer construction")
	if fs := lintSource(t, "cmd/chipletsim", "main.go", src); len(fs) != 0 {
		t.Errorf("command package flagged: %v", fs)
	}

	src = `package x
import "time"
var tk = time.NewTicker(time.Second)`
	assertFinding(t, lintSource(t, "internal/fault", "f.go", src), "time.NewTicker")
}

func TestGoroutineForbiddenInInternal(t *testing.T) {
	src := `package x
func f() { go func() {}() }`
	assertFinding(t, lintSource(t, "internal/router", "r.go", src), "goroutine")
	if fs := lintSource(t, ".", "run.go", src); len(fs) != 0 {
		t.Errorf("module root flagged (sweep parallelism is allowed): %v", fs)
	}
}

func TestIslandsEngineExemptFromGoroutineRule(t *testing.T) {
	// The parallel-islands engine is the single sanctioned intra-run
	// concurrency in the simulator core; its schedule-independence is
	// proven by the three-way equivalence matrix under -race, so
	// internal/router/islands.go — and only that file — may spawn
	// goroutines.
	src := `package router
func f() { go func() {}() }`
	if fs := lintSource(t, "internal/router", "islands.go", src); len(fs) != 0 {
		t.Errorf("islands engine flagged (its concurrency is sanctioned): %v", fs)
	}
	assertFinding(t, lintSource(t, "internal/router", "fabric.go", src), "goroutine")
	assertFinding(t, lintSource(t, "internal/fault", "islands.go", src), "goroutine")
}

func TestMapOrderDependentEffects(t *testing.T) {
	// The original internal/topology/custom.go defect: side-effecting
	// method calls ordered by map iteration.
	src := `package x
func f(s *sys) {
	seen := map[int]bool{}
	for e := range seen {
		s.addCrossPair(e)
	}
}`
	assertFinding(t, lintSource(t, "internal/topology", "c.go", src), "side effects ordered by map iteration")

	src = `package x
func f() (out []int) {
	m := make(map[int]int)
	for k := range m {
		out = append(out, k)
	}
	return out
}`
	assertFinding(t, lintSource(t, "internal/stats", "s.go", src), "appends to")

	src = `package x
func f() (last int) {
	m := make(map[int]int)
	for _, v := range m {
		last = v
	}
	return last
}`
	assertFinding(t, lintSource(t, "internal/stats", "s.go", src), "last-writer-wins")

	// Maps that arrive as function parameters are just as order-unstable
	// as locally made ones.
	src = `package x
func f(m map[int]int) (out []int) {
	for k := range m {
		out = append(out, k)
	}
	return out
}`
	assertFinding(t, lintSource(t, "internal/stats", "s.go", src), "appends to")
}

func TestCollectThenSortAccepted(t *testing.T) {
	src := `package x
import "sort"
func f() []int {
	m := make(map[int]int)
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}`
	if fs := lintSource(t, "internal/stats", "s.go", src); len(fs) != 0 {
		t.Errorf("collect-then-sort idiom flagged: %v", fs)
	}
}

func TestCommutativeAggregationAccepted(t *testing.T) {
	src := `package x
func f() int {
	m := make(map[int]int)
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}`
	if fs := lintSource(t, "internal/stats", "s.go", src); len(fs) != 0 {
		t.Errorf("commutative aggregation flagged: %v", fs)
	}
}

func TestFaultPackageIsSimulatorScope(t *testing.T) {
	// The fault-injection engine must live under the determinism rules:
	// wall-clock reads or stray math/rand there would break reproducible
	// fault schedules.
	for _, dir := range []string{"internal/fault", "internal/router", "."} {
		if !simulatorScope(dir) {
			t.Errorf("simulatorScope(%q) = false, want true", dir)
		}
	}
	for _, dir := range []string{"cmd/chipletsim", "examples/faulttolerance"} {
		if simulatorScope(dir) {
			t.Errorf("simulatorScope(%q) = true, want false", dir)
		}
	}
	src := `package fault
import "time"
func stamp() time.Time { return time.Now() }`
	assertFinding(t, lintSource(t, "internal/fault", "fault.go", src), "time")
}

func TestServicePackageExemptFromSimulatorScope(t *testing.T) {
	// The campaign daemon's process layer owns goroutines, timers and
	// wall-clock deadlines by design; all simulation it schedules still
	// flows through the module root.
	for _, dir := range []string{"internal/service", "internal/service/backoff"} {
		if simulatorScope(dir) {
			t.Errorf("simulatorScope(%q) = true, want false (process layer)", dir)
		}
	}
	src := `package service
import "time"
func f() { go func() { _ = time.Now(); t := time.NewTimer(time.Second); t.Stop() }() }`
	if fs := lintSource(t, "internal/service", "service.go", src); len(fs) != 0 {
		t.Errorf("internal/service flagged by simulator-scope analyzers: %v", fs)
	}
	// The exemption does not extend to the randomness funnel.
	src = `package service
import "math/rand"
var _ = rand.Int`
	assertFinding(t, lintSource(t, "internal/service", "service.go", src), "math/rand")
}

func TestBareSleepInLoopFlagged(t *testing.T) {
	// The cmd/chipletfig campaign supervisor's original retry shape: a
	// hand-computed backoff slept with a bare time.Sleep inside the
	// attempt loop.
	src := `package x
import "time"
func retry() {
	for try := 0; try < 3; try++ {
		if work() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}
func work() bool { return false }`
	assertFinding(t, lintSource(t, "cmd/chipletfig", "campaign.go", src), "internal/service/backoff")

	// range loops are retry loops too, and nesting does not hide the call.
	src = `package x
import "time"
func poll(jobs []int) {
	for range jobs {
		if true {
			time.Sleep(time.Second)
		}
	}
}`
	assertFinding(t, lintSource(t, ".", "run.go", src), "internal/service/backoff")
}

func TestSleepOutsideLoopAccepted(t *testing.T) {
	src := `package x
import "time"
func settle() { time.Sleep(time.Millisecond) }`
	if fs := lintSource(t, "cmd/chipletfig", "campaign.go", src); len(fs) != 0 {
		t.Errorf("straight-line sleep flagged: %v", fs)
	}
	// The backoff package itself implements the pacing and is exempt.
	src = `package backoff
import "time"
func spin() {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond)
	}
}`
	if fs := lintSource(t, "internal/service/backoff", "backoff.go", src); len(fs) != 0 {
		t.Errorf("backoff package flagged: %v", fs)
	}
	// Tests may poll freely.
	src = `package x
import "time"
func wait() {
	for {
		time.Sleep(time.Millisecond)
	}
}`
	if fs := lintSource(t, "cmd/chipletd", "main_test.go", src); len(fs) != 0 {
		t.Errorf("test file flagged: %v", fs)
	}
}
