// Command chipletlint enforces the repository's determinism invariants on
// simulator packages (the module root and internal/...). A cycle-accurate
// simulator must produce bit-identical results for a given seed, so the
// driver runs five analyzers over every matched package:
//
//	rngsource  no package may import math/rand except internal/rng — all
//	           randomness flows through the seeded, stable generator
//	           (test files included);
//	wallclock  simulator packages must not read wall-clock time
//	           (time.Now/Since/Sleep/Until) or construct timers
//	           (time.After/Tick/NewTimer/NewTicker/AfterFunc) —
//	           simulated time is the only clock;
//	goroutine  internal packages must not spawn goroutines — the cycle
//	           loop is strictly serial; parallelism lives at the sweep
//	           layer (module root);
//	mapiter    map iteration must not produce order-dependent effects: a
//	           range-over-map body may not append to or assign outer
//	           variables, or call methods on them, unless the function
//	           later sorts the collected values (collect-then-sort);
//	retrysleep no bare time.Sleep inside a loop anywhere (commands
//	           included) — retry and poll loops pace themselves through
//	           internal/service/backoff, which is capped-exponential and
//	           cancellation-aware.
//
// internal/service (the campaign daemon's process layer) is exempt from
// the simulator-scope rules — it legitimately owns goroutines, timers and
// wall-clock deadlines — but not from rngsource or retrysleep.
//
// The analyzers are written against internal/analysis, a dependency-free
// mirror of the golang.org/x/tools/go/analysis framework (the repository
// vendors no third-party modules); the analysis is purely syntactic
// (go/ast, go/parser). Usage:
//
//	chipletlint ./...
//
// Findings print as file:line:col: message in deterministic sorted order.
// Exit status is 1 when any finding is reported (or on a parse error).
package main

import (
	"flag"
	"fmt"
	"os"

	"chipletnet/internal/analysis"
)

func main() {
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run(patterns, []*analysis.Analyzer{
		rngsourceAnalyzer,
		wallclockAnalyzer,
		goroutineAnalyzer,
		mapiterAnalyzer,
		retrysleepAnalyzer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chipletlint: %v\n", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
