// Command chipletlint enforces the repository's determinism invariants on
// simulator packages (the module root and internal/...). A cycle-accurate
// simulator must produce bit-identical results for a given seed, so:
//
//  1. no package may import math/rand except internal/rng — all randomness
//     flows through the seeded, stable generator;
//  2. simulator packages must not read wall-clock time (time.Now,
//     time.Since, time.Sleep) — simulated time is the only clock;
//  3. internal packages must not spawn goroutines — the cycle loop is
//     strictly serial; parallelism lives at the sweep layer (module root);
//  4. map iteration must not produce order-dependent effects: a
//     range-over-map body may not append to or assign outer variables, or
//     call methods on them, unless the function later sorts the collected
//     values (the collect-then-sort idiom).
//
// The linter is purely syntactic (go/ast, go/parser) and has no
// dependencies outside the standard library. Usage:
//
//	chipletlint ./...
//
// Exit status is 1 when any finding is reported.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type finding struct {
	pos token.Position
	msg string
}

func main() {
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := resolveDirs(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chipletlint: %v\n", err)
		os.Exit(1)
	}

	fset := token.NewFileSet()
	var findings []finding
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chipletlint: %v\n", err)
			os.Exit(1)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chipletlint: %v\n", err)
				os.Exit(1)
			}
			findings = append(findings, lintFile(fset, file, filepath.ToSlash(dir), e.Name())...)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// resolveDirs expands ./... patterns into the directories containing Go
// files, skipping hidden directories and testdata.
func resolveDirs(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, p := range patterns {
		root, recursive := p, false
		if strings.HasSuffix(p, "/...") {
			root, recursive = strings.TrimSuffix(p, "/..."), true
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// simulatorScope reports whether dir holds simulator code: the module root
// package or anything under internal/. Commands and examples read the
// wall clock and parallelize freely.
func simulatorScope(dir string) bool {
	return dir == "." || dir == "internal" || strings.HasPrefix(dir, "internal/")
}

// lintFile runs every rule applicable to one parsed file and returns the
// findings. dir is the slash-separated directory relative to the module
// root; name the bare file name.
func lintFile(fset *token.FileSet, file *ast.File, dir, name string) []finding {
	var out []finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, finding{pos: fset.Position(pos), msg: fmt.Sprintf(format, args...)})
	}
	isTest := strings.HasSuffix(name, "_test.go")
	sim := simulatorScope(dir)

	// Rule 1: math/rand stays behind internal/rng.
	timeAlias := ""
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if (p == "math/rand" || p == "math/rand/v2") && dir != "internal/rng" {
			report(imp.Pos(), "import of %s outside internal/rng: use the seeded internal/rng generator", p)
		}
		if p == "time" {
			timeAlias = "time"
			if imp.Name != nil {
				timeAlias = imp.Name.Name
			}
		}
	}

	if !sim || isTest {
		return out
	}

	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				// Rule 2: no wall-clock reads in simulator packages.
				if id, ok := n.X.(*ast.Ident); ok && timeAlias != "" && id.Name == timeAlias {
					switch n.Sel.Name {
					case "Now", "Since", "Sleep", "Until":
						report(n.Pos(), "wall-clock call time.%s in a simulator package: cycle count is the only clock", n.Sel.Name)
					}
				}
			case *ast.GoStmt:
				// Rule 3: the simulator core is strictly serial.
				if dir != "." {
					report(n.Pos(), "goroutine spawned in %s: the cycle engine is serial; parallelize at the sweep layer", dir)
				}
			}
			return true
		})
		out = append(out, lintMapRanges(fset, fn, importNames(file))...)
	}
	return out
}

// importNames returns the package identifiers the file's imports bind, so
// pkg.Func calls are not mistaken for method calls on variables.
func importNames(file *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range file.Imports {
		if imp.Name != nil {
			names[imp.Name.Name] = true
			continue
		}
		p := strings.Trim(imp.Path.Value, `"`)
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		names[p] = true
	}
	return names
}

// lintMapRanges implements rule 4 on one function: bodies of range
// statements over maps (parameters or locally declared) must not have
// iteration-order-dependent effects, unless the function sorts afterwards.
func lintMapRanges(fset *token.FileSet, fn *ast.FuncDecl, imports map[string]bool) []finding {
	var out []finding

	// Map variables visible in the function: parameters and receivers of
	// map type, plus local declarations (make(map...), map literals, var
	// declarations with a map type).
	maps := map[string]bool{}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if _, ok := field.Type.(*ast.MapType); ok {
				for _, id := range field.Names {
					maps[id.Name] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if isMapExpr(n.Rhs[i]) {
					maps[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, id := range n.Names {
					maps[id.Name] = true
				}
			}
			for i, v := range n.Values {
				if i < len(n.Names) && isMapExpr(v) {
					maps[n.Names[i].Name] = true
				}
			}
		}
		return true
	})
	if len(maps) == 0 {
		return nil
	}

	// Positions of sort.* calls, for the collect-then-sort suppression.
	var sortCalls []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sort" {
					sortCalls = append(sortCalls, call.Pos())
				}
			}
		}
		return true
	})
	sortedLater := func(pos token.Pos) bool {
		for _, p := range sortCalls {
			if p > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		id, ok := rng.X.(*ast.Ident)
		if !ok || !maps[id.Name] {
			return true
		}
		// Variables declared inside the loop body (plus the range vars)
		// are per-iteration state; effects on anything else depend on
		// iteration order.
		local := map[string]bool{}
		for _, v := range []ast.Expr{rng.Key, rng.Value} {
			if vid, ok := v.(*ast.Ident); ok && v != nil {
				local[vid.Name] = true
			}
		}
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						if lid, ok := lhs.(*ast.Ident); ok {
							local[lid.Name] = true
						}
					}
					return true
				}
				if n.Tok != token.ASSIGN {
					return true // compound ops (+=, |=, ...) commute
				}
				for i, lhs := range n.Lhs {
					lid, ok := lhs.(*ast.Ident)
					if !ok || local[lid.Name] || lid.Name == "_" {
						continue // index writes are keyed; loop-locals are fine
					}
					if i < len(n.Rhs) && isAppendCall(n.Rhs[i]) {
						continue // the append rule below reports this one
					}
					if !sortedLater(rng.Pos()) {
						out = append(out, finding{
							pos: fset.Position(n.Pos()),
							msg: fmt.Sprintf("iteration over map %q assigns %q: last-writer-wins depends on map order (sort the keys first)", id.Name, lid.Name),
						})
					}
				}
			case *ast.CallExpr:
				if fid, ok := n.Fun.(*ast.Ident); ok && fid.Name == "append" && len(n.Args) > 0 && !sortedLater(rng.Pos()) {
					if arg, ok := n.Args[0].(*ast.Ident); ok && !local[arg.Name] {
						out = append(out, finding{
							pos: fset.Position(n.Pos()),
							msg: fmt.Sprintf("iteration over map %q appends to %q in map order: sort before use (collect-then-sort)", id.Name, arg.Name),
						})
					}
				}
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && !sortedLater(rng.Pos()) {
					if recv, ok := sel.X.(*ast.Ident); ok && !local[recv.Name] && !imports[recv.Name] {
						out = append(out, finding{
							pos: fset.Position(n.Pos()),
							msg: fmt.Sprintf("iteration over map %q calls %s.%s: side effects ordered by map iteration (sort the keys first)", id.Name, recv.Name, sel.Sel.Name),
						})
					}
				}
			}
			return true
		})
		return true
	})
	return out
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// isMapExpr reports whether e syntactically constructs a map: make(map...)
// or a map composite literal. (Slices of maps are not maps.)
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, isMap := e.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := e.Type.(*ast.MapType)
		return isMap
	}
	return false
}

