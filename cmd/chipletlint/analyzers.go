package main

import (
	"go/ast"
	"go/token"
	"strings"

	"chipletnet/internal/analysis"
)

// simulatorScope reports whether dir holds simulator code: the module root
// package or anything under internal/, except internal/service — the
// campaign daemon's process layer, which legitimately owns goroutines,
// timers and wall-clock deadlines (all simulation it schedules still runs
// through the module root). Commands and examples read the wall clock and
// parallelize freely.
func simulatorScope(dir string) bool {
	if dir == "internal/service" || strings.HasPrefix(dir, "internal/service/") {
		return false
	}
	return dir == "." || dir == "internal" || strings.HasPrefix(dir, "internal/")
}

// isTestFile reports whether file lives in a _test.go file.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Filename(file.Pos()), "_test.go")
}

// timeAlias returns the identifier the file binds the time package to, or
// "" when time is not imported.
func timeAlias(file *ast.File) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == "time" {
			if imp.Name != nil {
				return imp.Name.Name
			}
			return "time"
		}
	}
	return ""
}

// rngsourceAnalyzer enforces the randomness funnel: no package may import
// math/rand (or v2) except internal/rng itself — all randomness flows
// through the seeded, stable generator. Test files are held to the same
// rule; a test seeding its own rand.Rand would not reproduce across Go
// releases.
var rngsourceAnalyzer = &analysis.Analyzer{
	Name: "rngsource",
	Doc:  "flags math/rand imports outside internal/rng (use the seeded internal/rng generator)",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		if pass.Dir == "internal/rng" {
			return nil, nil
		}
		for _, file := range pass.Files {
			for _, imp := range file.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "math/rand" || p == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "import of %s outside internal/rng: use the seeded internal/rng generator", p)
				}
			}
		}
		return nil, nil
	},
}

// wallclockAnalyzer keeps wall-clock time out of simulator packages: the
// cycle count is the only clock, so time.Now/Since/Sleep/Until as well as
// the timer constructors (After, Tick, NewTimer, NewTicker, AfterFunc)
// make results load-dependent and break bit-identical replay.
var wallclockAnalyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "flags wall-clock reads and timer construction in simulator packages",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		if !simulatorScope(pass.Dir) {
			return nil, nil
		}
		for _, file := range pass.Files {
			if isTestFile(pass, file) {
				continue
			}
			alias := timeAlias(file)
			if alias == "" {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != alias {
					return true
				}
				switch sel.Sel.Name {
				case "Now", "Since", "Sleep", "Until":
					pass.Reportf(sel.Pos(), "wall-clock call time.%s in a simulator package: cycle count is the only clock", sel.Sel.Name)
				case "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
					pass.Reportf(sel.Pos(), "timer construction time.%s in a simulator package: cycle count is the only clock", sel.Sel.Name)
				}
				return true
			})
		}
		return nil, nil
	},
}

// islandsEngineFile reports whether file is internal/router/islands.go —
// the parallel-islands cycle engine, the single sanctioned intra-run
// concurrency in the simulator core. Its per-cycle worker goroutines are
// proven schedule-independent by the three-way differential-equivalence
// matrix and the -race test-equiv gate; no other internal file gets the
// exemption, so accidental concurrency elsewhere still fails the lint.
func islandsEngineFile(pass *analysis.Pass, file *ast.File) bool {
	return pass.Dir == "internal/router" &&
		strings.HasSuffix(pass.Filename(file.Pos()), "islands.go")
}

// goroutineAnalyzer keeps the cycle engine strictly serial: internal
// packages must not spawn goroutines; parallelism lives at the sweep layer
// (the module root). Sole exception: the parallel-islands engine file
// (see islandsEngineFile).
var goroutineAnalyzer = &analysis.Analyzer{
	Name: "goroutine",
	Doc:  "flags go statements in internal packages (the cycle engine is serial)",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		if !simulatorScope(pass.Dir) || pass.Dir == "." {
			return nil, nil
		}
		for _, file := range pass.Files {
			if isTestFile(pass, file) || islandsEngineFile(pass, file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "goroutine spawned in %s: the cycle engine is serial; parallelize at the sweep layer", pass.Dir)
				}
				return true
			})
		}
		return nil, nil
	},
}

// mapiterAnalyzer enforces determinism across map iteration in simulator
// packages: a range-over-map body may not append to or assign outer
// variables, or call methods on them, unless the function later sorts the
// collected values (the collect-then-sort idiom).
var mapiterAnalyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flags order-dependent effects inside range-over-map bodies in simulator packages",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		if !simulatorScope(pass.Dir) {
			return nil, nil
		}
		for _, file := range pass.Files {
			if isTestFile(pass, file) {
				continue
			}
			imports := importNames(file)
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				lintMapRanges(pass, fn, imports)
			}
		}
		return nil, nil
	},
}

// importNames returns the package identifiers the file's imports bind, so
// pkg.Func calls are not mistaken for method calls on variables.
func importNames(file *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range file.Imports {
		if imp.Name != nil {
			names[imp.Name.Name] = true
			continue
		}
		p := strings.Trim(imp.Path.Value, `"`)
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		names[p] = true
	}
	return names
}

// lintMapRanges applies the mapiter rule to one function: bodies of range
// statements over maps (parameters or locally declared) must not have
// iteration-order-dependent effects, unless the function sorts afterwards.
func lintMapRanges(pass *analysis.Pass, fn *ast.FuncDecl, imports map[string]bool) {
	// Map variables visible in the function: parameters of map type, plus
	// local declarations (make(map...), map literals, var declarations
	// with a map type).
	maps := map[string]bool{}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if _, ok := field.Type.(*ast.MapType); ok {
				for _, id := range field.Names {
					maps[id.Name] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if isMapExpr(n.Rhs[i]) {
					maps[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, id := range n.Names {
					maps[id.Name] = true
				}
			}
			for i, v := range n.Values {
				if i < len(n.Names) && isMapExpr(v) {
					maps[n.Names[i].Name] = true
				}
			}
		}
		return true
	})
	if len(maps) == 0 {
		return
	}

	// Positions of sort.* calls, for the collect-then-sort suppression.
	var sortCalls []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sort" {
					sortCalls = append(sortCalls, call.Pos())
				}
			}
		}
		return true
	})
	sortedLater := func(pos token.Pos) bool {
		for _, p := range sortCalls {
			if p > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		id, ok := rng.X.(*ast.Ident)
		if !ok || !maps[id.Name] {
			return true
		}
		// Variables declared inside the loop body (plus the range vars)
		// are per-iteration state; effects on anything else depend on
		// iteration order.
		local := map[string]bool{}
		for _, v := range []ast.Expr{rng.Key, rng.Value} {
			if vid, ok := v.(*ast.Ident); ok && v != nil {
				local[vid.Name] = true
			}
		}
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						if lid, ok := lhs.(*ast.Ident); ok {
							local[lid.Name] = true
						}
					}
					return true
				}
				if n.Tok != token.ASSIGN {
					return true // compound ops (+=, |=, ...) commute
				}
				for i, lhs := range n.Lhs {
					lid, ok := lhs.(*ast.Ident)
					if !ok || local[lid.Name] || lid.Name == "_" {
						continue // index writes are keyed; loop-locals are fine
					}
					if i < len(n.Rhs) && isAppendCall(n.Rhs[i]) {
						continue // the append rule below reports this one
					}
					if !sortedLater(rng.Pos()) {
						pass.Reportf(n.Pos(), "iteration over map %q assigns %q: last-writer-wins depends on map order (sort the keys first)", id.Name, lid.Name)
					}
				}
			case *ast.CallExpr:
				if fid, ok := n.Fun.(*ast.Ident); ok && fid.Name == "append" && len(n.Args) > 0 && !sortedLater(rng.Pos()) {
					if arg, ok := n.Args[0].(*ast.Ident); ok && !local[arg.Name] {
						pass.Reportf(n.Pos(), "iteration over map %q appends to %q in map order: sort before use (collect-then-sort)", id.Name, arg.Name)
					}
				}
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && !sortedLater(rng.Pos()) {
					if recv, ok := sel.X.(*ast.Ident); ok && !local[recv.Name] && !imports[recv.Name] {
						pass.Reportf(n.Pos(), "iteration over map %q calls %s.%s: side effects ordered by map iteration (sort the keys first)", id.Name, recv.Name, sel.Sel.Name)
					}
				}
			}
			return true
		})
		return true
	})
}

// retrysleepAnalyzer enforces the retry-pacing funnel: a bare time.Sleep
// inside a loop is almost always a hand-rolled retry/poll loop, and those
// must pace themselves through internal/service/backoff (capped
// exponential, cancellation-aware) instead of silently hammering or
// sleeping unboundedly. The rule applies everywhere — commands included —
// except inside the backoff package itself; test files may poll freely.
var retrysleepAnalyzer = &analysis.Analyzer{
	Name: "retrysleep",
	Doc:  "flags bare time.Sleep calls inside loops (pace retries with internal/service/backoff)",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		if pass.Dir == "internal/service/backoff" {
			return nil, nil
		}
		for _, file := range pass.Files {
			if isTestFile(pass, file) {
				continue
			}
			alias := timeAlias(file)
			if alias == "" {
				continue
			}
			var loopDepth int
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					loopDepth++
					ast.Inspect(loopBody(n), walk)
					loopDepth--
					return false // children handled above
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok || loopDepth == 0 {
						return true
					}
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == alias && sel.Sel.Name == "Sleep" {
						pass.Reportf(n.Pos(), "bare time.Sleep in a retry loop: pace retries with internal/service/backoff")
					}
				}
				return true
			}
			ast.Inspect(file, walk)
		}
		return nil, nil
	},
}

// loopBody returns the body of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// isMapExpr reports whether e syntactically constructs a map: make(map...)
// or a map composite literal. (Slices of maps are not maps.)
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, isMap := e.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := e.Type.(*ast.MapType)
		return isMap
	}
	return false
}
