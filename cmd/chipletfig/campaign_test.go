package main

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"chipletnet/internal/experiments"
)

// counter tracks how many times each synthetic task ran.
type counter struct {
	mu   sync.Mutex
	runs map[string]int
}

func newCounter() *counter { return &counter{runs: map[string]int{}} }

func (c *counter) bump(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs[key]++
	return c.runs[key]
}

func (c *counter) count(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs[key]
}

func pointFor(key string) []experiments.Point {
	return []experiments.Point{{Experiment: key, Series: "s", X: 1, AvgLatency: float64(len(key))}}
}

func okTask(c *counter, key string) experiments.Task {
	return experiments.Task{Key: key, Figure: "fig", Run: func() ([]experiments.Point, error) {
		c.bump(key)
		return pointFor(key), nil
	}}
}

// TestCampaignResumeSkipsDone is the acceptance scenario: a campaign
// killed partway (simulated by a journal holding two completed tasks and
// a truncated final append) is restarted with the same journal, and only
// the unfinished task runs — the finished ones contribute their journaled
// points without re-executing.
func TestCampaignResumeSkipsDone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	c := newCounter()
	tasks := []experiments.Task{okTask(c, "t1"), okTask(c, "t2"), okTask(c, "t3")}

	// First campaign: run t1 and t2 only, then "die" mid-append of t3.
	j, err := experiments.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runCampaign(tasks[:2], j, campaignConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Restart with the full task list: only t3 may execute.
	j2, err := experiments.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	byFig, err := runCampaign(tasks, j2, campaignConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"t1", "t2"} {
		if n := c.count(key); n != 1 {
			t.Errorf("%s ran %d times; resume must not re-run journaled-complete tasks", key, n)
		}
	}
	if n := c.count("t3"); n != 1 {
		t.Errorf("t3 ran %d times, want 1", n)
	}
	if got := len(byFig["fig"]); got != 3 {
		t.Errorf("resumed campaign produced %d points, want 3 (journaled ones included)", got)
	}
}

// TestCampaignPanicRetry: a task that panics on its first attempt is
// retried in isolation and succeeds; the journal records the attempts.
func TestCampaignPanicRetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := experiments.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	c := newCounter()
	flaky := experiments.Task{Key: "flaky", Figure: "fig", Run: func() ([]experiments.Point, error) {
		if c.bump("flaky") == 1 {
			panic("transient")
		}
		return pointFor("flaky"), nil
	}}
	byFig, err := runCampaign([]experiments.Task{flaky}, j, campaignConfig{
		Workers: 1, Retries: 2, BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("panic was not absorbed by retry: %v", err)
	}
	if len(byFig["fig"]) != 1 {
		t.Errorf("retried task produced %d points, want 1", len(byFig["fig"]))
	}
	if e, ok := j.Lookup("flaky"); !ok || e.Status != experiments.StatusDone || e.Attempts != 2 {
		t.Errorf("journal entry = %+v, want done after 2 attempts", e)
	}
}

// TestCampaignExhaustedRetries: a task that always fails is journaled
// failed with its error, and the other tasks still complete.
func TestCampaignExhaustedRetries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := experiments.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	c := newCounter()
	bad := experiments.Task{Key: "bad", Figure: "fig", Run: func() ([]experiments.Point, error) {
		c.bump("bad")
		panic("always")
	}}
	byFig, err := runCampaign([]experiments.Task{bad, okTask(c, "good")}, j, campaignConfig{
		Workers: 2, Retries: 1, BackoffBase: time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want failure naming task bad", err)
	}
	if n := c.count("bad"); n != 2 {
		t.Errorf("bad attempted %d times, want 2 (1 + 1 retry)", n)
	}
	if len(byFig["fig"]) != 1 {
		t.Errorf("surviving task points = %d, want 1", len(byFig["fig"]))
	}
	if e, ok := j.Lookup("bad"); !ok || e.Status != experiments.StatusFailed || !strings.Contains(e.Error, "always") {
		t.Errorf("journal entry = %+v, want failed with panic text", e)
	}

	// A resumed campaign re-runs failed tasks (only done ones are skipped).
	byFig, err = runCampaign([]experiments.Task{bad, okTask(c, "good")}, j, campaignConfig{Workers: 1})
	if err == nil {
		t.Fatal("resumed campaign should still fail on bad")
	}
	if n := c.count("good"); n != 1 {
		t.Errorf("good re-ran on resume (%d runs); done tasks must be skipped", n)
	}
	if n := c.count("bad"); n != 3 {
		t.Errorf("bad not re-attempted on resume: %d total runs, want 3", n)
	}
	if e, _ := j.Lookup("bad"); e.Attempts != 3 {
		t.Errorf("attempts not carried across resume: %+v", e)
	}
	if len(byFig["fig"]) != 1 {
		t.Errorf("resume points = %d, want 1", len(byFig["fig"]))
	}
}

// TestCampaignTimeout: an attempt exceeding -point-timeout is abandoned
// and journaled failed instead of hanging the campaign.
func TestCampaignTimeout(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := experiments.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	release := make(chan struct{})
	defer close(release)
	stuck := experiments.Task{Key: "stuck", Figure: "fig", Run: func() ([]experiments.Point, error) {
		<-release
		return nil, nil
	}}
	_, err = runCampaign([]experiments.Task{stuck}, j, campaignConfig{
		Workers: 1, Timeout: 20 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout failure", err)
	}
	if e, ok := j.Lookup("stuck"); !ok || e.Status != experiments.StatusFailed {
		t.Errorf("journal entry = %+v, want failed", e)
	}
}

// TestCampaignRealTask runs one genuine (tiny) experiment task through
// the supervisor to keep the synthetic tests honest about the Task shape.
func TestCampaignRealTask(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation sweep")
	}
	s := experiments.Scale{
		Name: "test", WarmupCycles: 50, MeasureCycles: 200,
		Rates: []float64{0.05}, MaxChiplets: 16, CollectiveSizes: []int{16},
	}
	tasks, err := experiments.CampaignTasks(s, []string{"faults"})
	if err != nil {
		t.Fatal(err)
	}
	j, err := experiments.OpenJournal(filepath.Join(t.TempDir(), "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	byFig, err := runCampaign(tasks, j, campaignConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(byFig["faults"]) == 0 {
		t.Error("real task produced no points")
	}
}
