// Command chipletfig regenerates the paper's tables and figures.
//
// Usage:
//
//	chipletfig [-scale quick|full] [-out DIR] EXPERIMENT...
//
// Experiments: table1, fig11, fig12, fig13, fig14, fig15, fig16,
// ablation, all. Each figure prints its latency curves (annotated with the
// estimated saturation point) to stdout and, with -out, writes the raw
// points to DIR/<experiment>.csv.
//
// With -journal FILE the experiments run as a crash-safe campaign: the
// figures split into independently journaled tasks executed by a worker
// pool with per-task timeouts (-point-timeout), panic isolation and
// capped-backoff retries (-retries). Every task outcome is appended to
// the JSONL journal and fsynced, so a killed campaign restarted with
// -resume re-runs only the unfinished tasks and still emits complete
// figures:
//
//	chipletfig -scale full -out results -journal results/journal.jsonl all
//	# ... crash, OOM-kill, or ^C ...
//	chipletfig -scale full -out results -journal results/journal.jsonl -resume all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"chipletnet"
	"chipletnet/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "quick", "quick | full")
	outDir := flag.String("out", "", "directory for CSV output (optional)")
	replot := flag.String("replot", "", "regenerate SVG charts from the CSVs in this directory and exit")
	journal := flag.String("journal", "", "run as a crash-safe campaign journaled to this JSONL file")
	resume := flag.Bool("resume", false, "with -journal: skip tasks the journal records as complete")
	pointTimeout := flag.Duration("point-timeout", 0, "with -journal: wall-clock limit per task attempt (0 = none)")
	retries := flag.Int("retries", 2, "with -journal: extra attempts per failed task")
	workers := flag.Int("workers", 1, "with -journal: concurrent campaign tasks")
	engine := flag.String("engine", "active", "cycle engine: active | reference | islands[:K] (bit-identical results; reference is the slow oracle)")
	flag.Parse()

	if err := chipletnet.SetEngine(*engine); err != nil {
		fatalf("%v", err)
	}

	if *replot != "" {
		entries, err := os.ReadDir(*replot)
		if err != nil {
			fatalf("%v", err)
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".csv" {
				continue
			}
			path := filepath.Join(*replot, e.Name())
			fh, err := os.Open(path)
			if err != nil {
				fatalf("%v", err)
			}
			pts, err := experiments.ReadCSV(fh)
			fh.Close()
			if err != nil {
				fatalf("%s: %v", path, err)
			}
			written, err := experiments.WriteSVGs(*replot, pts)
			if err != nil {
				fatalf("%s: %v", path, err)
			}
			for _, w := range written {
				fmt.Println("wrote", w)
			}
		}
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fatalf("unknown -scale %q", *scaleName)
	}

	args := flag.Args()
	if len(args) == 0 {
		fatalf("no experiments given; want table1|fig11|fig12|fig13|fig14|fig15|fig16|ablation|faults|collective|workload|all")
	}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, e := range []string{"table1", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ablation", "faults", "collective", "workload"} {
				want[e] = true
			}
			continue
		}
		want[a] = true
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	if *resume && *journal == "" {
		fatalf("-resume requires -journal")
	}
	if *journal != "" {
		campaignMain(scale, want, *outDir, *journal, *resume, campaignConfig{
			Workers:     *workers,
			Timeout:     *pointTimeout,
			Retries:     *retries,
			BackoffBase: time.Second,
			BackoffCap:  30 * time.Second,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "chipletfig: "+format+"\n", args...)
			},
		})
		return
	}

	run := func(name string, f func() ([]experiments.Point, error)) {
		if !want[name] {
			return
		}
		delete(want, name)
		start := time.Now()
		fmt.Printf("=== %s (scale %s) ===\n", name, scale.Name)
		pts, err := f()
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		experiments.FormatCurves(os.Stdout, pts)
		fmt.Printf("--- %s done in %v ---\n\n", name, time.Since(start).Round(time.Second))
		if *outDir != "" {
			path := filepath.Join(*outDir, name+".csv")
			fh, err := os.Create(path)
			if err != nil {
				fatalf("%v", err)
			}
			if err := experiments.WriteCSV(fh, pts); err != nil {
				fatalf("%v", err)
			}
			if err := fh.Close(); err != nil {
				fatalf("%v", err)
			}
			if _, err := experiments.WriteSVGs(*outDir, pts); err != nil {
				fatalf("%v", err)
			}
		}
	}

	if want["table1"] {
		delete(want, "table1")
		fmt.Println("=== table1 (network diameter) ===")
		rows, err := experiments.Table1()
		if err != nil {
			fatalf("table1: %v", err)
		}
		experiments.FormatTable1(os.Stdout, rows)
		fmt.Println()
	}

	run("fig11", func() ([]experiments.Point, error) {
		var all []experiments.Point
		for _, pat := range experiments.Fig11Patterns() {
			pts, err := experiments.Fig11(scale, pat)
			if err != nil {
				return nil, err
			}
			all = append(all, pts...)
		}
		return all, nil
	})
	run("fig12", func() ([]experiments.Point, error) { return experiments.Fig12(scale) })
	run("fig13", func() ([]experiments.Point, error) { return experiments.Fig13(scale) })
	run("fig14", func() ([]experiments.Point, error) {
		var all []experiments.Point
		for _, bw := range experiments.Fig14Bandwidths() {
			pts, err := experiments.Fig14(scale, bw)
			if err != nil {
				return nil, err
			}
			all = append(all, pts...)
		}
		return all, nil
	})
	run("fig15", func() ([]experiments.Point, error) { return experiments.Fig15(scale) })
	run("fig16", func() ([]experiments.Point, error) { return experiments.Fig16(scale) })
	run("ablation", func() ([]experiments.Point, error) { return experiments.AblationRouting(scale) })
	run("faults", func() ([]experiments.Point, error) { return experiments.FaultTolerance(scale) })
	run("collective", func() ([]experiments.Point, error) { return experiments.CollectiveStudy(scale) })
	run("workload", func() ([]experiments.Point, error) { return experiments.WorkloadStudy(scale) })

	for leftover := range want {
		fatalf("unknown experiment %q", leftover)
	}
}

// campaignMain runs the wanted experiments as a crash-safe journaled
// campaign and writes the same stdout curves and -out files as the
// direct path. Without -resume an existing journal is discarded; with it
// the journaled-complete tasks are skipped and their recorded points
// reused.
func campaignMain(scale experiments.Scale, want map[string]bool, outDir, journalPath string, resume bool, cc campaignConfig) {
	if want["table1"] {
		delete(want, "table1")
		fmt.Println("=== table1 (network diameter) ===")
		rows, err := experiments.Table1()
		if err != nil {
			fatalf("table1: %v", err)
		}
		experiments.FormatTable1(os.Stdout, rows)
		fmt.Println()
	}

	var names []string
	for _, name := range []string{"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ablation", "faults", "collective", "workload"} {
		if want[name] {
			delete(want, name)
			names = append(names, name)
		}
	}
	for leftover := range want {
		fatalf("unknown experiment %q", leftover)
	}

	tasks, err := experiments.CampaignTasks(scale, names)
	if err != nil {
		fatalf("%v", err)
	}
	if !resume {
		if err := os.Remove(journalPath); err != nil && !os.IsNotExist(err) {
			fatalf("%v", err)
		}
	}
	j, err := experiments.OpenJournal(journalPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer j.Close()

	start := time.Now()
	byFigure, campErr := runCampaign(tasks, j, cc)
	for _, name := range names {
		pts := byFigure[name]
		if len(pts) == 0 {
			continue
		}
		fmt.Printf("=== %s (scale %s) ===\n", name, scale.Name)
		experiments.FormatCurves(os.Stdout, pts)
		fmt.Println()
		if outDir != "" {
			path := filepath.Join(outDir, name+".csv")
			fh, err := os.Create(path)
			if err != nil {
				fatalf("%v", err)
			}
			if err := experiments.WriteCSV(fh, pts); err != nil {
				fatalf("%v", err)
			}
			if err := fh.Close(); err != nil {
				fatalf("%v", err)
			}
			if _, err := experiments.WriteSVGs(outDir, pts); err != nil {
				fatalf("%v", err)
			}
		}
	}
	fmt.Printf("--- campaign done in %v ---\n", time.Since(start).Round(time.Second))
	if campErr != nil {
		fatalf("campaign finished with failed tasks:\n%v", campErr)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chipletfig: "+format+"\n", args...)
	os.Exit(1)
}
