package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"chipletnet/internal/experiments"
	"chipletnet/internal/service/backoff"
)

// campaignConfig tunes the crash-safe campaign supervisor.
type campaignConfig struct {
	Workers int           // concurrent tasks
	Timeout time.Duration // per-attempt wall-clock limit (0 = none)
	Retries int           // extra attempts after a failure
	// Backoff before retry k is BackoffBase << (k-1), capped at
	// BackoffCap (backoff.Policy's schedule).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	Logf        func(format string, args ...any)
}

// attemptOutcome is what one isolated attempt of one task produced.
type attemptOutcome struct {
	pts []experiments.Point
	err error
}

// runAttempt executes task.Run once in its own goroutine, translating a
// panic into an error and abandoning the goroutine if it outlives the
// timeout. Go cannot kill a runaway goroutine, so a timed-out attempt
// keeps burning its CPU until it finishes on its own — the supervisor
// merely stops waiting, journals the failure, and moves on; the
// buffered channel lets the straggler exit when it eventually returns.
func runAttempt(task experiments.Task, timeout time.Duration) attemptOutcome {
	ch := make(chan attemptOutcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- attemptOutcome{err: fmt.Errorf("panic: %v", p)}
			}
		}()
		pts, err := task.Run()
		ch <- attemptOutcome{pts: pts, err: err}
	}()
	if timeout <= 0 {
		return <-ch
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out
	case <-timer.C:
		return attemptOutcome{err: fmt.Errorf("timed out after %v (attempt abandoned)", timeout)}
	}
}

// runCampaign drives the tasks through a worker pool with per-attempt
// timeouts, panic isolation and capped-backoff retries, journaling every
// outcome so a killed campaign resumes where it stopped. It returns the
// points of all done tasks — journaled-complete ones included — grouped
// by figure, plus the joined errors of tasks that exhausted their
// retries. A failing task never stops the campaign; its figure is just
// missing that slice.
func runCampaign(tasks []experiments.Task, j *experiments.Journal, cc campaignConfig) (map[string][]experiments.Point, error) {
	logf := cc.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cc.Workers < 1 {
		cc.Workers = 1
	}

	pacing := backoff.Policy{Base: cc.BackoffBase, Cap: cc.BackoffCap}
	perTask := make([][]experiments.Point, len(tasks))
	taskErrs := make([]error, len(tasks))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cc.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				task := tasks[i]
				attempts := 0
				if prev, ok := j.Lookup(task.Key); ok {
					attempts = prev.Attempts
				}
				var lastErr error
				for try := 0; try <= cc.Retries; try++ {
					if try > 0 {
						logf("%s: attempt %d failed (%v); retrying in %v", task.Key, attempts, lastErr, pacing.Delay(try))
						pacing.Sleep(try)
					}
					attempts++
					out := runAttempt(task, cc.Timeout)
					if out.err == nil {
						perTask[i] = out.pts
						if err := j.Record(experiments.JournalEntry{
							Key: task.Key, Status: experiments.StatusDone,
							Attempts: attempts, Points: out.pts,
						}); err != nil {
							taskErrs[i] = fmt.Errorf("%s: journal: %w", task.Key, err)
						}
						lastErr = nil
						break
					}
					lastErr = out.err
				}
				if lastErr != nil {
					taskErrs[i] = fmt.Errorf("%s: %w", task.Key, lastErr)
					if err := j.Record(experiments.JournalEntry{
						Key: task.Key, Status: experiments.StatusFailed,
						Attempts: attempts, Error: lastErr.Error(),
					}); err != nil {
						taskErrs[i] = errors.Join(taskErrs[i], fmt.Errorf("%s: journal: %w", task.Key, err))
					}
					logf("%s: giving up after %d attempts: %v", task.Key, attempts, lastErr)
				}
			}
		}()
	}

	skipped := 0
	for i, task := range tasks {
		if pts, ok := j.Done(task.Key); ok {
			perTask[i] = pts
			skipped++
			continue
		}
		work <- i
	}
	close(work)
	wg.Wait()
	if skipped > 0 {
		logf("resumed: %d of %d tasks already journaled complete", skipped, len(tasks))
	}

	byFigure := map[string][]experiments.Point{}
	for i, task := range tasks {
		if taskErrs[i] == nil {
			byFigure[task.Figure] = append(byFigure[task.Figure], perTask[i]...)
		}
	}
	return byFigure, errors.Join(taskErrs...)
}
