// Command chipletbench is the hot-path benchmark-regression harness: it
// measures the cycle engine on a fixed set of workloads under the
// suite's baseline and optimized engines and gates the result.
//
// Usage:
//
//	chipletbench [-suite S] [-count N] [-tol 0.10] [-out FILE]  # measure, write JSON
//	chipletbench [-suite S] [-count N] [-tol 0.10] -check FILE  # measure, gate, exit 1 on regression
//
// Five suites exist: "hotpath" (the default) exercises the cycle engine
// itself, "dse" exercises the design-space-exploration pipeline —
// a cache-cold exploration that simulates every candidate, a cache-warm
// exploration that must touch the simulator zero times, and the
// per-candidate content-hash + cache-lookup micro path — "compiled"
// exercises the certified flat-array routing tables: the same mid-load
// run under compiled and interpreted routing (side by side in the JSON),
// plus the Build-time certification + table-compilation cost —
// "islands" exercises the parallel-islands engine on the 256-chiplet
// steady-state workload, against the serial active-set engine as its
// baseline (the other suites baseline against the reference stepper) —
// and "workload" exercises trace-driven replay: the identical run as a
// synthetic Bernoulli process (baseline) and as a causal replay of a
// trace recorded from that very run (optimized side), gating the replay
// overhead at no worse than ~1.2x, plus the AI-scale-out generator's
// cost reported side by side.
//
// The JSON file (BENCH_hotpath.json / BENCH_dse.json /
// BENCH_compiled.json / BENCH_islands.json / BENCH_workload.json at the
// repository root) records ns/op, bytes/op and allocs/op per workload
// per engine — the committed before/after evidence for the hot-path
// overhaul.
//
// Gating is deliberately split by what is portable across machines:
//
//   - ns/op is machine-dependent, so the wall-clock gate is RELATIVE and
//     measured in-process: on every workload the optimized engine must
//     reach that workload's minimum speedup over the suite's baseline
//     engine (2x on the mostly-idle low-rate workloads, 1.5x for the
//     islands engine at K=4 on a machine with at least 4 CPUs, parity
//     within -tol elsewhere). A committed baseline from another machine
//     is reported for context but never fails the gate.
//   - allocs/op is deterministic for a fixed workload, so -check gates it
//     ABSOLUTELY against the committed baseline: the optimized engine may
//     not allocate more than the recorded count (beyond -tol slack for
//     scheduling jitter in the parallel workloads).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"chipletnet"
	"chipletnet/internal/dse"
	"chipletnet/internal/experiments"
)

// workload is one gated benchmark: a body run under testing.Benchmark
// and the minimum optimized-over-baseline speedup it must demonstrate.
type workload struct {
	name string
	// minSpeedup gates baseline-ns / optimized-ns: 2.0 where the
	// optimized engine must win outright, 0.9 where parity is enough.
	minSpeedup float64
	fn         func(b *testing.B)
}

// enginePair names a suite's baseline and optimized cycle engines: each
// workload runs under both, and the relative gate compares them. The
// keys are the Engines map keys in the JSON file.
type enginePair struct {
	baseKey, optKey string
	setBase, setOpt func()
}

// refVsActive is the engine pair of the original hot-path suites: the
// naive reference stepper as baseline, the active-set engine optimized.
func refVsActive() enginePair {
	return enginePair{
		baseKey: "reference", optKey: "active",
		setBase: func() { chipletnet.UseEngine = chipletnet.EngineReference },
		setOpt:  func() { chipletnet.UseEngine = chipletnet.EngineActive },
	}
}

// activeVsIslands is the islands suite's pair: the serial active-set
// engine (the previous champion) as baseline, parallel islands optimized.
// The per-workload island count is set by the workload body (it is
// ignored under the baseline engine).
func activeVsIslands() enginePair {
	return enginePair{
		baseKey: "active", optKey: "islands",
		setBase: func() { chipletnet.UseEngine = chipletnet.EngineActive },
		setOpt:  func() { chipletnet.UseEngine = chipletnet.EngineIslands },
	}
}

// measurement is one engine's result on one workload.
type measurement struct {
	Name        string
	N           int
	NsPerOp     float64
	BytesPerOp  int64
	AllocsPerOp int64
	Extra       map[string]float64 `json:",omitempty"`
}

// benchFile is the serialized BENCH_hotpath.json.
type benchFile struct {
	Note    string
	GoArch  string
	Engines map[string][]measurement // keyed by engine name, e.g. "reference"/"active"
}

func lowCfg() chipletnet.Config {
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = chipletnet.HypercubeTopology(6) // 64 chiplets, 1024 routers
	cfg.InjectionRate = 0.05
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 400
	return cfg
}

func workloads() []workload {
	return []workload{
		{
			// The headline case for active-set scheduling: a 1024-router
			// fabric at 0.05 flits/node/cycle is mostly idle, and a full
			// per-cycle walk wastes almost all of its time.
			name: "run-low-hypercube6", minSpeedup: 2.0,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				cfg := lowCfg()
				for i := 0; i < b.N; i++ {
					if _, err := chipletnet.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// The low-rate Fig. 11 points at quick scale, swept in parallel.
			name: "fig11-low-rates", minSpeedup: 2.0,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				cfg := lowCfg()
				cfg.WarmupCycles = experiments.Quick.WarmupCycles
				cfg.MeasureCycles = experiments.Quick.MeasureCycles
				for i := 0; i < b.N; i++ {
					if _, err := chipletnet.Sweep(cfg, []float64{0.05, 0.1}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// Moderate load: most routers busy most cycles, so the active
			// sets buy little — the gate is parity with the reference walk.
			name: "run-mid-hypercube6", minSpeedup: 0.9,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				cfg := lowCfg()
				cfg.InjectionRate = 0.3
				for i := 0; i < b.N; i++ {
					if _, err := chipletnet.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// The warm-reuse bisection: Build once, Reset between probes.
			name: "saturation-warm-hypercube4", minSpeedup: 0.9,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				cfg := chipletnet.DefaultConfig()
				cfg.Topology = chipletnet.HypercubeTopology(4)
				cfg.WarmupCycles = 100
				cfg.MeasureCycles = 500
				for i := 0; i < b.N; i++ {
					if _, err := chipletnet.SaturationRate(cfg, 0.05, 0.6, 0.1); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
}

// dseSpace is the benchmark exploration: small enough that a cold run
// takes fractions of a second, wide enough to exercise enumeration,
// verification, simulation and frontier extraction.
func dseSpace() (dse.Space, dse.Params) {
	s := dse.Space{
		Chiplets:      8,
		Topologies:    []string{"mesh", "hypercube", "tree"},
		Routings:      []string{dse.RoutingMFR, dse.RoutingAdaptive},
		Interleavings: []string{"none"},
	}
	p := dse.DefaultParams()
	p.WarmupCycles = 100
	p.MeasureCycles = 300
	p.Rates = []float64{0.1, 0.4}
	return s, p
}

// dseWorkloads benchmarks the design-space-exploration pipeline. The
// cache-warm and cache-hit paths never reach the simulator, so the
// engine-speedup gate is disabled (minSpeedup 0) everywhere except the
// cold exploration, which is simulation-bound and must hold parity.
func dseWorkloads() []workload {
	return []workload{
		{
			name: "dse-explore-cold", minSpeedup: 0.9,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				s, p := dseSpace()
				for i := 0; i < b.N; i++ {
					cache, err := dse.OpenCache("")
					if err != nil {
						b.Fatal(err)
					}
					if _, err := dse.Explore(s, p, cache); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// A warmed cache must eliminate simulation entirely; what is
			// left is enumeration, the verify pre-flight, cache lookups
			// and frontier extraction.
			name: "dse-explore-warm", minSpeedup: 0,
			fn: func(b *testing.B) {
				s, p := dseSpace()
				cache, err := dse.OpenCache("")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dse.Explore(s, p, cache); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					o, err := dse.Explore(s, p, cache)
					if err != nil {
						b.Fatal(err)
					}
					if o.Simulated != 0 {
						b.Fatalf("warm exploration simulated %d candidates", o.Simulated)
					}
				}
			},
		},
		{
			// The per-candidate cache-hit path: content-hash the resolved
			// config, look it up, find the record.
			name: "dse-cache-hit", minSpeedup: 0,
			fn: func(b *testing.B) {
				cfg := chipletnet.DefaultConfig()
				p := dse.DefaultParams()
				cache, err := dse.OpenCache("")
				if err != nil {
					b.Fatal(err)
				}
				key := dse.Key(cfg, p)
				if err := cache.Put(dse.Record{Key: key, Name: "bench", Cfg: cfg}); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := cache.Lookup(dse.Key(cfg, p)); !ok {
						b.Fatal("cache miss on a warmed key")
					}
				}
			},
		},
	}
}

// compiledCfg is the compiled-routing benchmark shape: moderate load on a
// 16-chiplet hypercube, so routing lookups are a visible fraction of the
// cycle work and the table-vs-interpreter difference shows.
func compiledCfg() chipletnet.Config {
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = chipletnet.HypercubeTopology(4)
	cfg.InjectionRate = 0.3
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 400
	return cfg
}

// compiledWorkloads benchmarks the certified flat-array routing tables:
// the identical run under compiled and interpreted routing (their ns/op
// sit side by side in BENCH_compiled.json), and the one-off Build cost of
// the certifying traversal + table compilation. Results are bit-identical
// between the two routings (TestCompiledEngineEquivalence), so only cost
// is at stake here; the committed allocs/op baseline is the -check gate.
func compiledWorkloads() []workload {
	simLoop := func(compiled bool) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := compiledCfg()
			cfg.CompiledRouting = compiled
			sys, err := chipletnet.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 {
					sys.Reset()
				}
				if _, err := sys.Simulate(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return []workload{
		// The certifying traversal is a Build-time one-off, so the two
		// simulation workloads Build outside the timer and Reset between
		// iterations: what is measured is the steady-state per-cycle cost
		// with table lookups vs per-hop MFR/Duato evaluation.
		{name: "sim-mid-compiled-hc4", minSpeedup: 0.9, fn: simLoop(true)},
		{name: "sim-mid-interpreted-hc4", minSpeedup: 0.9, fn: simLoop(false)},
		{
			// Certification + compilation is a Build-time one-off; the
			// cycle engine never runs, so the engine-speedup gate is off.
			name: "compile-build-hc4", minSpeedup: 0,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				cfg := compiledCfg()
				cfg.CompiledRouting = true
				for i := 0; i < b.N; i++ {
					if _, err := chipletnet.Build(cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
}

// islandsCfg is the islands-suite workload shape: the 256-chiplet
// steady-state run ROADMAP names as the scale band where one-goroutine
// runs become the DSE bottleneck. HypercubeTopology(8) is 256 chiplets
// (4096 routers); 0.3 flits/node/cycle keeps most routers busy most
// cycles, so the active sets buy nothing and the win must come from the
// parallel islands alone.
func islandsCfg() chipletnet.Config {
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = chipletnet.HypercubeTopology(8)
	cfg.InjectionRate = 0.3
	cfg.WarmupCycles = 50
	cfg.MeasureCycles = 200
	return cfg
}

// islandsWorkloads benchmarks the parallel-islands engine against the
// serial active-set engine. The K=4 workload must show >= 1.5x — a gate
// that only makes physical sense with at least 4 CPUs, so on smaller
// machines (CI runners included) it degrades to the parity floor and
// the JSON Note records which gate the committed numbers were taken
// under. K=1 must never regress below parity: a single-island partition
// runs the same serial sweep as the active engine plus classification,
// and that overhead must stay in the noise.
func islandsWorkloads() []workload {
	run := func(k int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			chipletnet.IslandCount = k
			cfg := islandsCfg()
			for i := 0; i < b.N; i++ {
				if _, err := chipletnet.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	k4Min := 1.5
	if runtime.NumCPU() < 4 {
		k4Min = 0.9
	}
	return []workload{
		{name: "steady-256-k4", minSpeedup: k4Min, fn: run(4)},
		{name: "steady-256-k1", minSpeedup: 0.9, fn: run(1)},
	}
}

// workloadBenchCfg is the workload-suite shape: mid-load on a 16-chiplet
// hypercube, long enough that steady-state injection dominates the
// per-run setup (Build, trace load).
func workloadBenchCfg() chipletnet.Config {
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = chipletnet.HypercubeTopology(4)
	cfg.InjectionRate = 0.2
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 400
	return cfg
}

// workloadReplayMode selects the workload suite's measured side: false
// runs the synthetic Bernoulli process, true replays the trace recorded
// from that exact run. Toggled by the suite's enginePair.
var workloadReplayMode bool

// workloadTracePath is the trace the replay side loads, recorded once at
// suite setup from the baseline configuration.
var workloadTracePath string

// syntheticVsReplay is the workload suite's pair: the synthetic process
// as baseline, causal trace replay as the measured side. The cycle
// engine itself stays the active-set engine on both sides; what the
// relative gate bounds is the replay machinery — trace load, cursor
// bookkeeping, the per-delivery dependency check.
func syntheticVsReplay() enginePair {
	return enginePair{
		baseKey: "synthetic", optKey: "replay",
		setBase: func() { workloadReplayMode = false },
		setOpt:  func() { workloadReplayMode = true },
	}
}

// workloadWorkloads benchmarks trace replay against the synthetic run it
// was recorded from. The 0.84 floor on synthetic-ns / replay-ns is the
// replay-overhead gate: replay may cost at most ~1.2x the equivalent
// synthetic run. The aiscaleout workload runs identically on both sides
// (the mode toggle does not affect it), so its gate is parity-with-itself
// — its ns/op and allocs/op in the JSON are what the -check gate tracks.
func workloadWorkloads() []workload {
	return []workload{
		{
			name: "replay-mid-hc4", minSpeedup: 0.84,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				cfg := workloadBenchCfg()
				if workloadReplayMode {
					cfg.Workload = "replay:" + workloadTracePath
				}
				for i := 0; i < b.N; i++ {
					if _, err := chipletnet.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "aiscaleout-hc4", minSpeedup: 0.9,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				cfg := workloadBenchCfg()
				cfg.Workload = "aiscaleout:allreduce-ring,data=128,compute=100,memrate=0.05,reqrate=0.02"
				for i := 0; i < b.N; i++ {
					if _, err := chipletnet.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
}

// recordWorkloadTrace cuts the workload suite's replay input: the
// baseline configuration run once with the recorder attached.
func recordWorkloadTrace() (string, error) {
	dir, err := os.MkdirTemp("", "chipletbench-workload")
	if err != nil {
		return "", err
	}
	path := dir + "/bench.trace"
	sys, err := chipletnet.Build(workloadBenchCfg())
	if err != nil {
		return "", err
	}
	if _, err := sys.SimulateControlled(chipletnet.RunControl{TracePath: path}); err != nil {
		return "", err
	}
	return path, nil
}

// suiteWorkloads returns the selected suite's workloads and engine pair.
func suiteWorkloads(suite string) ([]workload, enginePair, error) {
	switch suite {
	case "hotpath":
		return workloads(), refVsActive(), nil
	case "dse":
		return dseWorkloads(), refVsActive(), nil
	case "compiled":
		return compiledWorkloads(), refVsActive(), nil
	case "islands":
		return islandsWorkloads(), activeVsIslands(), nil
	case "workload":
		path, err := recordWorkloadTrace()
		if err != nil {
			return nil, enginePair{}, fmt.Errorf("recording the workload-suite trace: %w", err)
		}
		workloadTracePath = path
		return workloadWorkloads(), syntheticVsReplay(), nil
	}
	return nil, enginePair{}, fmt.Errorf("unknown suite %q: want hotpath, dse, compiled, islands or workload", suite)
}

// measure runs every workload count times under the selected engine and
// keeps each workload's fastest run (minimum ns/op).
func measure(ws []workload, set func(), count int) []measurement {
	set()
	defer func() {
		chipletnet.UseEngine = chipletnet.EngineActive
		chipletnet.IslandCount = 0
	}()
	var out []measurement
	for _, w := range ws {
		var best testing.BenchmarkResult
		for c := 0; c < count; c++ {
			r := testing.Benchmark(w.fn)
			if c == 0 || r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		m := measurement{
			Name:        w.name,
			N:           best.N,
			NsPerOp:     float64(best.NsPerOp()),
			BytesPerOp:  best.AllocedBytesPerOp(),
			AllocsPerOp: best.AllocsPerOp(),
		}
		if len(best.Extra) > 0 {
			m.Extra = map[string]float64{}
			for k, v := range best.Extra {
				m.Extra[k] = v
			}
		}
		out = append(out, m)
		fmt.Printf("  %-28s %12.0f ns/op %10d allocs/op  (N=%d)\n", w.name, m.NsPerOp, m.AllocsPerOp, m.N)
	}
	return out
}

func byName(ms []measurement) map[string]measurement {
	out := map[string]measurement{}
	for _, m := range ms {
		out[m.Name] = m
	}
	return out
}

func main() {
	out := flag.String("out", "", "write measurements of both engines to this JSON file")
	check := flag.String("check", "", "gate against this committed baseline JSON; exit 1 on regression")
	count := flag.Int("count", 1, "runs per workload per engine; the fastest is kept")
	tol := flag.Float64("tol", 0.10, "relative tolerance for the gates")
	suite := flag.String("suite", "hotpath", "workload suite: hotpath | dse | compiled | islands | workload")
	flag.Parse()

	ws, eng, err := suiteWorkloads(*suite)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s engine (baseline):\n", eng.baseKey)
	ref := measure(ws, eng.setBase, *count)
	fmt.Printf("%s engine (optimized):\n", eng.optKey)
	act := measure(ws, eng.setOpt, *count)

	refBy, actBy := byName(ref), byName(act)
	failed := false
	fmt.Printf("speedup (%s / %s):\n", eng.baseKey, eng.optKey)
	for _, w := range ws {
		r, a := refBy[w.name], actBy[w.name]
		speedup := r.NsPerOp / a.NsPerOp
		verdict := "ok"
		if speedup < w.minSpeedup*(1-*tol) {
			verdict = fmt.Sprintf("FAIL (need %.2fx)", w.minSpeedup)
			failed = true
		}
		fmt.Printf("  %-28s %6.2fx  %s\n", w.name, speedup, verdict)
	}

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fatalf("%v", err)
		}
		var base benchFile
		if err := json.Unmarshal(data, &base); err != nil {
			fatalf("parsing %s: %v", *check, err)
		}
		baseAct := byName(base.Engines[eng.optKey])
		fmt.Printf("against baseline %s:\n", *check)
		for _, w := range ws {
			b, ok := baseAct[w.name]
			if !ok {
				fmt.Printf("  %-28s not in baseline; re-run with -out to record it\n", w.name)
				failed = true
				continue
			}
			a := actBy[w.name]
			// Allocation counts are machine-independent: gate absolutely.
			limit := int64(float64(b.AllocsPerOp)*(1+*tol)) + 64
			if a.AllocsPerOp > limit {
				fmt.Printf("  %-28s FAIL: %d allocs/op, baseline %d\n", w.name, a.AllocsPerOp, b.AllocsPerOp)
				failed = true
				continue
			}
			// Wall clock is not: report the drift, never fail on it.
			fmt.Printf("  %-28s ok: %d allocs/op (baseline %d), ns/op %+.0f%% vs baseline machine\n",
				w.name, a.AllocsPerOp, b.AllocsPerOp, 100*(a.NsPerOp-b.NsPerOp)/b.NsPerOp)
		}
	}

	if *out != "" {
		note := "hot-path benchmark baseline; regenerate with `make bench-json`"
		switch *suite {
		case "dse":
			note = "design-space-exploration benchmark baseline; regenerate with `make bench-dse-json`"
		case "compiled":
			note = "compiled routing-table benchmark baseline; regenerate with `make bench-compiled`"
		case "islands":
			note = fmt.Sprintf("parallel-islands benchmark baseline, measured on %d CPU(s); "+
				"the 1.5x steady-256-k4 speedup gate applies on machines with >= 4 CPUs "+
				"and degrades to the 0.9x parity floor below that (the relative gate is "+
				"always re-measured in-process, never read from this file); regenerate "+
				"with `make bench-workload`", runtime.NumCPU())
		case "workload":
			note = "trace-replay benchmark baseline: the synthetic run vs a causal replay " +
				"of its own recorded trace; the 0.84 relative floor bounds replay overhead " +
				"at ~1.2x and is re-measured in-process on every run; regenerate with " +
				"`make bench-workload`"
		}
		f := benchFile{
			Note:    note,
			GoArch:  runtime.GOOS + "/" + runtime.GOARCH,
			Engines: map[string][]measurement{eng.baseKey: ref, eng.optKey: act},
		}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if failed {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chipletbench: "+format+"\n", args...)
	os.Exit(1)
}
