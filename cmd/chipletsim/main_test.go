package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"chipletnet"
	"chipletnet/internal/checkpoint"
)

func TestParseKills(t *testing.T) {
	kills, err := parseKills("500:0-16,1200:3-19")
	if err != nil {
		t.Fatal(err)
	}
	want := []chipletnet.FaultKill{
		{Cycle: 500, A: 0, B: 16},
		{Cycle: 1200, A: 3, B: 19},
	}
	if len(kills) != len(want) {
		t.Fatalf("got %d kills, want %d", len(kills), len(want))
	}
	for i := range want {
		if kills[i] != want[i] {
			t.Errorf("kill %d = %+v, want %+v", i, kills[i], want[i])
		}
	}
	for _, bad := range []string{"", "500", "500:0", "x:0-16", "500:0-16:2", "500:a-16"} {
		if _, err := parseKills(bad); err == nil {
			t.Errorf("parseKills(%q) accepted", bad)
		}
	}
}

func TestParseDegrades(t *testing.T) {
	degs, err := parseDegrades("300:0-16:2,900:3-19:4:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []chipletnet.FaultDegrade{
		{Cycle: 300, A: 0, B: 16, BandwidthDiv: 2, LatencyMult: 1},
		{Cycle: 900, A: 3, B: 19, BandwidthDiv: 4, LatencyMult: 3},
	}
	if len(degs) != len(want) {
		t.Fatalf("got %d degrades, want %d", len(degs), len(want))
	}
	for i := range want {
		if degs[i] != want[i] {
			t.Errorf("degrade %d = %+v, want %+v", i, degs[i], want[i])
		}
	}
	for _, bad := range []string{"300:0-16", "300:0-16:x", "300:0-16:2:3:4"} {
		if _, err := parseDegrades(bad); err == nil {
			t.Errorf("parseDegrades(%q) accepted", bad)
		}
	}
}

// TestMain doubles the test binary as chipletsim itself: with
// CHIPLETSIM_CHILD set the process runs main() on the provided argv, so
// exit codes and stderr diagnostics are asserted on a real process.
func TestMain(m *testing.M) {
	if os.Getenv("CHIPLETSIM_CHILD") == "1" {
		os.Args = append([]string{"chipletsim"}, strings.Fields(os.Getenv("CHIPLETSIM_ARGS"))...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestResumeMismatchDiagnostic: -resume with a checkpoint whose snapshot
// no longer fits its embedded configuration must exit 1 with a
// diagnostic naming the mismatch, not crash or silently diverge.
func TestResumeMismatchDiagnostic(t *testing.T) {
	// Produce a real checkpoint, then doctor the embedded config so the
	// snapshot state (which carries fault-engine streams) no longer
	// matches it — the same corruption shape as the root
	// TestCheckpointConfigMismatch.
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = chipletnet.HypercubeTopology(3)
	cfg.InjectionRate = 0.1
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 500
	cfg.Fault.BER = 5e-4
	path := filepath.Join(t.TempDir(), "doctored.ckpt")
	sys, err := chipletnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SimulateControlled(chipletnet.RunControl{CheckpointPath: path, InterruptAtCycle: 200}); !errors.Is(err, chipletnet.ErrInterrupted) {
		t.Fatalf("got %v, want ErrInterrupted", err)
	}
	st, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var embedded chipletnet.Config
	if err := json.Unmarshal(st.Config, &embedded); err != nil {
		t.Fatal(err)
	}
	embedded.Fault = chipletnet.FaultConfig{}
	if st.Config, err = json.Marshal(embedded); err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.WriteFile(path, st); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "CHIPLETSIM_CHILD=1", "CHIPLETSIM_ARGS=-resume "+path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err = cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("doctored resume: err = %v, want a non-zero exit", err)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Errorf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "does not match configuration") {
		t.Errorf("stderr lacks the mismatch diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "-resume") {
		t.Errorf("stderr does not point at -resume:\n%s", out)
	}
}

// TestResumeMissingFileExits1: a nonexistent checkpoint path is a plain
// fatal error, not the mismatch diagnostic.
func TestResumeMissingFileExits1(t *testing.T) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "CHIPLETSIM_CHILD=1", "CHIPLETSIM_ARGS=-resume "+filepath.Join(t.TempDir(), "nope.ckpt"))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("missing checkpoint: err = %v (stderr %q), want exit 1", err, stderr.String())
	}
	if strings.Contains(stderr.String(), "does not match configuration") {
		t.Errorf("missing file misreported as a config mismatch:\n%s", stderr.String())
	}
}
