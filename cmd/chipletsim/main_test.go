package main

import (
	"testing"

	"chipletnet"
)

func TestParseKills(t *testing.T) {
	kills, err := parseKills("500:0-16,1200:3-19")
	if err != nil {
		t.Fatal(err)
	}
	want := []chipletnet.FaultKill{
		{Cycle: 500, A: 0, B: 16},
		{Cycle: 1200, A: 3, B: 19},
	}
	if len(kills) != len(want) {
		t.Fatalf("got %d kills, want %d", len(kills), len(want))
	}
	for i := range want {
		if kills[i] != want[i] {
			t.Errorf("kill %d = %+v, want %+v", i, kills[i], want[i])
		}
	}
	for _, bad := range []string{"", "500", "500:0", "x:0-16", "500:0-16:2", "500:a-16"} {
		if _, err := parseKills(bad); err == nil {
			t.Errorf("parseKills(%q) accepted", bad)
		}
	}
}

func TestParseDegrades(t *testing.T) {
	degs, err := parseDegrades("300:0-16:2,900:3-19:4:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []chipletnet.FaultDegrade{
		{Cycle: 300, A: 0, B: 16, BandwidthDiv: 2, LatencyMult: 1},
		{Cycle: 900, A: 3, B: 19, BandwidthDiv: 4, LatencyMult: 3},
	}
	if len(degs) != len(want) {
		t.Fatalf("got %d degrades, want %d", len(degs), len(want))
	}
	for i := range want {
		if degs[i] != want[i] {
			t.Errorf("degrade %d = %+v, want %+v", i, degs[i], want[i])
		}
	}
	for _, bad := range []string{"300:0-16", "300:0-16:x", "300:0-16:2:3:4"} {
		if _, err := parseDegrades(bad); err == nil {
			t.Errorf("parseDegrades(%q) accepted", bad)
		}
	}
}
