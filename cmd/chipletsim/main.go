// Command chipletsim runs a single simulation of a multi-chiplet
// interconnection network and prints the measured statistics.
//
// Examples:
//
//	chipletsim -topology hypercube -dims 6 -rate 0.3
//	chipletsim -topology ndmesh -dims 4,4,4 -pattern bit-reverse -rate 0.2
//	chipletsim -topology mesh -dims 8,8 -rate 0.5 -json
//
// Long runs can be made resumable: -checkpoint snap.ckpt -checkpoint-every
// 100000 snapshots the complete simulator state periodically (and on
// SIGINT/SIGTERM), and -resume snap.ckpt continues such a run to the exact
// result the uninterrupted run would have produced. -timeout bounds the
// wall-clock time of a runaway simulation.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"chipletnet"
	"chipletnet/internal/checkpoint"
	"chipletnet/internal/workload"
)

func main() {
	cfg := chipletnet.DefaultConfig()

	topoKind := flag.String("topology", "hypercube", "mesh | ndmesh | ndtorus | hypercube | dragonfly | tree | custom")
	dims := flag.String("dims", "6", "topology dimensions, comma separated (custom: n,a0,b0,a1,b1,... edge list; see chipletnet.Topology)")
	noc := flag.String("noc", "4x4", "on-chiplet NoC size WxH")
	pattern := flag.String("pattern", cfg.Pattern, "uniform | hotspot | bit-complement | bit-reverse | bit-shuffle | bit-transpose")
	rate := flag.Float64("rate", cfg.InjectionRate, "injection rate in flits/node/cycle")
	interleave := flag.String("interleave", cfg.Interleave, "none | message | packet")
	workloadFlag := flag.String("workload", "", "non-synthetic workload: replay:<path> | aiscaleout:<spec> | record:<path> | <workload>;record:<path> (empty = synthetic -pattern/-rate traffic)")
	routing := flag.String("routing", string(cfg.Routing), "duato | safe-unsafe | compiled (duato on certified tables)")
	offBW := flag.Int("offchip-bw", cfg.OffChipBW, "chiplet-to-chiplet bandwidth in flits/cycle")
	offLat := flag.Int("offchip-latency", cfg.OffChipLatency, "chiplet-to-chiplet link latency in cycles")
	vcs := flag.Int("vcs", cfg.VCs, "virtual channels per port")
	warmup := flag.Int64("warmup", cfg.WarmupCycles, "warm-up cycles")
	measure := flag.Int64("measure", cfg.MeasureCycles, "measured cycles")
	seed := flag.Uint64("seed", cfg.Seed, "random seed")
	faultBER := flag.Float64("fault-ber", cfg.Fault.BER, "per-flit bit-error probability on chiplet-to-chiplet links")
	faultOnChipBER := flag.Float64("fault-onchip-ber", cfg.Fault.OnChipBER, "per-flit bit-error probability on on-chip links")
	faultKill := flag.String("fault-kill", "", "permanent link failures as cycle:a-b[,cycle:a-b...]")
	faultDegrade := flag.String("fault-degrade", "", "link deratings as cycle:a-b:bwdiv[:latmult][,...]")
	faultTimeout := flag.Int64("fault-timeout", cfg.Fault.RetransmitTimeout, "retransmission timeout in cycles (0 = per-link default)")
	faultBackoffMax := flag.Int64("fault-backoff-max", cfg.Fault.BackoffMax, "retransmission backoff cap in cycles (0 = default)")
	faultNoReverify := flag.Bool("fault-no-reverify", cfg.Fault.DisableReverify, "skip deadlock-freedom re-certification after each kill")
	checkCredits := flag.Bool("checkcredits", cfg.CheckCredits, "audit credit conservation every cycle (slow, diagnostic)")
	drain := flag.Int64("drain", cfg.DrainCycles, "post-run drain budget in cycles (checks delivery completeness)")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	configPath := flag.String("config", "", "load a JSON config file (flags still override)")
	dumpConfig := flag.Bool("dump-config", false, "print the effective config as JSON and exit")
	ckptPath := flag.String("checkpoint", "", "write resumable state snapshots to this file (also on SIGINT/SIGTERM)")
	ckptEvery := flag.Int64("checkpoint-every", 0, "snapshot every N simulated cycles (requires -checkpoint)")
	resumePath := flag.String("resume", "", "resume from a checkpoint file (its embedded config replaces all topology/workload flags)")
	timeout := flag.Duration("timeout", 0, "abort a runaway simulation after this wall-clock time with a diagnostic snapshot (e.g. 30m)")
	engine := flag.String("engine", "active", "cycle engine: active | reference | islands[:K] (bit-identical results; reference is the slow oracle for bisecting engine bugs, islands steps K partitions in parallel)")
	flag.Parse()

	if err := chipletnet.SetEngine(*engine); err != nil {
		fatalf("%v", err)
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	fromFile := false
	if *configPath != "" {
		fh, err := os.Open(*configPath)
		if err != nil {
			fatalf("%v", err)
		}
		loaded, err := chipletnet.LoadConfig(fh)
		fh.Close()
		if err != nil {
			fatalf("%v", err)
		}
		cfg = loaded
		fromFile = true
	}

	// Flags the user actually set override the file; without a file,
	// every flag applies (falling back to its default).
	use := func(name string) bool { return !fromFile || set[name] }
	if use("topology") || use("dims") {
		dimInts, err := parseInts(*dims)
		if err != nil {
			fatalf("bad -dims: %v", err)
		}
		cfg.Topology = chipletnet.Topology{Kind: *topoKind, Dims: dimInts}
	}
	if use("noc") {
		var err error
		if cfg.ChipletW, cfg.ChipletH, err = parseNoC(*noc); err != nil {
			fatalf("bad -noc: %v", err)
		}
	}
	if use("pattern") {
		cfg.Pattern = *pattern
	}
	if use("rate") {
		cfg.InjectionRate = *rate
	}
	if use("interleave") {
		cfg.Interleave = *interleave
	}
	recordPath := ""
	if use("workload") && *workloadFlag != "" {
		spec, rec, err := workload.ParseFlag(*workloadFlag)
		if err != nil {
			fatalf("bad -workload: %v", err)
		}
		cfg.Workload = spec
		recordPath = rec
	}
	if use("routing") {
		if *routing == "compiled" {
			cfg.Routing = chipletnet.RoutingDuato
			cfg.CompiledRouting = true
		} else {
			cfg.Routing = chipletnet.RoutingMode(*routing)
		}
	}
	if use("offchip-bw") {
		cfg.OffChipBW = *offBW
	}
	if use("offchip-latency") {
		cfg.OffChipLatency = *offLat
	}
	if use("vcs") {
		cfg.VCs = *vcs
	}
	if use("warmup") {
		cfg.WarmupCycles = *warmup
	}
	if use("measure") {
		cfg.MeasureCycles = *measure
	}
	if use("seed") {
		cfg.Seed = *seed
	}
	if use("fault-ber") {
		cfg.Fault.BER = *faultBER
	}
	if use("fault-onchip-ber") {
		cfg.Fault.OnChipBER = *faultOnChipBER
	}
	if use("fault-kill") && *faultKill != "" {
		kills, err := parseKills(*faultKill)
		if err != nil {
			fatalf("bad -fault-kill: %v", err)
		}
		cfg.Fault.Kill = kills
	}
	if use("fault-degrade") && *faultDegrade != "" {
		degs, err := parseDegrades(*faultDegrade)
		if err != nil {
			fatalf("bad -fault-degrade: %v", err)
		}
		cfg.Fault.Degrade = degs
	}
	if use("fault-timeout") {
		cfg.Fault.RetransmitTimeout = *faultTimeout
	}
	if use("fault-backoff-max") {
		cfg.Fault.BackoffMax = *faultBackoffMax
	}
	if use("fault-no-reverify") {
		cfg.Fault.DisableReverify = *faultNoReverify
	}
	if use("checkcredits") {
		cfg.CheckCredits = *checkCredits
	}
	if use("drain") {
		cfg.DrainCycles = *drain
	}
	// Fault completeness accounting needs a drain window to be meaningful.
	if cfg.Fault.Enabled() && cfg.DrainCycles == 0 && !set["drain"] {
		cfg.DrainCycles = 10 * (cfg.WarmupCycles + cfg.MeasureCycles)
	}

	if *dumpConfig {
		if err := cfg.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *ckptEvery > 0 && *ckptPath == "" {
		fatalf("-checkpoint-every needs -checkpoint")
	}
	ctrl := chipletnet.RunControl{
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		TracePath:       recordPath,
	}
	if *ckptPath != "" {
		// A first SIGINT/SIGTERM checkpoints and stops cleanly; a second
		// falls back to the default (immediate) signal disposition.
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		intr := make(chan struct{})
		go func() {
			<-sigc
			close(intr)
			<-sigc
			signal.Stop(sigc)
		}()
		ctrl.Interrupt = intr
	}
	if *timeout > 0 {
		dl := make(chan struct{})
		time.AfterFunc(*timeout, func() { close(dl) })
		ctrl.Deadline = dl
	}

	var res chipletnet.Result
	var err error
	if *resumePath != "" {
		res, err = chipletnet.ResumeRun(*resumePath, ctrl)
	} else {
		var sys *chipletnet.System
		if sys, err = chipletnet.Build(cfg); err != nil {
			fatalf("%v", err)
		}
		res, err = sys.SimulateControlled(ctrl)
	}
	switch {
	case errors.Is(err, chipletnet.ErrInterrupted):
		fmt.Fprintf(os.Stderr, "chipletsim: interrupted; checkpoint written to %s (resume with -resume %s)\n",
			*ckptPath, *ckptPath)
		os.Exit(130)
	case errors.Is(err, chipletnet.ErrTimeout):
		fmt.Fprintf(os.Stderr, "chipletsim: wall-clock timeout after %v\n", *timeout)
		if res.DeadlockReport != nil {
			fmt.Fprintln(os.Stderr, res.DeadlockReport)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(res)
		}
		os.Exit(2)
	case errors.Is(err, checkpoint.ErrMismatch):
		// -resume with a checkpoint whose snapshot no longer fits its
		// embedded configuration (edited, truncated, or from another
		// build of the topology): rebuilding would silently diverge, so
		// refuse with the mismatch witness.
		fatalf("resume %s: checkpoint does not match configuration: %v\n"+
			"chipletsim: the snapshot state disagrees with the config embedded in the checkpoint;\n"+
			"chipletsim: restore the original checkpoint file or re-run from scratch without -resume",
			*resumePath, err)
	case err != nil:
		// A typed fault failure (partition, failed re-certification) still
		// carries a partial Result with the event log; surface it.
		if *asJSON && (res.FaultStats != nil || len(res.FaultEvents) > 0) {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(res)
		}
		fatalf("%v", err)
	}

	if recordPath != "" {
		fmt.Fprintf(os.Stderr, "chipletsim: workload trace written to %s (replay with -workload replay:%s)\n",
			recordPath, recordPath)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
		if res.Deadlocked {
			os.Exit(2)
		}
		return
	}

	fmt.Printf("system:        %v of %dx%d chiplets (%d endpoints)\n",
		cfg.Topology, cfg.ChipletW, cfg.ChipletH, res.Endpoints)
	if res.Cfg.Workload != "" {
		fmt.Printf("workload:      %s, interleave=%s, routing=%s\n",
			res.Cfg.Workload, res.Cfg.Interleave, res.Cfg.Routing)
	} else {
		fmt.Printf("workload:      %s @ %.3f flits/node/cycle, interleave=%s, routing=%s\n",
			res.Cfg.Pattern, res.Cfg.InjectionRate, res.Cfg.Interleave, res.Cfg.Routing)
	}
	if res.Deadlocked {
		fmt.Println("RESULT:        DEADLOCK detected by the progress watchdog")
		if res.DeadlockReport != nil {
			fmt.Println(res.DeadlockReport)
		}
		os.Exit(2)
	}
	fmt.Printf("latency:       avg %.1f  p50 %.0f  p95 %.0f  p99 %.0f  p999 %.0f  max %d cycles\n",
		res.AvgLatency, res.P50Latency, res.P95Latency, res.P99Latency, res.P999Latency, res.MaxLatency)
	fmt.Printf("throughput:    %.4f flits/node/cycle accepted (offered %.4f)%s\n",
		res.AcceptedFlitsPerNodeCycle, res.OfferedRate, satMark(res))
	for _, cs := range res.Classes {
		fmt.Printf("class:         %-12s %6d pkts  avg %.1f  p99 %.0f  p999 %.0f  max %d  %.4f flits/node/cycle\n",
			cs.Class, cs.MeasuredPackets, cs.AvgLatency, cs.P99Latency, cs.P999Latency,
			cs.MaxLatency, cs.AcceptedFlitsPerNodeCycle)
	}
	fmt.Printf("hops:          %.2f routers, %.2f on-chip links, %.2f off-chip links\n",
		res.AvgRouters, res.AvgOnChipHops, res.AvgOffChipHops)
	fmt.Printf("energy:        %.2f pJ/bit transport estimate\n", res.EnergyPJPerBit)
	fmt.Printf("packets:       %d measured, %d total delivered\n",
		res.MeasuredPackets, res.DeliveredPackets)
	if st := res.FaultStats; st != nil {
		fmt.Printf("faults:        %d corrupted bundles, %d retransmissions, %d nacks\n",
			st.CorruptedBundles, st.Retransmissions, st.Nacks)
		fmt.Printf("               %d links killed, %d degraded, %d decommissioned, %d packets rerouted\n",
			st.LinksKilled, st.LinksDegraded, st.LinksDecommissioned, st.ReroutedPackets)
		fmt.Printf("delivery:      %d delivered, %d lost, %d duplicated, drained=%v (%d in flight at end)\n",
			st.DeliveredPackets, st.LostPackets, st.DuplicatePackets, res.Drained, res.InFlightAtEnd)
		const maxShown = 10
		for i, ev := range res.FaultEvents {
			if i == maxShown {
				fmt.Printf("  ... %d further events\n", len(res.FaultEvents)-maxShown)
				break
			}
			fmt.Printf("  cycle %-8d %-20s %s\n", ev.Cycle, ev.Kind, ev.Detail)
		}
	}
}

func satMark(r chipletnet.Result) string {
	if r.Saturated() {
		return "  [SATURATED]"
	}
	return ""
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseKills parses "cycle:a-b[,cycle:a-b...]" into a kill schedule.
func parseKills(s string) ([]chipletnet.FaultKill, error) {
	var out []chipletnet.FaultKill
	for _, part := range strings.Split(s, ",") {
		cycle, a, b, rest, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%q: want cycle:a-b", part)
		}
		out = append(out, chipletnet.FaultKill{Cycle: cycle, A: a, B: b})
	}
	return out, nil
}

// parseDegrades parses "cycle:a-b:bwdiv[:latmult][,...]" into a derating
// schedule; latmult defaults to 1 (bandwidth-only derating).
func parseDegrades(s string) ([]chipletnet.FaultDegrade, error) {
	var out []chipletnet.FaultDegrade
	for _, part := range strings.Split(s, ",") {
		cycle, a, b, rest, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		if len(rest) < 1 || len(rest) > 2 {
			return nil, fmt.Errorf("%q: want cycle:a-b:bwdiv[:latmult]", part)
		}
		d := chipletnet.FaultDegrade{Cycle: cycle, A: a, B: b, LatencyMult: 1}
		if d.BandwidthDiv, err = strconv.Atoi(rest[0]); err != nil {
			return nil, fmt.Errorf("%q: bad bandwidth divisor: %v", part, err)
		}
		if len(rest) == 2 {
			if d.LatencyMult, err = strconv.Atoi(rest[1]); err != nil {
				return nil, fmt.Errorf("%q: bad latency multiplier: %v", part, err)
			}
		}
		out = append(out, d)
	}
	return out, nil
}

// parseEvent splits one "cycle:a-b[:extra...]" schedule entry.
func parseEvent(s string) (cycle int64, a, b int, rest []string, err error) {
	fields := strings.Split(strings.TrimSpace(s), ":")
	if len(fields) < 2 {
		return 0, 0, 0, nil, fmt.Errorf("%q: want cycle:a-b", s)
	}
	if cycle, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
		return 0, 0, 0, nil, fmt.Errorf("%q: bad cycle: %v", s, err)
	}
	ab := strings.Split(fields[1], "-")
	if len(ab) != 2 {
		return 0, 0, 0, nil, fmt.Errorf("%q: want node pair a-b", s)
	}
	if a, err = strconv.Atoi(ab[0]); err != nil {
		return 0, 0, 0, nil, fmt.Errorf("%q: bad node id: %v", s, err)
	}
	if b, err = strconv.Atoi(ab[1]); err != nil {
		return 0, 0, 0, nil, fmt.Errorf("%q: bad node id: %v", s, err)
	}
	return cycle, a, b, fields[2:], nil
}

func parseNoC(s string) (w, h int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want WxH, got %q", s)
	}
	if w, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, err
	}
	if h, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, err
	}
	return w, h, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chipletsim: "+format+"\n", args...)
	os.Exit(1)
}
