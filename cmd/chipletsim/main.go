// Command chipletsim runs a single simulation of a multi-chiplet
// interconnection network and prints the measured statistics.
//
// Examples:
//
//	chipletsim -topology hypercube -dims 6 -rate 0.3
//	chipletsim -topology ndmesh -dims 4,4,4 -pattern bit-reverse -rate 0.2
//	chipletsim -topology mesh -dims 8,8 -rate 0.5 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chipletnet"
)

func main() {
	cfg := chipletnet.DefaultConfig()

	topoKind := flag.String("topology", "hypercube", "mesh | ndmesh | ndtorus | hypercube | dragonfly | tree | custom")
	dims := flag.String("dims", "6", "topology dimensions, comma separated (custom: n,a0,b0,a1,b1,... edge list; see chipletnet.Topology)")
	noc := flag.String("noc", "4x4", "on-chiplet NoC size WxH")
	pattern := flag.String("pattern", cfg.Pattern, "uniform | hotspot | bit-complement | bit-reverse | bit-shuffle | bit-transpose")
	rate := flag.Float64("rate", cfg.InjectionRate, "injection rate in flits/node/cycle")
	interleave := flag.String("interleave", cfg.Interleave, "none | message | packet")
	routing := flag.String("routing", string(cfg.Routing), "duato | safe-unsafe")
	offBW := flag.Int("offchip-bw", cfg.OffChipBW, "chiplet-to-chiplet bandwidth in flits/cycle")
	offLat := flag.Int("offchip-latency", cfg.OffChipLatency, "chiplet-to-chiplet link latency in cycles")
	vcs := flag.Int("vcs", cfg.VCs, "virtual channels per port")
	warmup := flag.Int64("warmup", cfg.WarmupCycles, "warm-up cycles")
	measure := flag.Int64("measure", cfg.MeasureCycles, "measured cycles")
	seed := flag.Uint64("seed", cfg.Seed, "random seed")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	configPath := flag.String("config", "", "load a JSON config file (flags still override)")
	dumpConfig := flag.Bool("dump-config", false, "print the effective config as JSON and exit")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	fromFile := false
	if *configPath != "" {
		fh, err := os.Open(*configPath)
		if err != nil {
			fatalf("%v", err)
		}
		loaded, err := chipletnet.LoadConfig(fh)
		fh.Close()
		if err != nil {
			fatalf("%v", err)
		}
		cfg = loaded
		fromFile = true
	}

	// Flags the user actually set override the file; without a file,
	// every flag applies (falling back to its default).
	use := func(name string) bool { return !fromFile || set[name] }
	if use("topology") || use("dims") {
		dimInts, err := parseInts(*dims)
		if err != nil {
			fatalf("bad -dims: %v", err)
		}
		cfg.Topology = chipletnet.Topology{Kind: *topoKind, Dims: dimInts}
	}
	if use("noc") {
		var err error
		if cfg.ChipletW, cfg.ChipletH, err = parseNoC(*noc); err != nil {
			fatalf("bad -noc: %v", err)
		}
	}
	if use("pattern") {
		cfg.Pattern = *pattern
	}
	if use("rate") {
		cfg.InjectionRate = *rate
	}
	if use("interleave") {
		cfg.Interleave = *interleave
	}
	if use("routing") {
		cfg.Routing = chipletnet.RoutingMode(*routing)
	}
	if use("offchip-bw") {
		cfg.OffChipBW = *offBW
	}
	if use("offchip-latency") {
		cfg.OffChipLatency = *offLat
	}
	if use("vcs") {
		cfg.VCs = *vcs
	}
	if use("warmup") {
		cfg.WarmupCycles = *warmup
	}
	if use("measure") {
		cfg.MeasureCycles = *measure
	}
	if use("seed") {
		cfg.Seed = *seed
	}

	if *dumpConfig {
		if err := cfg.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}

	res, err := chipletnet.Run(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
		return
	}

	fmt.Printf("system:        %v of %dx%d chiplets (%d endpoints)\n",
		cfg.Topology, cfg.ChipletW, cfg.ChipletH, res.Endpoints)
	fmt.Printf("workload:      %s @ %.3f flits/node/cycle, interleave=%s, routing=%s\n",
		cfg.Pattern, cfg.InjectionRate, cfg.Interleave, cfg.Routing)
	if res.Deadlocked {
		fmt.Println("RESULT:        DEADLOCK detected by the progress watchdog")
		if res.DeadlockReport != nil {
			fmt.Println(res.DeadlockReport)
		}
		os.Exit(2)
	}
	fmt.Printf("latency:       avg %.1f  p50 %.0f  p95 %.0f  p99 %.0f  max %d cycles\n",
		res.AvgLatency, res.P50Latency, res.P95Latency, res.P99Latency, res.MaxLatency)
	fmt.Printf("throughput:    %.4f flits/node/cycle accepted (offered %.4f)%s\n",
		res.AcceptedFlitsPerNodeCycle, res.OfferedRate, satMark(res))
	fmt.Printf("hops:          %.2f routers, %.2f on-chip links, %.2f off-chip links\n",
		res.AvgRouters, res.AvgOnChipHops, res.AvgOffChipHops)
	fmt.Printf("energy:        %.2f pJ/bit transport estimate\n", res.EnergyPJPerBit)
	fmt.Printf("packets:       %d measured, %d total delivered\n",
		res.MeasuredPackets, res.DeliveredPackets)
}

func satMark(r chipletnet.Result) string {
	if r.Saturated() {
		return "  [SATURATED]"
	}
	return ""
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseNoC(s string) (w, h int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want WxH, got %q", s)
	}
	if w, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, err
	}
	if h, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, err
	}
	return w, h, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chipletsim: "+format+"\n", args...)
	os.Exit(1)
}
