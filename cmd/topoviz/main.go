// Command topoviz inspects a built multi-chiplet topology: node labels and
// the interface ring of one chiplet, interface grouping, link counts, and
// node/chiplet diameters. It is the debugging companion of the library —
// what Fig. 3/5/7 of the paper show graphically, as text.
//
// Example:
//
//	topoviz -topology hypercube -dims 6 -noc 4x4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"chipletnet"
	"chipletnet/internal/topology"
)

func main() {
	topoKind := flag.String("topology", "hypercube", "mesh | ndmesh | ndtorus | hypercube | dragonfly | tree")
	dims := flag.String("dims", "6", "topology dimensions, comma separated")
	noc := flag.String("noc", "4x4", "on-chiplet NoC size WxH")
	chip := flag.Int("chiplet", 0, "chiplet index to detail")
	simRate := flag.Float64("sim", 0, "if > 0, run uniform traffic at this rate and show link utilization")
	flag.Parse()

	cfg := chipletnet.DefaultConfig()
	dimInts, err := parseInts(*dims)
	if err != nil {
		fatalf("bad -dims: %v", err)
	}
	cfg.Topology = chipletnet.Topology{Kind: *topoKind, Dims: dimInts}
	parts := strings.Split(strings.ToLower(*noc), "x")
	if len(parts) == 2 {
		cfg.ChipletW, _ = strconv.Atoi(parts[0])
		cfg.ChipletH, _ = strconv.Atoi(parts[1])
	}

	sys, err := chipletnet.Build(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	s := sys.Topo

	fmt.Printf("topology:         %v\n", cfg.Topology)
	fmt.Printf("chiplets:         %d of %dx%d nodes (%d cores + %d interfaces each)\n",
		s.NumChiplets(), s.Geo.W, s.Geo.H, s.Geo.CoreCount(), s.Geo.RingLen())
	fmt.Printf("nodes:            %d total, %d traffic endpoints\n", len(s.Nodes), len(s.Cores))
	on, off := 0, 0
	for _, l := range s.Fabric.Links {
		if l.OffChip {
			off++
		} else {
			on++
		}
	}
	fmt.Printf("links:            %d on-chip + %d chiplet-to-chiplet (unidirectional)\n", on, off)
	nd, connected := s.Diameter()
	fmt.Printf("diameter:         %d node hops (connected=%v), %d chiplet hops\n",
		nd, connected, s.ChipletDiameter())

	if *chip < 0 || *chip >= s.NumChiplets() {
		fatalf("chiplet %d out of range", *chip)
	}
	c := &s.Chiplets[*chip]
	fmt.Printf("\nchiplet %d coordinate: %v\n", *chip, c.Coord)

	fmt.Println("\nnode labels (y rows top to bottom; negative = interface ring):")
	for y := s.Geo.H - 1; y >= 0; y-- {
		for x := 0; x < s.Geo.W; x++ {
			n := &s.Nodes[c.Nodes[s.Geo.Index(x, y)]]
			fmt.Printf("%5d", n.Label)
		}
		fmt.Println()
	}

	fmt.Println("\ninterface groups (ring position: node -> peer chiplet):")
	for g, members := range c.Groups {
		fmt.Printf("  group %d:", g)
		if len(members) == 0 {
			fmt.Printf(" (unconnected)")
		}
		for _, id := range members {
			n := &s.Nodes[id]
			cp := s.CrossPort(id)
			peer := s.Nodes[n.Ports[cp].To]
			fmt.Printf("  pos%d:(%d,%d)->chiplet%d", n.RingPos, n.X, n.Y, peer.Chiplet)
		}
		fmt.Println()
	}

	if s.Kind == topology.Tree {
		fmt.Println("\ntree structure:")
		for i, p := range s.Parent {
			fmt.Printf("  chiplet %d: parent %d children %v\n", i, p, s.Children[i])
		}
	}

	if *simRate > 0 {
		cfg2 := cfg
		cfg2.InjectionRate = *simRate
		cfg2.WarmupCycles = 300
		cfg2.MeasureCycles = 2000
		sys2, err := chipletnet.Build(cfg2)
		if err != nil {
			fatalf("%v", err)
		}
		res, err := sys2.Simulate()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("\nuniform traffic @ %.2f flits/node/cycle: latency %.1f, accepted %.3f\n",
			*simRate, res.AvgLatency, res.AcceptedFlitsPerNodeCycle)
		fmt.Printf("link utilization: off-chip avg %.1f%% peak %.1f%%, on-chip avg %.1f%%\n",
			100*res.AvgOffChipUtilization, 100*res.PeakOffChipUtilization, 100*res.AvgOnChipUtilization)

		// Per chiplet-pair heatmap of off-chip channel load.
		type pair struct{ a, b int }
		sum := map[pair]float64{}
		cnt := map[pair]int{}
		t2 := sys2.Topo
		for _, l := range t2.Fabric.Links {
			if !l.OffChip {
				continue
			}
			p := pair{t2.Nodes[l.Src.Node].Chiplet, t2.Nodes[l.Dst.Node].Chiplet}
			sum[p] += l.Utilization(t2.Fabric.Now)
			cnt[p]++
		}
		fmt.Println("\nbusiest chiplet-to-chiplet bundles (avg over member links):")
		type row struct {
			p pair
			u float64
		}
		var rows []row
		for p, s := range sum {
			rows = append(rows, row{p, s / float64(cnt[p])})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].u > rows[j].u })
		for i, r := range rows {
			if i >= 10 {
				break
			}
			fmt.Printf("  chiplet %3d -> %3d: %5.1f%%\n", r.p.a, r.p.b, 100*r.u)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "topoviz: "+format+"\n", args...)
	os.Exit(1)
}
