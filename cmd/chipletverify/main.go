// Command chipletverify statically verifies routing-level deadlock freedom
// of a configuration without simulating a single cycle: it enumerates the
// routing function's channel transitions, builds the channel dependency
// graph of the escape sub-network, and checks Duato's criterion (acyclic
// extended CDG), full reachability and VC discipline. Failures come with a
// concrete dependency-cycle witness.
//
// Examples:
//
//	chipletverify -topology hypercube -dims 6
//	chipletverify -topology ndmesh -dims 4,4,4 -equal-channels -allow-unsafe
//	chipletverify -config sweep.json -json
//
// Exit status: 0 verified (or structurally sound under safe/unsafe flow
// control), 1 usage or build error, 2 verification failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chipletnet"
	"chipletnet/internal/verify"
)

func main() {
	cfg := chipletnet.DefaultConfig()

	topoKind := flag.String("topology", "hypercube", "mesh | ndmesh | ndtorus | hypercube | dragonfly | tree | custom")
	dims := flag.String("dims", "6", "topology dimensions, comma separated (custom: n,a0,b0,a1,b1,... edge list)")
	noc := flag.String("noc", "4x4", "on-chiplet NoC size WxH")
	routing := flag.String("routing", string(cfg.Routing), "duato | safe-unsafe")
	vcs := flag.Int("vcs", cfg.VCs, "virtual channels per port")
	equalChannels := flag.Bool("equal-channels", false, "disable the Theorem-1 d+/d- VC separation (known deadlock-prone)")
	allowUnsafe := flag.Bool("allow-unsafe", false, "build configurations the factory would reject as unsafe")
	faults := flag.Float64("faults", 0, "fraction of cross-chiplet channels to fail before verifying")
	seed := flag.Uint64("seed", cfg.Seed, "random seed (fault selection)")
	maxDests := flag.Int("max-dests", 0, "bound analyzed destinations (0 = exhaustive)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	configPath := flag.String("config", "", "load a JSON config file (flags still override)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	fromFile := false
	if *configPath != "" {
		fh, err := os.Open(*configPath)
		if err != nil {
			fatalf("%v", err)
		}
		loaded, err := chipletnet.LoadConfig(fh)
		fh.Close()
		if err != nil {
			fatalf("%v", err)
		}
		cfg = loaded
		fromFile = true
	}

	use := func(name string) bool { return !fromFile || set[name] }
	if use("topology") || use("dims") {
		dimInts, err := parseInts(*dims)
		if err != nil {
			fatalf("bad -dims: %v", err)
		}
		cfg.Topology = chipletnet.Topology{Kind: *topoKind, Dims: dimInts}
	}
	if use("noc") {
		var err error
		if cfg.ChipletW, cfg.ChipletH, err = parseNoC(*noc); err != nil {
			fatalf("bad -noc: %v", err)
		}
	}
	if use("routing") {
		cfg.Routing = chipletnet.RoutingMode(*routing)
	}
	if use("vcs") {
		cfg.VCs = *vcs
	}
	if use("equal-channels") {
		cfg.DisableNDMeshVCSeparation = *equalChannels
	}
	if use("allow-unsafe") {
		cfg.AllowUnsafeRouting = *allowUnsafe
	}
	if use("faults") {
		cfg.CrossLinkFaultFraction = *faults
	}
	if use("seed") {
		cfg.Seed = *seed
	}

	rep, err := chipletnet.VerifyConfig(cfg, verify.Options{MaxDests: *maxDests})
	if err != nil {
		fatalf("%v", err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Print(rep)
	}
	if rep.Err() != nil {
		os.Exit(2)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseNoC(s string) (w, h int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want WxH, got %q", s)
	}
	if w, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, err
	}
	if h, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, err
	}
	return w, h, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chipletverify: "+format+"\n", args...)
	os.Exit(1)
}
