// Command chipletverify statically certifies a configuration's routing
// without simulating a single cycle: one traversal of the (node,
// destination, tag-class) state space proves deadlock freedom (Duato's
// criterion, acyclic extended CDG), total reachability, livelock freedom
// (bounded adaptive runs, terminating escape walks) and VC discipline
// (Theorem 1's monotone escape classes), and prints the resulting
// certificate — obligations, verdicts, hop bounds and content address.
// Failures come with concrete witnesses in deterministic sorted order.
//
// Examples:
//
//	chipletverify -topology hypercube -dims 6
//	chipletverify -topology ndmesh -dims 4,4,4 -equal-channels -allow-unsafe
//	chipletverify -routing compiled -topology dragonfly -dims 6
//	chipletverify -config sweep.json -json
//
// Exit status: 0 certified (or structurally sound under safe/unsafe flow
// control), 1 usage or build error, 2 verification failure (unsafe
// configuration with witnesses), 3 analysis unsupported or aborted (the
// routing cannot be analyzed; nothing was proved either way).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chipletnet"
	"chipletnet/internal/verify"
)

func main() {
	cfg := chipletnet.DefaultConfig()

	topoKind := flag.String("topology", "hypercube", "mesh | ndmesh | ndtorus | hypercube | dragonfly | tree | custom")
	dims := flag.String("dims", "6", "topology dimensions, comma separated (custom: n,a0,b0,a1,b1,... edge list)")
	noc := flag.String("noc", "4x4", "on-chiplet NoC size WxH")
	routing := flag.String("routing", string(cfg.Routing), "duato | safe-unsafe | compiled (duato on certified tables)")
	vcs := flag.Int("vcs", cfg.VCs, "virtual channels per port")
	equalChannels := flag.Bool("equal-channels", false, "disable the Theorem-1 d+/d- VC separation (known deadlock-prone)")
	allowUnsafe := flag.Bool("allow-unsafe", false, "build configurations the factory would reject as unsafe")
	faults := flag.Float64("faults", 0, "fraction of cross-chiplet channels to fail before verifying")
	seed := flag.Uint64("seed", cfg.Seed, "random seed (fault selection)")
	maxDests := flag.Int("max-dests", 0, "bound analyzed destinations (0 = exhaustive)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	configPath := flag.String("config", "", "load a JSON config file (flags still override)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	fromFile := false
	if *configPath != "" {
		fh, err := os.Open(*configPath)
		if err != nil {
			fatalf("%v", err)
		}
		loaded, err := chipletnet.LoadConfig(fh)
		fh.Close()
		if err != nil {
			fatalf("%v", err)
		}
		cfg = loaded
		fromFile = true
	}

	use := func(name string) bool { return !fromFile || set[name] }
	if use("topology") || use("dims") {
		dimInts, err := parseInts(*dims)
		if err != nil {
			fatalf("bad -dims: %v", err)
		}
		cfg.Topology = chipletnet.Topology{Kind: *topoKind, Dims: dimInts}
	}
	if use("noc") {
		var err error
		if cfg.ChipletW, cfg.ChipletH, err = parseNoC(*noc); err != nil {
			fatalf("bad -noc: %v", err)
		}
	}
	if use("routing") {
		if *routing == "compiled" {
			cfg.Routing = chipletnet.RoutingDuato
			cfg.CompiledRouting = true
		} else {
			cfg.Routing = chipletnet.RoutingMode(*routing)
		}
	}
	if use("vcs") {
		cfg.VCs = *vcs
	}
	if use("equal-channels") {
		cfg.DisableNDMeshVCSeparation = *equalChannels
	}
	if use("allow-unsafe") {
		cfg.AllowUnsafeRouting = *allowUnsafe
	}
	if use("faults") {
		cfg.CrossLinkFaultFraction = *faults
	}
	if use("seed") {
		cfg.Seed = *seed
	}

	rep, err := chipletnet.VerifyConfig(cfg, verify.Options{MaxDests: *maxDests})
	if err != nil {
		fatalf("%v", err)
	}
	cert := rep.Certificate()

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Report          *verify.Report
			Certificate     *verify.Certificate
			CertificateHash string
		}{rep, cert, cert.Hash()}
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Print(rep)
		fmt.Print(cert)
	}
	switch {
	case rep.Unsupported != "" || rep.Panic != "":
		os.Exit(3)
	case rep.Err() != nil:
		os.Exit(2)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseNoC(s string) (w, h int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want WxH, got %q", s)
	}
	if w, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, err
	}
	if h, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, err
	}
	return w, h, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chipletverify: "+format+"\n", args...)
	os.Exit(1)
}
