package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"chipletnet"
	"chipletnet/internal/dse"
	"chipletnet/internal/service"
)

// TestMain doubles the test binary as the daemon: when CHIPLETD_ARGS is
// set the process runs the real daemon main loop instead of the tests,
// so SIGKILL/SIGTERM behavior is exercised on an actual child process
// (the only honest way to test crash-safety).
func TestMain(m *testing.M) {
	if args := os.Getenv("CHIPLETD_ARGS"); args != "" {
		os.Exit(run(strings.Fields(args)))
	}
	os.Exit(m.Run())
}

// daemon is one spawned chipletd child.
type daemon struct {
	cmd  *exec.Cmd
	url  string
	logs *bytes.Buffer
}

// startDaemon launches the helper process on a free port and waits for
// its "listening on" handshake line.
func startDaemon(t *testing.T, dir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-dir", dir}, extra...)
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "CHIPLETD_ARGS="+strings.Join(args, " "))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon child: %v", err)
	}
	d := &daemon{cmd: cmd, logs: &bytes.Buffer{}}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		d.logs.WriteString(line + "\n")
		if i := strings.Index(line, "listening on "); i >= 0 {
			d.url = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if d.url == "" {
		cmd.Wait()
		t.Fatalf("daemon never announced its address; log:\n%s", d.logs)
	}
	go func() { // keep draining so the child never blocks on stderr
		for sc.Scan() {
			d.logs.WriteString(sc.Text() + "\n")
		}
	}()
	return d
}

// wait reaps the child and returns its exit code.
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	err := d.cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if ok := errorsAs(err, &ee); ok {
		return ee.ExitCode()
	}
	t.Fatalf("waiting for daemon: %v", err)
	return -1
}

func errorsAs(err error, target *(*exec.ExitError)) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

func httpJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// pollJob fetches the job until pred is satisfied or the deadline hits.
func pollJob(t *testing.T, url, id string, timeout time.Duration, pred func(service.Job) bool) service.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var job service.Job
	for time.Now().Before(deadline) {
		if code := httpJSON(t, "GET", url+"/jobs/"+id, nil, &job); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		if pred(job) {
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never satisfied predicate; last state %q (error %q, progress %+v)",
		id, job.Status, job.Error, job.Progress)
	return service.Job{}
}

func quickSimSpec() service.JobSpec {
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = chipletnet.Topology{Kind: "mesh", Dims: []int{2, 2}}
	cfg.ChipletW, cfg.ChipletH = 3, 3
	cfg.InjectionRate = 0.1
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 400
	return service.JobSpec{Type: service.JobSimulate, Config: &cfg}
}

// slowDSESpec is an exploration long enough to SIGKILL mid-campaign:
// several candidates, each taking a visible fraction of a second.
func slowDSESpec() service.JobSpec {
	p := dse.DefaultParams()
	p.WarmupCycles = 500
	p.MeasureCycles = 200000
	p.Rates = []float64{0.05, 0.1}
	// The long light-load window has quiet stretches the progress
	// watchdog would misread as deadlock (its threshold assumes the
	// short default windows); deadlocked records are excluded from the
	// frontier this test asserts on, so disable the watchdog.
	p.Base = chipletnet.DefaultConfig()
	p.Base.DeadlockThreshold = 0
	return service.JobSpec{
		Type: service.JobDSE,
		Space: &dse.Space{
			Chiplets:      4,
			NoCs:          [][2]int{{3, 3}, {4, 4}},
			Topologies:    []string{"mesh"},
			Routings:      []string{dse.RoutingMFR},
			Interleavings: []string{"none", "message", "packet"},
		},
		Params: &p,
	}
}

// cacheLines counts journaled evaluation records across all shards.
func cacheLines(t *testing.T, dir string) int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "cache", "shard-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(b, []byte("\n")) {
			if len(bytes.TrimSpace(line)) > 0 {
				n++
			}
		}
	}
	return n
}

// TestKillResume is the acceptance test of the tentpole: SIGKILL the
// daemon mid-campaign, restart it on the same state directory, and the
// campaign resumes with journaled-done evaluations served 100% from the
// sharded cache — zero lost jobs, zero duplicated jobs, no redone work.
func TestKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child daemons")
	}
	dir := t.TempDir()
	d := startDaemon(t, dir)

	// A quick job that finishes before the kill: it must survive the
	// crash as done and never re-run.
	var preJob service.Job
	if code := httpJSON(t, "POST", d.url+"/jobs", quickSimSpec(), &preJob); code != http.StatusAccepted {
		t.Fatalf("submit pre-kill job = %d", code)
	}
	pollJob(t, d.url, preJob.ID, time.Minute, func(j service.Job) bool { return j.Status == service.StatusDone })

	var dseJob service.Job
	if code := httpJSON(t, "POST", d.url+"/jobs", slowDSESpec(), &dseJob); code != http.StatusAccepted {
		t.Fatalf("submit dse job = %d", code)
	}
	// Let at least two candidate evaluations land in the cache, then
	// kill -9 strictly mid-campaign.
	mid := pollJob(t, d.url, dseJob.ID, 2*time.Minute, func(j service.Job) bool {
		return j.Progress.Done >= 2 || j.Status == service.StatusDone
	})
	if mid.Status == service.StatusDone {
		t.Fatal("DSE campaign finished before the kill; slowDSESpec is not slow enough to test crash-resume")
	}
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d.wait(t)

	persisted := cacheLines(t, dir)
	if persisted < 2 {
		t.Fatalf("only %d evaluations persisted before the kill, want >= 2", persisted)
	}

	// Restart on the same state directory: the journal replays, the
	// half-done campaign requeues, and it completes using the cache.
	d2 := startDaemon(t, dir)
	done := pollJob(t, d2.url, dseJob.ID, 3*time.Minute, func(j service.Job) bool {
		return j.Status == service.StatusDone || j.Status == service.StatusFailed
	})
	if done.Status != service.StatusDone {
		t.Fatalf("resumed campaign failed: %s", done.Error)
	}
	if done.Attempts != 2 {
		t.Errorf("resumed campaign Attempts = %d, want 2 (one per process)", done.Attempts)
	}
	var res service.DSEResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("DSE result payload: %v", err)
	}
	if res.CacheHits < persisted {
		t.Errorf("resumed campaign re-simulated persisted work: CacheHits=%d, want >= %d", res.CacheHits, persisted)
	}
	if res.Simulated+res.CacheHits != res.Candidates {
		t.Errorf("work accounting: Simulated(%d) + CacheHits(%d) != Candidates(%d)",
			res.Simulated, res.CacheHits, res.Candidates)
	}
	if len(res.Frontier) == 0 {
		t.Error("resumed campaign produced an empty frontier")
	}

	// Zero lost, zero duplicated: exactly the two submitted jobs exist,
	// and the pre-kill job is still done on its single attempt.
	var jobs []service.Job
	if code := httpJSON(t, "GET", d2.url+"/jobs", nil, &jobs); code != http.StatusOK {
		t.Fatalf("list jobs = %d", code)
	}
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want exactly 2: %+v", len(jobs), jobs)
	}
	pre := jobByID(jobs, preJob.ID)
	if pre.Status != service.StatusDone || pre.Attempts != 1 {
		t.Errorf("pre-kill job after restart: status %q attempts %d, want done on 1 attempt (not re-run)",
			pre.Status, pre.Attempts)
	}
}

func jobByID(jobs []service.Job, id string) service.Job {
	for _, j := range jobs {
		if j.ID == id {
			return j
		}
	}
	return service.Job{}
}

// TestSigtermDrains: SIGTERM mid-job exits 0 after snapshotting and
// requeuing the in-flight work, and a restart finishes it.
func TestSigtermDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child daemons")
	}
	dir := t.TempDir()
	d := startDaemon(t, dir, "-checkpoint-every", "500")

	spec := quickSimSpec()
	spec.Config.MeasureCycles = 200000 // long enough to be mid-run
	var job service.Job
	if code := httpJSON(t, "POST", d.url+"/jobs", spec, &job); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	pollJob(t, d.url, job.ID, time.Minute, func(j service.Job) bool { return j.Status == service.StatusRunning })
	time.Sleep(50 * time.Millisecond)

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("SIGTERM exit code = %d, want 0 (graceful drain); log:\n%s", code, d.logs)
	}
	if !strings.Contains(d.logs.String(), "draining") {
		t.Errorf("daemon log does not mention draining:\n%s", d.logs)
	}

	d2 := startDaemon(t, dir)
	done := pollJob(t, d2.url, job.ID, 2*time.Minute, func(j service.Job) bool {
		return j.Status == service.StatusDone || j.Status == service.StatusFailed
	})
	if done.Status != service.StatusDone {
		t.Fatalf("drained job did not finish after restart: %q %s", done.Status, done.Error)
	}
	var res chipletnet.Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if res.DeliveredPackets == 0 {
		t.Error("resumed run delivered nothing")
	}
}

// TestBadFlags: unparseable flags and a bad engine exit 1.
func TestBadFlags(t *testing.T) {
	if run([]string{"-definitely-not-a-flag"}) != 1 {
		t.Error("unknown flag did not exit 1")
	}
	if run([]string{"-engine", "warp", "-dir", t.TempDir()}) != 1 {
		t.Error("bad -engine did not exit 1")
	}
}
