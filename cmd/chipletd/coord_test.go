package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"chipletnet/internal/dse"
	"chipletnet/internal/service"
)

// scrapeMetric fetches url/metrics and returns the value of the exactly
// named series (name including its label set), or -1 if absent.
func scrapeMetric(t *testing.T, url, series string) int {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				t.Fatalf("metric %s: bad value %q", series, rest)
			}
			return n
		}
	}
	return -1
}

// TestCoordinatorChaos is the tentpole acceptance test: a real
// coordinator daemon, two real worker daemons, one of which is
// SIGKILLed mid-campaign. The campaign must complete via lease
// reassignment, perform zero duplicate simulations beyond the killed
// worker's unreported tail, and emit a frontier byte-identical to a
// single-machine exploration of the same space.
func TestCoordinatorChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child daemons")
	}
	spec := slowDSESpec()

	// Single-machine reference, computed in-process.
	refStore, err := dse.OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dse.Explore(*spec.Space, *spec.Params, refStore)
	if err != nil {
		t.Fatal(err)
	}
	refFrontier, err := json.Marshal(ref.Frontier)
	if err != nil {
		t.Fatal(err)
	}

	coordDir := t.TempDir()
	co := startDaemon(t, coordDir, "-coordinator", "-heartbeat-ttl", "1500ms", "-grace", "3m")
	w1Dir, w2Dir := t.TempDir(), t.TempDir()
	// Explicit -worker-id: the IDs key the coordinator's fold counters
	// scraped below (and the flag is exactly what a multi-host operator
	// would set; the default is hostname/listen-address).
	w1 := startDaemon(t, w1Dir, "-worker", "-join", co.url, "-heartbeat", "150ms", "-worker-id", "w1")
	w2 := startDaemon(t, w2Dir, "-worker", "-join", co.url, "-heartbeat", "150ms", "-worker-id", "w2")
	_ = w2

	var job service.Job
	if code := httpJSON(t, "POST", co.url+"/jobs", spec, &job); code != http.StatusAccepted {
		t.Fatalf("submit dse job = %d", code)
	}

	// Let the fleet fold a couple of evaluations, then SIGKILL worker 1
	// strictly mid-campaign.
	mid := pollJob(t, co.url, job.ID, 4*time.Minute, func(j service.Job) bool {
		return j.Progress.Done >= 2 || j.Status == service.StatusDone
	})
	if mid.Status == service.StatusDone {
		t.Fatal("campaign finished before the kill; slowDSESpec is not slow enough for chaos")
	}
	if err := w1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	w1.wait(t)

	done := pollJob(t, co.url, job.ID, 6*time.Minute, func(j service.Job) bool {
		return j.Status == service.StatusDone || j.Status == service.StatusFailed
	})
	if done.Status != service.StatusDone {
		t.Fatalf("campaign did not survive the worker kill: %q %s\ncoordinator log:\n%s",
			done.Status, done.Error, co.logs)
	}

	var res service.DSEResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("DSE result payload: %v", err)
	}
	if res.Degraded {
		t.Error("campaign reported Degraded despite a surviving worker")
	}
	if res.Simulated+res.CacheHits != res.Candidates {
		t.Errorf("work accounting: Simulated(%d) + CacheHits(%d) != Candidates(%d)",
			res.Simulated, res.CacheHits, res.Candidates)
	}
	if res.Simulated != len(ref.Records) {
		t.Errorf("fleet simulated %d evaluations, want %d (cold caches everywhere)",
			res.Simulated, len(ref.Records))
	}

	// The heart of the matter: the distributed, crash-riddled frontier is
	// byte-identical to the single-machine run.
	gotFrontier, err := json.Marshal(res.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotFrontier) != string(refFrontier) {
		t.Errorf("distributed frontier differs from single-machine reference:\n got %s\nwant %s",
			gotFrontier, refFrontier)
	}

	// Zero duplicate simulations beyond the killed worker's unreported
	// tail: every evaluation was simulated either by worker 2 (its local
	// cache counts them) or by worker 1 *and reported before the kill*
	// (the coordinator's per-worker fold counter). Anything worker 1
	// simulated but never reported was legitimately redone by worker 2
	// and appears in neither term twice.
	w2Sims := cacheLines(t, w2Dir)
	recvFromW1 := scrapeMetric(t, co.url, `coord_worker_records_total{worker="w1"}`)
	if recvFromW1 < 0 {
		t.Fatal("coordinator /metrics has no fold counter for killed worker w1")
	}
	if w2Sims+recvFromW1 != res.Candidates {
		t.Errorf("duplicate-work ledger: worker2 simulated %d + worker1 reported %d != %d candidates",
			w2Sims, recvFromW1, res.Candidates)
	}

	// The coordinator's service metrics agree on the shared health view.
	if got := scrapeMetric(t, co.url, `chipletd_jobs{status="done"}`); got != 1 {
		t.Errorf(`chipletd_jobs{status="done"} = %d, want 1`, got)
	}
}

// TestSigtermRequeuesQueuedJobs covers drain for work that never
// started: jobs still in the queue at SIGTERM must come back queued (not
// failed) and run to completion on the next start with attempt counts
// intact — one attempt for the never-started jobs, two for the
// interrupted one.
func TestSigtermRequeuesQueuedJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child daemons")
	}
	dir := t.TempDir()
	d := startDaemon(t, dir, "-checkpoint-every", "500")

	long := quickSimSpec()
	long.Config.MeasureCycles = 300000 // keeps the single worker busy
	var running service.Job
	if code := httpJSON(t, "POST", d.url+"/jobs", long, &running); code != http.StatusAccepted {
		t.Fatalf("submit long job = %d", code)
	}
	pollJob(t, d.url, running.ID, time.Minute, func(j service.Job) bool { return j.Status == service.StatusRunning })

	var queued []service.Job
	for i := 0; i < 2; i++ {
		var j service.Job
		if code := httpJSON(t, "POST", d.url+"/jobs", quickSimSpec(), &j); code != http.StatusAccepted {
			t.Fatalf("submit queued job %d = %d", i, code)
		}
		queued = append(queued, j)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("SIGTERM exit code = %d, want 0; log:\n%s", code, d.logs)
	}

	d2 := startDaemon(t, dir)
	for _, q := range queued {
		done := pollJob(t, d2.url, q.ID, 2*time.Minute, func(j service.Job) bool {
			return j.Status == service.StatusDone || j.Status == service.StatusFailed
		})
		if done.Status != service.StatusDone {
			t.Fatalf("queued job %s after restart: %q %s (drain must requeue, not fail)", q.ID, done.Status, done.Error)
		}
		if done.Attempts != 1 {
			t.Errorf("queued job %s Attempts = %d, want 1 (first and only run after restart)", q.ID, done.Attempts)
		}
	}
	interrupted := pollJob(t, d2.url, running.ID, 2*time.Minute, func(j service.Job) bool {
		return j.Status == service.StatusDone
	})
	if interrupted.Attempts != 2 {
		t.Errorf("interrupted job Attempts = %d, want 2 (one per process)", interrupted.Attempts)
	}
}
