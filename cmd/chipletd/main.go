// Command chipletd is the crash-safe campaign daemon: a long-running
// HTTP+JSON service that accepts simulate, sweep and design-space
// exploration jobs, schedules them on a bounded worker pool with per-job
// deadlines and capped-exponential-backoff retries, and survives kill -9
// without losing or duplicating work.
//
// All state lives under -dir:
//
//	jobs.jsonl    append-only, fsynced job journal (the queue included)
//	cache/        sharded content-addressed evaluation cache (16 JSONL
//	              shards by key prefix; mergeable across machines with
//	              chipletdse -merge)
//	checkpoints/  periodic snapshots of long simulate jobs
//
// On SIGTERM/SIGINT the daemon drains gracefully: intake stops (/readyz
// turns 503), in-flight simulate jobs snapshot a checkpoint, DSE jobs
// finish their current candidate, everything interrupted is durably
// requeued, and the process exits 0. On SIGKILL the same journal+cache
// machinery replays at the next start: journaled-done work is never
// redone, interrupted work resumes from its checkpoint or cache.
//
// API (see internal/service):
//
//	GET  /healthz            liveness
//	GET  /readyz             readiness (503 while draining)
//	POST /jobs               submit {"Type":"simulate"|"sweep"|"dse", ...}
//	GET  /jobs               all jobs, submission order
//	GET  /jobs/{id}          one job's structured status
//	POST /jobs/{id}/cancel   cancel a queued or running job
//
// Fleet mode (see internal/service/coord): `-coordinator` makes this
// daemon partition DSE jobs by cache shard and lease the shards to
// workers; `-worker -join <url>` makes it heartbeat into a coordinator
// and evaluate leased shards into its local cache. Leases are journaled
// (coord.jsonl), heartbeat loss reassigns work to survivors, and the
// merged frontier is byte-identical to a single-machine run.
//
// Example:
//
//	chipletd -dir /var/lib/chipletd -addr :8080 -workers 4
//	curl -s localhost:8080/jobs -d '{"Type":"dse","Space":{"Chiplets":[4]}}'
//
// Multi-host:
//
//	hostA$ chipletd -dir stateA -addr :8080 -coordinator
//	hostB$ chipletd -dir stateB -addr :8081 -worker -join http://hostA:8080
//	hostC$ chipletd -dir stateC -addr :8081 -worker -join http://hostA:8080
//	hostA$ curl -s localhost:8080/jobs -d '{"Type":"dse", ...}'
//
// Exit status: 0 on clean shutdown (including drain), 1 on startup or
// serve errors.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chipletnet"
	"chipletnet/internal/service"
	"chipletnet/internal/service/backoff"
	"chipletnet/internal/service/coord"
)

func main() { os.Exit(run(os.Args[1:])) }

// run is main without os.Exit, so tests drive the daemon in-process or
// as a helper child. Flags live on a private FlagSet to avoid colliding
// with the test binary's.
func run(args []string) int {
	fs := flag.NewFlagSet("chipletd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	dir := fs.String("dir", "chipletd-state", "state directory (job journal, sharded evaluation cache, checkpoints)")
	workers := fs.Int("workers", 1, "concurrent jobs")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job wall-clock deadline (0 = none; jobs may override)")
	retries := fs.Int("retries", 2, "default extra attempts after a job failure")
	backoffBase := fs.Duration("backoff-base", 100*time.Millisecond, "delay before the first retry (doubles per retry)")
	backoffCap := fs.Duration("backoff-cap", 5*time.Second, "upper bound on the retry delay")
	ckptEvery := fs.Int64("checkpoint-every", 2000, "snapshot simulate jobs every N cycles")
	engine := fs.String("engine", "active", "cycle engine: active | reference | islands[:K] (bit-identical results)")
	coordinator := fs.Bool("coordinator", false, "serve the fleet coordinator: distribute DSE jobs across joined workers")
	workerMode := fs.Bool("worker", false, "join a coordinator as a worker (requires -join)")
	join := fs.String("join", "", "coordinator base URL to join (http://host:port)")
	workerID := fs.String("worker-id", "", "worker: fleet-unique ID (default: hostname/listen-address)")
	heartbeat := fs.Duration("heartbeat", time.Second, "worker heartbeat interval (keep well inside the coordinator's TTL)")
	heartbeatTTL := fs.Duration("heartbeat-ttl", 10*time.Second, "coordinator: lease/liveness TTL after a worker's last heartbeat")
	grace := fs.Duration("grace", time.Minute, "coordinator: how long a campaign survives a fully-dead fleet before degrading")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	logger := log.New(os.Stderr, "chipletd: ", 0)
	if err := chipletnet.SetEngine(*engine); err != nil {
		logger.Printf("%v", err)
		return 1
	}
	if *coordinator && *workerMode {
		logger.Printf("-coordinator and -worker are mutually exclusive")
		return 1
	}
	if *workerMode && *join == "" {
		logger.Printf("-worker requires -join <coordinator URL>")
		return 1
	}

	var co *coord.Coordinator
	if *coordinator {
		var err error
		co, err = coord.Open(coord.Config{
			Dir:            *dir,
			HeartbeatTTL:   *heartbeatTTL,
			DeadFleetGrace: *grace,
			Reassign:       backoff.Policy{Base: *backoffBase, Cap: *backoffCap, Jitter: 0.5},
			Logf:           logger.Printf,
		})
		if err != nil {
			logger.Printf("coordinator: %v", err)
			return 1
		}
	}

	srv, err := service.Open(service.Config{
		Dir:             *dir,
		Workers:         *workers,
		JobTimeout:      *jobTimeout,
		Retries:         *retries,
		Backoff:         backoff.Policy{Base: *backoffBase, Cap: *backoffCap},
		CheckpointEvery: *ckptEvery,
		Coordinator:     co,
		Logf:            logger.Printf,
	})
	if err != nil {
		logger.Printf("open: %v", err)
		if co != nil {
			co.Close()
		}
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		srv.Close()
		return 1
	}
	// The resolved address line is the startup handshake: supervisors
	// (and the kill-resume test) parse it to find a port-0 listener.
	logger.Printf("listening on %s", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// In worker mode the daemon moonlights: it still serves its own job
	// API, and a background loop evaluates shards leased from the
	// coordinator into the local sharded cache (which doubles as the
	// worker-side hit source). The worker ID must be fleet-unique — the
	// coordinator keys leases, heartbeats and fold counters by it, and
	// two workers sharing an ID collapse into one identity that
	// double-simulates every shard. The listen address alone is not
	// unique across hosts (-addr :8081 binds as [::]:8081 everywhere),
	// so the default prefixes the hostname; -worker-id overrides.
	workerCtx, stopWorker := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	if *workerMode {
		id := *workerID
		if id == "" {
			if host, herr := os.Hostname(); herr == nil && host != "" {
				id = host + "/" + ln.Addr().String()
			} else {
				id = ln.Addr().String()
				logger.Printf("worker: cannot resolve hostname (%v); using %s as worker ID — pass -worker-id to guarantee fleet-wide uniqueness", herr, id)
			}
		}
		logger.Printf("worker %s joining %s", id, *join)
		go func() {
			defer close(workerDone)
			coord.RunWorker(workerCtx, coord.WorkerConfig{
				ID:        id,
				Join:      *join,
				Cache:     srv.Cache(),
				Heartbeat: *heartbeat,
				Backoff:   backoff.Policy{Base: *backoffBase, Cap: *backoffCap, Jitter: 0.5},
				Logf:      logger.Printf,
			})
		}()
	} else {
		close(workerDone)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	code := 0
	select {
	case sig := <-sigCh:
		logger.Printf("%v: draining (in-flight jobs checkpoint and requeue)", sig)
		httpSrv.Close()
		<-serveErr
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			code = 1
		}
	}
	stopWorker()
	<-workerDone
	srv.Drain()
	if err := srv.Close(); err != nil {
		logger.Printf("close: %v", err)
		code = 1
	}
	if co != nil {
		if err := co.Close(); err != nil {
			logger.Printf("coordinator close: %v", err)
			code = 1
		}
	}
	logger.Printf("drained; state persisted under %s", *dir)
	return code
}
