package chipletnet

import "testing"

func TestRunCollectiveKinds(t *testing.T) {
	for _, kind := range CollectiveKinds() {
		cfg := DefaultConfig()
		cfg.Topology = HypercubeTopology(3)
		res, err := RunCollective(cfg, Collective{Kind: kind, DataFlits: 64})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.CompletionCycles <= 0 || res.Messages == 0 {
			t.Errorf("%s: %+v", kind, res)
		}
	}
	if _, err := RunCollective(DefaultConfig(), Collective{Kind: "reduce-scatter-magic"}); err == nil {
		t.Error("unknown collective accepted")
	}
}

// TestRecursiveDoublingFavorsHypercube: the XOR-partner rounds of
// recursive doubling map onto hypercube dimensions, so the hypercube must
// finish the operation faster than the flat mesh of equal chiplet count.
func TestRecursiveDoublingFavorsHypercube(t *testing.T) {
	run := func(topo Topology) int64 {
		cfg := DefaultConfig()
		cfg.Topology = topo
		res, err := RunCollective(cfg, Collective{
			Kind: "allreduce-recursive-doubling", DataFlits: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.CompletionCycles
	}
	mesh := run(MeshTopology(4, 4))
	cube := run(HypercubeTopology(4))
	if cube >= mesh {
		t.Errorf("hypercube all-reduce %d cycles not below flat mesh %d", cube, mesh)
	}
}
