// Package chipletnet reproduces "A Scalable Methodology for Designing
// Efficient Interconnection Network of Chiplets" (Feng, Xiang, Ma —
// HPCA 2023): a cycle-accurate simulator for multi-chiplet interconnection
// networks built from 2D-mesh-NoC chiplets, with software-defined interface
// grouping, minus-first-routing (MFR) based deadlock-free adaptive routing,
// safe/unsafe flow control, and network interleaving.
//
// Typical use:
//
//	cfg := chipletnet.DefaultConfig()
//	cfg.Topology = chipletnet.HypercubeTopology(6) // 64 chiplets
//	cfg.InjectionRate = 0.2
//	res, err := chipletnet.Run(cfg)
//
// See the examples/ directory for complete programs and cmd/chipletfig for
// the harness that regenerates every table and figure of the paper.
package chipletnet

import (
	"fmt"

	"chipletnet/internal/fault"
	"chipletnet/internal/interleave"
	"chipletnet/internal/routing"
	"chipletnet/internal/workload"
)

// Topology selects the chiplet-level interconnection.
type Topology struct {
	// Kind is one of "mesh" (the flat stitched baseline), "ndmesh",
	// "ndtorus", "hypercube", "dragonfly", "tree", "custom".
	Kind string
	// Dims parameterizes the kind:
	//   mesh:      [cx, cy] chiplet grid
	//   ndmesh:    chiplet-level mesh dimensions, e.g. [4,4,4]
	//   hypercube: [n] for 2^n chiplets
	//   dragonfly: [m] fully connected chiplets (m even)
	//   tree:      [numChiplets, fanout]
	Dims []int
}

// MeshTopology returns the flat 2D-mesh baseline over a cx × cy chiplet
// grid.
func MeshTopology(cx, cy int) Topology { return Topology{Kind: "mesh", Dims: []int{cx, cy}} }

// NDMeshTopology returns an n-dimensional chiplet mesh.
func NDMeshTopology(dims ...int) Topology { return Topology{Kind: "ndmesh", Dims: dims} }

// NDTorusTopology returns an n-dimensional chiplet torus (NDMesh plus
// wrap-around channels, used by adaptive routing only).
func NDTorusTopology(dims ...int) Topology { return Topology{Kind: "ndtorus", Dims: dims} }

// HypercubeTopology returns a 2^n-chiplet hypercube.
func HypercubeTopology(n int) Topology { return Topology{Kind: "hypercube", Dims: []int{n}} }

// DragonflyTopology returns an m-chiplet fully connected network (m even).
func DragonflyTopology(m int) Topology { return Topology{Kind: "dragonfly", Dims: []int{m}} }

// TreeTopology returns a rooted tree of chiplets with the given fan-out.
func TreeTopology(numChiplets, fanout int) Topology {
	return Topology{Kind: "tree", Dims: []int{numChiplets, fanout}}
}

// CustomTopology returns an arbitrary (irregular) chiplet graph from an
// undirected edge list (Fig. 6). Custom topologies must be routed with
// RoutingSafeUnsafe. The edge list is packed into Dims as
// [numChiplets, a0, b0, a1, b1, ...].
func CustomTopology(numChiplets int, edges [][2]int) Topology {
	dims := []int{numChiplets}
	for _, e := range edges {
		dims = append(dims, e[0], e[1])
	}
	return Topology{Kind: "custom", Dims: dims}
}

// customEdges unpacks a custom topology's edge list.
func (t Topology) customEdges() (n int, edges [][2]int, err error) {
	if len(t.Dims) < 3 || len(t.Dims)%2 == 0 {
		return 0, nil, fmt.Errorf("chipletnet: custom topology needs Dims [n, a0, b0, ...], got %v", t.Dims)
	}
	n = t.Dims[0]
	for i := 1; i+1 < len(t.Dims); i += 2 {
		edges = append(edges, [2]int{t.Dims[i], t.Dims[i+1]})
	}
	return n, edges, nil
}

// NumChiplets returns the chiplet count the topology describes.
func (t Topology) NumChiplets() (int, error) {
	switch t.Kind {
	case "mesh":
		if len(t.Dims) != 2 {
			return 0, fmt.Errorf("chipletnet: mesh topology needs Dims [cx, cy], got %v", t.Dims)
		}
		return t.Dims[0] * t.Dims[1], nil
	case "ndmesh", "ndtorus":
		if len(t.Dims) == 0 {
			return 0, fmt.Errorf("chipletnet: %s topology needs at least one dimension", t.Kind)
		}
		n := 1
		for _, d := range t.Dims {
			n *= d
		}
		return n, nil
	case "hypercube":
		if len(t.Dims) != 1 {
			return 0, fmt.Errorf("chipletnet: hypercube topology needs Dims [n], got %v", t.Dims)
		}
		return 1 << uint(t.Dims[0]), nil
	case "dragonfly":
		if len(t.Dims) != 1 {
			return 0, fmt.Errorf("chipletnet: dragonfly topology needs Dims [m], got %v", t.Dims)
		}
		return t.Dims[0], nil
	case "tree":
		if len(t.Dims) != 2 {
			return 0, fmt.Errorf("chipletnet: tree topology needs Dims [chiplets, fanout], got %v", t.Dims)
		}
		return t.Dims[0], nil
	case "custom":
		n, _, err := t.customEdges()
		return n, err
	}
	return 0, fmt.Errorf("chipletnet: unknown topology kind %q", t.Kind)
}

func (t Topology) String() string {
	switch t.Kind {
	case "mesh":
		return fmt.Sprintf("2D-mesh %dx%d", t.Dims[0], t.Dims[1])
	case "ndmesh":
		return fmt.Sprintf("%dD-mesh %v", len(t.Dims), t.Dims)
	case "ndtorus":
		return fmt.Sprintf("%dD-torus %v", len(t.Dims), t.Dims)
	case "hypercube":
		return fmt.Sprintf("hypercube 2^%d", t.Dims[0])
	case "dragonfly":
		return fmt.Sprintf("dragonfly %d", t.Dims[0])
	case "tree":
		return fmt.Sprintf("tree %d/fanout %d", t.Dims[0], t.Dims[1])
	case "custom":
		return fmt.Sprintf("custom %d-chiplet graph", t.Dims[0])
	}
	return t.Kind
}

// RoutingMode selects deadlock avoidance: Duato-style escape channels
// (default) or safe/unsafe flow control (Algorithm 5).
type RoutingMode string

const (
	RoutingDuato      RoutingMode = "duato"
	RoutingSafeUnsafe RoutingMode = "safe-unsafe"
)

// Config fully describes one simulation run. DefaultConfig returns the
// paper's Table II parameters.
type Config struct {
	// ChipletW, ChipletH size the on-chiplet 2D-mesh NoC.
	ChipletW, ChipletH int
	// Topology is the chiplet-level interconnection.
	Topology Topology

	// FlitBits is the flit width (32 bits in Table II). It scales energy
	// accounting only; buffers and bandwidths are configured in flits.
	FlitBits int
	// PacketFlits is the packet length (32 flits).
	PacketFlits int
	// MsgPackets is the number of packets per application message (the
	// interleaving unit, §V).
	MsgPackets int

	// VCs is the virtual channel count per port (2).
	VCs int
	// InternalBufFlits / InterfaceBufFlits are per-VC input buffer sizes:
	// 32 flits (1024 bits) internal, 64 flits (2048 bits) at
	// chiplet-to-chiplet receivers.
	InternalBufFlits  int
	InterfaceBufFlits int

	// OnChipBW / OffChipBW are link bandwidths in flits/cycle
	// (128 and 64 bits/cycle at 32-bit flits → 4 and 2 flits/cycle).
	OnChipBW  int
	OffChipBW int
	// OnChipLatency / OffChipLatency are link latencies in cycles
	// (1 on-chip; 5 for the chiplet-to-chiplet link).
	OnChipLatency  int
	OffChipLatency int
	// EjectBW is the local sink consumption rate in flits/cycle.
	EjectBW int
	// OffChipVAExtra adds cycles to cross-chiplet VC allocation.
	OffChipVAExtra int

	// Routing selects the deadlock-avoidance scheme.
	Routing RoutingMode
	// DisableNDMeshVCSeparation turns off the Theorem-1 d+/d- virtual
	// channel separation on nD-mesh (demonstration only).
	DisableNDMeshVCSeparation bool
	// AllowUnsafeRouting opts into routing configurations whose escape
	// sub-network is not certified deadlock-free (the equal-channel mode
	// above, and Duato-escape routing on irregular custom topologies).
	// Build rejects such configurations unless this is set; the static
	// verifier (internal/verify, cmd/chipletverify) reports the offending
	// channel-dependency cycle either way.
	AllowUnsafeRouting bool
	// CompiledRouting makes Build run the static certifier over the full
	// (node, destination, tag-class) space and install the certified
	// flat-array routing tables it compiles (routing.Compiled) in place of
	// the per-hop MFR/Duato interpreter. Build fails if certification
	// fails — a compiled system is always a certified one. Results are
	// bit-identical to interpreted routing (enforced by the differential
	// equivalence matrix); lookups under fault reconfiguration
	// transparently fall back to the interpreter.
	CompiledRouting bool

	// CrossLinkFaultFraction disables this fraction of chiplet-to-chiplet
	// channels (deterministically from Seed) before simulation, modeling
	// faulty SerDes lanes; interface grouping's link redundancy lets
	// routing steer around them. Only meaningful for grouped topologies.
	CrossLinkFaultFraction float64

	// Fault configures mid-run fault injection: bit-error rates with
	// link-level retransmission, and scheduled permanent failures or
	// derating of chiplet-to-chiplet channels with graceful degradation
	// (see internal/fault). The zero value disables injection and leaves
	// the simulation bit-identical to a fault-free run.
	Fault FaultConfig

	// CheckCredits enables the per-cycle credit-conservation audit in the
	// router model: any flow-control or retransmission bug that leaks or
	// double-returns a credit panics immediately with a diagnosis instead
	// of deadlocking silently. Debug aid.
	CheckCredits bool

	// DrainCycles, when positive, appends a drain phase after measurement:
	// injection stops and simulation continues until the network is empty
	// or the budget runs out, so delivery completeness can be verified
	// (Result.Drained / InFlightAtEnd).
	DrainCycles int64

	// Pattern is one of traffic.PatternNames (§VI-B).
	Pattern string
	// InjectionRate is the offered load in flits/node/cycle.
	InjectionRate float64
	// Interleave is "none", "message" (coarse) or "packet" (fine).
	Interleave string

	// Workload, when non-empty, replaces the synthetic Bernoulli process
	// with a non-synthetic injection source: "replay:<path>" replays a
	// recorded trace with causality (see internal/workload), and
	// "aiscaleout:<spec>" runs the AI-scale-out generator (collective
	// phases over classed background traffic). Pattern and InjectionRate
	// are then ignored. Empty runs the synthetic process, as before.
	Workload string `json:",omitempty"`

	// WarmupCycles / MeasureCycles split the run (Table II: 6000 cycles
	// with 1000 warm-up).
	WarmupCycles  int64
	MeasureCycles int64
	// Seed makes the run reproducible.
	Seed uint64
	// DeadlockThreshold is the progress watchdog limit in cycles
	// (0 disables).
	DeadlockThreshold int64
}

// FaultKill schedules the permanent failure of the chiplet-to-chiplet
// channel between nodes A and B at the given cycle.
type FaultKill struct {
	Cycle int64
	A, B  int
}

// FaultDegrade schedules the derating of the channel between A and B:
// bandwidth divided by BandwidthDiv (floored at 1 flit/cycle), latency
// multiplied by LatencyMult. Zero leaves the respective parameter
// unchanged.
type FaultDegrade struct {
	Cycle        int64
	A, B         int
	BandwidthDiv int
	LatencyMult  int
}

// FaultConfig is the user-facing fault-injection setup, converted to the
// engine's schedule at simulation time.
type FaultConfig struct {
	// BER / OnChipBER are per-flit corruption probabilities on off-chip
	// and on-chip links; either > 0 enables the link-level reliability
	// protocol (CRC, ack/nack, go-back-N retransmission) on the covered
	// links.
	BER       float64
	OnChipBER float64
	// Kill and Degrade are the scheduled permanent faults.
	Kill    []FaultKill
	Degrade []FaultDegrade
	// RetransmitTimeout / BackoffMax tune the retransmission protocol
	// (cycles; 0 picks defaults that stay below the deadlock watchdog).
	RetransmitTimeout int64
	BackoffMax        int64
	// DisableReverify skips the mid-run deadlock-freedom re-certification
	// after permanent failures; VerifyMaxDests bounds its cost (0 = 8
	// sampled destinations).
	DisableReverify bool
	VerifyMaxDests  int
}

// Enabled reports whether any fault injection is configured.
func (fc FaultConfig) Enabled() bool {
	return fc.BER > 0 || fc.OnChipBER > 0 || len(fc.Kill) > 0 || len(fc.Degrade) > 0
}

// engineConfig converts the user-facing setup into the engine's form.
func (fc FaultConfig) engineConfig(seed uint64) fault.Config {
	c := fault.Config{
		BER:               fc.BER,
		OnChipBER:         fc.OnChipBER,
		Seed:              seed,
		RetransmitTimeout: fc.RetransmitTimeout,
		BackoffMax:        fc.BackoffMax,
		VerifyOff:         fc.DisableReverify,
		VerifyMaxDests:    fc.VerifyMaxDests,
	}
	for _, k := range fc.Kill {
		c.Events = append(c.Events, fault.Event{Cycle: k.Cycle, Kind: fault.KindLinkKill, A: k.A, B: k.B})
	}
	for _, d := range fc.Degrade {
		c.Events = append(c.Events, fault.Event{
			Cycle: d.Cycle, Kind: fault.KindLinkDegrade, A: d.A, B: d.B,
			BandwidthDiv: d.BandwidthDiv, LatencyMult: d.LatencyMult,
		})
	}
	return c
}

// DefaultConfig returns the paper's Table II parameter setup on the
// Fig. 11 system: 64 4×4 chiplets, uniform traffic, coarse interleaving.
func DefaultConfig() Config {
	return Config{
		ChipletW: 4, ChipletH: 4,
		Topology:          HypercubeTopology(6),
		FlitBits:          32,
		PacketFlits:       32,
		MsgPackets:        4,
		VCs:               2,
		InternalBufFlits:  32,
		InterfaceBufFlits: 64,
		OnChipBW:          4,
		OffChipBW:         2,
		OnChipLatency:     1,
		OffChipLatency:    5,
		EjectBW:           4,
		OffChipVAExtra:    1,
		Routing:           RoutingDuato,
		Pattern:           "uniform",
		InjectionRate:     0.1,
		Interleave:        "message",
		WarmupCycles:      1000,
		MeasureCycles:     5000,
		Seed:              1,
		DeadlockThreshold: 2000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ChipletW < 3 || c.ChipletH < 3 {
		return fmt.Errorf("chipletnet: chiplet NoC must be at least 3x3, got %dx%d", c.ChipletW, c.ChipletH)
	}
	if _, err := c.Topology.NumChiplets(); err != nil {
		return err
	}
	if c.PacketFlits < 1 {
		return fmt.Errorf("chipletnet: packet length must be positive")
	}
	if c.PacketFlits > c.InternalBufFlits || c.PacketFlits > c.InterfaceBufFlits {
		return fmt.Errorf("chipletnet: virtual cut-through needs buffers >= one packet (%d flits)", c.PacketFlits)
	}
	if c.InjectionRate < 0 {
		return fmt.Errorf("chipletnet: negative injection rate")
	}
	if c.CrossLinkFaultFraction < 0 || c.CrossLinkFaultFraction >= 1 {
		return fmt.Errorf("chipletnet: cross-link fault fraction must be in [0,1), got %g", c.CrossLinkFaultFraction)
	}
	if c.Fault.BER < 0 || c.Fault.BER >= 1 || c.Fault.OnChipBER < 0 || c.Fault.OnChipBER >= 1 {
		return fmt.Errorf("chipletnet: fault BER must be in [0,1), got %g off-chip / %g on-chip",
			c.Fault.BER, c.Fault.OnChipBER)
	}
	for _, k := range c.Fault.Kill {
		if k.Cycle < 1 {
			return fmt.Errorf("chipletnet: fault kill cycle must be >= 1, got %d", k.Cycle)
		}
	}
	for _, d := range c.Fault.Degrade {
		if d.Cycle < 1 {
			return fmt.Errorf("chipletnet: fault degrade cycle must be >= 1, got %d", d.Cycle)
		}
		if d.BandwidthDiv < 0 || d.LatencyMult < 0 {
			return fmt.Errorf("chipletnet: fault degrade parameters must be non-negative")
		}
	}
	if c.DrainCycles < 0 {
		return fmt.Errorf("chipletnet: negative drain cycles")
	}
	if c.WarmupCycles < 0 || c.MeasureCycles <= 0 {
		return fmt.Errorf("chipletnet: invalid cycle counts (warmup %d, measure %d)", c.WarmupCycles, c.MeasureCycles)
	}
	if c.Routing != RoutingDuato && c.Routing != RoutingSafeUnsafe {
		return fmt.Errorf("chipletnet: unknown routing mode %q", c.Routing)
	}
	if _, err := interleave.ParseGranularity(c.Interleave); err != nil {
		return err
	}
	if c.Workload != "" {
		kind, arg, err := workload.Split(c.Workload)
		if err != nil {
			return err
		}
		if kind == workload.KindAIScaleOut {
			spec, err := workload.ParseAIScaleOut(arg)
			if err != nil {
				return err
			}
			if _, err := collectiveAlgorithm(spec.Collective, spec.DataFlits); err != nil {
				return err
			}
			if spec.ReqFlits > c.InternalBufFlits || spec.ReqFlits > c.InterfaceBufFlits {
				return fmt.Errorf("chipletnet: virtual cut-through needs buffers >= one request packet (%d flits)", spec.ReqFlits)
			}
		}
	}
	return nil
}

func (c Config) routingOptions() routing.Options {
	opt := routing.Options{
		DisableNDMeshVCSeparation: c.DisableNDMeshVCSeparation,
		AllowUnsafe:               c.AllowUnsafeRouting,
	}
	if c.Routing == RoutingSafeUnsafe {
		opt.Mode = routing.SafeUnsafe
	}
	return opt
}
