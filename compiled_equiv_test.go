package chipletnet

import (
	"fmt"
	"strings"
	"testing"
)

// normalizeCompiled clears the flag that legitimately differs between the
// two runs so the Result hashes compare everything else.
func normalizeCompiled(res Result) Result {
	res.Cfg.CompiledRouting = false
	return res
}

// TestCompiledEngineEquivalence is the differential gate for the compiled
// routing tables: across every topology kind, both routing modes, every
// interleave granularity, and fault schedules up to permanent kills, a run
// on certified flat-array tables must produce a Result hash-identical to
// the per-hop interpreted routing's. Any divergence means the tables (or
// the certifying traversal that compiled them) missed a state or reordered
// a candidate — a certifier bug by definition.
func TestCompiledEngineEquivalence(t *testing.T) {
	topos := []struct {
		name    string
		topo    Topology
		modes   []RoutingMode
		grouped bool
	}{
		{"mesh", MeshTopology(2, 2), []RoutingMode{RoutingDuato}, false},
		{"hypercube", HypercubeTopology(3), []RoutingMode{RoutingDuato, RoutingSafeUnsafe}, true},
		{"ndtorus", NDTorusTopology(4, 4), []RoutingMode{RoutingDuato}, true},
		{"dragonfly", DragonflyTopology(4), []RoutingMode{RoutingDuato, RoutingSafeUnsafe}, true},
		{"tree", TreeTopology(5, 2), []RoutingMode{RoutingDuato}, true},
		{"custom", CustomTopology(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}}),
			[]RoutingMode{RoutingSafeUnsafe}, true},
	}
	for _, tc := range topos {
		t.Run(tc.name, func(t *testing.T) {
			for _, mode := range tc.modes {
				for _, il := range []string{"none", "message", "packet"} {
					base := equivConfig(tc.topo)
					base.Routing = mode
					base.Interleave = il

					faulty := base
					faulty.Fault.BER = 5e-4
					if sys, err := Build(base); err == nil {
						if pairs := sys.Topo.CrossPairs(); len(pairs) > 0 {
							faulty.Fault.Degrade = []FaultDegrade{
								{Cycle: 120, A: pairs[0].A, B: pairs[0].B, BandwidthDiv: 2, LatencyMult: 2},
							}
							if tc.grouped {
								p := pairs[len(pairs)-1]
								faulty.Fault.Kill = []FaultKill{{Cycle: 150, A: p.A, B: p.B}}
							}
						}
					}

					cases := []struct {
						name string
						cfg  Config
					}{{"no-faults", base}, {"faults", faulty}}
					if tc.grouped {
						// Build-time SerDes faults: tables are compiled
						// against the already-shrunk group membership.
						degraded := base
						degraded.CrossLinkFaultFraction = 0.2
						cases = append(cases, struct {
							name string
							cfg  Config
						}{"serdes-faults", degraded})
					}
					for _, cc := range cases {
						name := fmt.Sprintf("%s/%s/%s", mode, il, cc.name)
						t.Run(name, func(t *testing.T) {
							interpreted := cc.cfg
							compiled := cc.cfg
							compiled.CompiledRouting = true
							intRes, intErr := Run(interpreted)
							cmpRes, cmpErr := Run(compiled)
							if errText(intErr) != errText(cmpErr) {
								t.Fatalf("errors differ: interpreted %q, compiled %q", errText(intErr), errText(cmpErr))
							}
							if intErr != nil {
								return
							}
							if gobHash(t, normalizeCompiled(intRes)) != gobHash(t, normalizeCompiled(cmpRes)) {
								t.Errorf("Results differ between interpreted and compiled routing\ninterpreted: %s\n   compiled: %s",
									resultJSON(t, intRes), resultJSON(t, cmpRes))
							}
						})
					}
				}
			}
		})
	}
}

// TestCompiledRefusesUncertified proves an uncertified configuration never
// gets tables: the equal-channel nD-mesh demonstration mode has a cyclic
// escape CDG, so Build with CompiledRouting must fail even though the
// interpreted opt-in (AllowUnsafeRouting) accepts it.
func TestCompiledRefusesUncertified(t *testing.T) {
	cfg := equivConfig(NDMeshTopology(3, 2, 2))
	cfg.DisableNDMeshVCSeparation = true
	cfg.AllowUnsafeRouting = true
	if _, err := Build(cfg); err != nil {
		t.Fatalf("interpreted equal-channel build should succeed under the opt-in: %v", err)
	}
	cfg.CompiledRouting = true
	_, err := Build(cfg)
	if err == nil {
		t.Fatal("compiled build of an uncertified configuration must fail")
	}
	if !strings.Contains(err.Error(), "refusing to compile uncertified routing") {
		t.Fatalf("error should name the certification refusal, got: %v", err)
	}
}
