package chipletnet

import (
	"encoding/json"
	"errors"
	"fmt"

	"chipletnet/internal/checkpoint"
	"chipletnet/internal/energy"
	"chipletnet/internal/fault"
	"chipletnet/internal/interleave"
	"chipletnet/internal/packet"
	"chipletnet/internal/router"
	"chipletnet/internal/stats"
	"chipletnet/internal/traffic"
	"chipletnet/internal/workload"
)

// Control-flow sentinels for externally ended runs; test with errors.Is.
// The partial Result returned alongside them is still meaningful for
// diagnostics.
var (
	// ErrTimeout: the run was aborted by RunControl.Deadline. The Result
	// carries a diagnostic snapshot of where traffic was at the abort.
	ErrTimeout = errors.New("chipletnet: simulation aborted by deadline")
	// ErrInterrupted: the run was stopped by RunControl.Interrupt after
	// writing a final checkpoint; resume it with ResumeRun.
	ErrInterrupted = errors.New("chipletnet: simulation interrupted, checkpoint written")
)

// RunControl carries optional external control for a simulation run:
// periodic checkpointing, checkpoint-and-stop interruption, and a
// deadline. The zero value runs to completion exactly like Simulate. The
// simulator itself never consults a clock (determinism); deadlines and
// signals are the caller's, delivered over channels and observed at cycle
// boundaries only, so they never perturb the simulated state — a run cut
// short and resumed finishes bit-identical to an uninterrupted one.
type RunControl struct {
	// CheckpointPath is where snapshots are written (atomic
	// write-then-rename, each replacing the previous). Required for
	// CheckpointEvery and Interrupt.
	CheckpointPath string
	// CheckpointEvery > 0 writes a snapshot every that many cycles.
	CheckpointEvery int64
	// Interrupt, when non-nil and readable (or closed), makes the run
	// write a final checkpoint at the next cycle boundary and stop with
	// ErrInterrupted. Typically wired to SIGINT/SIGTERM by the caller.
	Interrupt <-chan struct{}
	// InterruptAtCycle > 0 acts like Interrupt firing at exactly that
	// cycle boundary — a deterministic interruption, for testing resume.
	InterruptAtCycle int64
	// Deadline, when non-nil and readable (or closed), aborts the run at
	// the next cycle boundary with ErrTimeout and a diagnostic snapshot
	// (Result.DeadlockReport) of where traffic was stuck. Typically wired
	// to a wall-clock timer by the caller.
	Deadline <-chan struct{}
	// TracePath, when non-empty, records the run as a workload trace
	// (internal/workload format) and writes it there when the run
	// completes cleanly. Recording attaches a tracer, so packet pooling is
	// disabled for the run; results stay bit-identical. Not available on
	// ResumeRun (the recorder would miss every pre-checkpoint packet) or
	// together with another tracer.
	TracePath string
}

// buildSource constructs the injection source the configuration asks
// for: the synthetic Bernoulli generator (empty Workload), the causal
// trace replayer, or the AI-scale-out generator.
func (s *System) buildSource() (traffic.Source, error) {
	cfg := s.Cfg
	gran, err := interleave.ParseGranularity(cfg.Interleave)
	if err != nil {
		return nil, err
	}
	pol := interleave.Policy{G: gran}
	kind, arg, err := workload.Split(cfg.Workload)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "":
		pat, err := traffic.NewPattern(cfg.Pattern, len(s.Topo.Cores), cfg.Seed)
		if err != nil {
			return nil, err
		}
		return traffic.NewGenerator(
			s.Topo.Cores, pat, cfg.InjectionRate,
			cfg.PacketFlits, cfg.MsgPackets, pol, cfg.Seed)
	case workload.KindReplay:
		tr, err := workload.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		return traffic.NewReplayer(tr, s.Topo.Cores, pol)
	case workload.KindAIScaleOut:
		spec, err := workload.ParseAIScaleOut(arg)
		if err != nil {
			return nil, err
		}
		alg, err := collectiveAlgorithm(spec.Collective, spec.DataFlits)
		if err != nil {
			return nil, err
		}
		return traffic.NewAIScaleOut(alg, spec, s.Topo.Cores, cfg.PacketFlits, pol, cfg.Seed)
	}
	return nil, fmt.Errorf("chipletnet: unknown workload kind %q", kind)
}

// SimulateControlled is Simulate with external run control. A System must
// not be simulated twice; rebuild for fresh runs.
func (s *System) SimulateControlled(ctrl RunControl) (Result, error) {
	cfg := s.Cfg
	src, err := s.buildSource()
	if err != nil {
		return Result{}, err
	}

	col := &stats.Collector{MeasureFrom: cfg.WarmupCycles + 1}
	f := s.Topo.Fabric
	f.Sink = col.OnDeliver
	f.CreditAudit = cfg.CheckCredits

	var rec *workload.Recorder
	if ctrl.TracePath != "" {
		if f.Tracer != nil {
			return Result{}, fmt.Errorf("chipletnet: cannot record a workload trace: another tracer is attached")
		}
		rec, err = workload.NewRecorder(s.Topo.Cores)
		if err != nil {
			return Result{}, err
		}
		f.Tracer = rec
	}

	var eng *fault.Engine
	if cfg.Fault.Enabled() {
		eng, err = fault.New(s.Topo, cfg.Fault.engineConfig(cfg.Seed))
		if err != nil {
			return Result{}, err
		}
		eng.Attach(f)
	}
	res, err := s.run(src, col, eng, ctrl, 0)
	if rec != nil && err == nil {
		tr, terr := rec.Trace()
		if terr == nil {
			terr = workload.WriteFile(ctrl.TracePath, tr)
		}
		if terr != nil {
			return res, fmt.Errorf("chipletnet: recording workload trace: %w", terr)
		}
	}
	return res, err
}

// ResumeRun loads a checkpoint, rebuilds the system from the embedded
// configuration, restores the complete dynamic state, and continues the
// run to completion (under the given control). The finished Result is
// bit-identical to the uninterrupted run's.
func ResumeRun(path string, ctrl RunControl) (Result, error) {
	if ctrl.TracePath != "" {
		return Result{}, fmt.Errorf("chipletnet: cannot record a workload trace on resume: the recorder would miss every pre-checkpoint packet")
	}
	st, err := checkpoint.ReadFile(path)
	if err != nil {
		return Result{}, err
	}
	var cfg Config
	if err := json.Unmarshal(st.Config, &cfg); err != nil {
		return Result{}, fmt.Errorf("%w: embedded configuration: %v", checkpoint.ErrCorrupt, err)
	}
	sys, err := Build(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("%w: rebuilding from embedded configuration: %v", checkpoint.ErrMismatch, err)
	}

	src, err := sys.buildSource()
	if err != nil {
		return Result{}, err
	}

	col := &stats.Collector{MeasureFrom: cfg.WarmupCycles + 1}
	f := sys.Topo.Fabric
	f.Sink = col.OnDeliver
	f.CreditAudit = cfg.CheckCredits

	// Recreate the fault engine first: it re-attaches the reliability
	// protocol (with its corruption-stream closures) to the same links,
	// which the fabric restore then fills with snapshot state.
	var eng *fault.Engine
	if cfg.Fault.Enabled() {
		eng, err = fault.New(sys.Topo, cfg.Fault.engineConfig(cfg.Seed))
		if err != nil {
			return Result{}, fmt.Errorf("%w: recreating fault engine: %v", checkpoint.ErrMismatch, err)
		}
		eng.Attach(f)
	}
	if (st.Fault != nil) != (eng != nil) {
		return Result{}, fmt.Errorf("%w: snapshot fault state %v, configuration fault injection %v",
			checkpoint.ErrMismatch, st.Fault != nil, eng != nil)
	}

	if err := sys.Topo.Restore(&st.Topo); err != nil {
		return Result{}, err
	}
	pkts := checkpoint.Materialize(st.Packets)
	if err := f.Restore(&st.Fabric, pkts); err != nil {
		return Result{}, err
	}
	if err := src.Restore(&st.Gen); err != nil {
		return Result{}, err
	}
	col.Restore(&st.Stats)
	if eng != nil {
		if err := eng.Restore(st.Fault); err != nil {
			return Result{}, err
		}
	}
	return sys.run(src, col, eng, ctrl, st.Cycle)
}

// run advances the simulation from the cycle after start to completion,
// observing external control at cycle boundaries, then assembles the
// Result. start is 0 for a fresh run, the checkpoint cycle on resume.
func (s *System) run(src traffic.Source, col *stats.Collector, eng *fault.Engine, ctrl RunControl, start int64) (Result, error) {
	cfg := s.Cfg
	f := s.Topo.Fabric
	total := cfg.WarmupCycles + cfg.MeasureCycles

	// Chain the source into the sink so dependency-driven sources observe
	// every delivery in the engines' deterministic sink order (a delivery
	// at cycle T can gate injections from T+1 on). The Bernoulli
	// generator's OnDeliver is a no-op.
	{
		inner := f.Sink
		f.Sink = func(p *packet.Packet, now int64) {
			inner(p, now)
			src.OnDeliver(p, now)
		}
	}

	// Recycle delivered packets so the steady-state loop allocates none.
	// At delivery a packet has left every buffer and wire (virtual
	// cut-through: the tail cannot eject before clearing all upstream
	// buffers); only sub-horizon replay entries may still alias it, and
	// those are functionally inert. Recycling is gated off when something
	// could observe a packet after delivery: a Tracer retaining pointers,
	// or scheduled interface kills, whose stranded-packet post-mortem
	// reads replay-buffer packet fields. The source's OnDeliver runs
	// before the recycle, so it may read but never retain the packet.
	if f.Tracer == nil && len(cfg.Fault.Kill) == 0 {
		pool := &packet.Pool{}
		src.SetPool(pool)
		inner := f.Sink
		f.Sink = func(p *packet.Packet, now int64) {
			inner(p, now)
			pool.Put(p)
		}
	}

	var simErr error
	timedOut := false
	var timeoutReport *router.DeadlockReport

	// control runs the external checks after completed cycle cy and
	// reports whether the run must stop.
	control := func(cy int64) bool {
		if ctrl.Deadline != nil {
			select {
			case <-ctrl.Deadline:
				simErr = ErrTimeout
				timedOut = true
				timeoutReport = f.DiagnosticReport()
				return true
			default:
			}
		}
		interrupted := ctrl.InterruptAtCycle > 0 && cy == ctrl.InterruptAtCycle
		if !interrupted && ctrl.Interrupt != nil {
			select {
			case <-ctrl.Interrupt:
				interrupted = true
			default:
			}
		}
		if interrupted {
			if err := s.writeCheckpoint(ctrl.CheckpointPath, src, col, eng, cy); err != nil {
				simErr = err
			} else {
				simErr = ErrInterrupted
			}
			return true
		}
		if ctrl.CheckpointPath != "" && ctrl.CheckpointEvery > 0 && cy%ctrl.CheckpointEvery == 0 {
			if err := s.writeCheckpoint(ctrl.CheckpointPath, src, col, eng, cy); err != nil {
				simErr = err
				return true
			}
		}
		return false
	}

	for cy := start + 1; cy <= total; cy++ {
		src.SetMeasured(cy > cfg.WarmupCycles)
		src.Tick(f, cy)
		if eng != nil {
			if simErr = eng.Step(cy); simErr != nil {
				break
			}
		}
		f.Step()
		if f.Deadlocked {
			break
		}
		if control(cy) {
			break
		}
	}

	// Drain phase: stop injecting and let the network empty, so delivery
	// completeness (zero lost packets) is checkable.
	drained := false
	if simErr == nil && !f.Deadlocked && cfg.DrainCycles > 0 {
		from := total
		if start > from {
			from = start // resuming a checkpoint taken mid-drain
		}
		for cy := from + 1; cy <= total+cfg.DrainCycles && f.InFlight() > 0; cy++ {
			if eng != nil {
				if simErr = eng.Step(cy); simErr != nil {
					break
				}
			}
			f.Step()
			if f.Deadlocked {
				break
			}
			if control(cy) {
				break
			}
		}
		drained = simErr == nil && !f.Deadlocked && f.InFlight() == 0
	}

	offeredRate := cfg.InjectionRate
	if cfg.Workload != "" {
		// Non-synthetic sources have no configured offered load;
		// Saturated() then reports deadlock only.
		offeredRate = 0
	}
	res := Result{
		Cfg:            cfg,
		Summary:        col.Summarize(cfg.MeasureCycles, len(s.Topo.Cores)),
		OfferedPackets: src.Offered(),
		OfferedRate:    offeredRate,
		Deadlocked:     f.Deadlocked,
		DeadlockReport: f.Deadlock,
		Endpoints:      len(s.Topo.Cores),
		Drained:        drained,
		InFlightAtEnd:  f.InFlight(),
		TimedOut:       timedOut,
	}
	if timedOut && res.DeadlockReport == nil {
		res.DeadlockReport = timeoutReport
	}
	res.EnergyPJPerBit = energy.Default().PerBit(res.AvgRouters, res.AvgOnChipHops, res.AvgOffChipHops)
	if eng != nil {
		eng.Finish(src.TotalPackets(), f.InFlight())
		res.FaultEvents = eng.Log
		st := eng.Stats
		res.FaultStats = &st
	}

	// Link utilization summary over the whole run.
	var offSum, onSum float64
	var offN, onN int
	for _, l := range f.Links {
		u := l.Utilization(f.Now)
		if l.OffChip {
			offSum += u
			offN++
			if u > res.PeakOffChipUtilization {
				res.PeakOffChipUtilization = u
			}
		} else {
			onSum += u
			onN++
		}
	}
	if offN > 0 {
		res.AvgOffChipUtilization = offSum / float64(offN)
	}
	if onN > 0 {
		res.AvgOnChipUtilization = onSum / float64(onN)
	}
	// A typed fault failure (partition, failed re-certification), timeout,
	// or interruption ends the run cleanly: the partial Result is still
	// returned for diagnostics.
	return res, simErr
}

// writeCheckpoint captures the complete dynamic state after completed
// cycle cy and writes it atomically to path.
func (s *System) writeCheckpoint(path string, src traffic.Source, col *stats.Collector, eng *fault.Engine, cy int64) error {
	if path == "" {
		return fmt.Errorf("chipletnet: checkpoint requested but RunControl.CheckpointPath is empty")
	}
	st, err := s.captureState(src, col, eng, cy)
	if err != nil {
		return err
	}
	return checkpoint.WriteFile(path, st)
}

// captureState assembles the checkpoint State for the run at completed
// cycle cy.
func (s *System) captureState(src traffic.Source, col *stats.Collector, eng *fault.Engine, cy int64) (*checkpoint.State, error) {
	cfgJSON, err := json.Marshal(s.Cfg)
	if err != nil {
		return nil, fmt.Errorf("chipletnet: serializing configuration: %w", err)
	}
	tbl := checkpoint.NewPacketTable()
	st := &checkpoint.State{
		Config: cfgJSON,
		Cycle:  cy,
		Fabric: s.Topo.Fabric.Snapshot(tbl),
		Gen:    src.Snapshot(),
		Stats:  col.Snapshot(),
		Topo:   s.Topo.Snapshot(),
	}
	if eng != nil {
		st.Fault = eng.Snapshot()
	}
	st.Packets = tbl.List()
	return st, nil
}
