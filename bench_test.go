// Benchmarks that regenerate every table and figure of the paper's
// evaluation at reduced (Quick) scale. Each benchmark reports, besides
// ns/op, the headline metric of its figure as custom units so that
// `go test -bench=. -benchmem` produces a one-screen summary of the
// reproduction:
//
//	latency-cycles   mean packet latency of the series' reference point
//	saturation-rate  estimated saturation injection rate
//	pj-per-bit       transport energy
//
// The full-fidelity regeneration (Table II simulation lengths, denser
// sweeps, 256-chiplet points) is `go run ./cmd/chipletfig -scale full all`;
// its output is recorded in EXPERIMENTS.md.
package chipletnet_test

import (
	"testing"

	"chipletnet"
	"chipletnet/internal/experiments"
)

// scale for benchmarks.
var benchScale = experiments.Quick

// reportSeries attaches per-series latency at the lowest rate and the
// saturation estimate to the benchmark output.
func reportSeries(b *testing.B, pts []experiments.Point, series string) {
	b.Helper()
	low := 0.0
	var lowLat float64
	for _, p := range pts {
		if p.Series != series {
			continue
		}
		if low == 0 || p.X < low {
			low, lowLat = p.X, p.AvgLatency
		}
		if p.Deadlock {
			b.Fatalf("series %s deadlocked at %g", series, p.X)
		}
	}
	b.ReportMetric(lowLat, series+"-latency-cycles")
	b.ReportMetric(experiments.SaturationPoint(pts, series), series+"-saturation")
}

// BenchmarkTable1Diameter regenerates Table I (network diameters).
func BenchmarkTable1Diameter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Measured != r.Formula {
				b.Fatalf("%s: measured %d != formula %d", r.Topology, r.Measured, r.Formula)
			}
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Measured), r.Topology+"-diameter")
			}
		}
	}
}

// benchFig11 runs one Fig. 11 subfigure (one traffic pattern).
func benchFig11(b *testing.B, pattern string) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig11(benchScale, pattern)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range experiments.Series(pts) {
				reportSeries(b, pts, s)
			}
		}
	}
}

func BenchmarkFig11aUniform(b *testing.B)       { benchFig11(b, "uniform") }
func BenchmarkFig11bHotspot(b *testing.B)       { benchFig11(b, "hotspot") }
func BenchmarkFig11cBitComplement(b *testing.B) { benchFig11(b, "bit-complement") }
func BenchmarkFig11dBitReverse(b *testing.B)    { benchFig11(b, "bit-reverse") }
func BenchmarkFig11eBitShuffle(b *testing.B)    { benchFig11(b, "bit-shuffle") }
func BenchmarkFig11fBitTranspose(b *testing.B)  { benchFig11(b, "bit-transpose") }

// BenchmarkFig12Scales regenerates Fig. 12 (topologies across scales).
func BenchmarkFig12Scales(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig12(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range experiments.Series(pts) {
				reportSeries(b, pts, s)
			}
		}
	}
}

// BenchmarkFig13Energy regenerates Fig. 13 (energy across scales).
func BenchmarkFig13Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig13(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				b.ReportMetric(p.EnergyPJ, p.Series+"-pj-per-bit")
			}
		}
	}
}

// benchFig14 runs one Fig. 14 subfigure (one off-chip bandwidth).
func benchFig14(b *testing.B, bwFlits int) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig14(benchScale, bwFlits)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range experiments.Series(pts) {
				reportSeries(b, pts, s)
			}
		}
	}
}

func BenchmarkFig14aBW32(b *testing.B)  { benchFig14(b, 1) }
func BenchmarkFig14bBW64(b *testing.B)  { benchFig14(b, 2) }
func BenchmarkFig14cBW128(b *testing.B) { benchFig14(b, 4) }
func BenchmarkFig14dBW256(b *testing.B) { benchFig14(b, 8) }

// BenchmarkFig15LinkConfig regenerates Fig. 15 (chiplet-to-chiplet link
// latency and buffer size).
func BenchmarkFig15LinkConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig15(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range experiments.Series(pts) {
				reportSeries(b, pts, s)
			}
		}
	}
}

// BenchmarkFig16Interleaving regenerates Fig. 16 (interleaving styles).
func BenchmarkFig16Interleaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig16(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range experiments.Series(pts) {
				reportSeries(b, pts, s)
			}
		}
	}
}

// BenchmarkAblationRouting compares the two deadlock-avoidance schemes
// (design-choice ablation from DESIGN.md).
func BenchmarkAblationRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationRouting(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range experiments.Series(pts) {
				reportSeries(b, pts, s)
			}
		}
	}
}

// BenchmarkExtFaultTolerance measures graceful degradation under
// chiplet-to-chiplet link faults (extension experiment).
func BenchmarkExtFaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.FaultTolerance(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range experiments.Series(pts) {
				reportSeries(b, pts, s)
			}
		}
	}
}

// BenchmarkExtCollectives measures all-reduce/all-gather/all-to-all
// completion times across topologies (extension experiment).
func BenchmarkExtCollectives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.CollectiveStudy(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Report the largest payload the scale ran.
			maxX := 0.0
			for _, p := range pts {
				if p.X > maxX {
					maxX = p.X
				}
			}
			for _, p := range pts {
				if p.X == maxX {
					b.ReportMetric(p.AvgLatency, p.Experiment[len("ext-collective-"):]+"-"+p.Series+"-cycles")
				}
			}
		}
	}
}

// BenchmarkSimulatorCyclesPerSecond is a micro-benchmark of the engine
// itself: router-cycles per second on the 64-chiplet hypercube at
// moderate load.
func BenchmarkSimulatorCyclesPerSecond(b *testing.B) {
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = chipletnet.HypercubeTopology(6)
	cfg.InjectionRate = 0.3
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 900
	routers := 64 * 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chipletnet.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	total := float64(b.N) * float64(cfg.WarmupCycles+cfg.MeasureCycles) * float64(routers)
	b.ReportMetric(total/b.Elapsed().Seconds(), "router-cycles/s")
}
