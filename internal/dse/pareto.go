package dse

import "sort"

// The frontier objectives: maximize the sustainable injection rate,
// minimize the zero-load latency, minimize the transport energy — the
// three axes of the paper's §VII evaluation.

// Dominates reports whether a is at least as good as b on every
// objective and strictly better on at least one. Deadlocked records
// never dominate anything and are dominated by any live record (a
// deadlocked design is not a design).
func Dominates(a, b Record) bool {
	if a.Deadlocked {
		return false
	}
	if b.Deadlocked {
		return true
	}
	if a.SatRate < b.SatRate || a.ZeroLoadLatency > b.ZeroLoadLatency || a.EnergyPJPerBit > b.EnergyPJPerBit {
		return false
	}
	return a.SatRate > b.SatRate || a.ZeroLoadLatency < b.ZeroLoadLatency || a.EnergyPJPerBit < b.EnergyPJPerBit
}

// frontierLess is the deterministic frontier ranking: best saturation
// first, then lowest zero-load latency, then lowest energy, with the
// candidate name and content key as final tie-breakers so the order —
// and therefore every report — is independent of input permutation.
func frontierLess(a, b Record) bool {
	if a.SatRate != b.SatRate {
		return a.SatRate > b.SatRate
	}
	if a.ZeroLoadLatency != b.ZeroLoadLatency {
		return a.ZeroLoadLatency < b.ZeroLoadLatency
	}
	if a.EnergyPJPerBit != b.EnergyPJPerBit {
		return a.EnergyPJPerBit < b.EnergyPJPerBit
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.Key < b.Key
}

// Frontier returns the exact Pareto frontier of the records: every
// record no other record dominates, ranked by frontierLess. Records
// with identical objective vectors do not dominate each other, so ties
// all stay on the frontier. Deadlocked records are excluded (they are
// failures, not designs). The result is a fresh slice; the input is
// left untouched, and permuting it does not change the output.
func Frontier(recs []Record) []Record {
	live := make([]Record, 0, len(recs))
	for _, r := range recs {
		if !r.Deadlocked {
			live = append(live, r)
		}
	}
	var out []Record
	for i, r := range live {
		dominated := false
		for j, other := range live {
			if i != j && Dominates(other, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return frontierLess(out[i], out[j]) })
	return out
}

// RankAll returns every live record ranked by frontierLess with frontier
// membership marked — the candidates.csv ordering.
func RankAll(recs []Record) (ranked []Record, onFrontier []bool) {
	frontier := Frontier(recs)
	inFrontier := map[string]bool{}
	for _, r := range frontier {
		inFrontier[r.Key] = true
	}
	ranked = append([]Record(nil), recs...)
	sort.SliceStable(ranked, func(i, j int) bool { return frontierLess(ranked[i], ranked[j]) })
	onFrontier = make([]bool, len(ranked))
	for i, r := range ranked {
		onFrontier[i] = inFrontier[r.Key]
	}
	return ranked, onFrontier
}
