package dse

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"chipletnet"
)

// keyPayload is the canonical content of one candidate evaluation: the
// fully-resolved configuration plus every evaluation parameter that
// shapes the Record. The cycle-engine choice (chipletnet.
// UseReferenceEngine) is deliberately absent — the engines are
// bit-identical, so their results are interchangeable cache entries.
type keyPayload struct {
	Cfg          chipletnet.Config
	Rates        []float64
	ZeroLoadRate float64
}

// Key returns the content address of evaluating cfg under p: the hex
// SHA-256 of the gob encoding of the fully-resolved payload. Gob writes
// struct fields in declaration order and Config contains no maps, so the
// byte stream — and therefore the key — is stable across runs.
func Key(cfg chipletnet.Config, p Params) string {
	p = p.normalize()
	h := sha256.New()
	if err := gob.NewEncoder(h).Encode(keyPayload{
		Cfg:          cfg,
		Rates:        p.Rates,
		ZeroLoadRate: p.ZeroLoadRate,
	}); err != nil {
		// Config and Params are plain data; gob cannot fail on them.
		panic(fmt.Sprintf("dse: hashing candidate: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheLine is the JSONL envelope of one cache entry: the content key
// and the gob-encoded Record (json marshals []byte as base64). Gob preserves float64 results
// exactly, so a Record read back from the cache is bit-identical to the
// freshly measured one — the property behind byte-identical re-run
// reports.
type cacheLine struct {
	K string
	G []byte
}

// Cache is the content-addressed evaluation store: a map from candidate
// key to Record, persisted as an append-only JSONL file fsynced after
// every record (the campaign-journal idiom; see internal/experiments).
// A process killed mid-append leaves at most one torn final line, which
// OpenCache drops from the file before appending resumes; a later entry
// for a key overrides an earlier one. With an empty path the cache is
// memory-only.
//
// Cache is safe for concurrent use; cmd/chipletdse records from its
// worker pool.
type Cache struct {
	mu   sync.Mutex
	f    *os.File // nil when memory-only
	recs map[string]Record
}

// OpenCache opens (creating if needed) the cache at path and loads its
// entries. An empty path returns a memory-only cache.
func OpenCache(path string) (*Cache, error) {
	c := &Cache{recs: map[string]Record{}}
	if path == "" {
		return c, nil
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		// A crash mid-append left a torn final line. Drop it from the
		// file as well as from the load, so later appends start on a
		// fresh line instead of gluing onto the garbage.
		valid := bytes.LastIndexByte(data, '\n') + 1
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, fmt.Errorf("dse: cache %s: dropping torn final line: %w", path, err)
		}
		data = data[:valid]
	}
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var cl cacheLine
		if err := json.Unmarshal(line, &cl); err != nil {
			return nil, fmt.Errorf("dse: cache %s line %d: %w", path, i+1, err)
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(cl.G)).Decode(&rec); err != nil {
			return nil, fmt.Errorf("dse: cache %s line %d: decoding record: %w", path, i+1, err)
		}
		if rec.Key != cl.K {
			return nil, fmt.Errorf("dse: cache %s line %d: record key %.12s does not match envelope key %.12s", path, i+1, rec.Key, cl.K)
		}
		c.recs[cl.K] = rec
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c.f = f
	return c, nil
}

// Lookup returns the cached record for key.
func (c *Cache) Lookup(key string) (Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.recs[key]
	return rec, ok
}

// Put stores rec under rec.Key and, for a file-backed cache, appends and
// fsyncs the entry before returning, so a finished evaluation survives
// any crash that follows it.
func (c *Cache) Put(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("dse: refusing to cache a record with no key")
	}
	var g bytes.Buffer
	if err := gob.NewEncoder(&g).Encode(rec); err != nil {
		return fmt.Errorf("dse: encoding record: %w", err)
	}
	line, err := json.Marshal(cacheLine{K: rec.Key, G: g.Bytes()})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		if _, err := c.f.Write(append(line, '\n')); err != nil {
			return err
		}
		if err := c.f.Sync(); err != nil {
			return err
		}
	}
	c.recs[rec.Key] = rec
	return nil
}

// Len returns the number of cached records.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Close closes the underlying file (a no-op for memory-only caches).
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
