package dse

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"chipletnet"
	"chipletnet/internal/jsonl"
	"chipletnet/internal/workload"
)

// keyPayload is the canonical content of one candidate evaluation: the
// fully-resolved configuration plus every evaluation parameter that
// shapes the Record. The cycle-engine choice (chipletnet.
// UseEngine) is deliberately absent — the engines are bit-identical,
// so their results are interchangeable cache entries.
type keyPayload struct {
	Cfg          chipletnet.Config
	Rates        []float64
	ZeroLoadRate float64
	// WorkloadHash is the content address of the candidate's workload
	// spec (workload.SpecHash): replay traces resolve to the SHA-256 of
	// the trace file's bytes, so editing a trace invalidates every cached
	// evaluation that used it; Cfg.Workload itself is blanked in the
	// payload so the same trace cached under two paths shares one key.
	// Empty (and omitted) for synthetic candidates — pre-QoS keys stay
	// valid.
	WorkloadHash string `json:",omitempty"`
}

// Key returns the content address of evaluating cfg under p: the hex
// SHA-256 of the JSON encoding of the fully-resolved payload. JSON —
// not gob — because gob wire type IDs are assigned from a
// process-global counter in first-use order, so a gob-based hash
// changes depending on what else the process happened to gob-encode
// first (a checkpoint written by an earlier job shifted every
// subsequent key). JSON marshals struct fields in declaration order
// with shortest-round-trip floats and Config contains no maps, so the
// byte stream — and therefore the key — is stable across runs,
// processes and machines.
func Key(cfg chipletnet.Config, p Params) string {
	p = p.normalize()
	wh, err := workload.SpecHash(cfg.Workload)
	if err != nil {
		// An unreadable trace cannot be content-addressed; key it by the
		// spec string so planning proceeds and the evaluation itself
		// reports the real error.
		wh = "unreadable:" + cfg.Workload
	}
	cfg.Workload = ""
	payload, err := json.Marshal(keyPayload{
		Cfg:          cfg,
		Rates:        p.Rates,
		ZeroLoadRate: p.ZeroLoadRate,
		WorkloadHash: wh,
	})
	if err != nil {
		// Config and Params are plain data; json cannot fail on them.
		panic(fmt.Sprintf("dse: hashing candidate: %v", err))
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Store is the evaluation-store interface the planner and the campaign
// daemon consume. The single-file Cache and the ShardedCache both
// implement it; Merge unions any mix of the two.
type Store interface {
	// Lookup returns the cached record for key.
	Lookup(key string) (Record, bool)
	// Put persists rec under rec.Key durably before returning.
	Put(rec Record) error
	// Records returns every cached record in ascending key order — the
	// deterministic enumeration Merge walks.
	Records() []Record
	// Len returns the number of cached records.
	Len() int
	// Quarantined returns how many corrupt lines the open moved to the
	// .rej sidecar(s) (see internal/jsonl).
	Quarantined() int
	// Close releases the underlying file(s).
	Close() error
}

// cacheLine is the JSONL envelope of one cache entry: the content key
// and the gob-encoded Record (json marshals []byte as base64). Gob preserves float64 results
// exactly, so a Record read back from the cache is bit-identical to the
// freshly measured one — the property behind byte-identical re-run
// reports.
type cacheLine struct {
	K string
	G []byte
}

// Cache is the content-addressed evaluation store: a map from candidate
// key to Record, persisted as an append-only JSONL file fsynced after
// every record (the campaign-journal idiom; see internal/experiments).
// A process killed mid-append leaves at most one torn final line, which
// OpenCache drops from the file before appending resumes; any other
// corrupt line is quarantined to a .rej sidecar and the later valid
// entries are kept (self-healing reads; see internal/jsonl). A later
// entry for a key overrides an earlier one. With an empty path the cache
// is memory-only.
//
// Cache is safe for concurrent use; cmd/chipletdse and the campaign
// daemon record from worker pools.
type Cache struct {
	mu          sync.Mutex
	f           *os.File // nil when memory-only
	recs        map[string]Record
	quarantined int
}

// OpenCache opens (creating if needed) the cache at path and loads its
// entries, healing crash and corruption damage in place. An empty path
// returns a memory-only cache.
func OpenCache(path string) (*Cache, error) {
	c := &Cache{recs: map[string]Record{}}
	if path == "" {
		return c, nil
	}
	q, err := jsonl.Load(path, func(line []byte) error {
		var cl cacheLine
		if err := json.Unmarshal(line, &cl); err != nil {
			return err
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(cl.G)).Decode(&rec); err != nil {
			return fmt.Errorf("decoding record: %w", err)
		}
		if rec.Key != cl.K {
			return fmt.Errorf("record key %.12s does not match envelope key %.12s", rec.Key, cl.K)
		}
		c.recs[cl.K] = rec
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dse: cache %s: %w", path, err)
	}
	c.quarantined = q
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c.f = f
	return c, nil
}

// Lookup returns the cached record for key.
func (c *Cache) Lookup(key string) (Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.recs[key]
	return rec, ok
}

// Put stores rec under rec.Key and, for a file-backed cache, appends and
// fsyncs the entry before returning, so a finished evaluation survives
// any crash that follows it.
func (c *Cache) Put(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("dse: refusing to cache a record with no key")
	}
	var g bytes.Buffer
	if err := gob.NewEncoder(&g).Encode(rec); err != nil {
		return fmt.Errorf("dse: encoding record: %w", err)
	}
	line, err := json.Marshal(cacheLine{K: rec.Key, G: g.Bytes()})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		if _, err := c.f.Write(append(line, '\n')); err != nil {
			return err
		}
		if err := c.f.Sync(); err != nil {
			return err
		}
	}
	c.recs[rec.Key] = rec
	return nil
}

// Records returns every cached record in ascending key order.
func (c *Cache) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, 0, len(c.recs))
	for _, rec := range c.recs {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len returns the number of cached records.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Quarantined returns how many corrupt lines OpenCache moved to the
// .rej sidecar.
func (c *Cache) Quarantined() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}

// Close closes the underlying file (a no-op for memory-only caches).
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
