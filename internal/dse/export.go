package dse

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Everything written here is deterministic — stable ordering, no
// wall-clock, shortest-round-trip float formatting — so re-running an
// exploration against a warm cache reproduces every report byte for
// byte (the property the acceptance gate checks).

// Row is one report line of a ranked record set.
type Row struct {
	Rank       int
	Name       string
	Key        string
	Topology   string
	NoC        string
	Routing    string
	Interleave string
	OffChipBW  int
	Groups     int
	GroupWidth int
	Ports      int
	PinBits    int

	SatRate         float64
	ZeroLoadLatency float64
	EnergyPJPerBit  float64
	Frontier        bool
	Deadlocked      bool
}

func rowFrom(rank int, r Record, frontier bool) Row {
	return Row{
		Rank:       rank,
		Name:       r.Name,
		Key:        r.Key,
		Topology:   r.Cfg.Topology.String(),
		NoC:        fmt.Sprintf("%dx%d", r.Cfg.ChipletW, r.Cfg.ChipletH),
		Routing:    r.Routing,
		Interleave: r.Cfg.Interleave,
		OffChipBW:  r.Cfg.OffChipBW,
		Groups:     r.Groups,
		GroupWidth: r.GroupWidth,
		Ports:      r.Ports,
		PinBits:    r.PinBits,

		SatRate:         r.SatRate,
		ZeroLoadLatency: r.ZeroLoadLatency,
		EnergyPJPerBit:  r.EnergyPJPerBit,
		Frontier:        frontier,
		Deadlocked:      r.Deadlocked,
	}
}

// Rows ranks every record (frontierLess order) and marks frontier
// membership.
func Rows(recs []Record) []Row {
	ranked, on := RankAll(recs)
	rows := make([]Row, len(ranked))
	for i, r := range ranked {
		rows[i] = rowFrom(i+1, r, on[i])
	}
	return rows
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV writes the ranked rows as CSV.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"rank", "name", "topology", "noc", "routing", "interleave",
		"offchip_bw_flits", "groups", "group_width", "ports", "pin_bits",
		"sat_rate", "zero_load_latency", "energy_pj_bit",
		"frontier", "deadlocked", "key",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			strconv.Itoa(r.Rank), r.Name, r.Topology, r.NoC, r.Routing, r.Interleave,
			strconv.Itoa(r.OffChipBW), strconv.Itoa(r.Groups), strconv.Itoa(r.GroupWidth),
			strconv.Itoa(r.Ports), strconv.Itoa(r.PinBits),
			ftoa(r.SatRate), ftoa(r.ZeroLoadLatency), ftoa(r.EnergyPJPerBit),
			strconv.FormatBool(r.Frontier), strconv.FormatBool(r.Deadlocked), r.Key,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report is the JSON report: the resolved exploration and its frontier.
// Volatile run statistics (cache hits, simulations performed, wall
// clock) are deliberately absent — a warm re-run must produce the same
// bytes.
type Report struct {
	Space    Space
	Params   Params
	Pruned   []Pruned   `json:",omitempty"`
	Rejected []Rejected `json:",omitempty"`
	// Candidates are all verified candidates, ranked, frontier marked.
	Candidates []Row
	// Frontier is the ranked Pareto frontier with full records (the
	// resolved Config of each frontier design rides along for direct
	// use with chipletsim -config).
	Frontier []Record
}

// NewReport assembles the deterministic report of an outcome.
func NewReport(o *Outcome) Report {
	return Report{
		Space:      o.Plan.Space,
		Params:     o.Plan.Params,
		Pruned:     o.Plan.Pruned,
		Rejected:   o.Plan.Rejected,
		Candidates: Rows(o.Records),
		Frontier:   o.Frontier,
	}
}

// WriteReportJSON writes the report as indented JSON.
func WriteReportJSON(w io.Writer, o *Outcome) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewReport(o))
}

// topovizDims renders a topology's Dims as the comma-separated -dims
// flag value.
func topovizDims(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, ",")
}

// WriteTopovizScript writes a shell script inspecting every frontier
// design with cmd/topoviz — the paper's Fig. 3/5/7 companion views of
// the winning interconnects.
func WriteTopovizScript(w io.Writer, frontier []Record) error {
	if _, err := fmt.Fprintf(w, "#!/bin/sh\n# Pareto-frontier designs; regenerate with cmd/chipletdse.\nset -e\n"); err != nil {
		return err
	}
	for i, r := range frontier {
		_, err := fmt.Fprintf(w, "# rank %d: %s  (sat %s, zero-load %s cycles, %s pJ/bit)\ngo run ./cmd/topoviz -topology %s -dims %s -noc %dx%d\n",
			i+1, r.Name, ftoa(r.SatRate), ftoa(r.ZeroLoadLatency), ftoa(r.EnergyPJPerBit),
			r.Cfg.Topology.Kind, topovizDims(r.Cfg.Topology.Dims), r.Cfg.ChipletW, r.Cfg.ChipletH)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteFiles writes the full report set into dir: candidates.csv (every
// verified candidate, ranked), frontier.csv, frontier.json, the topoviz
// inspection script, and one chipletsim-loadable config per frontier
// design (injection rate pre-set to the design's sustainable load).
// It returns the written paths in creation order.
func WriteFiles(dir string, o *Outcome) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	emit := func(name string, fill func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fill(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	rows := Rows(o.Records)
	if err := emit("candidates.csv", func(w io.Writer) error { return WriteCSV(w, rows) }); err != nil {
		return written, err
	}
	var frontierRows []Row
	for _, r := range rows {
		if r.Frontier {
			frontierRows = append(frontierRows, r)
		}
	}
	for i := range frontierRows {
		frontierRows[i].Rank = i + 1
	}
	if err := emit("frontier.csv", func(w io.Writer) error { return WriteCSV(w, frontierRows) }); err != nil {
		return written, err
	}
	if err := emit("frontier.json", func(w io.Writer) error { return WriteReportJSON(w, o) }); err != nil {
		return written, err
	}
	if err := emit("frontier-topoviz.sh", func(w io.Writer) error { return WriteTopovizScript(w, o.Frontier) }); err != nil {
		return written, err
	}
	for i, r := range o.Frontier {
		cfg := r.Cfg
		cfg.InjectionRate = r.SatRate
		if err := emit(fmt.Sprintf("frontier-%d.config.json", i+1), cfg.WriteJSON); err != nil {
			return written, err
		}
	}
	return written, nil
}
