package dse

import (
	"reflect"
	"strings"
	"testing"
)

func TestEnumerateDeterministic(t *testing.T) {
	s := Space{Chiplets: 16}
	p := DefaultParams()
	c1, pr1, err := s.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	c2, pr2, err := s.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(pr1, pr2) {
		t.Error("Enumerate is not deterministic across calls")
	}
}

func TestEnumerate16(t *testing.T) {
	s := Space{Chiplets: 16}
	cands, pruned, err := s.Enumerate(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar: a 16-chiplet budget must offer a substantial
	// search space.
	if len(cands) < 50 {
		t.Errorf("16-chiplet space has only %d candidates, want >= 50", len(cands))
	}
	// dragonfly-16 on a 4x4 NoC needs 15 groups from a 12-node ring.
	found := false
	for _, p := range pruned {
		if strings.HasPrefix(p.Name, "dragonfly-16") && strings.Contains(p.Reason, "cannot form") {
			found = true
		}
	}
	if !found {
		t.Errorf("dragonfly-16/noc4x4 should be pruned (12-node ring, 15 groups); pruned = %v", pruned)
	}

	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c.Name] {
			t.Errorf("duplicate candidate name %s", c.Name)
		}
		seen[c.Name] = true
		if c.Cfg.InjectionRate != 0 {
			t.Errorf("%s: candidate Config must leave InjectionRate 0", c.Name)
		}
		if c.Ports != 2*(c.Cfg.ChipletW+c.Cfg.ChipletH)-4 {
			t.Errorf("%s: Ports = %d, want ring length %d", c.Name, c.Ports, 2*(c.Cfg.ChipletW+c.Cfg.ChipletH)-4)
		}
		if c.Routing == RoutingEqualChannel {
			if k := c.Cfg.Topology.Kind; k != "ndmesh" && k != "ndtorus" {
				t.Errorf("%s: equal-channel enumerated for %s (only nD-mesh/torus have the mode)", c.Name, k)
			}
			if !c.Cfg.DisableNDMeshVCSeparation || !c.Cfg.AllowUnsafeRouting {
				t.Errorf("%s: equal-channel candidate missing its routing flags", c.Name)
			}
		}
	}
}

func TestEnumerateConstraints(t *testing.T) {
	p := DefaultParams()

	// MaxPorts below the 4x4 ring length (12) prunes everything grouped.
	s := Space{Chiplets: 16, MaxPorts: 8}
	cands, pruned, err := s.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("MaxPorts=8 with a 12-port ring left %d candidates", len(cands))
	}
	if len(pruned) == 0 || !strings.Contains(pruned[len(pruned)-1].Reason, "port cap") {
		t.Errorf("expected port-cap pruning reasons, got %v", pruned)
	}

	// A pin budget below any candidate's demand prunes everything with a
	// pin-budget reason. The cheapest 16-chiplet design uses 11 cross
	// ports (dragonfly would, but it is ring-pruned) — flat mesh interior
	// chiplets use 16; grouped kinds use all 12; so 1 bit/cycle kills all.
	s = Space{Chiplets: 16, PinBudgetBits: 1}
	cands, pruned, err = s.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("PinBudgetBits=1 left %d candidates", len(cands))
	}
	budgetReasons := 0
	for _, pr := range pruned {
		if strings.Contains(pr.Reason, "pin") || strings.Contains(pr.Reason, "budget") {
			budgetReasons++
		}
	}
	if budgetReasons == 0 {
		t.Errorf("expected pin-budget pruning reasons, got %v", pruned)
	}

	// A generous budget changes nothing.
	s = Space{Chiplets: 16, PinBudgetBits: 1 << 20}
	cands, _, err = s.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	unconstrained, _, err := Space{Chiplets: 16}.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(unconstrained) {
		t.Errorf("generous pin budget pruned candidates: %d vs %d", len(cands), len(unconstrained))
	}

	// MinGroupWidth=2 on a 12-node ring excludes dragonfly-like high
	// degrees; hypercube-2^4 (4 groups of 3) survives.
	s = Space{Chiplets: 16, MinGroupWidth: 2, Topologies: []string{"hypercube", "tree"}}
	cands, pruned, err = s.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Groups > 0 && c.GroupWidth < 2 {
			t.Errorf("%s: group width %d below required 2", c.Name, c.GroupWidth)
		}
	}
	// tree fanout 4 has 5 groups -> width 2 ok; all fanouts survive on a
	// 12-ring, so check the constraint at least filtered nothing wrongly.
	if len(cands) == 0 {
		t.Error("MinGroupWidth=2 should leave hypercube/tree candidates on a 12-node ring")
	}
	_ = pruned
}

func TestNormalizeRejectsBadSpaces(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Space
	}{
		{"tiny budget", Space{Chiplets: 1}},
		{"unknown topology", Space{Chiplets: 8, Topologies: []string{"torus3000"}}},
		{"unknown routing", Space{Chiplets: 8, Routings: []string{"magic"}}},
		{"NoC too small", Space{Chiplets: 8, NoCs: [][2]int{{2, 2}}}},
		{"bad bandwidth", Space{Chiplets: 8, OffChipBWs: []int{0}}},
		{"bad fan-out", Space{Chiplets: 8, TreeFanouts: []int{0}}},
	} {
		if _, err := tc.s.Normalize(); err == nil {
			t.Errorf("%s: Normalize accepted %+v", tc.name, tc.s)
		}
	}
}

func TestShapesPruneImpossibleKinds(t *testing.T) {
	// 15 chiplets: no hypercube (not a power of two), no dragonfly (odd).
	s := Space{Chiplets: 15, Topologies: []string{"hypercube", "dragonfly"}}
	cands, pruned, err := s.Enumerate(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("15 chiplets should fit no hypercube/dragonfly, got %d candidates", len(cands))
	}
	if len(pruned) != 2 {
		t.Errorf("want 2 kind-level pruning entries, got %v", pruned)
	}
}

func TestNewPlanRejectsEqualChannel(t *testing.T) {
	// Every equal-channel candidate must be caught by the verify
	// pre-flight with a cycle witness before any simulation.
	s := Space{
		Chiplets:      8,
		Topologies:    []string{"ndmesh"},
		Routings:      []string{RoutingEqualChannel},
		Interleavings: []string{"none"},
	}
	cache, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(s, DefaultParams(), cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Candidates) != 0 {
		t.Errorf("equal-channel candidates passed verification: %d", len(plan.Candidates))
	}
	if len(plan.Rejected) == 0 {
		t.Fatal("no equal-channel candidates were rejected")
	}
	for _, r := range plan.Rejected {
		if !strings.Contains(r.Reason, "cycle") {
			t.Errorf("%s: rejection reason has no cycle witness: %s", r.Name, r.Reason)
		}
	}
}
