package dse

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// tinySpace is a fast end-to-end exploration: two flat-mesh layouts of
// four chiplets, one routing mode, short runs.
func tinySpace() (Space, Params) {
	s := Space{
		Chiplets:      4,
		NoCs:          [][2]int{{3, 3}},
		Topologies:    []string{"mesh"},
		Routings:      []string{RoutingMFR},
		Interleavings: []string{"none"},
	}
	p := DefaultParams()
	p.WarmupCycles = 100
	p.MeasureCycles = 400
	p.Rates = []float64{0.1, 0.4}
	return s, p
}

func TestExploreColdThenWarm(t *testing.T) {
	s, p := tinySpace()
	path := filepath.Join(t.TempDir(), "cache.jsonl")

	cache, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Explore(s, p, cache)
	if err != nil {
		t.Fatal(err)
	}
	cache.Close()
	if cold.Simulated == 0 || cold.CacheHits != 0 {
		t.Fatalf("cold run: Simulated=%d CacheHits=%d, want all simulated", cold.Simulated, cold.CacheHits)
	}
	if len(cold.Records) < 2 {
		t.Fatalf("tiny space produced %d records, want >= 2", len(cold.Records))
	}
	if len(cold.Frontier) == 0 {
		t.Fatal("cold run produced an empty frontier")
	}

	cache2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cache2.Close()
	warm, err := Explore(s, p, cache2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated != 0 {
		t.Errorf("warm run simulated %d candidates, want 0 (100%% cache hits)", warm.Simulated)
	}
	if warm.CacheHits != len(cold.Records) {
		t.Errorf("warm run hit %d cached records, want %d", warm.CacheHits, len(cold.Records))
	}
	if !reflect.DeepEqual(warm.Records, cold.Records) {
		t.Error("warm records differ from cold records")
	}
	if !reflect.DeepEqual(warm.Frontier, cold.Frontier) {
		t.Error("warm frontier differs from cold frontier")
	}

	// The reports must be byte-identical — no volatile content.
	var coldJSON, warmJSON bytes.Buffer
	if err := WriteReportJSON(&coldJSON, cold); err != nil {
		t.Fatal(err)
	}
	if err := WriteReportJSON(&warmJSON, warm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON.Bytes(), warmJSON.Bytes()) {
		t.Error("warm JSON report is not byte-identical to the cold one")
	}
	var coldCSV, warmCSV bytes.Buffer
	if err := WriteCSV(&coldCSV, Rows(cold.Records)); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&warmCSV, Rows(warm.Records)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldCSV.Bytes(), warmCSV.Bytes()) {
		t.Error("warm CSV report is not byte-identical to the cold one")
	}
}

func TestWriteFiles(t *testing.T) {
	s, p := tinySpace()
	cache, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	o, err := Explore(s, p, cache)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	written, err := WriteFiles(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != 4+len(o.Frontier) {
		t.Fatalf("wrote %d files, want %d: %v", len(written), 4+len(o.Frontier), written)
	}
	for i, base := range []string{"candidates.csv", "frontier.csv", "frontier.json", "frontier-topoviz.sh"} {
		if filepath.Base(written[i]) != base {
			t.Errorf("file %d is %s, want %s", i, filepath.Base(written[i]), base)
		}
	}
	for i := range o.Frontier {
		want := fmt.Sprintf("frontier-%d.config.json", i+1)
		if filepath.Base(written[4+i]) != want {
			t.Errorf("file %d is %s, want %s", 4+i, filepath.Base(written[4+i]), want)
		}
	}
}

func TestCollectValidatesRecordCount(t *testing.T) {
	s, p := tinySpace()
	cache, _ := OpenCache("")
	plan, err := NewPlan(s, p, cache)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(plan, nil); err == nil && len(plan.Candidates) > 0 {
		t.Error("Collect accepted a record set of the wrong size")
	}
}
