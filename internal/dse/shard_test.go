package dse

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func TestShardIndex(t *testing.T) {
	cases := map[string]int{
		"0abc": 0, "9ff": 9, "a00": 10, "f123": 15,
	}
	for key, want := range cases {
		got, err := shardIndex(key)
		if err != nil || got != want {
			t.Errorf("shardIndex(%q) = %d, %v; want %d", key, got, err, want)
		}
	}
	for _, bad := range []string{"", "G123", "zzz", "-1"} {
		if _, err := shardIndex(bad); err == nil {
			t.Errorf("shardIndex(%q) accepted a non-hex key", bad)
		}
	}
}

func TestShardedCacheRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := OpenShardedCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// One record per shard, so every file is exercised.
	for i := 0; i < ShardN; i++ {
		key := fmt.Sprintf("%x%063d", i, i)
		if err := s.Put(testRecord(key, fmt.Sprintf("cand-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != ShardN {
		t.Errorf("Len = %d, want %d", s.Len(), ShardN)
	}
	s.Close()

	for i := 0; i < ShardN; i++ {
		if _, err := os.Stat(filepath.Join(dir, shardFile(i))); err != nil {
			t.Errorf("shard file %d missing: %v", i, err)
		}
	}

	s2, err := OpenShardedCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < ShardN; i++ {
		key := fmt.Sprintf("%x%063d", i, i)
		rec, ok := s2.Lookup(key)
		if !ok || rec.Name != fmt.Sprintf("cand-%d", i) {
			t.Errorf("record %d lost across reopen (ok=%v)", i, ok)
		}
	}

	// Records come back in ascending key order — the determinism merge
	// and the byte-identical reports depend on it.
	recs := s2.Records()
	if len(recs) != ShardN {
		t.Fatalf("Records returned %d entries, want %d", len(recs), ShardN)
	}
	if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key }) {
		t.Error("Records not in ascending key order")
	}

	if err := s2.Put(testRecord("not-hex", "bad")); err == nil {
		t.Error("Put accepted a non-hex key")
	}
}

func TestShardedCacheSelfHeals(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := OpenShardedCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("aa01", "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("aa02", "b")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt shard a: garbage line between the two records.
	shard := filepath.Join(dir, shardFile(10))
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytesSplitLines(data)
	doctored := append(append(append([]byte(nil), lines[0]...), "garbage\n"...), lines[1]...)
	if err := os.WriteFile(shard, doctored, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenShardedCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", s2.Quarantined())
	}
	if s2.Len() != 2 {
		t.Errorf("Len = %d, want both records to survive", s2.Len())
	}
	if _, err := os.Stat(shard + ".rej"); err != nil {
		t.Errorf("no .rej sidecar for the healed shard: %v", err)
	}
}

func TestMergeDeduplicatesAndDetectsConflicts(t *testing.T) {
	a, _ := OpenCache("")
	b, _ := OpenCache("")
	dst, _ := OpenCache("")
	a.Put(testRecord("a1", "one"))
	a.Put(testRecord("b2", "two"))
	b.Put(testRecord("b2", "two")) // identical duplicate: fine
	b.Put(testRecord("c3", "three"))

	added, err := Merge(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 || dst.Len() != 3 {
		t.Errorf("Merge added %d (Len %d), want 3 distinct records", added, dst.Len())
	}

	// A content conflict on a shared key aborts: two machines that
	// produced different records for one content address cannot both be
	// right.
	lying, _ := OpenCache("")
	conflicting := testRecord("c3", "three")
	conflicting.SatRate = 0.99
	lying.Put(conflicting)
	if _, err := Merge(dst, lying); err == nil {
		t.Error("Merge accepted a content conflict")
	}
}

// TestMergedShardsReproduceSingleMachineReport is the distribution
// acceptance criterion: two machines each evaluate half the design
// space into their own sharded caches; merging the halves and re-running
// the full exploration simulates nothing and writes a frontier report
// byte-identical to a cold single-machine run.
func TestMergedShardsReproduceSingleMachineReport(t *testing.T) {
	space, params := tinySpace()
	base := t.TempDir()

	// Reference: one machine, one cold run.
	solo, err := OpenShardedCache(filepath.Join(base, "solo"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Explore(space, params, solo)
	if err != nil {
		t.Fatal(err)
	}
	solo.Close()
	if ref.Simulated < 2 {
		t.Fatalf("tiny space simulated %d candidates, want >= 2 to split", ref.Simulated)
	}
	var refReport bytes.Buffer
	if err := WriteReportJSON(&refReport, ref); err != nil {
		t.Fatal(err)
	}

	// Two machines: split the pending evaluations between independent
	// sharded caches.
	hostA, err := OpenShardedCache(filepath.Join(base, "hostA"))
	if err != nil {
		t.Fatal(err)
	}
	hostB, err := OpenShardedCache(filepath.Join(base, "hostB"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(space, params, hostA)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range plan.Pending {
		rec, err := ev.Run()
		if err != nil {
			t.Fatal(err)
		}
		dst := hostA
		if i%2 == 1 {
			dst = hostB
		}
		if err := dst.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	hostA.Close()
	hostB.Close()

	// Merge both halves into a fresh sharded cache.
	merged, err := OpenShardedCache(filepath.Join(base, "merged"))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	srcA, err := OpenShardedCache(filepath.Join(base, "hostA"))
	if err != nil {
		t.Fatal(err)
	}
	srcB, err := OpenShardedCache(filepath.Join(base, "hostB"))
	if err != nil {
		t.Fatal(err)
	}
	added, err := Merge(merged, srcA, srcB)
	srcA.Close()
	srcB.Close()
	if err != nil {
		t.Fatal(err)
	}
	if added != ref.Simulated {
		t.Errorf("merge united %d records, want %d", added, ref.Simulated)
	}

	// The merged union serves the whole exploration from cache, and the
	// report bytes match the single-machine run exactly.
	out, err := Explore(space, params, merged)
	if err != nil {
		t.Fatal(err)
	}
	if out.Simulated != 0 {
		t.Errorf("exploration over the merged cache simulated %d candidates, want 0", out.Simulated)
	}
	if out.CacheHits != ref.Simulated {
		t.Errorf("CacheHits = %d, want %d", out.CacheHits, ref.Simulated)
	}
	var mergedReport bytes.Buffer
	if err := WriteReportJSON(&mergedReport, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedReport.Bytes(), refReport.Bytes()) {
		t.Error("merged-cache report is not byte-identical to the single-machine report")
	}
	if !reflect.DeepEqual(out.Frontier, ref.Frontier) {
		t.Error("merged-cache frontier differs from the single-machine frontier")
	}
}

func TestOpenStoreShapes(t *testing.T) {
	base := t.TempDir()

	mem, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mem.(*Cache); !ok {
		t.Errorf("OpenStore(\"\") = %T, want in-memory *Cache", mem)
	}
	mem.Close()

	file, err := OpenStore(filepath.Join(base, "cache.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := file.(*Cache); !ok {
		t.Errorf("OpenStore(file) = %T, want *Cache", file)
	}
	file.Close()

	// A trailing separator asks for sharding even before the directory
	// exists.
	sharded, err := OpenStore(filepath.Join(base, "shards") + string(os.PathSeparator))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sharded.(*ShardedCache); !ok {
		t.Errorf("OpenStore(dir/) = %T, want *ShardedCache", sharded)
	}
	sharded.Close()

	// An existing directory is recognized without the separator.
	again, err := OpenStore(filepath.Join(base, "shards"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := again.(*ShardedCache); !ok {
		t.Errorf("OpenStore(existing dir) = %T, want *ShardedCache", again)
	}
	again.Close()
}
