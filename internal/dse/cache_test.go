package dse

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"chipletnet"
)

func testRecord(key, name string) Record {
	cfg := chipletnet.DefaultConfig()
	return Record{
		Key:             key,
		Name:            name,
		Cfg:             cfg,
		Routing:         RoutingAdaptive,
		Groups:          4,
		GroupWidth:      3,
		Ports:           12,
		PinBits:         768,
		SatRate:         0.3,
		ZeroLoadLatency: 83.19047619047619, // exercise exact float round-trips
		EnergyPJPerBit:  20.034582384,
		Ladder: []LadderPoint{
			{Rate: 0.05, AvgLatency: 84.2, Accepted: 0.05},
			{Rate: 0.5, AvgLatency: 412.8, Accepted: 0.31, Saturated: true},
		},
	}
}

func TestCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecord("key-1", "cand-1")
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, ok := c2.Lookup("key-1")
	if !ok {
		t.Fatal("record not found after reopen")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if c2.Len() != 1 {
		t.Errorf("Len = %d, want 1", c2.Len())
	}
}

func TestCacheMemoryOnly(t *testing.T) {
	c, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testRecord("k", "n")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup("k"); !ok {
		t.Error("memory-only cache lost its record")
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close on memory-only cache: %v", err)
	}
}

func TestCacheRejectsKeylessRecord(t *testing.T) {
	c, _ := OpenCache("")
	if err := c.Put(Record{Name: "keyless"}); err == nil {
		t.Error("Put accepted a record with no key")
	}
}

func TestCacheToleratesTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testRecord("key-1", "cand-1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testRecord("key-2", "cand-2")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Simulate a crash mid-append: chop the tail of the final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(path)
	if err != nil {
		t.Fatalf("OpenCache on truncated file: %v", err)
	}
	if _, ok := c2.Lookup("key-1"); !ok {
		t.Error("intact first record lost after truncation")
	}
	if _, ok := c2.Lookup("key-2"); ok {
		t.Error("truncated record should not load")
	}
	// The cache stays usable: re-put the lost record and reopen.
	if err := c2.Put(testRecord("key-2", "cand-2")); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	c3, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if c3.Len() != 2 {
		t.Errorf("after repair Len = %d, want 2", c3.Len())
	}
}

func TestCacheRejectsCorruptInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	if err := os.WriteFile(path, []byte("not json\n{\"K\":\"x\",\"G\":\"\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(path); err == nil {
		t.Error("OpenCache accepted a corrupt interior line")
	}
}

func TestKeyStability(t *testing.T) {
	cfg := chipletnet.DefaultConfig()
	p := DefaultParams()
	k1 := Key(cfg, p)
	k2 := Key(cfg, p)
	if k1 != k2 {
		t.Error("Key is not deterministic")
	}
	if len(k1) != 64 {
		t.Errorf("Key length %d, want 64 hex chars", len(k1))
	}

	// Any change to the resolved config or measurement parameters must
	// move the key.
	variants := map[string]string{}
	add := func(name, key string) {
		if prev, dup := variants[key]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		variants[key] = name
	}
	add("base", k1)

	c := cfg
	c.Seed = 99
	add("seed", Key(c, p))
	c = cfg
	c.Interleave = "packet"
	add("interleave", Key(c, p))
	c = cfg
	c.OffChipBW = 4
	add("bandwidth", Key(c, p))
	c = cfg
	c.Topology = chipletnet.HypercubeTopology(2)
	add("topology", Key(c, p))

	p2 := p
	p2.Rates = []float64{0.1, 0.2}
	add("rates", Key(cfg, p2))
	p2 = p
	p2.ZeroLoadRate = 0.01
	add("zero-load rate", Key(cfg, p2))
}

// TestKeyIgnoresEngineChoice pins the deliberate design decision that
// the cycle-engine selection is not part of the content address: both
// engines are bit-identical, so their records are interchangeable.
func TestKeyIgnoresEngineChoice(t *testing.T) {
	cfg := chipletnet.DefaultConfig()
	p := DefaultParams()
	before := Key(cfg, p)
	prev := chipletnet.UseReferenceEngine
	chipletnet.UseReferenceEngine = !prev
	after := Key(cfg, p)
	chipletnet.UseReferenceEngine = prev
	if before != after {
		t.Error("engine choice leaked into the cache key")
	}
}
