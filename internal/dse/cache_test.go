package dse

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"chipletnet"
)

func testRecord(key, name string) Record {
	cfg := chipletnet.DefaultConfig()
	return Record{
		Key:             key,
		Name:            name,
		Cfg:             cfg,
		Routing:         RoutingAdaptive,
		Groups:          4,
		GroupWidth:      3,
		Ports:           12,
		PinBits:         768,
		SatRate:         0.3,
		ZeroLoadLatency: 83.19047619047619, // exercise exact float round-trips
		EnergyPJPerBit:  20.034582384,
		Ladder: []LadderPoint{
			{Rate: 0.05, AvgLatency: 84.2, Accepted: 0.05},
			{Rate: 0.5, AvgLatency: 412.8, Accepted: 0.31, Saturated: true},
		},
	}
}

func TestCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecord("key-1", "cand-1")
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, ok := c2.Lookup("key-1")
	if !ok {
		t.Fatal("record not found after reopen")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if c2.Len() != 1 {
		t.Errorf("Len = %d, want 1", c2.Len())
	}
}

func TestCacheMemoryOnly(t *testing.T) {
	c, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testRecord("k", "n")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup("k"); !ok {
		t.Error("memory-only cache lost its record")
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close on memory-only cache: %v", err)
	}
}

func TestCacheRejectsKeylessRecord(t *testing.T) {
	c, _ := OpenCache("")
	if err := c.Put(Record{Name: "keyless"}); err == nil {
		t.Error("Put accepted a record with no key")
	}
}

func TestCacheToleratesTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testRecord("key-1", "cand-1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testRecord("key-2", "cand-2")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Simulate a crash mid-append: chop the tail of the final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(path)
	if err != nil {
		t.Fatalf("OpenCache on truncated file: %v", err)
	}
	if _, ok := c2.Lookup("key-1"); !ok {
		t.Error("intact first record lost after truncation")
	}
	if _, ok := c2.Lookup("key-2"); ok {
		t.Error("truncated record should not load")
	}
	// The cache stays usable: re-put the lost record and reopen.
	if err := c2.Put(testRecord("key-2", "cand-2")); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	c3, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if c3.Len() != 2 {
		t.Errorf("after repair Len = %d, want 2", c3.Len())
	}
}

// TestCacheQuarantinesCorruptInterior: corruption in the middle of a
// cache file (flipped bits, partial writes from a lost race, operator
// edits) must not cost the later valid entries. Corrupt lines move to a
// .rej sidecar for inspection, the file is atomically rewritten with
// only the valid lines, and reopening is clean.
func TestCacheQuarantinesCorruptInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"key-1", "key-2", "key-3"} {
		if err := c.Put(testRecord(k, "cand-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	// Corruption matrix, spliced between the valid lines: not JSON at
	// all, JSON with a truncated gob payload, and a valid envelope whose
	// key disagrees with the record inside (bit rot in K).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytesSplitLines(data)
	if len(lines) != 3 {
		t.Fatalf("seeded %d lines, want 3", len(lines))
	}
	mismatched := []byte(`{"K":"someone-elses-key`)
	mismatched = append(mismatched, lines[2][len(`{"K":"key-3`):]...)
	var doctored []byte
	doctored = append(doctored, lines[0]...)
	doctored = append(doctored, "!!not json!!\n"...)
	doctored = append(doctored, lines[1]...)
	doctored = append(doctored, "{\"K\":\"key-x\",\"G\":\"AAAA\"}\n"...)
	doctored = append(doctored, mismatched...)
	if err := os.WriteFile(path, doctored, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(path)
	if err != nil {
		t.Fatalf("OpenCache on corrupt file: %v", err)
	}
	if c2.Quarantined() != 3 {
		t.Errorf("Quarantined = %d, want 3", c2.Quarantined())
	}
	if c2.Len() != 2 {
		t.Errorf("Len = %d, want 2 (valid entries before AND after the corruption)", c2.Len())
	}
	for _, k := range []string{"key-1", "key-2"} {
		if _, ok := c2.Lookup(k); !ok {
			t.Errorf("valid record %s lost to quarantine", k)
		}
	}
	if _, ok := c2.Lookup("key-3"); ok {
		t.Error("key-mismatched record should have been quarantined")
	}
	c2.Close()

	// The corrupt lines are preserved for inspection...
	rej, err := os.ReadFile(path + ".rej")
	if err != nil {
		t.Fatalf("no .rej sidecar: %v", err)
	}
	if got := len(bytesSplitLines(rej)); got != 3 {
		t.Errorf(".rej holds %d lines, want 3", got)
	}
	// ...and the repair is idempotent: the rewritten file reloads with
	// nothing further to quarantine.
	c3, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if c3.Quarantined() != 0 || c3.Len() != 2 {
		t.Errorf("reloaded repaired cache: Quarantined=%d Len=%d, want 0/2", c3.Quarantined(), c3.Len())
	}
}

// bytesSplitLines splits complete lines, keeping the trailing newline on
// each.
func bytesSplitLines(data []byte) [][]byte {
	var lines [][]byte
	for len(data) > 0 {
		i := 0
		for i < len(data) && data[i] != '\n' {
			i++
		}
		if i == len(data) {
			break // torn tail, not a line
		}
		lines = append(lines, data[:i+1])
		data = data[i+1:]
	}
	return lines
}

func TestKeyStability(t *testing.T) {
	cfg := chipletnet.DefaultConfig()
	p := DefaultParams()
	k1 := Key(cfg, p)
	k2 := Key(cfg, p)
	if k1 != k2 {
		t.Error("Key is not deterministic")
	}
	if len(k1) != 64 {
		t.Errorf("Key length %d, want 64 hex chars", len(k1))
	}

	// Any change to the resolved config or measurement parameters must
	// move the key.
	variants := map[string]string{}
	add := func(name, key string) {
		if prev, dup := variants[key]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		variants[key] = name
	}
	add("base", k1)

	c := cfg
	c.Seed = 99
	add("seed", Key(c, p))
	c = cfg
	c.Interleave = "packet"
	add("interleave", Key(c, p))
	c = cfg
	c.OffChipBW = 4
	add("bandwidth", Key(c, p))
	c = cfg
	c.Topology = chipletnet.HypercubeTopology(2)
	add("topology", Key(c, p))

	p2 := p
	p2.Rates = []float64{0.1, 0.2}
	add("rates", Key(cfg, p2))
	p2 = p
	p2.ZeroLoadRate = 0.01
	add("zero-load rate", Key(cfg, p2))
}

// TestKeyGolden pins the exact key bytes for the default configuration.
// The key must be identical across processes and machines — that is
// what lets independently-populated caches merge (dse.Merge) and lets a
// restarted daemon serve a resubmitted campaign from cache. The
// original gob-based key silently violated this: gob wire type IDs
// come from a process-global counter in first-use order, so a daemon
// that happened to write a checkpoint (gob of checkpoint.State) before
// its first DSE job hashed every candidate differently from a daemon
// that ran DSE first. If this test fails after an intentional Config
// or Params change, update the constant — that records the cache
// invalidation explicitly.
func TestKeyGolden(t *testing.T) {
	const want = "db4825fea2acdcb06198cd2870f0254d839a9eeda89c93e288235d54f84a4b46"
	if got := Key(chipletnet.DefaultConfig(), DefaultParams()); got != want {
		t.Errorf("Key(DefaultConfig, DefaultParams) = %s, want %s\n"+
			"(an intentional Config/Params schema change invalidates existing caches — update the constant)", got, want)
	}
}

// TestKeyIgnoresEngineChoice pins the deliberate design decision that
// the cycle-engine selection is not part of the content address: both
// engines are bit-identical, so their records are interchangeable.
func TestKeyIgnoresEngineChoice(t *testing.T) {
	cfg := chipletnet.DefaultConfig()
	p := DefaultParams()
	before := Key(cfg, p)
	prev := chipletnet.UseEngine
	chipletnet.UseEngine = chipletnet.EngineReference
	after := Key(cfg, p)
	chipletnet.UseEngine = chipletnet.EngineIslands
	afterIslands := Key(cfg, p)
	chipletnet.UseEngine = prev
	if before != afterIslands {
		t.Error("engine choice leaked into the cache key")
	}
	if before != after {
		t.Error("engine choice leaked into the cache key")
	}
}
