// Package dse explores the chiplet-interconnect design space — the
// paper's actual deliverable. The paper is a *methodology* for designing
// the interconnection network of a multi-chiplet system: pick an
// interface grouping, a chiplet-level topology, a routing mode and an
// interleaving grain for a given chiplet budget. This package turns that
// methodology into an automated designer:
//
//  1. Space declares the constraints (chiplet budget, candidate NoC
//     sizes, topology families, routing modes, interleaving grains,
//     off-chip bandwidths, per-chiplet port and pin budgets) and
//     Enumerate expands them into fully-resolved candidate Configs,
//     pruning statically infeasible combinations (grids that do not
//     factor, rings too short for the required grouping, pin budgets
//     exceeded) with recorded reasons.
//  2. NewPlan runs the internal/verify channel-dependency-graph
//     pre-flight over the statically feasible candidates and rejects
//     deadlock-prone designs (e.g. the equal-channel nD-mesh mode)
//     before a single cycle is simulated, then splits the survivors
//     into cache hits and pending evaluations.
//  3. Eval.Run measures one candidate on the cycle engine — a zero-load
//     probe for latency and transport energy plus a rate ladder for the
//     sustainable injection rate — through chipletnet.RunMany, the
//     module root's parallel executor (internal packages spawn no
//     goroutines; see cmd/chipletlint). Results are content-addressed:
//     Key hashes the fully-resolved Config and evaluation parameters,
//     and Cache persists Records as fsynced JSONL, so overlapping
//     sweeps and re-runs skip simulation entirely and a killed
//     exploration resumes where it stopped.
//  4. Frontier extracts the exact Pareto frontier over (saturation
//     rate, zero-load latency, energy) with deterministic tie-breaking;
//     export.go emits ranked CSV/JSON reports and topoviz-compatible
//     descriptions of each frontier design.
//
// cmd/chipletdse drives the package from the command line;
// examples/designspace shows the library flow.
package dse

import (
	"fmt"
	"sort"
	"strings"

	"chipletnet"
	"chipletnet/internal/chiplet"
	"chipletnet/internal/workload"
)

// Routing mode names of the search axis. They map onto the simulator's
// modes as follows:
//
//   - "mfr": minus-first routing with the safe/unsafe flow control of
//     Algorithm 5 (chipletnet.RoutingSafeUnsafe) — the paper's baseline
//     deadlock-avoidance scheme.
//   - "adaptive": MFR-based adaptive routing with Duato escape channels
//     (chipletnet.RoutingDuato).
//   - "equal-channel": adaptive routing with the Theorem-1 d+/d- virtual
//     channel separation disabled on nD-mesh/torus interface segments.
//     This mode is deadlock-prone by construction; it is enumerated so
//     the verify pre-flight can demonstrate the rejection, and it never
//     reaches simulation.
const (
	RoutingMFR          = "mfr"
	RoutingAdaptive     = "adaptive"
	RoutingEqualChannel = "equal-channel"
)

// RoutingModes lists the routing-axis names in canonical order.
func RoutingModes() []string {
	return []string{RoutingMFR, RoutingAdaptive, RoutingEqualChannel}
}

// TopologyKinds lists the enumerable topology families in canonical
// order. Custom (irregular edge-list) topologies have no declarative
// generator and are not part of the search space.
func TopologyKinds() []string {
	return []string{"mesh", "ndmesh", "ndtorus", "hypercube", "dragonfly", "tree"}
}

// Space declares the design-space constraints. The zero value of every
// field means "the default axis" (see Normalize); Chiplets is the only
// mandatory field.
type Space struct {
	// Chiplets is the chiplet budget: every candidate uses exactly this
	// many identical chiplets.
	Chiplets int

	// NoCs are the candidate on-chiplet 2D-mesh sizes (W, H). The NoC
	// size fixes the interface ring length 2(W+H)-4 — the per-chiplet
	// port count the grouping divides among neighbors. Default {4, 4}.
	NoCs [][2]int

	// Topologies restricts the topology families (TopologyKinds subset).
	// Default: all enumerable kinds.
	Topologies []string

	// Routings restricts the routing-mode axis (RoutingModes subset).
	// Default: all three, including the deadlock-prone equal-channel
	// mode the verify pre-flight exists to reject.
	Routings []string

	// Interleavings restricts the interleaving grains ("none", "message",
	// "packet"). Default: all three.
	Interleavings []string

	// OffChipBWs are the candidate chiplet-to-chiplet bandwidths in
	// flits/cycle. Default {2} (64 bits/cycle at 32-bit flits).
	OffChipBWs []int

	// TreeFanouts are the candidate tree fan-outs. Default {2, 3, 4}.
	TreeFanouts []int

	// MaxPorts caps the interface-node count per chiplet (the ring
	// length); 0 means unconstrained. A chiplet's ports are its
	// physical beachfront — the paper's motivation for grouping.
	MaxPorts int

	// PinBudgetBits caps the per-chiplet off-chip signal budget in
	// bits/cycle per direction: (cross-linked ports) × OffChipBW ×
	// FlitBits must not exceed it. 0 means unconstrained.
	PinBudgetBits int

	// MinGroupWidth demands at least this many interface nodes per
	// connected group (link redundancy for fault tolerance); 0 or 1
	// means unconstrained.
	MinGroupWidth int

	// Pattern is the traffic pattern candidates are evaluated under.
	// Default "uniform".
	Pattern string

	// Workloads are the workload specs candidates are evaluated under
	// (Config.Workload values; "" is the synthetic Bernoulli process).
	// Non-synthetic workloads skip the rate ladder — the source sets its
	// own load — and are measured with a single run. Replay traces are
	// content-addressed into the cache key, so editing a trace file
	// invalidates its cached evaluations. Default {""}.
	Workloads []string
}

// Normalize fills defaulted axes and validates the space.
func (s Space) Normalize() (Space, error) {
	if s.Chiplets < 2 {
		return s, fmt.Errorf("dse: chiplet budget must be at least 2, got %d", s.Chiplets)
	}
	if len(s.NoCs) == 0 {
		s.NoCs = [][2]int{{4, 4}}
	}
	for _, noc := range s.NoCs {
		if noc[0] < 3 || noc[1] < 3 {
			return s, fmt.Errorf("dse: NoC %dx%d has no core nodes (need >= 3x3)", noc[0], noc[1])
		}
	}
	if len(s.Topologies) == 0 {
		s.Topologies = TopologyKinds()
	}
	known := map[string]bool{}
	for _, k := range TopologyKinds() {
		known[k] = true
	}
	for _, k := range s.Topologies {
		if !known[k] {
			return s, fmt.Errorf("dse: unknown topology kind %q (want one of %s)", k, strings.Join(TopologyKinds(), ", "))
		}
	}
	if len(s.Routings) == 0 {
		s.Routings = RoutingModes()
	}
	for _, r := range s.Routings {
		switch r {
		case RoutingMFR, RoutingAdaptive, RoutingEqualChannel:
		default:
			return s, fmt.Errorf("dse: unknown routing mode %q (want one of %s)", r, strings.Join(RoutingModes(), ", "))
		}
	}
	if len(s.Interleavings) == 0 {
		s.Interleavings = []string{"none", "message", "packet"}
	}
	if len(s.OffChipBWs) == 0 {
		s.OffChipBWs = []int{2}
	}
	for _, bw := range s.OffChipBWs {
		if bw < 1 {
			return s, fmt.Errorf("dse: off-chip bandwidth must be positive, got %d", bw)
		}
	}
	if len(s.TreeFanouts) == 0 {
		s.TreeFanouts = []int{2, 3, 4}
	}
	for _, f := range s.TreeFanouts {
		if f < 1 {
			return s, fmt.Errorf("dse: tree fan-out must be positive, got %d", f)
		}
	}
	if s.Pattern == "" {
		s.Pattern = "uniform"
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []string{""}
	}
	for _, w := range s.Workloads {
		if _, _, err := workload.Split(w); err != nil {
			return s, err
		}
	}
	return s, nil
}

// workloadAxisName renders a workload spec as a candidate-name segment
// (path separators and the kind colon flattened).
func workloadAxisName(spec string) string {
	return strings.NewReplacer(":", "-", "/", "_").Replace(spec)
}

// Candidate is one fully-resolved design point: a runnable Config plus
// the static properties the constraints were checked against.
type Candidate struct {
	// Name identifies the candidate deterministically, e.g.
	// "ndmesh-4x2x2/noc4x4/adaptive/message/bw2".
	Name string
	// Cfg is the fully-resolved configuration with InjectionRate left 0
	// (the evaluation sweeps it).
	Cfg chipletnet.Config
	// Routing is the search-axis routing name (RoutingMFR, ...).
	Routing string

	// Groups is the chiplet degree: the number of abstract interfaces
	// the ring is clustered into (0 for the ungrouped flat mesh).
	Groups int
	// GroupWidth is the smallest group size (link redundancy).
	GroupWidth int
	// Ports is the interface-node count per chiplet, 2(W+H)-4.
	Ports int
	// PinBits is the per-chiplet off-chip signal budget consumed, in
	// bits/cycle per direction: cross-linked ports × OffChipBW × FlitBits.
	PinBits int
}

// Pruned records one statically infeasible combination and why it was
// dropped before verification.
type Pruned struct {
	Name   string
	Reason string
}

// shape is one topology parameterization matching the chiplet budget.
type shape struct {
	name   string // e.g. "ndmesh-4x2x2"
	topo   chipletnet.Topology
	groups int // chiplet degree (interface groups); 0 = ungrouped flat mesh
}

// meshShapes enumerates cx <= cy grids with cx*cy == n.
func meshShapes(n int) []shape {
	var out []shape
	for cx := 1; cx*cx <= n; cx++ {
		if n%cx != 0 {
			continue
		}
		cy := n / cx
		out = append(out, shape{
			name:   fmt.Sprintf("mesh-%dx%d", cx, cy),
			topo:   chipletnet.MeshTopology(cx, cy),
			groups: 0,
		})
	}
	return out
}

// factorizations enumerates the multiplicative compositions of n into
// non-increasing factors >= 2 with at least minLen parts, in
// deterministic (largest-first) order.
func factorizations(n, minLen int) [][]int {
	var out [][]int
	var cur []int
	var rec func(rem, maxF int)
	rec = func(rem, maxF int) {
		if rem == 1 {
			if len(cur) >= minLen {
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		for f := min(maxF, rem); f >= 2; f-- {
			if rem%f != 0 {
				continue
			}
			cur = append(cur, f)
			rec(rem/f, f)
			cur = cur[:len(cur)-1]
		}
	}
	rec(n, n)
	return out
}

func dimsName(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprint(d)
	}
	return strings.Join(parts, "x")
}

// shapes enumerates the topology parameterizations of one kind for the
// chiplet budget. An empty result with a non-empty reason means the kind
// cannot meet the budget at all (one Pruned entry covers it).
func (s Space) shapes(kind string) ([]shape, string) {
	n := s.Chiplets
	switch kind {
	case "mesh":
		return meshShapes(n), ""
	case "ndmesh", "ndtorus":
		facs := factorizations(n, 2)
		if len(facs) == 0 {
			return nil, fmt.Sprintf("%d chiplets have no >= 2-dimensional factorization", n)
		}
		var out []shape
		for _, dims := range facs {
			topo := chipletnet.NDMeshTopology(dims...)
			if kind == "ndtorus" {
				topo = chipletnet.NDTorusTopology(dims...)
			}
			out = append(out, shape{
				name:   fmt.Sprintf("%s-%s", kind, dimsName(dims)),
				topo:   topo,
				groups: 2 * len(dims),
			})
		}
		return out, ""
	case "hypercube":
		d := 0
		for 1<<uint(d) < n {
			d++
		}
		if 1<<uint(d) != n {
			return nil, fmt.Sprintf("%d chiplets is not a power of two", n)
		}
		return []shape{{
			name:   fmt.Sprintf("hypercube-2^%d", d),
			topo:   chipletnet.HypercubeTopology(d),
			groups: d,
		}}, ""
	case "dragonfly":
		if n%2 != 0 {
			return nil, fmt.Sprintf("%d chiplets is odd (label-consistent grouping needs an even count)", n)
		}
		return []shape{{
			name:   fmt.Sprintf("dragonfly-%d", n),
			topo:   chipletnet.DragonflyTopology(n),
			groups: n - 1,
		}}, ""
	case "tree":
		var out []shape
		for _, f := range s.TreeFanouts {
			out = append(out, shape{
				name:   fmt.Sprintf("tree-%d-fanout%d", n, f),
				topo:   chipletnet.TreeTopology(n, f),
				groups: f + 1,
			})
		}
		return out, ""
	}
	return nil, fmt.Sprintf("unknown topology kind %q", kind)
}

// crossPorts returns the maximum number of cross-linked interface nodes
// any chiplet of the shape uses, for the pin-budget check.
func crossPorts(geo chiplet.Geometry, topo chipletnet.Topology) int {
	ring := geo.RingLen()
	switch topo.Kind {
	case "mesh":
		// Stitched baseline: a full edge of W or H nodes per adjacent
		// chiplet; corner nodes serve two neighbors, so an interior
		// chiplet of a >= 3x3 grid drives 2W+2H cross links.
		cx, cy := topo.Dims[0], topo.Dims[1]
		nx, ny := min(cx-1, 2), min(cy-1, 2)
		return nx*geo.H + ny*geo.W
	case "dragonfly":
		// Ring position 0 is excluded from cross links by construction.
		return ring - 1
	case "tree":
		// An interior chiplet with a full complement of children links
		// every group; the root and leaves use fewer.
		return ring
	default:
		// Grouped regular topologies link every ring node.
		return ring
	}
}

// Enumerate expands the space into statically feasible candidates plus
// the pruned combinations with reasons. Both lists are deterministic:
// nested loops over the normalized axes in declaration order. Candidates
// are fully resolved against params (cycle counts, seed, pattern) so
// their content hash is the evaluation cache key.
func (s Space) Enumerate(p Params) (feasible []Candidate, pruned []Pruned, err error) {
	s, err = s.Normalize()
	if err != nil {
		return nil, nil, err
	}
	p = p.normalize()

	for _, kind := range s.Topologies {
		shapes, kindReason := s.shapes(kind)
		if kindReason != "" {
			pruned = append(pruned, Pruned{Name: kind, Reason: kindReason})
			continue
		}
		for _, sh := range shapes {
			for _, noc := range s.NoCs {
				geo, gerr := chiplet.New(noc[0], noc[1])
				if gerr != nil {
					return nil, nil, gerr
				}
				base := fmt.Sprintf("%s/noc%dx%d", sh.name, noc[0], noc[1])
				ring := geo.RingLen()
				if s.MaxPorts > 0 && ring > s.MaxPorts {
					pruned = append(pruned, Pruned{Name: base,
						Reason: fmt.Sprintf("%d interface ports exceed the %d-port cap", ring, s.MaxPorts)})
					continue
				}
				if sh.groups > ring {
					pruned = append(pruned, Pruned{Name: base,
						Reason: fmt.Sprintf("ring of %d interface nodes cannot form %d groups", ring, sh.groups)})
					continue
				}
				width := ring
				if sh.groups > 0 {
					width = ring / sh.groups
				}
				if s.MinGroupWidth > 1 && sh.groups > 0 && width < s.MinGroupWidth {
					pruned = append(pruned, Pruned{Name: base,
						Reason: fmt.Sprintf("group width %d below the required %d (no link redundancy)", width, s.MinGroupWidth)})
					continue
				}
				for _, bw := range s.OffChipBWs {
					ports := crossPorts(geo, sh.topo)
					pinBits := ports * bw * p.Base.FlitBits
					bwBase := fmt.Sprintf("%s/bw%d", base, bw)
					if s.PinBudgetBits > 0 && pinBits > s.PinBudgetBits {
						pruned = append(pruned, Pruned{Name: bwBase,
							Reason: fmt.Sprintf("%d bits/cycle of off-chip pins exceed the %d-bit budget", pinBits, s.PinBudgetBits)})
						continue
					}
					for _, routing := range s.Routings {
						if routing == RoutingEqualChannel && kind != "ndmesh" && kind != "ndtorus" {
							// The equal-channel mode only exists on nD-mesh/
							// torus interface segments; elsewhere it would
							// duplicate the adaptive candidate.
							continue
						}
						for _, il := range s.Interleavings {
							for _, wl := range s.Workloads {
								name := fmt.Sprintf("%s/noc%dx%d/%s/%s/bw%d", sh.name, noc[0], noc[1], routing, il, bw)
								if wl != "" {
									name += "/" + workloadAxisName(wl)
								}
								cand := Candidate{
									Name:       name,
									Routing:    routing,
									Groups:     sh.groups,
									GroupWidth: width,
									Ports:      ring,
									PinBits:    pinBits,
								}
								cfg := p.Base
								cfg.ChipletW, cfg.ChipletH = noc[0], noc[1]
								cfg.Topology = sh.topo
								cfg.OffChipBW = bw
								cfg.Interleave = il
								cfg.Pattern = s.Pattern
								cfg.Workload = wl
								cfg.WarmupCycles = p.WarmupCycles
								cfg.MeasureCycles = p.MeasureCycles
								cfg.Seed = p.Seed
								cfg.InjectionRate = 0
								switch routing {
								case RoutingMFR:
									cfg.Routing = chipletnet.RoutingSafeUnsafe
								case RoutingAdaptive:
									cfg.Routing = chipletnet.RoutingDuato
								case RoutingEqualChannel:
									cfg.Routing = chipletnet.RoutingDuato
									cfg.DisableNDMeshVCSeparation = true
									cfg.AllowUnsafeRouting = true
								}
								cand.Cfg = cfg
								feasible = append(feasible, cand)
							}
						}
					}
				}
			}
		}
	}
	sort.SliceStable(pruned, func(i, j int) bool { return pruned[i].Name < pruned[j].Name })
	return feasible, pruned, nil
}
