package dse

import (
	"fmt"
	"reflect"
	"testing"
)

// rec builds a minimal record for frontier tests. Name doubles as the
// key so the tie-break order is exercised.
func rec(name string, sat, zl, energy float64) Record {
	return Record{Key: name, Name: name, SatRate: sat, ZeroLoadLatency: zl, EnergyPJPerBit: energy}
}

func deadRec(name string, sat, zl, energy float64) Record {
	r := rec(name, sat, zl, energy)
	r.Deadlocked = true
	return r
}

func names(recs []Record) []string {
	out := []string{}
	for _, r := range recs {
		out = append(out, r.Name)
	}
	return out
}

func TestDominates(t *testing.T) {
	a := rec("a", 0.5, 40, 10)
	for _, tc := range []struct {
		name string
		b    Record
		aDb  bool // Dominates(a, b)
		bDa  bool // Dominates(b, a)
	}{
		{"identical vectors never dominate", rec("b", 0.5, 40, 10), false, false},
		{"strictly worse on all", rec("b", 0.3, 50, 12), true, false},
		{"worse on one, equal elsewhere", rec("b", 0.5, 41, 10), true, false},
		{"better on one, equal elsewhere", rec("b", 0.5, 39, 10), false, true},
		{"incomparable trade-off", rec("b", 0.8, 60, 10), false, false},
		{"deadlocked is dominated", deadRec("b", 0.9, 10, 1), true, false},
	} {
		if got := Dominates(a, tc.b); got != tc.aDb {
			t.Errorf("%s: Dominates(a, b) = %v, want %v", tc.name, got, tc.aDb)
		}
		if got := Dominates(tc.b, a); got != tc.bDa {
			t.Errorf("%s: Dominates(b, a) = %v, want %v", tc.name, got, tc.bDa)
		}
	}
	dead := deadRec("d", 0.9, 10, 1)
	if Dominates(dead, rec("x", 0.0, 999, 999)) {
		t.Error("a deadlocked record must not dominate anything")
	}
}

func TestFrontierTable(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   []Record
		want []string // frontier names in rank order
	}{
		{"empty", nil, []string{}},
		{"single", []Record{rec("a", 0.5, 40, 10)}, []string{"a"}},
		{
			"dominated point excluded",
			[]Record{rec("worse", 0.3, 50, 12), rec("best", 0.5, 40, 10)},
			[]string{"best"},
		},
		{
			"incomparable trade-offs all kept, ranked by saturation first",
			[]Record{rec("low-lat", 0.3, 20, 12), rec("high-sat", 0.8, 60, 15), rec("low-energy", 0.3, 30, 5)},
			[]string{"high-sat", "low-lat", "low-energy"},
		},
		{
			"identical vectors tie and both stay, name-ordered",
			[]Record{rec("twin-b", 0.5, 40, 10), rec("twin-a", 0.5, 40, 10)},
			[]string{"twin-a", "twin-b"},
		},
		{
			"deadlocked record excluded even with the best vector",
			[]Record{deadRec("dead", 0.9, 10, 1), rec("live", 0.1, 90, 50)},
			[]string{"live"},
		},
		{
			"chain of dominance keeps only the top",
			[]Record{rec("c", 0.2, 60, 30), rec("b", 0.4, 50, 20), rec("a", 0.6, 40, 10)},
			[]string{"a"},
		},
	} {
		got := Frontier(tc.in)
		if !reflect.DeepEqual(names(got), tc.want) {
			t.Errorf("%s: frontier = %v, want %v", tc.name, names(got), tc.want)
		}
		checkFrontierInvariants(t, tc.name, tc.in, got)
	}
}

// checkFrontierInvariants asserts the defining properties of an exact
// Pareto frontier over the input records.
func checkFrontierInvariants(t *testing.T, name string, in, frontier []Record) {
	t.Helper()
	// 1. No record dominates any frontier point, and no frontier point is
	//    deadlocked.
	for _, f := range frontier {
		if f.Deadlocked {
			t.Errorf("%s: deadlocked record %s on the frontier", name, f.Name)
		}
		for _, r := range in {
			if Dominates(r, f) {
				t.Errorf("%s: frontier point %s is dominated by %s", name, f.Name, r.Name)
			}
		}
	}
	// 2. Every live off-frontier record is dominated by some frontier point.
	on := map[string]bool{}
	for _, f := range frontier {
		on[f.Key] = true
	}
	for _, r := range in {
		if r.Deadlocked || on[r.Key] {
			continue
		}
		dominated := false
		for _, f := range frontier {
			if Dominates(f, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("%s: off-frontier record %s is not dominated by any frontier point", name, r.Name)
		}
	}
	// 3. The ranking is consistent: no later point orders before an
	//    earlier one.
	for i := 1; i < len(frontier); i++ {
		if frontierLess(frontier[i], frontier[i-1]) {
			t.Errorf("%s: frontier rank %d (%s) orders before rank %d (%s)",
				name, i+1, frontier[i].Name, i, frontier[i-1].Name)
		}
	}
}

// permutations of small slices for the determinism check.
func permute(recs []Record, k int) []Record {
	out := append([]Record(nil), recs...)
	// k selects one of len! permutations via the factorial number system.
	for i := range out {
		j := i + k%(len(out)-i)
		k /= max(1, len(out)-i)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func TestFrontierPermutationDeterminism(t *testing.T) {
	in := []Record{
		rec("a", 0.6, 40, 10),
		rec("b", 0.6, 40, 10), // tie with a
		rec("c", 0.8, 60, 15),
		rec("d", 0.2, 70, 30), // dominated
		deadRec("e", 0.9, 10, 1),
		rec("f", 0.6, 30, 20),
	}
	want := Frontier(in)
	for k := 0; k < 720; k++ {
		p := permute(in, k)
		if got := Frontier(p); !reflect.DeepEqual(got, want) {
			t.Fatalf("permutation %d: frontier %v, want %v", k, names(got), names(want))
		}
	}
}

func TestRankAllMarksFrontier(t *testing.T) {
	in := []Record{
		rec("dominated", 0.2, 60, 30),
		rec("best", 0.6, 40, 10),
		rec("trade-off", 0.8, 60, 15),
	}
	ranked, on := RankAll(in)
	if len(ranked) != len(in) || len(on) != len(in) {
		t.Fatalf("RankAll returned %d/%d entries for %d records", len(ranked), len(on), len(in))
	}
	wantOrder := []string{"trade-off", "best", "dominated"}
	if !reflect.DeepEqual(names(ranked), wantOrder) {
		t.Errorf("ranking = %v, want %v", names(ranked), wantOrder)
	}
	wantOn := []bool{true, true, false}
	if !reflect.DeepEqual(on, wantOn) {
		t.Errorf("frontier marks = %v, want %v", on, wantOn)
	}
}

// FuzzParetoFrontier decodes arbitrary bytes into a record set and
// checks the frontier invariants hold for every input: no dominated
// point on the frontier, every off-frontier point dominated by a
// frontier point, and permutation-independence of the result.
func FuzzParetoFrontier(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{7, 3, 1, 9, 7, 3, 1, 9, 2, 8, 0, 4, 5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Four bytes per record, quantized to small grids so dominance
		// and exact ties are both common.
		var in []Record
		for i := 0; i+4 <= len(data) && len(in) < 64; i += 4 {
			r := rec(fmt.Sprintf("r%02d", len(in)),
				float64(data[i]%5)*0.2,
				float64(data[i+1]%4)*10,
				float64(data[i+2]%4)*5)
			r.Deadlocked = data[i+3]%8 == 0
			in = append(in, r)
		}
		frontier := Frontier(in)
		checkFrontierInvariants(t, "fuzz", in, frontier)

		if len(in) > 1 {
			// Deterministic permutations derived from the input bytes.
			for _, k := range []int{1, int(data[0]) + 1, len(in)*7 + 3} {
				if got := Frontier(permute(in, k)); !reflect.DeepEqual(got, frontier) {
					t.Fatalf("permutation %d changed the frontier: %v vs %v", k, names(got), names(frontier))
				}
			}
		}

		// The input must be left untouched.
		for i, r := range in {
			want := fmt.Sprintf("r%02d", i)
			if r.Name != want {
				t.Fatalf("Frontier mutated its input: record %d is %q", i, r.Name)
			}
		}
	})
}
