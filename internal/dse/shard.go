package dse

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
)

// ShardN is the sharded cache's fan-out: one JSONL shard per first hex
// nibble of the SHA-256 content key. Sixteen shards keep any single
// append-only file small under parallel campaigns while the nibble →
// file mapping stays trivially stable (the key alphabet is lowercase
// hex, so ascending shard order is ascending key order).
const ShardN = 16

// shardFile names shard i inside a sharded-cache directory.
func shardFile(i int) string { return fmt.Sprintf("shard-%x.jsonl", i) }

// ShardIndex maps a content key to its shard: the value of the key's
// first hex digit. Keys are hex SHA-256 (see Key); anything else is
// rejected rather than silently misfiled. The mapping is the unit of
// work distribution: the coordinator partitions a campaign by shard, so
// every evaluation a worker produces lands in exactly one shard file and
// cross-machine merges never contend on a key range.
func ShardIndex(key string) (int, error) { return shardIndex(key) }

func shardIndex(key string) (int, error) {
	if key == "" {
		return 0, fmt.Errorf("dse: empty cache key")
	}
	c := key[0]
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0'), nil
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, nil
	}
	return 0, fmt.Errorf("dse: cache key %.12s is not hex", key)
}

// ShardedCache is the content-addressed evaluation store sharded by key
// prefix: a directory of ShardN append-only JSONL files, each with the
// single-file Cache's durability and self-healing guarantees. Sharding
// bounds per-file size and write contention under the campaign daemon's
// worker pool, and gives parallel machines a natural unit to exchange:
// Merge unions independently populated sharded caches into one.
//
// ShardedCache is safe for concurrent use.
type ShardedCache struct {
	dir    string
	shards [ShardN]*Cache
}

// OpenShardedCache opens (creating if needed) the sharded cache rooted
// at dir, loading and healing every shard.
func OpenShardedCache(dir string) (*ShardedCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("dse: sharded cache requires a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dse: sharded cache: %w", err)
	}
	s := &ShardedCache{dir: dir}
	for i := range s.shards {
		c, err := OpenCache(filepath.Join(dir, shardFile(i)))
		if err != nil {
			s.Close() // release the shards already opened
			return nil, err
		}
		s.shards[i] = c
	}
	return s, nil
}

// Dir returns the cache's root directory.
func (s *ShardedCache) Dir() string { return s.dir }

// Lookup returns the cached record for key.
func (s *ShardedCache) Lookup(key string) (Record, bool) {
	i, err := shardIndex(key)
	if err != nil {
		return Record{}, false
	}
	return s.shards[i].Lookup(key)
}

// Put stores rec in its key's shard, durably before returning.
func (s *ShardedCache) Put(rec Record) error {
	i, err := shardIndex(rec.Key)
	if err != nil {
		return err
	}
	return s.shards[i].Put(rec)
}

// Records returns every cached record in ascending key order. Shards
// partition the key space by first hex digit in file order, so the
// shard-by-shard concatenation is already globally sorted.
func (s *ShardedCache) Records() []Record {
	var out []Record
	for _, c := range s.shards {
		out = append(out, c.Records()...)
	}
	return out
}

// Len returns the number of cached records across all shards.
func (s *ShardedCache) Len() int {
	n := 0
	for _, c := range s.shards {
		n += c.Len()
	}
	return n
}

// Quarantined returns how many corrupt lines the open moved to .rej
// sidecars across all shards.
func (s *ShardedCache) Quarantined() int {
	n := 0
	for _, c := range s.shards {
		n += c.Quarantined()
	}
	return n
}

// Close closes every shard, joining any errors.
func (s *ShardedCache) Close() error {
	var errs []error
	for _, c := range s.shards {
		if c != nil {
			errs = append(errs, c.Close())
		}
	}
	return errors.Join(errs...)
}

// ErrConflict reports that a merge found two content-distinct records at
// the same content address — a violation of the determinism contract
// that callers must treat as data corruption, not as a retryable fault.
// Returned wrapped; test with errors.Is.
var ErrConflict = errors.New("dse: merge conflict")

// Merge unions the records of srcs into dst, deterministically: sources
// in argument order, each source's records in ascending key order. A key
// already present in dst must carry a content-identical record — two
// machines evaluating the same candidate produce bit-identical Records
// (the determinism contract), so duplicate keys dedupe silently; a
// content conflict means one side is lying and aborts the merge with an
// error naming the key. Returns the number of records newly added.
//
// Merging two independently populated caches and re-running the
// exploration against the union yields reports byte-identical to a
// single-machine run — the property the daemon's distributed campaigns
// rest on.
func Merge(dst Store, srcs ...Store) (added int, err error) {
	for si, src := range srcs {
		for _, rec := range src.Records() {
			prev, ok := dst.Lookup(rec.Key)
			if ok {
				if !reflect.DeepEqual(prev, rec) {
					return added, fmt.Errorf("%w on key %.12s (source %d, candidate %s): records differ for the same content address", ErrConflict, rec.Key, si, rec.Name)
				}
				continue
			}
			if err := dst.Put(rec); err != nil {
				return added, err
			}
			added++
		}
	}
	return added, nil
}

// OpenStore opens the evaluation store at path by shape: an empty path
// is a memory-only cache, an existing directory (or a path with a
// trailing separator) is a sharded cache, and anything else is a
// single-file JSONL cache.
func OpenStore(path string) (Store, error) {
	if path == "" {
		return OpenCache("")
	}
	if strings.HasSuffix(path, "/") || strings.HasSuffix(path, string(os.PathSeparator)) {
		return OpenShardedCache(path)
	}
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return OpenShardedCache(path)
	}
	return OpenCache(path)
}
