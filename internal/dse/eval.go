package dse

import (
	"context"
	"fmt"
	"math"
	"sort"

	"chipletnet"
	"chipletnet/internal/stats"
	"chipletnet/internal/verify"
)

// Params fixes how every candidate is measured. Candidates resolved
// under different Params hash to different cache keys.
type Params struct {
	// Base supplies the non-searched configuration fields (Table II
	// values from chipletnet.DefaultConfig unless overridden). The
	// search axes (topology, NoC, routing, interleave, off-chip BW,
	// pattern) and the fields below overwrite it per candidate.
	Base chipletnet.Config

	// WarmupCycles / MeasureCycles size every evaluation run.
	WarmupCycles  int64
	MeasureCycles int64

	// Rates is the ascending injection-rate ladder the sustainable load
	// is read from: the saturation rate of a candidate is the largest
	// ladder rate whose run did not saturate. The ladder replaces
	// per-candidate bisection so a whole exploration batches into
	// independent, cacheable, parallel runs.
	Rates []float64

	// ZeroLoadRate is the light-load probe rate for zero-load latency
	// and transport energy (a hop-count property).
	ZeroLoadRate float64

	// Seed makes every run reproducible (and is part of the cache key).
	Seed uint64
}

// DefaultParams returns an evaluation setup sized like the experiment
// suite's quick scale: minutes for a whole 16-chiplet exploration.
func DefaultParams() Params {
	return Params{
		WarmupCycles:  300,
		MeasureCycles: 1500,
		Rates:         []float64{0.05, 0.15, 0.3, 0.5, 0.8},
		ZeroLoadRate:  0.02,
		Seed:          1,
	}
}

// normalize fills zero fields from DefaultParams and DefaultConfig.
func (p Params) normalize() Params {
	def := DefaultParams()
	if p.Base.ChipletW == 0 {
		p.Base = chipletnet.DefaultConfig()
	}
	if p.WarmupCycles == 0 {
		p.WarmupCycles = def.WarmupCycles
	}
	if p.MeasureCycles == 0 {
		p.MeasureCycles = def.MeasureCycles
	}
	if len(p.Rates) == 0 {
		p.Rates = def.Rates
	} else {
		// Canonicalize the ladder: ascending order, so permuted rate
		// lists hash to the same cache key and results.
		p.Rates = append([]float64(nil), p.Rates...)
		sort.Float64s(p.Rates)
	}
	if p.ZeroLoadRate == 0 {
		p.ZeroLoadRate = def.ZeroLoadRate
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	return p
}

// LadderPoint is one rate of a candidate's evaluation ladder.
type LadderPoint struct {
	Rate       float64
	AvgLatency float64
	Accepted   float64 // flits/node/cycle
	Saturated  bool
}

// Record is the cached outcome of one candidate evaluation — everything
// a report or frontier extraction needs, with no wall-clock or
// machine-dependent content, so re-run reports are byte-identical.
type Record struct {
	// Key is the content address (Key(Cfg, Params)).
	Key  string
	Name string
	// Cfg is the fully-resolved configuration (InjectionRate 0).
	Cfg chipletnet.Config
	// Routing/Groups/GroupWidth/Ports/PinBits echo the Candidate.
	Routing    string
	Groups     int
	GroupWidth int
	Ports      int
	PinBits    int

	// SatRate is the largest ladder rate that did not saturate
	// (0 when even the lowest rate saturated).
	SatRate float64
	// ZeroLoadLatency is the average latency of the light-load probe.
	ZeroLoadLatency float64
	// EnergyPJPerBit is the transport energy estimate of the light-load
	// probe (internal/energy's §VII-A model over measured hop counts).
	EnergyPJPerBit float64
	// ZeroLoadOffChipHops is the mean off-chip hops at light load (the
	// pin-crossing count behind the energy figure).
	ZeroLoadOffChipHops float64
	// Ladder holds the per-rate measurements. For a non-synthetic
	// workload candidate (Cfg.Workload non-empty) the ladder is a single
	// point at rate 0: the source sets its own load.
	Ladder []LadderPoint
	// P99Latency is the probe run's 99th-percentile latency and Classes
	// its per-class QoS summaries (nil for synthetic candidates with no
	// classed traffic).
	P99Latency float64              `json:",omitempty"`
	Classes    []stats.ClassSummary `json:",omitempty"`

	// Deadlocked reports that the runtime watchdog fired on a candidate
	// the static pre-flight had certified — a cross-validation failure
	// that cmd/chipletdse surfaces with exit status 2. Diag carries the
	// watchdog's diagnostic snapshot as text.
	Deadlocked bool
	Diag       string `json:",omitempty"`

	// Cert is the content address of the pre-flight certificate
	// (verify.Certificate.Hash) of the candidate's routing structure,
	// recorded alongside the cache key: two candidates with the same Cert
	// were proved safe by the same traversal verdict.
	Cert string `json:",omitempty"`
}

// Rejected records a candidate the verify pre-flight refused: the
// certifying traversal found a fatal defect — a cyclic escape channel
// dependency graph, an unreachable pair, a livelock cycle, a dead-end
// state or a VC-discipline violation — so simulating it risks deadlock or
// non-termination. Reason carries the verifier's first concrete witness;
// Cert content-addresses the full failing certificate.
type Rejected struct {
	Name   string
	Reason string
	Cert   string `json:",omitempty"`
}

// Eval is one pending candidate evaluation.
type Eval struct {
	Candidate Candidate
	Params    Params
	Key       string
	// Cert is the pre-flight certificate hash (see Record.Cert).
	Cert string
}

// Run measures the candidate: the zero-load probe plus the rate ladder,
// executed in parallel through chipletnet.RunMany (the module root owns
// all goroutines; see cmd/chipletlint). The returned Record is
// independent of GOMAXPROCS and of the cycle-engine choice.
func (e Eval) Run() (Record, error) {
	return e.RunCtx(context.Background())
}

// RunCtx is Run under a context: a canceled context aborts the batch at
// the next cycle boundary with an error wrapping chipletnet.ErrCanceled,
// so daemon job deadlines and drains stop an evaluation cleanly
// mid-batch. A completed RunCtx record is identical to Run's.
func (e Eval) RunCtx(ctx context.Context) (Record, error) {
	p := e.Params
	// A non-synthetic workload source sets its own load, so the rate
	// ladder collapses to the single run (SatRate stays 0; such
	// candidates compare on latency, QoS and energy).
	ladderRates := p.Rates
	if e.Candidate.Cfg.Workload != "" {
		ladderRates = nil
	}
	cfgs := make([]chipletnet.Config, 0, 1+len(ladderRates))
	zero := e.Candidate.Cfg
	zero.InjectionRate = p.ZeroLoadRate
	if zero.Workload != "" {
		zero.InjectionRate = 0
	}
	cfgs = append(cfgs, zero)
	for _, r := range ladderRates {
		c := e.Candidate.Cfg
		c.InjectionRate = r
		cfgs = append(cfgs, c)
	}
	results, err := chipletnet.RunManyCtx(ctx, cfgs)
	if err != nil {
		return Record{}, fmt.Errorf("dse: evaluating %s: %w", e.Candidate.Name, err)
	}
	// A very light probe on a tiny network can deliver nothing inside the
	// measurement window (AvgLatency NaN); fall back to the lightest
	// ladder rate — the next-best zero-load estimate — so records stay
	// NaN-free (NaN breaks JSON reports and compares unequal to itself).
	probe := results[0]
	for i := 1; i < len(results) && math.IsNaN(probe.AvgLatency); i++ {
		probe = results[i]
	}
	if math.IsNaN(probe.AvgLatency) {
		probe.AvgLatency = 0
	}
	rec := Record{
		Key:        e.Key,
		Name:       e.Candidate.Name,
		Cfg:        e.Candidate.Cfg,
		Routing:    e.Candidate.Routing,
		Groups:     e.Candidate.Groups,
		GroupWidth: e.Candidate.GroupWidth,
		Ports:      e.Candidate.Ports,
		PinBits:    e.Candidate.PinBits,

		ZeroLoadLatency:     probe.AvgLatency,
		EnergyPJPerBit:      probe.EnergyPJPerBit,
		ZeroLoadOffChipHops: probe.AvgOffChipHops,
		Classes:             probe.Classes,
		Cert:                e.Cert,
	}
	if !math.IsNaN(probe.P99Latency) {
		rec.P99Latency = probe.P99Latency
	}
	for i, r := range ladderRates {
		res := results[1+i]
		lat := res.AvgLatency
		if math.IsNaN(lat) {
			lat = 0 // nothing delivered at this rate; see probe fallback
		}
		rec.Ladder = append(rec.Ladder, LadderPoint{
			Rate:       r,
			AvgLatency: lat,
			Accepted:   res.AcceptedFlitsPerNodeCycle,
			Saturated:  res.Saturated(),
		})
		if !res.Saturated() && r > rec.SatRate {
			rec.SatRate = r
		}
	}
	for _, res := range results {
		if res.Deadlocked {
			rec.Deadlocked = true
			if res.DeadlockReport != nil {
				rec.Diag = res.DeadlockReport.String()
			}
			break
		}
	}
	return rec, nil
}

// Plan is a resolved exploration: what was pruned, what verification
// rejected, what the cache already knows, and what still needs
// simulation.
type Plan struct {
	Space  Space
	Params Params

	// Candidates are the verified, statically feasible design points.
	Candidates []Candidate
	// Pruned are the statically infeasible combinations.
	Pruned []Pruned
	// Rejected are the candidates the verify pre-flight refused.
	Rejected []Rejected
	// Hits are the cached records of verified candidates.
	Hits []Record
	// Pending are the verified candidates with no cache entry.
	Pending []Eval
}

// preflightOptions bounds the static analysis. Design-space systems are
// small (tens of chiplets), so the sampled analysis is effectively
// exhaustive while staying cheap per distinct routing structure.
var preflightOptions = verify.Options{MaxDests: 16, MaxSources: 8}

// routingKey identifies the routing-relevant part of a config: verify
// verdicts are shared across candidates that differ only in interleave,
// bandwidth or workload.
func routingKey(cfg chipletnet.Config) string {
	return fmt.Sprintf("%s%v|%dx%d|vc%d|%s|sep%v|unsafe%v",
		cfg.Topology.Kind, cfg.Topology.Dims, cfg.ChipletW, cfg.ChipletH,
		cfg.VCs, cfg.Routing, cfg.DisableNDMeshVCSeparation, cfg.AllowUnsafeRouting)
}

// NewPlan enumerates the space, statically verifies every feasible
// candidate's routing (rejecting deadlock-prone designs with the
// verifier's witness), and partitions the survivors into cache hits and
// pending evaluations. NewPlan itself runs no simulation. The cache may
// be a single-file Cache or a ShardedCache.
func NewPlan(s Space, p Params, cache Store) (*Plan, error) {
	p = p.normalize()
	cands, pruned, err := s.Enumerate(p)
	if err != nil {
		return nil, err
	}
	norm, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	plan := &Plan{Space: norm, Params: p, Pruned: pruned}

	type verdict struct {
		reason string // "" when the pre-flight certified the structure
		cert   string // certificate content address (also for failures)
	}
	verdicts := map[string]verdict{} // per routingKey
	for _, cand := range cands {
		rk := routingKey(cand.Cfg)
		v, seen := verdicts[rk]
		if !seen {
			rep, err := chipletnet.VerifyConfig(cand.Cfg, preflightOptions)
			switch {
			case err != nil:
				v = verdict{reason: fmt.Sprintf("build failed: %v", err)}
			case rep.Err() != nil:
				v = verdict{reason: rep.Err().Error(), cert: rep.Certificate().Hash()}
			default:
				v = verdict{cert: rep.Certificate().Hash()}
			}
			verdicts[rk] = v
		}
		if v.reason != "" {
			plan.Rejected = append(plan.Rejected, Rejected{Name: cand.Name, Reason: v.reason, Cert: v.cert})
			continue
		}
		plan.Candidates = append(plan.Candidates, cand)
		key := Key(cand.Cfg, p)
		if rec, ok := cache.Lookup(key); ok {
			plan.Hits = append(plan.Hits, rec)
			continue
		}
		plan.Pending = append(plan.Pending, Eval{Candidate: cand, Params: p, Key: key, Cert: v.cert})
	}
	return plan, nil
}

// Outcome is a completed exploration: every record (cached + freshly
// measured) plus the extracted Pareto frontier.
type Outcome struct {
	Plan *Plan
	// Records holds one record per verified candidate, sorted by Name.
	Records []Record
	// Frontier is the exact Pareto frontier over (SatRate max,
	// ZeroLoadLatency min, EnergyPJPerBit min), ranked deterministically.
	Frontier []Record
	// Simulated / CacheHits count how the records were obtained.
	Simulated int
	CacheHits int
}

// Explore runs the whole pipeline sequentially: plan, evaluate every
// pending candidate (each evaluation's runs execute in parallel through
// the module root), cache the results, and extract the frontier.
// cmd/chipletdse replaces the sequential loop with a worker pool; the
// records and frontier are identical either way.
func Explore(s Space, p Params, cache Store) (*Outcome, error) {
	plan, err := NewPlan(s, p, cache)
	if err != nil {
		return nil, err
	}
	recs := append([]Record(nil), plan.Hits...)
	for _, e := range plan.Pending {
		rec, err := e.Run()
		if err != nil {
			return nil, err
		}
		if err := cache.Put(rec); err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return Collect(plan, recs)
}

// Collect assembles an Outcome from a plan and the full record set
// (cache hits plus evaluated pending candidates, in any order).
func Collect(plan *Plan, recs []Record) (*Outcome, error) {
	if len(recs) != len(plan.Candidates) {
		return nil, fmt.Errorf("dse: %d records for %d verified candidates", len(recs), len(plan.Candidates))
	}
	sorted := append([]Record(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	return &Outcome{
		Plan:      plan,
		Records:   sorted,
		Frontier:  Frontier(sorted),
		Simulated: len(plan.Pending),
		CacheHits: len(plan.Hits),
	}, nil
}
