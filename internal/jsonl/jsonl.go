// Package jsonl is the shared loader for the repository's append-only
// JSONL stores (the DSE evaluation cache shards, the daemon job journal).
// All of them follow the same crash-safety idiom — append one line, fsync,
// return — so they share one damage model and one repair:
//
//   - A final line without a trailing newline is the signature of a crash
//     mid-append. The entry was never acknowledged, so it is dropped.
//   - Any other unparseable line is real corruption (bit rot, a partial
//     write glued onto a later append, an editor accident). Instead of
//     refusing the whole file — or worse, silently losing every valid
//     entry after the first bad line — the bad lines are quarantined to a
//     `<file>.rej` sidecar and loading continues with the later entries.
//
// After quarantine the store file is rewritten atomically (temp file +
// rename, the internal/checkpoint idiom) containing only the valid lines,
// so appends resume on a clean file and a re-open quarantines nothing.
package jsonl

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// Load reads the append-only JSONL file at path and feeds every non-empty
// line to accept in file order. Lines accept rejects are quarantined to
// path+".rej"; a torn final line (crash mid-append) is dropped silently.
// If anything was dropped or quarantined, the file is rewritten in place
// (atomically) with only the accepted lines. A missing file loads as
// empty. The returned count is the number of quarantined lines.
func Load(path string, accept func(line []byte) error) (quarantined int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	if len(data) == 0 {
		return 0, nil
	}
	// A file not ending in '\n' lost the tail of its final append; the
	// entry was never acknowledged to its writer, so dropping it is not
	// data loss. The split below leaves the torn fragment as the last
	// element; cutting it here keeps it out of both the load and the
	// quarantine sidecar.
	torn := data[len(data)-1] != '\n'
	lines := bytes.Split(data, []byte("\n"))
	if torn {
		lines = lines[:len(lines)-1]
	}

	var valid, bad [][]byte
	for _, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if accept(line) != nil {
			bad = append(bad, line)
			continue
		}
		valid = append(valid, line)
	}
	quarantined = len(bad)
	if quarantined > 0 {
		if err := quarantine(path+".rej", bad); err != nil {
			return quarantined, fmt.Errorf("jsonl: quarantining %d corrupt lines of %s: %w", quarantined, path, err)
		}
	}
	if quarantined > 0 || torn {
		if err := rewrite(path, valid); err != nil {
			return quarantined, fmt.Errorf("jsonl: repairing %s: %w", path, err)
		}
	}
	return quarantined, nil
}

// quarantine appends lines to the .rej sidecar at path, skipping lines
// the sidecar already holds byte-for-byte. Quarantine must be idempotent:
// a crash between sidecar append and store repair — or any other reason
// the same corrupt lines are loaded twice — must not duplicate sidecar
// entries, or the evidence file grows without bound and "how much is
// damaged" becomes unanswerable.
func quarantine(path string, lines [][]byte) error {
	seen := map[string]bool{}
	if prev, err := os.ReadFile(path); err == nil {
		for _, line := range bytes.Split(prev, []byte("\n")) {
			if len(bytes.TrimSpace(line)) > 0 {
				seen[string(line)] = true
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	var fresh [][]byte
	for _, line := range lines {
		if seen[string(line)] {
			continue
		}
		seen[string(line)] = true // dedupe within the batch too
		fresh = append(fresh, line)
	}
	if len(fresh) == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	for _, line := range fresh {
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rewrite atomically replaces path with the given lines: the bytes go to
// a temp file in the same directory, are synced, and renamed over path,
// so a crash mid-repair leaves either the damaged original (repaired
// again on the next open) or the clean result — never a half-rewrite.
func rewrite(path string, lines [][]byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	for _, line := range lines {
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
