package jsonl

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type entry struct {
	K string
	V int
}

// loadEntries runs Load with a JSON-into-entry acceptor requiring a
// non-empty key, returning the accepted entries in order.
func loadEntries(t *testing.T, path string) ([]entry, int) {
	t.Helper()
	var out []entry
	q, err := Load(path, func(line []byte) error {
		var e entry
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		if e.K == "" {
			return os.ErrInvalid
		}
		out = append(out, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, q
}

func write(t *testing.T, path string, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	got, q := loadEntries(t, filepath.Join(t.TempDir(), "absent.jsonl"))
	if len(got) != 0 || q != 0 {
		t.Errorf("missing file loaded %d entries, %d quarantined", len(got), q)
	}
}

// TestLoadCorruptionMatrix walks every damage class in one file: clean
// lines, interior garbage, a structurally-valid-but-rejected line, blank
// lines, and a torn tail. Valid entries after the corruption must
// survive; the bad lines land in the sidecar; the repaired file reloads
// with zero further quarantine.
func TestLoadCorruptionMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	write(t, path,
		`{"K":"a","V":1}`+"\n"+
			"!!not json!!\n"+
			`{"K":"b","V":2}`+"\n"+
			"\n"+
			`{"V":3}`+"\n"+ // parses but fails validation (no key)
			`{"K":"c","V":4}`+"\n"+
			`{"K":"d","V":5`) // torn tail: crash mid-append

	got, q := loadEntries(t, path)
	want := []entry{{"a", 1}, {"b", 2}, {"c", 4}}
	if len(got) != len(want) {
		t.Fatalf("loaded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
	if q != 2 {
		t.Errorf("quarantined %d lines, want 2 (garbage + keyless)", q)
	}

	// The quarantine sidecar holds exactly the two corrupt lines; the
	// torn tail is dropped, not quarantined.
	rej, err := os.ReadFile(path + ".rej")
	if err != nil {
		t.Fatal(err)
	}
	if want := "!!not json!!\n" + `{"V":3}` + "\n"; string(rej) != want {
		t.Errorf("sidecar = %q, want %q", rej, want)
	}

	// The store file was repaired in place: only valid lines remain.
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(clean, []byte("not json")) || clean[len(clean)-1] != '\n' {
		t.Errorf("repaired file still damaged: %q", clean)
	}

	// Idempotence: a second load quarantines nothing and sees the same
	// entries.
	again, q2 := loadEntries(t, path)
	if q2 != 0 {
		t.Errorf("reload quarantined %d lines, want 0", q2)
	}
	if len(again) != len(want) {
		t.Errorf("reload got %d entries, want %d", len(again), len(want))
	}

	// Sidecar idempotence: the same corrupt lines loaded again — e.g. a
	// crash between the sidecar append and the in-place repair left the
	// store file damaged — must not duplicate the sidecar entries.
	appendRaw(t, path, "!!not json!!\n"+`{"V":3}`+"\n"+`{"K":"e","V":6}`+"\n")
	redo, q3 := loadEntries(t, path)
	if q3 != 2 {
		t.Errorf("re-corrupted load quarantined %d lines, want 2", q3)
	}
	if len(redo) != len(want)+1 {
		t.Errorf("re-corrupted load got %d entries, want %d", len(redo), len(want)+1)
	}
	rej2, err := os.ReadFile(path + ".rej")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rej2, rej) {
		t.Errorf("sidecar grew on repeated identical corruption:\n before %q\n after  %q", rej, rej2)
	}

	// A genuinely new corrupt line still lands in the sidecar.
	appendRaw(t, path, "!!different garbage!!\n")
	if _, q4 := loadEntries(t, path); q4 != 1 {
		t.Errorf("novel corruption quarantined %d lines, want 1", q4)
	}
	rej3, err := os.ReadFile(path + ".rej")
	if err != nil {
		t.Fatal(err)
	}
	if want := string(rej) + "!!different garbage!!\n"; string(rej3) != want {
		t.Errorf("sidecar after novel corruption = %q, want %q", rej3, want)
	}
}

func appendRaw(t *testing.T, path, data string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(data); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTornTailOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	write(t, path, `{"K":"a","V":1}`+"\n"+`{"K":"b"`)

	got, q := loadEntries(t, path)
	if len(got) != 1 || got[0].K != "a" || q != 0 {
		t.Errorf("got %v (quarantined %d), want just entry a with 0 quarantined", got, q)
	}
	if _, err := os.Stat(path + ".rej"); !os.IsNotExist(err) {
		t.Error("torn tail must not create a quarantine sidecar")
	}
	// Repair truncated the torn fragment so appends start clean.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"K":"a","V":1}`+"\n" {
		t.Errorf("repaired file = %q", data)
	}
}

func TestLoadCleanFileUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	content := `{"K":"a","V":1}` + "\n" + `{"K":"b","V":2}` + "\n"
	write(t, path, content)
	before, _ := os.Stat(path)

	got, q := loadEntries(t, path)
	if len(got) != 2 || q != 0 {
		t.Fatalf("got %d entries, %d quarantined", len(got), q)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if before.ModTime() != after.ModTime() || before.Size() != after.Size() {
		t.Error("clean file was rewritten; repair must only touch damaged files")
	}
}
