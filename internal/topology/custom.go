package topology

import (
	"fmt"
	"sort"

	"chipletnet/internal/chiplet"
)

// BuildCustom connects numChiplets chiplets into an arbitrary (irregular)
// chiplet-level graph given by an undirected edge list — the Fig. 6
// capability: after interface re-grouping, "heterogeneous networks such as
// the tree and even irregular networks can be connected".
//
// Each chiplet's interface ring is clustered into one contiguous group per
// graph neighbor (in ascending neighbor order); the two endpoint groups of
// an edge are paired slot by slot over their shared prefix. Ring position
// 0 carries no cross link (it is adjacent to no core).
//
// Irregular graphs have no label structure to build an MFR escape network
// on, so systems built here must be routed with the safe/unsafe flow
// control (Algorithm 5) — the routing factory enforces this.
func BuildCustom(geo chiplet.Geometry, numChiplets int, edges [][2]int, lp LinkParams) (*System, error) {
	if numChiplets < 2 {
		return nil, fmt.Errorf("topology: custom graph needs at least 2 chiplets, got %d", numChiplets)
	}
	// Neighbor sets.
	nbr := make([][]int, numChiplets)
	seen := map[[2]int]bool{}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		if a < 0 || b >= numChiplets || a == b {
			return nil, fmt.Errorf("topology: bad edge %v", e)
		}
		if seen[[2]int{a, b}] {
			return nil, fmt.Errorf("topology: duplicate edge %v", e)
		}
		seen[[2]int{a, b}] = true
		nbr[a] = append(nbr[a], b)
		nbr[b] = append(nbr[b], a)
	}
	maxDeg := 0
	for i, ns := range nbr {
		if len(ns) == 0 {
			return nil, fmt.Errorf("topology: chiplet %d has no edges", i)
		}
		sort.Ints(ns)
		if len(ns) > maxDeg {
			maxDeg = len(ns)
		}
	}
	if maxDeg >= geo.RingLen() {
		return nil, fmt.Errorf("topology: degree %d exceeds the %d-interface ring", maxDeg, geo.RingLen())
	}

	// The base system carries no uniform grouping; per-chiplet groupings
	// are assigned below.
	s, err := newSystem(Custom, geo, numChiplets, chiplet.Grouping{}, lp)
	if err != nil {
		return nil, err
	}
	s.ChipDims = []int{numChiplets}
	s.CustomNeighbors = nbr

	groupings := make([]chiplet.Grouping, numChiplets)
	for i := range s.Chiplets {
		s.Chiplets[i].Coord = []int{i}
		gr, err := chiplet.Group(geo.RingLen(), len(nbr[i]), false)
		if err != nil {
			return nil, fmt.Errorf("topology: chiplet %d: %w", i, err)
		}
		groupings[i] = gr
		s.Chiplets[i].Groups = make([][]int, gr.Groups())
		for pos := 0; pos < geo.RingLen(); pos++ {
			if g := gr.GroupOf(pos); g >= 0 {
				n := &s.Nodes[s.Chiplets[i].Ring[pos]]
				n.Group = g
				n.GroupSlot = pos - gr.Start[g]
			}
		}
	}

	// Canonical edges in deterministic order: iterating the dedup map
	// directly would assign link ids in map order, which varies run to
	// run and breaks simulation reproducibility.
	canonical := make([][2]int, 0, len(seen))
	for e := range seen {
		canonical = append(canonical, e)
	}
	sort.Slice(canonical, func(i, j int) bool {
		if canonical[i][0] != canonical[j][0] {
			return canonical[i][0] < canonical[j][0]
		}
		return canonical[i][1] < canonical[j][1]
	})

	// Pair each edge's endpoint groups slot by slot, skipping ring
	// position 0 on either side.
	for _, e := range canonical {
		a, b := e[0], e[1]
		ga := sort.SearchInts(nbr[a], b)
		gb := sort.SearchInts(nbr[b], a)
		aLo := groupings[a].Start[ga]
		bLo := groupings[b].Start[gb]
		links := min(groupings[a].Size[ga], groupings[b].Size[gb])
		for k := 0; k < links; k++ {
			if aLo+k == 0 || bLo+k == 0 {
				continue
			}
			s.addCrossPair(s.Chiplets[a].Ring[aLo+k], s.Chiplets[b].Ring[bLo+k])
		}
	}
	// Every edge must have produced at least one physical channel.
	for _, e := range canonical {
		a, b := e[0], e[1]
		ga := sort.SearchInts(nbr[a], b)
		if len(s.Chiplets[a].Groups[ga]) == 0 {
			return nil, fmt.Errorf("topology: edge %v has no usable interface slots", e)
		}
	}
	if err := s.wire(); err != nil {
		return nil, err
	}
	if _, connected := s.Diameter(); !connected {
		return nil, fmt.Errorf("topology: custom graph is not connected")
	}
	return s, nil
}
