package topology

import "testing"

func TestNDTorusStructure(t *testing.T) {
	s, err := BuildNDTorus(geo44(), []int{4, 3}, testLP())
	if err != nil {
		t.Fatal(err)
	}
	checkStructure(t, s)
	// Wrap channels halve the per-dimension distance:
	// mesh [4,3] diameter 3+2=5; torus floor(4/2)+floor(3/2)=3.
	if d := s.ChipletDiameter(); d != 3 {
		t.Errorf("chiplet diameter = %d, want 3", d)
	}
	mesh, err := BuildNDMesh(geo44(), []int{4, 3}, testLP())
	if err != nil {
		t.Fatal(err)
	}
	if mesh.ChipletDiameter() != 5 {
		t.Errorf("mesh chiplet diameter = %d, want 5", mesh.ChipletDiameter())
	}
	// Torus has one extra bidirectional channel bundle per row/column.
	if s.OffChipLinkCount() <= mesh.OffChipLinkCount() {
		t.Errorf("torus links %d not above mesh links %d", s.OffChipLinkCount(), mesh.OffChipLinkCount())
	}
	// No chiplet has an unlinked d+/d- group anymore (every dimension
	// wraps since all extents >= 3).
	for _, ch := range s.Chiplets {
		for g, members := range ch.Groups {
			if len(members) == 0 {
				t.Errorf("torus chiplet %d group %d unlinked", ch.Index, g)
			}
		}
	}
}

func TestNDTorusSkipsWrapForTinyDims(t *testing.T) {
	// Extent 2 already has a direct link; a wrap would duplicate it.
	s, err := BuildNDTorus(geo44(), []int{2, 4}, testLP())
	if err != nil {
		t.Fatal(err)
	}
	checkStructure(t, s)
	mesh, err := BuildNDMesh(geo44(), []int{2, 4}, testLP())
	if err != nil {
		t.Fatal(err)
	}
	// Only dimension 1 (extent 4) gains wrap channels.
	gained := s.OffChipLinkCount() - mesh.OffChipLinkCount()
	gr := s.Grouping
	perPair := gr.Size[2] * 2 * 2 // slots x 2 chiplet-columns x 2 directions
	if gained != perPair {
		t.Errorf("gained %d off-chip links, want %d", gained, perPair)
	}
}

// TestTable12DTorusFormula checks Table I's 2D-torus diameter sqrt(N) at
// the chiplet level for an 8x8 torus.
func TestTable12DTorusFormula(t *testing.T) {
	s, err := BuildNDTorus(geo44(), []int{8, 8}, testLP())
	if err != nil {
		t.Fatal(err)
	}
	if d := s.ChipletDiameter(); d != 8 {
		t.Errorf("8x8 torus chiplet diameter = %d, want sqrt(64) = 8", d)
	}
}
