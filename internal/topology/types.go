// Package topology builds complete multi-chiplet systems: it instantiates
// one router per NoC node, wires the on-chip 2D meshes, applies interface
// grouping, and connects chiplets into the paper's interconnection
// topologies — flat 2D-mesh (the baseline), nD-mesh, hypercube
// (Algorithm 1), dragonfly (fully connected), and tree (irregular).
//
// A System couples the router fabric with the structural metadata (labels,
// ring order, groups, chiplet coordinates) that the routing algorithms in
// internal/routing consume.
package topology

import (
	"fmt"

	"chipletnet/internal/chiplet"
	"chipletnet/internal/interleave"
	"chipletnet/internal/router"
)

// Kind identifies the chiplet-level interconnection topology.
type Kind int

const (
	// FlatMesh is the baseline: chiplets stitched edge-to-edge into one
	// large 2D mesh (every boundary node links to the facing boundary
	// node of the adjacent chiplet).
	FlatMesh Kind = iota
	// NDMesh connects chiplets into an n-dimensional mesh using 2n
	// interface groups per chiplet.
	NDMesh
	// Hypercube connects 2^n chiplets using n interface groups
	// (paper Algorithm 1).
	Hypercube
	// Dragonfly fully connects n+1 chiplets using n interface groups.
	Dragonfly
	// Tree connects chiplets into a rooted tree (an irregular topology,
	// Fig. 6) with one parent group and per-child groups.
	Tree
	// NDTorus is NDMesh plus per-dimension wrap-around channels
	// (Table I's 2D-torus, generalized). The wrap channels are used by
	// adaptive routing only; the escape sub-network stays on the mesh.
	NDTorus
	// Custom is an arbitrary chiplet-level graph from an edge list
	// (Fig. 6's irregular networks); requires safe/unsafe routing.
	Custom
)

func (k Kind) String() string {
	switch k {
	case FlatMesh:
		return "2D-mesh"
	case NDMesh:
		return "nD-mesh"
	case Hypercube:
		return "hypercube"
	case Dragonfly:
		return "dragonfly"
	case Tree:
		return "tree"
	case NDTorus:
		return "nD-torus"
	case Custom:
		return "custom"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dir is a port direction at a node.
type Dir uint8

const (
	DirLocal  Dir = iota
	DirXPlus      // +x within the chiplet mesh (or across, for FlatMesh)
	DirXMinus     // -x
	DirYPlus      // +y
	DirYMinus     // -y
	DirCross      // chiplet-to-chiplet interface port
	numDirs
)

func (d Dir) String() string {
	switch d {
	case DirLocal:
		return "local"
	case DirXPlus:
		return "x+"
	case DirXMinus:
		return "x-"
	case DirYPlus:
		return "y+"
	case DirYMinus:
		return "y-"
	case DirCross:
		return "cross"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// Port describes one (paired input+output) port of a node.
type Port struct {
	Dir     Dir
	To      int // neighbor node id; -1 for the local port
	OffChip bool
}

// Node is the structural metadata of one NoC node.
type Node struct {
	ID      int
	Chiplet int // chiplet index
	X, Y    int // position within the chiplet mesh
	// Label is the MFR routing label: x + y*W for cores, -(ringPos+1)
	// for interface nodes (§III-A).
	Label int
	// RingPos is the position on the chiplet's interface ring,
	// or -1 for core nodes.
	RingPos int
	// Group is the interface group index, or -1 (core or ungrouped IF).
	Group int
	// GroupSlot is the node's index within its group (used by network
	// interleaving to address physical interfaces), or -1.
	GroupSlot int
	// Ports lists the node's ports; the slice index equals the router's
	// port index.
	Ports []Port
}

// IsCore reports whether the node is an internal (core) node.
func (n *Node) IsCore() bool { return n.RingPos < 0 }

// Chiplet is the structural metadata of one chiplet instance.
type Chiplet struct {
	Index int
	// Coord is the chiplet's coordinate in the chiplet-level topology:
	// [cx, cy] for FlatMesh, mixed-radix digits for NDMesh, bits for
	// Hypercube, [i] for Dragonfly and Tree.
	Coord []int
	// Nodes maps local node index (y*W+x) to global node id.
	Nodes []int
	// Ring maps ring position to global node id.
	Ring []int
	// Groups maps group index to the member node ids in ring order.
	Groups [][]int
}

// LinkParams configures buffers and links (Table II defaults live in the
// root package).
type LinkParams struct {
	// VCs is the virtual channel count per (non-local) port.
	VCs int
	// InternalBufFlits / InterfaceBufFlits are per-VC input buffer
	// capacities for on-chip and chiplet-to-chiplet receivers.
	InternalBufFlits  int
	InterfaceBufFlits int
	// OnChipBW / OffChipBW are link bandwidths in flits/cycle.
	OnChipBW  int
	OffChipBW int
	// OnChipLatency / OffChipLatency are link latencies in cycles.
	OnChipLatency  int
	OffChipLatency int
	// EjectBW is the local sink consumption rate in flits/cycle.
	EjectBW int
}

// Validate checks the parameters for obvious misconfiguration.
func (lp LinkParams) Validate() error {
	switch {
	case lp.VCs < 1 || lp.VCs > 32:
		return fmt.Errorf("topology: VCs must be in [1,32], got %d", lp.VCs)
	case lp.InternalBufFlits < 1 || lp.InterfaceBufFlits < 1:
		return fmt.Errorf("topology: buffer sizes must be positive")
	case lp.OnChipBW < 1 || lp.OffChipBW < 1:
		return fmt.Errorf("topology: link bandwidths must be positive")
	case lp.OnChipLatency < 1 || lp.OffChipLatency < 1:
		return fmt.Errorf("topology: link latencies must be >= 1")
	case lp.EjectBW < 1:
		return fmt.Errorf("topology: ejection bandwidth must be positive")
	}
	return nil
}

// System is a fully built multi-chiplet network: the router fabric plus the
// structural metadata the routing algorithms need.
type System struct {
	Kind     Kind
	Geo      chiplet.Geometry
	Grouping chiplet.Grouping
	LP       LinkParams

	Fabric   *router.Fabric
	Nodes    []Node
	Chiplets []Chiplet

	// ChipDims is the chiplet-level dimension vector (see Chiplet.Coord).
	ChipDims []int

	// Cores lists all core node ids — the traffic endpoints.
	Cores []int

	// Tree-only: parent chiplet index (-1 for root) and children lists.
	Parent   []int
	Children [][]int

	// DragonflyColor[i][j] is the interface group index chiplet i uses to
	// reach chiplet j (a proper edge coloring of the complete graph), or
	// -1 on the diagonal. Nil for other kinds.
	DragonflyColor [][]int

	// CustomNeighbors[i] lists chiplet i's graph neighbors in ascending
	// order (Custom kind only); group g of chiplet i faces
	// CustomNeighbors[i][g].
	CustomNeighbors [][]int

	// BaseGroups, when non-nil, is the pre-fault snapshot of every
	// chiplet's group membership (BaseGroups[c][g] mirrors
	// Chiplets[c].Groups[g] as built). Taken by SnapshotGroups before the
	// first fault mutates Groups; routing compares against it to detect
	// packets rerouted by degradation.
	BaseGroups [][][]int

	// Condemned marks interface nodes removed from their group (no new
	// exit selections) but not yet decommissioned: the physical link still
	// works and serves as a fallback for packets that had already
	// committed to a ring ride past every surviving member. The fault
	// engine decommissions a condemned interface once no such stranded
	// traffic remains.
	Condemned map[int]bool
}

// NumChiplets returns the chiplet count.
func (s *System) NumChiplets() int { return len(s.Chiplets) }

// NodeID returns the global node id of (x, y) on chiplet c.
func (s *System) NodeID(c, x, y int) int { return s.Chiplets[c].Nodes[s.Geo.Index(x, y)] }

// PortTo returns the port index at node id leading to neighbor to,
// or -1 if not adjacent.
func (s *System) PortTo(id, to int) int {
	for i, p := range s.Nodes[id].Ports {
		if p.To == to {
			return i
		}
	}
	return -1
}

// MeshPort returns the port index of the given mesh direction at node id,
// or -1 if the node has no such port.
func (s *System) MeshPort(id int, d Dir) int {
	for i, p := range s.Nodes[id].Ports {
		if p.Dir == d {
			return i
		}
	}
	return -1
}

// CrossPort returns the index of the chiplet-to-chiplet port at node id,
// or -1.
func (s *System) CrossPort(id int) int {
	for i, p := range s.Nodes[id].Ports {
		if p.Dir == DirCross {
			return i
		}
	}
	return -1
}

// RingStep returns the node one step along the interface ring from id:
// toward increasing ring position (the minus direction) when minus is true,
// else toward decreasing position. It wraps around the ring.
func (s *System) RingStep(id int, minus bool) int {
	n := &s.Nodes[id]
	ring := s.Chiplets[n.Chiplet].Ring
	p := n.RingPos
	if p < 0 {
		panic(fmt.Sprintf("topology: RingStep on core node %d", id))
	}
	if minus {
		p = (p + 1) % len(ring)
	} else {
		p = (p - 1 + len(ring)) % len(ring)
	}
	return ring[p]
}

// GroupRange returns the inclusive ring-position bounds [lo, hi] of group g.
func (s *System) GroupRange(g int) (lo, hi int) {
	lo = s.Grouping.Start[g]
	return lo, lo + s.Grouping.Size[g] - 1
}

// ExitNode returns the node of group g on chiplet c selected by the
// interleave tag; tag < 0 selects slot 0.
func (s *System) ExitNode(c, g, tag int) int {
	members := s.Chiplets[c].Groups[g]
	return members[interleave.Index(len(members), tag)]
}

// GroupMaxExitPos returns the highest ring position at which group g of
// chiplet c still has a usable exit: surviving members plus condemned
// interfaces that remain physically usable as fallbacks. It panics if the
// group has no usable exit at all (a partition the fault API refuses to
// create).
func (s *System) GroupMaxExitPos(c, g int) int {
	max := -1
	for _, id := range s.Chiplets[c].Groups[g] {
		if p := s.Nodes[id].RingPos; p > max {
			max = p
		}
	}
	lo, hi := s.GroupRange(g)
	for p := lo; p <= hi; p++ {
		id := s.Chiplets[c].Ring[p]
		if s.Condemned[id] && p > max {
			max = p
		}
	}
	if max < 0 {
		panic(fmt.Sprintf("topology: group %d of chiplet %d has no usable exit", g, c))
	}
	return max
}

// FallbackExit returns the first usable exit of group g on chiplet c at
// ring position >= fromPos: a surviving member or a condemned-but-usable
// interface. It serves packets that committed to a minus-only ring ride
// before a failure removed the members they were heading for.
func (s *System) FallbackExit(c, g, fromPos int) (node int, ok bool) {
	lo, hi := s.GroupRange(g)
	if fromPos > lo {
		lo = fromPos
	}
	for p := lo; p <= hi; p++ {
		id := s.Chiplets[c].Ring[p]
		if s.Condemned[id] || s.memberOf(c, g, id) {
			return id, true
		}
	}
	return -1, false
}

// memberOf reports whether node id is currently a member of group g on
// chiplet c.
func (s *System) memberOf(c, g, id int) bool {
	for _, m := range s.Chiplets[c].Groups[g] {
		if m == id {
			return true
		}
	}
	return false
}
