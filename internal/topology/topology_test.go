package topology

import (
	"testing"

	"chipletnet/internal/chiplet"
)

func testLP() LinkParams {
	return LinkParams{
		VCs: 2, InternalBufFlits: 32, InterfaceBufFlits: 64,
		OnChipBW: 4, OffChipBW: 2, OnChipLatency: 1, OffChipLatency: 5,
		EjectBW: 4,
	}
}

func geo44() chiplet.Geometry { return chiplet.MustNew(4, 4) }

// checkStructure verifies invariants every built system must satisfy.
func checkStructure(t *testing.T, s *System) {
	t.Helper()
	// Every non-local port is linked, bidirectionally, with matching
	// off-chip flags.
	for id := range s.Nodes {
		n := &s.Nodes[id]
		for pi, p := range n.Ports {
			if p.Dir == DirLocal {
				if pi != 0 {
					t.Errorf("node %d: local port at index %d", id, pi)
				}
				continue
			}
			back := s.PortTo(p.To, id)
			if back < 0 {
				t.Fatalf("node %d port %d -> %d has no return port", id, pi, p.To)
			}
			bp := s.Nodes[p.To].Ports[back]
			if bp.OffChip != p.OffChip {
				t.Errorf("asymmetric off-chip flag on %d<->%d", id, p.To)
			}
			if p.OffChip != (s.Nodes[p.To].Chiplet != n.Chiplet) {
				t.Errorf("off-chip flag mismatch on %d->%d", id, p.To)
			}
		}
	}
	// Fabric link parameters follow the class.
	for _, l := range s.Fabric.Links {
		wantBW, wantLat := s.LP.OnChipBW, s.LP.OnChipLatency
		if l.OffChip {
			wantBW, wantLat = s.LP.OffChipBW, s.LP.OffChipLatency
		}
		if l.Bandwidth != wantBW || l.Latency != wantLat {
			t.Errorf("link %d (offchip=%v): bw/lat %d/%d", l.ID, l.OffChip, l.Bandwidth, l.Latency)
		}
	}
	// Connectivity.
	if _, conn := s.Diameter(); !conn {
		t.Error("network is not connected")
	}
	// Core enumeration matches geometry.
	want := s.NumChiplets() * s.Geo.CoreCount()
	if len(s.Cores) != want {
		t.Errorf("cores = %d, want %d", len(s.Cores), want)
	}
	for _, c := range s.Cores {
		if s.Nodes[c].RingPos >= 0 {
			t.Errorf("core list contains interface node %d", c)
		}
	}
}

func TestFlatMeshStructure(t *testing.T) {
	s, err := BuildFlatMesh(geo44(), 3, 2, testLP())
	if err != nil {
		t.Fatal(err)
	}
	checkStructure(t, s)
	if got := len(s.Nodes); got != 3*2*16 {
		t.Fatalf("nodes = %d", got)
	}
	// Off-chip links: vertical seams 2 * (4 wide * 2 rows) ... count:
	// horizontal seams: 2 seams * 2 rows * 4 nodes, each bidirectional.
	wantOff := (2*2*4 + 1*3*4) * 2
	if got := s.OffChipLinkCount(); got != wantOff {
		t.Errorf("off-chip links = %d, want %d", got, wantOff)
	}
	// Global coordinates are the stitched mesh coordinates.
	gx, gy := s.GlobalXY(s.NodeID(5, 3, 2)) // chiplet (2,1)
	if gx != 2*4+3 || gy != 1*4+2 {
		t.Errorf("GlobalXY = (%d,%d)", gx, gy)
	}
	// The stitched system behaves as a 12x8 global mesh: diameter matches
	// the 2D-mesh formula 2(sqrt(N)-1) generalized to (W-1)+(H-1).
	d, _ := s.Diameter()
	if d != 11+7 {
		t.Errorf("diameter = %d, want 18", d)
	}
}

func TestHypercubeStructure(t *testing.T) {
	s, err := BuildHypercube(geo44(), 4, testLP())
	if err != nil {
		t.Fatal(err)
	}
	checkStructure(t, s)
	if s.NumChiplets() != 16 {
		t.Fatalf("chiplets = %d", s.NumChiplets())
	}
	// Chiplet-level diameter must be log2(N) = 4 (Table I).
	if d := s.ChipletDiameter(); d != 4 {
		t.Errorf("chiplet diameter = %d, want 4", d)
	}
	// Algorithm 1: group j of chiplet i links to group j of i^(1<<j),
	// same ring position on both sides (label consistency).
	for id := range s.Nodes {
		n := &s.Nodes[id]
		cp := s.CrossPort(id)
		if n.Group < 0 {
			if cp >= 0 {
				t.Errorf("ungrouped node %d has a cross port", id)
			}
			continue
		}
		if cp < 0 {
			t.Errorf("grouped node %d lacks a cross port", id)
			continue
		}
		peer := s.Nodes[n.Ports[cp].To]
		if peer.RingPos != n.RingPos || peer.Label != n.Label {
			t.Errorf("cross link %d->%d changes label %d->%d", id, peer.ID, n.Label, peer.Label)
		}
		wantPartner := n.Chiplet ^ (1 << uint(n.Group))
		if peer.Chiplet != wantPartner {
			t.Errorf("node %d (chiplet %d group %d) crosses to chiplet %d, want %d",
				id, n.Chiplet, n.Group, peer.Chiplet, wantPartner)
		}
	}
}

func TestNDMeshStructure(t *testing.T) {
	s, err := BuildNDMesh(geo44(), []int{4, 4, 4}, testLP())
	if err != nil {
		t.Fatal(err)
	}
	checkStructure(t, s)
	if s.NumChiplets() != 64 {
		t.Fatalf("chiplets = %d", s.NumChiplets())
	}
	// Table I: nD-mesh chiplet diameter = sum (d_i - 1) = 9.
	if d := s.ChipletDiameter(); d != 9 {
		t.Errorf("chiplet diameter = %d, want 9", d)
	}
	// d+ groups link to the +neighbor's d- group in the same dimension.
	for id := range s.Nodes {
		n := &s.Nodes[id]
		cp := s.CrossPort(id)
		if cp < 0 {
			continue
		}
		peer := s.Nodes[n.Ports[cp].To]
		dim, plus := n.Group/2, n.Group%2 == 1
		pDim, pPlus := peer.Group/2, peer.Group%2 == 1
		if dim != pDim || plus == pPlus {
			t.Errorf("cross link joins group %d to group %d", n.Group, peer.Group)
		}
		myCo := s.Chiplets[n.Chiplet].Coord
		peCo := s.Chiplets[peer.Chiplet].Coord
		diff := peCo[dim] - myCo[dim]
		if (plus && diff != 1) || (!plus && diff != -1) {
			t.Errorf("group %d of chiplet %v links to %v", n.Group, myCo, peCo)
		}
	}
}

func TestNDMeshBorderChipletsHaveUnusedGroups(t *testing.T) {
	s, err := BuildNDMesh(geo44(), []int{2, 2}, testLP())
	if err != nil {
		t.Fatal(err)
	}
	// Chiplet (0,0): d0- and d1- groups unlinked.
	ch := &s.Chiplets[0]
	if len(ch.Groups[0]) != 0 || len(ch.Groups[2]) != 0 {
		t.Errorf("border chiplet has linked minus groups: %v", ch.Groups)
	}
	if len(ch.Groups[1]) == 0 || len(ch.Groups[3]) == 0 {
		t.Errorf("border chiplet lacks linked plus groups: %v", ch.Groups)
	}
}

func TestDragonflyStructure(t *testing.T) {
	s, err := BuildDragonfly(geo44(), 6, testLP())
	if err != nil {
		t.Fatal(err)
	}
	checkStructure(t, s)
	// Fully connected: chiplet diameter 1 (Table I: dragonfly diameter 1).
	if d := s.ChipletDiameter(); d != 1 {
		t.Errorf("chiplet diameter = %d, want 1", d)
	}
	// Color table: proper edge coloring, symmetric, complete.
	m := s.NumChiplets()
	for i := 0; i < m; i++ {
		seen := map[int]bool{}
		for j := 0; j < m; j++ {
			c := s.DragonflyColor[i][j]
			if i == j {
				if c != -1 {
					t.Errorf("diagonal color %d", c)
				}
				continue
			}
			if c < 0 || c >= m-1 || seen[c] {
				t.Errorf("bad/duplicate color %d at (%d,%d)", c, i, j)
			}
			if s.DragonflyColor[j][i] != c {
				t.Errorf("asymmetric color at (%d,%d)", i, j)
			}
			seen[c] = true
		}
	}
	// Cross links join same-color groups at the same ring position, and
	// never ring position 0.
	for id := range s.Nodes {
		n := &s.Nodes[id]
		cp := s.CrossPort(id)
		if cp < 0 {
			continue
		}
		if n.RingPos == 0 {
			t.Errorf("ring position 0 node %d has a cross link", id)
		}
		peer := s.Nodes[n.Ports[cp].To]
		if peer.Group != n.Group || peer.RingPos != n.RingPos {
			t.Errorf("cross link %d->%d: group %d->%d pos %d->%d",
				id, peer.ID, n.Group, peer.Group, n.RingPos, peer.RingPos)
		}
		if s.DragonflyColor[n.Chiplet][peer.Chiplet] != n.Group {
			t.Errorf("link color mismatch for %d->%d", id, peer.ID)
		}
	}
}

func TestDragonflyRejectsOdd(t *testing.T) {
	if _, err := BuildDragonfly(geo44(), 5, testLP()); err == nil {
		t.Error("odd dragonfly accepted")
	}
}

func TestTreeStructure(t *testing.T) {
	s, err := BuildTree(chiplet.MustNew(6, 6), 7, 2, testLP())
	if err != nil {
		t.Fatal(err)
	}
	checkStructure(t, s)
	// Heap-shaped parent pointers.
	for i := 1; i < 7; i++ {
		if s.Parent[i] != (i-1)/2 {
			t.Errorf("parent[%d] = %d", i, s.Parent[i])
		}
	}
	if s.Parent[0] != -1 {
		t.Error("root has a parent")
	}
	// Chiplet diameter of a 7-node balanced binary tree is 4.
	if d := s.ChipletDiameter(); d != 4 {
		t.Errorf("chiplet diameter = %d, want 4", d)
	}
}

func TestTableIDiameterOrdering(t *testing.T) {
	// Table I: for the same chiplet count, diameter(hypercube) <
	// diameter(3D-mesh) < diameter(2D-mesh). 64 chiplets:
	lp := testLP()
	flat, err := BuildFlatMesh(geo44(), 8, 8, lp)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := BuildHypercube(geo44(), 6, lp)
	if err != nil {
		t.Fatal(err)
	}
	mesh3, err := BuildNDMesh(geo44(), []int{4, 4, 4}, lp)
	if err != nil {
		t.Fatal(err)
	}
	dFlat := flat.ChipletDiameter()
	dCube := cube.ChipletDiameter()
	dMesh3 := mesh3.ChipletDiameter()
	if dFlat != 14 { // 2(sqrt(64)-1)
		t.Errorf("2D chiplet diameter = %d, want 14", dFlat)
	}
	if dMesh3 != 9 { // 3(cbrt(64)-1)
		t.Errorf("3D chiplet diameter = %d, want 9", dMesh3)
	}
	if dCube != 6 { // log2(64)
		t.Errorf("hypercube chiplet diameter = %d, want 6", dCube)
	}
	if !(dCube < dMesh3 && dMesh3 < dFlat) {
		t.Errorf("diameter ordering violated: %d %d %d", dCube, dMesh3, dFlat)
	}
}

func TestRingStepWraps(t *testing.T) {
	s, err := BuildHypercube(geo44(), 2, testLP())
	if err != nil {
		t.Fatal(err)
	}
	ring := s.Chiplets[0].Ring
	last := ring[len(ring)-1]
	if got := s.RingStep(last, true); got != ring[0] {
		t.Errorf("minus step from end = %d, want %d", got, ring[0])
	}
	if got := s.RingStep(ring[0], false); got != last {
		t.Errorf("plus step from start = %d, want %d", got, last)
	}
}

func TestExitNodeTagSelection(t *testing.T) {
	s, err := BuildHypercube(geo44(), 4, testLP())
	if err != nil {
		t.Fatal(err)
	}
	members := s.Chiplets[0].Groups[1]
	if len(members) < 2 {
		t.Fatalf("group too small: %v", members)
	}
	if s.ExitNode(0, 1, -1) != members[0] {
		t.Error("tag -1 must select slot 0")
	}
	if s.ExitNode(0, 1, 1) != members[1] {
		t.Error("tag 1 must select slot 1")
	}
	if s.ExitNode(0, 1, len(members)) != members[0] {
		t.Error("tags wrap modulo group size")
	}
}

func TestLinkParamsValidate(t *testing.T) {
	good := testLP()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LinkParams{
		{}, // all zero
		{VCs: 40, InternalBufFlits: 1, InterfaceBufFlits: 1, OnChipBW: 1, OffChipBW: 1, OnChipLatency: 1, OffChipLatency: 1, EjectBW: 1},
		{VCs: 2, InternalBufFlits: 0, InterfaceBufFlits: 1, OnChipBW: 1, OffChipBW: 1, OnChipLatency: 1, OffChipLatency: 1, EjectBW: 1},
		{VCs: 2, InternalBufFlits: 1, InterfaceBufFlits: 1, OnChipBW: 0, OffChipBW: 1, OnChipLatency: 1, OffChipLatency: 1, EjectBW: 1},
		{VCs: 2, InternalBufFlits: 1, InterfaceBufFlits: 1, OnChipBW: 1, OffChipBW: 1, OnChipLatency: 0, OffChipLatency: 1, EjectBW: 1},
	}
	for i, lp := range bad {
		if err := lp.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestBuilderRejections(t *testing.T) {
	lp := testLP()
	if _, err := BuildFlatMesh(geo44(), 0, 2, lp); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := BuildHypercube(geo44(), 0, lp); err == nil {
		t.Error("0-dim hypercube accepted")
	}
	if _, err := BuildNDMesh(geo44(), nil, lp); err == nil {
		t.Error("empty ndmesh dims accepted")
	}
	if _, err := BuildNDMesh(geo44(), []int{4, 0}, lp); err == nil {
		t.Error("zero ndmesh dim accepted")
	}
	if _, err := BuildTree(geo44(), 1, 2, lp); err == nil {
		t.Error("single-chiplet tree accepted")
	}
	// 4x4 ring (12 IFs) cannot host 13 dragonfly peers (12 groups needed
	// means one group per node; rejected by the grouping invariant).
	if _, err := BuildDragonfly(geo44(), 14, lp); err == nil {
		t.Error("oversubscribed dragonfly accepted")
	}
}
