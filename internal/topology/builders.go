package topology

import (
	"fmt"

	"chipletnet/internal/chiplet"
)

// BuildFlatMesh builds the baseline: a cx × cy grid of chiplets stitched
// edge-to-edge into one large 2D mesh. Every boundary node links to the
// facing boundary node of the adjacent chiplet over an off-chip link, so
// the system behaves as a (cx·W) × (cy·H) global mesh with non-uniform
// links — the interconnection style of Simba, Dojo and the other flat
// multi-chiplet systems the paper compares against.
func BuildFlatMesh(geo chiplet.Geometry, cx, cy int, lp LinkParams) (*System, error) {
	if cx < 1 || cy < 1 {
		return nil, fmt.Errorf("topology: flat mesh needs positive grid, got %dx%d", cx, cy)
	}
	s, err := newSystem(FlatMesh, geo, cx*cy, chiplet.Grouping{}, lp)
	if err != nil {
		return nil, err
	}
	s.ChipDims = []int{cx, cy}
	for j := 0; j < cy; j++ {
		for i := 0; i < cx; i++ {
			c := j*cx + i
			s.Chiplets[c].Coord = []int{i, j}
			// Stitch to the +x neighbor chiplet.
			if i+1 < cx {
				right := j*cx + (i + 1)
				for y := 0; y < geo.H; y++ {
					a := s.NodeID(c, geo.W-1, y)
					b := s.NodeID(right, 0, y)
					s.addCrossPort(a, b, DirXPlus)
					s.addCrossPort(b, a, DirXMinus)
				}
			}
			// Stitch to the +y neighbor chiplet.
			if j+1 < cy {
				up := (j+1)*cx + i
				for x := 0; x < geo.W; x++ {
					a := s.NodeID(c, x, geo.H-1)
					b := s.NodeID(up, x, 0)
					s.addCrossPort(a, b, DirYPlus)
					s.addCrossPort(b, a, DirYMinus)
				}
			}
		}
	}
	if err := s.wire(); err != nil {
		return nil, err
	}
	return s, nil
}

// GlobalXY returns a node's coordinates in the stitched global mesh
// (FlatMesh only).
func (s *System) GlobalXY(id int) (gx, gy int) {
	n := &s.Nodes[id]
	co := s.Chiplets[n.Chiplet].Coord
	return co[0]*s.Geo.W + n.X, co[1]*s.Geo.H + n.Y
}

// GlobalDims returns the stitched global mesh dimensions (FlatMesh only).
func (s *System) GlobalDims() (w, h int) {
	return s.ChipDims[0] * s.Geo.W, s.ChipDims[1] * s.Geo.H
}

// BuildHypercube connects 2^n chiplets into a hypercube per Algorithm 1:
// the interface ring is clustered into n groups, the group index is the
// hypercube dimension, and each chiplet's group j links pairwise (slot by
// slot, preserving labels) to group j of the chiplet whose coordinate
// differs in bit j.
func BuildHypercube(geo chiplet.Geometry, n int, lp LinkParams) (*System, error) {
	if n < 1 || n > 20 {
		return nil, fmt.Errorf("topology: hypercube dimension must be in [1,20], got %d", n)
	}
	gr, err := chiplet.Group(geo.RingLen(), n, false)
	if err != nil {
		return nil, err
	}
	num := 1 << uint(n)
	s, err := newSystem(Hypercube, geo, num, gr, lp)
	if err != nil {
		return nil, err
	}
	s.ChipDims = make([]int, n)
	for j := range s.ChipDims {
		s.ChipDims[j] = 2
	}
	for i := 0; i < num; i++ {
		co := make([]int, n)
		for j := 0; j < n; j++ {
			co[j] = (i >> uint(j)) & 1
		}
		s.Chiplets[i].Coord = co
	}
	for i := 0; i < num; i++ {
		for j := 0; j < n; j++ {
			partner := i ^ (1 << uint(j))
			if partner < i {
				continue // each unordered pair once
			}
			lo, hi := s.GroupRange(j)
			for pos := lo; pos <= hi; pos++ {
				s.addCrossPair(s.Chiplets[i].Ring[pos], s.Chiplets[partner].Ring[pos])
			}
		}
	}
	if err := s.wire(); err != nil {
		return nil, err
	}
	return s, nil
}

// BuildNDMesh connects prod(dims) chiplets into an n-dimensional mesh. The
// ring is clustered into 2n pair-equal groups; group 2j faces the d_j-
// direction and group 2j+1 the d_j+ direction, so each chiplet-to-chiplet
// link joins the positive and negative interfaces of adjacent chiplets in
// the same dimension (§III-C, Fig. 5).
func BuildNDMesh(geo chiplet.Geometry, dims []int, lp LinkParams) (*System, error) {
	return buildNDMeshLike(NDMesh, geo, dims, lp)
}

// BuildNDTorus connects chiplets like BuildNDMesh and adds, for every
// dimension of extent >= 3, a wrap-around channel joining the last
// chiplet's d+ group to the first chiplet's d- group. The wrap channels
// halve the chiplet-level diameter (Table I: 2D-torus diameter sqrt(N));
// the routing layer uses them adaptively only, keeping the mesh escape
// sub-network intact.
func BuildNDTorus(geo chiplet.Geometry, dims []int, lp LinkParams) (*System, error) {
	return buildNDMeshLike(NDTorus, geo, dims, lp)
}

func buildNDMeshLike(kind Kind, geo chiplet.Geometry, dims []int, lp LinkParams) (*System, error) {
	if len(dims) < 1 {
		return nil, fmt.Errorf("topology: %v needs at least one dimension", kind)
	}
	num := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("topology: %v dimensions must be positive, got %v", kind, dims)
		}
		num *= d
	}
	n := len(dims)
	gr, err := chiplet.Group(geo.RingLen(), 2*n, true)
	if err != nil {
		return nil, err
	}
	s, err := newSystem(kind, geo, num, gr, lp)
	if err != nil {
		return nil, err
	}
	s.ChipDims = append([]int(nil), dims...)
	for i := 0; i < num; i++ {
		s.Chiplets[i].Coord = mixedRadix(i, dims)
	}
	for i := 0; i < num; i++ {
		co := s.Chiplets[i].Coord
		for j := 0; j < n; j++ {
			var partner int
			switch {
			case co[j]+1 < dims[j]:
				partner = i + strideOf(dims, j)
			case kind == NDTorus && dims[j] >= 3:
				// Wrap-around: the last chiplet of the dimension links
				// back to the first.
				partner = i - (dims[j]-1)*strideOf(dims, j)
			default:
				continue
			}
			// My d_j+ group (2j+1) links slot-by-slot to the
			// partner's d_j- group (2j).
			plusLo, _ := s.GroupRange(2*j + 1)
			minusLo, _ := s.GroupRange(2 * j)
			for k := 0; k < gr.Size[2*j]; k++ {
				s.addCrossPair(
					s.Chiplets[i].Ring[plusLo+k],
					s.Chiplets[partner].Ring[minusLo+k])
			}
		}
	}
	if err := s.wire(); err != nil {
		return nil, err
	}
	return s, nil
}

// mixedRadix decomposes i into digits over dims (dims[0] fastest).
func mixedRadix(i int, dims []int) []int {
	co := make([]int, len(dims))
	for j, d := range dims {
		co[j] = i % d
		i /= d
	}
	return co
}

// strideOf returns the chiplet-index stride of dimension j.
func strideOf(dims []int, j int) int {
	st := 1
	for k := 0; k < j; k++ {
		st *= dims[k]
	}
	return st
}

// ChipletIndex returns the chiplet index of a coordinate vector.
func (s *System) ChipletIndex(co []int) int {
	switch s.Kind {
	case Hypercube:
		i := 0
		for j, b := range co {
			i |= b << uint(j)
		}
		return i
	case NDMesh, NDTorus, FlatMesh:
		i, st := 0, 1
		for j, d := range s.ChipDims {
			i += co[j] * st
			st *= d
		}
		return i
	default:
		return co[0]
	}
}

// BuildDragonfly fully connects m chiplets (a dragonfly with one chiplet
// per group in the paper's sense). Interface groups are assigned by a
// proper edge coloring of K_m so that the two endpoint groups of every
// chiplet-to-chiplet channel carry the same color label. m must be even
// (an m-vertex complete graph is (m-1)-edge-colorable only when m is even)
// and each chiplet needs m-1 groups.
func BuildDragonfly(geo chiplet.Geometry, m int, lp LinkParams) (*System, error) {
	if m < 2 {
		return nil, fmt.Errorf("topology: dragonfly needs at least 2 chiplets, got %d", m)
	}
	if m%2 != 0 {
		return nil, fmt.Errorf("topology: dragonfly chiplet count must be even for label-consistent grouping, got %d", m)
	}
	n := m - 1 // groups per chiplet == colors
	gr, err := chiplet.Group(geo.RingLen(), n, false)
	if err != nil {
		return nil, err
	}
	s, err := newSystem(Dragonfly, geo, m, gr, lp)
	if err != nil {
		return nil, err
	}
	s.ChipDims = []int{m}
	s.DragonflyColor = make([][]int, m)
	for i := 0; i < m; i++ {
		s.Chiplets[i].Coord = []int{i}
		s.DragonflyColor[i] = make([]int, m)
		for j := range s.DragonflyColor[i] {
			s.DragonflyColor[i][j] = -1
		}
	}
	// Round-robin 1-factorization of K_m: vertices 0..m-2 on a circle,
	// vertex m-1 in the center. Color c pairs {m-1, c} and every {i, j}
	// with i+j ≡ 2c (mod m-1).
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			var c int
			if j == m-1 {
				c = (2 * i) % (m - 1)
			} else {
				c = (i + j) % (m - 1)
			}
			s.DragonflyColor[i][j] = c
			s.DragonflyColor[j][i] = c
			lo, hi := s.GroupRange(c)
			for pos := lo; pos <= hi; pos++ {
				if pos == 0 {
					// Ring position 0 — node (0,0) — is excluded from
					// cross links: it is adjacent to no core, so packets
					// arriving there could not enter the core mesh
					// without an extra ring turn.
					continue
				}
				s.addCrossPair(s.Chiplets[i].Ring[pos], s.Chiplets[j].Ring[pos])
			}
		}
	}
	// Every group must retain at least one linked interface.
	for g := 0; g < n; g++ {
		if len(s.Chiplets[0].Groups[g]) == 0 {
			return nil, fmt.Errorf("topology: dragonfly group %d has no usable interface (ring too small for %d chiplets)", g, m)
		}
	}
	if err := s.wire(); err != nil {
		return nil, err
	}
	return s, nil
}

// BuildTree connects numChiplets chiplets into a rooted tree with the given
// fan-out (an irregular topology, Fig. 6): chiplet 0 is the root and the
// parent of chiplet i is (i-1)/fanout. The ring is clustered into fanout+1
// groups; groups 0..fanout-1 face the children and the last group faces the
// parent, placed at the high end of the ring so that upward traffic rides
// the minus direction and downward traffic the plus direction.
func BuildTree(geo chiplet.Geometry, numChiplets, fanout int, lp LinkParams) (*System, error) {
	if numChiplets < 2 {
		return nil, fmt.Errorf("topology: tree needs at least 2 chiplets, got %d", numChiplets)
	}
	if fanout < 1 {
		return nil, fmt.Errorf("topology: tree fan-out must be positive, got %d", fanout)
	}
	gr, err := chiplet.Group(geo.RingLen(), fanout+1, false)
	if err != nil {
		return nil, err
	}
	s, err := newSystem(Tree, geo, numChiplets, gr, lp)
	if err != nil {
		return nil, err
	}
	s.ChipDims = []int{numChiplets}
	s.Parent = make([]int, numChiplets)
	s.Children = make([][]int, numChiplets)
	s.Parent[0] = -1
	for i := range s.Chiplets {
		s.Chiplets[i].Coord = []int{i}
	}
	parentGroup := fanout
	for i := 1; i < numChiplets; i++ {
		p := (i - 1) / fanout
		childIdx := (i - 1) % fanout
		s.Parent[i] = p
		s.Children[p] = append(s.Children[p], i)
		// Parent's child-group childIdx links to child's parent group;
		// the groups may differ in size, so pair the shared prefix.
		cLo, _ := s.GroupRange(childIdx)
		pLo, _ := s.GroupRange(parentGroup)
		links := min(gr.Size[childIdx], gr.Size[parentGroup])
		for k := 0; k < links; k++ {
			if cLo+k == 0 {
				// Ring position 0 — node (0,0) — carries no cross link:
				// arrivals there could not reach a core entry by the
				// plus-only destination rides the tree discipline needs.
				continue
			}
			s.addCrossPair(s.Chiplets[p].Ring[cLo+k], s.Chiplets[i].Ring[pLo+k])
		}
	}
	if err := s.wire(); err != nil {
		return nil, err
	}
	return s, nil
}
