package topology

import "testing"

// petersen-ish irregular graph on 6 chiplets.
func irregularEdges() [][2]int {
	return [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 5}, {2, 5}}
}

func TestBuildCustomStructure(t *testing.T) {
	s, err := BuildCustom(geo44(), 6, irregularEdges(), testLP())
	if err != nil {
		t.Fatal(err)
	}
	checkStructure(t, s)
	// Degrees: 0:{1,4,5}=3, 1:{0,2}=2, 2:{1,3,5}=3, 3:{2,4}=2, 4:{0,3}=2, 5:{0,2}=2.
	wantDeg := []int{3, 2, 3, 2, 2, 2}
	for i, ns := range s.CustomNeighbors {
		if len(ns) != wantDeg[i] {
			t.Errorf("chiplet %d degree %d, want %d", i, len(ns), wantDeg[i])
		}
		if len(s.Chiplets[i].Groups) != len(ns) {
			t.Errorf("chiplet %d has %d groups for %d neighbors", i, len(s.Chiplets[i].Groups), len(ns))
		}
	}
	// Each cross link joins the right chiplet pair per the group-neighbor
	// mapping, and never ring position 0.
	for id := range s.Nodes {
		n := &s.Nodes[id]
		cp := s.CrossPort(id)
		if cp < 0 {
			continue
		}
		if n.RingPos == 0 {
			t.Errorf("ring position 0 node %d has a cross link", id)
		}
		peer := s.Nodes[n.Ports[cp].To]
		if s.CustomNeighbors[n.Chiplet][n.Group] != peer.Chiplet {
			t.Errorf("node %d group %d crosses to chiplet %d, want %d",
				id, n.Group, peer.Chiplet, s.CustomNeighbors[n.Chiplet][n.Group])
		}
	}
}

func TestBuildCustomRejections(t *testing.T) {
	lp := testLP()
	if _, err := BuildCustom(geo44(), 1, nil, lp); err == nil {
		t.Error("single chiplet accepted")
	}
	if _, err := BuildCustom(geo44(), 3, [][2]int{{0, 1}}, lp); err == nil {
		t.Error("disconnected graph accepted (chiplet 2 isolated)")
	}
	if _, err := BuildCustom(geo44(), 3, [][2]int{{0, 1}, {0, 1}, {1, 2}}, lp); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := BuildCustom(geo44(), 3, [][2]int{{0, 0}, {1, 2}}, lp); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := BuildCustom(geo44(), 3, [][2]int{{0, 5}, {1, 2}}, lp); err == nil {
		t.Error("out-of-range edge accepted")
	}
	// Degree equal to the ring size cannot be grouped.
	var star [][2]int
	for i := 1; i <= 12; i++ {
		star = append(star, [2]int{0, i})
	}
	if _, err := BuildCustom(geo44(), 13, star, lp); err == nil {
		t.Error("degree-12 chiplet accepted on a 12-interface ring")
	}
}

func TestBuildCustomDisconnectedComponentRejected(t *testing.T) {
	// Two disjoint pairs.
	if _, err := BuildCustom(geo44(), 4, [][2]int{{0, 1}, {2, 3}}, testLP()); err == nil {
		t.Error("disconnected custom graph accepted")
	}
}
