package topology

// Neighbors returns the node ids adjacent to id (excluding the local port).
func (s *System) Neighbors(id int) []int {
	var out []int
	for _, p := range s.Nodes[id].Ports {
		if p.Dir != DirLocal {
			out = append(out, p.To)
		}
	}
	return out
}

// bfs fills dist (len == node count, -1 = unreachable) with hop distances
// from src over the node graph.
func (s *System) bfs(src int, dist []int) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, p := range s.Nodes[v].Ports {
			if p.Dir == DirLocal {
				continue
			}
			if dist[p.To] < 0 {
				dist[p.To] = dist[v] + 1
				queue = append(queue, p.To)
			}
		}
	}
}

// Diameter returns the node-level network diameter (maximum over all pairs
// of the shortest hop distance) and whether the network is connected.
func (s *System) Diameter() (d int, connected bool) {
	dist := make([]int, len(s.Nodes))
	connected = true
	for src := range s.Nodes {
		s.bfs(src, dist)
		for _, dd := range dist {
			if dd < 0 {
				connected = false
				continue
			}
			if dd > d {
				d = dd
			}
		}
	}
	return d, connected
}

// ChipletDiameter returns the chiplet-level diameter: the maximum over all
// chiplet pairs of the minimum number of chiplet-to-chiplet hops.
func (s *System) ChipletDiameter() int {
	m := s.NumChiplets()
	adj := make([][]int, m)
	seen := make([]map[int]bool, m)
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	for id := range s.Nodes {
		c := s.Nodes[id].Chiplet
		for _, p := range s.Nodes[id].Ports {
			if !p.OffChip {
				continue
			}
			pc := s.Nodes[p.To].Chiplet
			if pc != c && !seen[c][pc] {
				seen[c][pc] = true
				adj[c] = append(adj[c], pc)
			}
		}
	}
	diam := 0
	dist := make([]int, m)
	for src := 0; src < m; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		q := []int{src}
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					q = append(q, w)
				}
			}
		}
		for _, dd := range dist {
			if dd > diam {
				diam = dd
			}
		}
	}
	return diam
}

// OffChipLinkCount returns the number of unidirectional chiplet-to-chiplet
// links in the system.
func (s *System) OffChipLinkCount() int {
	n := 0
	for _, l := range s.Fabric.Links {
		if l.OffChip {
			n++
		}
	}
	return n
}
