package topology

import (
	"fmt"
	"sort"

	"chipletnet/internal/checkpoint"
)

// Snapshot captures the fault-mutable part of the topology: group
// membership (kills remove members), the pre-fault membership snapshot,
// and the condemned-interface set. Everything else in a System is
// structural and rebuilt deterministically by Build.
func (s *System) Snapshot() checkpoint.TopoState {
	st := checkpoint.TopoState{
		Groups:     copyGroups3(groupsOf(s.Chiplets)),
		BaseGroups: copyGroups3(s.BaseGroups),
	}
	for id := range s.Condemned {
		st.Condemned = append(st.Condemned, id)
	}
	sort.Ints(st.Condemned)
	return st
}

// Restore lays snapshot state back onto a System freshly built from the
// same configuration.
func (s *System) Restore(st *checkpoint.TopoState) error {
	if len(st.Groups) != len(s.Chiplets) {
		return fmt.Errorf("%w: snapshot has %d chiplets, system has %d",
			checkpoint.ErrMismatch, len(st.Groups), len(s.Chiplets))
	}
	for c := range s.Chiplets {
		if len(st.Groups[c]) != len(s.Chiplets[c].Groups) {
			return fmt.Errorf("%w: chiplet %d has %d groups in snapshot, %d in system",
				checkpoint.ErrMismatch, c, len(st.Groups[c]), len(s.Chiplets[c].Groups))
		}
		for g := range s.Chiplets[c].Groups {
			s.Chiplets[c].Groups[g] = append([]int(nil), st.Groups[c][g]...)
		}
	}
	s.BaseGroups = copyGroups3(st.BaseGroups)
	s.Condemned = nil
	if len(st.Condemned) > 0 {
		s.Condemned = make(map[int]bool, len(st.Condemned))
		for _, id := range st.Condemned {
			if id < 0 || id >= len(s.Nodes) {
				return fmt.Errorf("%w: condemned node %d out of range", checkpoint.ErrMismatch, id)
			}
			s.Condemned[id] = true
		}
	}
	return nil
}

func groupsOf(chiplets []Chiplet) [][][]int {
	out := make([][][]int, len(chiplets))
	for c := range chiplets {
		out[c] = chiplets[c].Groups
	}
	return out
}

func copyGroups3(in [][][]int) [][][]int {
	if in == nil {
		return nil
	}
	out := make([][][]int, len(in))
	for c := range in {
		out[c] = make([][]int, len(in[c]))
		for g := range in[c] {
			out[c][g] = append([]int(nil), in[c][g]...)
		}
	}
	return out
}
