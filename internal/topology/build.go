package topology

import (
	"fmt"

	"chipletnet/internal/chiplet"
	"chipletnet/internal/router"
)

// injectQueueCap is the effectively-unbounded source queue capacity.
const injectQueueCap = 1 << 30

// newSystem creates the routers and on-chip meshes for numChiplets chiplets
// and fills in all per-node metadata. Cross-chiplet ports are added by the
// per-topology builders via addCrossPair (or addMeshStitch for FlatMesh);
// wire() then instantiates every link.
func newSystem(kind Kind, geo chiplet.Geometry, numChiplets int, gr chiplet.Grouping, lp LinkParams) (*System, error) {
	if err := lp.Validate(); err != nil {
		return nil, err
	}
	if numChiplets < 1 {
		return nil, fmt.Errorf("topology: need at least one chiplet, got %d", numChiplets)
	}
	s := &System{
		Kind:     kind,
		Geo:      geo,
		Grouping: gr,
		LP:       lp,
		Fabric:   router.NewFabric(),
	}
	per := geo.Nodes()
	ring := geo.Ring()
	s.Nodes = make([]Node, numChiplets*per)
	s.Chiplets = make([]Chiplet, numChiplets)

	for c := 0; c < numChiplets; c++ {
		ch := &s.Chiplets[c]
		ch.Index = c
		ch.Nodes = make([]int, per)
		ch.Ring = make([]int, len(ring))
		if gr.Groups() > 0 {
			ch.Groups = make([][]int, gr.Groups())
		}
		for i := 0; i < per; i++ {
			id := c*per + i
			x, y := geo.Coord(i)
			ch.Nodes[i] = id
			n := &s.Nodes[id]
			*n = Node{
				ID: id, Chiplet: c, X: x, Y: y,
				Label:   geo.Label(x, y),
				RingPos: geo.RingPos(x, y),
				Group:   -1, GroupSlot: -1,
			}
			if n.RingPos >= 0 {
				ch.Ring[n.RingPos] = id
				if gr.Groups() > 0 {
					if g := gr.GroupOf(n.RingPos); g >= 0 {
						n.Group = g
						n.GroupSlot = n.RingPos - gr.Start[g]
					}
				}
			} else {
				s.Cores = append(s.Cores, id)
			}

			// Router with local (injection/ejection) port 0.
			r := s.Fabric.NewRouter(id)
			r.AddInPort(1, injectQueueCap)
			r.AddOutPort()
			s.Fabric.MakeEjection(r, 0, lp.VCs, lp.EjectBW)
			n.Ports = append(n.Ports, Port{Dir: DirLocal, To: -1})

			// On-chip mesh ports.
			addMesh := func(d Dir, nx, ny int) {
				if nx < 0 || ny < 0 || nx >= geo.W || ny >= geo.H {
					return
				}
				r.AddInPort(lp.VCs, lp.InternalBufFlits)
				r.AddOutPort()
				n.Ports = append(n.Ports, Port{Dir: d, To: c*per + geo.Index(nx, ny)})
			}
			addMesh(DirXPlus, x+1, y)
			addMesh(DirXMinus, x-1, y)
			addMesh(DirYPlus, x, y+1)
			addMesh(DirYMinus, x, y-1)
		}
	}
	return s, nil
}

// addCrossPort adds an off-chip port on node id pointing at node to, with
// the given direction (DirCross for high-radix topologies; a mesh direction
// for FlatMesh stitches). The input side uses the interface buffer size.
func (s *System) addCrossPort(id, to int, d Dir) {
	n := &s.Nodes[id]
	r := s.Fabric.Routers[id]
	r.AddInPort(s.LP.VCs, s.LP.InterfaceBufFlits)
	r.AddOutPort()
	n.Ports = append(n.Ports, Port{Dir: d, To: to, OffChip: true})
}

// addCrossPair connects interface nodes a and b (on different chiplets)
// with a bidirectional chiplet-to-chiplet channel and registers both nodes
// in their chiplets' connected-group membership.
func (s *System) addCrossPair(a, b int) {
	s.addCrossPort(a, b, DirCross)
	s.addCrossPort(b, a, DirCross)
	for _, id := range [2]int{a, b} {
		n := &s.Nodes[id]
		if n.Group >= 0 {
			ch := &s.Chiplets[n.Chiplet]
			ch.Groups[n.Group] = append(ch.Groups[n.Group], id)
		}
	}
}

// wire instantiates a link for every non-local port. Must be called exactly
// once, after all ports exist.
func (s *System) wire() error {
	for id := range s.Nodes {
		n := &s.Nodes[id]
		for pi, p := range n.Ports {
			if p.Dir == DirLocal {
				continue
			}
			peerPort := s.PortTo(p.To, id)
			if peerPort < 0 {
				return fmt.Errorf("topology: node %d port %d points at %d which has no return port", id, pi, p.To)
			}
			bw, lat := s.LP.OnChipBW, s.LP.OnChipLatency
			if p.OffChip {
				bw, lat = s.LP.OffChipBW, s.LP.OffChipLatency
			}
			s.Fabric.ConnectPorts(
				s.Fabric.Routers[id], pi,
				s.Fabric.Routers[p.To], peerPort,
				bw, lat, p.OffChip)
		}
	}
	return nil
}
