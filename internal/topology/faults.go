package topology

import (
	"fmt"

	"chipletnet/internal/rng"
)

// CrossPair identifies one bidirectional chiplet-to-chiplet channel by its
// endpoint node ids (A < B).
type CrossPair struct {
	A, B int
}

// CrossPairs lists every bidirectional chiplet-to-chiplet channel.
func (s *System) CrossPairs() []CrossPair {
	var out []CrossPair
	for id := range s.Nodes {
		for _, p := range s.Nodes[id].Ports {
			if p.Dir == DirCross && id < p.To {
				out = append(out, CrossPair{A: id, B: p.To})
			}
		}
	}
	return out
}

// FailCrossLink disables the chiplet-to-chiplet channel between nodes a
// and b, as firmware would disable a faulty SerDes lane: the physical
// ports stay in place but both endpoints leave their groups' connected
// membership, so routing (exit selection and interleaving) stops using the
// channel. It fails if the removal would leave either endpoint's group
// without a core-reachable member (one at ring position >= 1), since the
// system would no longer be routable.
func (s *System) FailCrossLink(a, b int) error {
	pa, pb := s.CrossPort(a), s.CrossPort(b)
	if pa < 0 || pb < 0 || s.Nodes[a].Ports[pa].To != b {
		return fmt.Errorf("topology: %d and %d do not share a cross link", a, b)
	}
	for _, id := range [2]int{a, b} {
		n := &s.Nodes[id]
		if n.Group < 0 {
			return fmt.Errorf("topology: node %d is not in an interface group", id)
		}
		member := false
		for _, m := range s.Chiplets[n.Chiplet].Groups[n.Group] {
			if m == id {
				member = true
				break
			}
		}
		if !member {
			return fmt.Errorf("topology: link %d-%d is already failed", a, b)
		}
		if !s.groupSurvivesWithout(id) {
			return fmt.Errorf("topology: failing link %d-%d would disconnect group %d of chiplet %d",
				a, b, n.Group, n.Chiplet)
		}
	}
	for _, id := range [2]int{a, b} {
		n := &s.Nodes[id]
		g := s.Chiplets[n.Chiplet].Groups[n.Group]
		for i, m := range g {
			if m == id {
				s.Chiplets[n.Chiplet].Groups[n.Group] = append(g[:i:i], g[i+1:]...)
				break
			}
		}
	}
	return nil
}

// SnapshotGroups records the current group membership of every chiplet in
// BaseGroups, the pre-fault reference routing uses to detect rerouted
// packets. Idempotent: a second call keeps the first snapshot.
func (s *System) SnapshotGroups() {
	if s.BaseGroups != nil {
		return
	}
	s.BaseGroups = make([][][]int, len(s.Chiplets))
	for c := range s.Chiplets {
		groups := make([][]int, len(s.Chiplets[c].Groups))
		for g, members := range s.Chiplets[c].Groups {
			groups[g] = append([]int(nil), members...)
		}
		s.BaseGroups[c] = groups
	}
}

// CondemnCrossLink fails the cross link between a and b (see FailCrossLink)
// but marks both endpoints condemned: removed from group membership so no
// new traffic selects them, yet still physically usable as a fallback exit
// for packets already committed past the surviving members. Decommission
// the link once such traffic has drained (DecommissionCrossLink).
func (s *System) CondemnCrossLink(a, b int) error {
	s.SnapshotGroups()
	if err := s.FailCrossLink(a, b); err != nil {
		return err
	}
	if s.Condemned == nil {
		s.Condemned = make(map[int]bool)
	}
	s.Condemned[a] = true
	s.Condemned[b] = true
	return nil
}

// DecommissionCrossLink completes a condemned link's removal: the
// endpoints stop being fallback exits. Call only after the fault engine
// has verified no in-flight packet still needs the link.
func (s *System) DecommissionCrossLink(a, b int) {
	delete(s.Condemned, a)
	delete(s.Condemned, b)
}

// groupSurvivesWithout reports whether node id's group keeps at least one
// member at ring position >= 1 after removing id.
func (s *System) groupSurvivesWithout(id int) bool {
	n := &s.Nodes[id]
	for _, m := range s.Chiplets[n.Chiplet].Groups[n.Group] {
		if m != id && s.Nodes[m].RingPos >= 1 {
			return true
		}
	}
	return false
}

// FailRandomCrossLinks disables approximately fraction of the
// chiplet-to-chiplet channels, chosen deterministically from seed,
// skipping any failure that would disconnect a group. It returns the
// number of channels actually disabled.
func (s *System) FailRandomCrossLinks(fraction float64, seed uint64) (int, error) {
	if fraction < 0 || fraction >= 1 {
		return 0, fmt.Errorf("topology: fault fraction must be in [0,1), got %g", fraction)
	}
	pairs := s.CrossPairs()
	want := int(fraction * float64(len(pairs)))
	r := rng.New(seed ^ 0xfa17ed11)
	failed := 0
	for _, i := range r.Perm(len(pairs)) {
		if failed >= want {
			break
		}
		if err := s.FailCrossLink(pairs[i].A, pairs[i].B); err == nil {
			failed++
		}
	}
	return failed, nil
}
