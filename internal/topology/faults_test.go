package topology

import "testing"

func TestCrossPairsCount(t *testing.T) {
	s, err := BuildHypercube(geo44(), 4, testLP())
	if err != nil {
		t.Fatal(err)
	}
	// 16 chiplets x 12 linked interfaces each, two endpoints per pair.
	want := 16 * 12 / 2
	if got := len(s.CrossPairs()); got != want {
		t.Errorf("cross pairs = %d, want %d", got, want)
	}
}

func TestFailCrossLinkRemovesMembership(t *testing.T) {
	s, err := BuildHypercube(geo44(), 4, testLP())
	if err != nil {
		t.Fatal(err)
	}
	pair := s.CrossPairs()[5]
	na := s.Nodes[pair.A]
	before := len(s.Chiplets[na.Chiplet].Groups[na.Group])
	if err := s.FailCrossLink(pair.A, pair.B); err != nil {
		t.Fatal(err)
	}
	after := len(s.Chiplets[na.Chiplet].Groups[na.Group])
	if after != before-1 {
		t.Errorf("group size %d -> %d, want -1", before, after)
	}
	for _, m := range s.Chiplets[na.Chiplet].Groups[na.Group] {
		if m == pair.A {
			t.Error("failed endpoint still listed in its group")
		}
	}
	// Failing the same link twice must error.
	if err := s.FailCrossLink(pair.A, pair.B); err == nil {
		t.Error("double failure accepted")
	}
	// Non-adjacent nodes must error.
	if err := s.FailCrossLink(0, 1); err == nil {
		t.Error("bogus link accepted")
	}
}

func TestFailCrossLinkRefusesDisconnection(t *testing.T) {
	// 4D-mesh on a 4x4 chiplet has single-link groups (size 1): failing
	// them would disconnect a dimension and must be refused.
	s, err := BuildNDMesh(geo44(), []int{2, 2, 2, 2}, testLP())
	if err != nil {
		t.Fatal(err)
	}
	refused := false
	for _, pair := range s.CrossPairs() {
		na := s.Nodes[pair.A]
		if len(s.Chiplets[na.Chiplet].Groups[na.Group]) == 1 {
			if err := s.FailCrossLink(pair.A, pair.B); err == nil {
				t.Fatalf("disconnecting failure of %v accepted", pair)
			}
			refused = true
			break
		}
	}
	if !refused {
		t.Skip("no single-link group found")
	}
}

func TestFailRandomCrossLinks(t *testing.T) {
	s, err := BuildHypercube(geo44(), 4, testLP())
	if err != nil {
		t.Fatal(err)
	}
	total := len(s.CrossPairs())
	failed, err := s.FailRandomCrossLinks(0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if failed != total/4 {
		t.Errorf("failed %d of %d, want %d", failed, total, total/4)
	}
	// Every group still has a core-reachable member.
	for _, ch := range s.Chiplets {
		for g, members := range ch.Groups {
			ok := false
			for _, m := range members {
				if s.Nodes[m].RingPos >= 1 {
					ok = true
				}
			}
			if !ok {
				t.Errorf("chiplet %d group %d lost all core-reachable members", ch.Index, g)
			}
		}
	}
	// Determinism.
	s2, _ := BuildHypercube(geo44(), 4, testLP())
	failed2, _ := s2.FailRandomCrossLinks(0.25, 7)
	if failed2 != failed {
		t.Error("fault injection not deterministic")
	}
	if _, err := s.FailRandomCrossLinks(1.5, 1); err == nil {
		t.Error("fraction >= 1 accepted")
	}
}
