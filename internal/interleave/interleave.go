// Package interleave implements network interleaving (paper §V): spreading
// a source's inter-chiplet traffic across the physical interfaces of an
// abstract interface group, the way interleaved memory spreads accesses
// across channels.
//
// A policy only assigns an integer tag to each packet at injection time;
// the routing layer reduces the tag modulo the group size when selecting
// the physical exit interface, so one tag works for every group on the
// path. Tag assignment corresponds to the paper's modified packet header.
package interleave

import "fmt"

// Granularity selects the interleaving style.
type Granularity int

const (
	// None disables interleaving: all packets use the first physical
	// interface of each group (the pre-§V behaviour the paper improves
	// on).
	None Granularity = iota
	// Message is coarse-grained interleaving: all packets of one message
	// share a tag, so consecutive messages use different interfaces.
	Message
	// Packet is fine-grained interleaving: consecutive packets of one
	// message get consecutive tags and fan out across the whole group.
	Packet
)

func (g Granularity) String() string {
	switch g {
	case None:
		return "none"
	case Message:
		return "message"
	case Packet:
		return "packet"
	}
	return fmt.Sprintf("Granularity(%d)", int(g))
}

// ParseGranularity parses "none", "message" or "packet".
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "none", "":
		return None, nil
	case "message", "coarse":
		return Message, nil
	case "packet", "fine":
		return Packet, nil
	}
	return None, fmt.Errorf("interleave: unknown granularity %q", s)
}

// Index reduces a packet's interleave tag to a physical-interface slot
// within a group of n members: slot 0 for untagged packets (tag < 0),
// tag mod n otherwise. Every exit selection in the routing and topology
// layers goes through this reduction, and it always runs against the
// group's *current* membership count — when a fault removes an interface
// from its group, both interleaving granularities automatically re-weight
// the traffic evenly across the n-1 survivors, with no header or policy
// change at the sources.
func Index(n, tag int) int {
	if tag < 0 || n <= 1 {
		return 0
	}
	return tag % n
}

// Policy assigns interleave tags.
type Policy struct {
	G Granularity
}

// Tag returns the interleave tag for packet seq of message msgID.
// Message ids are hashed so that consecutive messages from one source
// spread evenly even when the group size divides the message cadence.
func (p Policy) Tag(msgID uint64, seq int) int {
	switch p.G {
	case Message:
		return int(mix(msgID) % (1 << 30))
	case Packet:
		return int(mix(msgID)%(1<<30)) + seq
	default:
		return 0
	}
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
