package interleave

import (
	"testing"
	"testing/quick"
)

func TestParseGranularity(t *testing.T) {
	cases := map[string]Granularity{
		"none": None, "": None,
		"message": Message, "coarse": Message,
		"packet": Packet, "fine": Packet,
	}
	for s, want := range cases {
		got, err := ParseGranularity(s)
		if err != nil || got != want {
			t.Errorf("ParseGranularity(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseGranularity("bogus"); err == nil {
		t.Error("bogus granularity accepted")
	}
}

func TestStrings(t *testing.T) {
	if None.String() != "none" || Message.String() != "message" || Packet.String() != "packet" {
		t.Error("Granularity.String mismatch")
	}
}

func TestNoneIsConstant(t *testing.T) {
	p := Policy{G: None}
	for msg := uint64(0); msg < 20; msg++ {
		for seq := 0; seq < 4; seq++ {
			if p.Tag(msg, seq) != 0 {
				t.Fatal("None policy produced a non-zero tag")
			}
		}
	}
}

func TestMessagePolicyConstantWithinMessage(t *testing.T) {
	p := Policy{G: Message}
	for msg := uint64(0); msg < 50; msg++ {
		t0 := p.Tag(msg, 0)
		for seq := 1; seq < 8; seq++ {
			if p.Tag(msg, seq) != t0 {
				t.Fatalf("message %d: tag varies within the message", msg)
			}
		}
	}
}

func TestMessagePolicySpreadsAcrossMessages(t *testing.T) {
	p := Policy{G: Message}
	// Over many messages, tags mod any small group size must hit every
	// residue (otherwise some interfaces would never be used).
	for _, k := range []int{2, 3, 5} {
		seen := map[int]bool{}
		for msg := uint64(0); msg < 200; msg++ {
			seen[p.Tag(msg, 0)%k] = true
		}
		if len(seen) != k {
			t.Errorf("message tags cover %d of %d residues", len(seen), k)
		}
	}
}

func TestPacketPolicySpreadsWithinMessage(t *testing.T) {
	p := Policy{G: Packet}
	// Consecutive packets of one message map to consecutive interfaces.
	for msg := uint64(0); msg < 50; msg++ {
		base := p.Tag(msg, 0)
		for seq := 1; seq < 4; seq++ {
			if p.Tag(msg, seq) != base+seq {
				t.Fatalf("message %d: packet tags not consecutive", msg)
			}
		}
	}
}

func TestTagsNonNegative(t *testing.T) {
	f := func(msg uint64, seqRaw uint8, g uint8) bool {
		p := Policy{G: Granularity(g % 3)}
		return p.Tag(msg, int(seqRaw%32)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
