package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams collided %d times", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	a.Split(3)
	if a.Uint64() != b.Uint64() {
		t.Error("Split advanced the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %g far from 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(11)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate %g", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64Distribution(t *testing.T) {
	// Rough bucket uniformity check over the top 3 bits.
	r := New(17)
	var buckets [8]int
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>61]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/8.0) > n/8.0*0.05 {
			t.Errorf("bucket %d count %d deviates >5%%", i, c)
		}
	}
}
