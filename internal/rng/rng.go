// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by the simulator.
//
// The simulator must be reproducible: two runs with the same configuration
// and seed must produce bit-identical results, regardless of Go version or
// platform. math/rand's generator is stable in practice but its convenience
// API encourages shared global state; this package gives each component
// (traffic source, arbiter, ...) its own cheaply-seedable stream based on
// SplitMix64, which passes BigCrush and needs only 8 bytes of state.
package rng

// Rand is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// State returns the generator's complete internal state, for
// checkpointing. SetState with the returned value reproduces the stream
// exactly from this point.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a state previously captured with State.
func (r *Rand) SetState(s uint64) { r.state = s }

// Split derives an independent stream from r using the given stream
// identifier. It does not advance r. Streams with distinct ids are
// statistically independent for simulation purposes.
func (r *Rand) Split(id uint64) *Rand {
	// Mix the id through the SplitMix64 finalizer so that nearby ids
	// (0, 1, 2, ...) produce distant states.
	return New(mix64(r.state ^ mix64(id^0x9e3779b97f4a7c15)))
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits -> [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
