package stats

import (
	"math"
	"testing"

	"chipletnet/internal/packet"
)

func deliver(c *Collector, created, delivered int64, measured bool, lenFlits, routers, on, off int) {
	p := &packet.Packet{
		Len: lenFlits, CreatedAt: created, DeliveredAt: delivered,
		Measured: measured, RouterHops: routers - 1, OnChipHops: on, OffChipHops: off,
	}
	c.OnDeliver(p, delivered)
}

func TestEmptySummary(t *testing.T) {
	c := &Collector{MeasureFrom: 100}
	s := c.Summarize(1000, 16)
	if !math.IsNaN(s.AvgLatency) {
		t.Error("AvgLatency should be NaN with no measured packets")
	}
	if s.AcceptedFlitsPerNodeCycle != 0 || s.MeasuredPackets != 0 {
		t.Error("non-zero stats on empty collector")
	}
}

func TestLatencyAggregation(t *testing.T) {
	c := &Collector{MeasureFrom: 0}
	lats := []int64{10, 20, 30, 40}
	for i, l := range lats {
		deliver(c, 100, 100+l, true, 8, 3+i, 2, 1)
	}
	s := c.Summarize(1000, 4)
	if s.AvgLatency != 25 {
		t.Errorf("avg = %g, want 25", s.AvgLatency)
	}
	if s.MaxLatency != 40 {
		t.Errorf("max = %d", s.MaxLatency)
	}
	if s.P50Latency != 20 || s.P99Latency != 40 {
		t.Errorf("p50=%g p99=%g", s.P50Latency, s.P99Latency)
	}
	if s.MeasuredPackets != 4 {
		t.Errorf("measured = %d", s.MeasuredPackets)
	}
	if s.AvgRouters != 4.5 || s.AvgOnChipHops != 2 || s.AvgOffChipHops != 1 {
		t.Errorf("hop averages %g/%g/%g", s.AvgRouters, s.AvgOnChipHops, s.AvgOffChipHops)
	}
}

func TestWarmupPacketsExcludedFromLatency(t *testing.T) {
	c := &Collector{MeasureFrom: 500}
	deliver(c, 10, 400, false, 8, 2, 1, 0) // warm-up: throughput no, latency no
	deliver(c, 10, 600, false, 8, 2, 1, 0) // created in warm-up, late delivery: throughput yes
	deliver(c, 550, 700, true, 8, 2, 1, 0) // measured
	s := c.Summarize(500, 1)
	if s.MeasuredPackets != 1 || s.AvgLatency != 150 {
		t.Errorf("measured=%d avg=%g", s.MeasuredPackets, s.AvgLatency)
	}
	if s.DeliveredPackets != 3 {
		t.Errorf("delivered=%d", s.DeliveredPackets)
	}
	// Accepted flits: the two deliveries at/after cycle 500.
	want := 16.0 / 500.0
	if math.Abs(s.AcceptedFlitsPerNodeCycle-want) > 1e-12 {
		t.Errorf("accepted = %g, want %g", s.AcceptedFlitsPerNodeCycle, want)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(data, 0.5); p != 5 {
		t.Errorf("p50 = %g", p)
	}
	if p := percentile(data, 0.95); p != 10 {
		t.Errorf("p95 = %g", p)
	}
	if p := percentile(data, 0.01); p != 1 {
		t.Errorf("p1 = %g", p)
	}
	if !math.IsNaN(percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
}
