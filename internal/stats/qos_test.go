package stats

import (
	"math"
	"testing"

	"chipletnet/internal/packet"
)

// TestPercentileTinySamples pins the nearest-rank edge behavior: empty
// input is NaN, and for samples smaller than 1/(1-q) the high quantiles
// clamp to the sample maximum — never an out-of-range read.
func TestPercentileTinySamples(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"single-p50", []float64{7}, 0.5, 7},
		{"single-p999", []float64{7}, 0.999, 7},
		{"single-p0", []float64{7}, 0, 7},
		{"two-p50", []float64{3, 9}, 0.5, 3},
		{"two-p999", []float64{3, 9}, 0.999, 9},
		{"ten-p999-is-max", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.999, 10},
		{"hundred-p999-is-max", seq(100), 0.999, 100},
		{"thousand-p999", seq(1000), 0.999, 999},
		{"q-zero-clamps-low", []float64{4, 5, 6}, 0, 4},
		{"q-one-clamps-high", []float64{4, 5, 6}, 1, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := percentile(tc.sorted, tc.q); got != tc.want {
				t.Errorf("percentile(%d samples, %g) = %g, want %g", len(tc.sorted), tc.q, got, tc.want)
			}
		})
	}
	if !math.IsNaN(percentile(nil, 0.999)) {
		t.Error("empty sample should be NaN")
	}
	if !math.IsNaN(percentile([]float64{}, 0.5)) {
		t.Error("zero-length sample should be NaN")
	}
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

func classDeliver(c *Collector, class uint8, created, delivered int64, flits int) {
	c.OnDeliver(&packet.Packet{
		Len: flits, CreatedAt: created, DeliveredAt: delivered,
		Measured: true, Class: class,
	}, delivered)
}

// A run whose measured traffic is entirely best-effort keeps Classes nil,
// so pre-QoS consumers (and the determinism goldens) see no change.
func TestClassSummariesNilForBestEffortOnly(t *testing.T) {
	c := &Collector{MeasureFrom: 0}
	for i := int64(0); i < 5; i++ {
		classDeliver(c, packet.ClassBestEffort, 10, 20+i, 4)
	}
	s := c.Summarize(100, 4)
	if s.Classes != nil {
		t.Errorf("best-effort-only run produced class summaries: %+v", s.Classes)
	}
}

func TestClassSummariesPerClass(t *testing.T) {
	c := &Collector{MeasureFrom: 0}
	// Latency class: 3 packets at 10/20/30 cycles.
	classDeliver(c, packet.ClassLatency, 100, 110, 2)
	classDeliver(c, packet.ClassLatency, 100, 120, 2)
	classDeliver(c, packet.ClassLatency, 100, 130, 2)
	// Bulk: one packet at 200 cycles.
	classDeliver(c, packet.ClassBulk, 100, 300, 16)
	s := c.Summarize(100, 1)
	if len(s.Classes) != 2 {
		t.Fatalf("%d class summaries, want 2: %+v", len(s.Classes), s.Classes)
	}
	lat, bulk := s.Classes[0], s.Classes[1]
	if lat.Class != packet.ClassName(packet.ClassLatency) || bulk.Class != packet.ClassName(packet.ClassBulk) {
		// Classes appear in class order; bulk is a higher class index.
		lat, bulk = bulk, lat
	}
	if lat.Class != "latency" || lat.MeasuredPackets != 3 || lat.AvgLatency != 20 || lat.MaxLatency != 30 {
		t.Errorf("latency summary %+v", lat)
	}
	// Tiny sample: p99 and p999 clamp to the class maximum.
	if lat.P99Latency != 30 || lat.P999Latency != 30 {
		t.Errorf("latency tail p99=%g p999=%g, want the 30-cycle max", lat.P99Latency, lat.P999Latency)
	}
	if bulk.MeasuredPackets != 1 || bulk.AvgLatency != 200 || bulk.P999Latency != 200 {
		t.Errorf("bulk summary %+v", bulk)
	}
	// Per-class throughput shares: 6 and 16 flits over 100 node-cycles.
	if math.Abs(lat.AcceptedFlitsPerNodeCycle-0.06) > 1e-12 || math.Abs(bulk.AcceptedFlitsPerNodeCycle-0.16) > 1e-12 {
		t.Errorf("class throughput %g / %g", lat.AcceptedFlitsPerNodeCycle, bulk.AcceptedFlitsPerNodeCycle)
	}
	// The aggregate view still covers everything.
	if s.MeasuredPackets != 4 || s.P999Latency != 200 {
		t.Errorf("aggregate measured=%d p999=%g", s.MeasuredPackets, s.P999Latency)
	}
}

// Class sections must round-trip through the collector snapshot so
// checkpointed QoS runs resume bit-identically.
func TestClassSnapshotRoundTrip(t *testing.T) {
	build := func() *Collector {
		c := &Collector{MeasureFrom: 0}
		classDeliver(c, packet.ClassLatency, 10, 25, 2)
		classDeliver(c, packet.ClassCollective, 10, 60, 8)
		classDeliver(c, packet.ClassBestEffort, 10, 15, 4)
		return c
	}
	c := build()
	st := c.Snapshot()
	c2 := &Collector{MeasureFrom: 0}
	c2.Restore(&st)
	classDeliver(c, packet.ClassLatency, 70, 90, 2)
	classDeliver(c2, packet.ClassLatency, 70, 90, 2)
	a, b := c.Summarize(100, 2), c2.Summarize(100, 2)
	if len(a.Classes) != len(b.Classes) {
		t.Fatalf("class counts differ: %d vs %d", len(a.Classes), len(b.Classes))
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			t.Errorf("class %d differs after snapshot round trip:\n%+v\n%+v", i, a.Classes[i], b.Classes[i])
		}
	}
}
