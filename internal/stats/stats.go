// Package stats collects per-run network statistics: packet latency,
// accepted throughput, hop-count breakdowns (for the energy model), and
// latency percentiles.
package stats

import (
	"math"
	"sort"

	"chipletnet/internal/packet"
)

// Collector accumulates delivery statistics. Install OnDeliver as the
// fabric sink. Only packets created during the measurement window
// (Packet.Measured) contribute to latency and hop statistics; throughput
// counts every flit delivered after MeasureFrom.
type Collector struct {
	// MeasureFrom is the cycle measurement starts (end of warm-up).
	MeasureFrom int64

	latencies []float64
	sumLat    float64
	sumNet    float64
	maxLat    int64

	measuredDelivered int
	deliveredAll      int
	acceptedFlits     int64

	sumRouters, sumOnChip, sumOffChip float64
}

// OnDeliver records a delivered packet.
func (c *Collector) OnDeliver(p *packet.Packet, now int64) {
	c.deliveredAll++
	if now >= c.MeasureFrom {
		c.acceptedFlits += int64(p.Len)
	}
	if !p.Measured {
		return
	}
	c.measuredDelivered++
	l := p.Latency()
	c.latencies = append(c.latencies, float64(l))
	c.sumLat += float64(l)
	c.sumNet += float64(p.NetworkLatency())
	if l > c.maxLat {
		c.maxLat = l
	}
	c.sumRouters += float64(p.Routers())
	c.sumOnChip += float64(p.OnChipHops)
	c.sumOffChip += float64(p.OffChipHops)
}

// Summary is the digest of one simulation run.
type Summary struct {
	// AvgLatency is the mean packet latency in cycles (creation to tail
	// delivery, source queueing included) over measured packets.
	AvgLatency float64
	// AvgNetworkLatency excludes source queueing (head-flit injection to
	// tail delivery); AvgLatency - AvgNetworkLatency is the mean source
	// queueing time.
	AvgNetworkLatency float64
	// P50Latency / P95Latency / P99Latency are latency percentiles.
	P50Latency, P95Latency, P99Latency float64
	// MaxLatency is the worst measured latency.
	MaxLatency int64
	// MeasuredPackets is the number of measured packets delivered.
	MeasuredPackets int
	// DeliveredPackets counts all deliveries, warm-up included.
	DeliveredPackets int
	// AcceptedFlitsPerNodeCycle is the measured-window throughput.
	AcceptedFlitsPerNodeCycle float64
	// AvgRouters / AvgOnChipHops / AvgOffChipHops are mean per-packet hop
	// counts (routers traversed including the source router; on-chip and
	// off-chip links traversed) — inputs to the energy model.
	AvgRouters, AvgOnChipHops, AvgOffChipHops float64
}

// Summarize computes the summary for a measurement window of the given
// length over the given endpoint count.
func (c *Collector) Summarize(measureCycles int64, endpoints int) Summary {
	s := Summary{
		MeasuredPackets:  c.measuredDelivered,
		DeliveredPackets: c.deliveredAll,
		MaxLatency:       c.maxLat,
	}
	if measureCycles > 0 && endpoints > 0 {
		s.AcceptedFlitsPerNodeCycle = float64(c.acceptedFlits) / float64(measureCycles) / float64(endpoints)
	}
	n := len(c.latencies)
	if n == 0 {
		s.AvgLatency = math.NaN()
		return s
	}
	s.AvgLatency = c.sumLat / float64(n)
	s.AvgNetworkLatency = c.sumNet / float64(n)
	sorted := append([]float64(nil), c.latencies...)
	sort.Float64s(sorted)
	s.P50Latency = percentile(sorted, 0.50)
	s.P95Latency = percentile(sorted, 0.95)
	s.P99Latency = percentile(sorted, 0.99)
	s.AvgRouters = c.sumRouters / float64(n)
	s.AvgOnChipHops = c.sumOnChip / float64(n)
	s.AvgOffChipHops = c.sumOffChip / float64(n)
	return s
}

// percentile returns the q-quantile of sorted data (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
