// Package stats collects per-run network statistics: packet latency,
// accepted throughput, hop-count breakdowns (for the energy model), and
// latency percentiles — in aggregate and per QoS traffic class.
package stats

import (
	"math"
	"sort"

	"chipletnet/internal/packet"
)

// Collector accumulates delivery statistics. Install OnDeliver as the
// fabric sink. Only packets created during the measurement window
// (Packet.Measured) contribute to latency and hop statistics; throughput
// counts every flit delivered after MeasureFrom.
type Collector struct {
	// MeasureFrom is the cycle measurement starts (end of warm-up).
	MeasureFrom int64

	latencies []float64
	sumLat    float64
	sumNet    float64
	maxLat    int64

	measuredDelivered int
	deliveredAll      int
	acceptedFlits     int64

	sumRouters, sumOnChip, sumOffChip float64

	// Per-class accumulators, indexed by traffic class.
	classLat       [packet.NumClasses][]float64
	classSum       [packet.NumClasses]float64
	classMax       [packet.NumClasses]int64
	classDelivered [packet.NumClasses]int
	classFlits     [packet.NumClasses]int64
}

// OnDeliver records a delivered packet.
func (c *Collector) OnDeliver(p *packet.Packet, now int64) {
	c.deliveredAll++
	cl := p.Class
	if cl >= packet.NumClasses {
		cl = packet.ClassBestEffort
	}
	if now >= c.MeasureFrom {
		c.acceptedFlits += int64(p.Len)
		c.classFlits[cl] += int64(p.Len)
	}
	if !p.Measured {
		return
	}
	c.measuredDelivered++
	l := p.Latency()
	c.latencies = append(c.latencies, float64(l))
	c.sumLat += float64(l)
	c.sumNet += float64(p.NetworkLatency())
	if l > c.maxLat {
		c.maxLat = l
	}
	c.sumRouters += float64(p.Routers())
	c.sumOnChip += float64(p.OnChipHops)
	c.sumOffChip += float64(p.OffChipHops)

	c.classDelivered[cl]++
	c.classLat[cl] = append(c.classLat[cl], float64(l))
	c.classSum[cl] += float64(l)
	if l > c.classMax[cl] {
		c.classMax[cl] = l
	}
}

// ClassSummary is the per-traffic-class digest of one run: the QoS view.
type ClassSummary struct {
	// Class is the canonical class name (packet.ClassName).
	Class string
	// MeasuredPackets is the number of measured packets of this class.
	MeasuredPackets int
	// AvgLatency and the percentiles are over measured packets of this
	// class only (nearest-rank; for tiny samples the high quantiles
	// degenerate to the sample maximum).
	AvgLatency                                      float64
	P50Latency, P95Latency, P99Latency, P999Latency float64
	// MaxLatency is the worst measured latency of this class.
	MaxLatency int64
	// AcceptedFlitsPerNodeCycle is this class's share of the
	// measured-window throughput.
	AcceptedFlitsPerNodeCycle float64
}

// Summary is the digest of one simulation run.
type Summary struct {
	// AvgLatency is the mean packet latency in cycles (creation to tail
	// delivery, source queueing included) over measured packets.
	AvgLatency float64
	// AvgNetworkLatency excludes source queueing (head-flit injection to
	// tail delivery); AvgLatency - AvgNetworkLatency is the mean source
	// queueing time.
	AvgNetworkLatency float64
	// P50Latency / P95Latency / P99Latency / P999Latency are latency
	// percentiles (nearest-rank over measured packets; with fewer than
	// 1/(1-q) samples the high quantiles return the sample maximum).
	P50Latency, P95Latency, P99Latency, P999Latency float64
	// MaxLatency is the worst measured latency.
	MaxLatency int64
	// MeasuredPackets is the number of measured packets delivered.
	MeasuredPackets int
	// DeliveredPackets counts all deliveries, warm-up included.
	DeliveredPackets int
	// AcceptedFlitsPerNodeCycle is the measured-window throughput.
	AcceptedFlitsPerNodeCycle float64
	// AvgRouters / AvgOnChipHops / AvgOffChipHops are mean per-packet hop
	// counts (routers traversed including the source router; on-chip and
	// off-chip links traversed) — inputs to the energy model.
	AvgRouters, AvgOnChipHops, AvgOffChipHops float64
	// Classes holds the per-traffic-class QoS digests, in class order,
	// for every class that delivered measured traffic. Omitted entirely
	// for runs whose traffic is all best-effort (the synthetic patterns),
	// so aggregate-only consumers see no change.
	Classes []ClassSummary `json:",omitempty"`
}

// Summarize computes the summary for a measurement window of the given
// length over the given endpoint count.
func (c *Collector) Summarize(measureCycles int64, endpoints int) Summary {
	s := Summary{
		MeasuredPackets:  c.measuredDelivered,
		DeliveredPackets: c.deliveredAll,
		MaxLatency:       c.maxLat,
	}
	nodeCycles := float64(0)
	if measureCycles > 0 && endpoints > 0 {
		nodeCycles = float64(measureCycles) * float64(endpoints)
		s.AcceptedFlitsPerNodeCycle = float64(c.acceptedFlits) / nodeCycles
	}
	s.Classes = c.classSummaries(nodeCycles)
	n := len(c.latencies)
	if n == 0 {
		s.AvgLatency = math.NaN()
		return s
	}
	s.AvgLatency = c.sumLat / float64(n)
	s.AvgNetworkLatency = c.sumNet / float64(n)
	sorted := append([]float64(nil), c.latencies...)
	sort.Float64s(sorted)
	s.P50Latency = percentile(sorted, 0.50)
	s.P95Latency = percentile(sorted, 0.95)
	s.P99Latency = percentile(sorted, 0.99)
	s.P999Latency = percentile(sorted, 0.999)
	s.AvgRouters = c.sumRouters / float64(n)
	s.AvgOnChipHops = c.sumOnChip / float64(n)
	s.AvgOffChipHops = c.sumOffChip / float64(n)
	return s
}

// classSummaries builds the per-class digests. A run whose measured
// traffic is entirely best-effort (the synthetic patterns) yields nil:
// its class breakdown would duplicate the aggregate figures.
func (c *Collector) classSummaries(nodeCycles float64) []ClassSummary {
	interesting := false
	for cl := uint8(1); cl < packet.NumClasses; cl++ {
		if c.classDelivered[cl] > 0 || c.classFlits[cl] > 0 {
			interesting = true
			break
		}
	}
	if !interesting {
		return nil
	}
	var out []ClassSummary
	for cl := uint8(0); cl < packet.NumClasses; cl++ {
		n := c.classDelivered[cl]
		if n == 0 && c.classFlits[cl] == 0 {
			continue
		}
		cs := ClassSummary{
			Class:           packet.ClassName(cl),
			MeasuredPackets: n,
			MaxLatency:      c.classMax[cl],
		}
		if nodeCycles > 0 {
			cs.AcceptedFlitsPerNodeCycle = float64(c.classFlits[cl]) / nodeCycles
		}
		if n > 0 {
			cs.AvgLatency = c.classSum[cl] / float64(n)
			sorted := append([]float64(nil), c.classLat[cl]...)
			sort.Float64s(sorted)
			cs.P50Latency = percentile(sorted, 0.50)
			cs.P95Latency = percentile(sorted, 0.95)
			cs.P99Latency = percentile(sorted, 0.99)
			cs.P999Latency = percentile(sorted, 0.999)
		}
		out = append(out, cs)
	}
	return out
}

// percentile returns the q-quantile of sorted data by the nearest-rank
// method: the smallest element with at least a q-fraction of the sample
// at or below it, index ceil(q*n)-1. Both ends are clamped, so tiny
// samples are safe: with fewer than 1/(1-q) observations (e.g. p999 of
// under 1000 samples) the rank lands on the last element and the result
// is the sample maximum, never an out-of-range read. Empty input is NaN.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
