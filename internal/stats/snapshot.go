package stats

import "chipletnet/internal/checkpoint"

// Snapshot captures the collector's accumulator state.
func (c *Collector) Snapshot() checkpoint.CollectorState {
	return checkpoint.CollectorState{
		Latencies:         append([]float64(nil), c.latencies...),
		SumLat:            c.sumLat,
		SumNet:            c.sumNet,
		MaxLat:            c.maxLat,
		MeasuredDelivered: c.measuredDelivered,
		DeliveredAll:      c.deliveredAll,
		AcceptedFlits:     c.acceptedFlits,
		SumRouters:        c.sumRouters,
		SumOnChip:         c.sumOnChip,
		SumOffChip:        c.sumOffChip,
	}
}

// Restore lays snapshot state back onto the collector.
func (c *Collector) Restore(st *checkpoint.CollectorState) {
	c.latencies = append([]float64(nil), st.Latencies...)
	c.sumLat = st.SumLat
	c.sumNet = st.SumNet
	c.maxLat = st.MaxLat
	c.measuredDelivered = st.MeasuredDelivered
	c.deliveredAll = st.DeliveredAll
	c.acceptedFlits = st.AcceptedFlits
	c.sumRouters = st.SumRouters
	c.sumOnChip = st.SumOnChip
	c.sumOffChip = st.SumOffChip
}
