package stats

import (
	"chipletnet/internal/checkpoint"
	"chipletnet/internal/packet"
)

// Snapshot captures the collector's accumulator state.
func (c *Collector) Snapshot() checkpoint.CollectorState {
	st := checkpoint.CollectorState{
		Latencies:         append([]float64(nil), c.latencies...),
		SumLat:            c.sumLat,
		SumNet:            c.sumNet,
		MaxLat:            c.maxLat,
		MeasuredDelivered: c.measuredDelivered,
		DeliveredAll:      c.deliveredAll,
		AcceptedFlits:     c.acceptedFlits,
		SumRouters:        c.sumRouters,
		SumOnChip:         c.sumOnChip,
		SumOffChip:        c.sumOffChip,
		ClassLatencies:    make([][]float64, packet.NumClasses),
		ClassMax:          make([]int64, packet.NumClasses),
		ClassDelivered:    make([]int, packet.NumClasses),
		ClassFlits:        make([]int64, packet.NumClasses),
	}
	for cl := 0; cl < int(packet.NumClasses); cl++ {
		st.ClassLatencies[cl] = append([]float64(nil), c.classLat[cl]...)
		st.ClassMax[cl] = c.classMax[cl]
		st.ClassDelivered[cl] = c.classDelivered[cl]
		st.ClassFlits[cl] = c.classFlits[cl]
	}
	// The per-class latency sums are recomputed on restore from the
	// retained samples, so they are not serialized.
	return st
}

// Restore lays snapshot state back onto the collector. Snapshots written
// before per-class accounting existed carry no class sections; they
// restore with all-zero class accumulators (their traffic predates
// classes, so the aggregate view is the complete one).
func (c *Collector) Restore(st *checkpoint.CollectorState) {
	c.latencies = append([]float64(nil), st.Latencies...)
	c.sumLat = st.SumLat
	c.sumNet = st.SumNet
	c.maxLat = st.MaxLat
	c.measuredDelivered = st.MeasuredDelivered
	c.deliveredAll = st.DeliveredAll
	c.acceptedFlits = st.AcceptedFlits
	c.sumRouters = st.SumRouters
	c.sumOnChip = st.SumOnChip
	c.sumOffChip = st.SumOffChip
	for cl := 0; cl < int(packet.NumClasses); cl++ {
		c.classLat[cl] = nil
		c.classSum[cl] = 0
		c.classMax[cl] = 0
		c.classDelivered[cl] = 0
		c.classFlits[cl] = 0
		if cl < len(st.ClassLatencies) {
			c.classLat[cl] = append([]float64(nil), st.ClassLatencies[cl]...)
			for _, l := range st.ClassLatencies[cl] {
				c.classSum[cl] += l
			}
		}
		if cl < len(st.ClassMax) {
			c.classMax[cl] = st.ClassMax[cl]
		}
		if cl < len(st.ClassDelivered) {
			c.classDelivered[cl] = st.ClassDelivered[cl]
		}
		if cl < len(st.ClassFlits) {
			c.classFlits[cl] = st.ClassFlits[cl]
		}
	}
}
