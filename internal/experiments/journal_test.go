package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	pts := []Point{{Experiment: "fig11-uniform", Series: "hypercube", X: 0.1, AvgLatency: 42}}
	if err := j.Record(JournalEntry{Key: "a", Status: StatusDone, Attempts: 1, Points: pts}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(JournalEntry{Key: "b", Status: StatusFailed, Attempts: 3, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, ok := j2.Done("a")
	if !ok || len(got) != 1 || got[0].AvgLatency != 42 {
		t.Errorf("Done(a) = %v, %v; want recorded point back", got, ok)
	}
	if _, ok := j2.Done("b"); ok {
		t.Error("failed entry counted as done")
	}
	if e, ok := j2.Lookup("b"); !ok || e.Attempts != 3 || e.Error != "boom" {
		t.Errorf("Lookup(b) = %+v, %v", e, ok)
	}
}

// TestJournalLaterEntryOverrides: a retried task appends a second entry
// for its key; the load must keep the later one.
func TestJournalLaterEntryOverrides(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(JournalEntry{Key: "a", Status: StatusFailed, Attempts: 1, Error: "flaky"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(JournalEntry{Key: "a", Status: StatusDone, Attempts: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if e, _ := j2.Lookup("a"); e.Status != StatusDone || e.Attempts != 2 {
		t.Errorf("later entry did not override: %+v", e)
	}
}

// TestJournalTruncatedLastLine: a crash mid-append leaves a partial final
// line; the loader must drop it and keep every complete entry.
func TestJournalTruncatedLastLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(JournalEntry{Key: "a", Status: StatusDone, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"Key":"b","Sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("truncated final line must be tolerated: %v", err)
	}
	defer j2.Close()
	if _, ok := j2.Done("a"); !ok {
		t.Error("complete entry lost")
	}
	if _, ok := j2.Lookup("b"); ok {
		t.Error("partial entry surfaced")
	}
}

// TestJournalCorruptMiddle: garbage before the final line is real
// corruption, not a crash signature, and must be reported.
func TestJournalCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	data := `{"Key":"a","Status":"done"}` + "\ngarbage\n" + `{"Key":"b","Status":"done"}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Error("mid-file corruption not reported")
	}
}

func TestCampaignTasksStableKeys(t *testing.T) {
	names := []string{"fig11", "fig12", "fig14", "faults"}
	a, err := CampaignTasks(Quick, names)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CampaignTasks(Quick, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("enumeration not reproducible: %d vs %d tasks", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Figure != b[i].Figure {
			t.Errorf("task %d differs across enumerations: %q vs %q", i, a[i].Key, b[i].Key)
		}
		if seen[a[i].Key] {
			t.Errorf("duplicate task key %q", a[i].Key)
		}
		seen[a[i].Key] = true
	}
	if _, err := CampaignTasks(Quick, []string{"fig99"}); err == nil {
		t.Error("unknown experiment not rejected")
	}
}
