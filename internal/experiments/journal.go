package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal entry statuses.
const (
	StatusDone   = "done"
	StatusFailed = "failed"
)

// JournalEntry is one line of a campaign journal: the outcome of one
// campaign task. Done entries carry the measured points so a resumed
// campaign can emit complete figures without re-running finished work.
type JournalEntry struct {
	Key      string
	Status   string // StatusDone or StatusFailed
	Attempts int
	Error    string  `json:",omitempty"`
	Points   []Point `json:",omitempty"`
}

// Journal is a crash-safe record of campaign progress: an append-only
// JSONL file with one entry per completed or abandoned task, fsynced
// after every record. A process killed mid-write leaves at most one
// truncated final line, which the loader tolerates; a later entry for a
// key overrides an earlier one, so retried tasks simply append.
//
// Record is safe for concurrent use; the campaign supervisor calls it
// from its worker pool.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]JournalEntry
}

// OpenJournal opens (creating if needed) the journal at path and loads
// its existing entries. A truncated final line — the signature of a
// crash mid-append — is discarded; any earlier malformed line is
// reported as corruption.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	entries := map[string]JournalEntry{}
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if i == len(lines)-1 {
				break // interrupted final append
			}
			return nil, fmt.Errorf("experiments: journal %s line %d: %w", path, i+1, err)
		}
		entries[e.Key] = e
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, entries: entries}, nil
}

// Record appends one entry and syncs it to disk before returning, so a
// crash immediately after a task finishes cannot lose its outcome.
func (j *Journal) Record(e JournalEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.entries[e.Key] = e
	return nil
}

// Lookup returns the latest journaled entry for key.
func (j *Journal) Lookup(key string) (JournalEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	return e, ok
}

// Done returns the recorded points of key if it is journaled complete.
// Failed entries do not count: a resumed campaign re-runs them.
func (j *Journal) Done(key string) ([]Point, bool) {
	e, ok := j.Lookup(key)
	if !ok || e.Status != StatusDone {
		return nil, false
	}
	return e.Points, true
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
