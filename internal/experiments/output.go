package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"chipletnet/internal/plot"
)

// WriteCSV writes points as CSV with a header row.
func WriteCSV(w io.Writer, pts []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"experiment", "series", "x", "xname",
		"avg_latency", "p99_latency", "p999_latency", "accepted", "energy_pj_per_bit",
		"offchip_hops", "routers", "saturated", "deadlock",
	}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			p.Experiment, p.Series,
			strconv.FormatFloat(p.X, 'g', -1, 64), p.XName,
			fmt.Sprintf("%.2f", p.AvgLatency),
			fmt.Sprintf("%.2f", p.P99Latency),
			fmt.Sprintf("%.2f", p.P999Latency),
			fmt.Sprintf("%.4f", p.Accepted),
			fmt.Sprintf("%.2f", p.EnergyPJ),
			fmt.Sprintf("%.2f", p.OffChip),
			fmt.Sprintf("%.2f", p.Routers),
			strconv.FormatBool(p.Saturated),
			strconv.FormatBool(p.Deadlock),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatCurves renders a point set as per-series latency curves, one
// series per block, in the shape of the paper's latency/injection-rate
// figures.
func FormatCurves(w io.Writer, pts []Point) {
	byExp := map[string][]Point{}
	var exps []string
	for _, p := range pts {
		if _, ok := byExp[p.Experiment]; !ok {
			exps = append(exps, p.Experiment)
		}
		byExp[p.Experiment] = append(byExp[p.Experiment], p)
	}
	sort.Strings(exps)
	for _, exp := range exps {
		sub := byExp[exp]
		fmt.Fprintf(w, "## %s\n", exp)
		for _, series := range Series(sub) {
			fmt.Fprintf(w, "  %-30s", series)
			var xs []Point
			for _, p := range sub {
				if p.Series == series {
					xs = append(xs, p)
				}
			}
			sort.Slice(xs, func(i, j int) bool { return xs[i].X < xs[j].X })
			for _, p := range xs {
				mark := ""
				if p.Deadlock {
					mark = "!DL"
				} else if p.Saturated {
					mark = "*"
				}
				fmt.Fprintf(w, "  %s=%g:%.0f%s", p.XName[:1], p.X, p.AvgLatency, mark)
			}
			fmt.Fprintf(w, "  (saturation ~%.2f)\n", SaturationPoint(sub, series))
		}
	}
}

// ReadCSV parses points previously written by WriteCSV (only the fields
// the plots need are recovered: experiment, series, x, xname, latency,
// accepted, saturated).
func ReadCSV(r io.Reader) ([]Point, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) < 1 {
		return nil, fmt.Errorf("experiments: empty CSV")
	}
	col := map[string]int{}
	for i, name := range recs[0] {
		col[name] = i
	}
	for _, want := range []string{"experiment", "series", "x", "xname", "avg_latency"} {
		if _, ok := col[want]; !ok {
			return nil, fmt.Errorf("experiments: CSV missing column %q", want)
		}
	}
	var pts []Point
	for _, rec := range recs[1:] {
		p := Point{
			Experiment: rec[col["experiment"]],
			Series:     rec[col["series"]],
			XName:      rec[col["xname"]],
		}
		if p.X, err = strconv.ParseFloat(rec[col["x"]], 64); err != nil {
			return nil, fmt.Errorf("experiments: bad x %q: %w", rec[col["x"]], err)
		}
		if p.AvgLatency, err = strconv.ParseFloat(rec[col["avg_latency"]], 64); err != nil {
			return nil, fmt.Errorf("experiments: bad latency: %w", err)
		}
		if i, ok := col["p999_latency"]; ok {
			p.P999Latency, _ = strconv.ParseFloat(rec[i], 64)
		}
		if i, ok := col["accepted"]; ok {
			p.Accepted, _ = strconv.ParseFloat(rec[i], 64)
		}
		if i, ok := col["saturated"]; ok {
			p.Saturated, _ = strconv.ParseBool(rec[i])
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// WriteSVGs renders one latency-vs-X line chart per experiment into dir
// (files named <experiment>.svg) and returns the written paths. The
// vertical axis is clipped at 5x the cheapest series' base latency so the
// pre-saturation region stays readable, matching how the paper's figures
// are framed.
func WriteSVGs(dir string, pts []Point) ([]string, error) {
	byExp := map[string][]Point{}
	for _, p := range pts {
		byExp[p.Experiment] = append(byExp[p.Experiment], p)
	}
	var written []string
	var exps []string
	for e := range byExp {
		exps = append(exps, e)
	}
	sort.Strings(exps)
	for _, exp := range exps {
		sub := byExp[exp]
		chart := &plot.Chart{
			Title:  exp,
			XLabel: sub[0].XName,
			YLabel: "avg packet latency (cycles)",
		}
		minBase := 0.0
		for _, name := range Series(sub) {
			var s plot.Series
			s.Name = name
			base := 0.0
			for _, p := range sub {
				if p.Series != name {
					continue
				}
				s.X = append(s.X, p.X)
				s.Y = append(s.Y, p.AvgLatency)
				if base == 0 || p.AvgLatency < base {
					base = p.AvgLatency
				}
			}
			if minBase == 0 || base < minBase {
				minBase = base
			}
			chart.Series = append(chart.Series, s)
		}
		chart.YMax = 5 * minBase
		path := filepath.Join(dir, exp+".svg")
		fh, err := os.Create(path)
		if err != nil {
			return written, err
		}
		if err := chart.SVG(fh); err != nil {
			fh.Close()
			return written, err
		}
		if err := fh.Close(); err != nil {
			return written, err
		}
		written = append(written, path)
	}
	return written, nil
}

// FormatTable1 renders the Table I reproduction.
func FormatTable1(w io.Writer, rows []DiameterRow) {
	fmt.Fprintf(w, "%-11s %9s %18s %19s %14s\n",
		"topology", "chiplets", "formula-diameter", "measured-diameter", "node-diameter")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %9d %18d %19d %14d\n",
			r.Topology, r.Chiplets, r.Formula, r.Measured, r.NodeDiameter)
	}
}
