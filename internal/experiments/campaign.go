package experiments

import "fmt"

// Task is one independently runnable, independently journaled unit of an
// experiment campaign — a traffic pattern, a bandwidth setting, or a
// whole small figure. Key is the task's stable identity across campaign
// restarts; Figure is the experiment name the points belong to (the
// chipletfig output-file grouping).
type Task struct {
	Key    string
	Figure string
	Run    func() ([]Point, error)
}

// CampaignTasks enumerates the tasks of the named experiments at the
// given scale, in a deterministic order with stable keys. The expensive
// figures split along their outermost sweep (per pattern, per variant
// and topology, per bandwidth), so a killed-and-restarted campaign only
// repeats the unfinished slices.
func CampaignTasks(s Scale, names []string) ([]Task, error) {
	var tasks []Task
	add := func(key, figure string, run func() ([]Point, error)) {
		tasks = append(tasks, Task{Key: key, Figure: figure, Run: run})
	}
	for _, name := range names {
		switch name {
		case "fig11":
			for _, pat := range Fig11Patterns() {
				add("fig11/"+pat, name, func() ([]Point, error) { return Fig11(s, pat) })
			}
		case "fig12":
			for _, v := range fig12Variants(s) {
				for _, topo := range v.Topos {
					series := seriesName(topo)
					add("fig12/"+v.Label+"/"+series, name, func() ([]Point, error) {
						cfg := baseConfig(s)
						cfg.ChipletW, cfg.ChipletH = v.NoCW, v.NoCW
						cfg.Topology = topo
						return sweep(s, cfg, "fig12"+v.Label, series)
					})
				}
			}
		case "fig13":
			add("fig13", name, func() ([]Point, error) { return Fig13(s) })
		case "fig14":
			for _, bw := range Fig14Bandwidths() {
				add(fmt.Sprintf("fig14/bw%dflits", bw), name, func() ([]Point, error) { return Fig14(s, bw) })
			}
		case "fig15":
			add("fig15", name, func() ([]Point, error) { return Fig15(s) })
		case "fig16":
			add("fig16", name, func() ([]Point, error) { return Fig16(s) })
		case "ablation":
			add("ablation", name, func() ([]Point, error) { return AblationRouting(s) })
		case "faults":
			add("faults", name, func() ([]Point, error) { return FaultTolerance(s) })
		case "collective":
			add("collective", name, func() ([]Point, error) { return CollectiveStudy(s) })
		case "workload":
			add("workload", name, func() ([]Point, error) { return WorkloadStudy(s) })
		default:
			return nil, fmt.Errorf("experiments: unknown experiment %q", name)
		}
	}
	return tasks, nil
}
