package experiments

import (
	"reflect"
	"testing"
)

// TestSaturationPointEdgeCases pins the estimator's behavior on the
// degenerate sweeps a campaign can produce: fully saturated series,
// single-point series, non-monotone saturation flags (a mid-sweep
// saturated run between stable ones — latency noise near the knee), and
// series absent from the point set.
func TestSaturationPointEdgeCases(t *testing.T) {
	pts := []Point{
		// all-saturated: every probe over the knee
		{Series: "sat", X: 0.05, Saturated: true},
		{Series: "sat", X: 0.1, Saturated: true},
		// single stable point
		{Series: "one", X: 0.2, Saturated: false},
		// single saturated point
		{Series: "one-sat", X: 0.2, Saturated: true},
		// non-monotone: saturated at 0.3 but stable again at 0.5 — the
		// estimator takes the largest stable rate, not the first knee
		{Series: "bump", X: 0.1, Saturated: false},
		{Series: "bump", X: 0.3, Saturated: true},
		{Series: "bump", X: 0.5, Saturated: false},
		{Series: "bump", X: 0.7, Saturated: true},
		// deadlocked runs arrive with Saturated set by pointFrom
		{Series: "dead", X: 0.1, Saturated: true, Deadlock: true},
	}
	cases := []struct {
		series string
		want   float64
	}{
		{"sat", 0},
		{"one", 0.2},
		{"one-sat", 0},
		{"bump", 0.5},
		{"dead", 0},
		{"missing", 0},
	}
	for _, c := range cases {
		if got := SaturationPoint(pts, c.series); got != c.want {
			t.Errorf("SaturationPoint(%q) = %g, want %g", c.series, got, c.want)
		}
	}

	if got := SaturationPoint(nil, "sat"); got != 0 {
		t.Errorf("SaturationPoint on empty point set = %g, want 0", got)
	}

	want := []string{"bump", "dead", "one", "one-sat", "sat"}
	if got := Series(pts); !reflect.DeepEqual(got, want) {
		t.Errorf("Series = %v, want %v", got, want)
	}
	if got := Series(nil); got != nil {
		t.Errorf("Series(nil) = %v, want nil", got)
	}
}
