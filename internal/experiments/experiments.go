// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI–§VII): the Fig. 11 traffic-pattern study, the Fig. 12
// scale study, the Fig. 13 energy estimation, the Fig. 14 link-bandwidth
// study, the Fig. 15 link-latency/buffer study, the Fig. 16 interleaving
// study, and the Table I diameter check. cmd/chipletfig drives it from the
// command line and bench_test.go wraps each experiment in a testing.B.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"chipletnet"
	"chipletnet/internal/verify"
)

// Scale controls experiment cost: Quick for benchmarks and CI, Full for
// the paper-fidelity numbers recorded in EXPERIMENTS.md.
type Scale struct {
	Name          string
	WarmupCycles  int64
	MeasureCycles int64
	// Rates is the injection sweep (flits/node/cycle).
	Rates []float64
	// MaxChiplets caps system size (0 = no cap); Quick skips the
	// 256-chiplet points.
	MaxChiplets int
	// CollectiveSizes are the payload sizes (flits) of the collective
	// study; nil uses the default {64, 512, 2048}.
	CollectiveSizes []int
}

// Quick is sized for single-digit-minute regeneration of every figure.
var Quick = Scale{
	Name:            "quick",
	WarmupCycles:    300,
	MeasureCycles:   1500,
	Rates:           []float64{0.1, 0.3, 0.6, 1.0},
	MaxChiplets:     64,
	CollectiveSizes: []int{64, 512},
}

// Full matches the paper's Table II simulation length (1000 warm-up +
// 5000 measured cycles) with a denser rate sweep.
var Full = Scale{
	Name:          "full",
	WarmupCycles:  1000,
	MeasureCycles: 5000,
	Rates:         []float64{0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0, 1.2},
}

// Point is one measured point of one series of one figure.
type Point struct {
	Experiment string  // e.g. "fig11-uniform"
	Series     string  // e.g. "hypercube"
	X          float64 // the swept quantity
	XName      string  // what X is ("injection rate", "chiplets", ...)

	AvgLatency  float64
	P99Latency  float64
	P999Latency float64
	Accepted    float64 // flits/node/cycle
	EnergyPJ    float64 // pJ/bit
	OffChip     float64 // mean off-chip hops
	Routers     float64 // mean routers traversed
	Saturated   bool
	Deadlock    bool
}

// baseConfig returns the Table II configuration at the given scale.
func baseConfig(s Scale) chipletnet.Config {
	cfg := chipletnet.DefaultConfig()
	cfg.WarmupCycles = s.WarmupCycles
	cfg.MeasureCycles = s.MeasureCycles
	return cfg
}

// preflight statically verifies the design point's routing before any
// cycle is simulated: a sampled channel-dependency-graph analysis
// (internal/verify) must find no deadlock cycle, unreachable pair or VC
// inconsistency. Verdicts are memoized per routing-relevant configuration,
// so a rate sweep over one design point pays for one analysis.
var preflightCache sync.Map // key string -> error (possibly nil)

func preflight(cfg chipletnet.Config) error {
	key := fmt.Sprintf("%s%v|%dx%d|vc%d|%s|sep%v|unsafe%v|fault%g|seed%d",
		cfg.Topology.Kind, cfg.Topology.Dims, cfg.ChipletW, cfg.ChipletH,
		cfg.VCs, cfg.Routing, cfg.DisableNDMeshVCSeparation,
		cfg.AllowUnsafeRouting, cfg.CrossLinkFaultFraction, cfg.Seed)
	if v, ok := preflightCache.Load(key); ok {
		if v == nil {
			return nil
		}
		return v.(error)
	}
	rep, err := chipletnet.VerifyConfig(cfg, verify.Options{MaxDests: 16, MaxSources: 8})
	if err == nil {
		err = rep.Err()
	}
	if err != nil {
		err = fmt.Errorf("pre-flight verification failed: %w", err)
		preflightCache.Store(key, err)
		return err
	}
	preflightCache.Store(key, nil)
	return nil
}

// job is one pending simulation of an experiment: the configuration plus
// the labels of the Point it will become.
type job struct {
	cfg    chipletnet.Config
	exp    string
	series string
	x      float64
	xname  string
}

// runJobs verifies and simulates a batch of jobs and converts the
// results to points in job order. All jobs of a batch run concurrently
// through chipletnet.RunEach — the parallelism lives at the module root
// (internal packages spawn no goroutines; see cmd/chipletlint), and the
// output ordering is positional, so it is schedule-independent. Figures
// hand their complete series × rate cross product here, which keeps
// GOMAXPROCS saturated across series boundaries instead of only within
// one rate sweep.
func runJobs(jobs []job) ([]Point, error) {
	cfgs := make([]chipletnet.Config, len(jobs))
	for i, j := range jobs {
		if err := preflight(j.cfg); err != nil {
			return nil, fmt.Errorf("%s/%s at %s=%g: %w", j.exp, j.series, j.xname, j.x, err)
		}
		cfgs[i] = j.cfg
	}
	results, errs := chipletnet.RunEach(cfgs)
	pts := make([]Point, len(jobs))
	for i, j := range jobs {
		if errs[i] != nil {
			return nil, fmt.Errorf("%s/%s at %s=%g: %w", j.exp, j.series, j.xname, j.x, errs[i])
		}
		pts[i] = pointFrom(results[i], j)
	}
	return pts, nil
}

func pointFrom(res chipletnet.Result, j job) Point {
	return Point{
		Experiment: j.exp, Series: j.series, X: j.x, XName: j.xname,
		AvgLatency:  res.AvgLatency,
		P99Latency:  res.P99Latency,
		P999Latency: res.P999Latency,
		Accepted:    res.AcceptedFlitsPerNodeCycle,
		EnergyPJ:    res.EnergyPJPerBit,
		OffChip:     res.AvgOffChipHops,
		Routers:     res.AvgRouters,
		Saturated:   res.Saturated(),
		Deadlock:    res.Deadlocked,
	}
}

// sweepJobs enqueues cfg over the scale's rates for one series.
func sweepJobs(s Scale, cfg chipletnet.Config, exp, series string) []job {
	jobs := make([]job, 0, len(s.Rates))
	for _, r := range s.Rates {
		c := cfg
		c.InjectionRate = r
		jobs = append(jobs, job{cfg: c, exp: exp, series: series, x: r, xname: "injection-rate"})
	}
	return jobs
}

// sweep runs cfg over the scale's rates for one series (the granularity
// campaign tasks use).
func sweep(s Scale, cfg chipletnet.Config, exp, series string) ([]Point, error) {
	return runJobs(sweepJobs(s, cfg, exp, series))
}

// fig11Topologies returns the three §VI-B systems on 64 4×4 chiplets:
// the 8×8 flat mesh baseline, the 4×4×4 3D-mesh and the 2^6 hypercube.
func fig11Topologies() []chipletnet.Topology {
	return []chipletnet.Topology{
		chipletnet.MeshTopology(8, 8),
		chipletnet.NDMeshTopology(4, 4, 4),
		chipletnet.HypercubeTopology(6),
	}
}

func seriesName(t chipletnet.Topology) string {
	switch t.Kind {
	case "mesh":
		return "2D-mesh"
	case "ndmesh":
		return fmt.Sprintf("%dD-mesh", len(t.Dims))
	case "hypercube":
		return "hypercube"
	default:
		return t.Kind
	}
}

// Fig11 reproduces Fig. 11: latency vs. injection rate for one traffic
// pattern over the three topologies (64 4×4 chiplets).
func Fig11(s Scale, pattern string) ([]Point, error) {
	var jobs []job
	for _, topo := range fig11Topologies() {
		cfg := baseConfig(s)
		cfg.Topology = topo
		cfg.Pattern = pattern
		jobs = append(jobs, sweepJobs(s, cfg, "fig11-"+pattern, seriesName(topo))...)
	}
	return runJobs(jobs)
}

// Fig11Patterns lists the six Fig. 11 traffic patterns.
func Fig11Patterns() []string {
	return []string{"uniform", "hotspot", "bit-complement", "bit-reverse", "bit-shuffle", "bit-transpose"}
}

// fig12Variant is one subfigure of Fig. 12.
type fig12Variant struct {
	Label    string
	NoCW     int
	Chiplets int
	Topos    []chipletnet.Topology
}

func fig12Variants(s Scale) []fig12Variant {
	vs := []fig12Variant{
		{
			Label: "a-16chiplets-4x4NoC", NoCW: 4, Chiplets: 16,
			Topos: []chipletnet.Topology{
				chipletnet.MeshTopology(4, 4),
				chipletnet.NDMeshTopology(4, 2, 2),
				chipletnet.HypercubeTopology(4),
			},
		},
		{
			Label: "b-16chiplets-8x8NoC", NoCW: 8, Chiplets: 16,
			Topos: []chipletnet.Topology{
				chipletnet.MeshTopology(4, 4),
				chipletnet.NDMeshTopology(4, 2, 2),
				chipletnet.HypercubeTopology(4),
			},
		},
		{
			Label: "c-64chiplets-4x4NoC", NoCW: 4, Chiplets: 64,
			Topos: []chipletnet.Topology{
				chipletnet.MeshTopology(8, 8),
				chipletnet.NDMeshTopology(4, 4, 4),
				chipletnet.HypercubeTopology(6),
			},
		},
		{
			Label: "d-256chiplets-4x4NoC", NoCW: 4, Chiplets: 256,
			Topos: []chipletnet.Topology{
				chipletnet.MeshTopology(16, 16),
				chipletnet.NDMeshTopology(4, 4, 4, 4),
				chipletnet.HypercubeTopology(8),
			},
		},
	}
	var out []fig12Variant
	for _, v := range vs {
		if s.MaxChiplets > 0 && v.Chiplets > s.MaxChiplets {
			continue
		}
		out = append(out, v)
	}
	return out
}

// Fig12 reproduces Fig. 12: latency vs. injection rate across system
// scales (16/64/256 chiplets; 4×4 and 8×8 NoCs) under uniform traffic.
func Fig12(s Scale) ([]Point, error) {
	var jobs []job
	for _, v := range fig12Variants(s) {
		for _, topo := range v.Topos {
			cfg := baseConfig(s)
			cfg.ChipletW, cfg.ChipletH = v.NoCW, v.NoCW
			cfg.Topology = topo
			jobs = append(jobs, sweepJobs(s, cfg, "fig12"+v.Label, seriesName(topo))...)
		}
	}
	return runJobs(jobs)
}

// Fig13 reproduces Fig. 13: average transport energy (pJ/bit) of 2D-mesh
// vs hypercube across chiplet counts and NoC scales, measured from
// simulated hop counts at light load.
func Fig13(s Scale) ([]Point, error) {
	type sys struct {
		chiplets int
		nocW     int
		topo     chipletnet.Topology
		series   string
	}
	var systems []sys
	for _, n := range []int{16, 64, 256} {
		if s.MaxChiplets > 0 && n > s.MaxChiplets {
			continue
		}
		for _, w := range []int{4, 8} {
			var meshDims [2]int
			var cubeN int
			switch n {
			case 16:
				meshDims, cubeN = [2]int{4, 4}, 4
			case 64:
				meshDims, cubeN = [2]int{8, 8}, 6
			case 256:
				meshDims, cubeN = [2]int{16, 16}, 8
			}
			systems = append(systems,
				sys{n, w, chipletnet.MeshTopology(meshDims[0], meshDims[1]), fmt.Sprintf("2D-mesh-%dx%dNoC", w, w)},
				sys{n, w, chipletnet.HypercubeTopology(cubeN), fmt.Sprintf("hypercube-%dx%dNoC", w, w)})
		}
	}
	var jobs []job
	for _, y := range systems {
		cfg := baseConfig(s)
		cfg.ChipletW, cfg.ChipletH = y.nocW, y.nocW
		cfg.Topology = y.topo
		cfg.InjectionRate = 0.05 // energy is a hop-count property; light load
		jobs = append(jobs, job{cfg: cfg, exp: "fig13-energy", series: y.series, x: float64(y.chiplets), xname: "chiplets"})
	}
	return runJobs(jobs)
}

// Fig14 reproduces Fig. 14: latency vs. injection rate for chiplet-to-
// chiplet bandwidths of 1/4x, 1/2x, 1x and 2x the on-chip bandwidth
// (32/64/128/256 bits/cycle) on 64 4×4 chiplets.
func Fig14(s Scale, offChipBWFlits int) ([]Point, error) {
	var jobs []job
	for _, topo := range fig11Topologies() {
		cfg := baseConfig(s)
		cfg.Topology = topo
		cfg.OffChipBW = offChipBWFlits
		exp := fmt.Sprintf("fig14-bw%dbits", offChipBWFlits*cfg.FlitBits)
		jobs = append(jobs, sweepJobs(s, cfg, exp, seriesName(topo))...)
	}
	return runJobs(jobs)
}

// Fig14Bandwidths lists the swept off-chip bandwidths in flits/cycle.
func Fig14Bandwidths() []int { return []int{1, 2, 4, 8} }

// Fig15 reproduces Fig. 15: hypercube with chiplet-to-chiplet link delays
// of 5/10/15 cycles and interface buffers of 1024/2048/4096 bits, against
// the 2D-mesh baseline at 5 cycles / 2048 bits.
func Fig15(s Scale) ([]Point, error) {
	// Baseline series.
	base := baseConfig(s)
	base.Topology = chipletnet.MeshTopology(8, 8)
	jobs := sweepJobs(s, base, "fig15", "2D-mesh-delay5-buf2048")
	for _, delay := range []int{5, 10, 15} {
		for _, bufBits := range []int{1024, 2048, 4096} {
			if delay != 5 && bufBits != 2048 {
				continue // the paper sweeps one knob at a time
			}
			cfg := baseConfig(s)
			cfg.Topology = chipletnet.HypercubeTopology(6)
			cfg.OffChipLatency = delay
			cfg.InterfaceBufFlits = bufBits / cfg.FlitBits
			series := fmt.Sprintf("hypercube-delay%d-buf%d", delay, bufBits)
			jobs = append(jobs, sweepJobs(s, cfg, "fig15", series)...)
		}
	}
	return runJobs(jobs)
}

// Fig16 reproduces Fig. 16: interleaving granularity (none, message-level,
// packet-level) on the 64-chiplet hypercube at 64 and 128 bits/cycle
// chiplet-to-chiplet bandwidth.
func Fig16(s Scale) ([]Point, error) {
	var jobs []job
	for _, bw := range []int{2, 4} { // 64 and 128 bits/cycle
		for _, il := range []string{"none", "message", "packet"} {
			cfg := baseConfig(s)
			cfg.Topology = chipletnet.HypercubeTopology(6)
			cfg.OffChipBW = bw
			cfg.Interleave = il
			exp := fmt.Sprintf("fig16-bw%dbits", bw*cfg.FlitBits)
			jobs = append(jobs, sweepJobs(s, cfg, exp, "interleave-"+il)...)
		}
	}
	return runJobs(jobs)
}

// AblationRouting compares Duato-escape routing against safe/unsafe flow
// control on the 64-chiplet hypercube and the irregular tree — the two
// deadlock-avoidance schemes of §IV (a design-choice ablation flagged in
// DESIGN.md; no figure in the paper).
func AblationRouting(s Scale) ([]Point, error) {
	var jobs []job
	for _, topo := range []chipletnet.Topology{
		chipletnet.HypercubeTopology(6),
		chipletnet.TreeTopology(15, 2),
	} {
		for _, mode := range []chipletnet.RoutingMode{chipletnet.RoutingDuato, chipletnet.RoutingSafeUnsafe} {
			cfg := baseConfig(s)
			cfg.Topology = topo
			cfg.Routing = mode
			jobs = append(jobs, sweepJobs(s, cfg, "ablation-routing-"+seriesName(topo), string(mode))...)
		}
	}
	return runJobs(jobs)
}

// FaultTolerance measures graceful degradation on the 64-chiplet
// hypercube: latency and saturation as 0%/10%/20% of the
// chiplet-to-chiplet channels are disabled and routing steers around them
// using the interface groups' link redundancy — the fault-tolerance
// capability the paper's introduction calls for (an extension experiment;
// no figure in the paper).
func FaultTolerance(s Scale) ([]Point, error) {
	var jobs []job
	for _, frac := range []float64{0, 0.1, 0.2} {
		cfg := baseConfig(s)
		cfg.Topology = chipletnet.HypercubeTopology(6)
		cfg.CrossLinkFaultFraction = frac
		series := fmt.Sprintf("faults-%d%%", int(frac*100))
		jobs = append(jobs, sweepJobs(s, cfg, "ext-fault-tolerance", series)...)
	}
	return runJobs(jobs)
}

// CollectiveStudy measures collective-operation completion time across
// topologies and payload sizes on 16 chiplets (extension experiment;
// collective traffic motivates the paper's §II-B). Point reuse:
// AvgLatency holds the completion time in cycles and Accepted the bus
// bandwidth (flits/cycle/participant).
func CollectiveStudy(s Scale) ([]Point, error) {
	var pts []Point
	for _, topo := range []chipletnet.Topology{
		chipletnet.MeshTopology(4, 4),
		chipletnet.HypercubeTopology(4),
	} {
		sizes := s.CollectiveSizes
		if sizes == nil {
			sizes = []int{64, 512, 2048}
		}
		for _, kind := range chipletnet.CollectiveKinds() {
			for _, data := range sizes {
				cfg := baseConfig(s)
				cfg.Topology = topo
				res, err := chipletnet.RunCollective(cfg, chipletnet.Collective{Kind: kind, DataFlits: data})
				if err != nil {
					return nil, fmt.Errorf("collective %s on %v: %w", kind, topo, err)
				}
				pts = append(pts, Point{
					Experiment: "ext-collective-" + kind,
					Series:     seriesName(topo),
					X:          float64(data),
					XName:      "data-flits",
					AvgLatency: float64(res.CompletionCycles),
					Accepted:   res.BusBandwidth,
				})
			}
		}
	}
	return pts, nil
}

// WorkloadStudy measures QoS interference under the AI-scale-out
// workload: collective phases (latency-critical gradient exchange) over
// rising bulk memory-traffic backgrounds, on 16-chiplet systems
// (extension experiment; the figure family behind the trace/QoS
// subsystem of internal/workload). One point per (topology, class,
// background rate): latency fields carry the class's own percentiles
// and Accepted its per-class throughput, so the figure shows how the
// bulk background erodes collective and request tail latency.
func WorkloadStudy(s Scale) ([]Point, error) {
	memRates := []float64{0.01, 0.05, 0.1}
	topos := []chipletnet.Topology{
		chipletnet.MeshTopology(4, 4),
		chipletnet.HypercubeTopology(4),
	}
	var cfgs []chipletnet.Config
	var labels []string
	for _, topo := range topos {
		for _, mr := range memRates {
			cfg := baseConfig(s)
			cfg.Topology = topo
			cfg.Workload = fmt.Sprintf(
				"aiscaleout:allreduce-ring,data=256,compute=200,memrate=%g,reqrate=0.01", mr)
			if err := preflight(cfg); err != nil {
				return nil, fmt.Errorf("ext-workload-qos/%s at mem-rate=%g: %w", seriesName(topo), mr, err)
			}
			cfgs = append(cfgs, cfg)
			labels = append(labels, seriesName(topo))
		}
	}
	results, errs := chipletnet.RunEach(cfgs)
	var pts []Point
	for i, res := range results {
		if errs[i] != nil {
			return nil, fmt.Errorf("ext-workload-qos/%s: %w", labels[i], errs[i])
		}
		mr := memRates[i%len(memRates)]
		for _, cs := range res.Classes {
			pts = append(pts, Point{
				Experiment:  "ext-workload-qos",
				Series:      labels[i] + "/" + cs.Class,
				X:           mr,
				XName:       "mem-rate",
				AvgLatency:  cs.AvgLatency,
				P99Latency:  cs.P99Latency,
				P999Latency: cs.P999Latency,
				Accepted:    cs.AcceptedFlitsPerNodeCycle,
				Deadlock:    res.Deadlocked,
			})
		}
	}
	return pts, nil
}

// DiameterRow is one row of the Table I reproduction.
type DiameterRow struct {
	Topology string
	Chiplets int
	// Formula is the paper's closed-form chiplet-level diameter.
	Formula int
	// Measured is the BFS chiplet-level diameter of the built system.
	Measured int
	// NodeDiameter is the node-level diameter including on-chip hops.
	NodeDiameter int
}

// Table1 reproduces Table I for 64-chiplet systems built from 4×4
// chiplets: the closed-form diameters against BFS-measured diameters of
// the actual constructions (plus dragonfly, which the paper lists at
// diameter 1).
func Table1() ([]DiameterRow, error) {
	type entry struct {
		name    string
		topo    chipletnet.Topology
		formula int
	}
	entries := []entry{
		{"2D-mesh", chipletnet.MeshTopology(8, 8), 2 * (8 - 1)},       // 2(sqrt(N)-1)
		{"2D-torus", chipletnet.NDTorusTopology(8, 8), 2 * (8 / 2)},   // sqrt(N)
		{"3D-mesh", chipletnet.NDMeshTopology(4, 4, 4), 3 * (4 - 1)},  // n(N^(1/n)-1)
		{"4D-mesh", chipletnet.NDMeshTopology(4, 4, 2, 2), 2*3 + 2*1}, // sum(d_i-1)
		{"hypercube", chipletnet.HypercubeTopology(6), 6},             // log2 N
		{"dragonfly", chipletnet.DragonflyTopology(12), 1},            // fully connected
	}
	var rows []DiameterRow
	for _, e := range entries {
		cfg := chipletnet.DefaultConfig()
		cfg.Topology = e.topo
		sys, err := chipletnet.Build(cfg)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", e.name, err)
		}
		nd, _ := sys.Topo.Diameter()
		rows = append(rows, DiameterRow{
			Topology:     e.name,
			Chiplets:     sys.Topo.NumChiplets(),
			Formula:      e.formula,
			Measured:     sys.Topo.ChipletDiameter(),
			NodeDiameter: nd,
		})
	}
	return rows, nil
}

// SaturationPoint estimates the saturation injection rate of a series from
// its sweep points: the largest rate whose run stayed unsaturated.
func SaturationPoint(pts []Point, series string) float64 {
	best := 0.0
	for _, p := range pts {
		if p.Series == series && !p.Saturated && p.X > best {
			best = p.X
		}
	}
	return best
}

// Series returns the sorted distinct series names of a point set.
func Series(pts []Point) []string {
	set := map[string]bool{}
	for _, p := range pts {
		set[p.Series] = true
	}
	var out []string
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
