package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// tiny is the minimal scale for exercising the experiment plumbing.
var tiny = Scale{
	Name:          "tiny",
	WarmupCycles:  200,
	MeasureCycles: 600,
	Rates:         []float64{0.1, 0.5},
	MaxChiplets:   16,
}

func TestFig11Shape(t *testing.T) {
	pts, err := Fig11(tiny, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	// 3 topologies x 2 rates.
	if len(pts) != 6 {
		t.Fatalf("got %d points", len(pts))
	}
	series := Series(pts)
	want := []string{"2D-mesh", "3D-mesh", "hypercube"}
	if strings.Join(series, ",") != strings.Join(want, ",") {
		t.Errorf("series = %v", series)
	}
	for _, p := range pts {
		if p.Deadlock {
			t.Errorf("deadlock at %s/%g", p.Series, p.X)
		}
		if p.AvgLatency <= 0 {
			t.Errorf("bad latency at %s/%g", p.Series, p.X)
		}
	}
}

func TestFig12RespectsMaxChiplets(t *testing.T) {
	vs := fig12Variants(tiny)
	for _, v := range vs {
		if v.Chiplets > tiny.MaxChiplets {
			t.Errorf("variant %s exceeds cap", v.Label)
		}
	}
	if len(vs) != 2 {
		t.Errorf("want the two 16-chiplet variants, got %d", len(vs))
	}
	full := fig12Variants(Full)
	if len(full) != 4 {
		t.Errorf("full scale should keep all 4 variants, got %d", len(full))
	}
}

func TestFig13EnergyOrdering(t *testing.T) {
	pts, err := Fig13(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 13 advantage grows with chiplet count; at the 16-chiplet
	// tiny scale it holds for the small (4x4) NoC, while the 8x8 NoC is
	// ride-dominated and may invert (the 64/256-chiplet orderings are
	// asserted by the full-scale harness in EXPERIMENTS.md).
	byKey := map[string]float64{}
	for _, p := range pts {
		byKey[p.Series+"@"+itoa(int(p.X))] = p.EnergyPJ
	}
	for _, n := range []int{16} {
		for _, w := range []string{"4x4"} {
			mesh := byKey["2D-mesh-"+w+"NoC@"+itoa(n)]
			cube := byKey["hypercube-"+w+"NoC@"+itoa(n)]
			if mesh == 0 || cube == 0 {
				t.Fatalf("missing energy points for %d chiplets %s", n, w)
			}
			if cube > mesh {
				t.Errorf("%d chiplets %s NoC: hypercube %.2f pJ/bit > mesh %.2f", n, w, cube, mesh)
			}
		}
	}
}

func itoa(n int) string {
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestTable1FormulasMatchMeasured(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Measured != r.Formula {
			t.Errorf("%s: measured chiplet diameter %d != formula %d", r.Topology, r.Measured, r.Formula)
		}
		if r.NodeDiameter < r.Measured {
			t.Errorf("%s: node diameter %d below chiplet diameter %d", r.Topology, r.NodeDiameter, r.Measured)
		}
	}
}

func TestFig16InterleavingOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("64-chiplet experiment skipped in -short mode")
	}
	s := tiny
	s.Rates = []float64{0.8} // bandwidth-constrained point
	pts, err := Fig16(s)
	if err != nil {
		t.Fatal(err)
	}
	// At 64 bits/cycle off-chip, interleaving must not reduce accepted
	// throughput.
	get := func(series string) Point {
		for _, p := range pts {
			if p.Experiment == "fig16-bw64bits" && p.Series == series {
				return p
			}
		}
		t.Fatalf("missing %s", series)
		return Point{}
	}
	none := get("interleave-none")
	msg := get("interleave-message")
	pkt := get("interleave-packet")
	if msg.Accepted < none.Accepted*0.97 || pkt.Accepted < none.Accepted*0.97 {
		t.Errorf("interleaving hurt throughput: none=%.3f msg=%.3f pkt=%.3f",
			none.Accepted, msg.Accepted, pkt.Accepted)
	}
}

func TestFig14BandwidthMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("64-chiplet experiment skipped in -short mode")
	}
	s := tiny
	s.Rates = []float64{0.3}
	lat := map[int]float64{}
	for _, bw := range []int{1, 4} {
		pts, err := Fig14(s, bw)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if p.Series == "hypercube" {
				lat[bw] = p.AvgLatency
			}
		}
	}
	// More chiplet-to-chiplet bandwidth must not increase latency.
	if lat[4] > lat[1] {
		t.Errorf("hypercube latency rose with bandwidth: bw1=%.1f bw4=%.1f", lat[1], lat[4])
	}
}

func TestFaultToleranceExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("64-chiplet experiment skipped in -short mode")
	}
	s := tiny
	s.Rates = []float64{0.2}
	pts, err := FaultTolerance(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Deadlock {
			t.Errorf("%s deadlocked", p.Series)
		}
	}
}

func TestCollectiveStudyRuns(t *testing.T) {
	s := tiny
	s.CollectiveSizes = []int{64}
	pts, err := CollectiveStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	// 2 topologies x 4 collectives x 1 size.
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	for _, p := range pts {
		if p.AvgLatency <= 0 {
			t.Errorf("%s/%s: completion %f", p.Experiment, p.Series, p.AvgLatency)
		}
	}
}

func TestSaturationPoint(t *testing.T) {
	pts := []Point{
		{Series: "a", X: 0.1, Saturated: false},
		{Series: "a", X: 0.3, Saturated: false},
		{Series: "a", X: 0.5, Saturated: true},
		{Series: "b", X: 0.1, Saturated: true},
	}
	if s := SaturationPoint(pts, "a"); s != 0.3 {
		t.Errorf("a saturates at %g, want 0.3", s)
	}
	if s := SaturationPoint(pts, "b"); s != 0 {
		t.Errorf("b saturates at %g, want 0", s)
	}
}

func TestOutputs(t *testing.T) {
	pts := []Point{
		{Experiment: "e", Series: "s", X: 0.1, XName: "injection-rate", AvgLatency: 42, Accepted: 0.09},
		{Experiment: "e", Series: "s", X: 0.2, XName: "injection-rate", AvgLatency: 50, Accepted: 0.18, Saturated: true},
	}
	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, pts); err != nil {
		t.Fatal(err)
	}
	out := csvBuf.String()
	if !strings.Contains(out, "avg_latency") || !strings.Contains(out, "42.00") {
		t.Errorf("csv output missing content:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("csv rows = %d, want 3", got)
	}

	var cb bytes.Buffer
	FormatCurves(&cb, pts)
	if !strings.Contains(cb.String(), "## e") || !strings.Contains(cb.String(), "saturation ~0.10") {
		t.Errorf("curve output:\n%s", cb.String())
	}

	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	FormatTable1(&tb, rows)
	if !strings.Contains(tb.String(), "hypercube") {
		t.Errorf("table output:\n%s", tb.String())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := []Point{
		{Experiment: "e", Series: "s", X: 0.1, XName: "injection-rate", AvgLatency: 42.25, Accepted: 0.09, Saturated: false},
		{Experiment: "e", Series: "t", X: 0.6, XName: "injection-rate", AvgLatency: 900, Accepted: 0.4, Saturated: true},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d points", len(got))
	}
	if got[0].Experiment != "e" || got[0].Series != "s" || got[0].X != 0.1 ||
		got[0].AvgLatency != 42.25 || got[1].Saturated != true {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := ReadCSV(strings.NewReader("bogus,header\n1,2\n")); err == nil {
		t.Error("CSV without required columns accepted")
	}
}

func TestWriteSVGs(t *testing.T) {
	dir := t.TempDir()
	pts := []Point{
		{Experiment: "figX", Series: "a", X: 0.1, XName: "injection-rate", AvgLatency: 100},
		{Experiment: "figX", Series: "a", X: 0.3, XName: "injection-rate", AvgLatency: 140},
		{Experiment: "figX", Series: "b", X: 0.1, XName: "injection-rate", AvgLatency: 90},
		{Experiment: "figX", Series: "b", X: 0.3, XName: "injection-rate", AvgLatency: 95},
		{Experiment: "figY", Series: "a", X: 1, XName: "chiplets", AvgLatency: 50},
		{Experiment: "figY", Series: "a", X: 2, XName: "chiplets", AvgLatency: 60},
	}
	paths, err := WriteSVGs(dir, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d files, want 2", len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "<svg") {
			t.Errorf("%s is not an SVG", p)
		}
	}
}
