package plot

import (
	"bytes"
	"encoding/xml"
	"strconv"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "latency vs injection rate",
		XLabel: "injection rate (flits/node/cycle)",
		YLabel: "avg latency (cycles)",
		Series: []Series{
			{Name: "2D-mesh", X: []float64{0.1, 0.3, 0.6}, Y: []float64{150, 180, 900}},
			{Name: "hypercube", X: []float64{0.1, 0.3, 0.6}, Y: []float64{110, 120, 160}},
		},
	}
}

func TestSVGIsWellFormedXML(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().SVG(&buf); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, buf.String())
		}
	}
	out := buf.String()
	for _, want := range []string{"<svg", "polyline", "2D-mesh", "hypercube", "avg latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	c := sampleChart()
	c.Title = "a < b & c"
	var buf bytes.Buffer
	if err := c.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a &lt; b &amp; c") {
		t.Error("labels not escaped")
	}
}

func TestSVGClipsAtYMax(t *testing.T) {
	c := sampleChart()
	c.YMax = 200
	var buf bytes.Buffer
	if err := c.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	// The 900-cycle point must be clipped to the top of the plot area
	// (y = marginT), never above it (smaller y).
	if strings.Contains(buf.String(), `cy="-`) {
		t.Error("points drawn above the plot area")
	}
}

func TestSVGRejectsEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if err := c.SVG(&bytes.Buffer{}); err == nil {
		t.Error("empty chart accepted")
	}
	c = &Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: nil}}}
	if err := c.SVG(&bytes.Buffer{}); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestSVGSortsPointsByX(t *testing.T) {
	c := &Chart{
		Title: "t",
		Series: []Series{
			{Name: "s", X: []float64{0.6, 0.1, 0.3}, Y: []float64{3, 1, 2}},
		},
	}
	var buf bytes.Buffer
	if err := c.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	// The polyline x coordinates must be non-decreasing.
	out := buf.String()
	i := strings.Index(out, "points=\"")
	j := strings.Index(out[i+8:], "\"")
	fields := strings.Fields(out[i+8 : i+8+j])
	last := -1.0
	for _, f := range fields {
		parts := strings.Split(f, ",")
		if len(parts) != 2 {
			t.Fatalf("bad point %q", f)
		}
		x, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			t.Fatal(err)
		}
		if x < last {
			t.Fatalf("polyline x not sorted: %v", fields)
		}
		last = x
	}
}
