// Package plot renders simple SVG line charts — enough to draw the
// paper's latency/injection-rate figures from harness output without any
// external dependency.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Series is one named line.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a single line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMax clips the vertical axis (0 = auto). Latency curves explode at
	// saturation, so clipping keeps the pre-saturation region readable.
	YMax float64
}

// palette holds distinguishable line colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2",
}

const (
	width   = 640.0
	height  = 420.0
	marginL = 70.0
	marginR = 170.0
	marginT = 40.0
	marginB = 55.0
)

// SVG writes the chart as a standalone SVG document.
func (c *Chart) SVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := 0.0, math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if c.YMax > 0 && yMax > c.YMax {
		yMax = c.YMax
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}

	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	px := func(x float64) float64 { return marginL + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 {
		if y > yMax {
			y = yMax
		}
		return marginT + plotH - (y-yMin)/(yMax-yMin)*plotH
	}

	var b errWriter
	b.w = w
	b.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", width, height, width, height)
	b.printf(`<rect width="%g" height="%g" fill="white"/>`+"\n", width, height)
	b.printf(`<text x="%g" y="%g" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, marginT-14, esc(c.Title))

	// Axes.
	b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginL, marginT, marginL, marginT+plotH)
	b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	// Ticks.
	for i := 0; i <= 4; i++ {
		fx := xMin + (xMax-xMin)*float64(i)/4
		fy := yMin + (yMax-yMin)*float64(i)/4
		b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", px(fx), marginT+plotH, px(fx), marginT+plotH+5)
		b.printf(`<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(fx), marginT+plotH+18, trimNum(fx))
		b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginL-5, py(fy), marginL, py(fy))
		b.printf(`<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-8, py(fy)+4, trimNum(fy))
	}
	// Axis labels.
	b.printf(`<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, esc(c.XLabel))
	b.printf(`<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, esc(c.YLabel))

	// Lines + legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		pts := sortedPoints(s)
		b.printf(`<polyline fill="none" stroke="%s" stroke-width="1.8" points="`, color)
		for _, p := range pts {
			b.printf("%g,%g ", px(p[0]), py(p[1]))
		}
		b.printf(`"/>` + "\n")
		for _, p := range pts {
			b.printf(`<circle cx="%g" cy="%g" r="2.6" fill="%s"/>`+"\n", px(p[0]), py(p[1]), color)
		}
		ly := marginT + 14 + float64(si)*16
		b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+10, ly-4, width-marginR+34, ly-4, color)
		b.printf(`<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			width-marginR+40, ly, esc(s.Name))
	}
	b.printf("</svg>\n")
	return b.err
}

func sortedPoints(s Series) [][2]float64 {
	pts := make([][2]float64, len(s.X))
	for i := range s.X {
		pts[i] = [2]float64{s.X[i], s.Y[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] })
	return pts
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	if v >= 100 {
		s = fmt.Sprintf("%.0f", v)
	}
	return s
}

func esc(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
