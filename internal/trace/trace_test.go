package trace

import (
	"bytes"
	"strings"
	"testing"

	"chipletnet/internal/chiplet"
	"chipletnet/internal/packet"
	"chipletnet/internal/routing"
	"chipletnet/internal/topology"
)

func tracedSystem(t *testing.T) (*topology.System, *Recorder) {
	t.Helper()
	lp := topology.LinkParams{
		VCs: 2, InternalBufFlits: 32, InterfaceBufFlits: 64,
		OnChipBW: 4, OffChipBW: 2, OnChipLatency: 1, OffChipLatency: 5,
		EjectBW: 4,
	}
	sys, err := topology.BuildHypercube(chiplet.MustNew(4, 4), 2, lp)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.New(sys, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Fabric.Routing = rt
	rec := &Recorder{}
	sys.Fabric.Tracer = rec
	return sys, rec
}

func TestRecorderCapturesPath(t *testing.T) {
	sys, rec := tracedSystem(t)
	src := sys.Cores[0]
	var dst int
	for _, c := range sys.Cores {
		if sys.Nodes[c].Chiplet != sys.Nodes[src].Chiplet {
			dst = c
			break
		}
	}
	p := &packet.Packet{ID: 7, Src: src, Dst: dst, Len: 8, CreatedAt: 1}
	sys.Fabric.Routers[src].Inject(p, 0)
	for i := 0; i < 300 && sys.Fabric.InFlight() > 0; i++ {
		sys.Fabric.Step()
	}
	if sys.Fabric.InFlight() != 0 {
		t.Fatal("packet not delivered")
	}

	nodes, cycles := rec.Path(7)
	if len(nodes) < 3 {
		t.Fatalf("path too short: %v", nodes)
	}
	if nodes[0] != src || nodes[len(nodes)-1] != dst {
		t.Errorf("path %v does not run %d -> %d", nodes, src, dst)
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] < cycles[i-1] {
			t.Errorf("cycles not monotone: %v", cycles)
		}
	}
	// Consecutive path nodes must be physically linked.
	for i := 0; i+1 < len(nodes); i++ {
		if sys.PortTo(nodes[i], nodes[i+1]) < 0 {
			t.Errorf("path hop %d -> %d is not a link", nodes[i], nodes[i+1])
		}
	}
	// Path crosses exactly the number of off-chip hops the packet counted.
	cross := 0
	for i := 0; i+1 < len(nodes); i++ {
		if sys.Nodes[nodes[i]].Chiplet != sys.Nodes[nodes[i+1]].Chiplet {
			cross++
		}
	}
	if cross != p.OffChipHops {
		t.Errorf("trace shows %d cross hops, packet counted %d", cross, p.OffChipHops)
	}

	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "packet 7:") || !strings.Contains(out, "delivered") {
		t.Errorf("dump missing content:\n%s", out)
	}
}

func TestRecorderFilterAndCap(t *testing.T) {
	sys, rec := tracedSystem(t)
	rec.Filter = func(p *packet.Packet) bool { return p.ID == 2 }
	rec.MaxEvents = 3
	src, dst := sys.Cores[0], sys.Cores[1]
	for id := uint64(1); id <= 3; id++ {
		sys.Fabric.Routers[src].Inject(&packet.Packet{ID: id, Src: src, Dst: dst, Len: 4}, 0)
	}
	for i := 0; i < 300 && sys.Fabric.InFlight() > 0; i++ {
		sys.Fabric.Step()
	}
	for _, e := range rec.Events() {
		if e.PacketID != 2 {
			t.Errorf("filter leaked packet %d", e.PacketID)
		}
	}
	if len(rec.Events()) > 3 {
		t.Errorf("cap exceeded: %d events", len(rec.Events()))
	}
	if !rec.Truncated {
		t.Error("truncation not flagged")
	}
}
