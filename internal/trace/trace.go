// Package trace records packet lifecycle events from the cycle engine for
// debugging and path analysis: which routers a packet visited, on which
// cycles, over which virtual channels.
package trace

import (
	"fmt"
	"io"
	"sort"

	"chipletnet/internal/packet"
	"chipletnet/internal/router"
)

// EventKind classifies trace events.
type EventKind uint8

const (
	Injected EventKind = iota
	HeadMoved
	Delivered
)

func (k EventKind) String() string {
	switch k {
	case Injected:
		return "inject"
	case HeadMoved:
		return "hop"
	case Delivered:
		return "deliver"
	}
	return "?"
}

// Event is one recorded occurrence.
type Event struct {
	Kind     EventKind
	PacketID uint64
	Cycle    int64
	From, To int // node ids; To < 0 means local ejection
	VC       int
	// The remaining fields are set on inject and deliver events (zero on
	// hop events) so a complete workload trace can be cut from any
	// recording (internal/workload.FromEvents): the packet's destination
	// node, length, message identity, QoS traffic class, and causal
	// dependency (the packet id whose delivery gated this packet's
	// injection, packet.NoDep for none).
	Dst   int
	Flits int
	Msg   uint64
	Seq   int
	Class uint8
	Dep   int64
}

// Recorder implements router.Tracer, keeping head-flit movements (the
// packet's path) for packets accepted by Filter.
type Recorder struct {
	// Filter selects which packets to record; nil records everything.
	Filter func(p *packet.Packet) bool
	// MaxEvents bounds memory (0 = unlimited); once reached, further
	// events are dropped and Truncated is set.
	MaxEvents int
	Truncated bool

	events []Event
}

var _ router.Tracer = (*Recorder)(nil)

func (r *Recorder) add(e Event) {
	if r.MaxEvents > 0 && len(r.events) >= r.MaxEvents {
		r.Truncated = true
		return
	}
	r.events = append(r.events, e)
}

func (r *Recorder) keep(p *packet.Packet) bool {
	return r.Filter == nil || r.Filter(p)
}

// PacketInjected implements router.Tracer.
func (r *Recorder) PacketInjected(p *packet.Packet, node int, now int64) {
	if !r.keep(p) {
		return
	}
	r.add(Event{
		Kind: Injected, PacketID: p.ID, Cycle: now, From: node, To: node,
		Dst: p.Dst, Flits: p.Len, Msg: p.MsgID, Seq: p.SeqInMsg, Class: p.Class, Dep: p.Dep,
	})
}

// FlitsMoved implements router.Tracer; only head-flit movements are kept
// (they define the path).
func (r *Recorder) FlitsMoved(p *packet.Packet, from, to, vc, n int, head bool, now int64) {
	if !head || !r.keep(p) {
		return
	}
	r.add(Event{Kind: HeadMoved, PacketID: p.ID, Cycle: now, From: from, To: to, VC: vc})
}

// PacketDelivered implements router.Tracer.
func (r *Recorder) PacketDelivered(p *packet.Packet, now int64) {
	if !r.keep(p) {
		return
	}
	r.add(Event{
		Kind: Delivered, PacketID: p.ID, Cycle: now, From: p.Dst, To: -1,
		Dst: p.Dst, Flits: p.Len, Msg: p.MsgID, Seq: p.SeqInMsg, Class: p.Class, Dep: p.Dep,
	})
}

// Events returns all recorded events in order.
func (r *Recorder) Events() []Event { return r.events }

// Path returns the node sequence packet id traversed (source router
// included), with the cycle of each head-flit departure.
func (r *Recorder) Path(id uint64) (nodes []int, cycles []int64) {
	for _, e := range r.events {
		if e.PacketID != id {
			continue
		}
		switch e.Kind {
		case Injected:
			nodes = append(nodes, e.From)
			cycles = append(cycles, e.Cycle)
		case HeadMoved:
			if e.To >= 0 {
				nodes = append(nodes, e.To)
				cycles = append(cycles, e.Cycle)
			}
		}
	}
	return nodes, cycles
}

// Dump writes a human-readable listing grouped by packet.
func (r *Recorder) Dump(w io.Writer) error {
	ids := map[uint64]bool{}
	for _, e := range r.events {
		ids[e.PacketID] = true
	}
	sorted := make([]uint64, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, id := range sorted {
		if _, err := fmt.Fprintf(w, "packet %d:\n", id); err != nil {
			return err
		}
		for _, e := range r.events {
			if e.PacketID != id {
				continue
			}
			var err error
			switch e.Kind {
			case Injected:
				_, err = fmt.Fprintf(w, "  @%6d  inject at node %d\n", e.Cycle, e.From)
			case HeadMoved:
				if e.To < 0 {
					_, err = fmt.Fprintf(w, "  @%6d  eject at node %d\n", e.Cycle, e.From)
				} else {
					_, err = fmt.Fprintf(w, "  @%6d  %d -> %d (vc %d)\n", e.Cycle, e.From, e.To, e.VC)
				}
			case Delivered:
				_, err = fmt.Fprintf(w, "  @%6d  delivered\n", e.Cycle)
			}
			if err != nil {
				return err
			}
		}
	}
	if r.Truncated {
		if _, err := fmt.Fprintln(w, "(trace truncated at MaxEvents)"); err != nil {
			return err
		}
	}
	return nil
}
