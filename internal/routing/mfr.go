package routing

import (
	"fmt"

	"chipletnet/internal/interleave"
	"chipletnet/internal/packet"
	"chipletnet/internal/router"
	"chipletnet/internal/topology"
)

// Mode selects how deadlock freedom is enforced.
type Mode int

const (
	// DuatoEscape reserves VC0 as the MFR/NFR escape sub-network and uses
	// the remaining VCs as adaptive channels (Lemma 1).
	DuatoEscape Mode = iota
	// SafeUnsafe routes shortest paths on all VCs and relies on the
	// safe/unsafe flow-control policy at VC allocation (Algorithm 5).
	// The fabric's SafeUnsafe flag must be enabled alongside this mode.
	SafeUnsafe
)

func (m Mode) String() string {
	if m == SafeUnsafe {
		return "safe-unsafe"
	}
	return "duato-escape"
}

// Options configures routing construction.
type Options struct {
	Mode Mode
	// DisableNDMeshVCSeparation turns off the Theorem-1 VC separation of
	// d+/d- packets in nD-mesh interface segments. Only useful to
	// demonstrate why the separation exists; leave false for correct
	// operation. Requires AllowUnsafe.
	DisableNDMeshVCSeparation bool
	// AllowUnsafe opts into configurations whose escape sub-network is not
	// certified deadlock-free: the nD-mesh equal-channel mode above and
	// Duato-escape routing on irregular custom topologies. New rejects
	// them otherwise. The static verifier (internal/verify) and its
	// negative test fixtures exercise these modes through this opt-in.
	AllowUnsafe bool
}

// exitPlan describes, for a packet that must still leave its current
// chiplet, the interface group it should exit through and the admissible
// ring-position window for this stage.
type exitPlan struct {
	group int
	// segLo/segHi bound the ring positions a packet may occupy while in
	// this stage; positions above segHi have no legal escape continuation.
	segLo, segHi int
	// vcClass is the escape VC used on the chiplet-to-chiplet hop and on
	// ring hops inside [segLo, segHi] (nD-mesh d+/d- separation).
	vcClass int
	// bothWays permits plus-direction (decreasing position) rides toward
	// the exit group (nD-mesh within-segment moves, tree downward moves).
	bothWays bool
}

// chipletLogic is the per-topology policy consumed by the shared MFR
// machinery.
type chipletLogic interface {
	// exit plans the next chiplet-level hop for a packet at chiplet cv
	// whose destination chiplet differs.
	exit(cv int, p *packet.Packet) exitPlan
	// incomingMinusAllowed reports whether destination-chiplet ring rides
	// may use the minus direction (dragonfly restricts rides to plus to
	// keep its cross-channel dependencies acyclic).
	incomingMinusAllowed() bool
}

// mfr implements router.Routing for all grouped chiplet topologies.
type mfr struct {
	sys   *topology.System
	logic chipletLogic
	mode  Mode
	vcs   int
	// adaptiveMask covers VC1..VCn-1; zero when only one VC exists.
	adaptiveMask uint32
	ringLen      int
}

var _ router.Routing = (*mfr)(nil)

func newMFR(sys *topology.System, logic chipletLogic, opt Options) *mfr {
	vcs := sys.LP.VCs
	return &mfr{
		sys:          sys,
		logic:        logic,
		mode:         opt.Mode,
		vcs:          vcs,
		adaptiveMask: router.VCMaskAll(vcs) &^ 1,
		ringLen:      sys.Geo.RingLen(),
	}
}

func (m *mfr) node(id int) *topology.Node { return &m.sys.Nodes[id] }

// pick selects a group member by interleave tag.
func pick(members []int, tag int) int {
	return members[interleave.Index(len(members), tag)]
}

// exitPick selects the exit member of a group honoring the interleave
// tag; fromCore applies the core-reachability rule (a member at ring
// position 0 is unreachable from a core by minus-only moves).
func (m *mfr) exitPick(members []int, fromCore bool, tag int) int {
	if fromCore && len(members) > 1 && m.node(members[0]).RingPos == 0 {
		members = members[1:]
	}
	return pick(members, tag)
}

// markRerouted flags p as rerouted when fault-driven group degradation
// changed its exit selection: the member chosen from the current
// membership differs from what the pre-fault membership (BaseGroups)
// would have picked. No-op outside fault injection (BaseGroups nil), so
// fault-free runs stay bit-identical.
func (m *mfr) markRerouted(cv, group int, fromCore bool, chosen int, p *packet.Packet) {
	if p.Rerouted || m.sys.BaseGroups == nil {
		return
	}
	base := m.sys.BaseGroups[cv][group]
	if len(base) == len(m.sys.Chiplets[cv].Groups[group]) {
		return // group intact; selection cannot have changed
	}
	if m.exitPick(base, fromCore, p.Tag) != chosen {
		p.Rerouted = true
	}
}

// selectExit chooses the physical interface node of the planned exit group
// that packet p should leave chiplet cv through, honoring the interleave
// tag where the minus-first discipline allows.
func (m *mfr) selectExit(v, cv int, plan exitPlan, p *packet.Packet) int {
	e, ok := m.selectExitStrict(v, cv, plan, p)
	if !ok {
		panic(fmt.Sprintf("routing: node %d (ring pos %d) is beyond exit group %d of chiplet %d",
			v, m.node(v).RingPos, plan.group, cv))
	}
	return e
}

// selectExitStrict picks the exit member reachable under the minus-first
// discipline; ok is false when v has overshot a minus-only group — a state
// that only arises for packets roaming under safe/unsafe shortest-path
// routing (they are unsafe there by Definition 4).
func (m *mfr) selectExitStrict(v, cv int, plan exitPlan, p *packet.Packet) (int, bool) {
	members := m.sys.Chiplets[cv].Groups[plan.group]
	if len(members) == 0 {
		panic(fmt.Sprintf("routing: chiplet %d group %d has no linked interfaces", cv, plan.group))
	}
	nv := m.node(v)
	if nv.RingPos < 0 {
		// Cores reach the ring at positions >= 1 by minus-only moves, so
		// a member at ring position 0 is unreachable from a core.
		e := m.exitPick(members, true, p.Tag)
		m.markRerouted(cv, plan.group, true, e, p)
		return e, true
	}
	e := m.exitPick(members, false, p.Tag)
	m.markRerouted(cv, plan.group, false, e, p)
	if plan.bothWays || m.node(e).RingPos >= nv.RingPos {
		return e, true
	}
	// The tagged member is behind us on a minus-only ride: exit at the
	// nearest member at or ahead of our position instead.
	for _, mem := range members {
		if m.node(mem).RingPos >= nv.RingPos {
			return mem, true
		}
	}
	// A failure may have removed every member at or ahead of us after the
	// packet committed to its ride: fall back to a condemned interface,
	// kept physically usable exactly for these stragglers.
	if len(m.sys.Condemned) > 0 {
		if fb, ok := m.sys.FallbackExit(cv, plan.group, nv.RingPos); ok {
			p.Rerouted = true
			return fb, true
		}
	}
	return -1, false
}

// coreToRingStep returns the next hop of the minus-only path from core node
// v to a ring entry at position <= targetPos (CORE_TO_IF of Algorithm 3):
// mesh-negative moves to the chosen boundary entry, then the caller's ride
// covers the rest.
func (m *mfr) coreToRingStep(v, targetPos int) int {
	nv := m.node(v)
	x, y := nv.X, nv.Y
	P := m.ringLen
	if targetPos < 1 {
		targetPos = 1
	}
	// Bottom-row entry (eb, 0) at ring position eb.
	eb := min(x, targetPos)
	costB := (x - eb) + y + (targetPos - eb)
	// Left-column entry (0, bl) at ring position P-bl, feasible when the
	// reachable left window [P-y, P-1] starts at or below targetPos.
	useLeft := false
	var bl, costL int
	if P-y <= targetPos {
		el := min(targetPos, P-1)
		bl = P - el
		costL = x + (y - bl) + (targetPos - el)
		useLeft = costL < costB
	}
	var dir topology.Dir
	if useLeft {
		if y > bl {
			dir = topology.DirYMinus
		} else {
			dir = topology.DirXMinus
		}
	} else {
		if x > eb {
			dir = topology.DirXMinus
		} else {
			dir = topology.DirYMinus
		}
	}
	return m.meshNeighbor(v, dir)
}

func (m *mfr) meshNeighbor(v int, d topology.Dir) int {
	port := m.sys.MeshPort(v, d)
	if port < 0 {
		panic(fmt.Sprintf("routing: node %d has no %v port", v, d))
	}
	return m.node(v).Ports[port].To
}

// adjCore returns the core node adjacent to ring node v (stepping off the
// ring into the mesh interior), or -1 for corner nodes.
func (m *mfr) adjCore(v int) int {
	nv := m.node(v)
	g := m.sys.Geo
	x, y := nv.X, nv.Y
	switch {
	case y == 0 && x >= 1 && x <= g.W-2:
		return m.sys.NodeID(nv.Chiplet, x, 1)
	case y == g.H-1 && x >= 1 && x <= g.W-2:
		return m.sys.NodeID(nv.Chiplet, x, g.H-2)
	case x == 0 && y >= 1 && y <= g.H-2:
		return m.sys.NodeID(nv.Chiplet, 1, y)
	case x == g.W-1 && y >= 1 && y <= g.H-2:
		return m.sys.NodeID(nv.Chiplet, g.W-2, y)
	}
	return -1
}

// enterable reports whether ring node v can step off the ring onto a core
// from which the destination core (dx, dy) is reachable by plus-only moves
// (the IF_TO_CORE entry condition of Algorithm 3).
func (m *mfr) enterable(v, dx, dy int) (core int, ok bool) {
	c := m.adjCore(v)
	if c < 0 {
		return -1, false
	}
	nc := m.node(c)
	if nc.X <= dx && nc.Y <= dy {
		return c, true
	}
	return -1, false
}

// rideDistance scans the ring from position from in the given direction
// (without crossing the wrap between positions P-1 and 0) and returns the
// number of steps to the first position satisfying pred, or -1.
func (m *mfr) rideDistance(chip, from int, minus bool, pred func(node int) bool) int {
	ring := m.sys.Chiplets[chip].Ring
	if minus {
		for p, d := from+1, 1; p < len(ring); p, d = p+1, d+1 {
			if pred(ring[p]) {
				return d
			}
		}
	} else {
		for p, d := from-1, 1; p >= 0; p, d = p-1, d+1 {
			if pred(ring[p]) {
				return d
			}
		}
	}
	return -1
}

// escapeStep computes the next hop and escape VC index of the deadlock-free
// escape path for packet p at node v (v != p.Dst). This realizes MFR among
// chiplets (Algorithm 2), MFR within a chiplet (Algorithm 3), and the
// hypercube specialization (Algorithm 4), generalized over chipletLogic.
func (m *mfr) escapeStep(v int, p *packet.Packet) (next, vc int) {
	next, vc, ok := m.escapeStepOK(v, p)
	if !ok {
		panic(fmt.Sprintf("routing: node %d has no minus-first continuation for packet %d (src %d dst %d)",
			v, p.ID, p.Src, p.Dst))
	}
	return next, vc
}

// escapeStepOK is escapeStep returning ok=false (instead of panicking)
// from states with no minus-first continuation, which packets can reach
// under safe/unsafe shortest-path routing.
func (m *mfr) escapeStepOK(v int, p *packet.Packet) (next, vc int, ok bool) {
	nv := m.node(v)
	cv := nv.Chiplet
	cd := m.node(p.Dst).Chiplet

	if cv != cd {
		plan := m.logic.exit(cv, p)
		e, okExit := m.selectExitStrict(v, cv, plan, p)
		if !okExit {
			return 0, 0, false
		}
		if v == e {
			port := m.sys.CrossPort(v)
			if port < 0 {
				panic(fmt.Sprintf("routing: exit node %d has no cross port", v))
			}
			return nv.Ports[port].To, plan.vcClass, true
		}
		if nv.RingPos < 0 {
			return m.coreToRingStep(v, m.node(e).RingPos), 0, true
		}
		pe := m.node(e).RingPos
		minus := nv.RingPos < pe
		if !minus && !plan.bothWays {
			return 0, 0, false
		}
		next = m.sys.RingStep(v, minus)
		vc = 0
		if nv.RingPos >= plan.segLo && nv.RingPos <= plan.segHi &&
			m.node(next).RingPos >= plan.segLo && m.node(next).RingPos <= plan.segHi {
			vc = plan.vcClass
		}
		return next, vc, true
	}

	// Destination chiplet reached.
	nd := m.node(p.Dst)
	if nd.RingPos >= 0 {
		// IF destination: core nodes descend onto the ring, ring nodes
		// ride monotonically toward it (never crossing the wrap).
		if nv.RingPos < 0 {
			return m.coreToRingStep(v, nd.RingPos), 0, true
		}
		return m.sys.RingStep(v, nv.RingPos < nd.RingPos), 0, true
	}
	dx, dy := nd.X, nd.Y
	if nv.RingPos < 0 {
		// CORE_TO_CORE: negative-first among the interior cores.
		switch {
		case nv.X > dx:
			return m.meshNeighbor(v, topology.DirXMinus), 0, true
		case nv.Y > dy:
			return m.meshNeighbor(v, topology.DirYMinus), 0, true
		case nv.X < dx:
			return m.meshNeighbor(v, topology.DirXPlus), 0, true
		default:
			return m.meshNeighbor(v, topology.DirYPlus), 0, true
		}
	}
	// IF_TO_CORE: ride until an entry with coordinates <= destination,
	// then step into the core mesh (plus-only from there on).
	if c, okEnter := m.enterable(v, dx, dy); okEnter {
		return c, 0, true
	}
	pred := func(node int) bool {
		_, okEnter := m.enterable(node, dx, dy)
		return okEnter
	}
	dPlus := m.rideDistance(cv, nv.RingPos, false, pred)
	dMinus := -1
	if m.logic.incomingMinusAllowed() {
		dMinus = m.rideDistance(cv, nv.RingPos, true, pred)
	}
	minus := dMinus >= 0 && (dPlus < 0 || dMinus <= dPlus)
	if !minus && dPlus < 0 {
		return 0, 0, false
	}
	return m.sys.RingStep(v, minus), 0, true
}

// admissible reports whether node v is a legal position for packet p: an
// escape continuation exists from v. Core nodes and destination-chiplet
// nodes are always admissible; ring nodes of other chiplets must not have
// overshot the exit window.
func (m *mfr) admissible(v int, p *packet.Packet) bool {
	nv := m.node(v)
	if v == p.Dst || nv.RingPos < 0 {
		return true
	}
	cd := m.node(p.Dst).Chiplet
	if nv.Chiplet == cd {
		return true
	}
	plan := m.logic.exit(nv.Chiplet, p)
	hi := plan.segHi
	if !plan.bothWays {
		// On minus-only rides the packet can only exit through a usable
		// interface at or ahead of its position; link faults may have
		// removed members from the top of the group's static range, but
		// condemned (not yet decommissioned) interfaces still count.
		hi = m.sys.GroupMaxExitPos(nv.Chiplet, plan.group)
	}
	return nv.RingPos <= hi
}

// safetyOverrider lets a topology tighten the Definition-4 safety
// predicate beyond escape-continuation existence. The tree needs this: its
// escape discipline is deadlock-free only thanks to the reserved escape VC,
// so for the safe/unsafe flow control (which reserves nothing) only packets
// whose remaining route is acyclic by construction may count as safe.
type safetyOverrider interface {
	safeNode(v, dstChiplet int) bool
}

// SafeAt implements Definition 4 for the safe/unsafe flow control: the
// packet has a minus-first path *from the current channel*. The channel
// matters: a packet that arrived over a plus channel may not turn back to
// minus, so it is safe only if its remainder is plus-only. Packets that
// arrived over minus or equal channels (or sit in an injection queue) can
// start a fresh minus-then-plus path whenever their position is
// admissible. Safe packets are only a progress guarantee if that
// minus-first path is actually available to them, which is why the
// safe/unsafe candidate sets below always include the escape continuation
// alongside the shortest-path moves.
func (m *mfr) SafeAt(r *router.Router, inPort int, p *packet.Packet) bool {
	if !m.admissible(r.Node, p) {
		return false
	}
	if o, ok := m.logic.(safetyOverrider); ok {
		return o.safeNode(r.Node, m.node(p.Dst).Chiplet)
	}
	if !m.arrivedPlus(r, inPort) {
		return true
	}
	return m.plusOnlyRemainder(r.Node, p)
}

// arrivedPlus classifies the channel the packet occupies: true if the hop
// into this input port was a plus channel (label-increasing).
func (m *mfr) arrivedPlus(r *router.Router, inPort int) bool {
	if inPort == 0 {
		return false // injection queue
	}
	ip := r.In[inPort]
	if ip.Link == nil {
		return false
	}
	a := m.node(ip.Link.Src.Node)
	b := m.node(r.Node)
	if a.Chiplet != b.Chiplet {
		return false // chiplet-to-chiplet channels are equal channels
	}
	switch {
	case a.RingPos >= 0 && b.RingPos >= 0:
		// Plus ring hop: position decreased, or the wrap from the most
		// negative label back to -1.
		return b.RingPos == a.RingPos-1 ||
			(a.RingPos == m.ringLen-1 && b.RingPos == 0)
	case a.RingPos >= 0 && b.RingPos < 0:
		return true // ring -> core entries are plus channels
	case a.RingPos < 0 && b.RingPos < 0:
		return b.Label > a.Label
	default:
		return false // core -> ring is a minus channel
	}
}

// plusOnlyRemainder reports whether the packet can finish its journey
// using plus channels exclusively.
func (m *mfr) plusOnlyRemainder(v int, p *packet.Packet) bool {
	nv := m.node(v)
	nd := m.node(p.Dst)
	if nv.Chiplet != nd.Chiplet {
		return false
	}
	if nv.RingPos < 0 {
		if nd.RingPos >= 0 {
			return false // stepping onto the ring is a minus channel
		}
		return nv.X <= nd.X && nv.Y <= nd.Y
	}
	if nd.RingPos >= 0 {
		return nd.RingPos <= nv.RingPos // plus ride down the ring
	}
	if _, ok := m.enterable(v, nd.X, nd.Y); ok {
		return true
	}
	pred := func(node int) bool {
		_, ok := m.enterable(node, nd.X, nd.Y)
		return ok
	}
	return m.rideDistance(nv.Chiplet, nv.RingPos, false, pred) >= 0
}

// waypoint returns the within-chiplet node the packet is currently heading
// for: its exit interface while chiplets remain to cross, otherwise the
// destination.
func (m *mfr) waypoint(v int, p *packet.Packet) int {
	nv := m.node(v)
	cd := m.node(p.Dst).Chiplet
	if nv.Chiplet == cd {
		return p.Dst
	}
	plan := m.logic.exit(nv.Chiplet, p)
	if m.mode == SafeUnsafe {
		// Shortest-path mode: any member is reachable from anywhere, so
		// the interleave tag is honored unconditionally.
		members := m.sys.Chiplets[nv.Chiplet].Groups[plan.group]
		w := pick(members, p.Tag)
		m.markRerouted(nv.Chiplet, plan.group, false, w, p)
		return w
	}
	return m.selectExit(v, nv.Chiplet, plan, p)
}

func meshDist(a, b *topology.Node) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// productiveMoves appends candidates for every mesh move that reduces the
// distance to the waypoint (and the cross port when standing on the exit
// interface), filtered by admissibility when filter is true. mask selects
// the downstream VCs.
func (m *mfr) productiveMoves(r *router.Router, v int, p *packet.Packet, mask uint32, filter bool, buf []router.Candidate) []router.Candidate {
	if mask == 0 {
		return buf
	}
	nv := m.node(v)
	w := m.waypoint(v, p)
	if w == v {
		// Standing on the exit interface: the productive move is the
		// chiplet-to-chiplet hop. nD-mesh cross channels are reserved for
		// the direction-separated escape classes, so no adaptive mask
		// bits may remain after intersecting.
		port := m.sys.CrossPort(v)
		crossMask := mask & m.crossMask(v, p)
		if port >= 0 && crossMask != 0 {
			buf = append(buf, router.Candidate{Port: port, VCMask: crossMask})
		}
		return buf
	}
	nw := m.node(w)
	d0 := meshDist(nv, nw)
	for pi, pt := range nv.Ports {
		if pt.Dir == topology.DirLocal || pt.Dir == topology.DirCross || pt.OffChip {
			continue
		}
		nn := m.node(pt.To)
		if meshDist(nn, nw) >= d0 {
			continue
		}
		if filter && !m.admissible(pt.To, p) {
			continue
		}
		buf = append(buf, router.Candidate{Port: pi, VCMask: mask})
	}
	return buf
}

// crossMask returns the VC mask usable adaptively on the cross port at v
// for packet p: everything but VC0 normally; nothing when the topology
// reserves cross VCs for escape classes (nD-mesh and its torus variant).
func (m *mfr) crossMask(v int, p *packet.Packet) uint32 {
	if m.mode == SafeUnsafe {
		return router.VCMaskAll(m.vcs)
	}
	if m.sys.Kind == topology.NDMesh || m.sys.Kind == topology.NDTorus {
		return 0
	}
	return m.adaptiveMask
}

// adaptiveExtras lets a topology offer an additional adaptive-only exit
// plan (the torus wrap channel). The extra plan must keep the packet
// inside the primary plan's admissible region so the escape continuation
// survives. Returned by value: the shared logic instance is consulted
// concurrently under the islands engine.
type adaptiveExtras interface {
	extraExit(cv int, p *packet.Packet) (exitPlan, bool)
}

// extraMoves appends adaptive candidates steering toward an extra exit
// plan: mesh moves toward the selected exit member, or the cross hop when
// standing on it.
func (m *mfr) extraMoves(r *router.Router, v int, p *packet.Packet, plan exitPlan, filter bool, buf []router.Candidate) []router.Candidate {
	nv := m.node(v)
	if len(m.sys.Chiplets[nv.Chiplet].Groups[plan.group]) == 0 {
		return buf
	}
	e := m.selectExit(v, nv.Chiplet, plan, p)
	if v == e {
		port := m.sys.CrossPort(v)
		if port < 0 {
			return buf
		}
		mask := uint32(1) << uint(plan.vcClass)
		if m.mode == SafeUnsafe {
			mask = router.VCMaskAll(m.vcs)
		}
		return append(buf, router.Candidate{Port: port, VCMask: mask})
	}
	mask := m.adaptiveMask
	if m.mode == SafeUnsafe {
		mask = router.VCMaskAll(m.vcs)
	}
	if mask == 0 {
		return buf
	}
	ne := m.node(e)
	d0 := meshDist(nv, ne)
	for pi, pt := range nv.Ports {
		if pt.Dir == topology.DirLocal || pt.Dir == topology.DirCross || pt.OffChip {
			continue
		}
		nn := m.node(pt.To)
		if meshDist(nn, ne) >= d0 {
			continue
		}
		if filter && !m.admissible(pt.To, p) {
			continue
		}
		buf = append(buf, router.Candidate{Port: pi, VCMask: mask})
	}
	return buf
}

// creditScore sums the sender-side credit counters of the masked VCs on an
// output port — the adaptive selection strategy prefers the least congested
// admissible output.
func creditScore(r *router.Router, c router.Candidate) int {
	o := r.Out[c.Port]
	s := 0
	for i, cr := range o.Credits {
		if c.VCMask&(1<<uint(i)) != 0 {
			s += cr
		}
	}
	return s
}

// sortByCreditScore stably sorts candidates in place by descending
// creditScore: the same permutation sort.SliceStable with a greater-than
// comparator produces, but allocation-free (sort.SliceStable goes
// through reflect.Swapper, which allocates in the per-cycle VA hot
// path). Candidate lists are a handful of entries, so the insertion
// sort's quadratic worst case is irrelevant.
func sortByCreditScore(r *router.Router, buf []router.Candidate) {
	for i := 1; i < len(buf); i++ {
		c := buf[i]
		s := creditScore(r, c)
		j := i - 1
		for j >= 0 && creditScore(r, buf[j]) < s {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = c
	}
}

// Candidates implements router.Routing: the raw candidate set with the
// adaptive prefix reordered by live credit score (Duato's protocol prefers
// the least congested admissible output).
func (m *mfr) Candidates(r *router.Router, inPort int, p *packet.Packet, buf []router.Candidate) []router.Candidate {
	base := len(buf)
	buf, nsort := m.RawCandidates(r, p, buf)
	if nsort > 1 {
		sortByCreditScore(r, buf[base:base+nsort])
	}
	return buf
}

// RawCandidates returns the candidate set for packet p at router r before
// the credit-based adaptive reordering: the same candidates Candidates
// yields, in generation order, plus the count of leading candidates the
// Duato adaptive stage reorders by credit score. The candidate SET depends
// only on (node, destination, interleave tag) — never on the input port or
// the credit state — which is what lets the static certifier
// (internal/verify) walk it exhaustively and compile it into flat tables
// (Compiled) whose lookups re-sort the stored prefix against live credits
// and thereby reproduce Candidates bit-for-bit.
func (m *mfr) RawCandidates(r *router.Router, p *packet.Packet, buf []router.Candidate) ([]router.Candidate, int) {
	v := r.Node
	if v == p.Dst {
		return append(buf, router.Candidate{Port: 0, VCMask: router.VCMaskAll(len(r.Out[0].Credits))}), 0
	}

	// When the topology offers extra adaptive-only exits (torus wrap
	// channels on a strictly shorter route), they replace the primary
	// adaptive direction: adaptive channels chase the short wrap route
	// while the escape channel keeps pointing along the mesh, so a
	// congested wrap degrades to the longer path instead of thrashing
	// between the two directions.
	var extraPlan exitPlan
	haveExtra := false
	if extras, ok := m.logic.(adaptiveExtras); ok && m.node(v).Chiplet != m.node(p.Dst).Chiplet {
		extraPlan, haveExtra = extras.extraExit(m.node(v).Chiplet, p)
	}

	if m.mode == SafeUnsafe {
		// Shortest-path candidates on every VC, plus the minus-first
		// escape continuation: Algorithm 5's drain argument needs safe
		// packets to be able to follow their minus-first path when the
		// shortest-path moves are blocked.
		if haveExtra {
			buf = m.extraMoves(r, v, p, extraPlan, false, buf)
		}
		if len(buf) == 0 {
			buf = m.productiveMoves(r, v, p, router.VCMaskAll(m.vcs), false, buf)
		}
		next, _, okEsc := m.escapeStepOK(v, p)
		if !okEsc {
			return buf, 0
		}
		if port := m.sys.PortTo(v, next); port >= 0 {
			dup := false
			for _, c := range buf {
				if c.Port == port {
					dup = true
					break
				}
			}
			if !dup {
				buf = append(buf, router.Candidate{Port: port, VCMask: router.VCMaskAll(m.vcs), Escape: true})
			}
		}
		return buf, 0
	}

	// Duato's protocol: adaptive candidates first (reordered by credit
	// score at lookup time), escape last.
	base := len(buf)
	if haveExtra {
		buf = m.extraMoves(r, v, p, extraPlan, true, buf)
	} else {
		buf = m.productiveMoves(r, v, p, m.adaptiveMask, true, buf)
	}
	nsort := len(buf) - base
	next, vc := m.escapeStep(v, p)
	port := m.sys.PortTo(v, next)
	if port < 0 {
		panic(fmt.Sprintf("routing: escape step %d -> %d is not a link", v, next))
	}
	return append(buf, router.Candidate{Port: port, VCMask: 1 << uint(vc), Escape: true}), nsort
}

// EscapeStep exposes the minus-first escape function for static analysis
// (internal/verify): the next hop and escape VC class for packet p at node
// v, or ok=false from states with no minus-first continuation. It never
// panics and does not mutate routing state.
func (m *mfr) EscapeStep(v int, p *packet.Packet) (next, vc int, ok bool) {
	return m.escapeStepOK(v, p)
}

// EscapeRequired reports whether every state packets can reach must offer
// an escape continuation: true under Duato's protocol, false under the
// safe/unsafe flow control (where packets may roam past the minus-first
// windows and rely on Algorithm 5 instead).
func (m *mfr) EscapeRequired() bool { return m.mode == DuatoEscape }

// ExitGroup returns the interface group packet p leaves chiplet cv
// through, or ok=false when cv already is the destination chiplet. The
// fault engine uses it to detect in-flight packets still committed to a
// condemned interface before decommissioning it. It does not mutate
// routing state.
func (m *mfr) ExitGroup(cv int, p *packet.Packet) (group int, ok bool) {
	if m.node(p.Dst).Chiplet == cv {
		return 0, false
	}
	return m.logic.exit(cv, p).group, true
}
