// Package routing implements the paper's routing algorithms on top of the
// topologies built by internal/topology:
//
//   - Baseline: Duato's-protocol adaptive negative-first routing (NFR) on
//     the flat stitched 2D mesh (§VI-A), with VC0 as the NFR escape channel
//     and the remaining VCs fully adaptive minimal.
//
//   - MFR (minus-first routing) for the high-radix chiplet topologies
//     (Algorithms 2–4): packets first descend the label order (mesh-negative
//     moves among cores, then the interface ring toward more-negative
//     labels, crossing chiplets through equal channels), and finally ascend
//     (ring to core entry, then mesh-positive moves) at the destination
//     chiplet. VC0 forms the escape sub-network; the remaining VCs are
//     adaptive minimal toward the current stage waypoint, filtered by an
//     admissibility predicate that guarantees a legal escape continuation
//     from every reachable state (Duato's Lemma 1).
//
//   - nD-mesh equal-channel separation (Theorem 1): within a dimension's
//     interface segment and on its chiplet-to-chiplet links, packets
//     traveling in the d+ and d- directions use disjoint virtual channels,
//     breaking the Fig. 8 dependency circle.
//
//   - Safe/unsafe mode (Algorithm 5): routing returns shortest-path
//     candidates on all VCs and the fabric's VC-allocation stage enforces
//     the safe/unsafe flow-control policy, using SafeAt (Definition 4) as
//     the safety predicate.
//
// Ring-direction conventions (see internal/chiplet): walking the interface
// ring toward increasing ring position follows decreasing (more negative)
// labels, so a "minus ride" increases ring position and a "plus ride"
// decreases it. Rides never use the wrap channel between positions P-1 and
// 0 (the one plus channel of the ring), which keeps every ride monotone.
package routing
