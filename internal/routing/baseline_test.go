package routing

import (
	"testing"

	"chipletnet/internal/packet"
	"chipletnet/internal/topology"
)

func buildFlat(t *testing.T, cx, cy int) (*topology.System, *flatMesh) {
	t.Helper()
	sys, err := topology.BuildFlatMesh(geo(4, 4), cx, cy, testLP())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fm, ok := rt.(*flatMesh)
	if !ok {
		t.Fatalf("expected *flatMesh, got %T", rt)
	}
	return sys, fm
}

// walkNFR follows the escape direction from src to dst.
func walkNFR(t *testing.T, sys *topology.System, fm *flatMesh, src, dst int) []int {
	t.Helper()
	path := []int{src}
	v := src
	for v != dst {
		d := fm.escapeDir(v, dst)
		port := sys.MeshPort(v, d)
		if port < 0 {
			t.Fatalf("node %d lacks a %v port on the way to %d", v, d, dst)
		}
		v = sys.Nodes[v].Ports[port].To
		path = append(path, v)
		if len(path) > len(sys.Nodes) {
			t.Fatalf("NFR path %d -> %d did not terminate", src, dst)
		}
	}
	return path
}

// TestBaselineNFRTurnRule: escape paths must be negative-first — once a
// positive hop is taken, no negative hop may follow (the turn restriction
// that makes NFR deadlock-free).
func TestBaselineNFRTurnRule(t *testing.T) {
	sys, fm := buildFlat(t, 3, 3)
	for _, src := range sys.Cores {
		for si, dst := range sys.Cores {
			if src == dst || si%2 != 0 {
				continue
			}
			path := walkNFR(t, sys, fm, src, dst)
			positive := false
			for i := 0; i+1 < len(path); i++ {
				ax, ay := sys.GlobalXY(path[i])
				bx, by := sys.GlobalXY(path[i+1])
				neg := bx < ax || by < ay
				if neg && positive {
					t.Fatalf("negative hop after positive on %v", path)
				}
				if bx > ax || by > ay {
					positive = true
				}
			}
			// NFR paths on a mesh are minimal.
			sx, sy := sys.GlobalXY(src)
			dx, dy := sys.GlobalXY(dst)
			if want := abs(dx-sx) + abs(dy-sy); len(path)-1 != want {
				t.Fatalf("NFR path length %d, minimal %d (%d->%d)", len(path)-1, want, src, dst)
			}
		}
	}
}

// TestBaselineEscapeAcyclic applies the channel-dependency check to the
// NFR escape network (single escape VC class).
func TestBaselineEscapeAcyclic(t *testing.T) {
	sys, fm := buildFlat(t, 3, 2)
	edges := map[escChannel]map[escChannel]bool{}
	for _, src := range sys.Cores {
		for _, dst := range sys.Cores {
			if src == dst {
				continue
			}
			path := walkNFR(t, sys, fm, src, dst)
			for i := 0; i+2 < len(path); i++ {
				a := escChannel{path[i], path[i+1], 0}
				b := escChannel{path[i+1], path[i+2], 0}
				if edges[a] == nil {
					edges[a] = map[escChannel]bool{}
				}
				edges[a][b] = true
			}
		}
	}
	if cyc := findCycle(edges); cyc != nil {
		t.Errorf("NFR escape dependency cycle: %v", cyc)
	}
}

// TestBaselineAdaptiveCandidatesMinimal: every adaptive candidate must
// reduce the global Manhattan distance.
func TestBaselineAdaptiveCandidatesMinimal(t *testing.T) {
	sys, fm := buildFlat(t, 2, 2)
	f := sys.Fabric
	src, dst := sys.Cores[0], sys.Cores[len(sys.Cores)-1]
	p := &packet.Packet{Src: src, Dst: dst, Len: 32}
	cands := fm.Candidates(f.Routers[src], 0, p, nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	sx, sy := sys.GlobalXY(src)
	dx, dy := sys.GlobalXY(dst)
	d0 := abs(dx-sx) + abs(dy-sy)
	escapes := 0
	for _, c := range cands {
		if c.Escape {
			escapes++
		}
		to := sys.Nodes[src].Ports[c.Port].To
		tx, ty := sys.GlobalXY(to)
		if abs(dx-tx)+abs(dy-ty) >= d0 {
			t.Errorf("candidate via port %d does not reduce distance", c.Port)
		}
	}
	if escapes != 1 {
		t.Errorf("%d escape candidates, want exactly 1", escapes)
	}
}
