package routing

import (
	"chipletnet/internal/packet"
	"chipletnet/internal/router"
	"chipletnet/internal/topology"
)

// flatMesh is the baseline routing the paper compares against (§VI-A):
// Duato's-protocol adaptive negative-first routing on the stitched global
// 2D mesh. VC0 carries the NFR escape sub-network (all negative hops before
// any positive hop — the turn-model-safe subset); the remaining VCs route
// fully adaptively over minimal directions.
type flatMesh struct {
	sys          *topology.System
	mode         Mode
	vcs          int
	adaptiveMask uint32
}

var _ router.Routing = (*flatMesh)(nil)

func newFlatMesh(sys *topology.System, opt Options) *flatMesh {
	return &flatMesh{
		sys:          sys,
		mode:         opt.Mode,
		vcs:          sys.LP.VCs,
		adaptiveMask: router.VCMaskAll(sys.LP.VCs) &^ 1,
	}
}

// minimalDirs appends the global-mesh directions that reduce distance to
// the destination.
func (f *flatMesh) minimalDirs(v, dst int, dirs []topology.Dir) []topology.Dir {
	gx, gy := f.sys.GlobalXY(v)
	dx, dy := f.sys.GlobalXY(dst)
	if dx < gx {
		dirs = append(dirs, topology.DirXMinus)
	}
	if dx > gx {
		dirs = append(dirs, topology.DirXPlus)
	}
	if dy < gy {
		dirs = append(dirs, topology.DirYMinus)
	}
	if dy > gy {
		dirs = append(dirs, topology.DirYPlus)
	}
	return dirs
}

// escapeDir returns the negative-first escape direction.
func (f *flatMesh) escapeDir(v, dst int) topology.Dir {
	gx, gy := f.sys.GlobalXY(v)
	dx, dy := f.sys.GlobalXY(dst)
	switch {
	case dx < gx:
		return topology.DirXMinus
	case dy < gy:
		return topology.DirYMinus
	case dx > gx:
		return topology.DirXPlus
	default:
		return topology.DirYPlus
	}
}

func (f *flatMesh) Candidates(r *router.Router, inPort int, p *packet.Packet, buf []router.Candidate) []router.Candidate {
	base := len(buf)
	buf, nsort := f.RawCandidates(r, p, buf)
	if nsort > 1 {
		sortByCreditScore(r, buf[base:base+nsort])
	}
	return buf
}

// RawCandidates returns the candidate set before the credit-based adaptive
// reordering plus the count of leading reorderable candidates; see
// (*mfr).RawCandidates for the contract the static certifier relies on.
func (f *flatMesh) RawCandidates(r *router.Router, p *packet.Packet, buf []router.Candidate) ([]router.Candidate, int) {
	v := r.Node
	if v == p.Dst {
		return append(buf, router.Candidate{Port: 0, VCMask: router.VCMaskAll(len(r.Out[0].Credits))}), 0
	}
	var dirBuf [4]topology.Dir
	dirs := f.minimalDirs(v, p.Dst, dirBuf[:0])

	if f.mode == SafeUnsafe {
		for _, d := range dirs {
			buf = append(buf, router.Candidate{Port: f.sys.MeshPort(v, d), VCMask: router.VCMaskAll(f.vcs)})
		}
		// The NFR escape direction is always among the candidates (it is
		// minimal on a mesh), so safe packets can follow it; nothing to
		// append.
		return buf, 0
	}

	nsort := 0
	if f.adaptiveMask != 0 {
		for _, d := range dirs {
			buf = append(buf, router.Candidate{Port: f.sys.MeshPort(v, d), VCMask: f.adaptiveMask})
		}
		nsort = len(dirs)
	}
	esc := f.escapeDir(v, p.Dst)
	return append(buf, router.Candidate{Port: f.sys.MeshPort(v, esc), VCMask: 1, Escape: true}), nsort
}

// EscapeStep exposes the negative-first escape function for static
// analysis (internal/verify). The NFR step always exists on a mesh.
func (f *flatMesh) EscapeStep(v int, p *packet.Packet) (next, vc int, ok bool) {
	if v == p.Dst {
		return v, 0, false
	}
	port := f.sys.MeshPort(v, f.escapeDir(v, p.Dst))
	if port < 0 {
		return 0, 0, false
	}
	return f.sys.Nodes[v].Ports[port].To, 0, true
}

// EscapeRequired reports whether every reachable state must offer the
// escape continuation (Duato's protocol); see (*mfr).EscapeRequired.
func (f *flatMesh) EscapeRequired() bool { return f.mode == DuatoEscape }

// SafeAt implements Definition 4 per channel: a packet that reached this
// input over a positive hop has a negative-first path from the current
// channel only if its remainder is positive-only. Packets that arrived
// over negative hops (or sit in the injection queue) can always start a
// fresh negative-then-positive path. Phase-blind safety (everything safe)
// lets Algorithm 5 fill every buffer of a congestion cycle and deadlock.
func (f *flatMesh) SafeAt(r *router.Router, inPort int, p *packet.Packet) bool {
	dir := f.sys.Nodes[r.Node].Ports[inPort].Dir
	// The input port faces the neighbor the packet came FROM: arriving on
	// the X-/Y- port means the packet moved in the positive direction.
	if dir != topology.DirXMinus && dir != topology.DirYMinus {
		return true
	}
	gx, gy := f.sys.GlobalXY(r.Node)
	dx, dy := f.sys.GlobalXY(p.Dst)
	return dx >= gx && dy >= gy
}
