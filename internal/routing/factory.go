package routing

import (
	"fmt"

	"chipletnet/internal/router"
	"chipletnet/internal/topology"
)

// New constructs the routing algorithm matching the system's topology.
// The returned value must be installed as the fabric's Routing before
// simulation; when opt.Mode is SafeUnsafe the fabric's SafeUnsafe flag
// must be enabled as well (the root package runner does both).
func New(sys *topology.System, opt Options) (router.Routing, error) {
	switch sys.Kind {
	case topology.FlatMesh:
		return newFlatMesh(sys, opt), nil
	case topology.Hypercube:
		return newMFR(sys, &hypercubeLogic{sys: sys}, opt), nil
	case topology.NDMesh, topology.NDTorus:
		sep := !opt.DisableNDMeshVCSeparation
		if !sep && !opt.AllowUnsafe {
			return nil, fmt.Errorf("routing: disabling the Theorem-1 d+/d- VC separation makes the %v escape sub-network cyclic (deadlock); set AllowUnsafe to run it anyway", sys.Kind)
		}
		if sep && sys.LP.VCs < 2 {
			return nil, fmt.Errorf("routing: %v needs >= 2 VCs for the Theorem-1 d+/d- separation (have %d)", sys.Kind, sys.LP.VCs)
		}
		base := ndmeshLogic{sys: sys, separate: sep}
		if sys.Kind == topology.NDTorus {
			return newMFR(sys, &torusLogic{ndmeshLogic: base}, opt), nil
		}
		return newMFR(sys, &base, opt), nil
	case topology.Dragonfly:
		return newMFR(sys, &dragonflyLogic{sys: sys}, opt), nil
	case topology.Tree:
		return newMFR(sys, newTreeLogic(sys), opt), nil
	case topology.Custom:
		if opt.Mode != SafeUnsafe && !opt.AllowUnsafe {
			// Shortest-path escape routes on an irregular graph can form
			// channel cycles (internal/verify demonstrates one on a ring of
			// chiplets), so Duato-escape mode is opt-in for analysis only.
			return nil, fmt.Errorf("routing: irregular custom topologies have no MFR label structure; use the safe/unsafe routing mode")
		}
		return newMFR(sys, newCustomLogic(sys), opt), nil
	default:
		return nil, fmt.Errorf("routing: unsupported topology kind %v", sys.Kind)
	}
}
