package routing

import (
	"testing"

	"chipletnet/internal/packet"
	"chipletnet/internal/topology"
)

// findLinkedPort returns the input port of node `to` whose link comes from
// node `from`.
func findLinkedPort(t *testing.T, sys *topology.System, from, to int) int {
	t.Helper()
	p := sys.PortTo(to, from)
	if p < 0 {
		t.Fatalf("no port at %d from %d", to, from)
	}
	return p
}

// TestArrivedPlusClassification checks the channel classification backing
// the phase-aware Definition 4.
func TestArrivedPlusClassification(t *testing.T) {
	sys := buildAll(t)["hypercube-4"]
	m := mfrFor(t, sys, Options{Mode: SafeUnsafe})
	f := sys.Fabric

	ring := sys.Chiplets[0].Ring
	P := len(ring)

	cases := []struct {
		name     string
		from, to int
		plus     bool
	}{
		{"ring minus step (pos 1 -> 2)", ring[1], ring[2], false},
		{"ring plus step (pos 2 -> 1)", ring[2], ring[1], true},
		{"ring wrap (pos P-1 -> 0)", ring[P-1], ring[0], true},
		{"ring wrap reverse (pos 0 -> P-1)", ring[0], ring[P-1], false},
		{"ring to core entry", ring[1], sys.NodeID(0, 1, 1), true},
		{"core to ring", sys.NodeID(0, 1, 1), ring[1], false},
		{"core plus (X+)", sys.NodeID(0, 1, 1), sys.NodeID(0, 2, 1), true},
		{"core minus (X-)", sys.NodeID(0, 2, 1), sys.NodeID(0, 1, 1), false},
	}
	for _, c := range cases {
		port := findLinkedPort(t, sys, c.from, c.to)
		if got := m.arrivedPlus(f.Routers[c.to], port); got != c.plus {
			t.Errorf("%s: arrivedPlus = %v, want %v", c.name, got, c.plus)
		}
	}
	// Cross-chiplet arrivals are equal channels.
	var ifNode int
	for id := range sys.Nodes {
		if sys.CrossPort(id) >= 0 {
			ifNode = id
			break
		}
	}
	peer := sys.Nodes[ifNode].Ports[sys.CrossPort(ifNode)].To
	port := findLinkedPort(t, sys, ifNode, peer)
	if m.arrivedPlus(f.Routers[peer], port) {
		t.Error("cross-chiplet arrival classified as plus")
	}
	// Injection queues are never plus.
	if m.arrivedPlus(f.Routers[sys.Cores[0]], 0) {
		t.Error("injection queue classified as plus")
	}
}

// TestPlusOnlyRemainder checks the plus-only completion predicate.
func TestPlusOnlyRemainder(t *testing.T) {
	sys := buildAll(t)["hypercube-6x6"] // 6x6 chiplets: 16 cores each
	m := mfrFor(t, sys, Options{Mode: SafeUnsafe})

	core := func(c, x, y int) int { return sys.NodeID(c, x, y) }
	pkt := func(dst int) *packet.Packet { return &packet.Packet{Dst: dst, Len: 32} }

	// Core (1,1) -> core (3,3): plus-only (X+,Y+ walk).
	if !m.plusOnlyRemainder(core(0, 1, 1), pkt(core(0, 3, 3))) {
		t.Error("up-right core walk should be plus-only")
	}
	// Core (3,3) -> core (1,1): needs minus moves.
	if m.plusOnlyRemainder(core(0, 3, 3), pkt(core(0, 1, 1))) {
		t.Error("down-left core walk is not plus-only")
	}
	// Different chiplet: never plus-only.
	if m.plusOnlyRemainder(core(0, 1, 1), pkt(core(1, 3, 3))) {
		t.Error("cross-chiplet remainder is not plus-only")
	}
	// Ring node -> lower-position ring node: plus ride.
	ring := sys.Chiplets[0].Ring
	if !m.plusOnlyRemainder(ring[5], pkt(ring[2])) {
		t.Error("plus ride down the ring should be plus-only")
	}
	if m.plusOnlyRemainder(ring[2], pkt(ring[5])) {
		t.Error("minus ride up the ring is not plus-only")
	}
	// Ring node above an enterable entry for an interior destination.
	if !m.plusOnlyRemainder(ring[5], pkt(core(0, 4, 4))) {
		t.Error("ride down to a bottom entry then walk up should be plus-only")
	}
}

// TestSafeAtPhaseAware: the same node is safe or unsafe depending on the
// arrival channel.
func TestSafeAtPhaseAware(t *testing.T) {
	sys := buildAll(t)["hypercube-6x6"]
	m := mfrFor(t, sys, Options{Mode: SafeUnsafe})
	f := sys.Fabric

	at := sys.NodeID(0, 2, 2)            // core (2,2)
	dstNeedsMinus := sys.NodeID(0, 1, 1) // requires X-,Y-
	p := &packet.Packet{Dst: dstNeedsMinus, Len: 32}

	// Arriving from (1,2) means the packet moved X+ (plus): unsafe.
	plusPort := findLinkedPort(t, sys, sys.NodeID(0, 1, 2), at)
	if m.SafeAt(f.Routers[at], plusPort, p) {
		t.Error("plus-arrived packet needing minus moves marked safe")
	}
	// Arriving from (3,2) means the packet moved X- (minus): safe.
	minusPort := findLinkedPort(t, sys, sys.NodeID(0, 3, 2), at)
	if !m.SafeAt(f.Routers[at], minusPort, p) {
		t.Error("minus-arrived packet denied fresh minus-first path")
	}
}
