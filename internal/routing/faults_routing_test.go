package routing

import (
	"testing"

	"chipletnet/internal/topology"
)

// faultedSystems returns grouped topologies with 20% of their
// chiplet-to-chiplet channels disabled.
func faultedSystems(t *testing.T) map[string]*topology.System {
	t.Helper()
	out := map[string]*topology.System{}
	lp := testLP()
	cube, err := topology.BuildHypercube(geo(4, 4), 4, lp)
	if err != nil {
		t.Fatal(err)
	}
	df, err := topology.BuildDragonfly(geo(4, 4), 6, lp)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := topology.BuildNDMesh(geo(5, 5), []int{3, 3}, lp)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*topology.System{"hypercube": cube, "dragonfly": df, "ndmesh": mesh} {
		if _, err := s.FailRandomCrossLinks(0.2, 99); err != nil {
			t.Fatal(err)
		}
		out[name] = s
	}
	return out
}

// TestEscapeSurvivesFaults: with 20% of cross links disabled, every core
// pair must still have a terminating escape path that never uses a failed
// channel.
func TestEscapeSurvivesFaults(t *testing.T) {
	for name, sys := range faultedSystems(t) {
		m := mfrFor(t, sys, Options{})
		linked := map[int]bool{}
		for _, ch := range sys.Chiplets {
			for _, g := range ch.Groups {
				for _, id := range g {
					linked[id] = true
				}
			}
		}
		for _, src := range sys.Cores {
			for si, dst := range sys.Cores {
				if src == dst || si%2 != 0 {
					continue
				}
				path, _ := walkEscape(t, m, src, dst, 3)
				for i := 0; i+1 < len(path); i++ {
					a, b := path[i], path[i+1]
					if sys.Nodes[a].Chiplet != sys.Nodes[b].Chiplet && !linked[a] {
						t.Fatalf("%s: escape crossed the failed link %d->%d", name, a, b)
					}
				}
			}
		}
	}
}

// TestEscapeAcyclicUnderFaults re-runs the channel-dependency check on the
// degraded systems: fault steering must not introduce cycles.
func TestEscapeAcyclicUnderFaults(t *testing.T) {
	for name, sys := range faultedSystems(t) {
		m := mfrFor(t, sys, Options{})
		edges := map[escChannel]map[escChannel]bool{}
		for _, src := range sys.Cores {
			for _, dst := range sys.Cores {
				if src == dst {
					continue
				}
				path, vcs := walkEscape(t, m, src, dst, 2)
				for i := 0; i+2 < len(path); i++ {
					a := escChannel{path[i], path[i+1], vcs[i]}
					b := escChannel{path[i+1], path[i+2], vcs[i+1]}
					if edges[a] == nil {
						edges[a] = map[escChannel]bool{}
					}
					edges[a][b] = true
				}
			}
		}
		if cyc := findCycle(edges); cyc != nil {
			t.Errorf("%s with faults: dependency cycle %v", name, cyc)
		}
	}
}
