package routing

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"chipletnet/internal/interleave"
	"chipletnet/internal/packet"
	"chipletnet/internal/router"
	"chipletnet/internal/topology"
	"chipletnet/internal/verify"
)

// Table is the flat-array routing table the certifying traversal compiles:
// for every (node, destination core, tag class) state, the raw candidate
// set the interpreted routing function would generate, packed one uint64
// per candidate. It implements verify.StateSink — routing.Compile streams
// the traversal's states straight into it, so the table is certified and
// compiled by the same walk.
//
// Entry packing: bits 0-15 output port, 16-47 VC mask, 48 escape flag,
// 49 credit-sortable flag. States are indexed (node*cores + dstIdx)*L +
// tagClass with a CSR offsets array; an empty range means the traversal
// never visited the state (it is unreachable for injected traffic) and the
// lookup falls back to the interpreter.
type Table struct {
	l      int     // interleave-tag equivalence classes (verify.TagClasses)
	nCores int     // dense destination index width
	dstIdx []int32 // node id -> dense core index, -1 for non-cores
	counts []uint32
	// sink accumulation, in traversal order; build() turns them into CSR
	tmpState []uint32
	tmpCand  []uint64

	offsets []uint32
	packed  []uint64
}

func newTable(sys *topology.System) *Table {
	t := &Table{
		l:      verify.TagClasses(sys),
		nCores: len(sys.Cores),
		dstIdx: make([]int32, len(sys.Nodes)),
	}
	for i := range t.dstIdx {
		t.dstIdx[i] = -1
	}
	for i, c := range sys.Cores {
		t.dstIdx[c] = int32(i)
	}
	t.counts = make([]uint32, len(sys.Nodes)*t.nCores*t.l)
	return t
}

func (t *Table) stateIndex(node int, di int32, class int) int {
	return (node*t.nCores+int(di))*t.l + class
}

// State implements verify.StateSink: it records the raw candidate set of
// one traversed routing state. Candidates beyond position nsort keep their
// stored order at lookup; the first nsort are re-sorted by live credits.
func (t *Table) State(node, dst, tag int, cands []router.Candidate, nsort int) {
	di := t.dstIdx[dst]
	if di < 0 || tag < 0 || tag >= t.l {
		return
	}
	s := uint32(t.stateIndex(node, di, tag))
	for i, c := range cands {
		e := uint64(uint16(c.Port)) | uint64(c.VCMask)<<16
		if c.Escape {
			e |= 1 << 48
		}
		if i < nsort {
			e |= 1 << 49
		}
		t.tmpState = append(t.tmpState, s)
		t.tmpCand = append(t.tmpCand, e)
	}
	t.counts[s] += uint32(len(cands))
}

// build converts the accumulated states into the CSR arrays and drops the
// accumulation buffers.
func (t *Table) build() {
	t.offsets = make([]uint32, len(t.counts)+1)
	total := uint32(0)
	for i, c := range t.counts {
		t.offsets[i] = total
		total += c
	}
	t.offsets[len(t.counts)] = total
	t.packed = make([]uint64, total)
	cursor := make([]uint32, len(t.counts))
	copy(cursor, t.offsets[:len(t.counts)])
	for i, s := range t.tmpState {
		t.packed[cursor[s]] = t.tmpCand[i]
		cursor[s]++
	}
	t.counts, t.tmpState, t.tmpCand = nil, nil, nil
}

// Hash is the table's content address: the hex SHA-256 over its dimensions
// and flat arrays. Certified tables are content-addressed alongside the
// DSE cache key, so identical routing behavior dedupes to one address.
func (t *Table) Hash() string {
	h := sha256.New()
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(t.l))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(t.nCores))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(t.dstIdx)))
	h.Write(hdr[:])
	var w [8]byte
	for _, o := range t.offsets {
		binary.LittleEndian.PutUint32(w[:4], o)
		h.Write(w[:4])
	}
	for _, e := range t.packed {
		binary.LittleEndian.PutUint64(w[:], e)
		h.Write(w[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Compiled is the table-driven routing engine: Candidates is a flat-array
// lookup plus the credit re-sort of the stored adaptive prefix, instead of
// re-evaluating the MFR/Duato decision procedure per hop. It wraps the
// interpreted routing it was compiled from and delegates to it for
// everything the tables cannot soundly answer: fault-reconfigured systems
// (exit selection then depends on mutated group membership and must mark
// rerouted packets), non-core destinations, and states the certifying
// traversal never visited.
type Compiled struct {
	sys   *topology.System
	inner router.Routing
	esc   verify.EscapeAnalyzer
	t     *Table
}

var _ router.Routing = (*Compiled)(nil)
var _ verify.EscapeAnalyzer = (*Compiled)(nil)

// Compile certifies the routing installed on sys and compiles its tables
// from the same traversal: verify.Run walks the full (node, destination,
// tag-class) space with the table as the state sink. The report is always
// returned when the analysis ran; the error is non-nil when the routing is
// not compilable (missing interfaces) or the certifier found a fatal
// defect — an uncertified configuration never gets tables.
func Compile(sys *topology.System) (*Compiled, *verify.Report, error) {
	if sys.Fabric == nil || sys.Fabric.Routing == nil {
		return nil, nil, fmt.Errorf("routing: compile needs a built system with routing installed")
	}
	inner := sys.Fabric.Routing
	esc, ok := inner.(verify.EscapeAnalyzer)
	if !ok {
		return nil, nil, fmt.Errorf("routing: %T does not expose EscapeStep for certification", inner)
	}
	t := newTable(sys)
	rep := verify.Run(sys, verify.Options{Sink: t})
	if err := rep.Err(); err != nil {
		return nil, rep, fmt.Errorf("routing: refusing to compile uncertified routing: %w", err)
	}
	t.build()
	return &Compiled{sys: sys, inner: inner, esc: esc, t: t}, rep, nil
}

// TableHash is the content address of the compiled tables (Table.Hash).
func (c *Compiled) TableHash() string { return c.t.Hash() }

// bypass reports that the tables are stale for the current system state:
// fault injection has reconfigured group membership (BaseGroups snapshot
// present or interfaces condemned), so exit selection must re-run the
// interpreter, which also maintains the packet Rerouted marking the fault
// engine's accounting relies on. Checked per lookup so mid-run Kill and
// Degrade events switch over immediately.
func (c *Compiled) bypass() bool {
	return c.sys.BaseGroups != nil || len(c.sys.Condemned) > 0
}

// Candidates implements router.Routing by table lookup; see Compiled.
func (c *Compiled) Candidates(r *router.Router, inPort int, p *packet.Packet, buf []router.Candidate) []router.Candidate {
	if c.bypass() {
		return c.inner.Candidates(r, inPort, p, buf)
	}
	v := r.Node
	if v == p.Dst {
		return append(buf, router.Candidate{Port: 0, VCMask: router.VCMaskAll(len(r.Out[0].Credits))})
	}
	if p.Dst < 0 || p.Dst >= len(c.t.dstIdx) {
		return c.inner.Candidates(r, inPort, p, buf)
	}
	di := c.t.dstIdx[p.Dst]
	if di < 0 {
		return c.inner.Candidates(r, inPort, p, buf)
	}
	class := interleave.Index(c.t.l, p.Tag)
	s := c.t.stateIndex(v, di, class)
	lo, hi := c.t.offsets[s], c.t.offsets[s+1]
	if lo == hi {
		return c.inner.Candidates(r, inPort, p, buf)
	}
	base := len(buf)
	nsort := 0
	for i := lo; i < hi; i++ {
		e := c.t.packed[i]
		if e&(1<<49) != 0 && int(i-lo) == nsort {
			nsort++
		}
		buf = append(buf, router.Candidate{
			Port:   int(e & 0xffff),
			VCMask: uint32(e >> 16),
			Escape: e&(1<<48) != 0,
		})
	}
	if nsort > 1 {
		sortByCreditScore(r, buf[base:base+nsort])
	}
	return buf
}

// SafeAt delegates to the interpreted routing: Definition-4 safety depends
// on the arrival channel, which the (node, destination, tag) tables do not
// index, and it is only consulted by the safe/unsafe VC allocator.
func (c *Compiled) SafeAt(r *router.Router, inPort int, p *packet.Packet) bool {
	return c.inner.SafeAt(r, inPort, p)
}

// EscapeStep delegates to the interpreted routing (verify.EscapeAnalyzer).
func (c *Compiled) EscapeStep(v int, p *packet.Packet) (next, vc int, ok bool) {
	return c.esc.EscapeStep(v, p)
}

// EscapeRequired delegates to the interpreted routing.
func (c *Compiled) EscapeRequired() bool { return c.esc.EscapeRequired() }

// ExitGroup forwards the fault engine's exit-commitment query to the
// interpreted routing (see fault.ExitPlanner).
func (c *Compiled) ExitGroup(cv int, p *packet.Packet) (group int, ok bool) {
	type exitPlanner interface {
		ExitGroup(cv int, p *packet.Packet) (int, bool)
	}
	if ep, ok2 := c.inner.(exitPlanner); ok2 {
		return ep.ExitGroup(cv, p)
	}
	return 0, false
}
