package routing

import (
	"fmt"

	"chipletnet/internal/packet"
	"chipletnet/internal/topology"
)

// customLogic routes arbitrary (irregular) chiplet graphs: chiplet-level
// shortest paths from a per-destination BFS next-hop table, with all
// deadlock avoidance delegated to the safe/unsafe flow control — the
// paper's prescribed approach for networks without exploitable label
// structure (§IV-D: "especially for irregular networks").
type customLogic struct {
	sys *topology.System
	// next[ci][cj] is the neighbor of ci on a shortest chiplet path to
	// cj (lowest-index tie-break), or -1 on the diagonal.
	next [][]int
}

func newCustomLogic(sys *topology.System) *customLogic {
	m := sys.NumChiplets()
	c := &customLogic{sys: sys, next: make([][]int, m)}
	for dst := 0; dst < m; dst++ {
		// Reverse BFS from dst: hop[i] = distance i -> dst.
		hop := make([]int, m)
		for i := range hop {
			hop[i] = -1
		}
		hop[dst] = 0
		queue := []int{dst}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range sys.CustomNeighbors[v] {
				if hop[w] < 0 {
					hop[w] = hop[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for i := 0; i < m; i++ {
			if c.next[i] == nil {
				c.next[i] = make([]int, m)
			}
			c.next[i][dst] = -1
			if i == dst {
				continue
			}
			for _, w := range sys.CustomNeighbors[i] {
				if hop[w] == hop[i]-1 {
					c.next[i][dst] = w
					break
				}
			}
		}
	}
	return c
}

func (c *customLogic) exit(cv int, p *packet.Packet) exitPlan {
	cd := c.sys.Nodes[p.Dst].Chiplet
	nx := c.next[cv][cd]
	if nx < 0 {
		panic(fmt.Sprintf("routing: no chiplet path %d -> %d", cv, cd))
	}
	g := -1
	for i, w := range c.sys.CustomNeighbors[cv] {
		if w == nx {
			g = i
			break
		}
	}
	if g < 0 {
		panic(fmt.Sprintf("routing: chiplet %d has no group toward %d", cv, nx))
	}
	return exitPlan{
		group: g,
		segLo: 0, segHi: c.sys.Geo.RingLen() - 1,
		bothWays: true,
	}
}

func (c *customLogic) incomingMinusAllowed() bool { return true }

// safeNode: on an irregular graph only packets already at their
// destination chiplet count as safe (their remaining route — ring ride
// plus plus-only core moves — cannot join a cross-chiplet cycle);
// everything in transit relies on Algorithm 5's reserved slack.
func (c *customLogic) safeNode(v, dstChiplet int) bool {
	return c.sys.Nodes[v].Chiplet == dstChiplet
}
