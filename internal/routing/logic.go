package routing

import (
	"fmt"

	"chipletnet/internal/packet"
	"chipletnet/internal/topology"
)

// hypercubeLogic implements Algorithm 4: offset dimensions are crossed in
// increasing index order. Group j (dimension j) sits at lower ring
// positions than group j+1, so visiting dimensions in increasing order
// walks the ring monotonically in the minus direction; no virtual channels
// are needed (§IV-C).
type hypercubeLogic struct {
	sys *topology.System
}

func (h *hypercubeLogic) exit(cv int, p *packet.Packet) exitPlan {
	cur := h.sys.Chiplets[cv].Coord
	dst := h.sys.Chiplets[h.sys.Nodes[p.Dst].Chiplet].Coord
	for j := range cur {
		if cur[j] != dst[j] {
			lo, hi := h.sys.GroupRange(j)
			return exitPlan{group: j, segLo: lo, segHi: hi}
		}
	}
	panic(fmt.Sprintf("routing: hypercube exit called with equal coordinates (chiplet %d)", cv))
}

func (h *hypercubeLogic) incomingMinusAllowed() bool { return true }

// ndmeshLogic implements dimension-order MFR on the chiplet-level nD-mesh.
// Dimension j's interface segment is the union of groups 2j (d_j-) and
// 2j+1 (d_j+). Packets traveling d+ enter the segment from below and leave
// through its upper half; packets traveling d- arrive from the upper half
// and descend to the lower half on plus-direction equal channels. The two
// direction classes use disjoint virtual channels on segment and cross
// hops (Theorem 1 / Fig. 8).
type ndmeshLogic struct {
	sys *topology.System
	// separate applies the Theorem-1 VC separation (VC0 for d-, VC1 for
	// d+). When disabled both classes use VC0 — a configuration that
	// Theorem 1 shows can deadlock; kept only for demonstration.
	separate bool
}

func (n *ndmeshLogic) exit(cv int, p *packet.Packet) exitPlan {
	cur := n.sys.Chiplets[cv].Coord
	dst := n.sys.Chiplets[n.sys.Nodes[p.Dst].Chiplet].Coord
	for j := range cur {
		if cur[j] == dst[j] {
			continue
		}
		minusGroup, plusGroup := 2*j, 2*j+1
		lo, _ := n.sys.GroupRange(minusGroup)
		_, hi := n.sys.GroupRange(plusGroup)
		plan := exitPlan{segLo: lo, segHi: hi, bothWays: true}
		if dst[j] > cur[j] {
			plan.group = plusGroup
			if n.separate {
				plan.vcClass = 1
			}
		} else {
			plan.group = minusGroup
		}
		return plan
	}
	panic(fmt.Sprintf("routing: nD-mesh exit called with equal coordinates (chiplet %d)", cv))
}

func (n *ndmeshLogic) incomingMinusAllowed() bool { return true }

// torusLogic routes the chiplet-level nD-torus. The escape sub-network is
// exactly the embedded nD-mesh (exit plans never use the wrap channels),
// so the Theorem-1 analysis carries over unchanged; the wrap channels are
// offered to the adaptive virtual channels only (extraExit), which is
// Duato-safe because every packet retains its mesh escape from every
// reachable state.
type torusLogic struct {
	ndmeshLogic
}

// extraExit returns the wrap-direction exit plan for the packet's current
// dimension when the wrap route is strictly shorter than the mesh route.
// The plan comes back by value: one shared logic instance serves every
// router, and under the islands engine routers in different islands
// evaluate it concurrently, so the logic may hold no mutable scratch.
func (t *torusLogic) extraExit(cv int, p *packet.Packet) (exitPlan, bool) {
	cur := t.sys.Chiplets[cv].Coord
	dst := t.sys.Chiplets[t.sys.Nodes[p.Dst].Chiplet].Coord
	dims := t.sys.ChipDims
	for j := range cur {
		if cur[j] == dst[j] {
			continue
		}
		direct := abs(dst[j] - cur[j])
		wrap := dims[j] - direct
		if wrap >= direct {
			return exitPlan{}, false
		}
		// Travel the opposite sign through the wrap channel.
		plus := dst[j] < cur[j]
		g := 2 * j
		if plus {
			g++
		}
		if len(t.sys.Chiplets[cv].Groups[g]) == 0 {
			return exitPlan{}, false // dimension too small to have a wrap channel
		}
		minusGroup, plusGroup := 2*j, 2*j+1
		lo, _ := t.sys.GroupRange(minusGroup)
		_, hi := t.sys.GroupRange(plusGroup)
		plan := exitPlan{group: g, segLo: lo, segHi: hi, bothWays: true}
		if t.separate && plus {
			plan.vcClass = 1
		}
		return plan, true
	}
	return exitPlan{}, false
}

// dragonflyLogic routes the fully connected topology: every packet takes
// exactly one chiplet-to-chiplet hop, through the group whose edge color
// joins the two chiplets. Destination-chiplet rides use the plus direction
// only, which keeps ring channels that feed cross links (minus rides)
// disjoint from ring channels fed by cross links (plus rides) and the
// dependency graph acyclic without virtual channels.
type dragonflyLogic struct {
	sys *topology.System
}

func (d *dragonflyLogic) exit(cv int, p *packet.Packet) exitPlan {
	cd := d.sys.Nodes[p.Dst].Chiplet
	g := d.sys.DragonflyColor[cv][cd]
	if g < 0 {
		panic(fmt.Sprintf("routing: no dragonfly color between chiplets %d and %d", cv, cd))
	}
	lo, hi := d.sys.GroupRange(g)
	return exitPlan{group: g, segLo: lo, segHi: hi}
}

func (d *dragonflyLogic) incomingMinusAllowed() bool { return false }

// treeLogic routes the irregular tree topology: up toward the common
// ancestor through the parent group (the highest ring positions, reached
// by minus rides), then down through child groups (reached by plus rides).
type treeLogic struct {
	sys   *topology.System
	depth []int
}

func newTreeLogic(sys *topology.System) *treeLogic {
	t := &treeLogic{sys: sys, depth: make([]int, sys.NumChiplets())}
	for i := range t.depth {
		d, c := 0, i
		for sys.Parent[c] >= 0 {
			c = sys.Parent[c]
			d++
		}
		t.depth[i] = d
	}
	return t
}

// nextChiplet returns the tree neighbor of cv on the path to cd.
func (t *treeLogic) nextChiplet(cv, cd int) (next int, down bool) {
	// Climb cd to cv's depth+1 and check whether cv is its ancestor.
	c := cd
	for t.depth[c] > t.depth[cv]+1 {
		c = t.sys.Parent[c]
	}
	if t.depth[c] == t.depth[cv]+1 && t.sys.Parent[c] == cv {
		return c, true
	}
	return t.sys.Parent[cv], false
}

func (t *treeLogic) exit(cv int, p *packet.Packet) exitPlan {
	cd := t.sys.Nodes[p.Dst].Chiplet
	next, down := t.nextChiplet(cv, cd)
	ringHi := t.sys.Geo.RingLen() - 1
	if !down {
		// Upward: the parent group is the last group, at the highest ring
		// positions, reached by minus rides only. Plus rides toward the
		// parent exit would let adaptively placed packets occupy ring
		// channels that destination and downward rides also use, closing
		// a cross-down -> ring -> cross-up escape dependency cycle
		// (internal/verify finds the 4-channel witness when this plan is
		// bothWays).
		g := t.sys.Grouping.Groups() - 1
		return exitPlan{group: g, segLo: 0, segHi: ringHi}
	}
	// Downward: find which child slot next occupies.
	for slot, ch := range t.sys.Children[cv] {
		if ch == next {
			return exitPlan{group: slot, segLo: 0, segHi: ringHi, bothWays: true}
		}
	}
	panic(fmt.Sprintf("routing: chiplet %d is not a child of %d", next, cv))
}

// incomingMinusAllowed is false for trees: destination-chiplet rides use
// the plus direction only. Minus rides at a destination chiplet would share
// ring channels with upward exit rides, closing a cross-down → ring-minus →
// cross-up dependency cycle (caught by the escape-acyclicity test).
func (t *treeLogic) incomingMinusAllowed() bool { return false }

// safeNode implements the Definition-4 predicate for trees: a packet is
// safe once it has turned downward — the destination chiplet lies in the
// subtree of the packet's current chiplet — because the remaining route
// (plus rides and parent-to-child hops) is acyclic by tree depth. Upward
// packets are unsafe: their progress guarantee comes from Algorithm 5's
// reserved slack, not from the channel order.
func (t *treeLogic) safeNode(v, dstChiplet int) bool {
	cv := t.sys.Nodes[v].Chiplet
	c := dstChiplet
	for t.depth[c] > t.depth[cv] {
		c = t.sys.Parent[c]
	}
	return c == cv
}
