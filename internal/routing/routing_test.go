package routing

import (
	"fmt"
	"testing"

	"chipletnet/internal/chiplet"
	"chipletnet/internal/packet"
	"chipletnet/internal/topology"
)

func testLP() topology.LinkParams {
	return topology.LinkParams{
		VCs: 2, InternalBufFlits: 32, InterfaceBufFlits: 64,
		OnChipBW: 4, OffChipBW: 2, OnChipLatency: 1, OffChipLatency: 5,
		EjectBW: 4,
	}
}

func geo(w, h int) chiplet.Geometry { return chiplet.MustNew(w, h) }

// buildAll returns a small instance of every grouped topology.
func buildAll(t *testing.T) map[string]*topology.System {
	t.Helper()
	lp := testLP()
	out := map[string]*topology.System{}
	var err error
	if out["hypercube-4"], err = topology.BuildHypercube(geo(4, 4), 4, lp); err != nil {
		t.Fatal(err)
	}
	if out["ndmesh-3x2x2"], err = topology.BuildNDMesh(geo(4, 4), []int{3, 2, 2}, lp); err != nil {
		t.Fatal(err)
	}
	if out["dragonfly-6"], err = topology.BuildDragonfly(geo(4, 4), 6, lp); err != nil {
		t.Fatal(err)
	}
	if out["tree-7"], err = topology.BuildTree(geo(5, 5), 7, 2, lp); err != nil {
		t.Fatal(err)
	}
	if out["hypercube-6x6"], err = topology.BuildHypercube(geo(6, 6), 5, lp); err != nil {
		t.Fatal(err)
	}
	if out["ndtorus-4x3"], err = topology.BuildNDTorus(geo(4, 4), []int{4, 3}, lp); err != nil {
		t.Fatal(err)
	}
	return out
}

func mfrFor(t *testing.T, sys *topology.System, opt Options) *mfr {
	t.Helper()
	rt, err := New(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := rt.(*mfr)
	if !ok {
		t.Fatalf("expected *mfr, got %T", rt)
	}
	return m
}

// walkEscape follows escapeStep from src to dst, asserting progress and a
// sane bound, and returns the visited nodes (src..dst) plus the per-hop
// escape VC classes.
func walkEscape(t *testing.T, m *mfr, src, dst, tag int) ([]int, []int) {
	t.Helper()
	p := &packet.Packet{Src: src, Dst: dst, Tag: tag, Len: 32}
	bound := len(m.sys.Nodes) * 4
	path := []int{src}
	var vcs []int
	v := src
	for v != dst {
		next, vc := m.escapeStep(v, p)
		if m.sys.PortTo(v, next) < 0 {
			t.Fatalf("escape step %d -> %d is not a link (src %d dst %d)", v, next, src, dst)
		}
		path = append(path, next)
		vcs = append(vcs, vc)
		v = next
		if len(path) > bound {
			t.Fatalf("escape path from %d to %d did not terminate (len > %d)", src, dst, bound)
		}
	}
	return path, vcs
}

// TestEscapeTerminatesAllPairs walks the escape path for every core pair on
// every topology.
func TestEscapeTerminatesAllPairs(t *testing.T) {
	for name, sys := range buildAll(t) {
		m := mfrFor(t, sys, Options{})
		diam, _ := sys.Diameter()
		maxLen := 0
		for _, src := range sys.Cores {
			for _, dst := range sys.Cores {
				if src == dst {
					continue
				}
				path, _ := walkEscape(t, m, src, dst, 0)
				if len(path)-1 > maxLen {
					maxLen = len(path) - 1
				}
			}
		}
		// Escape paths are not minimal but must stay comparable to the
		// diameter plus ring detours.
		limit := diam + 3*sys.Geo.RingLen()
		if maxLen > limit {
			t.Errorf("%s: longest escape path %d exceeds %d (diameter %d)", name, maxLen, limit, diam)
		}
	}
}

// TestEscapeMinusFirstWithinChiplet asserts the MFR discipline on every
// escape path: within each chiplet traversal, ring-position movement in the
// minus direction (increasing position) never follows a plus move, except
// inside nD-mesh dimension segments and tree chiplets where equal-label
// movement is allowed both ways.
func TestEscapeMinusFirstCoreDiscipline(t *testing.T) {
	// Strongest checkable invariant for hypercube and dragonfly: the
	// mesh-label sequence within the source chiplet is non-increasing
	// (minus-only) until the chiplet-to-chiplet hop, and within the
	// destination chiplet every core-mesh move after entering the core
	// region is label-increasing (plus-only).
	for _, name := range []string{"hypercube-4", "hypercube-6x6", "dragonfly-6"} {
		sys := buildAll(t)[name]
		m := mfrFor(t, sys, Options{})
		for _, src := range sys.Cores {
			for _, dst := range sys.Cores {
				if src == dst || sys.Nodes[src].Chiplet == sys.Nodes[dst].Chiplet {
					continue
				}
				path, _ := walkEscape(t, m, src, dst, 1)
				assertMinusThenPlus(t, sys, path, name)
			}
		}
	}
}

// assertMinusThenPlus checks that along the path, labels never increase
// before the final plus phase: formally, once a hop increases the label
// within a chiplet's core region, all remaining hops stay within the
// destination chiplet.
func assertMinusThenPlus(t *testing.T, sys *topology.System, path []int, name string) {
	t.Helper()
	dst := path[len(path)-1]
	dstChip := sys.Nodes[dst].Chiplet
	plusPhase := false
	for i := 0; i+1 < len(path); i++ {
		a, b := &sys.Nodes[path[i]], &sys.Nodes[path[i+1]]
		if a.Chiplet != b.Chiplet {
			if plusPhase {
				t.Fatalf("%s: cross-chiplet hop after plus phase on path %v", name, path)
			}
			continue
		}
		// Ring plus move (decreasing position) or core plus move starts
		// the plus phase.
		plusHop := false
		if a.RingPos >= 0 && b.RingPos >= 0 {
			plusHop = b.RingPos < a.RingPos
		} else if a.RingPos >= 0 && b.RingPos < 0 {
			plusHop = true // ring -> core entry is a plus channel
		} else if a.RingPos < 0 && b.RingPos < 0 {
			plusHop = b.Label > a.Label
		} else {
			plusHop = false // core -> ring is a minus channel
		}
		if plusHop {
			if a.Chiplet != dstChip {
				t.Fatalf("%s: plus hop outside destination chiplet on path %v", name, path)
			}
			plusPhase = true
		} else if plusPhase {
			t.Fatalf("%s: minus hop %d->%d after plus phase on path %v", name, path[i], path[i+1], path)
		}
	}
}

// escChannel identifies one escape channel: a directed link plus VC class.
type escChannel struct {
	from, to int
	vc       int
}

// TestEscapeChannelDependenciesAcyclic builds the channel dependency graph
// induced by all escape paths (every core pair, several interleave tags)
// and verifies it has no cycle — the Duato condition that makes the escape
// sub-network deadlock-free.
func TestEscapeChannelDependenciesAcyclic(t *testing.T) {
	for name, sys := range buildAll(t) {
		m := mfrFor(t, sys, Options{})
		edges := map[escChannel]map[escChannel]bool{}
		addPath := func(path []int, vcs []int) {
			for i := 0; i+2 < len(path); i++ {
				a := escChannel{path[i], path[i+1], vcs[i]}
				b := escChannel{path[i+1], path[i+2], vcs[i+1]}
				if edges[a] == nil {
					edges[a] = map[escChannel]bool{}
				}
				edges[a][b] = true
			}
		}
		for _, src := range sys.Cores {
			for _, dst := range sys.Cores {
				if src == dst {
					continue
				}
				for _, tag := range []int{0, 1, 5} {
					path, vcs := walkEscape(t, m, src, dst, tag)
					addPath(path, vcs)
				}
			}
		}
		if cyc := findCycle(edges); cyc != nil {
			t.Errorf("%s: escape channel dependency cycle: %v", name, cyc)
		}
	}
}

// findCycle returns a cycle in the channel graph, or nil.
func findCycle(edges map[escChannel]map[escChannel]bool) []escChannel {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[escChannel]int{}
	var stack []escChannel
	var dfs func(c escChannel) []escChannel
	dfs = func(c escChannel) []escChannel {
		color[c] = gray
		stack = append(stack, c)
		for n := range edges[c] {
			switch color[n] {
			case gray:
				// Found: slice the stack from n.
				for i, s := range stack {
					if s == n {
						return append([]escChannel(nil), stack[i:]...)
					}
				}
				return stack
			case white:
				if cyc := dfs(n); cyc != nil {
					return cyc
				}
			}
		}
		color[c] = black
		stack = stack[:len(stack)-1]
		return nil
	}
	for c := range edges {
		if color[c] == white {
			if cyc := dfs(c); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}

// TestNDMeshVCSeparationClasses asserts Theorem 1's condition: on nD-mesh
// cross hops, d- packets use VC0 and d+ packets use VC1.
func TestNDMeshVCSeparationClasses(t *testing.T) {
	sys := buildAll(t)["ndmesh-3x2x2"]
	m := mfrFor(t, sys, Options{})
	checked := 0
	for _, src := range sys.Cores {
		for _, dst := range sys.Cores {
			if src == dst {
				continue
			}
			path, vcs := walkEscape(t, m, src, dst, 0)
			for i := 0; i+1 < len(path); i++ {
				a, b := &sys.Nodes[path[i]], &sys.Nodes[path[i+1]]
				if a.Chiplet == b.Chiplet {
					continue
				}
				dim := a.Group / 2
				plus := sys.Chiplets[b.Chiplet].Coord[dim] > sys.Chiplets[a.Chiplet].Coord[dim]
				want := 0
				if plus {
					want = 1
				}
				if vcs[i] != want {
					t.Fatalf("cross hop %d->%d (dim %d, plus=%v) on VC %d, want %d",
						path[i], path[i+1], dim, plus, vcs[i], want)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cross hops checked")
	}
}

// TestHypercubeDimensionOrder asserts Algorithm 4: chiplet-level hops fix
// dimensions in increasing order.
func TestHypercubeDimensionOrder(t *testing.T) {
	sys := buildAll(t)["hypercube-4"]
	m := mfrFor(t, sys, Options{})
	for _, src := range sys.Cores {
		for _, dst := range sys.Cores {
			if src == dst {
				continue
			}
			path, _ := walkEscape(t, m, src, dst, 0)
			lastDim := -1
			for i := 0; i+1 < len(path); i++ {
				a, b := &sys.Nodes[path[i]], &sys.Nodes[path[i+1]]
				if a.Chiplet == b.Chiplet {
					continue
				}
				dim := a.Group
				if dim <= lastDim {
					t.Fatalf("dimension order violated (%d after %d) on path %v", dim, lastDim, path)
				}
				lastDim = dim
			}
		}
	}
}

// TestInterleaveTagSpreadsExits verifies that different tags make packets
// leave through different physical interfaces of the same group.
func TestInterleaveTagSpreadsExits(t *testing.T) {
	sys := buildAll(t)["hypercube-4"]
	m := mfrFor(t, sys, Options{})
	src := sys.Cores[0]
	var dst int
	for _, c := range sys.Cores {
		if sys.Nodes[c].Chiplet != sys.Nodes[src].Chiplet {
			dst = c
			break
		}
	}
	exits := map[int]bool{}
	for tag := 0; tag < 4; tag++ {
		path, _ := walkEscape(t, m, src, dst, tag)
		for i := 0; i+1 < len(path); i++ {
			if sys.Nodes[path[i]].Chiplet != sys.Nodes[path[i+1]].Chiplet {
				exits[path[i]] = true
				break
			}
		}
	}
	if len(exits) < 2 {
		t.Errorf("tags 0..3 all exit through %v; interleaving has no effect", exits)
	}
}

// TestSafeAtMatchesEscape: every node on an escape path must be admissible
// (SafeAt true), since the escape continuation exists by construction.
func TestSafeAtMatchesEscape(t *testing.T) {
	for name, sys := range buildAll(t) {
		m := mfrFor(t, sys, Options{})
		for _, src := range sys.Cores {
			for si, dst := range sys.Cores {
				if src == dst || si%3 != 0 {
					continue
				}
				p := &packet.Packet{Src: src, Dst: dst, Tag: 0, Len: 32}
				path, _ := walkEscape(t, m, src, dst, 0)
				for _, v := range path {
					if !m.admissible(v, p) {
						t.Fatalf("%s: escape path visits inadmissible node %d (src %d dst %d)", name, v, src, dst)
					}
				}
			}
		}
	}
}

func TestFactoryErrors(t *testing.T) {
	sys, err := topology.BuildNDMesh(geo(4, 4), []int{2, 2}, topology.LinkParams{
		VCs: 1, InternalBufFlits: 32, InterfaceBufFlits: 64,
		OnChipBW: 4, OffChipBW: 2, OnChipLatency: 1, OffChipLatency: 5, EjectBW: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sys, Options{}); err == nil {
		t.Error("nD-mesh with 1 VC accepted despite Theorem-1 separation")
	}
	if _, err := New(sys, Options{DisableNDMeshVCSeparation: true}); err == nil {
		t.Error("equal-channel mode accepted without AllowUnsafe")
	}
	if _, err := New(sys, Options{DisableNDMeshVCSeparation: true, AllowUnsafe: true}); err != nil {
		t.Errorf("separation disabled with AllowUnsafe should allow 1 VC: %v", err)
	}
	cust, err := topology.BuildCustom(geo(4, 4), 3, [][2]int{{0, 1}, {1, 2}}, testLP())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cust, Options{}); err == nil {
		t.Error("custom + Duato accepted without AllowUnsafe")
	}
	if _, err := New(cust, Options{AllowUnsafe: true}); err != nil {
		t.Errorf("custom + Duato with AllowUnsafe should construct: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if fmt.Sprint(DuatoEscape) != "duato-escape" || fmt.Sprint(SafeUnsafe) != "safe-unsafe" {
		t.Error("Mode.String mismatch")
	}
}
