package packet

import "testing"

func TestLatencyAccessors(t *testing.T) {
	p := &Packet{CreatedAt: 100, InjectedAt: 130, DeliveredAt: 250}
	if p.Latency() != 150 {
		t.Errorf("Latency = %d", p.Latency())
	}
	if p.NetworkLatency() != 120 {
		t.Errorf("NetworkLatency = %d", p.NetworkLatency())
	}
}

func TestRoutersIncludesSource(t *testing.T) {
	p := &Packet{RouterHops: 5}
	if p.Routers() != 6 {
		t.Errorf("Routers = %d, want 6", p.Routers())
	}
	zero := &Packet{}
	if zero.Routers() != 1 {
		t.Errorf("a self-delivered packet still visits its source router")
	}
}
