// Package packet defines the unit of data transfer in the simulator.
//
// The simulator is flit-level: a packet is a train of Len flits that moves
// through virtual-channel FIFOs and links. To keep memory and simulation
// cost proportional to packets rather than flits, individual flits are not
// materialized; buffers and links account for them with counters. A Packet
// therefore carries everything the routers, the routing algorithms and the
// statistics collectors need: addressing, the interleave tag, timestamps and
// hop counters.
package packet

// QoS traffic classes. Every packet belongs to exactly one class, set at
// injection by the traffic source; internal/stats keeps per-class latency
// and throughput figures so tail-latency objectives can be evaluated per
// class rather than over the aggregate.
const (
	// ClassBestEffort is the default class of the synthetic Bernoulli
	// patterns: no ordering or deadline expectations.
	ClassBestEffort uint8 = iota
	// ClassBulk is background bandwidth traffic (memory/DMA streams):
	// throughput matters, tail latency does not.
	ClassBulk
	// ClassLatency is latency-sensitive request/response traffic:
	// small packets whose p99/p999 is the figure of merit.
	ClassLatency
	// ClassCollective is collective-communication traffic (all-reduce,
	// all-gather, ...): completion time of the whole phase matters.
	ClassCollective
	// NumClasses bounds the class space; class values must be < NumClasses.
	NumClasses
)

// ClassName returns the canonical name of a traffic class.
func ClassName(c uint8) string {
	switch c {
	case ClassBestEffort:
		return "best-effort"
	case ClassBulk:
		return "bulk"
	case ClassLatency:
		return "latency"
	case ClassCollective:
		return "collective"
	}
	return "?"
}

// ClassByName returns the class value for a canonical class name.
func ClassByName(name string) (uint8, bool) {
	for c := uint8(0); c < NumClasses; c++ {
		if ClassName(c) == name {
			return c, true
		}
	}
	return 0, false
}

// NoDep marks a packet (or trace entry) with no dependency.
const NoDep int64 = -1

// Packet is one network packet (a train of Len flits).
//
// A Packet is created by a traffic source, carried through the network by
// reference, and handed to the delivery sink when its tail flit is consumed
// at the destination. It must not be shared between concurrent simulations.
type Packet struct {
	// ID is unique per simulation run (assigned by the traffic source).
	ID uint64
	// MsgID identifies the message this packet belongs to. Several packets
	// can share a message; coarse-grained (message-level) interleaving keys
	// off this field.
	MsgID uint64
	// SeqInMsg is the packet's index within its message.
	SeqInMsg int

	// Src and Dst are global node IDs.
	Src, Dst int

	// Tag is the network-interleaving tag: the index of the physical
	// interface within the destination interface group that inter-chiplet
	// hops of this packet should use. Tag < 0 means "no preference" (the
	// routing algorithm picks a default). The tag is assigned at injection
	// time by an interleave.Policy.
	Tag int

	// Len is the packet length in flits.
	Len int

	// CreatedAt is the cycle the packet entered the source queue.
	// Latency is measured from CreatedAt so that source queueing counts,
	// as in the paper's simulator.
	CreatedAt int64
	// InjectedAt is the cycle the packet's head flit left the source queue
	// into the injection router (set by the router model).
	InjectedAt int64
	// DeliveredAt is the cycle the tail flit was consumed at Dst.
	DeliveredAt int64

	// Class is the QoS traffic class (< NumClasses), set at injection by
	// the traffic source. Routers ignore it; internal/stats aggregates
	// per-class figures and workload traces record it.
	Class uint8
	// Dep is the causal-dependency annotation for workload traces: the ID
	// of the packet whose delivery this packet's injection waited on, or
	// NoDep (-1). Carried through recording and replay (internal/workload);
	// routers ignore it.
	Dep int64

	// Measured marks packets created during the measurement window
	// (after warm-up); only these contribute to latency statistics.
	Measured bool

	// Rerouted marks packets whose exit-interface selection was changed by
	// fault-driven group degradation: the interface the pre-fault group
	// membership would have picked is gone, so the interleave re-weighted
	// the packet onto a survivor. Set by the routing layer; only meaningful
	// under fault injection.
	Rerouted bool

	// Hop counters, maintained by the router model as the head flit moves.
	RouterHops  int // routers traversed, excluding the source router
	OnChipHops  int // on-chip links traversed
	OffChipHops int // off-chip (chiplet-to-chiplet) links traversed
}

// Latency returns the packet delivery latency in cycles (source queueing
// included). It is only meaningful after delivery.
func (p *Packet) Latency() int64 { return p.DeliveredAt - p.CreatedAt }

// NetworkLatency returns the in-network latency (excluding source queueing).
func (p *Packet) NetworkLatency() int64 { return p.DeliveredAt - p.InjectedAt }

// Routers returns the total number of routers the packet visited,
// including the source router.
func (p *Packet) Routers() int { return p.RouterHops + 1 }
