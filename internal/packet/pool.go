package packet

// Pool recycles Packet objects so a steady-state simulation allocates no
// new packets: the traffic generator draws from the pool and the runner
// returns every delivered packet once the statistics sink has consumed
// it. Not safe for concurrent use — like the Fabric, one Pool belongs to
// one simulation.
//
// Recycling is only sound when nothing can observe a packet after
// delivery: no Tracer retaining pointers and no fault schedule whose
// post-mortem accounting (stranded-packet reports) reads replay-buffer
// packets. The runner gates pooling on those conditions.
type Pool struct {
	free []*Packet
}

// Get returns a packet to initialize. The caller must overwrite every
// field (recycled packets carry stale contents).
func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		return p
	}
	return new(Packet)
}

// Put recycles a packet. The caller guarantees no live reference to p
// remains.
func (pl *Pool) Put(p *Packet) { pl.free = append(pl.free, p) }
