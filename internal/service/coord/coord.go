// Package coord turns a fleet of chipletd daemons into one fault-tolerant
// design-space-exploration machine. One daemon runs as the coordinator; the
// others join as workers over the same HTTP+JSON surface the job API uses.
//
// The unit of distribution is the cache shard: dse.Key is hex SHA-256, so
// the sixteen first-nibble shards (dse.ShardIndex) partition any campaign's
// pending evaluations into disjoint, stably-addressed buckets. The
// coordinator hands each non-empty shard to a worker under a revocable
// lease; the worker streams finished Records back as JSONL-shaped delta
// batches that fold into the campaign store with dse.Merge. Folding is
// idempotent — redelivered records dedupe by content address, divergent
// content is a typed dse.ErrConflict — so "at least once" delivery is safe
// and a worker killed mid-shard costs only its unreported tail.
//
// Liveness is heartbeat-based and lease renewal is echo-driven: each
// beat lists the assignments the worker is still working on, and only
// those leases are renewed. A worker that misses its TTL forfeits every
// lease it holds — and so does a live worker that abandoned a shard,
// since the shard drops out of its echo — and the shards go back to the
// pool after a per-shard
// jittered backoff (backoff.Policy.DelayFor) so a flapping worker does not
// ping-pong its shards. Every lease transition is journaled to coord.jsonl
// with the same fsynced append-only discipline as the job journal, so a
// coordinator crash-restart replays to the exact lease state and running
// workers keep their shards across the restart. If the whole fleet dies,
// the campaign degrades instead of hanging: after DeadFleetGrace with no
// heartbeats the campaign returns the records folded so far plus
// ErrDegraded.
//
// Because every record is content-addressed and the determinism contract
// makes equal keys carry equal content, the merged frontier of a
// distributed campaign is byte-identical to a single-machine run no matter
// which workers died along the way.
package coord

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"chipletnet/internal/dse"
	"chipletnet/internal/service/backoff"
)

// ErrDegraded reports a campaign that ran out of fleet: no worker
// heartbeat arrived for DeadFleetGrace while evaluations were still
// outstanding. The campaign's partial results are returned alongside it.
// Returned wrapped; test with errors.Is.
var ErrDegraded = errors.New("coord: campaign degraded: worker fleet dead")

// Config tunes the coordinator.
type Config struct {
	// Dir is the state directory; the lease journal lives at
	// Dir/coord.jsonl.
	Dir string
	// HeartbeatTTL is how long a lease (and a worker's liveness) survives
	// without a heartbeat (default 10s). Workers are told to beat at a
	// third of it.
	HeartbeatTTL time.Duration
	// DeadFleetGrace is how long a campaign with outstanding work waits
	// with zero live workers before degrading (default 1m).
	DeadFleetGrace time.Duration
	// Reassign paces the re-offer of an expired shard; the zero value
	// means 250ms base, 5s cap, 0.5 jitter. The jitter key is the
	// campaign/shard pair, so reassignment schedules are deterministic
	// per shard yet spread across shards.
	Reassign backoff.Policy
	// Tick is the supervision interval (default 100ms).
	Tick time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Coordinator owns the lease state of every distributed campaign. Open
// one per state directory; Register mounts its protocol on the daemon
// mux and RunCampaign drives one campaign to completion.
type Coordinator struct {
	cfg  Config
	logf func(string, ...any)
	jlog *leaseLog

	mu      sync.Mutex
	workers map[string]*workerState
	active  map[string]*campaign
	// prior holds replayed (or parked) lease state of campaigns not
	// currently running, keyed by campaign ID; RunCampaign adopts it so
	// leases survive coordinator restarts and drain/requeue cycles.
	prior map[string]*priorCampaign
}

// workerState is what the coordinator knows about one worker.
type workerState struct {
	lastBeat  time.Time
	records   int // records folded from this worker (fresh only)
	simulated int // of those, freshly simulated (not local cache hits)
}

type shardPhase int

const (
	shardPending shardPhase = iota
	shardLeased
	shardDone
)

// shardState is one shard of one campaign: its remaining work and the
// lease protecting it.
type shardState struct {
	phase  shardPhase
	worker string
	// lease is the fencing token: it bumps on every grant, so a delta or
	// work fetch carrying an old lease is recognized as revoked.
	lease       int
	grants      int // total grants ever, = the highest lease issued
	expiry      time.Time
	availableAt time.Time // reassignment backoff gate
	work        map[string]dse.Eval
}

// campaign is one in-flight distributed exploration, keyed by job ID.
type campaign struct {
	id        string
	params    dse.Params
	store     dse.Store
	shards    [dse.ShardN]shardState
	total     int // pending evaluations at start
	simulated int // freshly simulated (vs served from worker caches)
	progress  func(done, total int)
	err       error // sticky poison (merge conflict, degradation)
	done      chan struct{}
	finished  bool
	// foldMu serializes store merges. It is separate from (and never
	// held together with) the coordinator mutex: the merge is per-record
	// disk I/O, and stalling heartbeat handling behind a slow disk would
	// push live workers toward the lease TTL.
	foldMu sync.Mutex
}

func (camp *campaign) remainingLocked() int {
	n := 0
	for i := range camp.shards {
		n += len(camp.shards[i].work)
	}
	return n
}

func (camp *campaign) completeLocked() {
	if !camp.finished {
		camp.finished = true
		close(camp.done)
	}
}

// priorCampaign is the lease state a finished-nothing campaign left
// behind: enough to restore leases and keep fencing tokens monotonic.
type priorCampaign struct {
	shards [dse.ShardN]priorShard
}

type priorShard struct {
	worker string
	lease  int
	grants int
}

// Open loads (creating if needed) the lease journal under cfg.Dir and
// replays it, so leases granted by a previous incarnation are honored.
func Open(cfg Config) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, errors.New("coord: Config.Dir is required")
	}
	if cfg.HeartbeatTTL <= 0 {
		cfg.HeartbeatTTL = 10 * time.Second
	}
	if cfg.DeadFleetGrace <= 0 {
		cfg.DeadFleetGrace = time.Minute
	}
	if cfg.Reassign == (backoff.Policy{}) {
		cfg.Reassign = backoff.Policy{Base: 250 * time.Millisecond, Cap: 5 * time.Second, Jitter: 0.5}
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// The coordinator may open before the service creates the shared
	// state directory (chipletd wires them in that order).
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	jlog, events, quarantined, err := openLeaseLog(filepath.Join(cfg.Dir, "coord.jsonl"))
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		logf:    logf,
		jlog:    jlog,
		workers: map[string]*workerState{},
		active:  map[string]*campaign{},
		prior:   map[string]*priorCampaign{},
	}
	if quarantined > 0 {
		logf("coord: lease journal: quarantined %d corrupt lines", quarantined)
	}
	for _, e := range events {
		c.replay(e)
	}
	if len(c.prior) > 0 {
		logf("coord: replayed lease state of %d unfinished campaigns", len(c.prior))
	}
	// The journal is append-only while running, so finished campaigns'
	// entries and superseded grants accumulate until the next open.
	// Distill the replayed state to one event per shard and rewrite, so
	// the journal stays bounded by live lease state, not history.
	if live := c.distillJournal(); len(live) < len(events) {
		if err := c.jlog.rewrite(live); err != nil {
			c.jlog.Close()
			return nil, fmt.Errorf("coord: compacting lease journal: %w", err)
		}
		logf("coord: compacted lease journal: %d events -> %d", len(events), len(live))
	}
	return c, nil
}

// distillJournal reduces the prior-campaign table to the minimal event
// list whose replay reproduces it — nothing at all for finished
// campaigns. A leased shard always has lease == grants (tokens bump
// only on grant), so a single grant event per shard restores worker,
// token and monotonicity; an expired shard keeps its token high-water
// mark through a grant with no worker, which replays as unleased.
func (c *Coordinator) distillJournal() []leaseEvent {
	ids := make([]string, 0, len(c.prior))
	for id := range c.prior {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	live := []leaseEvent{}
	for _, id := range ids {
		p := c.prior[id]
		for i := range p.shards {
			ps := p.shards[i]
			if ps.grants == 0 {
				continue
			}
			live = append(live, leaseEvent{C: id, Ev: evGrant, Shard: i, Worker: ps.worker, Lease: ps.grants})
		}
	}
	return live
}

// replay folds one journal event into the prior-campaign table.
func (c *Coordinator) replay(e leaseEvent) {
	if e.Ev == evFinish {
		delete(c.prior, e.C)
		return
	}
	if e.Shard < 0 || e.Shard >= dse.ShardN {
		return
	}
	p := c.prior[e.C]
	if p == nil {
		p = &priorCampaign{}
		c.prior[e.C] = p
	}
	ps := &p.shards[e.Shard]
	switch e.Ev {
	case evGrant:
		ps.worker, ps.lease = e.Worker, e.Lease
		if e.Lease > ps.grants {
			ps.grants = e.Lease
		}
	case evExpire:
		if ps.lease == e.Lease {
			ps.worker = ""
		}
	case evShardDone:
		ps.worker = ""
	}
}

// Close releases the lease journal.
func (c *Coordinator) Close() error { return c.jlog.Close() }

// RunCampaign distributes plan.Pending across the worker fleet and
// blocks until every evaluation has been folded into store, the fleet
// died (partial records + ErrDegraded), a fold hit dse.ErrConflict, or
// ctx ended. Records come back in plan.Pending order; simulated counts
// the evaluations the fleet actually ran (the rest were worker-local
// cache hits). id must be stable across restarts — the job ID — because
// it keys the journaled lease state a restarted coordinator adopts.
func (c *Coordinator) RunCampaign(ctx context.Context, id string, plan *dse.Plan, store dse.Store, progress func(done, total int)) ([]dse.Record, int, error) {
	if progress == nil {
		progress = func(int, int) {}
	}
	camp := &campaign{
		id:       id,
		params:   plan.Params,
		store:    store,
		total:    len(plan.Pending),
		progress: progress,
		done:     make(chan struct{}),
	}
	for i := range camp.shards {
		camp.shards[i].work = map[string]dse.Eval{}
	}
	for _, ev := range plan.Pending {
		si, err := dse.ShardIndex(ev.Key)
		if err != nil {
			return nil, 0, err
		}
		camp.shards[si].work[ev.Key] = ev
	}

	c.mu.Lock()
	if _, dup := c.active[id]; dup {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("coord: campaign %s already active", id)
	}
	now := time.Now()
	prior := c.prior[id]
	delete(c.prior, id)
	for i := range camp.shards {
		sh := &camp.shards[i]
		if len(sh.work) == 0 {
			// Empty shards (including ones a previous incarnation fully
			// folded — their records are cache hits by now) are done
			// without a journal entry.
			sh.phase = shardDone
			continue
		}
		if prior == nil {
			continue
		}
		ps := prior.shards[i]
		sh.grants = ps.grants // fencing tokens stay monotonic across restarts
		if ps.worker != "" {
			// The journaled lease survives the restart: its worker keeps
			// the shard undisturbed, renewing on its next heartbeat or
			// losing it to the fresh TTL like any other silence.
			sh.phase, sh.worker, sh.lease = shardLeased, ps.worker, ps.lease
			sh.expiry = now.Add(c.cfg.HeartbeatTTL)
		}
	}
	if camp.remainingLocked() == 0 {
		// Every evaluation was already folded (a prior incarnation did
		// the work but died before recording the finish). Retire the
		// journaled lease state, or its grants replay as live on every
		// future restart.
		if prior != nil {
			if err := c.jlog.record(leaseEvent{C: id, Ev: evFinish}); err != nil {
				c.logf("coord: lease journal: %v", err)
			}
		}
		c.mu.Unlock()
		return c.collect(camp, plan)
	}
	c.active[id] = camp
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		if c.active[id] == camp {
			delete(c.active, id)
		}
		if !camp.finished {
			// Park the lease state so a same-process resubmission (a
			// drained job requeued before shutdown completes, a canceled
			// job retried) adopts it instead of double-granting. A new
			// process gets the same state from the journal.
			p := &priorCampaign{}
			for i := range camp.shards {
				sh := &camp.shards[i]
				p.shards[i] = priorShard{grants: sh.grants}
				if sh.phase == shardLeased {
					p.shards[i].worker, p.shards[i].lease = sh.worker, sh.lease
				}
			}
			c.prior[id] = p
		}
		c.mu.Unlock()
	}()

	c.logf("coord: campaign %s: %d evaluations across %d shards", id, camp.total, camp.activeShards())

	tick := time.NewTicker(c.cfg.Tick)
	defer tick.Stop()
	var deadSince time.Time
	for {
		select {
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-camp.done:
			return c.collect(camp, plan)
		case <-tick.C:
		}
		c.mu.Lock()
		now := time.Now()
		c.superviseLocked(camp, now)
		switch {
		case camp.finished:
			// done channel fires on the next select pass
		case c.liveWorkersLocked(now) > 0:
			deadSince = time.Time{}
		case deadSince.IsZero():
			deadSince = now
		case now.Sub(deadSince) >= c.cfg.DeadFleetGrace:
			camp.err = fmt.Errorf("%w: no heartbeat for %v with %d evaluations outstanding",
				ErrDegraded, c.cfg.DeadFleetGrace, camp.remainingLocked())
			camp.completeLocked()
		}
		c.mu.Unlock()
	}
}

// activeShards counts shards with work (no lock: called once at start).
func (camp *campaign) activeShards() int {
	n := 0
	for i := range camp.shards {
		if len(camp.shards[i].work) > 0 {
			n++
		}
	}
	return n
}

// superviseLocked expires overdue leases and requeues their shards
// behind the reassignment backoff gate.
func (c *Coordinator) superviseLocked(camp *campaign, now time.Time) {
	if camp.finished {
		return
	}
	for i := range camp.shards {
		sh := &camp.shards[i]
		if sh.phase != shardLeased || now.Before(sh.expiry) {
			continue
		}
		c.logf("coord: campaign %s shard %x: lease %d to %s expired; requeueing %d evaluations",
			camp.id, i, sh.lease, sh.worker, len(sh.work))
		if err := c.jlog.record(leaseEvent{C: camp.id, Ev: evExpire, Shard: i, Worker: sh.worker, Lease: sh.lease}); err != nil {
			c.logf("coord: lease journal: %v", err)
		}
		sh.phase, sh.worker = shardPending, ""
		sh.availableAt = now.Add(c.cfg.Reassign.DelayFor(fmt.Sprintf("%s/%x", camp.id, i), sh.grants))
	}
}

func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastBeat) < c.cfg.HeartbeatTTL {
			n++
		}
	}
	return n
}

// collect assembles the campaign result from the store, in plan.Pending
// order. Missing records are only possible on a degraded (or poisoned)
// campaign, where partial results ride alongside the error.
func (c *Coordinator) collect(camp *campaign, plan *dse.Plan) ([]dse.Record, int, error) {
	c.mu.Lock()
	simulated, err := camp.simulated, camp.err
	c.mu.Unlock()
	var recs []dse.Record
	missing := 0
	for _, ev := range plan.Pending {
		if rec, ok := camp.store.Lookup(ev.Key); ok {
			recs = append(recs, rec)
		} else {
			missing++
		}
	}
	if err == nil && missing > 0 {
		err = fmt.Errorf("coord: campaign %s completed with %d records missing from the store", camp.id, missing)
	}
	return recs, simulated, err
}

// heartbeat registers/renews worker and returns the leases it renewed
// plus fresh grants up to capacity total. Renewal is echo-driven: only
// leases the worker lists as held are extended, so a shard the worker
// abandoned (evaluation error, key mismatch, delta give-up) stops being
// renewed the moment the worker drops it and expires by TTL — a healthy
// heartbeat alone cannot pin an abandoned shard forever. A just-granted
// lease the worker has not echoed yet keeps its grant-time expiry; the
// next beat, well inside the TTL, picks it up.
func (c *Coordinator) heartbeat(worker string, capacity int, held []Assignment) []Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	ws := c.workers[worker]
	if ws == nil {
		ws = &workerState{}
		c.workers[worker] = ws
		c.logf("coord: worker %s joined", worker)
	}
	ws.lastBeat = now

	heldSet := make(map[Assignment]bool, len(held))
	for _, a := range held {
		heldSet[a] = true
	}

	ids := make([]string, 0, len(c.active))
	for id := range c.active {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var out []Assignment
	leases := 0 // every lease the worker holds counts against capacity, echoed or not
	for _, id := range ids {
		camp := c.active[id]
		for i := range camp.shards {
			sh := &camp.shards[i]
			if sh.phase != shardLeased || sh.worker != worker {
				continue
			}
			leases++
			if heldSet[Assignment{Campaign: id, Shard: i, Lease: sh.lease}] {
				sh.expiry = now.Add(c.cfg.HeartbeatTTL)
				out = append(out, Assignment{Campaign: id, Shard: i, Lease: sh.lease})
			}
		}
	}
	for _, id := range ids {
		camp := c.active[id]
		for i := range camp.shards {
			if leases >= capacity {
				return out
			}
			sh := &camp.shards[i]
			if sh.phase != shardPending || len(sh.work) == 0 || now.Before(sh.availableAt) {
				continue
			}
			sh.grants++
			lease := sh.grants
			if err := c.jlog.record(leaseEvent{C: id, Ev: evGrant, Shard: i, Worker: worker, Lease: lease}); err != nil {
				// An unjournaled lease would vanish on restart while the
				// worker believes it holds the shard; don't grant it.
				c.logf("coord: lease journal: %v", err)
				sh.grants--
				continue
			}
			sh.phase, sh.worker, sh.lease = shardLeased, worker, lease
			sh.expiry = now.Add(c.cfg.HeartbeatTTL)
			leases++
			out = append(out, Assignment{Campaign: id, Shard: i, Lease: lease})
			c.logf("coord: campaign %s shard %x: leased to %s (lease %d, %d evaluations)",
				id, i, worker, lease, len(sh.work))
		}
	}
	return out
}

// work returns the remaining evaluations of a leased shard, or revoked
// if the lease (or the campaign) is gone — the worker drops the shard
// and waits for its next assignment.
func (c *Coordinator) work(worker, campaignID string, shard, lease int) (dse.Params, []WorkItem, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	camp := c.active[campaignID]
	if camp == nil || shard < 0 || shard >= dse.ShardN {
		return dse.Params{}, nil, true
	}
	sh := &camp.shards[shard]
	if sh.phase != shardLeased || sh.worker != worker || sh.lease != lease {
		return dse.Params{}, nil, true
	}
	keys := make([]string, 0, len(sh.work))
	for k := range sh.work {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	items := make([]WorkItem, 0, len(keys))
	for _, k := range keys {
		ev := sh.work[k]
		items = append(items, WorkItem{Key: ev.Key, Cert: ev.Cert, Candidate: ev.Candidate})
	}
	return camp.params, items, false
}

// fold merges a worker's delta batch into the campaign store. Folding is
// deliberately lease-agnostic on the data path: records are accepted even
// under a stale lease (they are content-addressed and idempotent — work
// already done should never be thrown away), but the response flags the
// revocation so the worker abandons the shard. A content conflict poisons
// the campaign with dse.ErrConflict; retrying cannot fix data.
func (c *Coordinator) fold(worker, campaignID string, shard, lease int, deltas []DeltaRecord) (added int, revoked bool, err error) {
	c.mu.Lock()
	camp := c.active[campaignID]
	if camp == nil || shard < 0 || shard >= dse.ShardN || camp.finished {
		// The campaign is gone (finished, drained, or a different
		// incarnation): any record it needed from this batch was already
		// folded, or its lease state will re-demand the work.
		c.mu.Unlock()
		return 0, true, nil
	}
	sh := &camp.shards[shard]
	stale := sh.phase != shardLeased || sh.worker != worker || sh.lease != lease
	c.mu.Unlock()

	// Stage and validate without any lock; then merge under the
	// campaign's fold mutex only, so per-record store I/O never delays
	// heartbeat or work handling toward the lease TTL. foldMu keeps the
	// lookup-before-merge window atomic per campaign, which is what
	// makes the fresh-simulation ledger exact under redelivery.
	batch, err := dse.OpenCache("")
	if err != nil {
		return 0, false, err
	}
	for _, d := range deltas {
		si, serr := dse.ShardIndex(d.Record.Key)
		if serr != nil || si != shard {
			return 0, false, fmt.Errorf("coord: delta record %.12s does not belong to shard %x", d.Record.Key, shard)
		}
		if perr := batch.Put(d.Record); perr != nil {
			return 0, false, perr
		}
	}
	camp.foldMu.Lock()
	var freshSim int
	for _, d := range deltas {
		if _, dup := camp.store.Lookup(d.Record.Key); !dup && d.Simulated {
			freshSim++
		}
	}
	added, err = dse.Merge(camp.store, batch)
	camp.foldMu.Unlock()

	c.mu.Lock()
	if err != nil {
		// dse.ErrConflict: two records at one content address. The
		// determinism contract is broken somewhere in the fleet; fail the
		// campaign typed rather than ship a frontier built on lies.
		camp.err = err
		camp.completeLocked()
		c.mu.Unlock()
		return added, false, err
	}
	if camp.finished {
		// Degraded or poisoned while we merged: the records are safely
		// in the store for a future incarnation to count as hits.
		c.mu.Unlock()
		return added, true, nil
	}
	for _, d := range deltas {
		delete(sh.work, d.Record.Key)
	}
	camp.simulated += freshSim
	ws := c.workers[worker]
	if ws == nil {
		ws = &workerState{}
		c.workers[worker] = ws
	}
	ws.records += added
	ws.simulated += freshSim
	if len(sh.work) == 0 && sh.phase != shardDone {
		if jerr := c.jlog.record(leaseEvent{C: campaignID, Ev: evShardDone, Shard: shard, Worker: worker, Lease: lease}); jerr != nil {
			c.logf("coord: lease journal: %v", jerr)
		}
		sh.phase, sh.worker = shardDone, ""
		c.logf("coord: campaign %s shard %x: complete", campaignID, shard)
	}
	if camp.remainingLocked() == 0 {
		if jerr := c.jlog.record(leaseEvent{C: campaignID, Ev: evFinish}); jerr != nil {
			c.logf("coord: lease journal: %v", jerr)
		}
		camp.completeLocked()
	}
	done, total, progress := camp.total-camp.remainingLocked(), camp.total, camp.progress
	c.mu.Unlock()
	progress(done, total)
	return added, stale, nil
}
