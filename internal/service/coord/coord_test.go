package coord

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"chipletnet/internal/dse"
	"chipletnet/internal/service/backoff"
)

// testSpace is a quick six-candidate exploration (2 NoC sizes × 3
// interleavings of a four-chiplet mesh).
func testSpace() (dse.Space, dse.Params) {
	p := dse.DefaultParams()
	p.WarmupCycles = 100
	p.MeasureCycles = 400
	p.Rates = []float64{0.1, 0.4}
	s := dse.Space{
		Chiplets:      4,
		NoCs:          [][2]int{{3, 3}, {4, 4}},
		Topologies:    []string{"mesh"},
		Routings:      []string{dse.RoutingMFR},
		Interleavings: []string{"none", "message", "packet"},
	}
	return s, p
}

func openCoord(t *testing.T, dir string, cfg Config) *Coordinator {
	t.Helper()
	cfg.Dir = dir
	cfg.Logf = t.Logf
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func memStore(t *testing.T) dse.Store {
	t.Helper()
	s, err := dse.OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustPlan(t *testing.T, store dse.Store) *dse.Plan {
	t.Helper()
	space, params := testSpace()
	plan, err := dse.NewPlan(space, params, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pending) == 0 {
		t.Fatal("test space produced no pending evaluations")
	}
	return plan
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// startCampaign runs RunCampaign in the background, returning a channel
// that delivers its outcome.
type campaignResult struct {
	recs      []dse.Record
	simulated int
	err       error
}

func startCampaign(t *testing.T, ctx context.Context, c *Coordinator, id string, plan *dse.Plan, store dse.Store) <-chan campaignResult {
	t.Helper()
	ch := make(chan campaignResult, 1)
	go func() {
		recs, sim, err := c.RunCampaign(ctx, id, plan, store, nil)
		ch <- campaignResult{recs, sim, err}
	}()
	return ch
}

// pollAssignments heartbeats as worker (with the given lease capacity)
// until it is granted at least one lease.
func pollAssignments(t *testing.T, c *Coordinator, worker string, capacity int) []Assignment {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if as := c.heartbeat(worker, capacity, nil); len(as) > 0 {
			return as
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("worker %s never received an assignment", worker)
	return nil
}

// evalItem evaluates one work item the way a worker would.
func evalItem(t *testing.T, item WorkItem, params dse.Params) dse.Record {
	t.Helper()
	ev := dse.Eval{Candidate: item.Candidate, Params: params, Key: item.Key, Cert: item.Cert}
	rec, err := ev.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// drainAs evaluates and folds every shard offered to worker until the
// result channel fires, driving the protocol directly (no HTTP).
func drainAs(t *testing.T, c *Coordinator, worker string, res <-chan campaignResult) campaignResult {
	t.Helper()
	deadline := time.NewTimer(2 * time.Minute)
	defer deadline.Stop()
	for {
		select {
		case r := <-res:
			return r
		case <-deadline.C:
			t.Fatal("campaign did not complete")
		default:
		}
		for _, a := range c.heartbeat(worker, 16, nil) {
			params, items, revoked := c.work(worker, a.Campaign, a.Shard, a.Lease)
			if revoked {
				continue
			}
			for _, item := range items {
				rec := evalItem(t, item, params)
				if _, _, err := c.fold(worker, a.Campaign, a.Shard, a.Lease, []DeltaRecord{{Record: rec, Simulated: true}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCampaignMatchesSingleMachine runs a real two-worker fleet over
// HTTP and demands the distributed frontier be byte-identical to the
// sequential single-machine exploration — the determinism contract the
// whole coordinator design rests on.
func TestCampaignMatchesSingleMachine(t *testing.T) {
	space, params := testSpace()
	ref, err := dse.Explore(space, params, memStore(t))
	if err != nil {
		t.Fatal(err)
	}

	c := openCoord(t, t.TempDir(), Config{HeartbeatTTL: 2 * time.Second, Tick: 10 * time.Millisecond})
	mux := http.NewServeMux()
	c.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range []string{"worker-a", "worker-b"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			RunWorker(ctx, WorkerConfig{ID: id, Join: srv.URL, Heartbeat: 25 * time.Millisecond, Logf: t.Logf})
		}(id)
	}

	store := memStore(t)
	plan := mustPlan(t, store)
	var mu sync.Mutex
	lastDone := -1
	recs, simulated, err := c.RunCampaign(ctx, "job-1", plan, store, func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done < lastDone || total != len(plan.Pending) {
			t.Errorf("progress regressed: done %d after %d (total %d)", done, lastDone, total)
		}
		lastDone = done
	})
	cancel()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(plan.Pending) {
		t.Fatalf("campaign returned %d records for %d pending", len(recs), len(plan.Pending))
	}
	if simulated != len(plan.Pending) {
		t.Errorf("simulated = %d, want %d (fresh workers, no cache hits)", simulated, len(plan.Pending))
	}
	outcome, err := dse.Collect(plan, append(append([]dse.Record(nil), plan.Hits...), recs...))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, outcome.Frontier), mustJSON(t, ref.Frontier); got != want {
		t.Errorf("distributed frontier differs from single-machine run:\n got %s\nwant %s", got, want)
	}
}

// TestLeaseExpiryFencesAndReassigns kills worker a's heartbeat, waits
// for its lease to expire, and verifies the shard moves to worker b
// under a higher fencing token while a's stale requests are revoked —
// but a's stale *data* still folds (idempotent delivery).
func TestLeaseExpiryFencesAndReassigns(t *testing.T) {
	c := openCoord(t, t.TempDir(), Config{
		HeartbeatTTL: 120 * time.Millisecond,
		Tick:         10 * time.Millisecond,
		Reassign:     backoff.Policy{Base: time.Millisecond},
	})
	store := memStore(t)
	plan := mustPlan(t, store)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := startCampaign(t, ctx, c, "job-exp", plan, store)

	a0 := pollAssignments(t, c, "a", 16)[0]
	params, items, revoked := c.work("a", a0.Campaign, a0.Shard, a0.Lease)
	if revoked || len(items) == 0 {
		t.Fatalf("live lease revoked (revoked=%v, %d items)", revoked, len(items))
	}

	// a goes silent; b inherits the shard under a fresh token.
	var b0 Assignment
	deadline := time.Now().Add(5 * time.Second)
	for b0.Campaign == "" && time.Now().Before(deadline) {
		for _, a := range c.heartbeat("b", 16, nil) {
			if a.Shard == a0.Shard {
				b0 = a
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if b0.Campaign == "" {
		t.Fatal("expired shard was never reassigned to b")
	}
	if b0.Lease <= a0.Lease {
		t.Errorf("reassigned lease %d not newer than expired lease %d", b0.Lease, a0.Lease)
	}
	if _, _, revoked := c.work("a", a0.Campaign, a0.Shard, a0.Lease); !revoked {
		t.Error("stale lease still serves work")
	}

	// a finished one evaluation before noticing: the data is accepted,
	// the response says the lease is gone.
	rec := evalItem(t, items[0], params)
	added, revoked, err := c.fold("a", a0.Campaign, a0.Shard, a0.Lease, []DeltaRecord{{Record: rec, Simulated: true}})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || !revoked {
		t.Errorf("stale fold: added=%d revoked=%v, want 1/true", added, revoked)
	}

	r := drainAs(t, c, "b", res)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.recs) != len(plan.Pending) {
		t.Errorf("campaign returned %d records for %d pending", len(r.recs), len(plan.Pending))
	}
}

// TestRestartReplaysLeases crashes the coordinator (new Coordinator,
// same directory) mid-campaign and verifies the journaled lease comes
// back verbatim: same worker, same shard, same fencing token. The
// worker survived the crash, so its heartbeats echo the lease it still
// holds — which is exactly what keeps it renewed across the restart.
func TestRestartReplaysLeases(t *testing.T) {
	dir := t.TempDir()
	c1 := openCoord(t, dir, Config{HeartbeatTTL: 10 * time.Second, Tick: 10 * time.Millisecond})
	store := memStore(t)
	plan := mustPlan(t, store)
	ctx1, cancel1 := context.WithCancel(context.Background())
	res1 := startCampaign(t, ctx1, c1, "job-replay", plan, store)
	a0 := pollAssignments(t, c1, "a", 1)[0] // capacity 1: exactly one lease to replay
	cancel1()                               // "crash": the campaign aborts, the journal survives
	if r := <-res1; !errors.Is(r.err, context.Canceled) {
		t.Fatalf("aborted campaign returned %v, want context.Canceled", r.err)
	}
	c1.Close()

	c2 := openCoord(t, dir, Config{HeartbeatTTL: 10 * time.Second, Tick: 10 * time.Millisecond})
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	res2 := startCampaign(t, ctx2, c2, "job-replay", plan, store)
	found := false
	deadline := time.Now().Add(5 * time.Second)
	for !found && time.Now().Before(deadline) {
		for _, a := range c2.heartbeat("a", 1, []Assignment{a0}) {
			if a == a0 {
				found = true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !found {
		t.Fatalf("restart did not restore lease %+v", a0)
	}
	// Drain the restored shard under its replayed token, then the rest.
	params, items, revoked := c2.work("a", a0.Campaign, a0.Shard, a0.Lease)
	if revoked {
		t.Fatal("restored lease revoked")
	}
	for _, item := range items {
		rec := evalItem(t, item, params)
		if _, _, err := c2.fold("a", a0.Campaign, a0.Shard, a0.Lease, []DeltaRecord{{Record: rec, Simulated: true}}); err != nil {
			t.Fatal(err)
		}
	}
	if r := drainAs(t, c2, "a", res2); r.err != nil {
		t.Fatal(r.err)
	}
}

// TestAbandonedLeaseExpiresDespiteHeartbeats is the regression test for
// echo-driven renewal: a worker that abandoned its shard (it keeps
// beating — it is perfectly healthy — but no longer echoes the lease)
// must not keep the lease alive. The TTL expires it and the shard moves
// to a survivor instead of blocking the campaign forever behind a
// healthy heartbeat.
func TestAbandonedLeaseExpiresDespiteHeartbeats(t *testing.T) {
	c := openCoord(t, t.TempDir(), Config{
		HeartbeatTTL: 120 * time.Millisecond,
		Tick:         10 * time.Millisecond,
		Reassign:     backoff.Policy{Base: time.Millisecond},
	})
	store := memStore(t)
	plan := mustPlan(t, store)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := startCampaign(t, ctx, c, "job-abandon", plan, store)

	a0 := pollAssignments(t, c, "a", 16)[0]
	// a beats on, echoing nothing — what a live worker looks like after
	// abandoning its shards on an evaluation error. Capacity 0 keeps it
	// from being granted replacements.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				c.heartbeat("a", 0, nil)
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	// The shard must be re-granted under a higher token even though its
	// holder never went silent.
	regranted := false
	deadline := time.Now().Add(5 * time.Second)
	for !regranted && time.Now().Before(deadline) {
		for _, a := range c.heartbeat("b", 16, nil) {
			if a.Shard == a0.Shard && a.Lease > a0.Lease {
				regranted = true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !regranted {
		t.Fatal("abandoned shard was never reassigned while its worker kept heartbeating")
	}
	if r := drainAs(t, c, "b", res); r.err != nil {
		t.Fatal(r.err)
	}
}

// TestDeadFleetDegrades submits a campaign to a coordinator nobody
// joined and demands a typed partial result, not a hang.
func TestDeadFleetDegrades(t *testing.T) {
	c := openCoord(t, t.TempDir(), Config{
		HeartbeatTTL:   50 * time.Millisecond,
		DeadFleetGrace: 150 * time.Millisecond,
		Tick:           10 * time.Millisecond,
	})
	store := memStore(t)
	plan := mustPlan(t, store)
	recs, _, err := c.RunCampaign(context.Background(), "job-dead", plan, store, nil)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("dead-fleet campaign returned %v, want ErrDegraded", err)
	}
	if len(recs) != 0 {
		t.Errorf("no worker ever ran, yet %d records came back", len(recs))
	}
}

// TestFoldConflictPoisonsCampaign folds two divergent records under one
// content address and demands a typed dse.ErrConflict failure.
func TestFoldConflictPoisonsCampaign(t *testing.T) {
	c := openCoord(t, t.TempDir(), Config{HeartbeatTTL: 10 * time.Second, Tick: 10 * time.Millisecond})
	store := memStore(t)
	plan := mustPlan(t, store)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := startCampaign(t, ctx, c, "job-conflict", plan, store)

	a0 := pollAssignments(t, c, "a", 16)[0]
	params, items, _ := c.work("a", a0.Campaign, a0.Shard, a0.Lease)
	rec := evalItem(t, items[0], params)
	if _, _, err := c.fold("a", a0.Campaign, a0.Shard, a0.Lease, []DeltaRecord{{Record: rec, Simulated: true}}); err != nil {
		t.Fatal(err)
	}
	lie := rec
	lie.ZeroLoadLatency++ // same address, different content
	_, _, err := c.fold("a", a0.Campaign, a0.Shard, a0.Lease, []DeltaRecord{{Record: lie, Simulated: true}})
	if !errors.Is(err, dse.ErrConflict) {
		t.Fatalf("divergent fold returned %v, want dse.ErrConflict", err)
	}
	r := <-res
	if !errors.Is(r.err, dse.ErrConflict) {
		t.Fatalf("poisoned campaign returned %v, want dse.ErrConflict", r.err)
	}
}

// TestWorkerAbandonsOnKeyMismatch covers the worker-side integrity
// check: a coordinator shipping a key the worker cannot re-derive must
// not get a record persisted under it.
func TestWorkerAbandonsOnKeyMismatch(t *testing.T) {
	_, params := testSpace()
	plan := mustPlanFromStore(t)
	item := WorkItem{Key: strings.Repeat("0", 64), Candidate: plan.Pending[0].Candidate}
	served := workResponse{Params: params, Items: []WorkItem{item}}

	var folded int
	mux := http.NewServeMux()
	mux.HandleFunc("POST /coord/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		reply(w, heartbeatResponse{TTLMS: 1000, Assignments: []Assignment{{Campaign: "j", Shard: 0, Lease: 1}}})
	})
	mux.HandleFunc("POST /coord/work", func(w http.ResponseWriter, r *http.Request) {
		reply(w, served)
	})
	mux.HandleFunc("POST /coord/delta", func(w http.ResponseWriter, r *http.Request) {
		folded++
		reply(w, deltaResponse{})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cache := memStore(t)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	RunWorker(ctx, WorkerConfig{ID: "w", Join: srv.URL, Cache: cache, Heartbeat: 20 * time.Millisecond, Logf: t.Logf})
	if folded != 0 {
		t.Errorf("worker folded %d records under a key it could not re-derive", folded)
	}
	if cache.Len() != 0 {
		t.Errorf("worker cached %d records under a bogus key", cache.Len())
	}
}

func mustPlanFromStore(t *testing.T) *dse.Plan {
	t.Helper()
	return mustPlan(t, memStore(t))
}

// journalLines counts the non-empty lines of the lease journal.
func journalLines(t *testing.T, dir string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "coord.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// TestJournalCompaction finishes a campaign (leaving grant/shard-done/
// finish entries behind) and reopens the directory: replay must drop the
// finished campaign and compaction must rewrite the journal down to its
// live lease state — here, nothing — so coord.jsonl does not grow
// without bound across campaigns.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	c1 := openCoord(t, dir, Config{HeartbeatTTL: 10 * time.Second, Tick: 10 * time.Millisecond})
	store := memStore(t)
	plan := mustPlan(t, store)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := startCampaign(t, ctx, c1, "job-compact", plan, store)
	if r := drainAs(t, c1, "a", res); r.err != nil {
		t.Fatal(r.err)
	}
	if journalLines(t, dir) == 0 {
		t.Fatal("finished campaign left no journal entries to compact")
	}
	c1.Close()

	c2 := openCoord(t, dir, Config{})
	if n := len(c2.prior); n != 0 {
		t.Errorf("replayed %d campaigns from a fully-finished journal", n)
	}
	if n := journalLines(t, dir); n != 0 {
		t.Errorf("journal has %d lines after compaction, want 0", n)
	}
}

// TestEarlyFinishRetiresJournal crashes a campaign with a lease
// outstanding, completes every evaluation out of band (the store has all
// the records), and resubmits: RunCampaign's nothing-left early return
// must journal the finish, so the next incarnation replays no stale
// lease state for the campaign.
func TestEarlyFinishRetiresJournal(t *testing.T) {
	dir := t.TempDir()
	store := memStore(t)
	plan := mustPlan(t, store)

	c1 := openCoord(t, dir, Config{HeartbeatTTL: 10 * time.Second, Tick: 10 * time.Millisecond})
	ctx1, cancel1 := context.WithCancel(context.Background())
	res1 := startCampaign(t, ctx1, c1, "job-early", plan, store)
	pollAssignments(t, c1, "a", 1)
	cancel1()
	<-res1
	c1.Close()

	// Every evaluation lands in the store between incarnations.
	for _, ev := range plan.Pending {
		rec, err := ev.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
	}

	c2 := openCoord(t, dir, Config{HeartbeatTTL: 10 * time.Second, Tick: 10 * time.Millisecond})
	if len(c2.prior) == 0 {
		t.Fatal("no lease state replayed; the crash half of this test did not happen")
	}
	// The restarted service re-plans against the shared store, so every
	// evaluation resurfaces as a hit and the campaign has nothing left.
	space, params := testSpace()
	replan, err := dse.NewPlan(space, params, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(replan.Pending) != 0 {
		t.Fatalf("replan still has %d pending evaluations", len(replan.Pending))
	}
	recs, simulated, err := c2.RunCampaign(context.Background(), "job-early", replan, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if simulated != 0 || len(recs) != 0 {
		t.Errorf("nothing-left campaign returned %d records, %d simulated", len(recs), simulated)
	}
	c2.Close()

	c3 := openCoord(t, dir, Config{})
	if n := len(c3.prior); n != 0 {
		t.Errorf("early-finished campaign still replays %d campaigns of lease state", n)
	}
	if n := journalLines(t, dir); n != 0 {
		t.Errorf("journal has %d lines after compaction, want 0", n)
	}
}
