package coord

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteMetrics appends the coordinator's health counters to w in the
// plaintext exposition format chipletd's /metrics serves: one
// `name{labels} value` line per counter, labels and names sorted, so
// operators and tests scrape one stable view of fleet state.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()

	fmt.Fprintf(w, "coord_campaigns_active %d\n", len(c.active))

	ids := make([]string, 0, len(c.active))
	for id := range c.active {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		camp := c.active[id]
		var counts [3]int
		for i := range camp.shards {
			counts[camp.shards[i].phase]++
		}
		for phase, name := range []string{"pending", "leased", "done"} {
			fmt.Fprintf(w, "coord_campaign_shards{campaign=%q,state=%q} %d\n", id, name, counts[phase])
		}
		fmt.Fprintf(w, "coord_campaign_remaining{campaign=%q} %d\n", id, camp.remainingLocked())
	}

	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := c.workers[name]
		leases := 0
		for _, id := range ids {
			camp := c.active[id]
			for i := range camp.shards {
				if sh := &camp.shards[i]; sh.phase == shardLeased && sh.worker == name {
					leases++
				}
			}
		}
		fmt.Fprintf(w, "coord_worker_heartbeat_age_ms{worker=%q} %d\n", name, now.Sub(ws.lastBeat).Milliseconds())
		fmt.Fprintf(w, "coord_worker_leases{worker=%q} %d\n", name, leases)
		fmt.Fprintf(w, "coord_worker_records_total{worker=%q} %d\n", name, ws.records)
		fmt.Fprintf(w, "coord_worker_simulated_total{worker=%q} %d\n", name, ws.simulated)
	}
}
