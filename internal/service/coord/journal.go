package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"chipletnet/internal/jsonl"
)

// Lease journal event names. Only lease state is journaled — the work
// itself is reconstructible: a restarted coordinator re-plans the
// campaign against the shared store, and every already-folded record
// resurfaces as a cache hit. The journal's job is to keep granted leases
// valid across the restart and fencing tokens monotonic.
const (
	evGrant     = "grant"      // a shard was leased; carries worker + lease token
	evExpire    = "expire"     // the lease timed out; the shard is pool-bound again
	evShardDone = "shard-done" // every evaluation of the shard is folded
	evFinish    = "finish"     // the campaign completed; its entries are dead
)

// leaseEvent is one line of the lease journal.
type leaseEvent struct {
	C      string // campaign ID (the job ID)
	Ev     string
	Shard  int    `json:",omitempty"`
	Worker string `json:",omitempty"`
	Lease  int    `json:",omitempty"`
}

// leaseLog is the fsynced append-only lease journal — the jobs.jsonl
// discipline applied to lease transitions (see internal/jsonl for the
// shared damage model: torn tails dropped, corrupt lines quarantined).
type leaseLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// openLeaseLog opens (creating if needed) the journal at path and
// returns the replayable events plus the count of quarantined lines.
func openLeaseLog(path string) (*leaseLog, []leaseEvent, int, error) {
	var events []leaseEvent
	quarantined, err := jsonl.Load(path, func(line []byte) error {
		var e leaseEvent
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		if e.C == "" || e.Ev == "" {
			return errors.New("coord: journal line without campaign/event")
		}
		events = append(events, e)
		return nil
	})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("coord: lease journal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	return &leaseLog{path: path, f: f}, events, quarantined, nil
}

// rewrite atomically replaces the journal with events — the compaction
// path: the temp-file/sync/rename discipline of internal/jsonl repair,
// plus reopening the append handle on the new file. A crash mid-rewrite
// leaves either the old journal (compacted again next open) or the new
// one, never a half-written mix.
func (l *leaseLog) rewrite(events []leaseEvent) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp, err := os.CreateTemp(filepath.Dir(l.path), filepath.Base(l.path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	for _, e := range events {
		line, err := json.Marshal(e)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f.Close()
	l.f = f
	return nil
}

// record appends one event and syncs it to disk before returning, so a
// lease a worker was told about cannot be lost by a coordinator crash.
func (l *leaseLog) record(e leaseEvent) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close closes the underlying file.
func (l *leaseLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
