package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"chipletnet/internal/dse"
	"chipletnet/internal/service/backoff"
)

// maxPostAttempts bounds how long a worker hammers an unreachable
// coordinator per request before abandoning the shard: the lease TTL
// reassigns the work anyway, so there is no point outliving it.
const maxPostAttempts = 8

// WorkerConfig tunes one worker's membership in a coordinator fleet.
type WorkerConfig struct {
	// ID names the worker in heartbeats, leases and metrics. It must be
	// stable for the process lifetime and unique in the fleet; chipletd
	// defaults to hostname/listen-address and takes -worker-id overrides.
	ID string
	// Join is the coordinator's base URL (http://host:port).
	Join string
	// Cache is the worker-local evaluation store: hits are shipped back
	// without re-simulation, fresh records are persisted locally before
	// they are reported, so a crash loses no finished work. nil means a
	// memory-only cache.
	Cache dse.Store
	// Heartbeat is the beat interval (default 1s; keep it well inside
	// the coordinator's TTL).
	Heartbeat time.Duration
	// Backoff paces request retries; the zero value means 200ms base, 5s
	// cap, 0.5 jitter keyed by worker ID — a fleet retrying one flapped
	// coordinator spreads out instead of stampeding.
	Backoff backoff.Policy
	// MaxLeases bounds the shards held at once (default 2: one being
	// evaluated, one queued) so a single worker never hoards a campaign.
	MaxLeases int
	// BatchSize is how many records ride per delta flush (default 1 —
	// the smallest possible unreported tail).
	BatchSize int
	// Client is the HTTP client (default: 30s timeout).
	Client *http.Client
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// worker is the running state behind RunWorker.
type worker struct {
	cfg WorkerConfig

	mu sync.Mutex
	// held tracks the assignments this worker is actually working on,
	// from the moment one is queued until runShard returns. Heartbeats
	// echo it, and the coordinator renews exactly the echoed leases: a
	// shard runShard abandoned (evaluation error, revocation, key
	// mismatch) drops out of the set, its lease quietly expires, and
	// the remainder moves to a healthier worker instead of being
	// renewed forever behind an otherwise-healthy heartbeat.
	held map[string]Assignment
}

// key is the worker-side identity of an assignment: leases are fenced
// by token, so a re-grant after expiry is a different key.
func (a Assignment) key() string { return fmt.Sprintf("%s/%d/%d", a.Campaign, a.Shard, a.Lease) }

func (w *worker) hold(a Assignment) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.held[a.key()] = a
}

func (w *worker) drop(a Assignment) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.held, a.key())
}

func (w *worker) heldSnapshot() []Assignment {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Assignment, 0, len(w.held))
	for _, a := range w.held {
		out = append(out, a)
	}
	return out
}

// RunWorker joins the coordinator at cfg.Join and evaluates leased
// shards until ctx ends, which is the only way it returns. Heartbeats
// run concurrently with evaluation so a long simulation cannot cost the
// worker its leases.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.ID == "" {
		return errors.New("coord: WorkerConfig.ID is required")
	}
	if cfg.Join == "" {
		return errors.New("coord: WorkerConfig.Join is required")
	}
	if cfg.Cache == nil {
		mem, err := dse.OpenCache("")
		if err != nil {
			return err
		}
		cfg.Cache = mem
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.Backoff == (backoff.Policy{}) {
		cfg.Backoff = backoff.Policy{Base: 200 * time.Millisecond, Cap: 5 * time.Second, Jitter: 0.5}
	}
	if cfg.MaxLeases <= 0 {
		cfg.MaxLeases = 2
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	w := &worker{cfg: cfg, held: map[string]Assignment{}}

	assignments := make(chan Assignment, 4*cfg.MaxLeases)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(ctx, assignments)
	}()
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return ctx.Err()
		case a := <-assignments:
			w.runShard(ctx, a)
		}
	}
}

// heartbeatLoop beats immediately and then on every tick, enqueueing
// assignments it has not seen. Leases are fenced by token, so the seen
// set keys on the full triple: a re-grant after expiry carries a fresh
// token and is picked up as new work.
func (w *worker) heartbeatLoop(ctx context.Context, out chan<- Assignment) {
	seen := map[string]bool{}
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		var resp heartbeatResponse
		err := w.post(ctx, "heartbeat", heartbeatRequest{Worker: w.cfg.ID, Capacity: w.cfg.MaxLeases, Held: w.heldSnapshot()}, &resp)
		if err != nil {
			if ctx.Err() == nil {
				w.cfg.Logf("worker %s: heartbeat: %v", w.cfg.ID, err)
			}
			// The ticker paces the retry; missing beats only risks the
			// leases the TTL was designed to reclaim.
		} else {
			offered := make(map[string]bool, len(resp.Assignments))
			for _, a := range resp.Assignments {
				k := a.key()
				offered[k] = true
				if seen[k] {
					continue
				}
				select {
				case out <- a:
					// Held from the moment it is queued: the echo keeps
					// the lease alive until runShard settles it.
					w.hold(a)
					seen[k] = true
				default:
					// Queue full: leave it unseen so the next beat
					// re-offers it.
				}
			}
			// A token absent from the response is settled — done,
			// expired, or abandoned — and can never be re-offered
			// (re-grants carry a fresh token), so its seen entry is
			// garbage. Pruning keeps a long-lived worker bounded.
			for k := range seen {
				if !offered[k] {
					delete(seen, k)
				}
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// runShard drains one leased shard: fetch the remaining evaluations,
// serve each from the local cache or simulate it, and stream delta
// batches back. Any terminal trouble — revocation, a conflict, an
// evaluation failure — abandons the shard and lets the lease TTL hand
// the remainder to a healthier worker.
func (w *worker) runShard(ctx context.Context, a Assignment) {
	// Settled either way: stop echoing the lease, so an abandoned shard
	// expires by TTL instead of staying leased to this worker forever.
	defer w.drop(a)
	req := workRequest{Worker: w.cfg.ID, Campaign: a.Campaign, Shard: a.Shard, Lease: a.Lease}
	var work workResponse
	if !w.postRetry(ctx, "work", req, &work) || work.Revoked {
		return
	}
	batch := make([]DeltaRecord, 0, w.cfg.BatchSize)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		var resp deltaResponse
		ok := w.postRetry(ctx, "delta", deltaRequest{
			Worker:   w.cfg.ID,
			Campaign: a.Campaign,
			Shard:    a.Shard,
			Lease:    a.Lease,
			Records:  batch,
		}, &resp)
		batch = batch[:0]
		return ok && !resp.Revoked
	}
	for _, item := range work.Items {
		if ctx.Err() != nil {
			return
		}
		// Re-derive the content address before trusting it: a worker must
		// never persist under a key it cannot reproduce, or one corrupted
		// message poisons the shared cache behind a valid-looking address.
		if dse.Key(item.Candidate.Cfg, work.Params) != item.Key {
			w.cfg.Logf("worker %s: campaign %s shard %x: key mismatch for %s; abandoning shard",
				w.cfg.ID, a.Campaign, a.Shard, item.Candidate.Name)
			return
		}
		rec, hit := w.cfg.Cache.Lookup(item.Key)
		if !hit {
			ev := dse.Eval{Candidate: item.Candidate, Params: work.Params, Key: item.Key, Cert: item.Cert}
			var err error
			rec, err = ev.RunCtx(ctx)
			if err != nil {
				if ctx.Err() == nil {
					w.cfg.Logf("worker %s: evaluating %s: %v; abandoning shard", w.cfg.ID, item.Candidate.Name, err)
				}
				return
			}
			if err := w.cfg.Cache.Put(rec); err != nil {
				w.cfg.Logf("worker %s: caching %s: %v; abandoning shard", w.cfg.ID, item.Candidate.Name, err)
				return
			}
		}
		batch = append(batch, DeltaRecord{Record: rec, Simulated: !hit})
		if len(batch) >= w.cfg.BatchSize && !flush() {
			return
		}
	}
	flush()
}

// postRetry posts until success, a terminal response, or the attempt
// budget runs out, paced by the per-worker jittered backoff.
func (w *worker) postRetry(ctx context.Context, path string, reqBody, respBody any) bool {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if w.cfg.Backoff.WaitFor(ctx, w.cfg.ID+"/"+path, attempt) != nil {
				return false
			}
		}
		err := w.post(ctx, path, reqBody, respBody)
		if err == nil {
			return true
		}
		var se *statusError
		if errors.As(err, &se) && se.code == http.StatusConflict {
			w.cfg.Logf("worker %s: %s: %v; abandoning shard", w.cfg.ID, path, err)
			return false
		}
		if ctx.Err() != nil {
			return false
		}
		if attempt+1 >= maxPostAttempts {
			w.cfg.Logf("worker %s: %s: giving up after %d attempts: %v", w.cfg.ID, path, attempt+1, err)
			return false
		}
	}
}

func (w *worker) post(ctx context.Context, path string, reqBody, respBody any) error {
	buf, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	url := strings.TrimRight(w.cfg.Join, "/") + "/coord/" + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return &statusError{code: res.StatusCode, msg: strings.TrimSpace(string(msg))}
	}
	return json.NewDecoder(res.Body).Decode(respBody)
}

// statusError is a non-200 coordinator response.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("coordinator returned %d: %s", e.code, e.msg)
}
