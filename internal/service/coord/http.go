package coord

import (
	"encoding/json"
	"errors"
	"net/http"

	"chipletnet/internal/dse"
)

// The coordinator protocol: three POST endpoints riding the daemon's
// HTTP+JSON surface. Heartbeat doubles as registration and lease
// assignment; work hands over a leased shard's remaining evaluations;
// delta folds finished records back. Every message names the worker and
// (past heartbeat) the campaign/shard/lease triple, so stale senders are
// fenced by token comparison rather than connection state.

// Assignment names one leased shard.
type Assignment struct {
	Campaign string
	Shard    int
	Lease    int
}

// WorkItem is one pending evaluation, shipped without Params (they are
// campaign-wide and travel once per work response).
type WorkItem struct {
	Key       string
	Cert      string `json:",omitempty"`
	Candidate dse.Candidate
}

// DeltaRecord is one finished evaluation in a delta batch. Simulated
// distinguishes fresh simulation from a worker-local cache hit, so the
// campaign's simulation ledger stays honest across redeliveries.
type DeltaRecord struct {
	Record    dse.Record
	Simulated bool
}

type heartbeatRequest struct {
	Worker string
	// Capacity is the total number of leases the worker is willing to
	// hold (renewals included).
	Capacity int
	// Held echoes the assignments the worker is still working on
	// (queued or evaluating). Renewal is echo-driven: only echoed
	// leases are extended, so a shard the worker abandoned stops being
	// renewed the moment it drops out of this list and expires by TTL
	// — a healthy heartbeat alone cannot pin an abandoned shard.
	Held []Assignment `json:",omitempty"`
}

type heartbeatResponse struct {
	// TTLMS is the lease TTL; workers should beat well inside it.
	TTLMS int64
	// Assignments lists the renewed leases plus any fresh grants.
	Assignments []Assignment
}

type workRequest struct {
	Worker   string
	Campaign string
	Shard    int
	Lease    int
}

type workResponse struct {
	Revoked bool
	Params  dse.Params `json:",omitempty"`
	Items   []WorkItem `json:",omitempty"`
}

type deltaRequest struct {
	Worker   string
	Campaign string
	Shard    int
	Lease    int
	Records  []DeltaRecord
}

type deltaResponse struct {
	Revoked bool
	Added   int
}

// Register mounts the coordinator protocol on mux under /coord/.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /coord/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /coord/work", c.handleWork)
	mux.HandleFunc("POST /coord/delta", c.handleDelta)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "coord: heartbeat without worker ID", http.StatusBadRequest)
		return
	}
	if req.Capacity <= 0 {
		req.Capacity = 1
	}
	reply(w, heartbeatResponse{
		TTLMS:       c.cfg.HeartbeatTTL.Milliseconds(),
		Assignments: c.heartbeat(req.Worker, req.Capacity, req.Held),
	})
}

func (c *Coordinator) handleWork(w http.ResponseWriter, r *http.Request) {
	var req workRequest
	if !decode(w, r, &req) {
		return
	}
	params, items, revoked := c.work(req.Worker, req.Campaign, req.Shard, req.Lease)
	reply(w, workResponse{Revoked: revoked, Params: params, Items: items})
}

func (c *Coordinator) handleDelta(w http.ResponseWriter, r *http.Request) {
	var req deltaRequest
	if !decode(w, r, &req) {
		return
	}
	added, revoked, err := c.fold(req.Worker, req.Campaign, req.Shard, req.Lease, req.Records)
	switch {
	case errors.Is(err, dse.ErrConflict):
		// Conflict is terminal, not transient: 409 tells the worker to
		// stop resending rather than retry into the same wall.
		http.Error(w, err.Error(), http.StatusConflict)
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		reply(w, deltaResponse{Revoked: revoked, Added: added})
	}
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "coord: bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
