package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Handler returns the daemon's HTTP+JSON API:
//
//	GET  /healthz          → 200 while the process is alive
//	GET  /readyz           → 200 accepting jobs, 503 while draining
//	GET  /metrics          → plaintext operational counters
//	POST /jobs             → submit a JobSpec; 202 with the queued Job
//	GET  /jobs             → all jobs in submission order
//	GET  /jobs/{id}        → one job's structured status
//	POST /jobs/{id}/cancel → cancel a queued or running job
//
// With a coordinator attached, the coord protocol (POST
// /coord/heartbeat, /coord/work, /coord/delta) mounts on the same mux
// and /metrics appends the per-worker lease/heartbeat view.
//
// Every response body is JSON except /metrics; errors are
// {"error": "..."} with a matching status code.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.writeMetrics(w)
		if s.cfg.Coordinator != nil {
			s.cfg.Coordinator.WriteMetrics(w)
		}
	})
	if s.cfg.Coordinator != nil {
		s.cfg.Coordinator.Register(mux)
	}
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Cancel(r.PathValue("id"))
		if err != nil && !errors.Is(err, ErrFinished) {
			// Canceling an already-finished job is a no-op, not an error:
			// the client races the worker and must not see a failure when
			// it merely lost.
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	return mux
}

// writeMetrics emits the server's counters in the plaintext
// `name{labels} value` exposition format, names and labels in a fixed
// order so scrapes and tests see a stable document.
func (s *Server) writeMetrics(w io.Writer) {
	s.mu.Lock()
	counts := map[JobStatus]int{}
	for _, job := range s.jobs {
		counts[job.Status]++
	}
	queueDepth := len(s.queue)
	retries, hits := s.retriesTotal, s.cacheHits
	s.mu.Unlock()

	fmt.Fprintf(w, "chipletd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "chipletd_cache_records %d\n", s.cache.Len())
	for _, st := range []JobStatus{StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCanceled} {
		fmt.Fprintf(w, "chipletd_jobs{status=%q} %d\n", st, counts[st])
	}
	fmt.Fprintf(w, "chipletd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "chipletd_retries_total %d\n", retries)
}

// statusFor maps service errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
