package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"chipletnet"
	"chipletnet/internal/dse"
	"chipletnet/internal/service/backoff"
)

// fastBackoff keeps retry tests quick without disabling pacing.
var fastBackoff = backoff.Policy{Base: time.Microsecond, Cap: time.Millisecond}

// quickConfig is a small fast simulate/sweep configuration (~tens of
// milliseconds end to end).
func quickConfig() chipletnet.Config {
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = chipletnet.Topology{Kind: "mesh", Dims: []int{2, 2}}
	cfg.ChipletW, cfg.ChipletH = 3, 3
	cfg.InjectionRate = 0.1
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 400
	return cfg
}

// longConfig runs long enough to be mid-flight when a drain or cancel
// lands.
func longConfig() chipletnet.Config {
	cfg := quickConfig()
	cfg.MeasureCycles = 200000
	return cfg
}

// tinySpec is a fast DSE job over two mesh layouts of four chiplets.
func tinySpec() JobSpec {
	p := dse.DefaultParams()
	p.WarmupCycles = 100
	p.MeasureCycles = 400
	p.Rates = []float64{0.1, 0.4}
	return JobSpec{
		Type: JobDSE,
		Space: &dse.Space{
			Chiplets:      4,
			NoCs:          [][2]int{{3, 3}},
			Topologies:    []string{"mesh"},
			Routings:      []string{dse.RoutingMFR},
			Interleavings: []string{"none"},
		},
		Params: &p,
	}
}

func openTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Backoff == (backoff.Policy{}) {
		cfg.Backoff = fastBackoff
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// waitStatus polls until the job reaches one of the wanted states.
func waitStatus(t *testing.T, s *Server, id string, want ...JobStatus) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		for _, w := range want {
			if job.Status == w {
				return job
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	job, _ := s.Get(id)
	t.Fatalf("job %s stuck in %q (error %q), want one of %v", id, job.Status, job.Error, want)
	return Job{}
}

func TestSubmitValidation(t *testing.T) {
	s := openTestServer(t, Config{Dir: t.TempDir()})
	bad := []JobSpec{
		{},
		{Type: "mystery"},
		{Type: JobSimulate},
		{Type: JobSweep, Config: ptr(quickConfig())},
		{Type: JobDSE},
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec.Type)
		}
	}
}

func ptr[T any](v T) *T { return &v }

func TestSimulateJobMatchesDirectRun(t *testing.T) {
	cfg := quickConfig()
	direct, err := chipletnet.Run(cfg)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	s := openTestServer(t, Config{Dir: t.TempDir()})
	job, err := s.Submit(JobSpec{Type: JobSimulate, Config: &cfg})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitStatus(t, s, job.ID, StatusDone, StatusFailed)
	if done.Status != StatusDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if done.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", done.Attempts)
	}
	if done.Progress != (Progress{Done: 1, Total: 1}) {
		t.Errorf("Progress = %+v, want 1/1", done.Progress)
	}
	var got chipletnet.Result
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	want, _ := json.Marshal(direct)
	if gotJSON, _ := json.Marshal(got); !bytes.Equal(gotJSON, want) {
		t.Errorf("daemon result differs from direct run:\n got %s\nwant %s", gotJSON, want)
	}
}

func TestSweepJob(t *testing.T) {
	cfg := quickConfig()
	s := openTestServer(t, Config{Dir: t.TempDir(), Workers: 2})
	// Rates submitted out of order come back sorted (the ladder is
	// canonicalized like dse.Params).
	job, err := s.Submit(JobSpec{Type: JobSweep, Config: &cfg, Rates: []float64{0.3, 0.05}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitStatus(t, s, job.ID, StatusDone, StatusFailed)
	if done.Status != StatusDone {
		t.Fatalf("sweep failed: %s", done.Error)
	}
	var res SweepResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if len(res.Results) != 2 || res.Rates[0] != 0.05 || res.Rates[1] != 0.3 {
		t.Fatalf("sweep result = rates %v, %d results; want sorted [0.05 0.3] with 2 results", res.Rates, len(res.Results))
	}
}

func TestDSEJobWarmResubmitIsAllCacheHits(t *testing.T) {
	dir := t.TempDir()
	s := openTestServer(t, Config{Dir: dir})
	job, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitStatus(t, s, job.ID, StatusDone, StatusFailed)
	if done.Status != StatusDone {
		t.Fatalf("dse job failed: %s", done.Error)
	}
	var cold DSEResult
	if err := json.Unmarshal(done.Result, &cold); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if cold.Simulated == 0 || cold.CacheHits != 0 {
		t.Fatalf("cold DSE: Simulated=%d CacheHits=%d, want all simulated", cold.Simulated, cold.CacheHits)
	}
	if len(cold.Frontier) == 0 {
		t.Fatal("cold DSE produced an empty frontier")
	}

	// Same exploration again — everything must come from the sharded
	// cache, with an identical frontier.
	job2, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	done2 := waitStatus(t, s, job2.ID, StatusDone, StatusFailed)
	if done2.Status != StatusDone {
		t.Fatalf("warm dse job failed: %s", done2.Error)
	}
	var warm DSEResult
	if err := json.Unmarshal(done2.Result, &warm); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if warm.Simulated != 0 || warm.CacheHits != cold.Simulated {
		t.Errorf("warm DSE: Simulated=%d CacheHits=%d, want 0/%d", warm.Simulated, warm.CacheHits, cold.Simulated)
	}
	if w, c := mustJSON(t, warm.Frontier), mustJSON(t, cold.Frontier); !bytes.Equal(w, c) {
		t.Error("warm frontier differs from cold frontier")
	}

	// The cache survives a clean restart too.
	s.Close()
	s2 := openTestServer(t, Config{Dir: dir})
	job3, err := s2.Submit(tinySpec())
	if err != nil {
		t.Fatalf("post-restart submit: %v", err)
	}
	done3 := waitStatus(t, s2, job3.ID, StatusDone, StatusFailed)
	var again DSEResult
	if err := json.Unmarshal(done3.Result, &again); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if again.Simulated != 0 {
		t.Errorf("post-restart DSE simulated %d candidates, want 0", again.Simulated)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestJobDeadlineFails(t *testing.T) {
	cfg := longConfig()
	s := openTestServer(t, Config{Dir: t.TempDir()})
	job, err := s.Submit(JobSpec{Type: JobSimulate, Config: &cfg, TimeoutMS: 50})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitStatus(t, s, job.ID, StatusDone, StatusFailed)
	if done.Status != StatusFailed {
		t.Fatalf("status = %q, want failed", done.Status)
	}
	if !strings.Contains(done.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", done.Error)
	}
}

func TestRetryExhaustion(t *testing.T) {
	bad := quickConfig()
	bad.Topology = chipletnet.Topology{Kind: "mesh", Dims: []int{7}} // build-time error
	s := openTestServer(t, Config{Dir: t.TempDir(), Retries: 2})
	job, err := s.Submit(JobSpec{Type: JobSimulate, Config: &bad})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitStatus(t, s, job.ID, StatusFailed, StatusDone)
	if done.Status != StatusFailed {
		t.Fatal("invalid config job did not fail")
	}
	if done.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (1 + 2 retries)", done.Attempts)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s := openTestServer(t, Config{Dir: t.TempDir(), Workers: 1})
	long := longConfig()
	running, err := s.Submit(JobSpec{Type: JobSimulate, Config: &long})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStatus(t, s, running.ID, StatusRunning)

	// The single worker is busy, so this one stays queued.
	queued, err := s.Submit(JobSpec{Type: JobSimulate, Config: &long})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job, err := s.Cancel(queued.ID); err != nil || job.Status != StatusCanceled {
		t.Fatalf("cancel queued: job %q err %v, want immediate canceled", job.Status, err)
	}

	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	got := waitStatus(t, s, running.ID, StatusCanceled, StatusFailed, StatusDone)
	if got.Status != StatusCanceled {
		t.Fatalf("running job ended %q, want canceled", got.Status)
	}

	if _, err := s.Cancel(running.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("cancel finished job: err = %v, want ErrFinished", err)
	}
	if _, err := s.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown job: err = %v, want ErrNotFound", err)
	}
}

// TestDrainRequeuesAndResumesBitIdentical is the graceful half of the
// crash-safety story: a drain interrupts a long simulate job at a cycle
// boundary, snapshots it, requeues it durably, and a new server resumes
// it to a result bit-identical to an uninterrupted run.
func TestDrainRequeuesAndResumesBitIdentical(t *testing.T) {
	cfg := longConfig()
	direct, err := chipletnet.Run(cfg)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	dir := t.TempDir()
	s := openTestServer(t, Config{Dir: dir, CheckpointEvery: 500})
	job, err := s.Submit(JobSpec{Type: JobSimulate, Config: &cfg})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStatus(t, s, job.ID, StatusRunning)
	time.Sleep(20 * time.Millisecond) // let it get some cycles in
	s.Drain()
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	drained, _ := s.Get(job.ID)
	if drained.Status == StatusRunning {
		t.Fatalf("job still running after Drain")
	}
	if _, err := s.Submit(JobSpec{Type: JobSimulate, Config: &cfg}); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit during drain: err = %v, want ErrDraining", err)
	}
	s.Close()

	s2 := openTestServer(t, Config{Dir: dir, CheckpointEvery: 500})
	done := waitStatus(t, s2, job.ID, StatusDone, StatusFailed)
	if done.Status != StatusDone {
		t.Fatalf("resumed job failed: %s", done.Error)
	}
	if drained.Status == StatusQueued && done.Attempts < 2 {
		t.Errorf("resumed job Attempts = %d, want >= 2 (one per start)", done.Attempts)
	}
	var got chipletnet.Result
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	want, _ := json.Marshal(direct)
	if gotJSON, _ := json.Marshal(got); !bytes.Equal(gotJSON, want) {
		t.Errorf("resumed result differs from uninterrupted run:\n got %s\nwant %s", gotJSON, want)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := openTestServer(t, Config{Dir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}
	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz = %d, want 200", code)
	}
	if code, body := post("/jobs", `{"Type":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("bad submit = %d (%s), want 400", code, body)
	}
	if code, body := post("/jobs", `{"Typ`); code != http.StatusBadRequest {
		t.Errorf("truncated submit = %d (%s), want 400", code, body)
	}

	cfg := quickConfig()
	spec, _ := json.Marshal(JobSpec{Type: JobSimulate, Config: &cfg})
	code, body := post("/jobs", string(spec))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d (%s), want 202", code, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil || job.ID == "" {
		t.Fatalf("submit response %s: %v", body, err)
	}

	done := waitStatus(t, s, job.ID, StatusDone, StatusFailed)
	if done.Status != StatusDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	code, body = get("/jobs/" + job.ID)
	if code != http.StatusOK {
		t.Fatalf("get job = %d, want 200", code)
	}
	var fetched Job
	if err := json.Unmarshal(body, &fetched); err != nil || fetched.Status != StatusDone {
		t.Fatalf("fetched job %s (err %v), want done", body, err)
	}
	if code, _ := get("/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}

	var list []Job
	if code, body := get("/jobs"); code != http.StatusOK || json.Unmarshal(body, &list) != nil || len(list) != 1 {
		t.Errorf("list jobs = %d %s, want one job", code, body)
	}

	// Canceling a finished job over HTTP is a 200 no-op.
	if code, body := post("/jobs/"+job.ID+"/cancel", ""); code != http.StatusOK {
		t.Errorf("cancel finished = %d (%s), want 200", code, body)
	}
	if code, _ := post("/jobs/nope/cancel", ""); code != http.StatusNotFound {
		t.Errorf("cancel unknown = %d, want 404", code)
	}

	s.Drain()
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", code)
	}
	if code, _ := post("/jobs", string(spec)); code != http.StatusServiceUnavailable {
		t.Errorf("submit during drain = %d, want 503", code)
	}
}

// TestJournalQuarantine: a corrupt interior journal line is quarantined,
// not fatal, and the surviving events still replay.
func TestJournalQuarantine(t *testing.T) {
	dir := t.TempDir()
	cfg := quickConfig()
	s := openTestServer(t, Config{Dir: dir})
	job, err := s.Submit(JobSpec{Type: JobSimulate, Config: &cfg})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStatus(t, s, job.ID, StatusDone, StatusFailed)
	s.Close()

	// Corrupt the first journal line (the submit) of a second job by
	// appending garbage plus a fresh valid submit.
	spec, _ := json.Marshal(jobEvent{ID: "j999", Event: evSubmit, Spec: &JobSpec{Type: JobSimulate, Config: &cfg}})
	appendTo(t, dir+"/jobs.jsonl", "!!garbage!!\n"+string(spec)+"\n")

	s2 := openTestServer(t, Config{Dir: dir})
	if got, ok := s2.Get(job.ID); !ok || got.Status != StatusDone {
		t.Fatalf("replayed job = %+v (%v), want done", got.Status, ok)
	}
	done := waitStatus(t, s2, "j999", StatusDone, StatusFailed)
	if done.Status != StatusDone {
		t.Fatalf("appended job failed: %s", done.Error)
	}
}

func appendTo(t *testing.T, path, data string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(data); err != nil {
		t.Fatal(err)
	}
}
