// Package backoff is the repository's shared retry-pacing policy:
// capped exponential delays between attempts. Every retry loop in the
// process layer (the campaign daemon, the chipletfig supervisor) paces
// itself through a Policy — the chipletlint retrysleep analyzer flags
// bare time.Sleep calls inside loops anywhere else, so retry discipline
// cannot silently regress to busy hammering.
//
// The policy is deliberately jitter-free: delays are a pure function of
// the attempt number, so supervisor behavior is reproducible in tests.
package backoff

import (
	"context"
	"math"
	"time"
)

// Policy is a capped exponential backoff: the pause before retry k
// (1-based) is Base << (k-1), clamped to Cap.
type Policy struct {
	// Base is the delay before the first retry. A zero or negative Base
	// disables pausing entirely (Delay returns 0 for every attempt).
	Base time.Duration
	// Cap bounds the delay; <= 0 means uncapped.
	Cap time.Duration
}

// Delay returns the pause before retry attempt (1-based). Attempts
// before the first retry, or a disabled policy, yield zero.
func (p Policy) Delay(attempt int) time.Duration {
	if attempt < 1 || p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d <<= 1
		if p.Cap > 0 && d >= p.Cap {
			return p.Cap
		}
		if d <= 0 { // doubling overflowed
			if p.Cap > 0 {
				return p.Cap
			}
			return time.Duration(math.MaxInt64)
		}
	}
	if p.Cap > 0 && d > p.Cap {
		return p.Cap
	}
	return d
}

// Sleep blocks for Delay(attempt).
func (p Policy) Sleep(attempt int) { time.Sleep(p.Delay(attempt)) }

// Wait blocks for Delay(attempt) or until ctx is done, whichever comes
// first, returning ctx's error in the latter case — the pacing primitive
// for retry loops that must abort promptly on cancellation.
func (p Policy) Wait(ctx context.Context, attempt int) error {
	d := p.Delay(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
