// Package backoff is the repository's shared retry-pacing policy:
// capped exponential delays between attempts. Every retry loop in the
// process layer (the campaign daemon, the chipletfig supervisor) paces
// itself through a Policy — the chipletlint retrysleep analyzer flags
// bare time.Sleep calls inside loops anywhere else, so retry discipline
// cannot silently regress to busy hammering.
//
// Delay is deliberately jitter-free: delays are a pure function of the
// attempt number, so supervisor behavior is reproducible in tests. When
// many independent clients retry against one server — the coordinator's
// worker fleet — identical delays synchronize into a thundering herd, so
// DelayFor adds per-key jitter that is still deterministic: the jitter
// factor is hash-seeded from a caller-supplied key (a worker ID, a shard
// name), making every client's schedule distinct yet exactly
// reproducible in tests.
package backoff

import (
	"context"
	"hash/fnv"
	"math"
	"strconv"
	"time"
)

// Policy is a capped exponential backoff: the pause before retry k
// (1-based) is Base << (k-1), clamped to Cap.
type Policy struct {
	// Base is the delay before the first retry. A zero or negative Base
	// disables pausing entirely (Delay returns 0 for every attempt).
	Base time.Duration
	// Cap bounds the delay; <= 0 means uncapped.
	Cap time.Duration
	// Jitter, in (0, 1], spreads DelayFor's delays over
	// [(1-Jitter)·Delay, Delay] using a factor hashed from the caller's
	// key, so clients with distinct keys desynchronize. 0 disables
	// jitter; Delay and Wait never apply it.
	Jitter float64
}

// Delay returns the pause before retry attempt (1-based). Attempts
// before the first retry, or a disabled policy, yield zero.
func (p Policy) Delay(attempt int) time.Duration {
	if attempt < 1 || p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d <<= 1
		if p.Cap > 0 && d >= p.Cap {
			return p.Cap
		}
		if d <= 0 { // doubling overflowed
			if p.Cap > 0 {
				return p.Cap
			}
			return time.Duration(math.MaxInt64)
		}
	}
	if p.Cap > 0 && d > p.Cap {
		return p.Cap
	}
	return d
}

// DelayFor returns the pause before retry attempt (1-based) for the
// client identified by key: Delay(attempt) scaled by a deterministic
// per-(key, attempt) factor in [1-Jitter, 1]. With Jitter 0 (or an
// empty delay) it is exactly Delay. The factor comes from an FNV-1a
// hash, so the full retry schedule of any key is reproducible while
// distinct keys spread apart instead of hammering in lockstep.
func (p Policy) DelayFor(key string, attempt int) time.Duration {
	d := p.Delay(attempt)
	if d <= 0 || p.Jitter <= 0 {
		return d
	}
	j := p.Jitter
	if j > 1 {
		j = 1
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{'|'})
	h.Write([]byte(strconv.Itoa(attempt)))
	// Top 53 bits → an exact float64 fraction in [0, 1).
	frac := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	scaled := time.Duration(float64(d) * (1 - j*frac))
	if scaled < 1 {
		scaled = 1 // a jittered retry still pauses
	}
	return scaled
}

// Sleep blocks for Delay(attempt).
func (p Policy) Sleep(attempt int) { time.Sleep(p.Delay(attempt)) }

// Wait blocks for Delay(attempt) or until ctx is done, whichever comes
// first, returning ctx's error in the latter case — the pacing primitive
// for retry loops that must abort promptly on cancellation.
func (p Policy) Wait(ctx context.Context, attempt int) error {
	return waitFor(ctx, p.Delay(attempt))
}

// WaitFor is Wait with DelayFor's per-key jitter: the pacing primitive
// for fleets of clients retrying against one server.
func (p Policy) WaitFor(ctx context.Context, key string, attempt int) error {
	return waitFor(ctx, p.DelayFor(key, attempt))
}

func waitFor(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
