package backoff

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestDelaySchedule(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 2 * time.Second}
	want := []struct {
		attempt int
		d       time.Duration
	}{
		{0, 0},
		{-3, 0},
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{5, 1600 * time.Millisecond},
		{6, 2 * time.Second}, // capped
		{60, 2 * time.Second},
	}
	for _, w := range want {
		if got := p.Delay(w.attempt); got != w.d {
			t.Errorf("Delay(%d) = %v, want %v", w.attempt, got, w.d)
		}
	}
}

func TestDelayDisabledAndUncapped(t *testing.T) {
	if d := (Policy{}).Delay(5); d != 0 {
		t.Errorf("zero policy Delay = %v, want 0", d)
	}
	p := Policy{Base: time.Millisecond}
	if d := p.Delay(4); d != 8*time.Millisecond {
		t.Errorf("uncapped Delay(4) = %v, want 8ms", d)
	}
	// Deep attempts overflow the doubling; uncapped policies saturate
	// instead of going negative.
	if d := p.Delay(200); d != time.Duration(math.MaxInt64) {
		t.Errorf("overflowed uncapped Delay = %v, want MaxInt64", d)
	}
	capped := Policy{Base: time.Millisecond, Cap: time.Minute}
	if d := capped.Delay(200); d != time.Minute {
		t.Errorf("overflowed capped Delay = %v, want the cap", d)
	}
}

func TestWaitHonorsCancellation(t *testing.T) {
	p := Policy{Base: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Wait(ctx, 1); err != context.Canceled {
		t.Errorf("Wait on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestWaitCompletes(t *testing.T) {
	p := Policy{Base: time.Millisecond}
	if err := p.Wait(context.Background(), 1); err != nil {
		t.Errorf("Wait = %v, want nil", err)
	}
	// No delay → no block, but a dead context still reports itself.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (Policy{}).Wait(ctx, 1); err != context.Canceled {
		t.Errorf("zero-delay Wait on canceled ctx = %v, want context.Canceled", err)
	}
}
