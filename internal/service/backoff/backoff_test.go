package backoff

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestDelaySchedule(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 2 * time.Second}
	want := []struct {
		attempt int
		d       time.Duration
	}{
		{0, 0},
		{-3, 0},
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{5, 1600 * time.Millisecond},
		{6, 2 * time.Second}, // capped
		{60, 2 * time.Second},
	}
	for _, w := range want {
		if got := p.Delay(w.attempt); got != w.d {
			t.Errorf("Delay(%d) = %v, want %v", w.attempt, got, w.d)
		}
	}
}

func TestDelayDisabledAndUncapped(t *testing.T) {
	if d := (Policy{}).Delay(5); d != 0 {
		t.Errorf("zero policy Delay = %v, want 0", d)
	}
	p := Policy{Base: time.Millisecond}
	if d := p.Delay(4); d != 8*time.Millisecond {
		t.Errorf("uncapped Delay(4) = %v, want 8ms", d)
	}
	// Deep attempts overflow the doubling; uncapped policies saturate
	// instead of going negative.
	if d := p.Delay(200); d != time.Duration(math.MaxInt64) {
		t.Errorf("overflowed uncapped Delay = %v, want MaxInt64", d)
	}
	capped := Policy{Base: time.Millisecond, Cap: time.Minute}
	if d := capped.Delay(200); d != time.Minute {
		t.Errorf("overflowed capped Delay = %v, want the cap", d)
	}
}

func TestDelayForJitterDeterministicAndBounded(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.5}
	for _, key := range []string{"worker-a", "worker-b", "worker-c"} {
		for attempt := 1; attempt <= 8; attempt++ {
			d := p.DelayFor(key, attempt)
			if again := p.DelayFor(key, attempt); again != d {
				t.Fatalf("DelayFor(%q, %d) not deterministic: %v then %v", key, attempt, d, again)
			}
			full := p.Delay(attempt)
			if lo := time.Duration(float64(full) * (1 - p.Jitter)); d < lo || d > full {
				t.Errorf("DelayFor(%q, %d) = %v outside [%v, %v]", key, attempt, d, lo, full)
			}
		}
	}
}

func TestDelayForSpreadsKeys(t *testing.T) {
	// N workers retrying attempt 1 must not synchronize: with 50% jitter
	// over a 1s delay, distinct keys land on distinct instants.
	p := Policy{Base: time.Second, Jitter: 0.5}
	seen := map[time.Duration]string{}
	for _, key := range []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"} {
		d := p.DelayFor(key, 1)
		if prev, dup := seen[d]; dup {
			t.Errorf("keys %q and %q share delay %v (thundering herd)", prev, key, d)
		}
		seen[d] = key
	}
}

func TestDelayForZeroJitterIsDelay(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second}
	for attempt := 0; attempt <= 6; attempt++ {
		if got, want := p.DelayFor("any", attempt), p.Delay(attempt); got != want {
			t.Errorf("jitter-free DelayFor(%d) = %v, want Delay's %v", attempt, got, want)
		}
	}
	// A jittered policy with no delay to jitter stays at zero.
	if d := (Policy{Jitter: 0.5}).DelayFor("any", 3); d != 0 {
		t.Errorf("disabled policy DelayFor = %v, want 0", d)
	}
}

func TestWaitForHonorsCancellation(t *testing.T) {
	p := Policy{Base: time.Hour, Jitter: 0.5}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.WaitFor(ctx, "w", 1); err != context.Canceled {
		t.Errorf("WaitFor on canceled ctx = %v, want context.Canceled", err)
	}
	if err := (Policy{Base: time.Microsecond, Jitter: 1}).WaitFor(context.Background(), "w", 1); err != nil {
		t.Errorf("WaitFor = %v, want nil", err)
	}
}

func TestWaitHonorsCancellation(t *testing.T) {
	p := Policy{Base: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Wait(ctx, 1); err != context.Canceled {
		t.Errorf("Wait on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestWaitCompletes(t *testing.T) {
	p := Policy{Base: time.Millisecond}
	if err := p.Wait(context.Background(), 1); err != nil {
		t.Errorf("Wait = %v, want nil", err)
	}
	// No delay → no block, but a dead context still reports itself.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (Policy{}).Wait(ctx, 1); err != context.Canceled {
		t.Errorf("zero-delay Wait on canceled ctx = %v, want context.Canceled", err)
	}
}
