// Package service is the campaign daemon's core: a crash-safe job
// service that accepts simulate / sweep / DSE jobs, schedules them on a
// bounded worker pool with panic isolation, per-job deadlines and
// capped-exponential-backoff retries (internal/service/backoff), and
// persists every state transition to an fsynced journal so a SIGKILLed
// daemon restarts with zero lost and zero duplicated jobs.
//
// Durability is layered, reusing the repository's existing crash-safety
// machinery instead of inventing new formats:
//
//   - The job table (queue included) is an append-only JSONL event
//     journal replayed at Open (the experiments.Journal idiom, healed by
//     internal/jsonl). A job found mid-run after a crash is requeued.
//   - Long simulate jobs checkpoint periodically through
//     internal/checkpoint (RunControl.CheckpointEvery) and resume from
//     their snapshot bit-identically.
//   - DSE jobs write every finished candidate evaluation to the sharded
//     content-addressed cache (dse.ShardedCache); after a crash the
//     journaled-done work is served 100% from cache and only the
//     unfinished candidates simulate again.
//
// Graceful drain (SIGTERM in cmd/chipletd) stops intake, interrupts
// in-flight work at the next safe point — simulate jobs snapshot a
// checkpoint, DSE jobs finish their current candidate — requeues it, and
// returns with the queue fully persisted.
//
// This package is the process layer, not the simulator: it owns
// goroutines, wall-clock deadlines and timers, and is therefore exempt
// from the determinism lint that governs simulator packages (see
// cmd/chipletlint's scope rules). All simulation still flows through the
// module root's RunManyCtx/RunEachCtx executors.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"time"

	"chipletnet"
	"chipletnet/internal/dse"
	"chipletnet/internal/service/backoff"
	"chipletnet/internal/service/coord"
)

// JobType selects what a job runs.
type JobType string

// The job types. Every later roadmap direction (trace replay, bigger
// searches) lands as a new JobType here, not as a new binary.
const (
	// JobSimulate runs one configuration to completion.
	JobSimulate JobType = "simulate"
	// JobSweep runs one configuration across an injection-rate ladder.
	JobSweep JobType = "sweep"
	// JobDSE explores a design space and reports the Pareto frontier.
	JobDSE JobType = "dse"
)

// JobSpec is the client-submitted description of one job.
type JobSpec struct {
	Type JobType
	// Config is the fully-resolved configuration (simulate, sweep).
	Config *chipletnet.Config `json:",omitempty"`
	// Rates is the injection-rate ladder (sweep).
	Rates []float64 `json:",omitempty"`
	// Space and Params declare the exploration (dse). A nil Params uses
	// dse.DefaultParams.
	Space  *dse.Space  `json:",omitempty"`
	Params *dse.Params `json:",omitempty"`
	// TimeoutMS overrides the server's per-job deadline in milliseconds:
	// 0 inherits the server default, < 0 disables the deadline.
	TimeoutMS int64 `json:",omitempty"`
	// Retries overrides the server's retry budget (extra attempts after
	// a failure); 0 inherits the server default, < 0 disables retries.
	Retries int `json:",omitempty"`
}

// Validate checks that the spec names a job type and carries the fields
// that type needs.
func (sp JobSpec) Validate() error {
	switch sp.Type {
	case JobSimulate:
		if sp.Config == nil {
			return errors.New("service: simulate job needs a Config")
		}
	case JobSweep:
		if sp.Config == nil {
			return errors.New("service: sweep job needs a Config")
		}
		if len(sp.Rates) == 0 {
			return errors.New("service: sweep job needs Rates")
		}
	case JobDSE:
		if sp.Space == nil {
			return errors.New("service: dse job needs a Space")
		}
	default:
		return fmt.Errorf("service: unknown job type %q", sp.Type)
	}
	return nil
}

// JobStatus is a job's lifecycle state.
type JobStatus string

// The job lifecycle: queued → running → done | failed | canceled, with
// running → queued again when a drain interrupts the job.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// Progress is a running job's coarse completion state (units depend on
// the job type: evaluations for DSE, runs otherwise).
type Progress struct {
	Done, Total int
}

// Job is the structured per-job status the API serves.
type Job struct {
	ID       string
	Spec     JobSpec
	Status   JobStatus
	Attempts int
	Error    string          `json:",omitempty"`
	Result   json.RawMessage `json:",omitempty"`
	Progress Progress
}

// SweepResult is a sweep job's result payload.
type SweepResult struct {
	Rates   []float64
	Results []chipletnet.Result
}

// DSEResult is a DSE job's result payload: the exploration accounting
// plus the Pareto frontier. Simulated/CacheHits expose the crash-safety
// ledger — a job resumed after a kill reports the journaled-done work as
// cache hits (in coordinator mode the hits include the worker-local
// caches). Degraded/Missing mark a partial result: the worker fleet died
// mid-campaign, so Frontier covers only the evaluations that finished.
type DSEResult struct {
	Enumerated int
	Pruned     int
	Rejected   int
	Candidates int
	Simulated  int
	CacheHits  int
	Degraded   bool `json:",omitempty"`
	Missing    int  `json:",omitempty"`
	Frontier   []dse.Record
}

// Typed service errors, matchable with errors.Is.
var (
	// ErrDraining: the server is shutting down and accepts no new jobs.
	ErrDraining = errors.New("service: draining")
	// ErrQueueFull: the bounded job queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrNotFound: no job with that ID.
	ErrNotFound = errors.New("service: job not found")
	// ErrFinished: the job already reached a terminal state.
	ErrFinished = errors.New("service: job already finished")
)

// errDrained marks an in-flight job interrupted by a drain; it goes back
// to the queue, never to failed.
var errDrained = errors.New("service: job interrupted by drain")

// Config tunes the server.
type Config struct {
	// Dir is the state directory: jobs.jsonl, cache/ (sharded evaluation
	// cache) and checkpoints/ live under it.
	Dir string
	// Workers bounds concurrent jobs (default 1).
	Workers int
	// JobTimeout is the default per-job wall-clock deadline (0 = none).
	JobTimeout time.Duration
	// Retries is the default extra attempts after a failure.
	Retries int
	// Backoff paces retries; the zero value means 100ms base, 5s cap.
	Backoff backoff.Policy
	// CheckpointEvery is the periodic snapshot interval for simulate
	// jobs, in cycles (default 2000).
	CheckpointEvery int64
	// QueueCap bounds the pending-job queue (default 1024).
	QueueCap int
	// Coordinator, when set, distributes every DSE job's pending
	// evaluations across the worker fleet instead of simulating locally
	// (see internal/service/coord). The server still plans, serves cache
	// hits, and owns the result; only the simulation fans out.
	Coordinator *coord.Coordinator
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Server is the job service. Open one per state directory; its HTTP
// surface is Handler (cmd/chipletd serves it).
type Server struct {
	cfg   Config
	logf  func(string, ...any)
	jlog  *jobLog
	cache *dse.ShardedCache

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order, for deterministic listings
	cancels map[string]context.CancelFunc
	nextID  int
	defunct bool // draining: reject submissions, readyz → 503
	// Operational counters for /metrics (process-lifetime, not journaled).
	retriesTotal int
	cacheHits    int

	queue   chan string
	drainCh chan struct{} // closed exactly once, by Drain
	wg      sync.WaitGroup
}

// Open loads (creating if needed) the state directory, replays the job
// journal — requeuing every job that was queued or running when the
// previous process died — and starts the worker pool.
func Open(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("service: Config.Dir is required")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Backoff == (backoff.Policy{}) {
		cfg.Backoff = backoff.Policy{Base: 100 * time.Millisecond, Cap: 5 * time.Second}
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 2000
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for _, sub := range []string{"", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	cache, err := dse.OpenShardedCache(filepath.Join(cfg.Dir, "cache"))
	if err != nil {
		return nil, err
	}
	jlog, events, quarantined, err := openJobLog(filepath.Join(cfg.Dir, "jobs.jsonl"))
	if err != nil {
		cache.Close()
		return nil, err
	}
	if quarantined > 0 {
		logf("job journal: quarantined %d corrupt lines to jobs.jsonl.rej", quarantined)
	}
	if q := cache.Quarantined(); q > 0 {
		logf("evaluation cache: quarantined %d corrupt lines to .rej sidecars", q)
	}

	s := &Server{
		cfg:     cfg,
		logf:    logf,
		jlog:    jlog,
		cache:   cache,
		jobs:    map[string]*Job{},
		cancels: map[string]context.CancelFunc{},
		drainCh: make(chan struct{}),
	}
	pending := s.replay(events)
	if cap := cfg.QueueCap; cap < len(pending) {
		cfg.QueueCap = len(pending)
	}
	s.queue = make(chan string, cfg.QueueCap)
	for _, id := range pending {
		s.queue <- id
	}
	if len(pending) > 0 {
		logf("recovered %d pending jobs (%d total journaled)", len(pending), len(s.jobs))
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// replay reconstructs the job table from the journal and returns the
// IDs to requeue, in submission order: jobs journaled queued, plus jobs
// whose last event was start (mid-run at the crash — requeued, never
// lost) or requeue (drained).
func (s *Server) replay(events []jobEvent) []string {
	for _, e := range events {
		if e.Event == evSubmit {
			if e.Spec == nil {
				continue // malformed but journaled; unrunnable without a spec
			}
			if _, dup := s.jobs[e.ID]; dup {
				continue // replayed submit of an existing job: keep the first
			}
			s.jobs[e.ID] = &Job{ID: e.ID, Spec: *e.Spec, Status: StatusQueued}
			s.order = append(s.order, e.ID)
			if n, err := strconv.Atoi(e.ID[1:]); err == nil && n >= s.nextID {
				s.nextID = n + 1
			}
			continue
		}
		job, ok := s.jobs[e.ID]
		if !ok {
			continue // event for a quarantined submit
		}
		switch e.Event {
		case evStart:
			job.Status = StatusRunning
			job.Attempts = e.Attempts
		case evRequeue:
			job.Status = StatusQueued
		case evDone:
			job.Status = StatusDone
			job.Result = e.Result
		case evFailed:
			job.Status = StatusFailed
			job.Error = e.Error
			job.Result = e.Result
		case evCanceled:
			job.Status = StatusCanceled
		}
	}
	var pending []string
	for _, id := range s.order {
		job := s.jobs[id]
		if job.Status == StatusRunning {
			// The previous process died mid-run. The journal never saw a
			// terminal event, so the job is requeued — its partial work
			// survives in the evaluation cache / checkpoint and is not
			// redone.
			job.Status = StatusQueued
		}
		if job.Status == StatusQueued {
			pending = append(pending, id)
		}
	}
	return pending
}

// Cache exposes the server's sharded evaluation cache (tests and the
// merge tooling read it).
func (s *Server) Cache() *dse.ShardedCache { return s.cache }

// Submit validates, journals and enqueues a job, returning its assigned
// ID. The job is durably queued before Submit returns: a crash
// immediately after sees it again at the next Open.
func (s *Server) Submit(spec JobSpec) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	s.mu.Lock()
	if s.defunct {
		s.mu.Unlock()
		return Job{}, ErrDraining
	}
	id := fmt.Sprintf("j%06d", s.nextID)
	s.nextID++
	job := &Job{ID: id, Spec: spec, Status: StatusQueued}
	select {
	case s.queue <- id:
	default:
		s.nextID-- // the ID was never journaled; reuse it
		s.mu.Unlock()
		return Job{}, ErrQueueFull
	}
	if err := s.jlog.record(jobEvent{ID: id, Event: evSubmit, Spec: &spec}); err != nil {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("service: journaling submission: %w", err)
	}
	s.jobs[id] = job
	s.order = append(s.order, id)
	out := *job
	s.mu.Unlock()
	s.logf("job %s: submitted (%s)", id, spec.Type)
	return out, nil
}

// Get returns a copy of the job's current status.
func (s *Server) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *job, true
}

// List returns every job in submission order.
func (s *Server) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Cancel cancels a queued or running job. Terminal jobs report
// ErrFinished.
func (s *Server) Cancel(id string) (Job, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, ErrNotFound
	}
	switch job.Status {
	case StatusQueued:
		job.Status = StatusCanceled
		err := s.jlog.record(jobEvent{ID: id, Event: evCanceled})
		out := *job
		s.mu.Unlock()
		s.logf("job %s: canceled while queued", id)
		return out, err
	case StatusRunning:
		cancel := s.cancels[id]
		out := *job
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return out, nil
	default:
		out := *job
		s.mu.Unlock()
		return out, ErrFinished
	}
}

// Draining reports whether Drain has begun (readyz surfaces this).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.defunct
}

// Drain stops intake, interrupts in-flight jobs at their next safe point
// (simulate jobs snapshot a checkpoint, DSE jobs finish the current
// candidate evaluation), requeues them durably, and waits for the worker
// pool to exit. Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	already := s.defunct
	s.defunct = true
	s.mu.Unlock()
	if !already {
		close(s.drainCh)
	}
	s.wg.Wait()
}

// Close drains and releases the journal and cache files.
func (s *Server) Close() error {
	s.Drain()
	return errors.Join(s.jlog.Close(), s.cache.Close())
}

// worker pulls job IDs until the queue closes or a drain begins.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.drainCh:
			return
		case id := <-s.queue:
			s.runJob(id)
		}
	}
}

// setStatus applies and journals one job state transition.
func (s *Server) setStatus(job *Job, status JobStatus, e jobEvent) {
	s.mu.Lock()
	job.Status = status
	if e.Event == evDone {
		job.Result = e.Result
		job.Error = ""
	}
	if e.Event == evFailed {
		job.Error = e.Error
		job.Result = e.Result // partial (degraded) payload, when present
	}
	err := s.jlog.record(e)
	s.mu.Unlock()
	if err != nil {
		s.logf("job %s: journaling %s: %v", job.ID, e.Event, err)
	}
}

// setProgress updates a running job's progress counters.
func (s *Server) setProgress(job *Job, done, total int) {
	s.mu.Lock()
	job.Progress = Progress{Done: done, Total: total}
	s.mu.Unlock()
}

// runJob drives one job through its attempts: deadline, retries with
// capped backoff, panic isolation, and drain/cancel classification.
func (s *Server) runJob(id string) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok || job.Status != StatusQueued || s.defunct {
		// Canceled while queued, already handled, or drained before it
		// began (it stays queued for the next start).
		s.mu.Unlock()
		return
	}
	timeout := s.cfg.JobTimeout
	if job.Spec.TimeoutMS > 0 {
		timeout = time.Duration(job.Spec.TimeoutMS) * time.Millisecond
	} else if job.Spec.TimeoutMS < 0 {
		timeout = 0
	}
	retries := s.cfg.Retries
	if job.Spec.Retries > 0 {
		retries = job.Spec.Retries
	} else if job.Spec.Retries < 0 {
		retries = 0
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	s.cancels[id] = cancel
	job.Status = StatusRunning
	s.mu.Unlock()
	defer func() {
		cancel()
		s.mu.Lock()
		delete(s.cancels, id)
		s.mu.Unlock()
	}()

	var lastErr error
	var attempts int
	for try := 0; try <= retries; try++ {
		if try > 0 {
			s.logf("job %s: attempt %d failed (%v); retrying after backoff", id, attempts, lastErr)
			if err := s.cfg.Backoff.Wait(ctx, try); err != nil {
				break // deadline or cancel during backoff; classified below
			}
		}
		s.mu.Lock()
		job.Attempts++
		attempts = job.Attempts
		if try > 0 {
			s.retriesTotal++
		}
		s.mu.Unlock()
		s.setStatus(job, StatusRunning, jobEvent{ID: id, Event: evStart, Attempts: attempts})

		result, err := s.execute(ctx, job)
		if err == nil {
			s.setStatus(job, StatusDone, jobEvent{ID: id, Event: evDone, Result: result})
			s.logf("job %s: done (attempt %d)", id, attempts)
			return
		}
		if errors.Is(err, chipletnet.ErrInterrupted) || errors.Is(err, errDrained) {
			s.setStatus(job, StatusQueued, jobEvent{ID: id, Event: evRequeue, Attempts: attempts})
			s.logf("job %s: drained mid-run; requeued (progress persisted)", id)
			return
		}
		if errors.Is(err, coord.ErrDegraded) {
			// The whole worker fleet died. Retrying immediately would just
			// burn the dead-fleet grace again; fail typed and keep the
			// partial frontier the survivors produced as the result
			// payload. Resubmitting once workers return serves the folded
			// records as cache hits and finishes the remainder.
			msg := fmt.Sprintf("degraded after %d attempts: %v", attempts, err)
			s.setStatus(job, StatusFailed, jobEvent{ID: id, Event: evFailed, Error: msg, Result: result})
			s.logf("job %s: %s", id, msg)
			return
		}
		if ctx.Err() != nil {
			break // deadline or client cancel; classified below
		}
		lastErr = err
	}

	switch {
	case ctx.Err() == context.Canceled:
		s.setStatus(job, StatusCanceled, jobEvent{ID: id, Event: evCanceled})
		s.logf("job %s: canceled", id)
	case ctx.Err() == context.DeadlineExceeded:
		msg := fmt.Sprintf("job deadline (%v) exceeded after %d attempts", timeout, attempts)
		s.setStatus(job, StatusFailed, jobEvent{ID: id, Event: evFailed, Error: msg})
		s.logf("job %s: %s", id, msg)
	default:
		msg := fmt.Sprintf("giving up after %d attempts: %v", attempts, lastErr)
		s.setStatus(job, StatusFailed, jobEvent{ID: id, Event: evFailed, Error: msg})
		s.logf("job %s: %s", id, msg)
	}
}

// execute runs one attempt of one job, dispatching on its type. A panic
// in the job body is recovered into an error (one bad candidate must
// never take the daemon down).
func (s *Server) execute(ctx context.Context, job *Job) (result json.RawMessage, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	switch job.Spec.Type {
	case JobSimulate:
		return s.executeSimulate(ctx, job)
	case JobSweep:
		return s.executeSweep(ctx, job)
	case JobDSE:
		return s.executeDSE(ctx, job)
	}
	return nil, fmt.Errorf("service: unknown job type %q", job.Spec.Type)
}

// checkpointPath is where a simulate job snapshots.
func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.cfg.Dir, "checkpoints", id+".ckpt")
}

// executeSimulate runs one configuration, checkpointing every
// CheckpointEvery cycles so a SIGKILLed daemon loses at most that much
// work, and snapshotting on drain. A checkpoint left by a previous
// attempt resumes bit-identically.
func (s *Server) executeSimulate(ctx context.Context, job *Job) (json.RawMessage, error) {
	s.setProgress(job, 0, 1)
	ckpt := s.checkpointPath(job.ID)
	ctrl := chipletnet.RunControl{
		CheckpointPath:  ckpt,
		CheckpointEvery: s.cfg.CheckpointEvery,
		Interrupt:       s.drainCh,
		Deadline:        ctx.Done(),
	}
	var res chipletnet.Result
	var err error
	if _, statErr := os.Stat(ckpt); statErr == nil {
		s.logf("job %s: resuming from checkpoint", job.ID)
		res, err = chipletnet.ResumeRun(ckpt, ctrl)
	} else {
		var sys *chipletnet.System
		if sys, err = chipletnet.Build(*job.Spec.Config); err != nil {
			return nil, err
		}
		res, err = sys.SimulateControlled(ctrl)
	}
	if errors.Is(err, chipletnet.ErrTimeout) && ctx.Err() != nil {
		return nil, fmt.Errorf("%w: %v", chipletnet.ErrCanceled, ctx.Err())
	}
	if err != nil {
		return nil, err
	}
	os.Remove(ckpt) // the snapshot is superseded by the result
	s.setProgress(job, 1, 1)
	return marshalResult(&res)
}

// executeSweep runs the rate ladder in one parallel batch; a drain
// cancels the batch and requeues the job (sweep runs are short relative
// to simulate jobs, so they re-run rather than checkpoint).
func (s *Server) executeSweep(ctx context.Context, job *Job) (json.RawMessage, error) {
	rates := append([]float64(nil), job.Spec.Rates...)
	sort.Float64s(rates)
	s.setProgress(job, 0, len(rates))
	cfgs := make([]chipletnet.Config, len(rates))
	for i, r := range rates {
		cfgs[i] = *job.Spec.Config
		cfgs[i].InjectionRate = r
	}
	dctx, stop := s.drainContext(ctx)
	defer stop()
	results, errs := chipletnet.RunEachCtx(dctx, cfgs)
	var joined []error
	for i, e := range errs {
		if e != nil {
			joined = append(joined, fmt.Errorf("rate %g: %w", rates[i], e))
		}
	}
	if err := errors.Join(joined...); err != nil {
		if errors.Is(err, chipletnet.ErrCanceled) && s.Draining() && ctx.Err() == nil {
			return nil, errDrained
		}
		if errors.Is(err, chipletnet.ErrCanceled) && ctx.Err() != nil {
			return nil, fmt.Errorf("%w: %v", chipletnet.ErrCanceled, ctx.Err())
		}
		return nil, err
	}
	s.setProgress(job, len(rates), len(rates))
	return marshalResult(&SweepResult{Rates: rates, Results: results})
}

// executeDSE plans and evaluates an exploration. Every finished
// candidate lands in the sharded cache before the next begins, so a
// crash or drain loses at most one in-flight evaluation and a resumed
// job serves the journaled-done work entirely from cache.
func (s *Server) executeDSE(ctx context.Context, job *Job) (json.RawMessage, error) {
	params := dse.DefaultParams()
	if job.Spec.Params != nil {
		params = *job.Spec.Params
	}
	plan, err := dse.NewPlan(*job.Spec.Space, params, s.cache)
	if err != nil {
		return nil, err
	}
	total := len(plan.Candidates)
	s.setProgress(job, len(plan.Hits), total)
	s.countCacheHits(len(plan.Hits))
	if s.cfg.Coordinator != nil && len(plan.Pending) > 0 {
		return s.executeDSECoordinated(ctx, job, plan)
	}
	recs := append([]dse.Record(nil), plan.Hits...)
	for i, ev := range plan.Pending {
		select {
		case <-s.drainCh:
			return nil, errDrained
		default:
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: %v", chipletnet.ErrCanceled, ctx.Err())
		}
		rec, err := ev.RunCtx(ctx)
		if err != nil {
			if errors.Is(err, chipletnet.ErrCanceled) && ctx.Err() != nil {
				return nil, fmt.Errorf("%w: %v", chipletnet.ErrCanceled, ctx.Err())
			}
			return nil, err
		}
		if err := s.cache.Put(rec); err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		s.setProgress(job, len(plan.Hits)+i+1, total)
	}
	outcome, err := dse.Collect(plan, recs)
	if err != nil {
		return nil, err
	}
	return json.Marshal(DSEResult{
		Enumerated: len(plan.Candidates) + len(plan.Rejected) + len(plan.Pruned),
		Pruned:     len(plan.Pruned),
		Rejected:   len(plan.Rejected),
		Candidates: len(outcome.Records),
		Simulated:  outcome.Simulated,
		CacheHits:  outcome.CacheHits,
		Frontier:   outcome.Frontier,
	})
}

// executeDSECoordinated fans plan.Pending out across the coordinator's
// worker fleet. The daemon keeps planning, cache-hit serving and result
// assembly; only the simulations travel. Records fold into s.cache as
// workers report them, so a drain or crash mid-campaign costs nothing
// already folded — the resumed job replans and serves it as hits.
func (s *Server) executeDSECoordinated(ctx context.Context, job *Job, plan *dse.Plan) (json.RawMessage, error) {
	dctx, cancel := s.drainContext(ctx)
	defer cancel()
	total := len(plan.Candidates)
	recs, simulated, err := s.cfg.Coordinator.RunCampaign(dctx, job.ID, plan, s.cache, func(done, _ int) {
		s.setProgress(job, len(plan.Hits)+done, total)
	})
	// Worker-local cache hits are hits too: the fleet returned records it
	// did not have to simulate.
	s.countCacheHits(len(recs) - simulated)
	if err != nil {
		switch {
		case errors.Is(err, coord.ErrDegraded):
			partial, merr := s.degradedResult(plan, recs, simulated)
			if merr != nil {
				return nil, errors.Join(err, merr)
			}
			return partial, err
		case dctx.Err() != nil && ctx.Err() == nil:
			return nil, errDrained
		case ctx.Err() != nil:
			return nil, fmt.Errorf("%w: %v", chipletnet.ErrCanceled, ctx.Err())
		}
		return nil, err
	}
	outcome, err := dse.Collect(plan, append(append([]dse.Record(nil), plan.Hits...), recs...))
	if err != nil {
		return nil, err
	}
	return json.Marshal(DSEResult{
		Enumerated: len(plan.Candidates) + len(plan.Rejected) + len(plan.Pruned),
		Pruned:     len(plan.Pruned),
		Rejected:   len(plan.Rejected),
		Candidates: len(outcome.Records),
		Simulated:  simulated,
		CacheHits:  total - simulated,
		Frontier:   outcome.Frontier,
	})
}

// degradedResult assembles the partial payload of a degraded campaign:
// the frontier over every record that did finish, flagged Degraded with
// the missing count, so the failure still reports everything it learned.
func (s *Server) degradedResult(plan *dse.Plan, recs []dse.Record, simulated int) (json.RawMessage, error) {
	all := append(append([]dse.Record(nil), plan.Hits...), recs...)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return json.Marshal(DSEResult{
		Enumerated: len(plan.Candidates) + len(plan.Rejected) + len(plan.Pruned),
		Pruned:     len(plan.Pruned),
		Rejected:   len(plan.Rejected),
		Candidates: len(plan.Candidates),
		Simulated:  simulated,
		CacheHits:  len(all) - simulated,
		Degraded:   true,
		Missing:    len(plan.Pending) - len(recs),
		Frontier:   dse.Frontier(all),
	})
}

// countCacheHits bumps the /metrics cache-hit counter.
func (s *Server) countCacheHits(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.cacheHits += n
	s.mu.Unlock()
}

// marshalResult renders a simulation result as JSON with non-finite
// floats zeroed: an empty measurement window legitimately yields NaN
// latencies (see internal/dse's identical probe fallback), and
// encoding/json refuses NaN/Inf outright.
func marshalResult(v any) (json.RawMessage, error) {
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Pointer {
		jsonSafe(rv.Elem())
	}
	return json.Marshal(v)
}

// jsonSafe zeroes NaN/Inf floats in place, recursively.
func jsonSafe(v reflect.Value) {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		if f := v.Float(); math.IsNaN(f) || math.IsInf(f, 0) {
			v.SetFloat(0)
		}
	case reflect.Pointer:
		if !v.IsNil() {
			jsonSafe(v.Elem())
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				jsonSafe(f)
			}
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			jsonSafe(v.Index(i))
		}
	}
}

// drainContext derives a context canceled either with its parent or when
// the server drains, so batch executors stop promptly on SIGTERM.
func (s *Server) drainContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	go func() {
		select {
		case <-s.drainCh:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}
