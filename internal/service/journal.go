package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"chipletnet/internal/jsonl"
)

// Job journal event names. The journal is an append-only JSONL event log
// (one fsynced line per state transition), so the complete job table —
// queue included — is reconstructible after any crash by replaying it.
const (
	evSubmit   = "submit"   // carries the JobSpec
	evStart    = "start"    // an attempt began; carries the cumulative attempt count
	evRequeue  = "requeue"  // a drain interrupted the job; it goes back to the queue
	evDone     = "done"     // carries the result payload
	evFailed   = "failed"   // terminal failure; carries the error text
	evCanceled = "canceled" // canceled by the client
)

// jobEvent is one line of the job journal.
type jobEvent struct {
	ID       string
	Event    string
	Spec     *JobSpec        `json:",omitempty"`
	Attempts int             `json:",omitempty"`
	Error    string          `json:",omitempty"`
	Result   json.RawMessage `json:",omitempty"`
}

// jobLog is the fsynced append-only event journal. Like every JSONL
// store in this repository it tolerates a torn final line (crash
// mid-append) and quarantines corrupt interior lines to a .rej sidecar
// instead of refusing the file (see internal/jsonl).
type jobLog struct {
	mu sync.Mutex
	f  *os.File
}

// openJobLog opens (creating if needed) the journal at path and returns
// the replayable events plus the count of quarantined lines.
func openJobLog(path string) (*jobLog, []jobEvent, int, error) {
	var events []jobEvent
	quarantined, err := jsonl.Load(path, func(line []byte) error {
		var e jobEvent
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		if e.ID == "" || e.Event == "" {
			return errors.New("service: journal line without id/event")
		}
		events = append(events, e)
		return nil
	})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("service: job journal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	return &jobLog{f: f}, events, quarantined, nil
}

// record appends one event and syncs it to disk before returning, so a
// crash immediately after a transition cannot lose it.
func (l *jobLog) record(e jobEvent) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close closes the underlying file.
func (l *jobLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
