package fault

import (
	"fmt"
	"sort"

	"chipletnet/internal/checkpoint"
)

// Snapshot captures the engine's schedule position, drain queue, delivery
// accounting, event log, and per-link corruption stream positions. The
// schedule itself and the LinkRel attachments are not captured — New
// rebuilds them deterministically from the same Config.
func (e *Engine) Snapshot() *checkpoint.FaultState {
	st := &checkpoint.FaultState{
		NextEvent: e.next,
		Dropped:   e.dropped,
		Stats: checkpoint.FaultStatsState{
			CorruptedFlits:      e.Stats.CorruptedFlits,
			CorruptedBundles:    e.Stats.CorruptedBundles,
			Retransmissions:     e.Stats.Retransmissions,
			Nacks:               e.Stats.Nacks,
			LinksKilled:         e.Stats.LinksKilled,
			LinksDegraded:       e.Stats.LinksDegraded,
			LinksDecommissioned: e.Stats.LinksDecommissioned,
			ReroutedPackets:     e.Stats.ReroutedPackets,
			DeliveredPackets:    e.Stats.DeliveredPackets,
			DuplicatePackets:    e.Stats.DuplicatePackets,
			LostPackets:         e.Stats.LostPackets,
		},
	}
	for _, pd := range e.pending {
		st.Pending = append(st.Pending, checkpoint.CrossRef{A: pd.a, B: pd.b})
	}
	for id := range e.seen {
		st.Seen = append(st.Seen, id)
	}
	sort.Slice(st.Seen, func(i, j int) bool { return st.Seen[i] < st.Seen[j] })
	for _, r := range e.Log {
		st.Log = append(st.Log, checkpoint.FaultRecordState{
			Cycle: r.Cycle, Kind: string(r.Kind), A: r.A, B: r.B, Detail: r.Detail,
		})
	}
	for _, ls := range e.streams {
		st.Streams = append(st.Streams, checkpoint.LinkStreamState{LinkID: ls.linkID, State: ls.r.State()})
	}
	return st
}

// Restore lays snapshot state back onto an engine freshly created by New
// from the same Config against the same rebuilt system. Call after Attach
// (which allocates the delivery-tracking set this fills).
func (e *Engine) Restore(st *checkpoint.FaultState) error {
	if st.NextEvent < 0 || st.NextEvent > len(e.events) {
		return fmt.Errorf("%w: schedule position %d of %d events",
			checkpoint.ErrMismatch, st.NextEvent, len(e.events))
	}
	if len(st.Streams) != len(e.streams) {
		return fmt.Errorf("%w: snapshot has %d corruption streams, engine has %d",
			checkpoint.ErrMismatch, len(st.Streams), len(e.streams))
	}
	for i, ss := range st.Streams {
		if e.streams[i].linkID != ss.LinkID {
			return fmt.Errorf("%w: corruption stream %d covers link %d in snapshot, link %d in engine",
				checkpoint.ErrMismatch, i, ss.LinkID, e.streams[i].linkID)
		}
		e.streams[i].r.SetState(ss.State)
	}
	e.next = st.NextEvent
	e.pending = nil
	for _, cr := range st.Pending {
		la, lb := e.crossLinks(cr.A, cr.B)
		if la == nil && lb == nil {
			return fmt.Errorf("%w: pending drain references missing channel %d-%d",
				checkpoint.ErrMismatch, cr.A, cr.B)
		}
		e.pending = append(e.pending, pendingDrain{a: cr.A, b: cr.B, la: la, lb: lb})
	}
	if e.seen == nil {
		e.seen = make(map[uint64]struct{}, len(st.Seen))
	}
	for _, id := range st.Seen {
		e.seen[id] = struct{}{}
	}
	e.dropped = st.Dropped
	e.Log = nil
	for _, r := range st.Log {
		e.Log = append(e.Log, Record{Cycle: r.Cycle, Kind: Kind(r.Kind), A: r.A, B: r.B, Detail: r.Detail})
	}
	e.Stats = Stats{
		CorruptedFlits:      st.Stats.CorruptedFlits,
		CorruptedBundles:    st.Stats.CorruptedBundles,
		Retransmissions:     st.Stats.Retransmissions,
		Nacks:               st.Stats.Nacks,
		LinksKilled:         st.Stats.LinksKilled,
		LinksDegraded:       st.Stats.LinksDegraded,
		LinksDecommissioned: st.Stats.LinksDecommissioned,
		ReroutedPackets:     st.Stats.ReroutedPackets,
		DeliveredPackets:    st.Stats.DeliveredPackets,
		DuplicatePackets:    st.Stats.DuplicatePackets,
		LostPackets:         st.Stats.LostPackets,
	}
	return nil
}
