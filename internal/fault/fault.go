// Package fault is the deterministic fault-injection engine: it drives
// transient flit corruption (per-flit bit-error rate), scheduled permanent
// link/interface failures, and link derating (bandwidth/latency) against a
// built system, and coordinates the two recovery layers that absorb them.
//
// Layer 1 is link-level reliability in internal/router (router.LinkRel):
// CRC-tagged sequence-numbered flit bundles, cumulative ack/nack, go-back-N
// retransmission with capped exponential backoff, and credit reconciliation
// so a dropped flit never leaks a credit. The engine attaches a LinkRel with
// a seeded per-link corruption stream to every link covered by a BER.
//
// Layer 2 is graceful degradation at the chiplet layer. A permanent failure
// goes through quiesce-then-decommission: the interface pair is first
// condemned (topology.CondemnCrossLink) — removed from group membership so
// interleaving re-weights new traffic across the survivors, while the
// physical channel stays usable as a fallback for packets that had already
// committed to a ring ride past every survivor. The degraded topology is
// immediately re-certified deadlock-free by internal/verify (refusal is a
// typed error, never a hang), and once no stranded traffic remains the
// interface is decommissioned for good.
//
// Everything is seeded through internal/rng: the same Config and seed
// reproduce the same faults, retransmissions and recovery bit-for-bit, and
// a disabled Config leaves the simulator's hot paths untouched.
package fault

import (
	"errors"
	"fmt"
	"sort"

	"chipletnet/internal/packet"
	"chipletnet/internal/rng"
	"chipletnet/internal/router"
	"chipletnet/internal/topology"
	"chipletnet/internal/verify"
)

// Kind classifies fault events and log records.
type Kind string

const (
	// KindCorrupt is transient in-transit corruption caught by the
	// receiver's CRC (log records only; corruption is drawn from the BER,
	// not scheduled).
	KindCorrupt Kind = "corrupt"
	// KindLinkKill permanently fails a chiplet-to-chiplet channel at a
	// scheduled cycle.
	KindLinkKill Kind = "link-kill"
	// KindLinkDegrade derates a channel's bandwidth and/or latency at a
	// scheduled cycle.
	KindLinkDegrade Kind = "link-degrade"
	// KindDecommission records that a killed channel finished draining and
	// was fully removed (log records only).
	KindDecommission Kind = "link-decommissioned"
	// KindReverify records a successful deadlock-freedom re-certification
	// of the degraded topology (log records only).
	KindReverify Kind = "reverify"
)

// Event is one scheduled fault.
type Event struct {
	// Cycle is when the fault strikes (>= 1).
	Cycle int64
	// Kind is KindLinkKill or KindLinkDegrade.
	Kind Kind
	// A and B are the endpoint node ids of the chiplet-to-chiplet channel
	// (either order).
	A, B int
	// BandwidthDiv divides the link bandwidth (floored at 1 flit/cycle)
	// and LatencyMult multiplies the link latency; KindLinkDegrade only.
	// Zero means "leave unchanged".
	BandwidthDiv int
	LatencyMult  int
}

// Config parameterizes the engine. The zero value disables everything.
type Config struct {
	// BER is the per-flit corruption probability on chiplet-to-chiplet
	// links; OnChipBER the same for on-chip links. Either > 0 attaches the
	// link-level reliability protocol to the covered links.
	BER       float64
	OnChipBER float64
	// Seed roots the per-link corruption streams (independent of, and not
	// perturbing, the traffic streams).
	Seed uint64
	// Events is the fault schedule (applied in cycle order).
	Events []Event
	// RetransmitTimeout is the sender ack timeout in cycles; 0 derives
	// 4*latency+16 per link. BackoffMax caps the exponential retransmission
	// backoff; 0 means 256 cycles (well below the deadlock watchdog).
	RetransmitTimeout int64
	BackoffMax        int64
	// VerifyOff skips the mid-run deadlock-freedom re-certification after
	// permanent failures. VerifyMaxDests bounds its cost (0 means 8
	// sampled destinations).
	VerifyOff      bool
	VerifyMaxDests int
	// LogCap bounds the corruption records kept in the event log
	// (0 means 64); structural records (kill/degrade/decommission/
	// reverify) are always kept.
	LogCap int
}

// Enabled reports whether the configuration injects any fault.
func (c Config) Enabled() bool {
	return c.BER > 0 || c.OnChipBER > 0 || len(c.Events) > 0
}

// Record is one entry of the fault event log, JSON-ready for Result
// serialization.
type Record struct {
	Cycle  int64  `json:"cycle"`
	Kind   Kind   `json:"kind"`
	A      int    `json:"a,omitempty"`
	B      int    `json:"b,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Stats summarizes the faults injected and the recovery work they caused.
type Stats struct {
	// Layer-1 counters, summed over all protected links.
	CorruptedFlits   int64 `json:"corrupted_flits"`
	CorruptedBundles int64 `json:"corrupted_bundles"`
	Retransmissions  int64 `json:"retransmissions"`
	Nacks            int64 `json:"nacks"`
	// Layer-2 counters.
	LinksKilled         int   `json:"links_killed"`
	LinksDegraded       int   `json:"links_degraded"`
	LinksDecommissioned int   `json:"links_decommissioned"`
	ReroutedPackets     int64 `json:"rerouted_packets"`
	// End-to-end delivery accounting (sequence check at the sinks).
	DeliveredPackets  int `json:"delivered_packets"`
	DuplicatePackets  int `json:"duplicate_packets"`
	LostPackets       int `json:"lost_packets"`
}

// Typed failure classes. Errors returned by the engine wrap one of these;
// test with errors.Is.
var (
	// ErrPartitioned: a scheduled kill would disconnect an interface group
	// (no routable survivor), so the system would partition.
	ErrPartitioned = errors.New("fault: failure would partition the network")
	// ErrDegradedUnsafe: the degraded topology failed deadlock-freedom
	// re-certification; continuing could hang.
	ErrDegradedUnsafe = errors.New("fault: degraded topology is not certified deadlock-free")
	// ErrBadSchedule: the fault schedule itself is invalid (unknown link,
	// duplicate kill, bad parameters).
	ErrBadSchedule = errors.New("fault: invalid fault schedule")
)

// ExitPlanner is the routing-side hook the engine needs to decommission
// killed interfaces safely: which group an in-flight packet exits its
// current chiplet through. The grouped MFR routing implements it; the flat
// 2D-mesh baseline does not (it has no grouped redundancy to degrade onto),
// so kill events are rejected there.
type ExitPlanner interface {
	ExitGroup(chiplet int, p *packet.Packet) (group int, ok bool)
}

// Engine applies one fault schedule to one built system. Create with New,
// chain into the delivery path with Attach, call Step every cycle before
// Fabric.Step, and Finish after the run.
type Engine struct {
	// Log is the fault event log (corruption records capped at LogCap).
	Log []Record
	// Stats accumulates counters; Layer-1 sums are filled in by Finish.
	Stats Stats

	sys     *topology.System
	cfg     Config
	planner ExitPlanner
	events  []Event
	next    int
	pending []pendingDrain
	seen    map[uint64]struct{}
	dropped int // corruption records not logged (past LogCap)

	// streams holds the per-link corruption streams in attach order
	// (ascending link id). The LinkRel Corrupt closures draw from these;
	// keeping them addressable here lets a checkpoint capture and restore
	// their positions without touching the closures.
	streams []linkStream
}

// linkStream pairs a protected link with its corruption stream.
type linkStream struct {
	linkID int
	r      *rng.Rand
}

// pendingDrain tracks one condemned channel until it quiesces.
type pendingDrain struct {
	a, b   int
	la, lb *router.Link
}

// New validates the schedule, snapshots the pre-fault group membership,
// and attaches the reliability protocol to every link a BER covers.
func New(sys *topology.System, cfg Config) (*Engine, error) {
	if cfg.BER < 0 || cfg.BER >= 1 || cfg.OnChipBER < 0 || cfg.OnChipBER >= 1 {
		return nil, fmt.Errorf("%w: BER must be in [0,1), got %g off-chip / %g on-chip",
			ErrBadSchedule, cfg.BER, cfg.OnChipBER)
	}
	if cfg.LogCap == 0 {
		cfg.LogCap = 64
	}
	if cfg.VerifyMaxDests == 0 {
		cfg.VerifyMaxDests = 8
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 256
	}
	e := &Engine{sys: sys, cfg: cfg}

	cross := make(map[[2]int]bool)
	for _, p := range sys.CrossPairs() {
		cross[[2]int{p.A, p.B}] = true
	}
	killed := make(map[[2]int]bool)
	hasKill := false
	for _, ev := range cfg.Events {
		key := [2]int{min(ev.A, ev.B), max(ev.A, ev.B)}
		switch ev.Kind {
		case KindLinkKill, KindLinkDegrade:
			if !cross[key] {
				return nil, fmt.Errorf("%w: nodes %d and %d do not share a chiplet-to-chiplet channel",
					ErrBadSchedule, ev.A, ev.B)
			}
		default:
			return nil, fmt.Errorf("%w: event kind %q is not schedulable", ErrBadSchedule, ev.Kind)
		}
		if ev.Cycle < 1 {
			return nil, fmt.Errorf("%w: event cycle must be >= 1, got %d", ErrBadSchedule, ev.Cycle)
		}
		if ev.Kind == KindLinkKill {
			if killed[key] {
				return nil, fmt.Errorf("%w: link %d-%d killed twice", ErrBadSchedule, key[0], key[1])
			}
			killed[key] = true
			hasKill = true
		}
		if ev.Kind == KindLinkDegrade && (ev.BandwidthDiv < 0 || ev.LatencyMult < 0) {
			return nil, fmt.Errorf("%w: negative derating on link %d-%d", ErrBadSchedule, ev.A, ev.B)
		}
	}
	if hasKill {
		planner, ok := sys.Fabric.Routing.(ExitPlanner)
		if !ok {
			return nil, fmt.Errorf("%w: topology %v has no interface-group redundancy to absorb a permanent failure",
				ErrBadSchedule, sys.Kind)
		}
		e.planner = planner
		sys.SnapshotGroups()
	}
	e.events = append([]Event(nil), cfg.Events...)
	sort.SliceStable(e.events, func(i, j int) bool { return e.events[i].Cycle < e.events[j].Cycle })

	e.protectLinks()
	return e, nil
}

// protectLinks attaches a LinkRel with a seeded corruption stream to every
// link the configured BERs cover.
func (e *Engine) protectLinks() {
	if e.cfg.BER <= 0 && e.cfg.OnChipBER <= 0 {
		return
	}
	root := rng.New(e.cfg.Seed ^ 0xfa_017_c0de)
	for _, l := range e.sys.Fabric.Links {
		ber := e.cfg.OnChipBER
		if l.OffChip {
			ber = e.cfg.BER
		}
		if ber <= 0 {
			continue
		}
		timeout := e.cfg.RetransmitTimeout
		if timeout == 0 {
			timeout = 4*int64(l.Latency) + 16
		}
		stream := root.Split(uint64(l.ID))
		e.streams = append(e.streams, linkStream{linkID: l.ID, r: stream})
		link, p := l, ber
		l.Rel = &router.LinkRel{
			Timeout:    timeout,
			BackoffMax: e.cfg.BackoffMax,
			Corrupt: func(now int64, n int) int {
				c := 0
				for i := 0; i < n; i++ {
					if stream.Bernoulli(p) {
						c++
					}
				}
				if c > 0 {
					e.record(Record{
						Cycle: now, Kind: KindCorrupt,
						A: link.Src.Node, B: link.Dst.Node,
						Detail: fmt.Sprintf("%d of %d flits corrupted in transit", c, n),
					})
				}
				return c
			},
		}
	}
}

// Attach chains the engine's delivery checks into the fabric's sink:
// duplicate detection by packet id (the sequence check of exactly-once
// delivery) and rerouted-packet accounting. Call after the statistics
// collector has installed its sink.
func (e *Engine) Attach(f *router.Fabric) {
	prev := f.Sink
	e.seen = make(map[uint64]struct{}, 4096)
	f.Sink = func(p *packet.Packet, now int64) {
		if _, dup := e.seen[p.ID]; dup {
			e.Stats.DuplicatePackets++
		} else {
			e.seen[p.ID] = struct{}{}
		}
		if p.Rerouted {
			e.Stats.ReroutedPackets++
		}
		if prev != nil {
			prev(p, now)
		}
	}
}

// Step applies the schedule's due events and polls condemned channels for
// drain completion. Call once per cycle, before Fabric.Step. A non-nil
// error (wrapping ErrPartitioned or ErrDegradedUnsafe) means the run must
// stop cleanly.
func (e *Engine) Step(now int64) error {
	for e.next < len(e.events) && e.events[e.next].Cycle <= now {
		ev := e.events[e.next]
		e.next++
		var err error
		switch ev.Kind {
		case KindLinkKill:
			err = e.kill(now, ev)
		case KindLinkDegrade:
			err = e.degrade(now, ev)
		}
		if err != nil {
			return err
		}
	}
	e.pollDrains(now)
	return nil
}

// kill condemns the channel, re-weights traffic onto the survivors, and
// re-certifies the degraded topology before the simulation resumes.
func (e *Engine) kill(now int64, ev Event) error {
	if err := e.sys.CondemnCrossLink(ev.A, ev.B); err != nil {
		return fmt.Errorf("%w: killing link %d-%d at cycle %d: %v",
			ErrPartitioned, ev.A, ev.B, now, err)
	}
	e.Stats.LinksKilled++
	e.record(Record{
		Cycle: now, Kind: KindLinkKill, A: ev.A, B: ev.B,
		Detail: "interface condemned; interleaving re-weighted onto group survivors",
	})
	la, lb := e.crossLinks(ev.A, ev.B)
	e.pending = append(e.pending, pendingDrain{a: ev.A, b: ev.B, la: la, lb: lb})
	if !e.cfg.VerifyOff {
		rep := verify.Run(e.sys, verify.Options{MaxDests: e.cfg.VerifyMaxDests})
		if err := rep.Err(); err != nil {
			return fmt.Errorf("%w: after killing link %d-%d at cycle %d: %v",
				ErrDegradedUnsafe, ev.A, ev.B, now, err)
		}
		e.record(Record{
			Cycle: now, Kind: KindReverify, A: ev.A, B: ev.B,
			Detail: "degraded topology re-certified deadlock-free",
		})
	}
	return nil
}

// degrade derates both directions of the channel in place.
func (e *Engine) degrade(now int64, ev Event) error {
	la, lb := e.crossLinks(ev.A, ev.B)
	if la == nil || lb == nil {
		return fmt.Errorf("%w: no channel between %d and %d", ErrBadSchedule, ev.A, ev.B)
	}
	for _, l := range [2]*router.Link{la, lb} {
		if ev.BandwidthDiv > 1 {
			l.Bandwidth = max(1, l.Bandwidth/ev.BandwidthDiv)
		}
		if ev.LatencyMult > 1 {
			l.Latency *= ev.LatencyMult
		}
	}
	e.Stats.LinksDegraded++
	e.record(Record{
		Cycle: now, Kind: KindLinkDegrade, A: ev.A, B: ev.B,
		Detail: fmt.Sprintf("bandwidth %d flits/cycle, latency %d cycles", la.Bandwidth, la.Latency),
	})
	return nil
}

// crossLinks returns the two directed links of the channel between a and b
// (a->b, b->a), nil when absent.
func (e *Engine) crossLinks(a, b int) (la, lb *router.Link) {
	f := e.sys.Fabric
	if pa := e.sys.CrossPort(a); pa >= 0 {
		if l := f.Routers[a].Out[pa].Link; l != nil && l.Dst.Node == b {
			la = l
		}
	}
	if pb := e.sys.CrossPort(b); pb >= 0 {
		if l := f.Routers[b].Out[pb].Link; l != nil && l.Dst.Node == a {
			lb = l
		}
	}
	return la, lb
}

// pollDrains decommissions condemned channels whose stranded traffic has
// fully drained.
func (e *Engine) pollDrains(now int64) {
	if len(e.pending) == 0 {
		return
	}
	kept := e.pending[:0]
	for _, pd := range e.pending {
		if e.drained(pd) {
			e.sys.DecommissionCrossLink(pd.a, pd.b)
			e.Stats.LinksDecommissioned++
			e.record(Record{
				Cycle: now, Kind: KindDecommission, A: pd.a, B: pd.b,
				Detail: "stranded traffic drained; interface fully decommissioned",
			})
		} else {
			kept = append(kept, pd)
		}
	}
	e.pending = kept
}

// drained reports whether nothing in flight still needs the condemned
// channel: both directions quiesced, no packet mid-transfer onto either,
// and no packet buffered past every surviving member of either endpoint's
// group that must exit through it.
func (e *Engine) drained(pd pendingDrain) bool {
	for _, l := range [2]*router.Link{pd.la, pd.lb} {
		if l == nil {
			continue
		}
		if !l.Quiesced() {
			return false
		}
		for _, owner := range l.Src.Out[l.SrcPort].Owner {
			if owner != nil {
				return false
			}
		}
	}
	return !e.stranded(pd.a) && !e.stranded(pd.b)
}

// stranded reports whether some in-flight packet on endpoint's chiplet has
// overshot every surviving member of its exit group and therefore still
// needs the condemned interface as its fallback exit: a packet buffered at
// (or on a wire into) a ring position past the group's last survivor whose
// exit group is the endpoint's.
func (e *Engine) stranded(endpoint int) bool {
	sys := e.sys
	n := &sys.Nodes[endpoint]
	c, g := n.Chiplet, n.Group
	maxPos := -1
	for _, id := range sys.Chiplets[c].Groups[g] {
		if pos := sys.Nodes[id].RingPos; pos > maxPos {
			maxPos = pos
		}
	}
	ring := sys.Chiplets[c].Ring
	found := false
	check := func(p *packet.Packet) {
		if !found {
			if g2, ok := e.planner.ExitGroup(c, p); ok && g2 == g {
				found = true
			}
		}
	}
	for pos := maxPos + 1; pos < len(ring) && !found; pos++ {
		r := sys.Fabric.Routers[ring[pos]]
		for _, ip := range r.In {
			for _, vc := range ip.VCs {
				vc.ForEachPacket(check)
			}
			if ip.Link != nil {
				ip.Link.ForEachInFlight(check)
			}
		}
	}
	return found
}

// Finish completes the statistics after the run: totalInjected is the
// number of packets the traffic generator created (measured or not),
// inFlight the packets still in the network when simulation stopped.
func (e *Engine) Finish(totalInjected uint64, inFlight int) {
	e.Stats.DeliveredPackets = len(e.seen)
	e.Stats.LostPackets = int(totalInjected) - len(e.seen) - inFlight
	for _, l := range e.sys.Fabric.Links {
		if l.Rel == nil {
			continue
		}
		e.Stats.CorruptedFlits += l.Rel.CorruptedFlits
		e.Stats.CorruptedBundles += l.Rel.CorruptedBundles
		e.Stats.Retransmissions += l.Rel.Retransmissions
		e.Stats.Nacks += l.Rel.Nacks
	}
	if e.dropped > 0 {
		e.Log = append(e.Log, Record{
			Kind:   KindCorrupt,
			Detail: fmt.Sprintf("%d further corruption events not logged (LogCap %d)", e.dropped, e.cfg.LogCap),
		})
	}
}

// record appends to the event log; corruption records are capped at
// LogCap, structural records always kept.
func (e *Engine) record(r Record) {
	if r.Kind == KindCorrupt && len(e.Log) >= e.cfg.LogCap {
		e.dropped++
		return
	}
	e.Log = append(e.Log, r)
}
