package fault

import (
	"errors"
	"testing"

	"chipletnet/internal/chiplet"
	"chipletnet/internal/routing"
	"chipletnet/internal/topology"
)

func buildCube(t *testing.T) *topology.System {
	t.Helper()
	geo, err := chiplet.New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := topology.BuildHypercube(geo, 3, topology.LinkParams{
		VCs: 2, InternalBufFlits: 8, InterfaceBufFlits: 16,
		OnChipBW: 1, OffChipBW: 1, OnChipLatency: 1, OffChipLatency: 2, EjectBW: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.New(sys, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Fabric.Routing = rt
	return sys
}

// TestScheduleValidation: every malformed schedule must be rejected at New
// with ErrBadSchedule, before any cycle runs.
func TestScheduleValidation(t *testing.T) {
	sys := buildCube(t)
	pair := sys.CrossPairs()[0]
	cases := []struct {
		name string
		cfg  Config
	}{
		{"ber out of range", Config{BER: 1.5}},
		{"negative ber", Config{BER: -0.1}},
		{"not a cross link", Config{Events: []Event{{Cycle: 10, Kind: KindLinkKill, A: 0, B: 1}}}},
		{"unknown kind", Config{Events: []Event{{Cycle: 10, Kind: Kind("melt"), A: pair.A, B: pair.B}}}},
		{"cycle zero", Config{Events: []Event{{Cycle: 0, Kind: KindLinkKill, A: pair.A, B: pair.B}}}},
		{"double kill", Config{Events: []Event{
			{Cycle: 10, Kind: KindLinkKill, A: pair.A, B: pair.B},
			{Cycle: 20, Kind: KindLinkKill, A: pair.B, B: pair.A},
		}}},
		{"negative derating", Config{Events: []Event{
			{Cycle: 10, Kind: KindLinkDegrade, A: pair.A, B: pair.B, BandwidthDiv: -2},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(buildCube(t), tc.cfg); !errors.Is(err, ErrBadSchedule) {
				t.Fatalf("got %v, want ErrBadSchedule", err)
			}
		})
	}
}

// TestValidScheduleAccepted: a well-formed schedule builds an engine with
// the reliability protocol attached to exactly the covered links.
func TestValidScheduleAccepted(t *testing.T) {
	sys := buildCube(t)
	pair := sys.CrossPairs()[0]
	eng, err := New(sys, Config{
		BER: 1e-4,
		Events: []Event{
			{Cycle: 100, Kind: KindLinkKill, A: pair.A, B: pair.B},
			{Cycle: 50, Kind: KindLinkDegrade, A: pair.A, B: pair.B, BandwidthDiv: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Events are applied in cycle order regardless of schedule order.
	if eng.events[0].Kind != KindLinkDegrade || eng.events[1].Kind != KindLinkKill {
		t.Errorf("events not sorted by cycle: %+v", eng.events)
	}
	// Off-chip BER only: cross links protected, on-chip links bare.
	for _, l := range sys.Fabric.Links {
		if l.OffChip && l.Rel == nil {
			t.Errorf("off-chip link %d unprotected under BER %g", l.ID, 1e-4)
		}
		if !l.OffChip && l.Rel != nil {
			t.Errorf("on-chip link %d protected without OnChipBER", l.ID)
		}
	}
	// Kills require the snapshot for rerouted-packet accounting.
	if sys.BaseGroups == nil {
		t.Error("group membership not snapshotted despite a kill schedule")
	}
}

// TestDisabledConfig: the zero Config reports disabled and attaches nothing.
func TestDisabledConfig(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero Config reports enabled")
	}
	sys := buildCube(t)
	if _, err := New(sys, Config{}); err != nil {
		t.Fatal(err)
	}
	for _, l := range sys.Fabric.Links {
		if l.Rel != nil {
			t.Fatalf("link %d protected under a disabled config", l.ID)
		}
	}
}
