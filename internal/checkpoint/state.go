package checkpoint

import "chipletnet/internal/packet"

// State is the complete dynamic state of one simulation at a cycle
// boundary: everything Simulate touches between cycles, captured so that a
// run restored from it finishes bit-identical to the uninterrupted run.
// Structural state (topology wiring, routing tables, traffic patterns) is
// NOT stored — it is rebuilt deterministically from the embedded Config —
// only the mutable state layered on top of it is.
type State struct {
	// Config is the root-package Config, JSON-encoded (the checkpoint
	// package cannot import the root package). Resume rebuilds the system
	// from it, so a snapshot is self-contained.
	Config []byte
	// Cycle is the last completed simulation cycle; resume continues at
	// Cycle+1.
	Cycle int64

	// Packets is the table of every packet referenced anywhere in the
	// snapshot (buffers, wires, replay windows), serialized once each;
	// all other sections reference packets by table index.
	Packets []PacketState

	Fabric FabricState
	Gen    GeneratorState
	Stats  CollectorState
	Topo   TopoState
	// Fault is nil when the run has no fault engine.
	Fault *FaultState
}

// PacketState mirrors packet.Packet field-for-field.
type PacketState struct {
	ID       uint64
	MsgID    uint64
	SeqInMsg int
	Src, Dst int
	Tag      int
	Len      int

	CreatedAt   int64
	InjectedAt  int64
	DeliveredAt int64

	Class uint8
	Dep   int64

	Measured bool
	Rerouted bool

	RouterHops  int
	OnChipHops  int
	OffChipHops int
}

// FabricState is the dynamic state of router.Fabric.
type FabricState struct {
	Now          int64
	LastProgress int64
	InFlight     int
	Routers      []RouterState
	Links        []LinkState
}

// RouterState is the dynamic state of one router. The pipeline-eligibility
// counter ("waiting") is recomputed on restore from the VC states.
type RouterState struct {
	VAOffset int
	In       []InPortState
	Out      []OutPortState
}

// InPortState holds the per-VC state of one input port.
type InPortState struct {
	VCs []VCState
}

// VCState is the buffer and head-of-line pipeline state of one virtual
// channel.
type VCState struct {
	Flits     int
	State     uint8
	ReadyAt   int64
	GrantedAt int64
	// OutPort is the granted output port index, or -1.
	OutPort int
	OutVC   int
	Queue   []PktInstState
}

// PktInstState is one (possibly partial) packet resident in a VC buffer.
type PktInstState struct {
	Pkt      int // packet-table index
	Received int
	Sent     int
	Safe     bool
}

// VCRef names an input VC of the same router: (input port, VC index).
type VCRef struct {
	Port, VC int
}

// OutPortState is the credit and allocation state of one output port.
type OutPortState struct {
	Credits []int
	// Owners[i] is the input VC holding downstream VC i, or {-1,-1}.
	Owners []VCRef
	// Granted lists input VCs holding a VA grant, in live order.
	Granted []VCRef
}

// LinkState is the dynamic state of one link: the in-flight pipelines in
// both directions plus the parameters fault events may have derated.
type LinkState struct {
	Bandwidth int
	Latency   int
	Carried   int64
	Flits     []FlitBundleState
	Credits   []CreditBundleState
	Acks      []AckState
	// Rel is nil when the link runs without the reliability protocol.
	Rel *LinkRelState
}

// FlitBundleState is one flit bundle on the wire.
type FlitBundleState struct {
	Pkt      int
	N        int
	VC       int
	ArriveAt int64
	Seq      uint64
	Corrupt  bool
}

// CreditBundleState is one credit return on the wire.
type CreditBundleState struct {
	VC       int
	N        int
	ArriveAt int64
}

// AckState is one ack/nack on the reverse path.
type AckState struct {
	Seq      uint64
	Nack     bool
	ArriveAt int64
}

// LinkRelState is the go-back-N reliability protocol state of one link.
type LinkRelState struct {
	CorruptedFlits   int64
	CorruptedBundles int64
	Retransmissions  int64
	Nacks            int64
	NextSeq          uint64
	Expect           uint64
	Backoff          int64
	RetryAt          int64
	Replay           []ReplayEntryState
}

// ReplayEntryState is one unacknowledged bundle in a sender's replay
// buffer.
type ReplayEntryState struct {
	Pkt    int
	N      int
	VC     int
	Seq    uint64
	SentAt int64
}

// GeneratorState is the traffic source's cursor state. The Bernoulli
// generator uses the flat fields; the trace replayer and the AI-scale-out
// generator layer their cursor state in the optional sections (nil for
// the other kinds, so pre-existing snapshots decode unchanged).
type GeneratorState struct {
	// Rands holds the per-endpoint injection stream states in endpoint
	// order.
	Rands          []uint64
	NextID         uint64
	NextMsg        uint64
	OfferedPackets int

	// Replay is the trace replayer's cursor state; nil for other sources.
	Replay *ReplayCursorState
	// AIScaleOut is the AI-scale-out generator's phase state; nil for
	// other sources.
	AIScaleOut *AIScaleOutState
}

// ReplayCursorState is the causal trace replayer's cursor: which entries
// have been activated, which are released-but-not-yet-injected, which are
// blocked on an undelivered dependency, and which injected packets map to
// which entries. All slices are in deterministic (sorted) order so the
// snapshot bytes are schedule-independent.
type ReplayCursorState struct {
	// Cursor indexes the first trace entry not yet activated.
	Cursor int
	// Delivered is a bitmap over trace entries (bit set = delivered).
	Delivered []uint64
	// Pending lists released entries awaiting their injection cycle,
	// sorted by (At, Entry).
	Pending []ReplayPendingState
	// Waiting lists activated entries blocked on an undelivered
	// dependency, sorted by entry index.
	Waiting []int
	// InFlight maps injected packet ids to entry indices, sorted by Pkt.
	InFlight []ReplayFlightState
}

// ReplayPendingState is one released trace entry awaiting injection.
type ReplayPendingState struct {
	Entry int
	At    int64
}

// ReplayFlightState is one injected, undelivered replayed packet.
type ReplayFlightState struct {
	Pkt   uint64
	Entry int
}

// AIScaleOutState is the AI-scale-out generator's phase-machine state:
// the position in the collective phase sequence plus the request/response
// bookkeeping of the latency class. Map-backed fields are flattened in
// sorted order.
type AIScaleOutState struct {
	// Phase counts collective phases started so far.
	Phase int
	// PhaseActive reports a collective phase currently in flight.
	PhaseActive bool
	// ComputeUntil is the cycle the post-phase compute gap ends.
	ComputeUntil int64
	// PendingDeps / Remaining / LastPkt are per-send phase state
	// (unmet dependency count, undelivered packet count, id of the
	// send's last injected packet or -1).
	PendingDeps []int
	Remaining   []int
	LastPkt     []int64
	// ReadySends lists sends released but not yet launched, in order.
	ReadySends []int
	// DeliveredSends counts fully delivered sends of the current phase.
	DeliveredSends int
	// PktSend maps collective packet ids to send ids, sorted by Pkt.
	PktSend []AIPktSendState
	// Responses lists scheduled request responses, sorted by (At, Dep).
	Responses []AIResponseState
	// Requests maps in-flight request packet ids to their endpoints,
	// sorted by Pkt.
	Requests []AIRequestState
}

// AIPktSendState maps one in-flight collective packet to its send.
type AIPktSendState struct {
	Pkt  uint64
	Send int
}

// AIResponseState is one response scheduled for injection.
type AIResponseState struct {
	At       int64
	Src, Dst int // endpoint indices (responder first)
	Flits    int
	Dep      int64 // id of the request packet
}

// AIRequestState is one in-flight request packet.
type AIRequestState struct {
	Pkt      uint64
	Src, Dst int // endpoint indices of the original request
	Flits    int
}

// CollectorState is the statistics collector's accumulator state.
type CollectorState struct {
	Latencies         []float64
	SumLat            float64
	SumNet            float64
	MaxLat            int64
	MeasuredDelivered int
	DeliveredAll      int
	AcceptedFlits     int64
	SumRouters        float64
	SumOnChip         float64
	SumOffChip        float64

	// Per-class accumulators, indexed by traffic class. Snapshots written
	// before per-class accounting existed decode with these nil; Restore
	// treats absent sections as all-zero.
	ClassLatencies [][]float64
	ClassMax       []int64
	ClassDelivered []int
	ClassFlits     []int64
}

// TopoState is the fault-mutable part of the topology: interface-group
// membership (kills remove members), the pre-fault membership snapshot,
// and the condemned-interface set.
type TopoState struct {
	// Groups[c][g] lists group g of chiplet c's current members.
	Groups [][][]int
	// BaseGroups is the pre-fault snapshot, nil if never taken.
	BaseGroups [][][]int
	// Condemned lists condemned interface node ids in ascending order.
	Condemned []int
}

// FaultState is the fault engine's schedule position and accounting.
type FaultState struct {
	// NextEvent indexes the first not-yet-applied schedule event.
	NextEvent int
	// Pending lists condemned channels still draining, by endpoints.
	Pending []CrossRef
	// Seen lists delivered packet ids in ascending order.
	Seen []uint64
	// Dropped counts corruption records not logged (past LogCap).
	Dropped int
	Log     []FaultRecordState
	Stats   FaultStatsState
	// Streams holds the per-link corruption stream states in the order
	// the engine attached them (ascending link id).
	Streams []LinkStreamState
}

// CrossRef identifies a chiplet-to-chiplet channel by endpoint node ids.
type CrossRef struct {
	A, B int
}

// FaultRecordState mirrors fault.Record.
type FaultRecordState struct {
	Cycle  int64
	Kind   string
	A, B   int
	Detail string
}

// FaultStatsState mirrors fault.Stats. The layer-1 sums are recomputed by
// Finish from the restored per-link counters, but the remaining fields are
// engine-owned and must round-trip.
type FaultStatsState struct {
	CorruptedFlits      int64
	CorruptedBundles    int64
	Retransmissions     int64
	Nacks               int64
	LinksKilled         int
	LinksDegraded       int
	LinksDecommissioned int
	ReroutedPackets     int64
	DeliveredPackets    int
	DuplicatePackets    int
	LostPackets         int
}

// LinkStreamState is one per-link corruption stream state.
type LinkStreamState struct {
	LinkID int
	State  uint64
}

// PacketTable interns packets during snapshotting so each is serialized
// exactly once and referenced by index everywhere else.
type PacketTable struct {
	byPtr map[*packet.Packet]int
	list  []PacketState
}

// NewPacketTable returns an empty table.
func NewPacketTable() *PacketTable {
	return &PacketTable{byPtr: make(map[*packet.Packet]int)}
}

// Ref interns p and returns its table index; -1 for nil.
func (t *PacketTable) Ref(p *packet.Packet) int {
	if p == nil {
		return -1
	}
	if i, ok := t.byPtr[p]; ok {
		return i
	}
	i := len(t.list)
	t.byPtr[p] = i
	t.list = append(t.list, PacketState{
		ID:          p.ID,
		MsgID:       p.MsgID,
		SeqInMsg:    p.SeqInMsg,
		Src:         p.Src,
		Dst:         p.Dst,
		Tag:         p.Tag,
		Len:         p.Len,
		CreatedAt:   p.CreatedAt,
		InjectedAt:  p.InjectedAt,
		DeliveredAt: p.DeliveredAt,
		Class:       p.Class,
		Dep:         p.Dep,
		Measured:    p.Measured,
		Rerouted:    p.Rerouted,
		RouterHops:  p.RouterHops,
		OnChipHops:  p.OnChipHops,
		OffChipHops: p.OffChipHops,
	})
	return i
}

// List returns the interned packet states in reference order.
func (t *PacketTable) List() []PacketState { return t.list }

// Materialize rebuilds live packets from serialized states, preserving
// table indices. Restore paths share the returned slice so a packet
// referenced from several places is one object again.
func Materialize(states []PacketState) []*packet.Packet {
	pkts := make([]*packet.Packet, len(states))
	for i, s := range states {
		pkts[i] = &packet.Packet{
			ID:          s.ID,
			MsgID:       s.MsgID,
			SeqInMsg:    s.SeqInMsg,
			Src:         s.Src,
			Dst:         s.Dst,
			Tag:         s.Tag,
			Len:         s.Len,
			CreatedAt:   s.CreatedAt,
			InjectedAt:  s.InjectedAt,
			DeliveredAt: s.DeliveredAt,
			Class:       s.Class,
			Dep:         s.Dep,
			Measured:    s.Measured,
			Rerouted:    s.Rerouted,
			RouterHops:  s.RouterHops,
			OnChipHops:  s.OnChipHops,
			OffChipHops: s.OffChipHops,
		}
	}
	return pkts
}
