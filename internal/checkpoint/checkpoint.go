// Package checkpoint provides versioned, self-describing binary snapshots
// of complete simulator state, with the guarantee that a run restored from
// a snapshot taken at cycle k finishes bit-identical to the uninterrupted
// run.
//
// File layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "CHPLCKPT"
//	8       4     format version (uint32)
//	12      8     payload length (uint64)
//	20      n     payload: gob-encoded State
//	20+n    4     CRC-32 (IEEE) of the payload
//
// The header is validated before the payload is decoded, so a truncated,
// corrupted, or version-skewed file is rejected with a typed error
// (ErrNotCheckpoint, ErrVersion, ErrCorrupt) and never a panic. Writes go
// through a temporary file in the destination directory followed by an
// atomic rename, so a crash mid-write never leaves a half-written
// checkpoint under the target name.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Version is the current checkpoint format version. It changes whenever
// the State schema changes incompatibly; there is no cross-version
// migration — a version-skewed file is rejected with ErrVersion and the
// run must be redone from the start (checkpoints are derived artifacts,
// never the only copy of anything).
const Version uint32 = 1

// magic identifies a chiplet-simulator checkpoint file.
var magic = [8]byte{'C', 'H', 'P', 'L', 'C', 'K', 'P', 'T'}

// Typed sentinel errors, matchable with errors.Is.
var (
	// ErrNotCheckpoint: the file does not begin with the checkpoint magic.
	ErrNotCheckpoint = errors.New("checkpoint: not a checkpoint file")
	// ErrVersion: the file is a checkpoint, but of an incompatible format
	// version.
	ErrVersion = errors.New("checkpoint: unsupported format version")
	// ErrCorrupt: the file is damaged — truncated, failing its CRC, or
	// undecodable.
	ErrCorrupt = errors.New("checkpoint: corrupt file")
	// ErrMismatch: the snapshot decoded but does not fit the system being
	// restored (e.g. it references structure the rebuilt topology lacks).
	ErrMismatch = errors.New("checkpoint: snapshot does not match configuration")
)

// Encode serializes st into the checkpoint wire format.
func Encode(st *State) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	buf := make([]byte, 0, 20+payload.Len()+4)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payload.Len()))
	buf = append(buf, payload.Bytes()...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload.Bytes()))
	return buf, nil
}

// Decode parses checkpoint wire bytes, validating magic, version, length,
// and CRC before touching the payload.
func Decode(data []byte) (*State, error) {
	if len(data) < 20 || !bytes.Equal(data[:8], magic[:]) {
		return nil, ErrNotCheckpoint
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, supported version %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(data[12:20])
	if n > uint64(len(data)) || uint64(len(data))-n < 24 {
		return nil, fmt.Errorf("%w: truncated (payload length %d, file length %d)",
			ErrCorrupt, n, len(data))
	}
	payload := data[20 : 20+n]
	want := binary.LittleEndian.Uint32(data[20+n : 24+n])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (computed %08x, stored %08x)", ErrCorrupt, got, want)
	}
	st := new(State)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("%w: payload decode: %v", ErrCorrupt, err)
	}
	return st, nil
}

// WriteFile atomically writes st as a checkpoint file at path: the bytes
// go to a temporary file in the same directory, are synced, and the file
// is renamed over path, so readers see either the old checkpoint or the
// complete new one, never a partial write.
func WriteFile(path string, st *State) error {
	data, err := Encode(st)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// ReadFile loads and validates a checkpoint file.
func ReadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	st, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}
