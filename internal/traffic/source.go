package traffic

import (
	"chipletnet/internal/checkpoint"
	"chipletnet/internal/packet"
	"chipletnet/internal/router"
)

// Source is an injection process driving a simulation: the Bernoulli
// Generator, the causal trace Replayer, or the AI-scale-out generator.
// The runner calls Tick before every fabric step and chains OnDeliver
// into the fabric sink, so dependency-driven sources observe deliveries
// in the engines' deterministic sink order (a delivery at cycle T can
// gate injections from cycle T+1 on).
type Source interface {
	// Tick runs one injection cycle at the given simulation cycle.
	Tick(f *router.Fabric, now int64)
	// OnDeliver observes every delivered packet; time-driven sources
	// ignore it. Called before the packet may be recycled.
	OnDeliver(p *packet.Packet, now int64)
	// SetMeasured turns measurement marking on or off (warm-up control).
	SetMeasured(on bool)
	// SetPool makes the source draw packets from pool instead of
	// allocating; injection stays bit-identical.
	SetPool(pool *packet.Pool)
	// TotalPackets is the number of packets created over the whole run.
	TotalPackets() uint64
	// Offered counts packets created while measurement was on.
	Offered() int
	// Snapshot captures the source's cursor state for a checkpoint;
	// Restore lays it back onto a source freshly constructed from the
	// same configuration.
	Snapshot() checkpoint.GeneratorState
	Restore(st *checkpoint.GeneratorState) error
}

var (
	_ Source = (*Generator)(nil)
	_ Source = (*Replayer)(nil)
	_ Source = (*AIScaleOut)(nil)
)

// OnDeliver implements Source; the Bernoulli process is time-driven and
// ignores deliveries.
func (g *Generator) OnDeliver(p *packet.Packet, now int64) {}

// Offered implements Source.
func (g *Generator) Offered() int { return g.OfferedPackets }
