package traffic

import (
	"fmt"

	"chipletnet/internal/interleave"
	"chipletnet/internal/packet"
	"chipletnet/internal/rng"
	"chipletnet/internal/router"
)

// Generator drives the Bernoulli injection process: every endpoint
// independently starts a new message each cycle with probability
// rate / (packetLen * msgPackets), so the long-run offered load is `rate`
// flits per node per cycle. All packets of a message enter the source
// queue in the same cycle (messages are the unit applications hand to the
// network; §V).
type Generator struct {
	endpoints  []int // global node ids
	pattern    Pattern
	rate       float64
	packetLen  int
	msgPackets int
	policy     interleave.Policy

	pMsg     float64
	rands    []*rng.Rand
	nextID   uint64
	nextMsg  uint64
	measured bool
	pool     *packet.Pool

	// OfferedPackets counts packets created while measurement is on.
	OfferedPackets int
}

// NewGenerator creates a generator injecting at the given rate
// (flits/node/cycle) from each endpoint.
func NewGenerator(endpoints []int, p Pattern, rate float64, packetLen, msgPackets int, pol interleave.Policy, seed uint64) (*Generator, error) {
	if len(endpoints) < 2 {
		return nil, fmt.Errorf("traffic: need at least 2 endpoints")
	}
	if rate < 0 {
		return nil, fmt.Errorf("traffic: negative injection rate %g", rate)
	}
	if packetLen < 1 || msgPackets < 1 {
		return nil, fmt.Errorf("traffic: packet length and message size must be positive")
	}
	g := &Generator{
		endpoints:  endpoints,
		pattern:    p,
		rate:       rate,
		packetLen:  packetLen,
		msgPackets: msgPackets,
		policy:     pol,
		pMsg:       rate / float64(packetLen*msgPackets),
		rands:      make([]*rng.Rand, len(endpoints)),
	}
	root := rng.New(seed)
	for i := range g.rands {
		g.rands[i] = root.Split(uint64(i) + 1)
	}
	return g, nil
}

// SetMeasured turns measurement marking on or off (warm-up control).
func (g *Generator) SetMeasured(on bool) { g.measured = on }

// SetPool makes the generator draw packets from pool instead of
// allocating. Injection is otherwise bit-identical: every field of a
// recycled packet is reassigned. The runner owns the recycle side (and
// the safety gate for enabling pooling at all).
func (g *Generator) SetPool(pool *packet.Pool) { g.pool = pool }

// TotalPackets returns the number of packets created over the whole run,
// warm-up included — the injected total that delivery-completeness checks
// compare against.
func (g *Generator) TotalPackets() uint64 { return g.nextID }

// Tick runs one injection cycle: for every endpoint, possibly create a
// message and enqueue its packets at the endpoint's router.
func (g *Generator) Tick(f *router.Fabric, now int64) {
	for i, node := range g.endpoints {
		r := g.rands[i]
		if !r.Bernoulli(g.pMsg) {
			continue
		}
		dstIdx := g.pattern.Dest(i, r)
		dst := g.endpoints[dstIdx]
		msg := g.nextMsg
		g.nextMsg++
		for seq := 0; seq < g.msgPackets; seq++ {
			var p *packet.Packet
			if g.pool != nil {
				p = g.pool.Get()
			} else {
				p = new(packet.Packet)
			}
			*p = packet.Packet{
				ID:        g.nextID,
				MsgID:     msg,
				SeqInMsg:  seq,
				Src:       node,
				Dst:       dst,
				Tag:       g.policy.Tag(msg, seq),
				Len:       g.packetLen,
				CreatedAt: now,
				Class:     packet.ClassBestEffort,
				Dep:       packet.NoDep,
				Measured:  g.measured,
			}
			g.nextID++
			if g.measured {
				g.OfferedPackets++
			}
			f.Routers[node].Inject(p, now)
		}
	}
}
