package traffic

import (
	"fmt"
	"sort"

	"chipletnet/internal/checkpoint"
	"chipletnet/internal/collective"
	"chipletnet/internal/interleave"
	"chipletnet/internal/packet"
	"chipletnet/internal/rng"
	"chipletnet/internal/router"
	"chipletnet/internal/workload"
)

// AIScaleOut models an AI scale-out node's traffic: repeated collective
// phases (the gradient exchange), each followed by a compute gap, over a
// background of bulk memory traffic and latency-class request/response
// pairs — three QoS classes, each under its own injection budget:
//
//   - ClassCollective: the collective schedule itself, dependency-driven
//     exactly like internal/collective's driver (a send launches the
//     cycle after its last dependency is fully delivered).
//   - ClassBulk: per-endpoint Bernoulli memory traffic at MemRate
//     flits/node/cycle, uniformly addressed.
//   - ClassLatency: per-endpoint Bernoulli requests at ReqRate
//     flits/node/cycle; every delivered request triggers a dependent
//     response (injected the next cycle, annotated with the request's
//     packet id), so recorded traces carry real causal structure.
//
// Like every Source, it is fully deterministic for a given seed and its
// cursor state round-trips through Snapshot/Restore.
type AIScaleOut struct {
	endpoints []int
	pktFlits  int
	policy    interleave.Policy
	spec      workload.AIScaleOutSpec

	sends   []collective.Send
	waiters [][]int // per send: sends waiting on it
	roots   []int   // sends with no dependencies

	rands      []*rng.Rand
	pMem, pReq float64

	phase          int
	phaseActive    bool
	computeUntil   int64
	pendingDeps    []int
	remaining      []int
	lastPkt        []int64
	ready          []int
	deliveredSends int
	pktSend        map[uint64]int
	responses      []aiResponse
	requests       map[uint64]aiRequest

	nextID   uint64
	nextMsg  uint64
	offered  int
	measured bool
	pool     *packet.Pool
}

// aiResponse is one response awaiting injection (endpoint indices; src
// is the responder).
type aiResponse struct {
	at       int64
	src, dst int
	flits    int
	dep      int64
}

// aiRequest is one in-flight request (endpoint indices of the original
// request).
type aiRequest struct {
	src, dst int
	flits    int
}

// NewAIScaleOut creates the generator over the given traffic endpoints.
// The collective schedule is alg's over len(endpoints) participants;
// collective messages are segmented into packets of pktFlits.
func NewAIScaleOut(alg collective.Algorithm, spec workload.AIScaleOutSpec, endpoints []int, pktFlits int, pol interleave.Policy, seed uint64) (*AIScaleOut, error) {
	n := len(endpoints)
	if n < 2 {
		return nil, fmt.Errorf("traffic: aiscaleout needs at least 2 endpoints")
	}
	if pktFlits < 1 {
		return nil, fmt.Errorf("traffic: packet length must be positive")
	}
	if spec.ReqFlits < 1 {
		return nil, fmt.Errorf("traffic: aiscaleout request length must be positive")
	}
	sends, err := alg.Schedule(n)
	if err != nil {
		return nil, err
	}
	a := &AIScaleOut{
		endpoints:   endpoints,
		pktFlits:    pktFlits,
		policy:      pol,
		spec:        spec,
		sends:       sends,
		waiters:     make([][]int, len(sends)),
		rands:       make([]*rng.Rand, n),
		pMem:        spec.MemRate / float64(pktFlits),
		pReq:        spec.ReqRate / float64(spec.ReqFlits),
		pendingDeps: make([]int, len(sends)),
		remaining:   make([]int, len(sends)),
		lastPkt:     make([]int64, len(sends)),
		pktSend:     make(map[uint64]int),
		requests:    make(map[uint64]aiRequest),
	}
	for i, s := range sends {
		if s.ID != i {
			return nil, fmt.Errorf("traffic: collective schedule send %d has id %d (must be dense)", i, s.ID)
		}
		if s.Src < 0 || s.Src >= n || s.Dst < 0 || s.Dst >= n || s.Src == s.Dst {
			return nil, fmt.Errorf("traffic: collective schedule send %d has bad endpoints %d->%d", i, s.Src, s.Dst)
		}
		if s.Flits < 1 {
			return nil, fmt.Errorf("traffic: collective schedule send %d has no payload", i)
		}
		for _, d := range s.Deps {
			if d < 0 || d >= len(sends) {
				return nil, fmt.Errorf("traffic: collective schedule send %d depends on unknown send %d", i, d)
			}
			a.waiters[d] = append(a.waiters[d], i)
		}
		if len(s.Deps) == 0 {
			a.roots = append(a.roots, i)
		}
	}
	if len(a.roots) == 0 {
		return nil, fmt.Errorf("traffic: collective schedule has no startable sends")
	}
	root := rng.New(seed)
	for i := range a.rands {
		a.rands[i] = root.Split(uint64(i) + 1)
	}
	return a, nil
}

// SetMeasured implements Source.
func (a *AIScaleOut) SetMeasured(on bool) { a.measured = on }

// SetPool implements Source.
func (a *AIScaleOut) SetPool(pool *packet.Pool) { a.pool = pool }

// TotalPackets implements Source.
func (a *AIScaleOut) TotalPackets() uint64 { return a.nextID }

// Offered implements Source.
func (a *AIScaleOut) Offered() int { return a.offered }

// Phases returns the number of collective phases completed so far.
func (a *AIScaleOut) Phases() int {
	if a.phaseActive {
		return a.phase - 1
	}
	return a.phase
}

func (a *AIScaleOut) newPacket() *packet.Packet {
	if a.pool != nil {
		return a.pool.Get()
	}
	return new(packet.Packet)
}

// Tick implements Source: phase control, collective launches, due
// responses, then the per-endpoint background processes — all in a fixed
// deterministic order.
func (a *AIScaleOut) Tick(f *router.Fabric, now int64) {
	if !a.phaseActive && now > a.computeUntil && (a.spec.Phases == 0 || a.phase < a.spec.Phases) {
		a.startPhase()
	}
	if len(a.ready) > 0 {
		batch := a.ready
		a.ready = nil
		for _, id := range batch {
			a.launchSend(f, id, now)
		}
	}
	if len(a.responses) > 0 {
		var due []aiResponse
		keep := a.responses[:0]
		for _, r := range a.responses {
			if r.at <= now {
				due = append(due, r)
			} else {
				keep = append(keep, r)
			}
		}
		a.responses = keep
		// Canonical same-cycle order, (at, dep): the order Snapshot
		// serializes, so a restored run injects identically to a live one.
		sort.Slice(due, func(i, j int) bool {
			if due[i].at != due[j].at {
				return due[i].at < due[j].at
			}
			return due[i].dep < due[j].dep
		})
		for _, r := range due {
			a.injectResponse(f, r, now)
		}
	}
	for i, node := range a.endpoints {
		r := a.rands[i]
		if a.pMem > 0 && r.Bernoulli(a.pMem) {
			dst := a.uniformDest(i, r)
			a.injectOne(f, node, a.endpoints[dst], a.pktFlits, packet.ClassBulk, packet.NoDep, now, nil)
		}
		if a.pReq > 0 && r.Bernoulli(a.pReq) {
			dst := a.uniformDest(i, r)
			req := aiRequest{src: i, dst: dst, flits: a.spec.ReqFlits}
			a.injectOne(f, node, a.endpoints[dst], a.spec.ReqFlits, packet.ClassLatency, packet.NoDep, now, &req)
		}
	}
}

// uniformDest picks a uniform destination endpoint other than self.
func (a *AIScaleOut) uniformDest(self int, r *rng.Rand) int {
	d := r.Intn(len(a.endpoints) - 1)
	if d >= self {
		d++
	}
	return d
}

// startPhase resets the per-send state and releases the schedule roots.
func (a *AIScaleOut) startPhase() {
	a.phase++
	a.phaseActive = true
	a.deliveredSends = 0
	for i, s := range a.sends {
		a.pendingDeps[i] = len(s.Deps)
		a.remaining[i] = 0
		a.lastPkt[i] = packet.NoDep
	}
	a.ready = append(a.ready[:0:0], a.roots...)
}

// launchSend injects every packet of one collective send. The trace
// dependency annotation is the last packet of the send's latest-injected
// dependency — an approximation of the all-deps-delivered barrier that
// the entry's recorded cycle lower-bounds.
func (a *AIScaleOut) launchSend(f *router.Fabric, id int, now int64) {
	s := &a.sends[id]
	dep := packet.NoDep
	for _, d := range s.Deps {
		if a.lastPkt[d] > dep {
			dep = a.lastPkt[d]
		}
	}
	packets := (s.Flits + a.pktFlits - 1) / a.pktFlits
	a.remaining[id] = packets
	msg := a.nextMsg
	a.nextMsg++
	left := s.Flits
	src := a.endpoints[s.Src]
	dst := a.endpoints[s.Dst]
	for seq := 0; seq < packets; seq++ {
		l := a.pktFlits
		if l > left {
			l = left
		}
		left -= l
		p := a.newPacket()
		*p = packet.Packet{
			ID:        a.nextID,
			MsgID:     msg,
			SeqInMsg:  seq,
			Src:       src,
			Dst:       dst,
			Tag:       a.policy.Tag(msg, seq),
			Len:       l,
			CreatedAt: now,
			Class:     packet.ClassCollective,
			Dep:       dep,
			Measured:  a.measured,
		}
		a.pktSend[p.ID] = id
		a.lastPkt[id] = int64(a.nextID)
		a.nextID++
		if a.measured {
			a.offered++
		}
		f.Routers[src].Inject(p, now)
	}
}

// injectResponse injects one latency-class response, annotated with the
// request packet it answers.
func (a *AIScaleOut) injectResponse(f *router.Fabric, r aiResponse, now int64) {
	a.injectOne(f, a.endpoints[r.src], a.endpoints[r.dst], r.flits, packet.ClassLatency, r.dep, now, nil)
}

// injectOne injects a single-packet message; req non-nil registers it as
// an in-flight request whose delivery will trigger a response.
func (a *AIScaleOut) injectOne(f *router.Fabric, src, dst, flits int, class uint8, dep int64, now int64, req *aiRequest) {
	msg := a.nextMsg
	a.nextMsg++
	p := a.newPacket()
	*p = packet.Packet{
		ID:        a.nextID,
		MsgID:     msg,
		SeqInMsg:  0,
		Src:       src,
		Dst:       dst,
		Tag:       a.policy.Tag(msg, 0),
		Len:       flits,
		CreatedAt: now,
		Class:     class,
		Dep:       dep,
		Measured:  a.measured,
	}
	if req != nil {
		a.requests[p.ID] = *req
	}
	a.nextID++
	if a.measured {
		a.offered++
	}
	f.Routers[src].Inject(p, now)
}

// OnDeliver implements Source: collective bookkeeping (send completion
// releases its waiters; phase completion opens the compute gap) and
// request completion (schedules the dependent response for next cycle).
func (a *AIScaleOut) OnDeliver(p *packet.Packet, now int64) {
	if id, ok := a.pktSend[p.ID]; ok {
		delete(a.pktSend, p.ID)
		a.remaining[id]--
		if a.remaining[id] > 0 {
			return
		}
		a.deliveredSends++
		for _, w := range a.waiters[id] {
			a.pendingDeps[w]--
			if a.pendingDeps[w] == 0 {
				a.ready = append(a.ready, w)
			}
		}
		if a.deliveredSends == len(a.sends) {
			a.phaseActive = false
			a.computeUntil = now + a.spec.ComputeCycles
		}
		return
	}
	if req, ok := a.requests[p.ID]; ok {
		delete(a.requests, p.ID)
		a.responses = append(a.responses, aiResponse{
			at:    now + 1,
			src:   req.dst,
			dst:   req.src,
			flits: req.flits,
			dep:   int64(p.ID),
		})
	}
}

// Snapshot implements Source: the phase machine, the per-send state and
// the request/response bookkeeping, map-backed parts flattened in sorted
// order so the snapshot bytes are canonical.
func (a *AIScaleOut) Snapshot() checkpoint.GeneratorState {
	as := &checkpoint.AIScaleOutState{
		Phase:          a.phase,
		PhaseActive:    a.phaseActive,
		ComputeUntil:   a.computeUntil,
		PendingDeps:    append([]int(nil), a.pendingDeps...),
		Remaining:      append([]int(nil), a.remaining...),
		LastPkt:        append([]int64(nil), a.lastPkt...),
		ReadySends:     append([]int(nil), a.ready...),
		DeliveredSends: a.deliveredSends,
	}
	for pkt, send := range a.pktSend {
		as.PktSend = append(as.PktSend, checkpoint.AIPktSendState{Pkt: pkt, Send: send})
	}
	sort.Slice(as.PktSend, func(i, j int) bool { return as.PktSend[i].Pkt < as.PktSend[j].Pkt })
	for _, r := range a.responses {
		as.Responses = append(as.Responses, checkpoint.AIResponseState{At: r.at, Src: r.src, Dst: r.dst, Flits: r.flits, Dep: r.dep})
	}
	sort.Slice(as.Responses, func(i, j int) bool {
		if as.Responses[i].At != as.Responses[j].At {
			return as.Responses[i].At < as.Responses[j].At
		}
		return as.Responses[i].Dep < as.Responses[j].Dep
	})
	for pkt, req := range a.requests {
		as.Requests = append(as.Requests, checkpoint.AIRequestState{Pkt: pkt, Src: req.src, Dst: req.dst, Flits: req.flits})
	}
	sort.Slice(as.Requests, func(i, j int) bool { return as.Requests[i].Pkt < as.Requests[j].Pkt })

	st := checkpoint.GeneratorState{
		Rands:          make([]uint64, len(a.rands)),
		NextID:         a.nextID,
		NextMsg:        a.nextMsg,
		OfferedPackets: a.offered,
		AIScaleOut:     as,
	}
	for i, r := range a.rands {
		st.Rands[i] = r.State()
	}
	return st
}

// Restore implements Source.
func (a *AIScaleOut) Restore(st *checkpoint.GeneratorState) error {
	as := st.AIScaleOut
	if as == nil {
		return fmt.Errorf("%w: snapshot was not taken from an aiscaleout source", checkpoint.ErrMismatch)
	}
	if len(st.Rands) != len(a.rands) {
		return fmt.Errorf("%w: snapshot has %d background streams, source has %d",
			checkpoint.ErrMismatch, len(st.Rands), len(a.rands))
	}
	n := len(a.sends)
	if len(as.PendingDeps) != n || len(as.Remaining) != n || len(as.LastPkt) != n {
		return fmt.Errorf("%w: snapshot describes a %d-send schedule, source has %d",
			checkpoint.ErrMismatch, len(as.PendingDeps), n)
	}
	for _, s := range as.ReadySends {
		if s < 0 || s >= n {
			return fmt.Errorf("%w: ready send %d outside schedule", checkpoint.ErrMismatch, s)
		}
	}
	for i, r := range st.Rands {
		a.rands[i].SetState(r)
	}
	a.phase = as.Phase
	a.phaseActive = as.PhaseActive
	a.computeUntil = as.ComputeUntil
	copy(a.pendingDeps, as.PendingDeps)
	copy(a.remaining, as.Remaining)
	copy(a.lastPkt, as.LastPkt)
	a.ready = append(a.ready[:0:0], as.ReadySends...)
	a.deliveredSends = as.DeliveredSends
	a.pktSend = make(map[uint64]int, len(as.PktSend))
	for _, ps := range as.PktSend {
		if ps.Send < 0 || ps.Send >= n {
			return fmt.Errorf("%w: in-flight packet maps to send %d outside schedule", checkpoint.ErrMismatch, ps.Send)
		}
		a.pktSend[ps.Pkt] = ps.Send
	}
	a.responses = a.responses[:0]
	for _, r := range as.Responses {
		a.responses = append(a.responses, aiResponse{at: r.At, src: r.Src, dst: r.Dst, flits: r.Flits, dep: r.Dep})
	}
	a.requests = make(map[uint64]aiRequest, len(as.Requests))
	for _, r := range as.Requests {
		a.requests[r.Pkt] = aiRequest{src: r.Src, dst: r.Dst, flits: r.Flits}
	}
	a.nextID = st.NextID
	a.nextMsg = st.NextMsg
	a.offered = st.OfferedPackets
	return nil
}
