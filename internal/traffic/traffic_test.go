package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"chipletnet/internal/interleave"
	"chipletnet/internal/packet"
	"chipletnet/internal/rng"
	"chipletnet/internal/router"
)

func TestPatternNames(t *testing.T) {
	for _, name := range PatternNames() {
		p, err := NewPattern(name, 256, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name && name != "hotspot" { // hotspot keeps its name too
			t.Errorf("%s reported name %s", name, p.Name())
		}
	}
	if _, err := NewPattern("nonsense", 64, 1); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := NewPattern("uniform", 1, 1); err == nil {
		t.Error("single endpoint accepted")
	}
}

// All patterns must return valid, non-self destinations.
func TestPatternsValidDestinations(t *testing.T) {
	r := rng.New(3)
	for _, name := range PatternNames() {
		for _, n := range []int{16, 256, 100} { // 100: not a power of two
			p, err := NewPattern(name, n, 7)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < n; s++ {
				for rep := 0; rep < 4; rep++ {
					d := p.Dest(s, r)
					if d < 0 || d >= n || d == s {
						t.Fatalf("%s(n=%d): Dest(%d) = %d", name, n, s, d)
					}
				}
			}
		}
	}
}

func TestBitComplement(t *testing.T) {
	p, _ := NewPattern("bit-complement", 256, 1)
	r := rng.New(1)
	// d_i = NOT s_i over 8 bits.
	if d := p.Dest(0b00001111, r); d != 0b11110000 {
		t.Errorf("complement(0x0F) = %#x", d)
	}
	if d := p.Dest(0, r); d != 255 {
		t.Errorf("complement(0) = %d", d)
	}
}

func TestBitReverse(t *testing.T) {
	p, _ := NewPattern("bit-reverse", 256, 1)
	r := rng.New(1)
	if d := p.Dest(0b00000001, r); d != 0b10000000 {
		t.Errorf("reverse(1) = %#x", d)
	}
	if d := p.Dest(0b0110_0000, r); d != 0b0000_0110 {
		t.Errorf("reverse(0x60) = %#x", d)
	}
}

func TestBitShuffle(t *testing.T) {
	p, _ := NewPattern("bit-shuffle", 256, 1)
	r := rng.New(1)
	// Left rotation: 0b10000000 -> 0b00000001.
	if d := p.Dest(0b10000000, r); d != 0b00000001 {
		t.Errorf("shuffle(0x80) = %#x", d)
	}
	if d := p.Dest(0b00000011, r); d != 0b00000110 {
		t.Errorf("shuffle(3) = %#x", d)
	}
}

func TestBitTranspose(t *testing.T) {
	p, _ := NewPattern("bit-transpose", 256, 1)
	r := rng.New(1)
	// Rotation by b/2 = 4: low nibble and high nibble swap.
	if d := p.Dest(0x0A, r); d != 0xA0 {
		t.Errorf("transpose(0x0A) = %#x", d)
	}
}

// Permutation patterns are deterministic except at fixed points of the bit
// permutation (d == s), where they fall back to uniform random.
func TestPermutationPatternsDeterministic(t *testing.T) {
	for _, name := range []string{"bit-complement", "bit-reverse", "bit-transpose"} {
		p, _ := NewPattern(name, 64, 1)
		bp := p.(bitPerm)
		r := rng.New(9)
		for s := 0; s < 64; s++ {
			if bp.f(s, bp.b) == s {
				continue // fixed point: random fallback by design
			}
			if p.Dest(s, r) != p.Dest(s, r) {
				t.Errorf("%s not deterministic at %d", name, s)
			}
		}
	}
}

func TestHotspotFixedFanout(t *testing.T) {
	n := 100
	p, _ := NewPattern("hotspot", n, 5)
	h := p.(*hotspot)
	want := (n - 1) / 10
	for s, ds := range h.dests {
		if len(ds) != want {
			t.Fatalf("source %d has %d destinations, want %d", s, len(ds), want)
		}
		seen := map[int]bool{}
		for _, d := range ds {
			if d == s || d < 0 || d >= n || seen[d] {
				t.Fatalf("source %d: bad destination set %v", s, ds)
			}
			seen[d] = true
		}
	}
	// Same seed -> same sets; different seed -> different sets.
	p2, _ := NewPattern("hotspot", n, 5)
	p3, _ := NewPattern("hotspot", n, 6)
	if h2 := p2.(*hotspot); h2.dests[0][0] != h.dests[0][0] {
		t.Error("hotspot not reproducible for equal seeds")
	}
	if h3 := p3.(*hotspot); equalSets(h3.dests, h.dests) {
		t.Error("hotspot identical across different seeds")
	}
}

func equalSets(a, b [][]int) bool {
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestNeighborPatternIsLocal(t *testing.T) {
	n := 256
	p, err := NewPattern("neighbor", n, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	maxDist := 0
	for s := 0; s < n; s++ {
		for rep := 0; rep < 8; rep++ {
			d := p.Dest(s, r)
			if d < 0 || d >= n || d == s {
				t.Fatalf("Dest(%d) = %d", s, d)
			}
			dist := d - s
			if dist < 0 {
				dist = -dist
			}
			if dist > maxDist {
				maxDist = dist
			}
		}
	}
	window := n / 32
	if maxDist > 2*window {
		t.Errorf("neighbor pattern reached distance %d (window %d)", maxDist, window)
	}
}

func TestNeighborPatternTinyN(t *testing.T) {
	p, err := NewPattern("neighbor", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for s := 0; s < 3; s++ {
		for rep := 0; rep < 50; rep++ {
			d := p.Dest(s, r)
			if d < 0 || d >= 3 || d == s {
				t.Fatalf("Dest(%d) = %d", s, d)
			}
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	p, _ := NewPattern("uniform", 16, 1)
	r := rng.New(2)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		seen[p.Dest(3, r)] = true
	}
	if len(seen) != 15 {
		t.Errorf("uniform from node 3 reached %d of 15 destinations", len(seen))
	}
}

func TestBitPermutationIsBijection(t *testing.T) {
	f := func(bRaw uint8, which uint8) bool {
		b := int(bRaw%6) + 2
		n := 1 << uint(b)
		names := []string{"bit-complement", "bit-reverse", "bit-shuffle", "bit-transpose"}
		p, err := NewPattern(names[which%4], n, 1)
		if err != nil {
			return false
		}
		bp := p.(bitPerm)
		seen := make([]bool, n)
		for s := 0; s < n; s++ {
			d := bp.f(s, b)
			if d < 0 || d >= n || seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sinkFabric builds a single-router fabric where endpoint injection can be
// observed; used for generator tests.
func sinkFabric(nodes int) *router.Fabric {
	f := router.NewFabric()
	for i := 0; i < nodes; i++ {
		r := f.NewRouter(i)
		r.AddInPort(1, 1<<30)
		r.AddOutPort()
		f.MakeEjection(r, 0, 2, 1<<20)
	}
	// Self-delivery routing: everything goes straight to the local port.
	f.Routing = localOnly{}
	return f
}

type localOnly struct{}

func (localOnly) Candidates(r *router.Router, inPort int, p *packet.Packet, buf []router.Candidate) []router.Candidate {
	return append(buf, router.Candidate{Port: 0, VCMask: router.VCMaskAll(len(r.Out[0].Credits))})
}
func (localOnly) SafeAt(*router.Router, int, *packet.Packet) bool { return true }

func TestGeneratorRateAndFraming(t *testing.T) {
	nodes := 32
	f := sinkFabric(nodes)
	f.Sink = func(p *packet.Packet, now int64) {}
	endpoints := make([]int, nodes)
	for i := range endpoints {
		endpoints[i] = i
	}
	pat, _ := NewPattern("uniform", nodes, 1)
	const rate, pktLen, msgPk = 0.4, 8, 4
	g, err := NewGenerator(endpoints, pat, rate, pktLen, msgPk, interleave.Policy{G: interleave.Packet}, 11)
	if err != nil {
		t.Fatal(err)
	}
	g.SetMeasured(true)
	const cycles = 20000
	for cy := int64(1); cy <= cycles; cy++ {
		g.Tick(f, cy)
		f.Step()
	}
	offeredFlits := float64(g.OfferedPackets * pktLen)
	got := offeredFlits / float64(nodes) / float64(cycles)
	if math.Abs(got-rate) > 0.03 {
		t.Errorf("offered rate %.3f, want %.3f", got, rate)
	}
	if g.OfferedPackets%msgPk != 0 {
		t.Errorf("offered packets %d not a multiple of the message size", g.OfferedPackets)
	}
}

func TestGeneratorValidation(t *testing.T) {
	pat, _ := NewPattern("uniform", 4, 1)
	eps := []int{0, 1, 2, 3}
	if _, err := NewGenerator(eps[:1], pat, 0.1, 8, 1, interleave.Policy{}, 1); err == nil {
		t.Error("single endpoint accepted")
	}
	if _, err := NewGenerator(eps, pat, -1, 8, 1, interleave.Policy{}, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewGenerator(eps, pat, 0.1, 0, 1, interleave.Policy{}, 1); err == nil {
		t.Error("zero packet length accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() (uint64, int) {
		nodes := 8
		f := sinkFabric(nodes)
		var lastID uint64
		n := 0
		f.Sink = func(p *packet.Packet, now int64) { lastID, n = p.ID, n+1 }
		eps := make([]int, nodes)
		for i := range eps {
			eps[i] = i
		}
		pat, _ := NewPattern("uniform", nodes, 3)
		g, _ := NewGenerator(eps, pat, 0.5, 4, 2, interleave.Policy{G: interleave.Message}, 3)
		g.SetMeasured(true)
		for cy := int64(1); cy <= 500; cy++ {
			g.Tick(f, cy)
			f.Step()
		}
		return lastID, n
	}
	id1, n1 := run()
	id2, n2 := run()
	if id1 != id2 || n1 != n2 {
		t.Errorf("generator not deterministic: (%d,%d) vs (%d,%d)", id1, n1, id2, n2)
	}
}
