package traffic

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"chipletnet/internal/interleave"
	"chipletnet/internal/packet"
	"chipletnet/internal/workload"
)

// recordedSeed cuts a real trace for the fuzz corpus: a recorder attached
// to a generator run on the local-delivery fabric, serialized to bytes —
// the full record -> serialize half of the round trip.
func recordedSeed(f *testing.F) []byte {
	f.Helper()
	nodes := 8
	fab := sinkFabric(nodes)
	rec, err := workload.NewRecorder(denseEndpointsF(nodes))
	if err != nil {
		f.Fatal(err)
	}
	fab.Tracer = rec
	pat, err := NewPattern("uniform", nodes, 3)
	if err != nil {
		f.Fatal(err)
	}
	g, err := NewGenerator(denseEndpointsF(nodes), pat, 0.3, 4, 2, interleave.Policy{G: interleave.Message}, 3)
	if err != nil {
		f.Fatal(err)
	}
	g.SetMeasured(true)
	for cy := int64(1); cy <= 60; cy++ {
		g.Tick(fab, cy)
		fab.Step()
	}
	for cy := int64(61); fab.InFlight() > 0; cy++ {
		fab.Step()
	}
	tr, err := rec.Trace()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func denseEndpointsF(n int) []int {
	eps := make([]int, n)
	for i := range eps {
		eps[i] = i
	}
	return eps
}

// replayDeliveries replays tr to completion on a local-delivery fabric
// and returns the (packet id, cycle) delivery sequence. Returns false if
// the replay did not finish within the cycle bound.
func replayDeliveries(t *testing.T, tr *workload.Trace, maxCycles int64) ([]delivery, bool) {
	t.Helper()
	r, err := NewReplayer(tr, denseEndpointsF(tr.Endpoints), interleave.Policy{})
	if err != nil {
		t.Fatalf("validated trace rejected by the replayer: %v", err)
	}
	fab := sinkFabric(tr.Endpoints)
	var seq []delivery
	fab.Sink = func(p *packet.Packet, now int64) {
		seq = append(seq, delivery{p.ID, now})
		r.OnDeliver(p, now)
	}
	for cy := int64(1); cy <= maxCycles; cy++ {
		r.Tick(fab, cy)
		fab.Step()
		if r.Remaining() == 0 && fab.InFlight() == 0 && len(seq) == len(tr.Entries) {
			return seq, true
		}
	}
	return seq, false
}

// FuzzTraceRoundTrip closes the workload loop over arbitrary file bytes:
// anything that parses as a trace must re-encode to an equivalent trace
// and replay to the same delivery cycles twice in a row; anything that
// does not parse must fail with one of the typed trace errors — never a
// panic. The seed corpus covers the genuine path (a trace recorded from
// a live generator run), the truncation signature (a torn final line),
// and plain garbage.
func FuzzTraceRoundTrip(f *testing.F) {
	seed := recordedSeed(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-7]) // truncated tail: torn final entry line
	f.Add([]byte("not a trace at all\n"))
	f.Add([]byte(`{"format":"chipletnet-trace","version":99,"endpoints":2,"entries":0}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := workload.Decode(bytes.NewReader(data))
		if err != nil {
			for _, typed := range []error{workload.ErrNotTrace, workload.ErrVersion, workload.ErrTruncated, workload.ErrCorrupt} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		// Parse succeeded: the serialize -> parse leg must be lossless.
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("re-encoding a decoded trace: %v", err)
		}
		tr2, err := workload.Decode(&buf)
		if err != nil {
			t.Fatalf("re-decoding an encoded trace: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("encode/decode round trip changed the trace")
		}
		// Replay leg: bound the work so adversarial inputs (huge cycle
		// numbers, thousands of entries) stay cheap, then require the
		// delivery cycles to be identical across two independent replays.
		if len(tr.Entries) == 0 || len(tr.Entries) > 512 || tr.Endpoints > 64 {
			return
		}
		last := tr.Entries[len(tr.Entries)-1].Cycle
		if last > 4096 {
			return
		}
		bound := last + int64(len(tr.Entries))*8 + 256
		a, okA := replayDeliveries(t, tr, bound)
		b, okB := replayDeliveries(t, tr, bound)
		if okA != okB || !reflect.DeepEqual(a, b) {
			t.Fatalf("replays diverged: %d deliveries (done=%v) vs %d (done=%v)", len(a), okA, len(b), okB)
		}
	})
}

// TestTraceRoundTripSeedCorpus runs the fuzz body over the seed corpus in
// a plain `go test` (the corpus also replays without -fuzz, but this
// keeps the property visible as a named test in `make test-workload`).
func TestTraceRoundTripSeedCorpus(t *testing.T) {
	// Record, serialize, parse, replay: the full loop, asserting the
	// replayed delivery-cycle ground truth is reproduced identically.
	var seedBytes []byte
	{
		nodes := 8
		fab := sinkFabric(nodes)
		rec, err := workload.NewRecorder(denseEndpointsF(nodes))
		if err != nil {
			t.Fatal(err)
		}
		fab.Tracer = rec
		pat, _ := NewPattern("bit-reverse", nodes, 5)
		g, err := NewGenerator(denseEndpointsF(nodes), pat, 0.25, 4, 2, interleave.Policy{}, 5)
		if err != nil {
			t.Fatal(err)
		}
		g.SetMeasured(true)
		for cy := int64(1); cy <= 80; cy++ {
			g.Tick(fab, cy)
			fab.Step()
		}
		for fab.InFlight() > 0 {
			fab.Step()
		}
		tr, err := rec.Trace()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		seedBytes = buf.Bytes()
	}
	tr, err := workload.Decode(bytes.NewReader(seedBytes))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := replayDeliveries(t, tr, 100000)
	if !ok {
		t.Fatal("replay of a recorded trace did not finish")
	}
	b, _ := replayDeliveries(t, tr, 100000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("replay delivery cycles not reproducible")
	}
	// The truncation signature decodes to a typed error, not a panic.
	if _, err := workload.Decode(bytes.NewReader(seedBytes[:len(seedBytes)-7])); !errors.Is(err, workload.ErrTruncated) {
		t.Fatalf("torn tail: got %v, want ErrTruncated", err)
	}
}
