package traffic

import (
	"fmt"
	"sort"

	"chipletnet/internal/checkpoint"
	"chipletnet/internal/interleave"
	"chipletnet/internal/packet"
	"chipletnet/internal/router"
	"chipletnet/internal/workload"
)

// Replayer injects a recorded workload trace with causality: every entry
// is injected at its recorded cycle, except that an entry with a
// dependency waits until the cycle after the dependency's delivery —
// response-after-request survives replay onto candidates with different
// timing. On a dependency-free trace replayed under the recording
// configuration, the injection stream (cycles, order, packet identity)
// reproduces the original run exactly.
//
// All cursor state round-trips through Snapshot/Restore, so checkpoints
// of replayed runs stay bit-identical. Deliveries reach the replayer
// through OnDeliver in the engines' deterministic sink order.
type Replayer struct {
	trace     *workload.Trace
	endpoints []int
	policy    interleave.Policy

	cursor    int
	delivered []uint64        // bitmap over entries
	pending   []replayRelease // released entries awaiting injection
	waiting   map[int64][]int // dep entry id -> blocked entry indices
	nwaiting  int
	inflight  map[uint64]int // packet id -> entry index

	nextID   uint64
	offered  int
	measured bool
	pool     *packet.Pool
}

// replayRelease is one released trace entry awaiting its injection cycle.
type replayRelease struct {
	entry int
	at    int64
}

// NewReplayer creates a replayer for the trace over the given traffic
// endpoints (global node ids in dense endpoint order). The trace must
// address exactly this endpoint count — a trace recorded on one
// candidate replays on any candidate with the same endpoint count.
func NewReplayer(tr *workload.Trace, endpoints []int, pol interleave.Policy) (*Replayer, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Endpoints != len(endpoints) {
		return nil, fmt.Errorf("traffic: trace addresses %d endpoints, system has %d", tr.Endpoints, len(endpoints))
	}
	return &Replayer{
		trace:     tr,
		endpoints: endpoints,
		policy:    pol,
		delivered: make([]uint64, (len(tr.Entries)+63)/64),
		waiting:   make(map[int64][]int),
		inflight:  make(map[uint64]int),
	}, nil
}

// SetMeasured implements Source.
func (r *Replayer) SetMeasured(on bool) { r.measured = on }

// SetPool implements Source.
func (r *Replayer) SetPool(pool *packet.Pool) { r.pool = pool }

// TotalPackets implements Source.
func (r *Replayer) TotalPackets() uint64 { return r.nextID }

// Offered implements Source.
func (r *Replayer) Offered() int { return r.offered }

// Remaining returns the number of trace entries not yet injected.
func (r *Replayer) Remaining() int {
	return len(r.trace.Entries) - r.cursor + r.nwaiting + len(r.pending)
}

func (r *Replayer) deliveredBit(id int64) bool {
	return r.delivered[id>>6]&(1<<uint(id&63)) != 0
}

// Tick implements Source: release due entries and advance the cursor.
func (r *Replayer) Tick(f *router.Fabric, now int64) {
	// Collect this cycle's injectable set: previously released entries
	// whose cycle has come, plus newly activated cursor entries.
	var due []int
	if len(r.pending) > 0 {
		keep := r.pending[:0]
		for _, rel := range r.pending {
			if rel.at <= now {
				due = append(due, rel.entry)
			} else {
				keep = append(keep, rel)
			}
		}
		r.pending = keep
	}
	for r.cursor < len(r.trace.Entries) && r.trace.Entries[r.cursor].Cycle <= now {
		e := &r.trace.Entries[r.cursor]
		if e.Dep == packet.NoDep || r.deliveredBit(e.Dep) {
			due = append(due, r.cursor)
		} else {
			r.waiting[e.Dep] = append(r.waiting[e.Dep], r.cursor)
			r.nwaiting++
		}
		r.cursor++
	}
	// Entry-index order is the canonical injection order: it equals the
	// recorded order whenever dependencies do not reorder releases.
	sort.Ints(due)
	for _, idx := range due {
		r.inject(f, idx, now)
	}
}

func (r *Replayer) inject(f *router.Fabric, idx int, now int64) {
	e := &r.trace.Entries[idx]
	var p *packet.Packet
	if r.pool != nil {
		p = r.pool.Get()
	} else {
		p = new(packet.Packet)
	}
	*p = packet.Packet{
		ID:        r.nextID,
		MsgID:     e.Msg,
		SeqInMsg:  e.Seq,
		Src:       r.endpoints[e.Src],
		Dst:       r.endpoints[e.Dst],
		Tag:       r.policy.Tag(e.Msg, e.Seq),
		Len:       e.Flits,
		CreatedAt: now,
		Class:     e.Class,
		Dep:       e.Dep,
		Measured:  r.measured,
	}
	r.inflight[p.ID] = idx
	r.nextID++
	if r.measured {
		r.offered++
	}
	f.Routers[p.Src].Inject(p, now)
}

// OnDeliver implements Source: mark the entry delivered and release any
// entries that were waiting on it, for injection next cycle.
func (r *Replayer) OnDeliver(p *packet.Packet, now int64) {
	idx, ok := r.inflight[p.ID]
	if !ok {
		return
	}
	delete(r.inflight, p.ID)
	r.delivered[idx>>6] |= 1 << uint(idx&63)
	if ws, ok := r.waiting[int64(idx)]; ok {
		delete(r.waiting, int64(idx))
		r.nwaiting -= len(ws)
		for _, w := range ws {
			r.pending = append(r.pending, replayRelease{entry: w, at: now + 1})
		}
	}
}

// Snapshot implements Source: the cursor, the delivery bitmap, and the
// release/waiting/in-flight bookkeeping, all in deterministic order.
func (r *Replayer) Snapshot() checkpoint.GeneratorState {
	rs := &checkpoint.ReplayCursorState{
		Cursor:    r.cursor,
		Delivered: append([]uint64(nil), r.delivered...),
	}
	for _, rel := range r.pending {
		rs.Pending = append(rs.Pending, checkpoint.ReplayPendingState{Entry: rel.entry, At: rel.at})
	}
	sort.Slice(rs.Pending, func(a, b int) bool {
		if rs.Pending[a].At != rs.Pending[b].At {
			return rs.Pending[a].At < rs.Pending[b].At
		}
		return rs.Pending[a].Entry < rs.Pending[b].Entry
	})
	for _, ws := range r.waiting {
		rs.Waiting = append(rs.Waiting, ws...)
	}
	sort.Ints(rs.Waiting)
	for pkt, entry := range r.inflight {
		rs.InFlight = append(rs.InFlight, checkpoint.ReplayFlightState{Pkt: pkt, Entry: entry})
	}
	sort.Slice(rs.InFlight, func(a, b int) bool { return rs.InFlight[a].Pkt < rs.InFlight[b].Pkt })
	return checkpoint.GeneratorState{
		NextID:         r.nextID,
		OfferedPackets: r.offered,
		Replay:         rs,
	}
}

// Restore implements Source.
func (r *Replayer) Restore(st *checkpoint.GeneratorState) error {
	rs := st.Replay
	if rs == nil {
		return fmt.Errorf("%w: snapshot was not taken from a trace replayer", checkpoint.ErrMismatch)
	}
	n := len(r.trace.Entries)
	if rs.Cursor < 0 || rs.Cursor > n || len(rs.Delivered) != (n+63)/64 {
		return fmt.Errorf("%w: snapshot cursor does not fit this trace (%d entries)", checkpoint.ErrMismatch, n)
	}
	r.cursor = rs.Cursor
	copy(r.delivered, rs.Delivered)
	r.pending = r.pending[:0]
	for _, p := range rs.Pending {
		if p.Entry < 0 || p.Entry >= n {
			return fmt.Errorf("%w: pending entry %d outside trace", checkpoint.ErrMismatch, p.Entry)
		}
		r.pending = append(r.pending, replayRelease{entry: p.Entry, at: p.At})
	}
	r.waiting = make(map[int64][]int)
	r.nwaiting = 0
	for _, w := range rs.Waiting {
		if w < 0 || w >= n {
			return fmt.Errorf("%w: waiting entry %d outside trace", checkpoint.ErrMismatch, w)
		}
		dep := r.trace.Entries[w].Dep
		if dep == packet.NoDep {
			return fmt.Errorf("%w: waiting entry %d has no dependency", checkpoint.ErrMismatch, w)
		}
		r.waiting[dep] = append(r.waiting[dep], w)
		r.nwaiting++
	}
	r.inflight = make(map[uint64]int, len(rs.InFlight))
	for _, fl := range rs.InFlight {
		if fl.Entry < 0 || fl.Entry >= n {
			return fmt.Errorf("%w: in-flight entry %d outside trace", checkpoint.ErrMismatch, fl.Entry)
		}
		r.inflight[fl.Pkt] = fl.Entry
	}
	r.nextID = st.NextID
	r.offered = st.OfferedPackets
	return nil
}
