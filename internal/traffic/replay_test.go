package traffic

import (
	"errors"
	"reflect"
	"testing"

	"chipletnet/internal/checkpoint"
	"chipletnet/internal/collective"
	"chipletnet/internal/interleave"
	"chipletnet/internal/packet"
	"chipletnet/internal/workload"
)

// delivery is one observed sink event.
type delivery struct {
	id    uint64
	cycle int64
}

// driveSource runs src on a fresh local-delivery fabric until the network
// is empty and done reports completion (or the cycle cap is hit), and
// returns the delivery sequence in sink order.
func driveSource(t *testing.T, nodes int, src Source, maxCycles int64, done func() bool) []delivery {
	t.Helper()
	f := sinkFabric(nodes)
	var seq []delivery
	f.Sink = func(p *packet.Packet, now int64) {
		seq = append(seq, delivery{p.ID, now})
		src.OnDeliver(p, now)
	}
	src.SetMeasured(true)
	for cy := int64(1); cy <= maxCycles; cy++ {
		src.Tick(f, cy)
		f.Step()
		if f.InFlight() == 0 && done() {
			return seq
		}
	}
	t.Fatalf("source did not finish within %d cycles (%d deliveries)", maxCycles, len(seq))
	return nil
}

func denseEndpoints(n int) []int {
	eps := make([]int, n)
	for i := range eps {
		eps[i] = i
	}
	return eps
}

// replayTrace is a trace with one dependency chain and a concurrent
// independent packet, small enough to reason about exactly.
func replayTrace() *workload.Trace {
	return &workload.Trace{
		Version:   workload.FormatVersion,
		Endpoints: 4,
		Entries: []workload.Entry{
			{ID: 0, Cycle: 1, Src: 0, Dst: 1, Flits: 4, Msg: 0, Seq: 0, Class: packet.ClassLatency, Dep: packet.NoDep},
			{ID: 1, Cycle: 1, Src: 2, Dst: 3, Flits: 4, Msg: 1, Seq: 0, Class: packet.ClassBulk, Dep: packet.NoDep},
			{ID: 2, Cycle: 2, Src: 1, Dst: 0, Flits: 4, Msg: 2, Seq: 0, Class: packet.ClassLatency, Dep: 0},
		},
	}
}

func TestReplayerCausality(t *testing.T) {
	tr := replayTrace()
	r, err := NewReplayer(tr, denseEndpoints(4), interleave.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	f := sinkFabric(4)
	injectedAt := map[uint64]int64{}
	deliveredAt := map[uint64]int64{}
	f.Sink = func(p *packet.Packet, now int64) {
		injectedAt[p.ID] = p.CreatedAt
		deliveredAt[p.ID] = now
		r.OnDeliver(p, now)
	}
	r.SetMeasured(true)
	for cy := int64(1); cy <= 100 && (r.Remaining() > 0 || f.InFlight() > 0); cy++ {
		r.Tick(f, cy)
		f.Step()
	}
	if len(deliveredAt) != 3 {
		t.Fatalf("delivered %d of 3 packets", len(deliveredAt))
	}
	// Dependency-free entries inject at their recorded cycles.
	if injectedAt[0] != 1 || injectedAt[1] != 1 {
		t.Errorf("root entries injected at %d and %d, want their recorded cycle 1", injectedAt[0], injectedAt[1])
	}
	// The dependent entry waits for its dependency's delivery: injection
	// at exactly the cycle after, which here is later than its recorded
	// cycle 2.
	want := deliveredAt[0] + 1
	if injectedAt[2] != want {
		t.Errorf("dependent entry injected at %d, want dependency delivery %d + 1", injectedAt[2], deliveredAt[0])
	}
	if want <= 2 {
		t.Fatalf("test is vacuous: dependency delivered at %d, before the recorded cycle", deliveredAt[0])
	}
	if r.Offered() != 3 || r.TotalPackets() != 3 {
		t.Errorf("offered %d total %d, want 3 and 3", r.Offered(), r.TotalPackets())
	}
}

// A dependency-free trace replayed under its recording conditions must
// reproduce the injection stream exactly: recorded cycles, recorded order.
func TestReplayerReproducesRecordedCycles(t *testing.T) {
	tr := &workload.Trace{Version: workload.FormatVersion, Endpoints: 4}
	for i := 0; i < 12; i++ {
		tr.Entries = append(tr.Entries, workload.Entry{
			ID: int64(i), Cycle: int64(1 + i/2), Src: i % 4, Dst: (i + 1) % 4,
			Flits: 2, Msg: uint64(i), Dep: packet.NoDep,
		})
	}
	r, err := NewReplayer(tr, denseEndpoints(4), interleave.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	f := sinkFabric(4)
	injectedAt := map[uint64]int64{}
	f.Sink = func(p *packet.Packet, now int64) {
		injectedAt[p.ID] = p.CreatedAt
		r.OnDeliver(p, now)
	}
	for cy := int64(1); cy <= 200 && (r.Remaining() > 0 || f.InFlight() > 0); cy++ {
		r.Tick(f, cy)
		f.Step()
	}
	for i, e := range tr.Entries {
		if injectedAt[uint64(i)] != e.Cycle {
			t.Errorf("entry %d injected at %d, recorded cycle %d", i, injectedAt[uint64(i)], e.Cycle)
		}
	}
}

func TestReplayerDeterministic(t *testing.T) {
	run := func() []delivery {
		r, err := NewReplayer(replayTrace(), denseEndpoints(4), interleave.Policy{})
		if err != nil {
			t.Fatal(err)
		}
		return driveSource(t, 4, r, 200, func() bool { return r.Remaining() == 0 })
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("replay delivery sequences differ:\n%v\n%v", a, b)
	}
}

// Snapshot -> Restore into a fresh replayer -> Snapshot must be a fixed
// point, including mid-run with in-flight packets and blocked waiters.
func TestReplayerSnapshotRoundTrip(t *testing.T) {
	tr := replayTrace()
	r, err := NewReplayer(tr, denseEndpoints(4), interleave.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	f := sinkFabric(4)
	f.Sink = func(p *packet.Packet, now int64) { r.OnDeliver(p, now) }
	r.SetMeasured(true)
	// Stop after cycle 2: entries 0 and 1 in flight, entry 2 blocked on 0.
	for cy := int64(1); cy <= 2; cy++ {
		r.Tick(f, cy)
		f.Step()
	}
	st := r.Snapshot()
	if st.Replay == nil {
		t.Fatal("replayer snapshot has no replay section")
	}
	// Entry 2 cannot have been injected yet (its dependency's delivery
	// gates it to cycle 3 at the earliest), so it is blocked: either still
	// waiting on the dependency or released and pending injection.
	if len(st.Replay.Waiting)+len(st.Replay.Pending) != 1 {
		t.Errorf("blocked set waiting=%v pending=%v, want exactly entry 2", st.Replay.Waiting, st.Replay.Pending)
	}
	r2, err := NewReplayer(tr, denseEndpoints(4), interleave.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Restore(&st); err != nil {
		t.Fatal(err)
	}
	st2 := r2.Snapshot()
	if !reflect.DeepEqual(st, st2) {
		t.Errorf("snapshot not a fixed point:\n in: %+v\nout: %+v", st, st2)
	}
	if r2.Remaining() != r.Remaining() {
		t.Errorf("restored Remaining %d, want %d", r2.Remaining(), r.Remaining())
	}
}

func TestReplayerRestoreMismatch(t *testing.T) {
	tr := replayTrace()
	r, _ := NewReplayer(tr, denseEndpoints(4), interleave.Policy{})
	// A synthetic-generator snapshot has no replay section.
	if err := r.Restore(&checkpoint.GeneratorState{}); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("generator snapshot accepted: %v", err)
	}
	// A snapshot from a longer trace does not fit.
	big := replayTrace()
	big.Entries = append(big.Entries, workload.Entry{ID: 3, Cycle: 9, Src: 0, Dst: 2, Flits: 1, Msg: 3})
	rb, _ := NewReplayer(big, denseEndpoints(4), interleave.Policy{})
	f := sinkFabric(4)
	f.Sink = func(p *packet.Packet, now int64) { rb.OnDeliver(p, now) }
	for cy := int64(1); cy <= 10; cy++ {
		rb.Tick(f, cy)
		f.Step()
	}
	st := rb.Snapshot()
	if err := r.Restore(&st); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("snapshot of a longer trace accepted: %v", err)
	}
	// The generator symmetrically refuses replayer snapshots.
	pat, _ := NewPattern("uniform", 4, 1)
	g, _ := NewGenerator(denseEndpoints(4), pat, 0.1, 4, 1, interleave.Policy{}, 1)
	rs := r.Snapshot()
	if err := g.Restore(&rs); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("generator restored a replayer snapshot: %v", err)
	}
}

func TestReplayerEndpointCountMismatch(t *testing.T) {
	if _, err := NewReplayer(replayTrace(), denseEndpoints(8), interleave.Policy{}); err == nil {
		t.Error("trace replayed onto a system with a different endpoint count")
	}
}

func aiSpec() workload.AIScaleOutSpec {
	return workload.AIScaleOutSpec{
		Collective: "allreduce-ring", DataFlits: 32, ComputeCycles: 20,
		Phases: 2, MemRate: 0.1, ReqRate: 0.05, ReqFlits: 2,
	}
}

func newAI(t *testing.T, n int, seed uint64) *AIScaleOut {
	t.Helper()
	spec := aiSpec()
	a, err := NewAIScaleOut(collective.RingAllReduce{VectorFlits: spec.DataFlits}, spec, denseEndpoints(n), 4, interleave.Policy{G: interleave.Message}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// The generator must emit all three traffic classes, advance through its
// bounded phases, and annotate responses with their request's packet id.
func TestAIScaleOutClassesAndPhases(t *testing.T) {
	a := newAI(t, 4, 7)
	f := sinkFabric(4)
	classSeen := map[uint8]int{}
	responses := 0
	f.Sink = func(p *packet.Packet, now int64) {
		classSeen[p.Class]++
		if p.Class == packet.ClassLatency && p.Dep != packet.NoDep {
			responses++
		}
		a.OnDeliver(p, now)
	}
	a.SetMeasured(true)
	for cy := int64(1); cy <= 2000; cy++ {
		a.Tick(f, cy)
		f.Step()
	}
	if classSeen[packet.ClassCollective] == 0 || classSeen[packet.ClassBulk] == 0 || classSeen[packet.ClassLatency] == 0 {
		t.Errorf("class mix %v, want all three classes present", classSeen)
	}
	if responses == 0 {
		t.Error("no dependency-annotated responses delivered")
	}
	if a.Phases() != 2 {
		t.Errorf("completed %d phases, want the spec bound 2", a.Phases())
	}
}

func TestAIScaleOutDeterministic(t *testing.T) {
	run := func(seed uint64) []delivery {
		a := newAI(t, 4, seed)
		f := sinkFabric(4)
		var seq []delivery
		f.Sink = func(p *packet.Packet, now int64) {
			seq = append(seq, delivery{p.ID, now})
			a.OnDeliver(p, now)
		}
		a.SetMeasured(true)
		for cy := int64(1); cy <= 500; cy++ {
			a.Tick(f, cy)
			f.Step()
		}
		return seq
	}
	if a, b := run(3), run(3); !reflect.DeepEqual(a, b) {
		t.Error("identical seeds produced different delivery sequences")
	}
	if a, b := run(3), run(4); reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical delivery sequences")
	}
}

// Mid-run snapshot -> restore into a fresh generator -> snapshot must be
// a fixed point, with collective sends, requests and responses in flight.
func TestAIScaleOutSnapshotRoundTrip(t *testing.T) {
	a := newAI(t, 4, 11)
	f := sinkFabric(4)
	f.Sink = func(p *packet.Packet, now int64) { a.OnDeliver(p, now) }
	a.SetMeasured(true)
	for cy := int64(1); cy <= 40; cy++ {
		a.Tick(f, cy)
		f.Step()
	}
	st := a.Snapshot()
	if st.AIScaleOut == nil {
		t.Fatal("aiscaleout snapshot has no aiscaleout section")
	}
	b := newAI(t, 4, 999) // different seed: Restore must overwrite the streams
	if err := b.Restore(&st); err != nil {
		t.Fatal(err)
	}
	st2 := b.Snapshot()
	if !reflect.DeepEqual(st, st2) {
		t.Errorf("snapshot not a fixed point:\n in: %+v\nout: %+v", st, st2)
	}
	// Cross-source refusal: an aiscaleout snapshot does not restore into a
	// replayer or generator.
	r, _ := NewReplayer(replayTrace(), denseEndpoints(4), interleave.Policy{})
	if err := r.Restore(&st); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("replayer restored an aiscaleout snapshot: %v", err)
	}
}

func TestAIScaleOutValidation(t *testing.T) {
	spec := aiSpec()
	alg := collective.RingAllReduce{VectorFlits: spec.DataFlits}
	if _, err := NewAIScaleOut(alg, spec, denseEndpoints(1), 4, interleave.Policy{}, 1); err == nil {
		t.Error("single endpoint accepted")
	}
	if _, err := NewAIScaleOut(alg, spec, denseEndpoints(4), 0, interleave.Policy{}, 1); err == nil {
		t.Error("zero packet length accepted")
	}
	bad := spec
	bad.ReqFlits = 0
	if _, err := NewAIScaleOut(alg, bad, denseEndpoints(4), 4, interleave.Policy{}, 1); err == nil {
		t.Error("zero request length accepted")
	}
}
