// Package traffic generates synthetic workloads: the six traffic patterns
// of the paper's evaluation (§VI-B) and a Bernoulli injection process with
// message framing for the network-interleaving experiments.
package traffic

import (
	"fmt"
	"math/bits"

	"chipletnet/internal/rng"
)

// Pattern maps a source endpoint index to a destination endpoint index.
// Endpoint indices are dense [0, N); the generator translates them to
// global node ids.
type Pattern interface {
	Name() string
	// Dest returns the destination endpoint for source s; r supplies
	// randomness for stochastic patterns.
	Dest(s int, r *rng.Rand) int
}

// NewPattern constructs one of the named patterns over n endpoints:
// "uniform", "hotspot", "bit-complement", "bit-reverse", "bit-shuffle",
// "bit-transpose". The bit permutations are defined over b = floor(log2 n)
// bits; when n is not a power of two, sources with indices >= 2^b fall back
// to uniform destinations (the paper's configurations are powers of two).
// seed makes the stochastic patterns reproducible.
func NewPattern(name string, n int, seed uint64) (Pattern, error) {
	if n < 2 {
		return nil, fmt.Errorf("traffic: need at least 2 endpoints, got %d", n)
	}
	b := bits.Len(uint(n)) - 1 // floor(log2 n)
	switch name {
	case "uniform":
		return uniform{n: n}, nil
	case "hotspot":
		return newHotspot(n, seed), nil
	case "bit-complement":
		return bitPerm{name: "bit-complement", n: n, b: b, f: func(s, b int) int {
			return (^s) & (1<<uint(b) - 1)
		}}, nil
	case "bit-reverse":
		return bitPerm{name: "bit-reverse", n: n, b: b, f: func(s, b int) int {
			d := 0
			for i := 0; i < b; i++ {
				if s&(1<<uint(i)) != 0 {
					d |= 1 << uint(b-1-i)
				}
			}
			return d
		}}, nil
	case "bit-shuffle":
		// d_i = s_{(i-1) mod b}: a left rotation of the source bits.
		return bitPerm{name: "bit-shuffle", n: n, b: b, f: func(s, b int) int {
			mask := 1<<uint(b) - 1
			return ((s << 1) | (s >> uint(b-1))) & mask
		}}, nil
	case "bit-transpose":
		// d_i = s_{(i+b/2) mod b}: a rotation by b/2.
		return bitPerm{name: "bit-transpose", n: n, b: b, f: func(s, b int) int {
			h := b / 2
			mask := 1<<uint(b) - 1
			return ((s >> uint(h)) | (s << uint(b-h))) & mask
		}}, nil
	case "neighbor":
		// Localized traffic (the communication style wafer-scale 2D-mesh
		// systems are tuned for, §II-B): destinations are drawn uniformly
		// from a window of nearby endpoint indices. Endpoints are
		// enumerated chiplet-major, so index locality approximates
		// chiplet locality.
		w := n / 32
		if w < 4 {
			w = 4
		}
		if w >= n {
			w = n - 1
		}
		return neighbor{n: n, window: w}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// neighbor draws destinations within ±window of the source index.
type neighbor struct {
	n, window int
}

func (p neighbor) Name() string { return "neighbor" }

func (p neighbor) Dest(s int, r *rng.Rand) int {
	off := r.Intn(2*p.window) + 1 // 1..2w
	if off > p.window {
		off = p.window - off // -1..-w
	}
	d := s + off
	// Reflect at the ends so the distribution stays local.
	if d < 0 {
		d = -d
	}
	if d >= p.n {
		d = 2*(p.n-1) - d
	}
	if d == s {
		d = (s + 1) % p.n
	}
	return d
}

// PatternNames lists the supported pattern names in the paper's order.
func PatternNames() []string {
	return []string{"uniform", "hotspot", "bit-complement", "bit-reverse", "bit-shuffle", "bit-transpose"}
}

type uniform struct{ n int }

func (u uniform) Name() string { return "uniform" }

func (u uniform) Dest(s int, r *rng.Rand) int {
	d := r.Intn(u.n - 1)
	if d >= s {
		d++
	}
	return d
}

// hotspot restricts traffic to a random 10% of node pairs: every source
// draws a fixed set of max(1, (n-1)/10) destinations at construction and
// injects uniformly among them.
type hotspot struct {
	n     int
	dests [][]int
}

func newHotspot(n int, seed uint64) *hotspot {
	h := &hotspot{n: n, dests: make([][]int, n)}
	root := rng.New(seed ^ 0x407c0ffee5e7)
	k := (n - 1) / 10
	if k < 1 {
		k = 1
	}
	for s := 0; s < n; s++ {
		r := root.Split(uint64(s))
		perm := r.Perm(n - 1)
		ds := make([]int, k)
		for i := 0; i < k; i++ {
			d := perm[i]
			if d >= s {
				d++
			}
			ds[i] = d
		}
		h.dests[s] = ds
	}
	return h
}

func (h *hotspot) Name() string { return "hotspot" }

func (h *hotspot) Dest(s int, r *rng.Rand) int {
	ds := h.dests[s]
	return ds[r.Intn(len(ds))]
}

// bitPerm applies a deterministic permutation over b-bit indices; sources
// outside [0, 2^b) or mapped to themselves fall back to uniform.
type bitPerm struct {
	name string
	n    int
	b    int
	f    func(s, b int) int
}

func (p bitPerm) Name() string { return p.name }

func (p bitPerm) Dest(s int, r *rng.Rand) int {
	if s < 1<<uint(p.b) {
		d := p.f(s, p.b)
		if d != s && d < p.n {
			return d
		}
	}
	d := r.Intn(p.n - 1)
	if d >= s {
		d++
	}
	return d
}
