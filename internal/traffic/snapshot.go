package traffic

import (
	"fmt"

	"chipletnet/internal/checkpoint"
)

// Snapshot captures the generator's cursor state: the per-endpoint
// injection stream positions and the packet/message id counters. The
// pattern, rate, and interleave policy are not captured — they are
// reconstructed from the configuration and hold no mutable state.
func (g *Generator) Snapshot() checkpoint.GeneratorState {
	st := checkpoint.GeneratorState{
		Rands:          make([]uint64, len(g.rands)),
		NextID:         g.nextID,
		NextMsg:        g.nextMsg,
		OfferedPackets: g.OfferedPackets,
	}
	for i, r := range g.rands {
		st.Rands[i] = r.State()
	}
	return st
}

// Restore lays snapshot state back onto a generator freshly constructed
// from the same configuration.
func (g *Generator) Restore(st *checkpoint.GeneratorState) error {
	if st.Replay != nil || st.AIScaleOut != nil {
		return fmt.Errorf("%w: snapshot was taken from a different traffic source kind",
			checkpoint.ErrMismatch)
	}
	if len(st.Rands) != len(g.rands) {
		return fmt.Errorf("%w: snapshot has %d injection streams, generator has %d",
			checkpoint.ErrMismatch, len(st.Rands), len(g.rands))
	}
	for i, s := range st.Rands {
		g.rands[i].SetState(s)
	}
	g.nextID = st.NextID
	g.nextMsg = st.NextMsg
	g.OfferedPackets = st.OfferedPackets
	return nil
}
