package router

// fifo is a simple amortized-O(1) queue with a moving head index.
// It avoids the per-element allocation of container/list and the
// capacity leak of repeated q = q[1:].
type fifo[T any] struct {
	items []T
	head  int
}

func (f *fifo[T]) Len() int { return len(f.items) - f.head }

func (f *fifo[T]) Push(v T) { f.items = append(f.items, v) }

// Front returns a pointer to the first element. It panics if empty.
func (f *fifo[T]) Front() *T { return &f.items[f.head] }

// At returns a pointer to the i-th element from the front.
func (f *fifo[T]) At(i int) *T { return &f.items[f.head+i] }

// Reset empties the queue, releasing element references for GC but
// keeping the backing array so a reused queue reaches steady state
// without allocating.
func (f *fifo[T]) Reset() {
	var zero T
	for i := f.head; i < len(f.items); i++ {
		f.items[i] = zero
	}
	f.items = f.items[:0]
	f.head = 0
}

func (f *fifo[T]) Pop() T {
	v := f.items[f.head]
	var zero T
	f.items[f.head] = zero // release references for GC
	f.head++
	// Compact once the dead prefix dominates, so memory stays bounded.
	if f.head > 32 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return v
}
