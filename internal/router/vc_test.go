package router

import (
	"testing"

	"chipletnet/internal/packet"
)

// vcSplitRouting sends odd packet IDs on VC1 and even on VC0, forcing two
// flows to share one physical link on different virtual channels.
type vcSplitRouting struct{}

func (vcSplitRouting) Candidates(r *Router, inPort int, p *packet.Packet, buf []Candidate) []Candidate {
	if r.Node == p.Dst {
		return append(buf, Candidate{Port: 0, VCMask: VCMaskAll(len(r.Out[0].Credits))})
	}
	mask := uint32(0b01)
	if p.ID%2 == 1 {
		mask = 0b10
	}
	return append(buf, Candidate{Port: 1, VCMask: mask, Escape: true})
}

func (vcSplitRouting) SafeAt(*Router, int, *packet.Packet) bool { return true }

// TestVCMultiplexingSharesLink: with one flow's VC blocked by a slow
// consumer, the other VC must keep the link flowing.
func TestVCMultiplexingInterleavesFlows(t *testing.T) {
	f := buildLine(2, 2, 64, 2, 1)
	f.Routing = vcSplitRouting{}
	var got []uint64
	f.Sink = func(p *packet.Packet, now int64) { got = append(got, p.ID) }
	// Two packets per VC class.
	for i := uint64(1); i <= 4; i++ {
		f.Routers[0].Inject(mkPacket(i, 0, 1, 32, 0), 0)
	}
	runCycles(f, 400)
	if len(got) != 4 {
		t.Fatalf("delivered %d of 4", len(got))
	}
	// Both VC classes must have been used on the link.
	ip := f.Routers[1].In[1]
	if len(ip.VCs) != 2 {
		t.Fatal("expected 2 VCs")
	}
}

// TestVCClassIsolation: a packet restricted to VC1 must never occupy VC0.
func TestVCClassIsolation(t *testing.T) {
	f := buildLine(2, 2, 64, 4, 1)
	f.Routing = vcSplitRouting{}
	occupiedVC0 := false
	f.Sink = func(p *packet.Packet, now int64) {}
	f.Routers[0].Inject(mkPacket(1, 0, 1, 32, 0), 0) // odd id -> VC1 only
	for i := 0; i < 200; i++ {
		f.Step()
		vc0 := f.Routers[1].In[1].VCs[0]
		if vc0.Occupied() > 0 {
			occupiedVC0 = true
		}
	}
	if occupiedVC0 {
		t.Error("VC1-restricted packet appeared in VC0")
	}
}

// TestSafeMarkingAtArrival: packets are marked with the routing's SafeAt
// verdict when they enter a buffer.
func TestSafeMarkingAtArrival(t *testing.T) {
	f := buildLine(3, 2, 64, 4, 1)
	f.Routing = lineRouting{safe: func(node int, p *packet.Packet) bool { return node == 1 }}
	f.Sink = func(p *packet.Packet, now int64) {}
	f.Routers[0].Inject(mkPacket(1, 0, 2, 32, 0), 0)
	sawSafeAt1 := false
	for i := 0; i < 200; i++ {
		f.Step()
		if f.Routers[1].In[1].SafePackets() > 0 {
			sawSafeAt1 = true
		}
		if f.Routers[2].In[1].SafePackets() > 0 {
			t.Fatal("packet marked safe at node 2 where SafeAt is false")
		}
	}
	if !sawSafeAt1 {
		t.Error("packet never marked safe at node 1")
	}
}

// TestLinkUtilizationCounter: utilization reflects carried flits.
func TestLinkUtilizationCounter(t *testing.T) {
	f := buildLine(2, 2, 64, 4, 1)
	f.Sink = func(p *packet.Packet, now int64) {}
	f.Routers[0].Inject(mkPacket(1, 0, 1, 32, 0), 0)
	runCycles(f, 100)
	l := f.Links[0]
	if l.Carried != 32 {
		t.Errorf("carried %d flits, want 32", l.Carried)
	}
	want := 32.0 / (4.0 * float64(f.Now))
	if got := l.Utilization(f.Now); got != want {
		t.Errorf("utilization %g, want %g", got, want)
	}
	if l.Utilization(0) != 0 {
		t.Error("zero-cycle utilization should be 0")
	}
}

// TestInFlightLinkAccounting: flits on the wire are visible via InFlight.
func TestInFlightLinkAccounting(t *testing.T) {
	f := buildLine(2, 2, 64, 4, 20) // 20-cycle link
	f.Sink = func(p *packet.Packet, now int64) {}
	f.Routers[0].Inject(mkPacket(1, 0, 1, 8, 0), 0)
	seen := 0
	for i := 0; i < 60; i++ {
		f.Step()
		if n := f.Links[0].InFlight(); n > seen {
			seen = n
		}
	}
	if seen == 0 {
		t.Error("no flits ever observed in flight on a 20-cycle link")
	}
	if f.Links[0].InFlight() != 0 {
		t.Error("flits stuck on the link after delivery")
	}
}
