package router

import (
	"fmt"

	"chipletnet/internal/checkpoint"
	"chipletnet/internal/packet"
)

// Snapshot captures the fabric's complete dynamic state into a
// checkpoint.FabricState, interning every referenced packet in tbl.
// Structural state (routers, ports, links, routing) is not captured — the
// restore side rebuilds it from the configuration and only the dynamic
// state is laid back on top.
func (f *Fabric) Snapshot(tbl *checkpoint.PacketTable) checkpoint.FabricState {
	st := checkpoint.FabricState{
		Now:          f.Now,
		LastProgress: f.lastProgress,
		InFlight:     f.inFlight,
		Routers:      make([]checkpoint.RouterState, len(f.Routers)),
		Links:        make([]checkpoint.LinkState, len(f.Links)),
	}
	for i, r := range f.Routers {
		st.Routers[i] = r.snapshot(tbl)
	}
	for i, l := range f.Links {
		st.Links[i] = l.snapshot(tbl)
	}
	return st
}

func (r *Router) snapshot(tbl *checkpoint.PacketTable) checkpoint.RouterState {
	rs := checkpoint.RouterState{
		VAOffset: r.vaOffset,
		In:       make([]checkpoint.InPortState, len(r.In)),
		Out:      make([]checkpoint.OutPortState, len(r.Out)),
	}
	for pi, ip := range r.In {
		vcs := make([]checkpoint.VCState, len(ip.VCs))
		for vi, vc := range ip.VCs {
			vs := checkpoint.VCState{
				Flits:     vc.flits,
				State:     uint8(vc.state),
				ReadyAt:   vc.readyAt,
				GrantedAt: vc.grantedAt,
				OutPort:   -1,
				OutVC:     vc.outVC,
				Queue:     make([]checkpoint.PktInstState, vc.q.Len()),
			}
			if vc.outPort != nil {
				vs.OutPort = vc.outPort.Index
			}
			for qi := 0; qi < vc.q.Len(); qi++ {
				inst := vc.q.At(qi)
				vs.Queue[qi] = checkpoint.PktInstState{
					Pkt:      tbl.Ref(inst.p),
					Received: inst.received,
					Sent:     inst.sent,
					Safe:     inst.safe,
				}
			}
			vcs[vi] = vs
		}
		rs.In[pi] = checkpoint.InPortState{VCs: vcs}
	}
	for oi, o := range r.Out {
		os := checkpoint.OutPortState{
			Credits: append([]int(nil), o.Credits...),
			Owners:  make([]checkpoint.VCRef, len(o.Owner)),
			Granted: make([]checkpoint.VCRef, len(o.granted)),
		}
		for i, v := range o.Owner {
			os.Owners[i] = vcRef(v)
		}
		for i, v := range o.granted {
			os.Granted[i] = vcRef(v)
		}
		rs.Out[oi] = os
	}
	return rs
}

// vcRef names an input VC of its own router; grants and ownership never
// cross routers.
func vcRef(v *VC) checkpoint.VCRef {
	if v == nil {
		return checkpoint.VCRef{Port: -1, VC: -1}
	}
	return checkpoint.VCRef{Port: v.Port.Index, VC: v.Index}
}

func (l *Link) snapshot(tbl *checkpoint.PacketTable) checkpoint.LinkState {
	ls := checkpoint.LinkState{
		Bandwidth: l.Bandwidth,
		Latency:   l.Latency,
		Carried:   l.Carried,
		Flits:     make([]checkpoint.FlitBundleState, l.flits.Len()),
		Credits:   make([]checkpoint.CreditBundleState, l.credits.Len()),
		Acks:      make([]checkpoint.AckState, l.acks.Len()),
	}
	for i := 0; i < l.flits.Len(); i++ {
		b := l.flits.At(i)
		ls.Flits[i] = checkpoint.FlitBundleState{
			Pkt: tbl.Ref(b.p), N: b.n, VC: b.vc,
			ArriveAt: b.arriveAt, Seq: b.seq, Corrupt: b.corrupt,
		}
	}
	for i := 0; i < l.credits.Len(); i++ {
		c := l.credits.At(i)
		ls.Credits[i] = checkpoint.CreditBundleState{VC: c.vc, N: c.n, ArriveAt: c.arriveAt}
	}
	for i := 0; i < l.acks.Len(); i++ {
		a := l.acks.At(i)
		ls.Acks[i] = checkpoint.AckState{Seq: a.seq, Nack: a.nack, ArriveAt: a.arriveAt}
	}
	if l.Rel != nil {
		rel := &checkpoint.LinkRelState{
			CorruptedFlits:   l.Rel.CorruptedFlits,
			CorruptedBundles: l.Rel.CorruptedBundles,
			Retransmissions:  l.Rel.Retransmissions,
			Nacks:            l.Rel.Nacks,
			NextSeq:          l.Rel.nextSeq,
			Expect:           l.Rel.expect,
			Backoff:          l.Rel.backoff,
			RetryAt:          l.Rel.retryAt,
			Replay:           make([]checkpoint.ReplayEntryState, l.Rel.replay.Len()),
		}
		for i := 0; i < l.Rel.replay.Len(); i++ {
			e := l.Rel.replay.At(i)
			rel.Replay[i] = checkpoint.ReplayEntryState{
				Pkt: tbl.Ref(e.p), N: e.n, VC: e.vc, Seq: e.seq, SentAt: e.sentAt,
			}
		}
		ls.Rel = rel
	}
	return ls
}

// Restore lays snapshot state back onto a structurally identical fabric
// (same Build from the same configuration, reliability protocol already
// re-attached). pkts is the materialized packet table; it resolves every
// packet reference in st. A snapshot that does not fit the structure is
// rejected with an error wrapping checkpoint.ErrMismatch.
func (f *Fabric) Restore(st *checkpoint.FabricState, pkts []*packet.Packet) error {
	if len(st.Routers) != len(f.Routers) || len(st.Links) != len(f.Links) {
		return fmt.Errorf("%w: snapshot has %d routers / %d links, fabric has %d / %d",
			checkpoint.ErrMismatch, len(st.Routers), len(st.Links), len(f.Routers), len(f.Links))
	}
	pk := func(i int) (*packet.Packet, error) {
		if i == -1 {
			return nil, nil
		}
		if i < 0 || i >= len(pkts) {
			return nil, fmt.Errorf("%w: packet reference %d out of range (%d packets)",
				checkpoint.ErrMismatch, i, len(pkts))
		}
		return pkts[i], nil
	}
	for i, r := range f.Routers {
		if err := r.restore(&st.Routers[i], pk); err != nil {
			return fmt.Errorf("router %d: %w", r.Node, err)
		}
	}
	for i, l := range f.Links {
		if err := l.restore(&st.Links[i], pk); err != nil {
			return fmt.Errorf("link %d: %w", l.ID, err)
		}
	}
	f.Now = st.Now
	f.lastProgress = st.LastProgress
	f.inFlight = st.InFlight
	// The active sets and grants counters are derived state, not part of
	// the snapshot format; reconstruct them from what was just laid down.
	f.rebuildActive()
	return nil
}

func (r *Router) restore(rs *checkpoint.RouterState, pk func(int) (*packet.Packet, error)) error {
	if len(rs.In) != len(r.In) || len(rs.Out) != len(r.Out) {
		return fmt.Errorf("%w: snapshot has %d in / %d out ports, router has %d / %d",
			checkpoint.ErrMismatch, len(rs.In), len(rs.Out), len(r.In), len(r.Out))
	}
	r.vaOffset = rs.VAOffset
	r.waiting = 0
	for pi, ip := range r.In {
		ps := &rs.In[pi]
		if len(ps.VCs) != len(ip.VCs) {
			return fmt.Errorf("%w: port %d has %d VCs in snapshot, %d in router",
				checkpoint.ErrMismatch, pi, len(ps.VCs), len(ip.VCs))
		}
		for vi, vc := range ip.VCs {
			vs := &ps.VCs[vi]
			vc.flits = vs.Flits
			vc.state = vcState(vs.State)
			vc.readyAt = vs.ReadyAt
			vc.grantedAt = vs.GrantedAt
			vc.outVC = vs.OutVC
			vc.outPort = nil
			if vs.OutPort >= 0 {
				if vs.OutPort >= len(r.Out) {
					return fmt.Errorf("%w: VC %d.%d granted to out port %d of %d",
						checkpoint.ErrMismatch, pi, vi, vs.OutPort, len(r.Out))
				}
				vc.outPort = r.Out[vs.OutPort]
			}
			vc.q = fifo[pktInst]{}
			for _, qs := range vs.Queue {
				p, err := pk(qs.Pkt)
				if err != nil {
					return err
				}
				if p == nil {
					return fmt.Errorf("%w: nil packet in VC queue", checkpoint.ErrMismatch)
				}
				vc.q.Push(pktInst{p: p, received: qs.Received, sent: qs.Sent, safe: qs.Safe})
			}
			if vc.state == vcRouting {
				r.waiting++
			}
		}
	}
	for oi, o := range r.Out {
		os := &rs.Out[oi]
		if len(os.Credits) != len(o.Credits) || len(os.Owners) != len(o.Owner) {
			return fmt.Errorf("%w: out port %d has %d credits / %d owners in snapshot, %d / %d in router",
				checkpoint.ErrMismatch, oi, len(os.Credits), len(os.Owners), len(o.Credits), len(o.Owner))
		}
		copy(o.Credits, os.Credits)
		for i, ref := range os.Owners {
			v, err := r.vcByRef(ref)
			if err != nil {
				return err
			}
			o.Owner[i] = v
		}
		o.granted = o.granted[:0]
		for _, ref := range os.Granted {
			v, err := r.vcByRef(ref)
			if err != nil {
				return err
			}
			if v == nil {
				return fmt.Errorf("%w: nil VC in grant list", checkpoint.ErrMismatch)
			}
			o.granted = append(o.granted, v)
		}
	}
	return nil
}

func (r *Router) vcByRef(ref checkpoint.VCRef) (*VC, error) {
	if ref.Port == -1 && ref.VC == -1 {
		return nil, nil
	}
	if ref.Port < 0 || ref.Port >= len(r.In) || ref.VC < 0 || ref.VC >= len(r.In[ref.Port].VCs) {
		return nil, fmt.Errorf("%w: VC reference %d.%d out of range", checkpoint.ErrMismatch, ref.Port, ref.VC)
	}
	return r.In[ref.Port].VCs[ref.VC], nil
}

func (l *Link) restore(ls *checkpoint.LinkState, pk func(int) (*packet.Packet, error)) error {
	l.Bandwidth = ls.Bandwidth
	l.Latency = ls.Latency
	l.Carried = ls.Carried
	l.flits = fifo[flitBundle]{}
	for _, b := range ls.Flits {
		p, err := pk(b.Pkt)
		if err != nil {
			return err
		}
		l.flits.Push(flitBundle{p: p, n: b.N, vc: b.VC, arriveAt: b.ArriveAt, seq: b.Seq, corrupt: b.Corrupt})
	}
	l.credits = fifo[creditBundle]{}
	for _, c := range ls.Credits {
		l.credits.Push(creditBundle{vc: c.VC, n: c.N, arriveAt: c.ArriveAt})
	}
	l.acks = fifo[ackMsg]{}
	for _, a := range ls.Acks {
		l.acks.Push(ackMsg{seq: a.Seq, nack: a.Nack, arriveAt: a.ArriveAt})
	}
	if (ls.Rel != nil) != (l.Rel != nil) {
		return fmt.Errorf("%w: reliability protocol %v in snapshot but %v on link",
			checkpoint.ErrMismatch, ls.Rel != nil, l.Rel != nil)
	}
	if ls.Rel != nil {
		// Fill into the existing LinkRel: its Corrupt closure (owned by the
		// fault engine) must survive the restore.
		rel := l.Rel
		rel.CorruptedFlits = ls.Rel.CorruptedFlits
		rel.CorruptedBundles = ls.Rel.CorruptedBundles
		rel.Retransmissions = ls.Rel.Retransmissions
		rel.Nacks = ls.Rel.Nacks
		rel.nextSeq = ls.Rel.NextSeq
		rel.expect = ls.Rel.Expect
		rel.backoff = ls.Rel.Backoff
		rel.retryAt = ls.Rel.RetryAt
		rel.replay = fifo[replayEntry]{}
		for _, e := range ls.Rel.Replay {
			p, err := pk(e.Pkt)
			if err != nil {
				return err
			}
			rel.replay.Push(replayEntry{p: p, n: e.N, vc: e.VC, seq: e.Seq, sentAt: e.SentAt})
		}
	}
	return nil
}

// DiagnosticReport takes a deadlock-style snapshot of the fabric's current
// blocked state on demand (without the watchdog having fired) — used to
// explain where traffic is stuck when a run is aborted externally, e.g. by
// a wall-clock timeout.
func (f *Fabric) DiagnosticReport() *DeadlockReport {
	return f.snapshotDeadlock(f.Now)
}
