package router

import (
	"testing"

	"chipletnet/internal/packet"
)

// buildPairSU wires router 0 -> router 1 with the given VC count and a
// routing whose SafeAt is controlled per node, for exercising Algorithm 5.
func buildPairSU(vcs int, safe func(node int, p *packet.Packet) bool) *Fabric {
	f := NewFabric()
	f.SafeUnsafe = true
	for i := 0; i < 2; i++ {
		r := f.NewRouter(i)
		r.AddInPort(1, 1<<30)
		r.AddOutPort()
		f.MakeEjection(r, 0, vcs, 4)
		r.AddInPort(vcs, 32)
		r.AddOutPort()
	}
	f.ConnectPorts(f.Routers[0], 1, f.Routers[1], 1, 4, 1, false)
	f.Routing = lineRouting{safe: safe}
	return f
}

// Algorithm 5 case a >= 2: two free VCs downstream allow any packet.
func TestSafeUnsafeAllowsWithTwoFreeVCs(t *testing.T) {
	f := buildPairSU(2, func(int, *packet.Packet) bool { return false })
	n := 0
	f.Sink = func(p *packet.Packet, now int64) { n++ }
	f.Routers[0].Inject(mkPacket(1, 0, 1, 32, 0), 0)
	runCycles(f, 100)
	if n != 1 {
		t.Errorf("unsafe packet blocked despite 2 free VCs (delivered %d)", n)
	}
}

// Algorithm 5 case a == 1 && s == 0 && unsafe at next: must be blocked.
// We park one packet downstream (stop-routed) to occupy a VC, then check
// that an everywhere-unsafe packet cannot take the last VC.
func TestSafeUnsafeBlocksLastVCForUnsafe(t *testing.T) {
	// sink node 1 refuses to route (packets to node 99 loop at port 1 of
	// router 1 which has no link -> they just sit). Simpler: make router 1
	// the destination of a parked packet but give its ejection 0 slots...
	// Instead: use 2 VCs, park one packet in VC0 by routing it to an
	// unreachable destination via a candidates function that returns the
	// local port only when dst matches.
	f := NewFabric()
	f.SafeUnsafe = true
	f.DeadlockThreshold = 0
	for i := 0; i < 2; i++ {
		r := f.NewRouter(i)
		r.AddInPort(1, 1<<30)
		r.AddOutPort()
		f.MakeEjection(r, 0, 2, 4)
		r.AddInPort(2, 32)
		r.AddOutPort()
	}
	f.ConnectPorts(f.Routers[0], 1, f.Routers[1], 1, 4, 1, false)
	f.ConnectPorts(f.Routers[1], 1, f.Routers[0], 1, 4, 1, false)
	f.Routing = parkRouting{}
	f.Sink = func(p *packet.Packet, now int64) {}

	// Parked packet: dst 99 never ejects; it grabs router 1 input VC and
	// stays (its forward candidates at router 1 are withheld).
	f.Routers[0].Inject(&packet.Packet{ID: 1, Src: 0, Dst: 99, Len: 32}, 0)
	runCycles(f, 60)
	// Now one VC at router 1 port 1 is held by the parked packet.
	// An unsafe packet (SafeAt=false everywhere under parkRouting) heading
	// for node 1 may not claim the last free VC.
	f.Routers[0].Inject(&packet.Packet{ID: 2, Src: 0, Dst: 1, Len: 32}, 60)
	runCycles(f, 200)
	occupied := 0
	for _, vc := range f.Routers[1].In[1].VCs {
		if vc.Packets() > 0 {
			occupied++
		}
	}
	if occupied != 1 {
		t.Errorf("unsafe packet took the last VC (occupied=%d)", occupied)
	}
}

// parkRouting: packets to node 99 are routed forward from router 0 but get
// no candidates at router 1 (they park in the input buffer — emulating a
// congested continuation). All packets are unsafe.
type parkRouting struct{}

func (parkRouting) Candidates(r *Router, inPort int, p *packet.Packet, buf []Candidate) []Candidate {
	if r.Node == p.Dst {
		return append(buf, Candidate{Port: 0, VCMask: VCMaskAll(len(r.Out[0].Credits))})
	}
	if p.Dst == 99 && r.Node == 1 {
		// Withhold candidates by pointing at a full ejection? The fabric
		// panics on empty candidate sets, so return an unreachable one:
		// route back and forth between 0 and 1 forever on VC0 only.
		return append(buf, Candidate{Port: 1, VCMask: 0b01})
	}
	return append(buf, Candidate{Port: 1, VCMask: 0b01})
}

func (parkRouting) SafeAt(r *Router, inPort int, p *packet.Packet) bool { return false }

// With a safe packet resident downstream, an unsafe packet may take the
// last free VC (case a == 1 && s >= 1).
func TestSafeUnsafeSafeResidencyUnblocks(t *testing.T) {
	f := buildPairSU(2, func(node int, p *packet.Packet) bool { return p.ID == 1 })
	n := 0
	f.Sink = func(p *packet.Packet, now int64) { n++ }
	// Safe packet 1 and unsafe packet 2 back to back: both must deliver.
	f.Routers[0].Inject(mkPacket(1, 0, 1, 32, 0), 0)
	f.Routers[0].Inject(mkPacket(2, 0, 1, 32, 0), 0)
	runCycles(f, 300)
	if n != 2 {
		t.Errorf("delivered %d of 2", n)
	}
}

// A packet that is safe at the next router may take the last VC
// (case a == 1 && s == 0 && safe-at-next).
func TestSafeUnsafeSafeAtNextUnblocks(t *testing.T) {
	f := buildPairSU(1, func(node int, p *packet.Packet) bool { return true })
	n := 0
	f.Sink = func(p *packet.Packet, now int64) { n++ }
	f.Routers[0].Inject(mkPacket(1, 0, 1, 32, 0), 0)
	runCycles(f, 100)
	if n != 1 {
		t.Errorf("safe packet blocked from the last VC (delivered %d)", n)
	}
}
