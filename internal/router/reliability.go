package router

import "chipletnet/internal/packet"

// LinkRel is the link-level reliability protocol state of one Link,
// modeling the lane protection a chiplet-to-chiplet (D2D) PHY provides:
// every flit bundle carries a CRC and a sequence number; the receiver
// accepts bundles strictly in order, acknowledging cumulatively, and
// nacks on CRC failure or sequence gap; the sender keeps unacknowledged
// bundles in a replay buffer and retransmits them go-back-N on nack or
// ack timeout, pacing repeated retransmissions with capped exponential
// backoff. Because both endpoints of a simulated link live in one
// process, one LinkRel holds sender and receiver state together.
//
// Credit reconciliation is structural: downstream credits are charged
// exactly once per flit, at the original push; retransmitted copies do
// not re-charge, and the receiver buffers each sequence number exactly
// once. A corrupted (dropped) bundle therefore never leaks a credit —
// its flits stay charged in the replay buffer until an accepted copy
// reaches the receiver's input VC. Fabric.AuditCredits checks the
// resulting conservation law every cycle when enabled.
//
// A nil *LinkRel on a Link models an ideal error-free channel and adds
// zero overhead — the default, preserving bit-identical results for
// runs without fault injection.
type LinkRel struct {
	// Corrupt draws the number of flits corrupted in transit for an
	// n-flit bundle transmission. It is consulted once per transmission,
	// retransmissions included, so a retransmitted bundle can be
	// corrupted again. Nil models an error-free channel (the protocol
	// machinery still runs, with identical timing).
	Corrupt func(now int64, n int) int
	// Timeout is the sender-side ack wait in cycles before the replay
	// window is retransmitted unprompted. It covers the tail-loss case:
	// a corrupted final bundle with nothing behind it to expose the
	// sequence gap at the receiver.
	Timeout int64
	// BackoffMax caps the exponential retransmission backoff in cycles.
	// It must stay well below the fabric's DeadlockThreshold so that a
	// backed-off link never looks like a deadlock to the watchdog.
	BackoffMax int64

	// CorruptedFlits and CorruptedBundles count in-transit corruption;
	// Retransmissions counts bundles retransmitted (every go-back-N copy),
	// Nacks the receiver's retransmission requests.
	CorruptedFlits   int64
	CorruptedBundles int64
	Retransmissions  int64
	Nacks            int64

	nextSeq uint64            // sender: next sequence number to assign
	expect  uint64            // receiver: next sequence number accepted
	replay  fifo[replayEntry] // sender: sent but unacknowledged bundles
	backoff int64             // current retransmission backoff (cycles)
	retryAt int64             // earliest cycle the window may resend again
}

// replayEntry is one bundle held in the sender's retransmission buffer
// from first transmission until its cumulative ack arrives.
type replayEntry struct {
	p      *packet.Packet
	n, vc  int
	seq    uint64
	sentAt int64 // cycle of the most recent (re)transmission
}

// ackMsg is one acknowledgment traveling the reverse direction of the
// link (same latency as the forward path). seq is cumulative: for an
// ack, the highest accepted sequence number; for a nack, the sequence
// number the receiver expects next (everything below it is implicitly
// acknowledged).
type ackMsg struct {
	seq      uint64
	nack     bool
	arriveAt int64
}

// send enqueues a fresh bundle in the replay buffer and transmits it.
// Credits were charged by the caller (the switch allocator), once.
func (r *LinkRel) send(l *Link, p *packet.Packet, n, vc int, now int64) {
	r.replay.Push(replayEntry{p: p, n: n, vc: vc, seq: r.nextSeq})
	r.nextSeq++
	r.transmit(l, r.replay.At(r.replay.Len()-1), now)
}

// transmit places one (re)transmission of a replay entry on the wire,
// drawing fresh in-transit corruption.
func (r *LinkRel) transmit(l *Link, e *replayEntry, now int64) {
	l.Carried += int64(e.n)
	corrupt := 0
	if r.Corrupt != nil {
		corrupt = r.Corrupt(now, e.n)
	}
	if corrupt > 0 {
		r.CorruptedFlits += int64(corrupt)
		r.CorruptedBundles++
	}
	e.sentAt = now
	l.flits.Push(flitBundle{
		p: e.p, n: e.n, vc: e.vc,
		seq: e.seq, corrupt: corrupt > 0,
		arriveAt: now + int64(l.Latency),
	})
}

// receive runs the receiver half of the protocol for one arrived bundle
// and reports whether the bundle should be delivered into the input VC.
func (r *LinkRel) receive(l *Link, b flitBundle, now int64) bool {
	lat := int64(l.Latency)
	switch {
	case b.corrupt:
		// CRC failure: drop and request retransmission from the next
		// expected bundle.
		r.Nacks++
		l.acks.Push(ackMsg{seq: r.expect, nack: true, arriveAt: now + lat})
		return false
	case b.seq == r.expect:
		r.expect++
		l.acks.Push(ackMsg{seq: b.seq, arriveAt: now + lat})
		return true
	case b.seq < r.expect:
		// Stale duplicate of an already-accepted bundle (a retransmission
		// that crossed paths with its ack): re-ack so the sender releases
		// its replay buffer, deliver nothing. This is what makes delivery
		// exactly-once.
		l.acks.Push(ackMsg{seq: r.expect - 1, arriveAt: now + lat})
		return false
	default:
		// Sequence gap: an earlier bundle was dropped in transit.
		// Go-back-N discards everything after the gap.
		r.Nacks++
		l.acks.Push(ackMsg{seq: r.expect, nack: true, arriveAt: now + lat})
		return false
	}
}

// onAck runs the sender half for one arrived ack or nack.
func (r *LinkRel) onAck(l *Link, a ackMsg, now int64) {
	if a.nack {
		// Everything below the requested sequence number is implicitly
		// acknowledged; the rest is resent.
		for r.replay.Len() > 0 && r.replay.Front().seq < a.seq {
			r.replay.Pop()
		}
		r.retransmit(l, now)
		return
	}
	progressed := false
	for r.replay.Len() > 0 && r.replay.Front().seq <= a.seq {
		r.replay.Pop()
		progressed = true
	}
	if progressed {
		r.backoff = 0 // the channel is passing traffic again
	}
}

// timedOut reports whether the oldest unacknowledged bundle has waited
// past the ack timeout.
func (r *LinkRel) timedOut(now int64) bool {
	return r.replay.Len() > 0 && r.Timeout > 0 &&
		now-r.replay.Front().sentAt >= r.Timeout
}

// retransmit resends the whole unacknowledged window (go-back-N), paced
// by capped exponential backoff so duplicate nacks and persistent
// corruption do not flood the link with copies.
func (r *LinkRel) retransmit(l *Link, now int64) {
	if r.replay.Len() == 0 || now < r.retryAt {
		return
	}
	for i := 0; i < r.replay.Len(); i++ {
		r.transmit(l, r.replay.At(i), now)
		r.Retransmissions++
	}
	if r.backoff == 0 {
		r.backoff = 2*int64(l.Latency) + 2 // one round trip plus slack
	} else {
		r.backoff *= 2
	}
	if r.BackoffMax > 0 && r.backoff > r.BackoffMax {
		r.backoff = r.BackoffMax
	}
	r.retryAt = now + r.backoff
}
