// Package router implements the cycle-accurate interconnect model: an
// input-queued virtual-channel router microarchitecture (4-stage
// pipeline: routing computation, VC allocation, switch allocation,
// transmission), virtual cut-through switching, credit-based flow
// control with the safe/unsafe policy of the paper's Algorithm 5, links
// with bandwidth/latency and an optional go-back-N reliability
// protocol, and the Fabric cycle engine that advances everything in
// lockstep.
//
// # Cycle engines and the equivalence contract
//
// Fabric.Step has three implementations:
//
//   - stepReference: the naive engine. Every cycle it calls deliver on
//     every link, then vcAllocate on every router, then switchAllocate
//     on every router. It is deliberately simple and is retained,
//     unoptimised, as the oracle.
//   - stepActive (the default): the active-set engine. It visits only
//     links and routers whose bit is set in the fabric's active-set
//     bitmaps, in ascending index order.
//   - stepIslands (EnableIslands): the parallel-islands engine. The
//     fabric is partitioned into contiguous-chiplet islands, each
//     stepping its own active sets on a worker goroutine; boundary
//     flits/credits, ejections, and fault-log appends are exchanged
//     through deterministic per-edge mailboxes and ordered drains at
//     per-cycle barriers (see islands.go for the full argument).
//
// The contract is that the engines are OBSERVATIONALLY IDENTICAL:
// started from the same state and fed the same injections, they produce
// bit-identical fabric state, delivery sequences (order included —
// the statistics collector accumulates floating-point sums, so delivery
// order is observable), fault logs, and checkpoint snapshots. The
// differential-equivalence suite (engine_equiv_test.go and
// FuzzEngineEquivalence at the module root) enforces the contract
// three-ways across topology kinds, routing modes, interleavings, and
// fault schedules; Fabric.UseReference selects the reference engine and
// Fabric.EnableIslands the islands engine.
//
// The equivalence rests on two facts, which any future change to the
// pipeline must preserve:
//
//  1. Skipping an idle component is a no-op in the reference engine
//     too. A router leaves the active set only when waiting == 0 and
//     grants == 0, which means every VC is vcIdle with an empty queue;
//     vcAllocate early-returns without touching vaOffset (the fairness
//     rotation must NOT advance for skipped routers) and
//     switchAllocate scans empty grant lists and does nothing. A link
//     leaves the active set only when pendingWork() is false (no
//     flits, credits, acks, or replay entries), making deliver a
//     guaranteed no-op.
//  2. Every transition that creates work wakes the component before
//     the work can be observed, and phases only wake components in
//     ways the iteration tolerates: flit arrival wakes the receiving
//     router via VC.startHead (a freshly started head is not eligible
//     for VA until now+2, so waking it this cycle or next is
//     equivalent); push/returnCredit wake the link (its cargo is due
//     no earlier than now+1); phase 1 never wakes links, phase 2 never
//     wakes routers, and phase 3 wakes only the processed router
//     itself — so each phase iterates a stable set.
//
// The islands engine inherits both facts and adds a third: within each
// phase, work on distinct components is order-independent except for
// three effects — ejection order into the Sink, fault-log append order,
// and active-set wakes. stepIslands re-serializes the first two
// (deferred-ejection drains in ascending router order; Rel-protected
// links and their routers processed on the coordinator in ascending
// index order) and makes the third commutative (wakes are idempotent
// bit-sets in per-island or atomic bitmaps), so the parallel schedule
// is unobservable.
//
// The active sets are derived state: Snapshot does not record them and
// Restore/Reset rebuild them (rebuildActive), so checkpoint files are
// byte-identical regardless of the engine that produced or consumes
// them. The island partition, classification, and mailboxes are derived
// the same way — a checkpoint taken under one engine resumes under any
// other.
//
// # Zero-alloc policy
//
// The steady-state cycle loop (Step on a warmed-up fabric, audits
// included) must not allocate: per-cycle scratch lives on the Fabric
// (AuditCredits buffers) or the VC (routing-candidate buffers), queues
// are ring-style fifos that reach a stable capacity, and sorting inside
// routing algorithms must use in-place insertion sorts (sort.Slice
// allocates). TestStepSteadyStateZeroAlloc in this package enforces the
// policy with testing.AllocsPerRun.
package router
