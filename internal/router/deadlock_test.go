package router

import (
	"strings"
	"testing"
)

// TestDeadlockReportSnapshot starves a 2-router line: the packet is longer
// than the downstream VC buffer, so under virtual cut-through VC allocation
// can never grant and the watchdog must fire with a diagnostic snapshot.
func TestDeadlockReportSnapshot(t *testing.T) {
	f := buildLine(2, 1, 8, 4, 1)
	f.DeadlockThreshold = 50

	p := mkPacket(1, 0, 1, 16, 1) // 16 flits into an 8-flit downstream VC
	f.Routers[0].Inject(p, 0)
	runCycles(f, 60)

	if !f.Deadlocked {
		t.Fatal("watchdog did not fire on an unroutable packet")
	}
	d := f.Deadlock
	if d == nil {
		t.Fatal("Deadlocked set but Deadlock report missing")
	}
	if d.InFlight != 1 {
		t.Errorf("InFlight = %d, want 1", d.InFlight)
	}
	if d.BlockedRouters != 1 || d.BlockedVCs != 1 {
		t.Errorf("blocked %d routers / %d VCs, want 1/1", d.BlockedRouters, d.BlockedVCs)
	}
	if d.Oldest != p {
		t.Errorf("Oldest = %v, want the injected packet", d.Oldest)
	}
	if d.OldestAge != d.Cycle-p.CreatedAt {
		t.Errorf("OldestAge = %d, want %d", d.OldestAge, d.Cycle-p.CreatedAt)
	}
	if d.StallCycles <= f.DeadlockThreshold {
		t.Errorf("StallCycles = %d, want > threshold %d", d.StallCycles, f.DeadlockThreshold)
	}
	if len(d.Blocked) != 1 {
		t.Fatalf("Blocked = %v, want one witness", d.Blocked)
	}
	b := d.Blocked[0]
	if b.Node != 0 || b.Port != 0 || b.Packet != p {
		t.Errorf("witness %v, want the injection VC of router 0", b)
	}
	if b.Buffered != 16 {
		t.Errorf("witness buffered %d flits, want 16", b.Buffered)
	}
	if s := d.String(); !strings.Contains(s, "deadlock at cycle") || !strings.Contains(s, "router 0") {
		t.Errorf("report String() missing key facts:\n%s", s)
	}

	// The snapshot is taken once, at the first firing.
	runCycles(f, 10)
	if f.Deadlock != d {
		t.Error("snapshot retaken on later cycles")
	}
}

// TestNoDeadlockReportWhenLive: a deliverable packet must not leave a
// report behind.
func TestNoDeadlockReportWhenLive(t *testing.T) {
	f := buildLine(2, 1, 32, 4, 1)
	f.DeadlockThreshold = 50
	f.Routers[0].Inject(mkPacket(1, 0, 1, 16, 1), 0)
	runCycles(f, 200)
	if f.InFlight() != 0 {
		t.Fatalf("packet not delivered (%d in flight)", f.InFlight())
	}
	if f.Deadlocked || f.Deadlock != nil {
		t.Errorf("live fabric reported a deadlock: %v", f.Deadlock)
	}
}
