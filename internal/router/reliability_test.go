package router

import (
	"testing"

	"chipletnet/internal/packet"
	"chipletnet/internal/rng"
)

// relLine builds a 2-router line with the reliability protocol attached to
// its single link and returns the fabric, the link, and a delivery log.
func relLine(vcs, capFlits, bw, lat int, corrupt func(now int64, n int) int) (*Fabric, *Link, *[]uint64) {
	f := buildLine(2, vcs, capFlits, bw, lat)
	l := f.Links[0]
	l.Rel = &LinkRel{Corrupt: corrupt, Timeout: 4*int64(lat) + 16, BackoffMax: 64}
	f.CreditAudit = true
	var ids []uint64
	f.Sink = func(p *packet.Packet, now int64) { ids = append(ids, p.ID) }
	return f, l, &ids
}

// TestRelErrorFreeTimingIdentical: with a nil corruption source the
// protocol machinery must not change delivery timing relative to the ideal
// channel.
func TestRelErrorFreeTimingIdentical(t *testing.T) {
	run := func(rel bool) []int64 {
		f := buildLine(2, 2, 32, 4, 3)
		if rel {
			f.Links[0].Rel = &LinkRel{Timeout: 28, BackoffMax: 64}
			f.CreditAudit = true
		}
		var at []int64
		f.Sink = func(p *packet.Packet, now int64) { at = append(at, now) }
		for i := 0; i < 8; i++ {
			f.Routers[0].Inject(mkPacket(uint64(i), 0, 1, 16, 0), 0)
		}
		runCycles(f, 300)
		if f.InFlight() != 0 {
			t.Fatalf("rel=%v: %d packets stuck", rel, f.InFlight())
		}
		return at
	}
	ideal, protected := run(false), run(true)
	if len(ideal) != len(protected) {
		t.Fatalf("delivery counts differ: %d vs %d", len(ideal), len(protected))
	}
	for i := range ideal {
		if ideal[i] != protected[i] {
			t.Errorf("packet %d delivered at %d under protocol, %d ideal", i, protected[i], ideal[i])
		}
	}
}

// TestRelCorruptionRecovered: corrupting transmissions must cost only
// retransmissions — every packet still arrives exactly once, with credits
// conserved (audit enabled). Global delivery order is not asserted: with
// two VCs, packets on different VCs interleave at ejection even on an
// ideal channel.
func TestRelCorruptionRecovered(t *testing.T) {
	// Seeded random corruption (~10% of bundles). A deterministic modular
	// pattern would phase-lock with the go-back-N window and livelock; a
	// random channel cannot stay aligned.
	stream := rng.New(42)
	corrupt := func(now int64, nf int) int {
		if stream.Bernoulli(0.1) {
			return 1
		}
		return 0
	}
	f, l, ids := relLine(2, 32, 4, 3, corrupt)
	const packets = 20
	for i := 0; i < packets; i++ {
		f.Routers[0].Inject(mkPacket(uint64(i), 0, 1, 8, 0), 0)
	}
	runCycles(f, 3000)
	if f.InFlight() != 0 {
		t.Fatalf("%d packets stuck in flight", f.InFlight())
	}
	if len(*ids) != packets {
		t.Fatalf("delivered %d packets, want %d", len(*ids), packets)
	}
	seen := make(map[uint64]bool, packets)
	for _, id := range *ids {
		if seen[id] {
			t.Fatalf("packet %d delivered twice", id)
		}
		seen[id] = true
	}
	if len(seen) != packets {
		t.Fatalf("unique deliveries %d, want %d", len(seen), packets)
	}
	if l.Rel.CorruptedBundles == 0 || l.Rel.Retransmissions == 0 || l.Rel.Nacks == 0 {
		t.Errorf("expected corruption activity, got %+v", *l.Rel)
	}
	if !l.Quiesced() {
		t.Error("link not quiesced after drain")
	}
}

// TestRelTimeoutRecoversLoss: a bundle silently lost on the wire (no CRC
// arrival to nack) must be recovered by the sender's ack timeout.
func TestRelTimeoutRecoversLoss(t *testing.T) {
	f, l, ids := relLine(2, 32, 4, 2, nil)
	f.Routers[0].Inject(mkPacket(7, 0, 1, 4, 0), 0)
	// Let the switch allocator push the single bundle, then drop the wire.
	for i := 0; i < 20 && l.flits.Len() == 0; i++ {
		f.Step()
	}
	if l.flits.Len() == 0 {
		t.Fatal("bundle never transmitted")
	}
	l.flits = fifo[flitBundle]{}
	runCycles(f, 200)
	if len(*ids) != 1 || (*ids)[0] != 7 {
		t.Fatalf("packet not recovered after loss: deliveries %v", *ids)
	}
	if l.Rel.Retransmissions == 0 {
		t.Error("expected a timeout-driven retransmission")
	}
}

// TestRelBackoffCapped: persistent corruption must pace retransmissions
// with capped exponential backoff, and the link must recover once the
// channel clears.
func TestRelBackoffCapped(t *testing.T) {
	bad := true
	corrupt := func(now int64, nf int) int {
		if bad {
			return nf
		}
		return 0
	}
	f, l, ids := relLine(2, 32, 4, 2, corrupt)
	f.Routers[0].Inject(mkPacket(1, 0, 1, 4, 0), 0)
	runCycles(f, 400)
	if len(*ids) != 0 {
		t.Fatal("corrupted-only channel delivered a packet")
	}
	if l.Rel.backoff != l.Rel.BackoffMax {
		t.Errorf("backoff = %d, want capped at %d", l.Rel.backoff, l.Rel.BackoffMax)
	}
	retries := l.Rel.Retransmissions
	if retries == 0 {
		t.Fatal("no retransmissions under persistent corruption")
	}
	// Backoff pacing: far fewer copies than cycles.
	if retries > 60 {
		t.Errorf("%d retransmissions in 400 cycles: backoff not pacing", retries)
	}
	bad = false
	runCycles(f, 400)
	if len(*ids) != 1 {
		t.Fatalf("packet not delivered after channel recovered: %v", *ids)
	}
	if f.InFlight() != 0 || !l.Quiesced() {
		t.Error("link did not quiesce after recovery")
	}
}

// TestAuditCreditsCatchesLeak: the invariant check must diagnose a leaked
// credit instead of letting the run deadlock silently.
func TestAuditCreditsCatchesLeak(t *testing.T) {
	f := buildLine(2, 2, 32, 4, 1)
	if err := f.AuditCredits(); err != nil {
		t.Fatalf("clean fabric failed audit: %v", err)
	}
	f.Routers[0].Out[1].Credits[0]-- // leak one credit
	if err := f.AuditCredits(); err == nil {
		t.Fatal("audit missed a leaked credit")
	}
}
