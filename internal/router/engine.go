package router

import "math/bits"

// This file is the active-set cycle engine: the throughput-oriented
// counterpart of stepReference. Instead of walking every link and router
// each cycle, the fabric keeps two bitmaps (routerActive, linkActive)
// naming the components that may have work. The bitmaps are maintained
// eagerly — every state transition that creates future work sets the
// bit — and lazily pruned by the engine once a component is provably
// idle. Iterating set bits with bits.TrailingZeros64 visits components
// in strictly ascending index order, i.e. in exactly the order the
// reference stepper uses, which is what makes the two engines
// bit-identical (the delivery order into the statistics collector's
// floating-point accumulators is part of the observable behaviour).
//
// The invariants, and why skipping a clear bit is sound, are spelled
// out in doc.go.

// wakeRouter marks r live for the cycle engine (idempotent, O(1)).
// Called by VC.startHead whenever a head packet enters the pipeline.
// Under the islands engine the bit lands in the owning island's bitmap
// instead (see islands.go for why that is race-free).
func (f *Fabric) wakeRouter(r *Router) {
	if f.isl != nil {
		f.isl.wakeRouter(r)
		return
	}
	f.routerActive[r.idx>>6] |= 1 << uint(r.idx&63)
}

// wakeLink marks l live for the cycle engine (idempotent, O(1)).
// Called by Link.push and Link.returnCredit whenever traffic enters the
// link's pipelines.
func (f *Fabric) wakeLink(l *Link) {
	if f.isl != nil {
		f.isl.wakeLink(l)
		return
	}
	f.linkActive[l.ID>>6] |= 1 << uint(l.ID&63)
}

// stepActive advances the fabric by one cycle visiting only active
// components. The phase structure is identical to stepReference:
// link delivery, then VC allocation, then switch allocation, then the
// watchdog/audit tail.
func (f *Fabric) stepActive() {
	f.Now++
	now := f.Now
	moved := false

	// Phase 1: link delivery, ascending link index. Delivering can wake
	// routers (flit arrival starts a head pipeline) but never another
	// link, so a snapshot of each word is safe to iterate. A link whose
	// pipelines drained completely leaves the active set; push and
	// returnCredit re-add it.
	for wi, w := range f.linkActive {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			l := f.Links[wi<<6|b]
			if l.deliver(now) {
				moved = true
			}
			if !l.pendingWork() {
				f.linkActive[wi] &^= 1 << uint(b)
			}
		}
	}

	// Phase 2: VC allocation, ascending router index. Granting a VC
	// never wakes another router, so the phase sees a stable active set.
	// Routers stay in the set here even if only grants remain — phase 3
	// decides departure.
	for wi, w := range f.routerActive {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			f.Routers[wi<<6|b].vcAllocate(now)
		}
	}

	// Phase 3: switch allocation + transmission, ascending router index
	// (delivery order feeds float accumulators in the stats collector —
	// order is observable). Transfers wake links and possibly the
	// router's own next head, never a different router. A router with no
	// waiting heads and no grants left has every VC idle and departs.
	for wi, w := range f.routerActive {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			r := f.Routers[wi<<6|b]
			if r.switchAllocate(now) {
				moved = true
			}
			if !r.busy() {
				f.routerActive[wi] &^= 1 << uint(b)
			}
		}
	}

	f.finishStep(now, moved)
}

// rebuildActive reconstructs the active sets and the per-router grants
// counters from the fabric's current state. The active sets are derived
// state — they are deliberately not checkpointed; Restore calls this
// after laying snapshot state onto the fabric.
func (f *Fabric) rebuildActive() {
	for i := range f.routerActive {
		f.routerActive[i] = 0
	}
	for i := range f.linkActive {
		f.linkActive[i] = 0
	}
	if f.isl != nil {
		// Island bitmaps and the link classification are derived state
		// too: zero them and reclassify before any wake routes a bit, so
		// a link that gained or lost a reliability protocol since the
		// last epoch lands in the right (serial vs island) set.
		f.isl.reset()
		f.isl.classify(f)
	}
	for _, r := range f.Routers {
		r.grants = 0
		for _, o := range r.Out {
			r.grants += len(o.granted)
		}
		if r.busy() {
			f.wakeRouter(r)
		}
	}
	for _, l := range f.Links {
		if l.pendingWork() {
			f.wakeLink(l)
		}
	}
}

// Reset returns the fabric to its freshly built state, keeping the
// structural configuration (routers, ports, links, routing algorithm,
// thresholds) and all buffer capacity, so a topology built once can run
// many simulations without re-allocating — e.g. the bisection probes of
// a saturation search.
//
// Reset restores only dynamic state. It does NOT undo structural
// mutations made by fault events: degraded link bandwidth/latency and
// condemned or decommissioned interface-group membership persist.
// Callers reusing a fabric across runs must therefore not schedule Kill
// or Degrade events (per-flit BER is fine — the reliability protocol is
// re-attached fresh each run). Reset detaches any LinkRel; Sink is
// cleared and must be re-set by the runner.
func (f *Fabric) Reset() {
	for _, r := range f.Routers {
		r.vaOffset = r.Node
		r.waiting = 0
		r.grants = 0
		for _, ip := range r.In {
			for _, vc := range ip.VCs {
				vc.q.Reset()
				vc.flits = 0
				vc.state = vcIdle
				vc.readyAt = 0
				vc.grantedAt = 0
				vc.outPort = nil
				vc.outVC = 0
			}
		}
		for _, o := range r.Out {
			for i := range o.Owner {
				o.Owner[i] = nil
			}
			for i := range o.granted {
				o.granted[i] = nil
			}
			o.granted = o.granted[:0]
			switch {
			case o.Link != nil:
				for i, vc := range o.Link.Dst.In[o.Link.DstPort].VCs {
					o.Credits[i] = vc.Cap
				}
			default:
				for i := range o.Credits {
					o.Credits[i] = ejectCredits
				}
			}
		}
	}
	for _, l := range f.Links {
		l.flits.Reset()
		l.credits.Reset()
		l.acks.Reset()
		l.Carried = 0
		l.Rel = nil
	}
	for i := range f.routerActive {
		f.routerActive[i] = 0
	}
	for i := range f.linkActive {
		f.linkActive[i] = 0
	}
	if f.isl != nil {
		f.isl.reset()
	}
	f.Sink = nil
	f.Now = 0
	f.inFlight = 0
	f.lastProgress = 0
	f.Deadlocked = false
	f.Deadlock = nil
}
