package router

import "chipletnet/internal/packet"

// Candidate is one admissible output choice for a packet, produced by a
// routing algorithm: an output port plus the set of downstream virtual
// channels the packet may be allocated on that port.
//
// Candidates are tried in the order the routing algorithm returns them.
// By convention adaptive candidates come first and the escape candidate
// last, implementing Duato's protocol: the escape channel is used only
// when no adaptive channel is available this cycle.
type Candidate struct {
	// Port is the output port index at the current router.
	Port int
	// VCMask is a bitmask of admissible downstream VC indices
	// (bit i set means VC i may be used).
	VCMask uint32
	// Escape marks the deadlock-free escape candidate.
	Escape bool
}

// VCMaskAll returns a mask admitting VCs [0, n).
func VCMaskAll(n int) uint32 { return (uint32(1) << uint(n)) - 1 }

// VCMaskOf returns a mask admitting exactly the given VCs.
func VCMaskOf(vcs ...int) uint32 {
	var m uint32
	for _, v := range vcs {
		m |= 1 << uint(v)
	}
	return m
}

// Routing computes admissible outputs for packets. Implementations live in
// internal/routing and encode the paper's algorithms (baseline Duato/NFR on
// the flat mesh; MFR within and among chiplets for the high-radix
// topologies).
//
// Implementations must be stateless with respect to packets: Candidates may
// be called repeatedly for the same head packet on successive cycles (the
// adaptive choice can depend on the evolving credit state), and must be
// computable from (router, input port, packet) alone.
type Routing interface {
	// Candidates appends the admissible outputs for the packet whose head
	// flit is at router r, input port inPort, to buf and returns it.
	// Returning an empty slice means the packet cannot be routed — the
	// fabric treats that as a fatal configuration error.
	Candidates(r *Router, inPort int, p *packet.Packet, buf []Candidate) []Candidate

	// SafeAt reports whether p, residing in the input buffer of port
	// inPort at router r, has a legal escape path (a minus-first path in
	// MFR terms) from that channel to its destination. It implements
	// Definition 4 of the paper and drives the safe/unsafe flow control
	// (Algorithm 5) and the safe-packet marking of input buffers.
	SafeAt(r *Router, inPort int, p *packet.Packet) bool
}
