package router

import "chipletnet/internal/packet"

// Tracer observes packet lifecycle events. Implementations must be fast;
// they run inline with the cycle engine.
type Tracer interface {
	// PacketInjected fires when a packet enters a source queue.
	PacketInjected(p *packet.Packet, node int, now int64)
	// FlitsMoved fires when flits of p leave router `from` toward router
	// `to` (to < 0 means ejection at the local port); head reports
	// whether the head flit is among them and the VC is the downstream
	// virtual channel index.
	FlitsMoved(p *packet.Packet, from, to, vc, n int, head bool, now int64)
	// PacketDelivered fires when the tail flit is consumed at the
	// destination.
	PacketDelivered(p *packet.Packet, now int64)
}
