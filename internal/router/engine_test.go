package router

import (
	"fmt"
	"testing"

	"chipletnet/internal/packet"
)

// delivery is one sink event: which packet ejected at which cycle.
type delivery struct {
	id uint64
	at int64
}

// driveLine runs a fixed deterministic workload (bursty injections from
// several sources) on a freshly built line fabric and returns the full
// delivery trace. useRef selects the engine.
func driveLine(useRef bool) ([]delivery, *Fabric) {
	f := buildLine(6, 2, 32, 2, 3)
	f.UseReference = useRef
	var trace []delivery
	f.Sink = func(p *packet.Packet, now int64) { trace = append(trace, delivery{p.ID, now}) }
	id := uint64(0)
	for cy := int64(1); cy <= 600; cy++ {
		// A deterministic, bursty pattern touching several sources and
		// packet lengths (including multi-packet bursts in one cycle).
		if cy%7 == 0 {
			id++
			f.Routers[0].Inject(mkPacket(id, 0, 5, 32, cy), cy)
		}
		if cy%13 == 0 {
			id++
			f.Routers[2].Inject(mkPacket(id, 2, 4, 8, cy), cy)
		}
		if cy%31 == 0 {
			id++
			f.Routers[1].Inject(mkPacket(id, 1, 5, 16, cy), cy)
			id++
			f.Routers[3].Inject(mkPacket(id, 3, 5, 16, cy), cy)
		}
		f.Step()
	}
	for f.InFlight() > 0 && f.Now < 5000 {
		f.Step()
	}
	return trace, f
}

// TestActiveSetMatchesReference is the package-level differential check:
// the active-set engine and the reference stepper must produce the exact
// same delivery trace (IDs and cycles) and final fabric state on a
// shared workload. The full-system matrix lives at the module root
// (engine_equiv_test.go); this is the fast inner guard.
func TestActiveSetMatchesReference(t *testing.T) {
	ref, fRef := driveLine(true)
	act, fAct := driveLine(false)
	if len(ref) != len(act) {
		t.Fatalf("reference delivered %d packets, active %d", len(ref), len(act))
	}
	for i := range ref {
		if ref[i] != act[i] {
			t.Fatalf("delivery %d: reference %+v, active %+v", i, ref[i], act[i])
		}
	}
	if fRef.Now != fAct.Now {
		t.Errorf("final cycle: reference %d, active %d", fRef.Now, fAct.Now)
	}
	if fRef.BufferedFlits() != fAct.BufferedFlits() || fRef.InFlight() != fAct.InFlight() {
		t.Errorf("final occupancy differs: ref %d flits/%d in flight, active %d/%d",
			fRef.BufferedFlits(), fRef.InFlight(), fAct.BufferedFlits(), fAct.InFlight())
	}
}

// TestDrainedFabricLeavesActiveSets verifies the active-set invariant
// from the other side: once traffic drains, every router and link must
// have left the work-lists (an idle fabric cycle costs O(words), not
// O(components)).
func TestDrainedFabricLeavesActiveSets(t *testing.T) {
	_, f := driveLine(false)
	if f.InFlight() != 0 {
		t.Fatal("workload did not drain")
	}
	// In-flight credits outlive the last delivery by the link latency;
	// a few extra steps retire them and prune the just-emptied entries.
	runCycles(f, 16)
	for i, w := range f.routerActive {
		if w != 0 {
			t.Errorf("routerActive[%d] = %b after drain", i, w)
		}
	}
	for i, w := range f.linkActive {
		if w != 0 {
			t.Errorf("linkActive[%d] = %b after drain", i, w)
		}
	}
}

// TestStepSteadyStateZeroAlloc enforces the zero-alloc policy from
// doc.go: advancing a warmed-up fabric under load must not allocate.
// AllocsPerRun is unreliable under the race detector, so the assertion
// is skipped there (the equivalence suites still run).
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	f := buildLine(6, 2, 32, 2, 3)
	f.CreditAudit = true // the audit must be zero-alloc too
	// A deep backlog: 60 packets x 32 flits over a 2 flit/cycle line keep
	// the fabric busy for ~1000 cycles.
	for i := 0; i < 60; i++ {
		f.Routers[0].Inject(mkPacket(uint64(i), 0, 5, 32, 0), 0)
		if i%3 == 0 {
			f.Routers[2].Inject(mkPacket(uint64(1000+i), 2, 5, 32, 0), 0)
		}
	}
	runCycles(f, 100) // warm: fifos, grant lists and scratch reach capacity
	allocs := testing.AllocsPerRun(400, func() { f.Step() })
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.1f times per cycle, want 0", allocs)
	}
	if f.InFlight() == 0 {
		t.Fatal("backlog drained before measurement ended; the test measured an idle fabric")
	}
}

// TestResetRestoresFreshState: a reset fabric must be indistinguishable
// from a freshly built one — same delivery trace on the same workload,
// buffers empty, credits full, engine scheduling cleared.
func TestResetRestoresFreshState(t *testing.T) {
	run := func(f *Fabric) []delivery {
		var trace []delivery
		f.Sink = func(p *packet.Packet, now int64) { trace = append(trace, delivery{p.ID, now}) }
		for i := 0; i < 10; i++ {
			f.Routers[0].Inject(mkPacket(uint64(i), 0, 5, 32, 0), 0)
		}
		runCycles(f, 1500)
		return trace
	}
	f := buildLine(6, 2, 32, 2, 3)
	first := run(f)
	if f.InFlight() != 0 {
		t.Fatal("workload did not drain")
	}
	f.Reset()
	if f.Now != 0 || f.InFlight() != 0 || f.BufferedFlits() != 0 {
		t.Fatalf("Reset left Now=%d inFlight=%d buffered=%d", f.Now, f.InFlight(), f.BufferedFlits())
	}
	for _, r := range f.Routers {
		if r.waiting != 0 || r.grants != 0 {
			t.Errorf("router %d: waiting=%d grants=%d after Reset", r.Node, r.waiting, r.grants)
		}
		for _, o := range r.Out {
			if o.Link == nil {
				continue
			}
			for vc, c := range o.Credits {
				if want := o.Link.Dst.In[o.Link.DstPort].VCs[vc].Cap; c != want {
					t.Errorf("router %d out %d vc %d: credits %d, want %d", r.Node, o.Index, vc, c, want)
				}
			}
		}
	}
	second := run(f)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("reset fabric diverged:\n first %v\nsecond %v", first, second)
	}
	fresh := run(buildLine(6, 2, 32, 2, 3))
	if fmt.Sprint(first) != fmt.Sprint(fresh) {
		t.Errorf("reset fabric differs from fresh build:\nreset %v\nfresh %v", second, fresh)
	}
}

// TestAuditCreditsDoesNotAllocateAfterWarmup pins the satellite fix: the
// per-cycle credit audit reuses fabric-owned scratch buffers.
func TestAuditCreditsDoesNotAllocateAfterWarmup(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	f := buildLine(4, 2, 32, 2, 1)
	f.Sink = func(p *packet.Packet, now int64) {}
	f.Routers[0].Inject(mkPacket(1, 0, 3, 32, 0), 0)
	runCycles(f, 10)
	if err := f.AuditCredits(); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := f.AuditCredits(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AuditCredits allocates %.1f times per call, want 0", allocs)
	}
}
