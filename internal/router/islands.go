package router

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"chipletnet/internal/packet"
)

// This file is the parallel-islands cycle engine: the third Fabric.Step
// implementation, alongside stepReference (the oracle) and stepActive
// (the serial active-set engine). The fabric is partitioned at Build
// time into K islands — contiguous chiplet ranges balanced by router
// count — and each island's active sets are stepped on its own worker
// goroutine. Everything that crosses an island boundary is exchanged
// through deterministic mailboxes drained in ascending global index
// order at per-cycle barriers, so the engine is bit-for-bit identical
// to the serial engines: same delivery order into the statistics
// collector, same fault log, same RNG consumption, same checkpoints.
//
// # Partition rule
//
// Router indices are contiguous per chiplet (topology builds chiplet c's
// routers as one index run), so an island is a contiguous router-index
// range cut only at chiplet boundaries. Contiguity is what makes
// "ascending island order, ascending index within an island" equal to
// "ascending global index order" — the order every serial engine uses
// and the statistics collector observes.
//
// A link is island-internal (steppable by a worker) exactly when both
// endpoints lie in the same island AND it carries no reliability
// protocol; every other link — the inter-island cut plus any
// Rel-protected link — is exchanged serially. The link's own flit and
// credit fifos are the per-edge mailboxes: l.flits has a single producer
// (the Src-side worker, phase 3) and l.credits a single producer (the
// Dst-side worker, phase 3), the two are disjoint struct fields, and
// both are drained only by the coordinator's serial delivery pass in
// ascending global link ID — exactly where the serial engines drain
// them, one barrier later.
//
// # Why determinism survives the barrier
//
// The serial engines' three phases are already order-independent across
// components (the stepActive equivalence argument in doc.go), with
// exactly three order-observable effects, each of which the islands
// engine re-serializes:
//
//  1. Ejections (Fabric.deliver feeds floating-point accumulators in the
//     statistics collector, so delivery order is observable, and
//     decrements the shared inFlight counter). Workers defer ejections
//     into per-island lists; the coordinator drains them after phase 3
//     in ascending island order — which, by contiguity, is ascending
//     ejecting-router order, the serial engines' order.
//  2. The fault log (LinkRel.Corrupt closures append records to the
//     shared fault engine log). Any router owning a Rel-protected output
//     link runs its phase 3 on the coordinator, after the parallel
//     phase, in ascending index order; Rel links themselves deliver in
//     the serial link pass. Workers never touch Rel state, so log order
//     and per-link RNG stream consumption match the serial engines.
//  3. Active-set wakes (bitmap bits shared between islands). Each island
//     owns full-size bitmaps holding only its own components' bits, so
//     worker wakes never share a word; wakes of serially-exchanged links
//     can race between the Src- and Dst-side workers of a cut link and
//     go through atomic CAS — bit-sets are idempotent and order-free, so
//     the merged wake state is schedule-independent.
//
// Everything else either touches only the owning island's state or is a
// phase-stable cross-island read (VC allocation reads downstream input
// queues, which no one mutates during phase 2), with the per-phase
// barriers providing the happens-before edges the race detector checks.
//
// The island assignment, mailboxes and active sets are all derived
// state: Snapshot does not record them, Restore/Reset rebuild them, and
// checkpoint files stay byte-identical across all three engines.

// ejection is one deferred packet delivery: the ejecting router's index
// keys the merge back into global ascending order at the barrier drain.
type ejection struct {
	router int32
	p      *packet.Packet
}

// islandState is the engine state of the parallel-islands stepper. It is
// derived from the fabric (EnableIslands, rebuildActive) and never
// checkpointed.
type islandState struct {
	k int

	// routerIsland[idx] is the owning island of Routers[idx]; islands are
	// contiguous index ranges (first[w] .. first[w+1]-1).
	routerIsland []int32
	first        []int32

	// linkIsland[id] is the owning island of Links[id], or -1 for links
	// exchanged serially (inter-island cut or Rel-protected). Recomputed
	// by classify once per run epoch — the reliability protocol attaches
	// after Build, so classification is lazy.
	linkIsland []int32
	classified bool

	// Per-island active sets: full-size bitmaps in which only the owning
	// island's bits are ever set, so workers never share a word. The
	// union across islands (plus serialLink) is exactly the state the
	// serial engines keep in Fabric.routerActive/linkActive.
	rActive [][]uint64
	lActive [][]uint64

	// serialLink is the active set of serially-exchanged links. Words are
	// atomic because phase-3 workers on both sides of a cut link may wake
	// it concurrently; bit-sets are idempotent, so CAS order is
	// unobservable.
	serialLink []atomic.Uint64

	// serialMask marks routers whose phase 3 must run on the coordinator
	// (they own a Rel-protected output link); serialIdx lists them in
	// ascending index order.
	serialMask []uint64
	serialIdx  []int32

	// eject[w] collects worker w's deferred ejections (parallel phase 3);
	// ejectSerial[w] the coordinator's (serial phase-3 pass). Both are
	// appended in ascending router order and merged at the drain.
	eject       [][]ejection
	ejectSerial [][]ejection
	deferEject  bool

	// moved[w] is worker w's flit-movement flag for the deadlock watchdog.
	moved []bool
}

// EnableIslands partitions the fabric into (at most) k islands of whole
// chiplets, balanced by router count, and selects the parallel-islands
// cycle engine for subsequent Steps. chipletOf[i] is the chiplet index
// of Routers[i] and must be non-decreasing (router indices are
// contiguous per chiplet — the topology builder's layout). k is clamped
// to the chiplet count; k == 1 runs the same engine without worker
// goroutines. Call between cycles only (normally right after Build);
// the engine state is derived, so Snapshot/Restore are unaffected.
func (f *Fabric) EnableIslands(k int, chipletOf []int) {
	if len(chipletOf) != len(f.Routers) {
		panic(fmt.Sprintf("router: EnableIslands got %d chiplet assignments for %d routers",
			len(chipletOf), len(f.Routers)))
	}
	n := len(f.Routers)
	if n == 0 {
		panic("router: EnableIslands on an empty fabric")
	}
	for i := 1; i < n; i++ {
		if chipletOf[i] < chipletOf[i-1] {
			panic(fmt.Sprintf("router: chiplet assignment not contiguous at router %d (%d after %d)",
				i, chipletOf[i], chipletOf[i-1]))
		}
	}
	// Chiplet start indices.
	starts := []int{0}
	for i := 1; i < n; i++ {
		if chipletOf[i] != chipletOf[i-1] {
			starts = append(starts, i)
		}
	}
	numC := len(starts)
	if k > numC {
		k = numC
	}
	if k < 1 {
		k = 1
	}

	is := &islandState{
		k:            k,
		routerIsland: make([]int32, n),
		first:        make([]int32, k+1),
		linkIsland:   make([]int32, len(f.Links)),
		rActive:      make([][]uint64, k),
		lActive:      make([][]uint64, k),
		serialLink:   make([]atomic.Uint64, len(f.linkActive)),
		serialMask:   make([]uint64, len(f.routerActive)),
		eject:        make([][]ejection, k),
		ejectSerial:  make([][]ejection, k),
		moved:        make([]bool, k),
	}
	// Assign whole chiplets to islands, advancing at the ideal router-count
	// boundary but never leaving a later island empty.
	w := 0
	for c := 0; c < numC; c++ {
		end := n
		if c+1 < numC {
			end = starts[c+1]
		}
		for i := starts[c]; i < end; i++ {
			is.routerIsland[i] = int32(w)
		}
		if w < k-1 && (end*k >= n*(w+1) || numC-(c+1) == k-1-w) {
			w++
			is.first[w] = int32(end)
		}
	}
	is.first[k] = int32(n)
	for w := 0; w < k; w++ {
		is.rActive[w] = make([]uint64, len(f.routerActive))
		is.lActive[w] = make([]uint64, len(f.linkActive))
	}
	f.isl = is
	f.rebuildActive()
}

// DisableIslands returns the fabric to the serial active-set engine.
func (f *Fabric) DisableIslands() {
	if f.isl == nil {
		return
	}
	f.isl = nil
	f.rebuildActive()
}

// Islands returns the island count of the parallel engine, or 0 when it
// is disabled.
func (f *Fabric) Islands() int {
	if f.isl == nil {
		return 0
	}
	return f.isl.k
}

// IslandLayout reports the current partition for invariant tests:
// assign[i] is the island of Routers[i] and serial[j] is true when
// Links[j] is exchanged serially (inter-island cut or Rel-protected).
// Nil when the islands engine is disabled.
func (f *Fabric) IslandLayout() (assign []int, serial []bool) {
	is := f.isl
	if is == nil {
		return nil, nil
	}
	if !is.classified {
		is.classify(f)
	}
	assign = make([]int, len(f.Routers))
	for i, w := range is.routerIsland {
		assign[i] = int(w)
	}
	serial = make([]bool, len(f.Links))
	for i, w := range is.linkIsland {
		serial[i] = w < 0
	}
	return assign, serial
}

// ActiveSets returns copies of the engine's effective active sets —
// under the islands engine, the union of every island's bitmaps plus
// the serial link set. The union must always equal the bitmaps the
// serial active-set engine would hold in the same state (the partition
// invariant FuzzIslandPartition checks).
func (f *Fabric) ActiveSets() (routers, links []uint64) {
	routers = make([]uint64, len(f.routerActive))
	links = make([]uint64, len(f.linkActive))
	if is := f.isl; is != nil {
		for w := 0; w < is.k; w++ {
			for i, word := range is.rActive[w] {
				routers[i] |= word
			}
			for i, word := range is.lActive[w] {
				links[i] |= word
			}
		}
		for i := range is.serialLink {
			links[i] |= is.serialLink[i].Load()
		}
		return routers, links
	}
	copy(routers, f.routerActive)
	copy(links, f.linkActive)
	return routers, links
}

// wakeRouter marks r live in its island's active set. Only serial
// contexts (injection, the coordinator's serial passes) and the worker
// owning r's island ever call this, so the plain word write is safe:
// phase 1 wakes the receiving router, which is island-local for links a
// worker delivers, and phase 3 wakes only the processed router itself.
func (is *islandState) wakeRouter(r *Router) {
	is.rActive[is.routerIsland[r.idx]][r.idx>>6] |= 1 << uint(r.idx&63)
}

// wakeLink marks l live. Island-internal links are only ever woken by
// their own island's worker (push and returnCredit both originate at an
// endpoint, and internal links have both endpoints in one island);
// serially-exchanged links can be woken from both sides of the cut at
// once, so their bits are set with CAS — idempotent, order-free.
func (is *islandState) wakeLink(l *Link) {
	if w := is.linkIsland[l.ID]; w >= 0 {
		is.lActive[w][l.ID>>6] |= 1 << uint(l.ID&63)
		return
	}
	word := &is.serialLink[l.ID>>6]
	bit := uint64(1) << uint(l.ID&63)
	for {
		old := word.Load()
		if old&bit != 0 || word.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// classify splits links into island-internal and serial sets and finds
// the routers whose phase 3 must run serially. Classification is lazy
// because the reliability protocol (fault engine) attaches LinkRels
// after Build; it reruns after Reset/Restore (Reset detaches Rels).
// Between classification epochs no link bit can be pending: rebuilds
// zero every set first, and a fresh or Reset fabric has no link work.
func (is *islandState) classify(f *Fabric) {
	for len(is.linkIsland) < len(f.Links) {
		is.linkIsland = append(is.linkIsland, -1)
	}
	for len(is.serialLink)*64 < len(f.Links) {
		is.serialLink = append(is.serialLink, atomic.Uint64{})
	}
	for _, l := range f.Links {
		w := int32(-1)
		if l.Rel == nil {
			if a := is.routerIsland[l.Src.idx]; a == is.routerIsland[l.Dst.idx] {
				w = a
			}
		}
		is.linkIsland[l.ID] = w
	}
	for i := range is.serialMask {
		is.serialMask[i] = 0
	}
	is.serialIdx = is.serialIdx[:0]
	for _, r := range f.Routers {
		for _, o := range r.Out {
			if o.Link != nil && o.Link.Rel != nil {
				is.serialMask[r.idx>>6] |= 1 << uint(r.idx&63)
				is.serialIdx = append(is.serialIdx, int32(r.idx))
				break
			}
		}
	}
	is.classified = true
}

// reset zeroes every derived set and forces reclassification; the caller
// (rebuildActive / Fabric.Reset) re-wakes live components afterwards.
func (is *islandState) reset() {
	for w := 0; w < is.k; w++ {
		for i := range is.rActive[w] {
			is.rActive[w][i] = 0
		}
		for i := range is.lActive[w] {
			is.lActive[w][i] = 0
		}
		is.eject[w] = is.eject[w][:0]
		is.ejectSerial[w] = is.ejectSerial[w][:0]
		is.moved[w] = false
	}
	for i := range is.serialLink {
		is.serialLink[i].Store(0)
	}
	is.deferEject = false
	is.classified = false
}

// pushEject defers one packet delivery to the barrier drain. Parallel
// routers append to their island's worker-owned list, serial-pass
// routers to the coordinator's; both lists are filled in ascending
// router order and merged back together at the drain.
func (is *islandState) pushEject(r *Router, p *packet.Packet) {
	w := is.routerIsland[r.idx]
	e := ejection{router: int32(r.idx), p: p}
	if is.serialMask[r.idx>>6]&(1<<uint(r.idx&63)) != 0 {
		is.ejectSerial[w] = append(is.ejectSerial[w], e)
	} else {
		is.eject[w] = append(is.eject[w], e)
	}
}

// stepIslands advances the fabric by one cycle under the parallel
// engine. Single-island partitions and traced runs use the serial
// variant: with one island there is nothing to overlap, and a Tracer
// observes per-flit movement order, which only the global serial sweep
// reproduces.
func (f *Fabric) stepIslands() {
	is := f.isl
	if !is.classified {
		is.classify(f)
	}
	if is.k == 1 || f.Tracer != nil {
		f.stepIslandsSerial()
		return
	}
	f.Now++
	now := f.Now
	moved := false

	// Serial link exchange: deliver every cut and Rel-protected link in
	// ascending global link ID — the mailbox drain. This runs before the
	// parallel phase so no worker touches a router an exchange is
	// mutating; per-link delivery is commutative (each link owns its
	// destination input port and source credit counters), so splitting
	// the serial links out of the per-island sweeps is unobservable.
	for wi := range is.serialLink {
		word := is.serialLink[wi].Load()
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			l := f.Links[wi<<6|b]
			if l.deliver(now) {
				moved = true
			}
			if !l.pendingWork() {
				is.serialLink[wi].Store(is.serialLink[wi].Load() &^ (1 << uint(b)))
			}
		}
	}

	// The three phases run on k goroutines (the caller's doubles as
	// island 0's worker) with a barrier between phases; each worker walks
	// its own island's active sets in ascending index order.
	var wg sync.WaitGroup
	phase := func(fn func(w int)) {
		wg.Add(is.k - 1)
		for w := 1; w < is.k; w++ {
			go func(w int) {
				defer wg.Done()
				fn(w)
			}(w)
		}
		fn(0)
		wg.Wait()
	}

	phase(func(w int) {
		if f.islandDeliver(w, now) {
			is.moved[w] = true
		}
	})
	phase(func(w int) { f.islandAllocate(w, now) })
	is.deferEject = true
	phase(func(w int) {
		if f.islandTransmit(w, now) {
			is.moved[w] = true
		}
	})

	// Serial phase-3 pass: routers owning Rel-protected output links, in
	// ascending index order, so fault-log records and per-link corruption
	// RNG draws happen in exactly the serial engines' order.
	for _, idx := range is.serialIdx {
		wi, bit := idx>>6, uint64(1)<<uint(idx&63)
		w := is.routerIsland[idx]
		if is.rActive[w][wi]&bit == 0 {
			continue
		}
		r := f.Routers[idx]
		if r.switchAllocate(now) {
			moved = true
		}
		if !r.busy() {
			is.rActive[w][wi] &^= bit
		}
	}
	is.deferEject = false

	// Drain deferred ejections in ascending island order — by contiguity,
	// ascending global router order, the exact Sink call order of the
	// serial engines. Each island's two lists (parallel and serial pass)
	// are individually ascending; merge them by router index.
	for w := 0; w < is.k; w++ {
		par, ser := is.eject[w], is.ejectSerial[w]
		i, j := 0, 0
		for i < len(par) || j < len(ser) {
			if j >= len(ser) || (i < len(par) && par[i].router < ser[j].router) {
				f.deliver(par[i].p, now)
				i++
			} else {
				f.deliver(ser[j].p, now)
				j++
			}
		}
		is.eject[w] = par[:0]
		is.ejectSerial[w] = ser[:0]
	}

	for w := 0; w < is.k; w++ {
		if is.moved[w] {
			moved = true
			is.moved[w] = false
		}
	}
	f.finishStep(now, moved)
}

// islandDeliver is phase 1 for island w: deliver the island's internal
// links in ascending link ID. Delivery wakes only receiving routers,
// which are island-local for internal links, and never wakes links.
func (f *Fabric) islandDeliver(w int, now int64) bool {
	act := f.isl.lActive[w]
	moved := false
	for wi, word := range act {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			l := f.Links[wi<<6|b]
			if l.deliver(now) {
				moved = true
			}
			if !l.pendingWork() {
				act[wi] &^= 1 << uint(b)
			}
		}
	}
	return moved
}

// islandAllocate is phase 2 for island w: VC allocation for the
// island's active routers, ascending. Allocation writes only the
// granting router's own state; its cross-island accesses (the
// safe/unsafe policy reads downstream input queues) are reads of state
// nothing mutates during phase 2, on either engine.
func (f *Fabric) islandAllocate(w int, now int64) {
	act := f.isl.rActive[w]
	for wi, word := range act {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			f.Routers[wi<<6|b].vcAllocate(now)
		}
	}
}

// islandTransmit is phase 3 for island w: switch allocation and
// transmission for the island's active routers, ascending, skipping the
// serial-pass routers (their bits stay set for the coordinator).
// Transfers write single-producer link fifos (flits at the source side,
// credits at the destination side), decrement the router's own credit
// counters, and defer ejections; wakes of serially-exchanged links go
// through the CAS path.
func (f *Fabric) islandTransmit(w int, now int64) bool {
	is := f.isl
	act := is.rActive[w]
	moved := false
	for wi, word := range act {
		word &^= is.serialMask[wi]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			r := f.Routers[wi<<6|b]
			if r.switchAllocate(now) {
				moved = true
			}
			if !r.busy() {
				act[wi] &^= 1 << uint(b)
			}
		}
	}
	return moved
}

// stepIslandsSerial advances one cycle by sweeping the union of every
// island's active sets in ascending global index order — exactly
// stepActive's iteration over a partitioned representation. Used for
// single-island partitions and traced runs; it is also the bisection
// aid when a parallel divergence is suspected (same partition, no
// concurrency).
func (f *Fabric) stepIslandsSerial() {
	is := f.isl
	f.Now++
	now := f.Now
	moved := false

	for wi := range f.linkActive {
		word := is.serialLink[wi].Load()
		for w := 0; w < is.k; w++ {
			word |= is.lActive[w][wi]
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			l := f.Links[wi<<6|b]
			if l.deliver(now) {
				moved = true
			}
			if !l.pendingWork() {
				if w := is.linkIsland[l.ID]; w >= 0 {
					is.lActive[w][wi] &^= 1 << uint(b)
				} else {
					is.serialLink[wi].Store(is.serialLink[wi].Load() &^ (1 << uint(b)))
				}
			}
		}
	}

	for wi := range f.routerActive {
		var word uint64
		for w := 0; w < is.k; w++ {
			word |= is.rActive[w][wi]
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			f.Routers[wi<<6|b].vcAllocate(now)
		}
	}

	for wi := range f.routerActive {
		var word uint64
		for w := 0; w < is.k; w++ {
			word |= is.rActive[w][wi]
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			r := f.Routers[wi<<6|b]
			if r.switchAllocate(now) {
				moved = true
			}
			if !r.busy() {
				is.rActive[is.routerIsland[r.idx]][wi] &^= 1 << uint(b)
			}
		}
	}

	f.finishStep(now, moved)
}
