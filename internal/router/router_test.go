package router

import (
	"testing"

	"chipletnet/internal/packet"
)

// lineRouting routes every packet toward higher node ids along port 1
// (ejecting at the destination); a fixed topology for machinery tests:
// routers 0 -> 1 -> ... -> n-1, port 0 local, port 1 forward.
type lineRouting struct {
	safe func(node int, p *packet.Packet) bool
}

func (l lineRouting) Candidates(r *Router, inPort int, p *packet.Packet, buf []Candidate) []Candidate {
	if r.Node == p.Dst {
		return append(buf, Candidate{Port: 0, VCMask: VCMaskAll(len(r.Out[0].Credits))})
	}
	return append(buf, Candidate{Port: 1, VCMask: VCMaskAll(len(r.Out[1].Link.Dst.In[r.Out[1].Link.DstPort].VCs)), Escape: true})
}

func (l lineRouting) SafeAt(r *Router, inPort int, p *packet.Packet) bool {
	if l.safe == nil {
		return true
	}
	return l.safe(r.Node, p)
}

// buildLine wires n routers in a unidirectional line with the given VC
// count, buffer capacity, bandwidth and latency.
func buildLine(n, vcs, capFlits, bw, lat int) *Fabric {
	f := NewFabric()
	for i := 0; i < n; i++ {
		r := f.NewRouter(i)
		r.AddInPort(1, 1<<30) // injection
		r.AddOutPort()
		f.MakeEjection(r, 0, vcs, bw)
		r.AddInPort(vcs, capFlits) // from the left
		r.AddOutPort()             // to the right
	}
	for i := 0; i+1 < n; i++ {
		f.ConnectPorts(f.Routers[i], 1, f.Routers[i+1], 1, bw, lat, false)
	}
	f.Routing = lineRouting{}
	return f
}

func runCycles(f *Fabric, n int) {
	for i := 0; i < n; i++ {
		f.Step()
	}
}

func mkPacket(id uint64, src, dst, flits int, now int64) *packet.Packet {
	return &packet.Packet{ID: id, Src: src, Dst: dst, Len: flits, CreatedAt: now, Measured: true}
}

func TestSinglePacketDelivery(t *testing.T) {
	f := buildLine(3, 2, 32, 4, 1)
	var got *packet.Packet
	var at int64
	f.Sink = func(p *packet.Packet, now int64) { got, at = p, now }

	p := mkPacket(1, 0, 2, 32, 1)
	f.Routers[0].Inject(p, 0)
	runCycles(f, 100)

	if got == nil {
		t.Fatal("packet not delivered")
	}
	if f.InFlight() != 0 {
		t.Errorf("inFlight = %d after delivery", f.InFlight())
	}
	if got.RouterHops != 2 || got.OnChipHops != 2 || got.OffChipHops != 0 {
		t.Errorf("hops = %d/%d/%d, want 2/2/0", got.RouterHops, got.OnChipHops, got.OffChipHops)
	}
	if at != got.DeliveredAt {
		t.Errorf("sink time %d != DeliveredAt %d", at, got.DeliveredAt)
	}
	// Zero-load latency: per router ~3 cycles of pipeline + transfer of
	// 32 flits at 4/cycle; just sanity-bound it.
	if lat := got.DeliveredAt - got.CreatedAt; lat < 10 || lat > 40 {
		t.Errorf("unexpected zero-load latency %d", lat)
	}
}

func TestPipelineTakesMultipleCycles(t *testing.T) {
	f := buildLine(2, 2, 32, 32, 1)
	delivered := false
	f.Sink = func(p *packet.Packet, now int64) { delivered = true }
	f.Routers[0].Inject(mkPacket(1, 0, 1, 1, 0), 0)
	// RC+VA+SA stages mean nothing can possibly eject before cycle 4.
	runCycles(f, 4)
	if delivered {
		t.Error("single-flit packet traversed a router+link in under 5 cycles")
	}
	runCycles(f, 20)
	if !delivered {
		t.Error("packet never delivered")
	}
}

func TestBandwidthBoundsThroughput(t *testing.T) {
	// 10 packets x 32 flits over a 2-flit/cycle link need >= 160 cycles.
	f := buildLine(2, 2, 64, 2, 1)
	n := 0
	f.Sink = func(p *packet.Packet, now int64) { n++ }
	for i := 0; i < 10; i++ {
		f.Routers[0].Inject(mkPacket(uint64(i), 0, 1, 32, 0), 0)
	}
	runCycles(f, 100)
	if n >= 6 {
		t.Errorf("delivered %d packets in 100 cycles over a 2 flit/cycle link", n)
	}
	runCycles(f, 200)
	if n != 10 {
		t.Errorf("delivered %d of 10 packets", n)
	}
}

func TestLinkLatencyDelaysDelivery(t *testing.T) {
	lat1 := deliveryTime(t, 1)
	lat9 := deliveryTime(t, 9)
	if lat9-lat1 != 8 {
		t.Errorf("latency delta = %d, want 8 (link latency 1 vs 9)", lat9-lat1)
	}
}

func deliveryTime(t *testing.T, linkLat int) int64 {
	t.Helper()
	f := buildLine(2, 2, 32, 4, linkLat)
	var at int64
	f.Sink = func(p *packet.Packet, now int64) { at = now }
	f.Routers[0].Inject(mkPacket(1, 0, 1, 4, 0), 0)
	runCycles(f, 100)
	if at == 0 {
		t.Fatal("not delivered")
	}
	return at
}

func TestVCTNeedsWholePacketCredit(t *testing.T) {
	// Buffer of exactly one packet: a second packet cannot be granted the
	// same downstream VC until the first fully drains out of it.
	f := buildLine(3, 1, 32, 4, 1)
	var orders []uint64
	f.Sink = func(p *packet.Packet, now int64) { orders = append(orders, p.ID) }
	f.Routers[0].Inject(mkPacket(1, 0, 2, 32, 0), 0)
	f.Routers[0].Inject(mkPacket(2, 0, 2, 32, 0), 0)
	runCycles(f, 300)
	if len(orders) != 2 || orders[0] != 1 || orders[1] != 2 {
		t.Errorf("deliveries = %v, want [1 2]", orders)
	}
}

func TestBufferNeverOverflows(t *testing.T) {
	// receive panics on overflow, so heavy load + small buffers passing
	// without panic is the assertion.
	f := buildLine(4, 2, 32, 4, 3)
	n := 0
	f.Sink = func(p *packet.Packet, now int64) { n++ }
	id := uint64(0)
	for cy := 0; cy < 400; cy++ {
		if cy%8 == 0 {
			id++
			f.Routers[0].Inject(mkPacket(id, 0, 3, 32, int64(cy)), int64(cy))
		}
		f.Step()
	}
	runCycles(f, 400)
	if n != int(id) {
		t.Errorf("delivered %d of %d", n, id)
	}
}

func TestCreditsReturnToFull(t *testing.T) {
	f := buildLine(3, 2, 32, 4, 1)
	f.Sink = func(p *packet.Packet, now int64) {}
	f.Routers[0].Inject(mkPacket(1, 0, 2, 32, 0), 0)
	runCycles(f, 200)
	for _, r := range f.Routers {
		for _, o := range r.Out {
			if o.Link == nil {
				continue
			}
			for vc, c := range o.Credits {
				want := o.Link.Dst.In[o.Link.DstPort].VCs[vc].Cap
				if c != want {
					t.Errorf("router %d out %d vc %d credits %d, want %d", r.Node, o.Index, vc, c, want)
				}
			}
		}
	}
	if f.BufferedFlits() != 0 {
		t.Errorf("%d flits still buffered after drain", f.BufferedFlits())
	}
}

func TestFCFSOrderPreserved(t *testing.T) {
	// Packets injected in order on one VC must eject in order.
	f := buildLine(2, 2, 64, 4, 1)
	var got []uint64
	f.Sink = func(p *packet.Packet, now int64) { got = append(got, p.ID) }
	for i := uint64(1); i <= 5; i++ {
		f.Routers[0].Inject(mkPacket(i, 0, 1, 16, 0), 0)
	}
	runCycles(f, 300)
	for i, id := range got {
		if id != uint64(i+1) {
			t.Fatalf("out-of-order deliveries: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5", len(got))
	}
}

func TestDeadlockWatchdog(t *testing.T) {
	// Two routers pointing at each other with routing that never ejects:
	// forced circular wait -> the watchdog must fire.
	f := NewFabric()
	f.DeadlockThreshold = 50
	for i := 0; i < 2; i++ {
		r := f.NewRouter(i)
		r.AddInPort(1, 1<<30)
		r.AddOutPort()
		f.MakeEjection(r, 0, 1, 4)
		r.AddInPort(1, 32)
		r.AddOutPort()
	}
	f.ConnectPorts(f.Routers[0], 1, f.Routers[1], 1, 4, 1, false)
	f.ConnectPorts(f.Routers[1], 1, f.Routers[0], 1, 4, 1, false)
	// Route everything forward forever (dst unreachable).
	f.Routing = neverEject{}
	f.Routers[0].Inject(mkPacket(1, 0, 99, 32, 0), 0)
	f.Routers[1].Inject(mkPacket(2, 1, 99, 32, 0), 0)
	runCycles(f, 500)
	if !f.Deadlocked {
		t.Error("watchdog did not fire on a livelocked configuration")
	}
}

type neverEject struct{}

func (neverEject) Candidates(r *Router, inPort int, p *packet.Packet, buf []Candidate) []Candidate {
	return append(buf, Candidate{Port: 1, VCMask: 1})
}
func (neverEject) SafeAt(r *Router, inPort int, p *packet.Packet) bool { return false }

func TestVCMaskHelpers(t *testing.T) {
	if VCMaskAll(3) != 0b111 {
		t.Errorf("VCMaskAll(3) = %b", VCMaskAll(3))
	}
	if VCMaskOf(0, 2) != 0b101 {
		t.Errorf("VCMaskOf(0,2) = %b", VCMaskOf(0, 2))
	}
}

func TestInjectionQueueCounts(t *testing.T) {
	f := buildLine(2, 2, 32, 4, 1)
	f.Sink = func(p *packet.Packet, now int64) {}
	for i := 0; i < 3; i++ {
		f.Routers[0].Inject(mkPacket(uint64(i), 0, 1, 32, 0), 0)
	}
	if f.InFlight() != 3 {
		t.Errorf("inFlight = %d, want 3", f.InFlight())
	}
	runCycles(f, 300)
	if f.InFlight() != 0 {
		t.Errorf("inFlight = %d after drain", f.InFlight())
	}
}

func TestConnectPortsValidation(t *testing.T) {
	f := NewFabric()
	a := f.NewRouter(0)
	a.AddInPort(1, 8)
	a.AddOutPort()
	b := f.NewRouter(1)
	b.AddInPort(1, 8)
	b.AddOutPort()
	f.ConnectPorts(a, 0, b, 0, 1, 1, false)
	for name, fn := range map[string]func(){
		"double-connect-out": func() { f.ConnectPorts(a, 0, b, 0, 1, 1, false) },
		"zero-latency":       func() { f.ConnectPorts(b, 0, a, 0, 1, 0, false) },
		"zero-bandwidth":     func() { f.ConnectPorts(b, 0, a, 0, 0, 1, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOffChipVAExtraDelays(t *testing.T) {
	base := offChipDelivery(t, 0)
	slow := offChipDelivery(t, 7)
	if slow-base != 7 {
		t.Errorf("VA penalty delta = %d, want 7", slow-base)
	}
}

func offChipDelivery(t *testing.T, extra int) int64 {
	t.Helper()
	f := NewFabric()
	f.OffChipVAExtra = extra
	for i := 0; i < 2; i++ {
		r := f.NewRouter(i)
		r.AddInPort(1, 1<<30)
		r.AddOutPort()
		f.MakeEjection(r, 0, 1, 4)
		r.AddInPort(1, 32)
		r.AddOutPort()
	}
	f.ConnectPorts(f.Routers[0], 1, f.Routers[1], 1, 4, 1, true) // off-chip
	f.Routing = lineRouting{}
	var at int64
	f.Sink = func(p *packet.Packet, now int64) { at = now }
	f.Routers[0].Inject(mkPacket(1, 0, 1, 4, 0), 0)
	runCycles(f, 100)
	if at == 0 {
		t.Fatal("not delivered")
	}
	return at
}
