package router

import (
	"testing"
	"testing/quick"
)

func TestFifoOrder(t *testing.T) {
	var f fifo[int]
	for i := 0; i < 100; i++ {
		f.Push(i)
	}
	for i := 0; i < 100; i++ {
		if f.Len() != 100-i {
			t.Fatalf("Len = %d, want %d", f.Len(), 100-i)
		}
		if got := f.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if f.Len() != 0 {
		t.Errorf("Len = %d after drain", f.Len())
	}
}

func TestFifoFrontAndAt(t *testing.T) {
	var f fifo[string]
	f.Push("a")
	f.Push("b")
	f.Push("c")
	f.Pop()
	if *f.Front() != "b" || *f.At(1) != "c" {
		t.Errorf("Front=%q At(1)=%q", *f.Front(), *f.At(1))
	}
	*f.Front() = "B" // Front returns a mutable pointer
	if f.Pop() != "B" {
		t.Error("mutation through Front not visible")
	}
}

func TestFifoCompaction(t *testing.T) {
	var f fifo[int]
	// Interleave pushes and pops so the head index grows and compaction
	// triggers; order must survive.
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			f.Push(next)
			next++
		}
		for i := 0; i < 9; i++ {
			if got := f.Pop(); got != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, expect)
			}
			expect++
		}
		if len(f.items) > f.Len()*3+64 {
			t.Fatalf("fifo failed to compact: %d backing slots for %d items", len(f.items), f.Len())
		}
	}
}

func TestFifoQuick(t *testing.T) {
	// Model-based: fifo must behave like a slice queue for any op string.
	f := func(ops []bool, vals []int) bool {
		var q fifo[int]
		var model []int
		vi := 0
		for _, push := range ops {
			if push || len(model) == 0 {
				v := 0
				if vi < len(vals) {
					v = vals[vi]
					vi++
				}
				q.Push(v)
				model = append(model, v)
			} else {
				if q.Pop() != model[0] {
					return false
				}
				model = model[1:]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
