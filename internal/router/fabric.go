package router

import (
	"fmt"

	"chipletnet/internal/packet"
)

// ejectCredits is the effectively-infinite credit count of ejection ports.
const ejectCredits = 1 << 30

// Fabric is a complete interconnection network: the routers, the links
// between them, the routing algorithm, and the cycle engine that advances
// them in lockstep. One Fabric runs one simulation; it is not safe for
// concurrent use (run independent Fabrics on separate goroutines instead).
type Fabric struct {
	Routers []*Router
	Links   []*Link

	// Routing is the routing algorithm consulted at the RC/VA stages.
	Routing Routing
	// SafeUnsafe enables the safe/unsafe flow-control policy
	// (Algorithm 5) at VC allocation.
	SafeUnsafe bool
	// OffChipVAExtra is the extra VC-allocation latency (cycles) for
	// candidates whose output link leaves the chiplet (§VI-A: "the
	// cross-chiplet VC allocation ... consume[s] more clock cycles").
	OffChipVAExtra int

	// Sink receives every delivered packet (tail flit consumed at the
	// destination). Set by the runner to the statistics collector.
	Sink func(p *packet.Packet, now int64)

	// Tracer, when non-nil, observes packet lifecycle events (injection,
	// per-link movement, delivery). Tracing is off the hot path only via
	// the nil check, so leave it nil for measurement runs.
	Tracer Tracer

	// Now is the current cycle, starting at 1 on the first Step.
	Now int64

	// DeadlockThreshold is the number of consecutive cycles without any
	// flit movement (while packets are in flight) after which the fabric
	// declares a deadlock. Zero disables detection.
	DeadlockThreshold int64
	// CreditAudit enables the per-cycle credit-conservation invariant
	// check (AuditCredits): a retransmission or flow-control bug that
	// leaks or double-returns a credit panics immediately with a
	// diagnosis instead of deadlocking silently thousands of cycles
	// later. Debug aid; costs one pass over all links per cycle.
	CreditAudit bool
	// Deadlocked is set when the watchdog fires.
	Deadlocked bool
	// Deadlock is the diagnostic snapshot taken the first time the
	// watchdog fires: the blocked routers and virtual channels, and the
	// oldest waiting packet. Nil while the fabric is live.
	Deadlock *DeadlockReport

	// UseReference selects the naive reference stepper (stepReference)
	// instead of the active-set engine. The two are observationally
	// identical (see doc.go); the reference exists as the oracle for the
	// differential-equivalence suite and for bisecting engine bugs.
	UseReference bool

	// isl, when non-nil, selects the parallel-islands engine
	// (EnableIslands, islands.go): the fabric is partitioned into
	// contiguous-chiplet islands stepped on worker goroutines with a
	// deterministic boundary exchange per cycle. Observationally
	// identical to both serial engines. UseReference wins if both are
	// set (the oracle must stay bisectable against any engine).
	isl *islandState

	inFlight     int
	lastProgress int64

	// routerActive and linkActive are the engine's active sets: bit i set
	// means Routers[i] (resp. Links[i]) may have work this cycle. Bits are
	// set by wakeRouter/wakeLink at every state transition that creates
	// work and cleared by the engine once a component is provably idle.
	// Iteration is always in ascending index order, so the active-set
	// engine visits live components in exactly the reference order.
	routerActive []uint64
	linkActive   []uint64

	// auditCharged/auditReturning are AuditCredits scratch buffers, kept
	// on the fabric so a per-cycle audit (-checkcredits) does not allocate.
	auditCharged, auditReturning []int
}

// NewFabric returns an empty fabric with deadlock detection enabled.
func NewFabric() *Fabric {
	return &Fabric{DeadlockThreshold: 2000}
}

// NewRouter appends a router implementing global node id and returns it.
func (f *Fabric) NewRouter(node int) *Router {
	r := &Router{Node: node, Fabric: f, idx: len(f.Routers), vaOffset: node}
	f.Routers = append(f.Routers, r)
	for len(f.routerActive)*64 < len(f.Routers) {
		f.routerActive = append(f.routerActive, 0)
	}
	return r
}

// ConnectPorts creates a unidirectional link from src output port srcPort to
// dst input port dstPort. The destination input port must already exist (its
// VC capacities size the sender's credit counters). The source output port
// must exist and be unused.
func (f *Fabric) ConnectPorts(src *Router, srcPort int, dst *Router, dstPort, bandwidth, latency int, offChip bool) *Link {
	if latency < 1 {
		panic("router: link latency must be >= 1")
	}
	if bandwidth < 1 {
		panic("router: link bandwidth must be >= 1")
	}
	op := src.Out[srcPort]
	if op.Link != nil {
		panic(fmt.Sprintf("router %d: output port %d already connected", src.Node, srcPort))
	}
	ip := dst.In[dstPort]
	if ip.Link != nil {
		panic(fmt.Sprintf("router %d: input port %d already connected", dst.Node, dstPort))
	}
	l := &Link{
		ID:  len(f.Links),
		Src: src, SrcPort: srcPort,
		Dst: dst, DstPort: dstPort,
		Bandwidth: bandwidth,
		Latency:   latency,
		OffChip:   offChip,
	}
	op.Link = l
	op.Credits = make([]int, len(ip.VCs))
	op.Owner = make([]*VC, len(ip.VCs))
	for i, vc := range ip.VCs {
		op.Credits[i] = vc.Cap
	}
	ip.Link = l
	f.Links = append(f.Links, l)
	for len(f.linkActive)*64 < len(f.Links) {
		f.linkActive = append(f.linkActive, 0)
	}
	return l
}

// MakeEjection configures output port port of r as the local ejection sink
// with the given consumption bandwidth (flits/cycle). vcSlots bounds how
// many packets can eject concurrently (sharing the bandwidth).
func (f *Fabric) MakeEjection(r *Router, port, vcSlots, bandwidth int) {
	op := r.Out[port]
	op.EjectBandwidth = bandwidth
	op.Credits = make([]int, vcSlots)
	op.Owner = make([]*VC, vcSlots)
	for i := range op.Credits {
		op.Credits[i] = ejectCredits
	}
}

// InFlight returns the number of packets injected but not yet delivered.
func (f *Fabric) InFlight() int { return f.inFlight }

func (f *Fabric) deliver(p *packet.Packet, now int64) {
	f.inFlight--
	if f.Sink != nil {
		f.Sink(p, now)
	}
}

// deliverFrom is the ejection path out of router r. During the islands
// engine's phase 3 the delivery is deferred into r's island's ordered
// ejection list and replayed at the barrier drain in ascending router
// order — the Sink call order and inFlight accounting of the serial
// engines; in every other context it is Fabric.deliver.
func (f *Fabric) deliverFrom(r *Router, p *packet.Packet, now int64) {
	if is := f.isl; is != nil && is.deferEject {
		is.pushEject(r, p)
		return
	}
	f.deliver(p, now)
}

// Step advances the fabric by one cycle:
//
//  1. links deliver due flits and credits,
//  2. every router runs VC allocation for waiting head packets,
//  3. every router runs switch allocation + transmission,
//  4. the deadlock watchdog checks for progress.
//
// Injection (traffic generation) is the caller's responsibility and should
// happen before Step for the same cycle via Router.Inject.
//
// By default Step runs the active-set engine (stepActive), which visits
// only components that may have work; UseReference selects the naive
// reference stepper and EnableIslands the parallel-islands engine. All
// three produce bit-identical state trajectories — see the package
// documentation for the equivalence argument.
func (f *Fabric) Step() {
	switch {
	case f.UseReference:
		f.stepReference()
	case f.isl != nil:
		f.stepIslands()
	default:
		f.stepActive()
	}
}

// stepReference is the pre-optimisation cycle engine: it visits every
// link and every router unconditionally. It is retained verbatim as the
// oracle for the differential-equivalence suite (engine_equiv_test.go at
// the module root) and must not be "optimised" — its value is being
// obviously correct.
func (f *Fabric) stepReference() {
	f.Now++
	now := f.Now

	moved := false
	for _, l := range f.Links {
		if l.deliver(now) {
			moved = true
		}
	}
	for _, r := range f.Routers {
		r.vcAllocate(now)
	}
	for _, r := range f.Routers {
		if r.switchAllocate(now) {
			moved = true
		}
	}

	f.finishStep(now, moved)
}

// finishStep runs the common per-cycle tail: the deadlock watchdog and
// the optional credit-conservation audit.
func (f *Fabric) finishStep(now int64, moved bool) {
	if moved {
		f.lastProgress = now
	} else if f.DeadlockThreshold > 0 && f.inFlight > 0 &&
		now-f.lastProgress > f.DeadlockThreshold {
		if !f.Deadlocked {
			f.Deadlock = f.snapshotDeadlock(now)
		}
		f.Deadlocked = true
	}

	if f.CreditAudit {
		if err := f.AuditCredits(); err != nil {
			panic(err)
		}
	}
}

// AuditCredits verifies credit conservation for every link-connected
// (output port, downstream VC): the sender's credit counter, the flits
// charged but not yet buffered downstream, the credit returns in flight,
// and the downstream buffer occupancy must sum to the buffer capacity.
// The conservation law holds at every cycle boundary, faults and
// retransmissions included — a violation means a credit was leaked or
// double-returned.
func (f *Fabric) AuditCredits() error {
	charged, returning := f.auditCharged, f.auditReturning
	defer func() { f.auditCharged, f.auditReturning = charged, returning }()
	for _, l := range f.Links {
		ip := l.Dst.In[l.DstPort]
		op := l.Src.Out[l.SrcPort]
		n := len(ip.VCs)
		charged = zeroInts(charged, n)
		returning = zeroInts(returning, n)
		l.chargedFlits(charged)
		for i := 0; i < l.credits.Len(); i++ {
			c := l.credits.At(i)
			returning[c.vc] += c.n
		}
		for vcIdx, vc := range ip.VCs {
			got := op.Credits[vcIdx] + charged[vcIdx] + returning[vcIdx] + vc.flits
			if got != vc.Cap {
				return fmt.Errorf("router: credit conservation violated on link %d (%d->%d) vc %d at cycle %d: credits %d + in-transit %d + returning %d + buffered %d = %d, want capacity %d",
					l.ID, l.Src.Node, l.Dst.Node, vcIdx, f.Now,
					op.Credits[vcIdx], charged[vcIdx], returning[vcIdx], vc.flits, got, vc.Cap)
			}
		}
	}
	return nil
}

// zeroInts returns buf resized to n and zeroed, reallocating only when
// it must grow.
func zeroInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// maxBlockedWitnesses caps the per-report blocked-VC witness list; the
// totals keep counting beyond it.
const maxBlockedWitnesses = 16

// BlockedVC identifies one stalled virtual channel in a deadlock snapshot:
// the buffer it occupies, its head packet, and how many cycles that packet
// has been in the network.
type BlockedVC struct {
	Node, Port, VC int
	Packet         *packet.Packet
	Age            int64 // cycles since the head packet entered its source queue
	Buffered       int   // flits buffered in the VC
}

func (b BlockedVC) String() string {
	return fmt.Sprintf("router %d port %d vc %d: packet %d->%d waiting %d cycles (%d flits buffered)",
		b.Node, b.Port, b.VC, b.Packet.Src, b.Packet.Dst, b.Age, b.Buffered)
}

// DeadlockReport is the watchdog's diagnostic snapshot: which routers and
// virtual channels hold stalled packets when progress ceased, and the age
// of the oldest waiting packet. It names the resources of the deadlocked
// configuration so a report can be cross-checked against the static
// verifier's channel-dependency-cycle witness.
type DeadlockReport struct {
	// Cycle is when the watchdog fired; StallCycles how long the fabric
	// had already been without flit movement at that point.
	Cycle, StallCycles int64
	// InFlight is the number of undelivered packets.
	InFlight int
	// BlockedRouters and BlockedVCs count every stalled resource; Blocked
	// lists the first maxBlockedWitnesses of them in router order.
	BlockedRouters, BlockedVCs int
	Blocked                    []BlockedVC
	// Oldest is the longest-waiting head packet and OldestAge its age in
	// cycles at the snapshot.
	Oldest    *packet.Packet
	OldestAge int64
}

func (d *DeadlockReport) String() string {
	s := fmt.Sprintf("deadlock at cycle %d: no flit movement for %d cycles, %d packets in flight, %d blocked VCs on %d routers",
		d.Cycle, d.StallCycles, d.InFlight, d.BlockedVCs, d.BlockedRouters)
	if d.Oldest != nil {
		s += fmt.Sprintf("; oldest packet %d->%d waiting %d cycles", d.Oldest.Src, d.Oldest.Dst, d.OldestAge)
	}
	for _, b := range d.Blocked {
		s += "\n  " + b.String()
	}
	if d.BlockedVCs > len(d.Blocked) {
		s += fmt.Sprintf("\n  ... %d further blocked VCs", d.BlockedVCs-len(d.Blocked))
	}
	return s
}

// snapshotDeadlock walks every router's input VCs in deterministic index
// order and records the occupied ones — with no flit moving anywhere, every
// buffered packet is by definition stalled. It reads VC heads directly
// (no per-VC HeadInfo allocation) and allocates only the report itself
// and one witness slice of bounded capacity.
func (f *Fabric) snapshotDeadlock(now int64) *DeadlockReport {
	d := &DeadlockReport{
		Cycle:       now,
		StallCycles: now - f.lastProgress,
		InFlight:    f.inFlight,
		Blocked:     make([]BlockedVC, 0, maxBlockedWitnesses),
	}
	for _, r := range f.Routers {
		routerBlocked := false
		for pi, ip := range r.In {
			for vi, vc := range ip.VCs {
				h := vc.head()
				if h == nil {
					continue
				}
				routerBlocked = true
				d.BlockedVCs++
				age := now - h.p.CreatedAt
				if d.Oldest == nil || age > d.OldestAge {
					d.Oldest, d.OldestAge = h.p, age
				}
				if len(d.Blocked) < maxBlockedWitnesses {
					d.Blocked = append(d.Blocked, BlockedVC{
						Node: r.Node, Port: pi, VC: vi,
						Packet: h.p, Age: age, Buffered: vc.Occupied(),
					})
				}
			}
		}
		if routerBlocked {
			d.BlockedRouters++
		}
	}
	return d
}

// BufferedFlits returns the total flits buffered in all routers (excluding
// flits in flight on links); useful for invariant tests.
func (f *Fabric) BufferedFlits() int {
	n := 0
	for _, r := range f.Routers {
		n += r.BufferedFlits()
	}
	return n
}
