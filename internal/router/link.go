package router

import "chipletnet/internal/packet"

// Link is a unidirectional channel between an output port of one router and
// an input port of another. It models a fixed per-cycle bandwidth (enforced
// by the sender's switch allocator), a fixed latency, and the credit return
// path in the reverse direction (credits take the same latency).
//
// Flits are carried as bundles — (packet, count) pairs — rather than as
// individual flit objects; the receiving input VC reassembles packets by
// identity. This keeps simulation cost proportional to packets while staying
// cycle-accurate for buffer occupancy and bandwidth.
type Link struct {
	ID      int
	Src     *Router
	SrcPort int // output port index on Src
	Dst     *Router
	DstPort int // input port index on Dst

	// Bandwidth is the number of flits the link accepts per cycle.
	Bandwidth int
	// Latency is the flit traversal time in cycles (>= 1). Off-chip
	// (chiplet-to-chiplet) links typically use a larger latency.
	Latency int
	// OffChip marks chiplet-to-chiplet links; they are counted separately
	// by the energy model and may incur a VC-allocation penalty.
	OffChip bool

	// Carried counts flits pushed onto the link over the whole run
	// (retransmitted copies included); utilization follows as
	// Carried / (Bandwidth * cycles).
	Carried int64

	// Rel, when non-nil, enables the link-level reliability protocol:
	// CRC-checked sequence-numbered bundles, cumulative ack/nack, and
	// go-back-N retransmission from a replay buffer with capped
	// exponential backoff. Nil models an ideal error-free channel (the
	// default; zero overhead and bit-identical to earlier behavior).
	Rel *LinkRel

	flits   fifo[flitBundle]
	credits fifo[creditBundle]
	acks    fifo[ackMsg]
}

// Utilization returns the fraction of the link's capacity used over the
// given number of cycles.
func (l *Link) Utilization(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(l.Carried) / (float64(l.Bandwidth) * float64(cycles))
}

type flitBundle struct {
	p        *packet.Packet
	n        int // flit count
	vc       int // destination VC index at Dst's input port
	arriveAt int64

	// Reliability-protocol header (meaningful only when Link.Rel != nil):
	// the bundle's sequence number and whether in-transit corruption
	// flipped bits the receiver's CRC will catch.
	seq     uint64
	corrupt bool
}

type creditBundle struct {
	vc       int // VC index at Dst's input port whose buffer freed up
	n        int
	arriveAt int64
}

// push enqueues n flits of p destined for downstream VC vc. The caller (the
// switch allocator) is responsible for respecting Bandwidth and has charged
// downstream credits for the flits — exactly once, retransmissions never
// re-charge.
func (l *Link) push(p *packet.Packet, n, vc int, now int64) {
	l.Src.Fabric.wakeLink(l)
	if l.Rel != nil {
		l.Rel.send(l, p, n, vc, now)
		return
	}
	l.Carried += int64(n)
	l.flits.Push(flitBundle{p: p, n: n, vc: vc, arriveAt: now + int64(l.Latency)})
}

// returnCredit sends n credits for VC vc back to the link source.
func (l *Link) returnCredit(vc, n int, now int64) {
	l.Src.Fabric.wakeLink(l)
	l.credits.Push(creditBundle{vc: vc, n: n, arriveAt: now + int64(l.Latency)})
}

// pendingWork reports whether the link could still do anything on a
// future cycle: flits, credits, or acks in flight, or unacknowledged
// replay bundles whose timeout may fire. A link with no pending work is
// removed from the engine's active set; any push or returnCredit re-adds
// it (wakeLink). deliver on such a link is a guaranteed no-op.
func (l *Link) pendingWork() bool {
	return l.flits.Len() > 0 || l.credits.Len() > 0 || l.acks.Len() > 0 ||
		(l.Rel != nil && l.Rel.replay.Len() > 0)
}

// deliver moves all due flit bundles into Dst's input buffers and all due
// credits back to Src's output port. Under the reliability protocol it
// additionally runs CRC/sequence acceptance on arrivals, processes acks at
// the sender, and fires timeout-driven retransmissions. It reports whether
// anything moved (for the deadlock watchdog).
func (l *Link) deliver(now int64) bool {
	moved := false
	for l.flits.Len() > 0 && l.flits.Front().arriveAt <= now {
		b := l.flits.Pop()
		if l.Rel != nil && !l.Rel.receive(l, b, now) {
			continue // dropped: corrupted, duplicate, or out of order
		}
		l.Dst.receive(l.DstPort, b.vc, b.p, b.n, now)
		moved = true
	}
	for l.acks.Len() > 0 && l.acks.Front().arriveAt <= now {
		a := l.acks.Pop()
		l.Rel.onAck(l, a, now)
	}
	if l.Rel != nil && l.Rel.timedOut(now) {
		l.Rel.retransmit(l, now)
	}
	for l.credits.Len() > 0 && l.credits.Front().arriveAt <= now {
		c := l.credits.Pop()
		l.Src.Out[l.SrcPort].Credits[c.vc] += c.n
		moved = true
	}
	return moved
}

// InFlight returns the number of flits currently traversing the link.
func (l *Link) InFlight() int {
	n := 0
	for i := 0; i < l.flits.Len(); i++ {
		n += l.flits.At(i).n
	}
	return n
}

// chargedFlits adds to perVC (indexed by downstream VC) the flits the
// sender has charged credits for that the receiver has not yet buffered:
// unacknowledged-and-unaccepted replay bundles under the reliability
// protocol, wire contents otherwise. Replay entries below the receiver's
// accept horizon are excluded — their flits are already counted in the
// downstream buffer while the ack is still in flight.
func (l *Link) chargedFlits(perVC []int) {
	if l.Rel != nil {
		for i := 0; i < l.Rel.replay.Len(); i++ {
			e := l.Rel.replay.At(i)
			if e.seq >= l.Rel.expect {
				perVC[e.vc] += e.n
			}
		}
		return
	}
	for i := 0; i < l.flits.Len(); i++ {
		b := l.flits.At(i)
		perVC[b.vc] += b.n
	}
}

// Quiesced reports whether nothing is pending on the link: no flits on
// the wire, no unacknowledged replay bundles, and no acks or credit
// returns in flight. A quiesced link can be decommissioned without
// losing data.
func (l *Link) Quiesced() bool {
	return l.flits.Len() == 0 && l.credits.Len() == 0 && l.acks.Len() == 0 &&
		(l.Rel == nil || l.Rel.replay.Len() == 0)
}

// ForEachInFlight calls fn for every packet with flits on the wire or,
// under the reliability protocol, unacknowledged in the replay buffer
// (each packet may be reported more than once).
func (l *Link) ForEachInFlight(fn func(*packet.Packet)) {
	if l.Rel != nil {
		for i := 0; i < l.Rel.replay.Len(); i++ {
			fn(l.Rel.replay.At(i).p)
		}
		return
	}
	for i := 0; i < l.flits.Len(); i++ {
		fn(l.flits.At(i).p)
	}
}
