package router

import "chipletnet/internal/packet"

// Link is a unidirectional channel between an output port of one router and
// an input port of another. It models a fixed per-cycle bandwidth (enforced
// by the sender's switch allocator), a fixed latency, and the credit return
// path in the reverse direction (credits take the same latency).
//
// Flits are carried as bundles — (packet, count) pairs — rather than as
// individual flit objects; the receiving input VC reassembles packets by
// identity. This keeps simulation cost proportional to packets while staying
// cycle-accurate for buffer occupancy and bandwidth.
type Link struct {
	ID      int
	Src     *Router
	SrcPort int // output port index on Src
	Dst     *Router
	DstPort int // input port index on Dst

	// Bandwidth is the number of flits the link accepts per cycle.
	Bandwidth int
	// Latency is the flit traversal time in cycles (>= 1). Off-chip
	// (chiplet-to-chiplet) links typically use a larger latency.
	Latency int
	// OffChip marks chiplet-to-chiplet links; they are counted separately
	// by the energy model and may incur a VC-allocation penalty.
	OffChip bool

	// Carried counts flits pushed onto the link over the whole run;
	// utilization follows as Carried / (Bandwidth * cycles).
	Carried int64

	flits   fifo[flitBundle]
	credits fifo[creditBundle]
}

// Utilization returns the fraction of the link's capacity used over the
// given number of cycles.
func (l *Link) Utilization(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(l.Carried) / (float64(l.Bandwidth) * float64(cycles))
}

type flitBundle struct {
	p        *packet.Packet
	n        int // flit count
	vc       int // destination VC index at Dst's input port
	arriveAt int64
}

type creditBundle struct {
	vc       int // VC index at Dst's input port whose buffer freed up
	n        int
	arriveAt int64
}

// push enqueues n flits of p destined for downstream VC vc. The caller (the
// switch allocator) is responsible for respecting Bandwidth.
func (l *Link) push(p *packet.Packet, n, vc int, now int64) {
	l.Carried += int64(n)
	l.flits.Push(flitBundle{p: p, n: n, vc: vc, arriveAt: now + int64(l.Latency)})
}

// returnCredit sends n credits for VC vc back to the link source.
func (l *Link) returnCredit(vc, n int, now int64) {
	l.credits.Push(creditBundle{vc: vc, n: n, arriveAt: now + int64(l.Latency)})
}

// deliver moves all due flit bundles into Dst's input buffers and all due
// credits back to Src's output port. It reports whether anything moved
// (for the deadlock watchdog).
func (l *Link) deliver(now int64) bool {
	moved := false
	for l.flits.Len() > 0 && l.flits.Front().arriveAt <= now {
		b := l.flits.Pop()
		l.Dst.receive(l.DstPort, b.vc, b.p, b.n, now)
		moved = true
	}
	for l.credits.Len() > 0 && l.credits.Front().arriveAt <= now {
		c := l.credits.Pop()
		l.Src.Out[l.SrcPort].Credits[c.vc] += c.n
		moved = true
	}
	return moved
}

// InFlight returns the number of flits currently traversing the link.
func (l *Link) InFlight() int {
	n := 0
	for i := 0; i < l.flits.Len(); i++ {
		n += l.flits.At(i).n
	}
	return n
}
