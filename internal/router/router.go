package router

import (
	"fmt"

	"chipletnet/internal/packet"
)

// vcState is the head-of-line pipeline state of a virtual channel.
type vcState uint8

const (
	vcIdle    vcState = iota // no packet at head
	vcRouting                // head packet arrived; routing computation in flight
	vcActive                 // VC allocation granted; competing for the switch
)

// pktInst is one packet resident (fully or partially) in an input VC buffer.
type pktInst struct {
	p        *packet.Packet
	received int  // flits that have arrived into this buffer
	sent     int  // flits forwarded out of this buffer
	safe     bool // Definition 4: has a minus-first path from this channel
}

// VC is one virtual channel of an input port: a flit FIFO plus the
// head-of-line pipeline state used by VC allocation and switch allocation.
type VC struct {
	Port  *InPort
	Index int
	// Cap is the buffer capacity in flits (Table II: 32 for internal
	// buffers, 64 for interface buffers; effectively unbounded for the
	// injection queue).
	Cap int

	q     fifo[pktInst]
	flits int // total flits currently buffered

	state     vcState
	readyAt   int64 // cycle at which the current pipeline stage completes
	grantedAt int64 // cycle VA was granted (FCFS key for the crossbar)
	outPort   *OutPort
	outVC     int

	scratch []Candidate // reusable candidate buffer
}

// Free returns the free buffer space in flits.
func (v *VC) Free() int { return v.Cap - v.flits }

// Occupied returns the buffered flit count.
func (v *VC) Occupied() int { return v.flits }

// Packets returns the number of (possibly partial) packets buffered.
func (v *VC) Packets() int { return v.q.Len() }

// ForEachPacket calls fn for every packet resident (fully or partially)
// in this VC's buffer, in queue order.
func (v *VC) ForEachPacket(fn func(*packet.Packet)) {
	for i := 0; i < v.q.Len(); i++ {
		fn(v.q.At(i).p)
	}
}

// HeadDebug describes the head packet of a VC for diagnostics.
type HeadDebug struct {
	P              *packet.Packet
	Received, Sent int
	Safe           bool
	State          uint8
}

// HeadInfo returns diagnostics for the VC's head packet, or nil.
func (v *VC) HeadInfo() *HeadDebug {
	h := v.head()
	if h == nil {
		return nil
	}
	return &HeadDebug{P: h.p, Received: h.received, Sent: h.sent, Safe: h.safe, State: uint8(v.state)}
}

// head returns the head packet instance, or nil.
func (v *VC) head() *pktInst {
	if v.q.Len() == 0 {
		return nil
	}
	return v.q.Front()
}

// InPort is a router input port: the receiving end of a link (or the local
// injection queue when Link is nil), holding one or more virtual channels.
type InPort struct {
	Router *Router
	Index  int
	Link   *Link // incoming link; nil for the local injection port
	VCs    []*VC
}

// allSafe reports whether the VC holds at least one packet and every
// queued packet is safe (Definition 4). Such a VC is a genuine progress
// guarantee: its head is safe and can always follow its minus-first path,
// and after it drains the next head is safe too, inductively until the VC
// frees up.
func (v *VC) allSafe() bool {
	if v.q.Len() == 0 {
		return false
	}
	for i := 0; i < v.q.Len(); i++ {
		if !v.q.At(i).safe {
			return false
		}
	}
	return true
}

// allSafeOrEmpty reports whether every queued packet (possibly none) is
// safe.
func (v *VC) allSafeOrEmpty() bool {
	for i := 0; i < v.q.Len(); i++ {
		if !v.q.At(i).safe {
			return false
		}
	}
	return true
}

// SafePackets counts the VCs of this input port that constitute a
// progress guarantee for the safe/unsafe flow control: non-empty queues
// consisting entirely of safe packets (Definition 4). A safe packet
// queued with unsafe company is no guarantee — an unsafe head blocks it,
// or its own departure leaves the unsafe remainder holding the buffer.
func (ip *InPort) SafePackets() int {
	n := 0
	for _, vc := range ip.VCs {
		if vc.allSafe() {
			n++
		}
	}
	return n
}

// OutPort is a router output port: the sending end of a link (or the local
// ejection sink when Link is nil). It tracks, per downstream VC, the credit
// count and the current owner for virtual cut-through allocation.
type OutPort struct {
	Router *Router
	Index  int
	Link   *Link // outgoing link; nil for the local ejection port

	// Credits[i] is the known free space (flits) of downstream VC i.
	Credits []int
	// Owner[i] is the input VC currently holding downstream VC i
	// (from VA grant until the tail flit is sent), or nil.
	Owner []*VC

	// EjectBandwidth is the flits/cycle the local sink consumes
	// (only meaningful when Link == nil).
	EjectBandwidth int

	// granted lists input VCs currently holding a VA grant on this
	// output (maintained by tryAllocate / transferOut so that switch
	// allocation scans only live contenders).
	granted []*VC
}

// bandwidth returns the per-cycle flit budget of this output.
func (o *OutPort) bandwidth() int {
	if o.Link != nil {
		return o.Link.Bandwidth
	}
	return o.EjectBandwidth
}

// available reports whether downstream VC vc can accept a whole packet of
// length pktLen right now (virtual cut-through admission).
func (o *OutPort) available(vc, pktLen int) bool {
	return o.Owner[vc] == nil && o.Credits[vc] >= pktLen
}

// AvailableVCs counts downstream VCs that could admit a packet of length
// pktLen (the "a" of Algorithm 5).
func (o *OutPort) AvailableVCs(pktLen int) int {
	n := 0
	for i := range o.Credits {
		if o.available(i, pktLen) {
			n++
		}
	}
	return n
}

// Router is an input-queued virtual-channel router with virtual cut-through
// switching, credit-based flow control, and a 4-stage pipeline
// (routing computation, VC allocation, switch allocation, transmission),
// following the typical VC router microarchitecture the paper assumes.
type Router struct {
	// Node is the global node ID this router implements.
	Node   int
	Fabric *Fabric
	In     []*InPort
	Out    []*OutPort

	// idx is the router's position in Fabric.Routers (the active-set
	// bitmap index).
	idx int
	// vaOffset rotates the VC-allocation scan start for fairness.
	vaOffset int
	// waiting counts VCs in the vcRouting state, letting the engine skip
	// routers with no pending VC allocation.
	waiting int
	// grants counts VCs in the vcActive state (holding a VA grant on one
	// of this router's output ports). A router with waiting == 0 and
	// grants == 0 has every VC idle and can safely be skipped by the
	// cycle engine: vcAllocate and switchAllocate are both no-ops then.
	grants int
}

// busy reports whether the router has any non-idle VC, i.e. whether the
// engine must visit it this cycle.
func (r *Router) busy() bool { return r.waiting > 0 || r.grants > 0 }

// AddInPort appends an input port with the given VC count and per-VC
// capacity and returns it.
func (r *Router) AddInPort(vcs, capFlits int) *InPort {
	ip := &InPort{Router: r, Index: len(r.In)}
	for i := 0; i < vcs; i++ {
		ip.VCs = append(ip.VCs, &VC{Port: ip, Index: i, Cap: capFlits})
	}
	r.In = append(r.In, ip)
	return ip
}

// AddOutPort appends an output port and returns it. Credit counters are
// sized when the link is attached (or set up for ejection).
func (r *Router) AddOutPort() *OutPort {
	op := &OutPort{Router: r, Index: len(r.Out)}
	r.Out = append(r.Out, op)
	return op
}

// receive accepts n flits of packet p into input port ip, VC vc at cycle
// now. Called by Link.deliver and by the injection path.
func (r *Router) receive(port, vc int, p *packet.Packet, n int, now int64) {
	v := r.In[port].VCs[vc]
	v.flits += n
	if v.flits > v.Cap {
		panic(fmt.Sprintf("router %d: input buffer overflow at port %d vc %d (%d > %d)",
			r.Node, port, vc, v.flits, v.Cap))
	}
	// Continuation of the packet currently streaming into this VC?
	if v.q.Len() > 0 {
		last := v.q.At(v.q.Len() - 1)
		if last.p == p && last.received < p.Len {
			last.received += n
			return
		}
	}
	// New packet: mark safety on arrival (Definition 4) and enqueue.
	inst := pktInst{p: p, received: n}
	if rt := r.Fabric.Routing; rt != nil {
		inst.safe = rt.SafeAt(r, port, p)
	}
	v.q.Push(inst)
	if v.q.Len() == 1 {
		v.startHead(now)
	}
}

// Inject places a freshly created packet into the local injection queue
// (input port 0, VC 0). The whole packet is considered present in the
// source queue immediately; injection bandwidth is modeled by the switch
// allocation of the injection port.
func (r *Router) Inject(p *packet.Packet, now int64) {
	r.receive(0, 0, p, p.Len, now)
	r.Fabric.inFlight++
	if t := r.Fabric.Tracer; t != nil {
		t.PacketInjected(p, r.Node, now)
	}
}

// startHead begins the pipeline for the packet now at the head of VC v:
// the routing-computation stage takes one cycle, VC allocation becomes
// eligible the cycle after that.
func (v *VC) startHead(now int64) {
	v.state = vcRouting
	v.readyAt = now + 2 // RC at now+1, VA eligible from now+2
	v.outPort = nil
	r := v.Port.Router
	r.waiting++
	r.Fabric.wakeRouter(r)
}

// vcAllocate runs the VC-allocation stage for every waiting head packet of
// this router. Candidates come from the routing algorithm; admission is
// virtual cut-through (whole-packet credit) plus, when enabled, the
// safe/unsafe flow-control policy of Algorithm 5.
func (r *Router) vcAllocate(now int64) {
	nIn := len(r.In)
	if nIn == 0 || r.waiting == 0 {
		return
	}
	start := r.vaOffset % nIn
	r.vaOffset++
	for k := 0; k < nIn; k++ {
		ip := r.In[(start+k)%nIn]
		for _, v := range ip.VCs {
			if v.state != vcRouting || now < v.readyAt {
				continue
			}
			h := v.head()
			if h == nil {
				continue
			}
			r.tryAllocate(v, h, now)
		}
	}
}

// tryAllocate attempts VC allocation for head packet h of input VC v.
func (r *Router) tryAllocate(v *VC, h *pktInst, now int64) {
	f := r.Fabric
	cands := f.Routing.Candidates(r, v.Port.Index, h.p, v.scratch[:0])
	v.scratch = cands // keep grown buffer
	if len(cands) == 0 {
		panic(fmt.Sprintf("router %d: no route for packet %d (src %d dst %d) at port %d",
			r.Node, h.p.ID, h.p.Src, h.p.Dst, v.Port.Index))
	}
	for _, c := range cands {
		o := r.Out[c.Port]
		// Cross-chiplet VC allocation consumes extra cycles (§VI-A).
		if o.Link != nil && o.Link.OffChip && now < v.readyAt+int64(f.OffChipVAExtra) {
			continue
		}
		for vcIdx := 0; vcIdx < len(o.Credits); vcIdx++ {
			if c.VCMask&(1<<uint(vcIdx)) == 0 {
				continue
			}
			if !o.available(vcIdx, h.p.Len) {
				continue
			}
			if f.SafeUnsafe && o.Link != nil && !r.safeUnsafeAllows(o, vcIdx, h.p) {
				continue
			}
			// Grant.
			o.Owner[vcIdx] = v
			o.granted = append(o.granted, v)
			v.outPort = o
			v.outVC = vcIdx
			v.state = vcActive
			v.grantedAt = now
			v.readyAt = now + 1 // switch allocation from the next cycle
			r.waiting--
			r.grants++
			return
		}
	}
}

// safeUnsafeAllows implements Algorithm 5 (VC_Allocation(a, s)) for
// admitting packet p into downstream VC vcIdx of output o, generalized to
// buffers that hold more than one packet: after the placement, the
// downstream input port must retain either a whole-packet-available VC or
// a VC whose entire queue is safe (the inductive progress guarantee).
// The paper's three cases follow: a >= 2 always leaves a free VC;
// a == 1 requires another all-safe VC (s >= 1) or that the target VC
// stays all-safe with p appended (p safe at the next router).
func (r *Router) safeUnsafeAllows(o *OutPort, vcIdx int, p *packet.Packet) bool {
	if o.AvailableVCs(p.Len) >= 2 {
		return true
	}
	dst := o.Link.Dst
	ip := dst.In[o.Link.DstPort]
	for i, vc := range ip.VCs {
		if i != vcIdx && vc.allSafe() {
			return true
		}
	}
	// The target VC must remain an all-safe queue after p joins it.
	if !ip.VCs[vcIdx].allSafeOrEmpty() {
		return false
	}
	return r.Fabric.Routing.SafeAt(dst, o.Link.DstPort, p)
}

// switchAllocate runs switch allocation and transmission for every output
// port: among the input VCs granted to this output, the one with the oldest
// grant wins (first-come-first-serve, matching the paper's preemptively
// scheduled crossbar), and moves up to the port bandwidth in flits.
// It reports whether any flit moved.
func (r *Router) switchAllocate(now int64) bool {
	moved := false
	for _, o := range r.Out {
		if r.transferOut(o, now) {
			moved = true
		}
	}
	return moved
}

// transferOut performs SA+ST for one output port.
func (r *Router) transferOut(o *OutPort, now int64) bool {
	// Find the FCFS winner among input VCs holding a grant on this output.
	var win *VC
	for _, v := range o.granted {
		if now < v.readyAt {
			continue
		}
		h := v.head()
		if h == nil || h.received == h.sent {
			continue // nothing buffered to send this cycle
		}
		if o.Link != nil && o.Credits[v.outVC] <= 0 {
			continue // downstream buffer full
		}
		if win == nil || v.grantedAt < win.grantedAt ||
			(v.grantedAt == win.grantedAt &&
				(v.Port.Index < win.Port.Index ||
					(v.Port.Index == win.Port.Index && v.Index < win.Index))) {
			win = v
		}
	}
	if win == nil {
		return false
	}
	h := win.head()
	n := h.received - h.sent
	if bw := o.bandwidth(); n > bw {
		n = bw
	}
	if o.Link != nil && n > o.Credits[win.outVC] {
		n = o.Credits[win.outVC]
	}
	if n <= 0 {
		return false
	}

	first := h.sent == 0
	h.sent += n
	win.flits -= n

	if first {
		if h.p.InjectedAt == 0 && win.Port.Link == nil && win.Port.Index == 0 {
			h.p.InjectedAt = now
		}
		if o.Link != nil {
			h.p.RouterHops++
			if o.Link.OffChip {
				h.p.OffChipHops++
			} else {
				h.p.OnChipHops++
			}
		}
	}

	if t := r.Fabric.Tracer; t != nil {
		to := -1
		if o.Link != nil {
			to = o.Link.Dst.Node
		}
		t.FlitsMoved(h.p, r.Node, to, win.outVC, n, first, now)
	}

	if o.Link != nil {
		o.Credits[win.outVC] -= n
		o.Link.push(h.p, n, win.outVC, now)
	} else if h.sent == h.p.Len {
		// Ejection: the tail flit has been consumed at the destination.
		h.p.DeliveredAt = now
		if t := r.Fabric.Tracer; t != nil {
			t.PacketDelivered(h.p, now)
		}
		r.Fabric.deliverFrom(r, h.p, now)
	}

	// Return credits to our upstream for the space we just freed.
	if win.Port.Link != nil {
		win.Port.Link.returnCredit(win.Index, n, now)
	}

	if h.sent == h.p.Len {
		// Tail sent: release the downstream VC and advance the queue.
		o.Owner[win.outVC] = nil
		for i, v := range o.granted {
			if v == win {
				o.granted[i] = o.granted[len(o.granted)-1]
				o.granted = o.granted[:len(o.granted)-1]
				break
			}
		}
		r.grants--
		win.q.Pop()
		win.outPort = nil
		if win.q.Len() > 0 {
			win.startHead(now)
		} else {
			win.state = vcIdle
		}
	}
	return true
}

// BufferedFlits returns the total flit occupancy of all input buffers.
func (r *Router) BufferedFlits() int {
	n := 0
	for _, ip := range r.In {
		for _, v := range ip.VCs {
			n += v.flits
		}
	}
	return n
}
