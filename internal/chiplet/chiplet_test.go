package chiplet

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsTooSmall(t *testing.T) {
	for _, wh := range [][2]int{{2, 4}, {4, 2}, {1, 1}, {0, 5}} {
		if _, err := New(wh[0], wh[1]); err == nil {
			t.Errorf("New(%d,%d) accepted a coreless chiplet", wh[0], wh[1])
		}
	}
	if _, err := New(3, 3); err != nil {
		t.Errorf("New(3,3): %v", err)
	}
}

func TestCountsPaperExamples(t *testing.T) {
	// Fig. 3: a 6x6 chiplet has 20 edge nodes and 16 cores.
	g := MustNew(6, 6)
	if g.RingLen() != 20 {
		t.Errorf("6x6 ring length = %d, want 20", g.RingLen())
	}
	if g.CoreCount() != 16 {
		t.Errorf("6x6 cores = %d, want 16", g.CoreCount())
	}
	// The evaluation's 4x4 chiplet: 12 interfaces, 4 cores.
	g4 := MustNew(4, 4)
	if g4.RingLen() != 12 || g4.CoreCount() != 4 {
		t.Errorf("4x4 = (%d IF, %d core), want (12, 4)", g4.RingLen(), g4.CoreCount())
	}
}

func TestRingIsBoundaryWalk(t *testing.T) {
	g := MustNew(5, 4)
	ring := g.Ring()
	if len(ring) != g.RingLen() {
		t.Fatalf("ring length %d != %d", len(ring), g.RingLen())
	}
	if ring[0] != (XY{0, 0}) {
		t.Errorf("ring starts at %v, want (0,0)", ring[0])
	}
	seen := map[XY]bool{}
	for i, p := range ring {
		if !g.IsEdge(p.X, p.Y) {
			t.Errorf("ring[%d] = %v is not an edge node", i, p)
		}
		if seen[p] {
			t.Errorf("ring visits %v twice", p)
		}
		seen[p] = true
		// Consecutive ring nodes are mesh neighbors.
		q := ring[(i+1)%len(ring)]
		if dx, dy := abs(p.X-q.X), abs(p.Y-q.Y); dx+dy != 1 {
			t.Errorf("ring[%d]=%v and ring[%d]=%v are not adjacent", i, p, (i+1)%len(ring), q)
		}
	}
}

func TestRingPosInvertsRing(t *testing.T) {
	f := func(wRaw, hRaw uint8) bool {
		w, h := int(wRaw%8)+3, int(hRaw%8)+3
		g := MustNew(w, h)
		for i, p := range g.Ring() {
			if g.RingPos(p.X, p.Y) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabels(t *testing.T) {
	g := MustNew(6, 6)
	// Core labels are the traditional 2D-mesh labels.
	if got := g.Label(2, 3); got != 2+3*6 {
		t.Errorf("core label (2,3) = %d, want %d", got, 2+3*6)
	}
	// Edge labels form the negative ring: (0,0) is -1 and (0,1) is -P.
	if got := g.Label(0, 0); got != -1 {
		t.Errorf("label (0,0) = %d, want -1", got)
	}
	if got := g.Label(0, 1); got != -g.RingLen() {
		t.Errorf("label (0,1) = %d, want %d", got, -g.RingLen())
	}
}

func TestLabelSignClassifies(t *testing.T) {
	f := func(wRaw, hRaw uint8) bool {
		w, h := int(wRaw%6)+3, int(hRaw%6)+3
		g := MustNew(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if (g.Label(x, y) < 0) != g.IsEdge(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingLabelsDecreaseAlongWalk(t *testing.T) {
	g := MustNew(7, 5)
	ring := g.Ring()
	for i := 0; i < len(ring)-1; i++ {
		a := g.Label(ring[i].X, ring[i].Y)
		b := g.Label(ring[i+1].X, ring[i+1].Y)
		if b != a-1 {
			t.Fatalf("label step %d -> %d at ring pos %d (want -1 decrement)", a, b, i)
		}
	}
}

func TestCores(t *testing.T) {
	g := MustNew(4, 5)
	cores := g.Cores()
	if len(cores) != g.CoreCount() {
		t.Fatalf("cores %d != %d", len(cores), g.CoreCount())
	}
	for _, c := range cores {
		if g.IsEdge(c.X, c.Y) {
			t.Errorf("core %v is an edge node", c)
		}
	}
}

func TestGroupPaperExamples(t *testing.T) {
	// Fig. 3c: a 6x6 ring (20 nodes) groups into radix-4 (5 each) and
	// radix-10 (2 each).
	gr, err := Group(20, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		if gr.Size[g] != 5 {
			t.Errorf("radix-4 group %d size %d, want 5", g, gr.Size[g])
		}
	}
	gr, err = Group(20, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 10; g++ {
		if gr.Size[g] != 2 {
			t.Errorf("radix-10 group %d size %d, want 2", g, gr.Size[g])
		}
	}
}

func TestGroupPairEqual(t *testing.T) {
	// The 256-chiplet 4D-mesh case: 12 interfaces into 8 groups.
	gr, err := Group(12, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < 4; p++ {
		if gr.Size[2*p] != gr.Size[2*p+1] {
			t.Errorf("pair %d sizes %d != %d", p, gr.Size[2*p], gr.Size[2*p+1])
		}
		total += gr.Size[2*p] + gr.Size[2*p+1]
	}
	if total != 12 {
		t.Errorf("grouped %d of 12 nodes", total)
	}
	if gr.Size[0] < 2 {
		t.Errorf("group 0 size %d; must keep a member above ring position 0", gr.Size[0])
	}
}

func TestGroupProperties(t *testing.T) {
	f := func(ringRaw, nRaw uint8, pair bool) bool {
		ring := int(ringRaw%40) + 8
		n := int(nRaw%10) + 1
		if pair {
			n *= 2
		}
		gr, err := Group(ring, n, pair)
		if err != nil {
			return true // rejections are allowed; acceptance must be sound
		}
		pos := 0
		for g := 0; g < gr.Groups(); g++ {
			if gr.Start[g] != pos || gr.Size[g] < 1 {
				return false
			}
			pos += gr.Size[g]
		}
		if pos > ring {
			return false
		}
		// GroupOf must invert the ranges.
		for p := 0; p < ring; p++ {
			g := gr.GroupOf(p)
			if p < pos {
				if g < 0 || p < gr.Start[g] || p >= gr.Start[g]+gr.Size[g] {
					return false
				}
			} else if g != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGroupRejectsDegenerate(t *testing.T) {
	if _, err := Group(12, 12, false); err == nil {
		t.Error("one group per node accepted; group 0 would be core-unreachable")
	}
	if _, err := Group(13, 12, true); err == nil {
		t.Error("pair-equal grouping that strands group 0 at position 0 accepted")
	}
	if _, err := Group(10, 3, true); err == nil {
		t.Error("odd group count accepted with pairEqual")
	}
	if _, err := Group(10, 0, false); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := Group(4, 8, false); err == nil {
		t.Error("more groups than ring nodes accepted")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
