// Package chiplet models the geometry of a single 2D-mesh-NoC-based chiplet:
// the classification of routers into core (internal) and interface (edge)
// nodes, the negative label ring along the edge, and the software-defined
// grouping of edge nodes into abstract interfaces (paper §III-A, §III-B).
//
// The package is pure geometry — it knows nothing about routers or links —
// so its invariants are easy to property-test.
package chiplet

import "fmt"

// XY is a node position within the chiplet mesh.
type XY struct{ X, Y int }

// Geometry describes a W×H 2D-mesh chiplet.
//
// Node classification (Definition 2): nodes on the mesh boundary are
// interface (IF) nodes; strictly interior nodes are cores.
//
// Labeling (§III-A, Fig. 3b): cores carry the traditional 2D-mesh label
// x + y*W, so X-/Y- mesh channels are minus channels. Interface nodes form
// a negative label ring: walking the boundary from (0,0) along the bottom
// row, up the right column, back along the top row and down the left
// column, ring position i carries label -(i+1). Along that walk the label
// decreases, so boundary channels in the walk direction are minus channels
// and the wrap from -(P) back to -1 is the single plus channel of the ring
// (turn ⑤ in Fig. 7).
type Geometry struct {
	W, H int
}

// New returns the geometry of a W×H chiplet. Both dimensions must be at
// least 3 so that the chiplet has at least one core node.
func New(w, h int) (Geometry, error) {
	if w < 3 || h < 3 {
		return Geometry{}, fmt.Errorf("chiplet: %dx%d mesh has no interior core nodes (need >= 3x3)", w, h)
	}
	return Geometry{W: w, H: h}, nil
}

// MustNew is New for statically-known-good sizes; it panics on error.
func MustNew(w, h int) Geometry {
	g, err := New(w, h)
	if err != nil {
		panic(err)
	}
	return g
}

// Nodes returns the node count W*H.
func (g Geometry) Nodes() int { return g.W * g.H }

// Index returns the local node index of (x, y).
func (g Geometry) Index(x, y int) int { return y*g.W + x }

// Coord returns the (x, y) of a local node index.
func (g Geometry) Coord(i int) (x, y int) { return i % g.W, i / g.W }

// IsEdge reports whether (x, y) is an interface (edge) node.
func (g Geometry) IsEdge(x, y int) bool {
	return x == 0 || y == 0 || x == g.W-1 || y == g.H-1
}

// RingLen returns the number of interface nodes, 2(W+H)-4.
func (g Geometry) RingLen() int { return 2*(g.W+g.H) - 4 }

// CoreCount returns the number of core nodes, (W-2)(H-2).
func (g Geometry) CoreCount() int { return (g.W - 2) * (g.H - 2) }

// Ring returns the interface nodes in ring order: position 0 is (0,0), then
// along the bottom row, up the right column, back along the top row, and
// down the left column ending at (0,1).
func (g Geometry) Ring() []XY {
	ring := make([]XY, 0, g.RingLen())
	for x := 0; x < g.W; x++ { // bottom row, left to right
		ring = append(ring, XY{x, 0})
	}
	for y := 1; y < g.H; y++ { // right column, bottom to top
		ring = append(ring, XY{g.W - 1, y})
	}
	for x := g.W - 2; x >= 0; x-- { // top row, right to left
		ring = append(ring, XY{x, g.H - 1})
	}
	for y := g.H - 2; y >= 1; y-- { // left column, top to bottom
		ring = append(ring, XY{0, y})
	}
	return ring
}

// RingPos returns the ring position of (x, y), or -1 for core nodes.
func (g Geometry) RingPos(x, y int) int {
	switch {
	case !g.IsEdge(x, y):
		return -1
	case y == 0:
		return x
	case x == g.W-1:
		return g.W - 1 + y
	case y == g.H-1:
		return g.W - 1 + g.H - 1 + (g.W - 1 - x)
	default: // x == 0, 1 <= y <= H-2
		return 2*(g.W-1) + g.H - 1 + (g.H - 1 - y)
	}
}

// Label returns the routing label of (x, y): x + y*W for cores,
// -(ringPos+1) for interface nodes.
func (g Geometry) Label(x, y int) int {
	if p := g.RingPos(x, y); p >= 0 {
		return -(p + 1)
	}
	return x + y*g.W
}

// Cores returns the positions of all core nodes in row-major order.
func (g Geometry) Cores() []XY {
	cores := make([]XY, 0, g.CoreCount())
	for y := 1; y < g.H-1; y++ {
		for x := 1; x < g.W-1; x++ {
			cores = append(cores, XY{x, y})
		}
	}
	return cores
}

// Grouping is a software-defined clustering of the interface ring into
// contiguous groups (abstract interfaces, §III-B). Group g covers ring
// positions [Start[g], Start[g]+Size[g]). Ring positions beyond the last
// group (when the ring does not divide evenly) stay ungrouped and carry no
// chiplet-to-chiplet interface.
type Grouping struct {
	Start []int
	Size  []int
}

// Groups returns len(Start).
func (gr Grouping) Groups() int { return len(gr.Start) }

// GroupOf returns the group index of ring position pos, or -1 if ungrouped.
func (gr Grouping) GroupOf(pos int) int {
	for g := range gr.Start {
		if pos >= gr.Start[g] && pos < gr.Start[g]+gr.Size[g] {
			return g
		}
	}
	return -1
}

// Group clusters a ring of ringLen interface nodes into n contiguous groups
// of near-equal size (earlier groups get the remainder). If pairEqual is
// true, groups 2k and 2k+1 are forced to equal sizes — required by nD-mesh
// interconnection where group 2k (d_k-) and group 2k+1 (d_k+) must carry
// the same number of physical links; any odd leftover node stays ungrouped.
func Group(ringLen, n int, pairEqual bool) (Grouping, error) {
	if n < 1 || n > ringLen {
		return Grouping{}, fmt.Errorf("chiplet: cannot form %d groups from %d interface nodes", n, ringLen)
	}
	sizes := make([]int, n)
	if pairEqual {
		if n%2 != 0 {
			return Grouping{}, fmt.Errorf("chiplet: pair-equal grouping needs an even group count, got %d", n)
		}
		pairs := n / 2
		per := ringLen / n
		extraPairs := (ringLen - per*n) / 2
		for p := 0; p < pairs; p++ {
			s := per
			if p < extraPairs {
				s++
			}
			sizes[2*p], sizes[2*p+1] = s, s
		}
	} else {
		per := ringLen / n
		extra := ringLen - per*n
		for g := 0; g < n; g++ {
			sizes[g] = per
			if g < extra {
				sizes[g]++
			}
		}
	}
	gr := Grouping{Start: make([]int, n), Size: sizes}
	pos := 0
	for g := 0; g < n; g++ {
		if sizes[g] == 0 {
			return Grouping{}, fmt.Errorf("chiplet: grouping %d nodes into %d groups leaves group %d empty", ringLen, n, g)
		}
		gr.Start[g] = pos
		pos += sizes[g]
	}
	// A single-node group at ring position 0 cannot be exited by a
	// minus-only path from any core (cores reach the ring at positions
	// >= 1 first); reject such degenerate groupings early.
	if gr.Size[0] == 1 && n > 1 && ringLen > n {
		// Only possible when remainders skipped group 0 — cannot happen
		// with the assignment above, but keep the invariant explicit.
		return Grouping{}, fmt.Errorf("chiplet: grouping places a single-interface group at ring position 0")
	}
	if ringLen == n && n > 1 {
		return Grouping{}, fmt.Errorf("chiplet: one group per interface node leaves group 0 unreachable by minus-only paths; use fewer groups")
	}
	return gr, nil
}
