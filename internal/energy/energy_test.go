package energy

import (
	"math"
	"testing"
)

func TestDefaultCoefficients(t *testing.T) {
	m := Default()
	if m.RouterPJPerBit != 0.98 || m.OnChipLinkPJPerBit != 0.63 || m.OffChipLinkPJPerBit != 2.40 {
		t.Errorf("coefficients %v do not match the paper's §VII-A values", m)
	}
}

func TestPerBit(t *testing.T) {
	m := Default()
	// A message crossing 3 routers, 1 on-chip link, 1 off-chip link.
	got := m.PerBit(3, 1, 1)
	want := 3*0.98 + 0.63 + 2.40
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PerBit = %g, want %g", got, want)
	}
}

func TestPacketEnergyScalesWithBits(t *testing.T) {
	m := Default()
	e1 := m.PacketEnergy(1024, 5, 3, 1)
	e2 := m.PacketEnergy(2048, 5, 3, 1)
	if math.Abs(e2-2*e1) > 1e-9 {
		t.Errorf("energy not linear in bits: %g vs %g", e1, e2)
	}
}

func TestOffChipDominates(t *testing.T) {
	m := Default()
	// One off-chip link costs more than an on-chip link plus router —
	// the premise behind the paper's energy savings at scale.
	if m.OffChipLinkPJPerBit <= m.OnChipLinkPJPerBit+m.RouterPJPerBit {
		t.Skip("model premise changed")
	}
	fewHops := m.PerBit(7, 4, 2)    // hypercube-like
	manyHops := m.PerBit(23, 16, 6) // 2D-mesh-like
	if fewHops >= manyHops {
		t.Errorf("short high-radix path (%g) should beat long flat path (%g)", fewHops, manyHops)
	}
}
