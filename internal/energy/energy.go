// Package energy estimates message delivery energy following the paper's
// §VII-A model (130 nm coefficients): 0.98 pJ/bit per router traversed and
// 0.63 pJ/bit per on-chip link (2 mm wires, after Wolkotte et al.), plus
// 2.4 pJ/bit per off-chip (chiplet-to-chiplet) link.
package energy

// Model holds the per-component energy coefficients in pJ/bit.
type Model struct {
	RouterPJPerBit      float64
	OnChipLinkPJPerBit  float64
	OffChipLinkPJPerBit float64
}

// Default returns the paper's 130 nm coefficients.
func Default() Model {
	return Model{
		RouterPJPerBit:      0.98,
		OnChipLinkPJPerBit:  0.63,
		OffChipLinkPJPerBit: 2.40,
	}
}

// PerBit returns the average transport energy in pJ/bit for a message that
// traverses the given average numbers of routers, on-chip links and
// off-chip links.
func (m Model) PerBit(routers, onChipLinks, offChipLinks float64) float64 {
	return routers*m.RouterPJPerBit +
		onChipLinks*m.OnChipLinkPJPerBit +
		offChipLinks*m.OffChipLinkPJPerBit
}

// PacketEnergy returns the total energy in pJ to deliver a packet of the
// given size along a concrete path.
func (m Model) PacketEnergy(bits int, routers, onChipLinks, offChipLinks int) float64 {
	return float64(bits) * m.PerBit(float64(routers), float64(onChipLinks), float64(offChipLinks))
}
