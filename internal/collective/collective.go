// Package collective runs collective-communication operations on a built
// multi-chiplet system and measures their completion time. The paper's
// background (§II-B) motivates interconnect design by collective traffic
// ("all collective communication operations are also completed via the
// network"); this package makes that workload concrete: all-reduce (ring
// and recursive-doubling), all-gather and all-to-all, expressed as
// dependency graphs of messages and driven by the cycle engine.
package collective

import (
	"fmt"

	"chipletnet/internal/interleave"
	"chipletnet/internal/packet"
	"chipletnet/internal/topology"
)

// Send is one message of a collective schedule: Src and Dst are
// participant indices; the send may start only after every send listed in
// Deps has been fully delivered (and all Deps must target Src).
type Send struct {
	ID       int
	Src, Dst int
	Flits    int
	Deps     []int
}

// Algorithm produces the message schedule of a collective over n
// participants.
type Algorithm interface {
	Name() string
	// Schedule returns the sends; IDs must be dense [0, len).
	Schedule(n int) ([]Send, error)
}

// Result summarizes one collective execution.
type Result struct {
	Algorithm string
	// CompletionCycles is the cycle at which the last message was
	// delivered, counted from the start of the operation.
	CompletionCycles int64
	// Messages and TotalFlits describe the schedule volume.
	Messages   int
	TotalFlits int64
	// BusBandwidth is the classic collective figure of merit:
	// total flits moved / completion time / participants.
	BusBandwidth float64
}

// maxIdleCycles bounds how long the driver waits without any delivery
// before declaring the schedule stuck.
const maxIdleCycles = 200000

// Run executes the collective on the system and returns its timing. The
// system must be freshly built (no prior simulation). Participants are the
// system's core nodes. Each message is segmented into packets of pktFlits
// with interleave tags from pol.
func Run(sys *topology.System, alg Algorithm, pktFlits int, pol interleave.Policy) (Result, error) {
	parts := sys.Cores
	n := len(parts)
	if n < 2 {
		return Result{}, fmt.Errorf("collective: need at least 2 participants")
	}
	sends, err := alg.Schedule(n)
	if err != nil {
		return Result{}, err
	}
	if err := validate(sends, n); err != nil {
		return Result{}, fmt.Errorf("collective: %s: %w", alg.Name(), err)
	}

	// Dependency bookkeeping.
	pending := make([]int, len(sends)) // unmet dep count
	waiters := make([][]int, len(sends))
	var total int64
	for i, s := range sends {
		pending[i] = len(s.Deps)
		for _, d := range s.Deps {
			waiters[d] = append(waiters[d], s.ID)
		}
		total += int64(s.Flits)
	}

	f := sys.Fabric
	// packet id -> send, plus remaining packet count per send.
	pktSend := map[uint64]int{}
	remaining := make([]int, len(sends))
	delivered := 0
	var lastDelivery int64
	var ready []int

	var nextPktID uint64
	launch := func(sendID int, now int64) {
		s := &sends[sendID]
		packets := (s.Flits + pktFlits - 1) / pktFlits
		remaining[sendID] = packets
		left := s.Flits
		for seq := 0; seq < packets; seq++ {
			l := pktFlits
			if l > left {
				l = left
			}
			left -= l
			p := &packet.Packet{
				ID:        nextPktID,
				MsgID:     uint64(sendID),
				SeqInMsg:  seq,
				Src:       parts[s.Src],
				Dst:       parts[s.Dst],
				Tag:       pol.Tag(uint64(sendID), seq),
				Len:       l,
				CreatedAt: now,
			}
			pktSend[nextPktID] = sendID
			nextPktID++
			f.Routers[parts[s.Src]].Inject(p, now)
		}
	}

	f.Sink = func(p *packet.Packet, now int64) {
		sendID, ok := pktSend[p.ID]
		if !ok {
			return
		}
		delete(pktSend, p.ID)
		remaining[sendID]--
		if remaining[sendID] > 0 {
			return
		}
		// Send fully delivered: release its waiters.
		delivered++
		lastDelivery = now
		for _, w := range waiters[sendID] {
			pending[w]--
			if pending[w] == 0 {
				ready = append(ready, w)
			}
		}
	}

	// Initial wave.
	for i := range sends {
		if pending[i] == 0 {
			ready = append(ready, i)
		}
	}
	if len(ready) == 0 {
		return Result{}, fmt.Errorf("collective: %s: schedule has no startable sends", alg.Name())
	}

	idleSince := int64(0)
	for delivered < len(sends) {
		now := f.Now + 1
		batch := ready
		ready = nil
		for _, id := range batch {
			launch(id, now)
		}
		f.Step()
		if f.Deadlocked {
			return Result{}, fmt.Errorf("collective: %s: network deadlock", alg.Name())
		}
		if lastDelivery > idleSince {
			idleSince = lastDelivery
		}
		if f.Now-idleSince > maxIdleCycles {
			return Result{}, fmt.Errorf("collective: %s: stalled (%d of %d messages delivered)", alg.Name(), delivered, len(sends))
		}
	}

	res := Result{
		Algorithm:        alg.Name(),
		CompletionCycles: lastDelivery,
		Messages:         len(sends),
		TotalFlits:       total,
	}
	if lastDelivery > 0 {
		res.BusBandwidth = float64(total) / float64(lastDelivery) / float64(n)
	}
	return res, nil
}

func validate(sends []Send, n int) error {
	for i, s := range sends {
		if s.ID != i {
			return fmt.Errorf("send %d has id %d (must be dense)", i, s.ID)
		}
		if s.Src < 0 || s.Src >= n || s.Dst < 0 || s.Dst >= n || s.Src == s.Dst {
			return fmt.Errorf("send %d has bad endpoints %d->%d", i, s.Src, s.Dst)
		}
		if s.Flits < 1 {
			return fmt.Errorf("send %d has no payload", i)
		}
		for _, d := range s.Deps {
			if d < 0 || d >= len(sends) {
				return fmt.Errorf("send %d depends on unknown send %d", i, d)
			}
			if sends[d].Dst != s.Src {
				return fmt.Errorf("send %d depends on send %d which is not delivered to node %d", i, d, s.Src)
			}
		}
	}
	return nil
}
