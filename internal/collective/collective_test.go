package collective

import (
	"testing"

	"chipletnet/internal/chiplet"
	"chipletnet/internal/interleave"
	"chipletnet/internal/routing"
	"chipletnet/internal/topology"
)

func buildSys(t *testing.T, kind string) *topology.System {
	t.Helper()
	lp := topology.LinkParams{
		VCs: 2, InternalBufFlits: 32, InterfaceBufFlits: 64,
		OnChipBW: 4, OffChipBW: 2, OnChipLatency: 1, OffChipLatency: 5,
		EjectBW: 4,
	}
	geo := chiplet.MustNew(4, 4)
	var sys *topology.System
	var err error
	switch kind {
	case "hypercube":
		sys, err = topology.BuildHypercube(geo, 3, lp)
	case "flat":
		sys, err = topology.BuildFlatMesh(geo, 4, 2, lp)
	}
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.New(sys, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Fabric.Routing = rt
	return sys
}

func TestSchedulesValidate(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		algs := []Algorithm{
			RecursiveDoublingAllReduce{VectorFlits: 64},
			RingAllReduce{VectorFlits: 64},
			AllGatherRing{BlockFlits: 16},
			AllToAll{BlockFlits: 8},
		}
		for _, a := range algs {
			sends, err := a.Schedule(n)
			if err != nil {
				t.Fatalf("%s(n=%d): %v", a.Name(), n, err)
			}
			if err := validate(sends, n); err != nil {
				t.Errorf("%s(n=%d): %v", a.Name(), n, err)
			}
		}
	}
}

func TestScheduleShapes(t *testing.T) {
	n := 8
	sends, _ := RecursiveDoublingAllReduce{VectorFlits: 32}.Schedule(n)
	if len(sends) != 3*n { // log2(8) rounds
		t.Errorf("recursive doubling: %d sends, want %d", len(sends), 3*n)
	}
	sends, _ = RingAllReduce{VectorFlits: 32}.Schedule(n)
	if len(sends) != 2*(n-1)*n {
		t.Errorf("ring: %d sends, want %d", len(sends), 2*(n-1)*n)
	}
	sends, _ = AllToAll{BlockFlits: 8}.Schedule(n)
	if len(sends) != n*(n-1) {
		t.Errorf("alltoall: %d sends, want %d", len(sends), n*(n-1))
	}
	if _, err := (RecursiveDoublingAllReduce{VectorFlits: 32}).Schedule(6); err == nil {
		t.Error("recursive doubling accepted non-power-of-two")
	}
	if _, err := (RingAllReduce{}).Schedule(4); err == nil {
		t.Error("zero vector accepted")
	}
}

func TestRunCollectivesOnHypercube(t *testing.T) {
	for _, alg := range []Algorithm{
		RecursiveDoublingAllReduce{VectorFlits: 128},
		RingAllReduce{VectorFlits: 128},
		AllGatherRing{BlockFlits: 32},
		AllToAll{BlockFlits: 32},
	} {
		sys := buildSys(t, "hypercube")
		res, err := Run(sys, alg, 32, interleave.Policy{G: interleave.Message})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.CompletionCycles <= 0 {
			t.Errorf("%s: completion %d", alg.Name(), res.CompletionCycles)
		}
		if res.BusBandwidth <= 0 {
			t.Errorf("%s: bandwidth %g", alg.Name(), res.BusBandwidth)
		}
		t.Logf("%-32s %6d cycles, %4d msgs, %.3f flits/cycle/node",
			alg.Name(), res.CompletionCycles, res.Messages, res.BusBandwidth)
	}
}

func TestDependenciesSerializeRounds(t *testing.T) {
	// With a vector so large that one round takes many cycles, recursive
	// doubling must take at least k times one round's duration.
	sysOne := buildSys(t, "hypercube")
	one, err := Run(sysOne, AllToAll{BlockFlits: 256}, 32, interleave.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	sysRD := buildSys(t, "hypercube")
	rd, err := Run(sysRD, RecursiveDoublingAllReduce{VectorFlits: 256}, 32, interleave.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	// 32 participants? n = 8 chiplets * 4 cores = 32 -> 5 rounds.
	if rd.CompletionCycles < 5*60 { // each 256-flit round >= ~60 cycles
		t.Errorf("recursive doubling finished implausibly fast: %d cycles", rd.CompletionCycles)
	}
	_ = one
}

func TestRunRejectsBadSchedules(t *testing.T) {
	sys := buildSys(t, "hypercube")
	bad := scheduleFunc{name: "bad", sends: []Send{{ID: 0, Src: 0, Dst: 0, Flits: 1}}}
	if _, err := Run(sys, bad, 32, interleave.Policy{}); err == nil {
		t.Error("self-send accepted")
	}
	sys2 := buildSys(t, "hypercube")
	circ := scheduleFunc{name: "circular", sends: []Send{
		{ID: 0, Src: 0, Dst: 1, Flits: 1, Deps: []int{1}},
		{ID: 1, Src: 1, Dst: 0, Flits: 1, Deps: []int{0}},
	}}
	if _, err := Run(sys2, circ, 32, interleave.Policy{}); err == nil {
		t.Error("circular dependency accepted")
	}
}

type scheduleFunc struct {
	name  string
	sends []Send
}

func (s scheduleFunc) Name() string                   { return s.name }
func (s scheduleFunc) Schedule(n int) ([]Send, error) { return s.sends, nil }
