package collective

import (
	"fmt"
	"math/bits"
)

// RecursiveDoublingAllReduce is the log2(n)-round all-reduce: in round r,
// node i exchanges its full vector with node i XOR 2^r and combines.
// On a hypercube of chiplets each round maps exactly onto one hypercube
// dimension, which is why this pairing favors the paper's topology.
type RecursiveDoublingAllReduce struct {
	// VectorFlits is the reduced vector size per node, in flits.
	VectorFlits int
}

func (a RecursiveDoublingAllReduce) Name() string { return "allreduce-recursive-doubling" }

func (a RecursiveDoublingAllReduce) Schedule(n int) ([]Send, error) {
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("recursive doubling needs a power-of-two participant count, got %d", n)
	}
	if a.VectorFlits < 1 {
		return nil, fmt.Errorf("vector must be at least one flit")
	}
	k := bits.Len(uint(n)) - 1
	var sends []Send
	for r := 0; r < k; r++ {
		for i := 0; i < n; i++ {
			s := Send{
				ID:    r*n + i,
				Src:   i,
				Dst:   i ^ (1 << uint(r)),
				Flits: a.VectorFlits,
			}
			if r > 0 {
				// i proceeds once it has the partner's previous-round
				// contribution.
				prevPartner := i ^ (1 << uint(r-1))
				s.Deps = []int{(r-1)*n + prevPartner}
			}
			sends = append(sends, s)
		}
	}
	return sends, nil
}

// RingAllReduce is the bandwidth-optimal 2(n-1)-step ring all-reduce:
// the vector is cut into n chunks; each step every node forwards one chunk
// to its ring successor (n-1 reduce-scatter steps, then n-1 all-gather
// steps).
type RingAllReduce struct {
	VectorFlits int
}

func (a RingAllReduce) Name() string { return "allreduce-ring" }

func (a RingAllReduce) Schedule(n int) ([]Send, error) {
	if a.VectorFlits < 1 {
		return nil, fmt.Errorf("vector must be at least one flit")
	}
	chunk := a.VectorFlits / n
	if chunk < 1 {
		chunk = 1
	}
	steps := 2 * (n - 1)
	var sends []Send
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			snd := Send{
				ID:    s*n + i,
				Src:   i,
				Dst:   (i + 1) % n,
				Flits: chunk,
			}
			if s > 0 {
				// i forwards the chunk it received from its predecessor
				// in the previous step.
				pred := (i - 1 + n) % n
				snd.Deps = []int{(s-1)*n + pred}
			}
			sends = append(sends, snd)
		}
	}
	return sends, nil
}

// AllGatherRing is the (n-1)-step ring all-gather: every node circulates
// its block around the ring.
type AllGatherRing struct {
	// BlockFlits is each node's contribution size.
	BlockFlits int
}

func (a AllGatherRing) Name() string { return "allgather-ring" }

func (a AllGatherRing) Schedule(n int) ([]Send, error) {
	if a.BlockFlits < 1 {
		return nil, fmt.Errorf("block must be at least one flit")
	}
	var sends []Send
	for s := 0; s < n-1; s++ {
		for i := 0; i < n; i++ {
			snd := Send{
				ID:    s*n + i,
				Src:   i,
				Dst:   (i + 1) % n,
				Flits: a.BlockFlits,
			}
			if s > 0 {
				pred := (i - 1 + n) % n
				snd.Deps = []int{(s-1)*n + pred}
			}
			sends = append(sends, snd)
		}
	}
	return sends, nil
}

// AllToAll is the personalized exchange: every node sends a distinct block
// to every other node. Sends carry no dependencies; the network's path
// diversity and interleaving determine how well the burst overlaps.
type AllToAll struct {
	// BlockFlits is the per-destination block size.
	BlockFlits int
}

func (a AllToAll) Name() string { return "alltoall" }

func (a AllToAll) Schedule(n int) ([]Send, error) {
	if a.BlockFlits < 1 {
		return nil, fmt.Errorf("block must be at least one flit")
	}
	var sends []Send
	id := 0
	// Balanced rounds: in round s, node i targets (i+s) mod n, so no
	// destination is hit twice in one round.
	for s := 1; s < n; s++ {
		for i := 0; i < n; i++ {
			sends = append(sends, Send{
				ID:    id,
				Src:   i,
				Dst:   (i + s) % n,
				Flits: a.BlockFlits,
			})
			id++
		}
	}
	return sends, nil
}
